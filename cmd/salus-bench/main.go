// Command salus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	salus-bench -fig 10            # one figure (3, 10, 11, 12, 13, 14)
//	salus-bench -table 1           # configuration tables (1, 2)
//	salus-bench -ablation          # cumulative mechanism ablation
//	salus-bench -workloads         # the synthetic workload suite
//	salus-bench -breakdown nw      # per-class traffic for one workload
//	salus-bench -all               # everything (several minutes)
//	salus-bench -quick -all        # reduced campaign (seconds)
//	salus-bench -perf              # wall-clock perf snapshot (JSON to stdout)
//	salus-bench -perf-compare BENCH_perf.json   # perf regression gate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/salus-sim/salus/internal/experiments"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is the testable entry point.
func appMain(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("salus-bench", flag.ContinueOnError)
	flag.SetOutput(stderr)
	fig := flag.Int("fig", 0, "figure to regenerate (3, 10, 11, 12, 13, 14)")
	table := flag.Int("table", 0, "configuration table to print (1, 2)")
	ablation := flag.Bool("ablation", false, "run the mechanism ablation study")
	sensitivity := flag.Bool("sensitivity", false, "run the metadata-cache capacity sweep (extension)")
	counterOrg := flag.Bool("counters", false, "run the counter-organisation study (extension)")
	migration := flag.Bool("migration", false, "run the migration-granularity study (extension)")
	seeds := flag.Int("seeds", 0, "run the seed-stability study with N workload seed sets (extension)")
	workloads := flag.Bool("workloads", false, "print the workload suite")
	coverage := flag.Bool("coverage", false, "print per-workload channel coverage characterisation")
	breakdown := flag.String("breakdown", "", "per-class traffic breakdown for one workload")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use the reduced quick campaign")
	verbose := flag.Bool("v", false, "print per-simulation progress")
	format := flag.String("format", "text", "output format: text, json, or csv")
	perf := flag.Bool("perf", false, "record a wall-clock perf snapshot (JSON to stdout)")
	perfCompare := flag.String("perf-compare", "", "re-measure and gate against a recorded perf snapshot")
	perfProcs := flag.Int("perf-procs", 8, "GOMAXPROCS for the perf workloads")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	if *perf || *perfCompare != "" {
		return perfMain(*perf, *perfCompare, *perfProcs, stdout, stderr)
	}

	outFormat, err := experiments.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(stderr, "salus-bench:", err)
		return 2
	}
	settings := experiments.Default()
	if *quick {
		settings = experiments.Quick()
	}
	runner := experiments.NewRunner(settings)
	if *verbose {
		runner.Progress = func(s string) { fmt.Fprintln(stderr, s) }
	}

	failed := false
	emit := func(res *experiments.FigResult, err error) {
		if err != nil {
			fmt.Fprintln(stderr, "salus-bench:", err)
			failed = true
			return
		}
		out, err := res.Render(outFormat)
		if err != nil {
			fmt.Fprintln(stderr, "salus-bench:", err)
			failed = true
			return
		}
		fmt.Fprintln(stdout, out)
	}

	ran := false
	if *table == 1 || *all {
		emit(experiments.Table1(settings.Cfg), nil)
		ran = true
	}
	if *table == 2 || *all {
		emit(experiments.Table2(settings.Cfg), nil)
		ran = true
	}
	if *workloads || *all {
		emit(experiments.WorkloadTable(settings), nil)
		ran = true
	}
	if *coverage || *all {
		emit(experiments.ChannelCoverage(settings))
		ran = true
	}
	if *fig == 3 || *all {
		emit(runner.Fig3())
		ran = true
	}
	if *fig == 10 || *all {
		emit(runner.Fig10())
		ran = true
	}
	if *fig == 11 || *all {
		emit(runner.Fig11())
		ran = true
	}
	if *fig == 12 || *all {
		emit(runner.Fig12())
		ran = true
	}
	if *fig == 13 || *all {
		emit(runner.Fig13())
		ran = true
	}
	if *fig == 14 || *all {
		emit(runner.Fig14())
		ran = true
	}
	if *ablation || *all {
		emit(runner.Ablation())
		ran = true
	}
	if *sensitivity || *all {
		emit(runner.MetaCacheSensitivity())
		ran = true
	}
	if *counterOrg || *all {
		emit(runner.CounterOrganisation())
		ran = true
	}
	if *migration || *all {
		emit(runner.MigrationGranularity())
		ran = true
	}
	if *seeds > 1 || *all {
		n := *seeds
		if n < 2 {
			n = 3
		}
		emit(runner.SeedStability(n))
		ran = true
	}
	if *breakdown != "" {
		emit(runner.TrafficBreakdown(*breakdown))
		ran = true
	}
	if !ran {
		flag.Usage()
		return 2
	}
	if failed {
		return 1
	}
	return 0
}
