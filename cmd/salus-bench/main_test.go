package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runApp(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := appMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestTables(t *testing.T) {
	code, out, _ := runApp(t, "-table", "1")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "CXL bandwidth") {
		t.Errorf("out = %q", out)
	}
	code, out, _ = runApp(t, "-table", "2")
	if code != 0 || !strings.Contains(out, "MAC cache") {
		t.Errorf("table 2: exit=%d out=%q", code, out)
	}
}

func TestWorkloadsAndCoverage(t *testing.T) {
	code, out, _ := runApp(t, "-quick", "-workloads", "-coverage")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Workload suite") || !strings.Contains(out, "chunks") {
		t.Errorf("out missing sections:\n%s", out)
	}
}

func TestQuickFigure(t *testing.T) {
	code, out, errOut := runApp(t, "-quick", "-fig", "3")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut)
	}
	if !strings.Contains(out, "Fig. 3") || !strings.Contains(out, "geomean slowdown") {
		t.Errorf("out = %q", out)
	}
}

func TestJSONFormat(t *testing.T) {
	code, out, _ := runApp(t, "-table", "1", "-format", "json")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if decoded["name"] != "Table I — baseline system configuration" {
		t.Errorf("name = %v", decoded["name"])
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := runApp(t); code != 2 {
		t.Errorf("no-op invocation exit = %d, want 2 (usage)", code)
	}
	if code, _, _ := runApp(t, "-format", "nope", "-table", "1"); code != 2 {
		t.Errorf("bad format exit = %d", code)
	}
	if code, _, errOut := runApp(t, "-quick", "-breakdown", "nosuch"); code != 1 || !strings.Contains(errOut, "unknown workload") {
		t.Errorf("bad breakdown: code=%d stderr=%q", code, errOut)
	}
}
