package main

import (
	"fmt"
	"io"
	"os"

	"github.com/salus-sim/salus/internal/perfbench"
)

// perfMain implements -perf (record a timing snapshot as JSON on stdout)
// and -perf-compare (re-measure and gate against a recorded baseline).
// These are wall-clock benchmarks of the library hot paths — distinct
// from the simulated-time workload campaigns the rest of salus-bench
// runs — and exist to hold the perf trajectory of the sharded Concurrent
// and the batched sector crypto.
func perfMain(record bool, comparePath string, procs int, stdout, stderr io.Writer) int {
	fmt.Fprintf(stderr, "salus-bench: measuring perf snapshot (GOMAXPROCS=%d, ~15s)...\n", procs)
	snap, err := perfbench.Collect(procs)
	if err != nil {
		fmt.Fprintln(stderr, "salus-bench:", err)
		return 1
	}
	for _, r := range snap.Results {
		fmt.Fprintf(stderr, "  %-34s %10.1f ns/op %4d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	fmt.Fprintf(stderr, "  read-heavy sharded speedup %.2fx, mixed %.2fx, batched encrypt %.2fx\n",
		snap.Derived.ReadHeavySpeedup, snap.Derived.MixedSpeedup, snap.Derived.BatchEncryptSpeedup)

	// Record before comparing: when both flags are given (as the CI gate
	// does), the fresh measurement must land on stdout even if the gate
	// fails, so it can be diffed offline against the recorded baseline.
	if record {
		out, err := snap.Encode()
		if err != nil {
			fmt.Fprintln(stderr, "salus-bench:", err)
			return 1
		}
		if _, err := stdout.Write(out); err != nil {
			fmt.Fprintln(stderr, "salus-bench:", err)
			return 1
		}
	}

	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			fmt.Fprintln(stderr, "salus-bench:", err)
			return 1
		}
		base, err := perfbench.Decode(data)
		if err != nil {
			fmt.Fprintln(stderr, "salus-bench:", err)
			return 1
		}
		if warn := perfbench.EnvMismatch(base, snap); len(warn) > 0 {
			fmt.Fprintf(stderr, "salus-bench: warning: cross-environment comparison against %s (raw ns/op checks skipped, ratio gates still apply):\n", comparePath)
			for _, w := range warn {
				fmt.Fprintln(stderr, "  -", w)
			}
		}
		bad := perfbench.Compare(base, snap, perfbench.DefaultCompareOptions())
		if len(bad) > 0 {
			fmt.Fprintf(stderr, "salus-bench: perf gate FAILED against %s:\n", comparePath)
			for _, msg := range bad {
				fmt.Fprintln(stderr, "  -", msg)
			}
			return 1
		}
		fmt.Fprintf(stderr, "salus-bench: perf gate passed against %s\n", comparePath)
	}
	return 0
}
