package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runApp(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := appMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestPrintAccesses(t *testing.T) {
	code, out, _ := runApp(t, "-workload", "nw", "-n", "5")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 accesses
		t.Fatalf("lines = %d, want 6:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# workload=nw") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestSummary(t *testing.T) {
	code, out, _ := runApp(t, "-workload", "btree", "-summary")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, frag := range []string{"accesses:", "write fraction:", "chunks per page:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q:\n%s", frag, out)
		}
	}
}

func TestExportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	code, out, _ := runApp(t, "-workload", "nw", "-n", "10", "-o", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "wrote 10 accesses") {
		t.Errorf("out = %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# salus trace") {
		t.Errorf("file = %q", data[:30])
	}
}

func TestUnknownWorkload(t *testing.T) {
	code, _, errOut := runApp(t, "-workload", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown workload") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := runApp(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
