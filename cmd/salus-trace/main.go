// Command salus-trace generates and inspects workload access traces: it
// prints the first accesses of a stream and summarises its page-level
// behaviour (chunk coverage, write mix) — the properties that determine
// how much a workload benefits from Salus.
//
// Usage:
//
//	salus-trace -workload nw -n 20
//	salus-trace -workload backprop -summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/trace"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is the testable entry point.
func appMain(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("salus-trace", flag.ContinueOnError)
	flag.SetOutput(stderr)
	workload := flag.String("workload", "nw", "workload name")
	n := flag.Int("n", 32, "accesses to print")
	sm := flag.Int("sm", 0, "SM index of the stream")
	totalSMs := flag.Int("sms", 16, "total SMs the workload is split over")
	summary := flag.Bool("summary", false, "print page-level summary instead of raw accesses")
	out := flag.String("o", "", "export the stream to a trace file (replayable via salus-sim -trace)")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	w, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(stderr, "salus-trace: unknown workload %q (available: %s)\n",
			*workload, strings.Join(trace.Names(), ", "))
		return 2
	}
	geo := config.Default().Geometry
	tgeo := trace.Geometry{SectorSize: geo.SectorSize, ChunkSize: geo.ChunkSize, PageSize: geo.PageSize}

	if *out != "" {
		st, err := w.NewStream(tgeo, *sm, *totalSMs, *n)
		if err != nil {
			fmt.Fprintln(stderr, "salus-trace:", err)
			return 1
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "salus-trace:", err)
			return 1
		}
		written, err := st.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "salus-trace:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d accesses to %s\n", written, *out)
		return 0
	}

	if *summary {
		st, err := w.NewStream(tgeo, *sm, *totalSMs, 200000)
		if err != nil {
			fmt.Fprintln(stderr, "salus-trace:", err)
			return 1
		}
		pages := map[uint64]map[uint64]bool{}
		writes, total := 0, 0
		for {
			a, ok := st.Next()
			if !ok {
				break
			}
			total++
			if a.Write {
				writes++
			}
			pg := a.Addr / uint64(geo.PageSize)
			if pages[pg] == nil {
				pages[pg] = map[uint64]bool{}
			}
			pages[pg][a.Addr/uint64(geo.ChunkSize)] = true
		}
		chunkSum := 0
		for _, chunks := range pages {
			chunkSum += len(chunks)
		}
		fmt.Fprintf(stdout, "workload=%s sm=%d/%d\n", w.Name, *sm, *totalSMs)
		fmt.Fprintf(stdout, "accesses:        %d\n", total)
		fmt.Fprintf(stdout, "write fraction:  %.3f\n", float64(writes)/float64(total))
		fmt.Fprintf(stdout, "pages touched:   %d\n", len(pages))
		fmt.Fprintf(stdout, "chunks per page: %.2f of %d\n",
			float64(chunkSum)/float64(len(pages)), geo.ChunksPerPage())
		return 0
	}

	st, err := w.NewStream(tgeo, *sm, *totalSMs, *n)
	if err != nil {
		fmt.Fprintln(stderr, "salus-trace:", err)
		return 1
	}
	fmt.Fprintf(stdout, "# workload=%s sm=%d/%d (addr page chunk rw)\n", w.Name, *sm, *totalSMs)
	for {
		a, ok := st.Next()
		if !ok {
			break
		}
		rw := "R"
		if a.Write {
			rw = "W"
		}
		fmt.Fprintf(stdout, "%#010x page=%-5d chunk=%-2d %s\n",
			a.Addr, a.Addr/uint64(geo.PageSize),
			(a.Addr%uint64(geo.PageSize))/uint64(geo.ChunkSize), rw)
	}
	return 0
}
