// Command salus-lint runs the project's custom static analyzers (package
// internal/lint) over the module and prints findings compiler-style. It
// exits non-zero when any finding survives, so CI can gate on it.
//
// Usage:
//
//	salus-lint [-only analyzer[,analyzer]] [package-dir | ./...]
//
// With no argument (or "./...") every package under the enclosing module
// is checked, testdata and vendor directories excluded. A single
// directory argument checks just that directory's packages.
//
// Findings can be suppressed with a trailing or preceding comment:
//
//	//salus-lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/salus-sim/salus/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: salus-lint [-only names] [dir | ./...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name(), a.Doc())
		}
	}
	flag.Parse()

	analyzers := lint.All()
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "salus-lint: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	target := "./..."
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "salus-lint: at most one package argument")
		os.Exit(2)
	}

	start := "."
	if target != "./..." {
		start = target
	}
	loader, err := lint.NewLoader(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "salus-lint: %v\n", err)
		os.Exit(2)
	}

	var pkgs []*lint.Package
	if target == "./..." {
		pkgs, err = loader.LoadAll()
	} else {
		pkgs, err = loader.LoadDir(target)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "salus-lint: %v\n", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "salus-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
