// Command salus-lint runs the project's custom static analyzers (package
// internal/lint) over the module and prints findings compiler-style. It
// exits non-zero when any finding survives, so CI can gate on it.
//
// Usage:
//
//	salus-lint [-only analyzer[,analyzer]] [-json] [-gha] [-lockreport] [package-dir | ./...]
//
// With no argument (or "./...") every package under the enclosing module
// is checked, testdata and vendor directories excluded. A single
// directory argument checks just that directory's packages.
//
// Exit codes: 0 when the scan is clean, 1 when any finding survives
// suppression, 2 on a usage or load/type-check error.
//
// Findings can be suppressed with a trailing or preceding comment:
//
//	//salus-lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a reasonless ignore suppresses nothing and is
// itself reported as a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/salus-sim/salus/internal/lint"
)

// jsonFinding is the machine-readable shape of one finding under -json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	gha := flag.Bool("gha", false, "emit GitHub Actions ::error/::warning annotations alongside text output")
	lockReport := flag.Bool("lockreport", false, "print the interprocedural lock-acquisition order report and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: salus-lint [-only names] [-json] [-gha] [-lockreport] [dir | ./...]\n\n"+
			"exit codes: 0 clean, 1 findings, 2 load/usage error\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name(), a.Doc())
		}
	}
	flag.Parse()

	analyzers := lint.All()
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "salus-lint: no analyzer matches -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	target := "./..."
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "salus-lint: at most one package argument")
		os.Exit(2)
	}

	start := "."
	if target != "./..." {
		start = target
	}
	loader, err := lint.NewLoader(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "salus-lint: %v\n", err)
		os.Exit(2)
	}

	var pkgs []*lint.Package
	if target == "./..." {
		pkgs, err = loader.LoadAll()
	} else {
		pkgs, err = loader.LoadDir(target)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "salus-lint: %v\n", err)
		os.Exit(2)
	}

	// One type-checked load, one call graph, shared by every analyzer.
	prog := lint.BuildProgram(pkgs)

	if *lockReport {
		fmt.Print(lint.LockOrderReport(prog))
		return
	}

	findings := lint.RunProgram(prog, analyzers)
	switch {
	case *jsonOut:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Severity: f.Severity.String(),
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "salus-lint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
			if *gha {
				level := "error"
				if f.Severity == lint.Warning {
					level = "warning"
				}
				// GitHub Actions workflow-command annotation: surfaces the
				// finding inline on the PR diff.
				fmt.Printf("::%s file=%s,line=%d,col=%d::%s [%s]\n",
					level, f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
			}
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "salus-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
