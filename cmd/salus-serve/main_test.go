package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestServeDefaultRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "2", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "interactive availability") {
		t.Errorf("missing availability summary: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "avail") {
		t.Errorf("-v produced no per-session progress: %q", errOut.String())
	}
}

// TestServeReportQuantiles pins the -report contract: per-class latency
// quantiles including p50, p99, and p999 from the stats histograms.
func TestServeReportQuantiles(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "1", "-report"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"p50", "p99", "p999", "interactive", "batch", "bulk", "served", "shed", "overload", "deadline", "ambiguous"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-report output missing %q: %q", want, out.String())
		}
	}
}

// TestServeHealthyBaseline: with chaos off the interactive class serves
// everything and no chaos counters move.
func TestServeHealthyBaseline(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "1", "-chaos=false", "-slo", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("healthy baseline at slo 1: exit code %d, stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "availability 1.0000") {
		t.Errorf("healthy interactive availability not 1: %q", out.String())
	}
	if !strings.Contains(out.String(), "0 crashes, 0 link outages") {
		t.Errorf("chaos ran despite -chaos=false: %q", out.String())
	}
}

func TestServeBadFlagsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-seeds", "0"},
		{"-clients", "0"},
		{"-ops", "-1"},
		{"-devpages", "9", "-pages", "3"},
		{"-slo", "1.5"},
		{"-nonsense"},
		{"stray-positional"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := appMain(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}
