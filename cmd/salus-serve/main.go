// Command salus-serve runs the overload-safe traffic service: per seed,
// a fleet of concurrent client streams — interactive, batch, bulk — is
// multiplexed onto one shared Salus-protected engine through admission
// control, bounded queues, per-request deadlines, and capped retry
// budgets, while (unless -chaos=false) transient faults, CXL link
// outages, and crash/recover cycles land mid-traffic.
//
// Usage:
//
//	salus-serve                       # default campaign: 5 sessions × 21 streams
//	salus-serve -report               # add per-class outcome + latency tables
//	salus-serve -seeds 50 -v          # a deeper campaign with progress lines
//	salus-serve -chaos=false -report  # healthy baseline, no chaos injected
//	salus-serve -clients 30 -ops 100 -slo 0.55
//
// The -report tables are the service's SLO surface: per class, the typed
// outcome counters with availability, and the served-latency quantiles
// (p50/p90/p99/p999, in service clock cycles) from the stats histograms.
// Every refusal the service ever issues is typed — shed, overload,
// deadline, retry budget, ambiguous write — and the campaign verifies
// client-side that nothing else ever leaks out, that no read silently
// diverges from the per-client oracles, and that the interactive
// availability floor holds. Any violation exits non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/salus-sim/salus/internal/check"
	"github.com/salus-sim/salus/internal/serve"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is the testable entry point.
func appMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("salus-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := check.DefaultServePlan()
	seeds := fs.Int("seeds", 5, "traffic sessions to run")
	seed := fs.Int64("seed", def.FirstSeed, "first session seed (sessions cover [seed, seed+seeds))")
	clients := fs.Int("clients", def.Clients, "concurrent client streams per session")
	ops := fs.Int("ops", def.OpsPerClient, "requests per stream")
	pages := fs.Int("pages", def.TotalPages, "home (CXL) pages in the served address space")
	devPages := fs.Int("devpages", def.DevicePages, "device frames (< pages keeps miss traffic up)")
	queueCap := fs.Int("queuecap", def.QueueCap, "dirty-writeback queue capacity")
	chaos := fs.Bool("chaos", true, "inject combined chaos (faults + link outages + crash/recover); false runs a healthy baseline")
	slo := fs.Float64("slo", def.SLO[serve.Interactive], "interactive availability floor asserted on the campaign aggregate (0 disables)")
	report := fs.Bool("report", false, "print per-class outcome and latency (p50/p90/p99/p999) tables")
	verbose := fs.Bool("v", false, "print per-session progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "salus-serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *seeds < 1 || *clients < 1 || *ops < 1 || *pages < 1 || *devPages < 1 || *devPages > *pages {
		fmt.Fprintln(stderr, "salus-serve: -seeds, -clients, -ops, -pages, -devpages must be positive and -devpages <= -pages")
		return 2
	}
	if *slo < 0 || *slo > 1 {
		fmt.Fprintln(stderr, "salus-serve: -slo must be in [0, 1]")
		return 2
	}

	plan := def
	plan.Seeds = *seeds
	plan.FirstSeed = *seed
	plan.Clients = *clients
	plan.OpsPerClient = *ops
	plan.TotalPages = *pages
	plan.DevicePages = *devPages
	plan.QueueCap = *queueCap
	plan.SLO[serve.Interactive] = *slo
	if !*chaos {
		plan.EventEvery = 0
		plan.TransientRate = 0
	}
	if *verbose {
		plan.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}

	res := check.RunServe(plan)
	if res.Failed() {
		fmt.Fprintf(stdout, "salus-serve: FAIL: %d violations after %d sessions\n", len(res.Violations), res.SeedsRun)
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(stdout, "salus-serve: %d sessions, %d streams, %d requests: interactive availability %.4f (floor %.2f)\n",
		res.SeedsRun, res.Streams, res.Ops, res.Aggregate.Availability(serve.Interactive), *slo)
	fmt.Fprintf(stdout, "salus-serve: chaos: %d checkpoints (%d refused typed), %d crashes, %d link outages, %d tainted bytes\n",
		res.Checkpoints, res.CheckpointRefusals, res.Crashes, res.Outages, res.TaintedBytes)
	if *report {
		fmt.Fprint(stdout, res.Tables())
	}
	return 0
}
