// Command salus-sim runs one workload under one security model on the
// simulated CXL-expanded GPU and prints the full measurement record.
//
// Usage:
//
//	salus-sim -workload nw -model salus
//	salus-sim -workload bfs -model baseline -accesses 50000 -cxl-den 8
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is the testable entry point.
func appMain(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("salus-sim", flag.ContinueOnError)
	flag.SetOutput(stderr)
	workload := flag.String("workload", "nw", "workload name (see salus-bench -workloads)")
	model := flag.String("model", "salus", "security model: none, baseline, salus")
	accesses := flag.Int("accesses", 24000, "total memory accesses (0 = full workload)")
	cxlDen := flag.Uint64("cxl-den", 16, "CXL bandwidth = 1/N of device bandwidth")
	footprint := flag.Float64("resident", 0.35, "fraction of footprint resident in device memory")
	traceFile := flag.String("trace", "", "replay a recorded trace file on every SM instead of the synthetic workload")
	if err := flag.Parse(args); err != nil {
		return 2
	}

	w, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(stderr, "salus-sim: unknown workload %q (available: %s)\n",
			*workload, strings.Join(trace.Names(), ", "))
		return 2
	}
	var m system.Model
	switch *model {
	case "none":
		m = system.ModelNone
	case "baseline":
		m = system.ModelBaseline
	case "salus":
		m = system.ModelSalus
	default:
		fmt.Fprintf(stderr, "salus-sim: unknown model %q\n", *model)
		return 2
	}

	cfg := config.Default().WithCXLRatio(1, *cxlDen).WithFootprintRatio(*footprint)
	opts := system.Options{
		Cfg:         cfg,
		Workload:    w,
		Model:       m,
		MaxAccesses: *accesses,
		CycleLimit:  10_000_000_000,
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "salus-sim:", err)
			return 1
		}
		defer f.Close()
		data, err := io.ReadAll(f)
		if err != nil {
			fmt.Fprintln(stderr, "salus-sim:", err)
			return 1
		}
		// One independent replay cursor per SM over the same recording.
		for i := 0; i < cfg.GPU.NumSMs; i++ {
			fs, err := trace.ReadTrace(bytes.NewReader(data), w.ComputePerMem)
			if err != nil {
				fmt.Fprintln(stderr, "salus-sim:", err)
				return 1
			}
			opts.Streams = append(opts.Streams, fs)
		}
	}
	run, err := system.Run(opts)
	if err != nil {
		fmt.Fprintln(stderr, "salus-sim:", err)
		return 1
	}
	fmt.Fprint(stdout, run.String())
	return 0
}
