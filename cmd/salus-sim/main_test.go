package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runApp(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := appMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunSalusModel(t *testing.T) {
	code, out, errOut := runApp(t, "-workload", "nw", "-model", "salus", "-accesses", "2000")
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut)
	}
	for _, frag := range []string{"workload=nw", "model=salus", "ipc=", "device", "cxl"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunAllModels(t *testing.T) {
	for _, model := range []string{"none", "baseline", "salus"} {
		code, out, errOut := runApp(t, "-model", model, "-accesses", "1000")
		if code != 0 {
			t.Fatalf("%s: exit = %d, stderr = %s", model, code, errOut)
		}
		if !strings.Contains(out, "model="+model) {
			t.Errorf("%s: output = %q", model, out)
		}
	}
}

func TestTraceReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.trace")
	if err := os.WriteFile(path, []byte("R 0\nW 20\nR 1000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runApp(t, "-model", "salus", "-trace", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut)
	}
	if !strings.Contains(out, "model=salus") {
		t.Errorf("out = %q", out)
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := runApp(t, "-workload", "nosuch"); code != 2 {
		t.Errorf("unknown workload exit = %d", code)
	}
	if code, _, _ := runApp(t, "-model", "nosuch"); code != 2 {
		t.Errorf("unknown model exit = %d", code)
	}
	if code, _, _ := runApp(t, "-trace", "/definitely/missing"); code != 1 {
		t.Errorf("missing trace exit = %d", code)
	}
	if code, _, _ := runApp(t, "-bogus"); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}
