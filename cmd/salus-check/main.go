// Command salus-check runs the differential model-equivalence checker: it
// replays seeded randomized operation sequences against every protection
// model plus a plain in-memory oracle, asserting plaintext equivalence and
// the Salus security invariants after every operation.
//
// Usage:
//
//	salus-check                          # CI smoke budget (25 seeds × 200 ops)
//	salus-check -seeds 100 -ops 500      # a deeper campaign
//	salus-check -seed 42 -seeds 1 -v     # replay one seed, with progress
//	salus-check -model salus             # restrict the model set
//	salus-check -chaos recoverable       # inject transient link faults
//	salus-check -chaos unrecoverable     # also inject uncorrectable media errors
//	salus-check -crash                   # power-loss injection on the checkpoint journal
//	salus-check -link                    # CXL link flaps + degraded-mode verification
//	salus-check -link -linkplan down@40..70 -queuecap 4
//	salus-check -serve                   # combined-chaos service campaign
//	salus-check -serve -seeds 50 -clients 21 -ops 60
//	salus-check -tenant                  # hostile-tenant isolation campaign
//	salus-check -tenant -seeds 50 -workers 3 -ops 70
//	salus-check -migrate                 # attested live-migration campaign
//	salus-check -migrate -seeds 50 -v
//
// Chaos mode arms every model with a deterministic fault injector. Under a
// recoverable plan the replay still demands byte-identical plaintext; under
// an unrecoverable plan every fault must surface as a typed error or
// quarantine — a silent divergence fails the run either way.
//
// Link mode (exclusive with -chaos and -crash, Salus-only) replays every
// seed under a set of deterministic CXL link flap plans — scripted outage
// windows, brownout latency, and rate-driven episodes — asserting the
// degraded-mode contract: device-resident hits keep serving, every refused
// op fails with a typed link error, parked writebacks all drain on
// recovery, the post-drain state is byte-identical to a no-outage run, and
// a home-tier rollback staged during an outage is detected on drain.
//
// Serve mode (exclusive with the others, Salus-only) runs the
// traffic-service campaign: per seed, a fleet of concurrent client
// streams drives a serve.Server while transient faults, link outages,
// and crash/recover cycles land mid-traffic simultaneously. It asserts
// that every rejection is typed, that no read ever silently diverges
// from the per-client oracles, that outcomes conserve, and that the
// per-class availability SLO floors hold on the campaign aggregate.
//
// Tenant mode (exclusive with the others, Salus-only) runs the
// cross-tenant leak campaign: three tenants — a victim, a bystander,
// and an attacker — share one pool through per-tenant key domains and
// address-space slices. The attacker mixes honest traffic with
// slice-straddling probes, replayed sibling ciphertext, and
// quota-pressure storms while transient faults, link outages, and
// crash/recover cycles land on its domain alone. It asserts that every
// hostile probe is refused typed (never bytes), that no sibling byte
// ever moves, that per-tenant differential oracles stay byte-identical,
// and that the healthy tenants' availability holds the SLO floor even
// while the attacker's domain is deliberately wrecked.
//
// Migrate mode (exclusive with the others, Salus-only) runs the
// attested live-migration campaign: per seed an honest migration is
// held to a differential oracle against a no-migration control run, a
// second migration cuts over under live serve traffic inside a
// quiesced engine swap, a man-in-the-middle phase replays a recorded
// stream tape with every mutation class at every record boundary
// against fresh destinations, endpoint crashes are simulated at every
// stream boundary, a scripted link outage must park the session typed
// and resumable and then complete without re-streaming verified
// chunks, and the migrated-away source identity is destroyed (keys
// zeroized, frames reclaimed). Every attack must be refused with a
// typed migrate error while the source keeps serving, the destination
// is never left half-applied, and bystander tenants on every pool
// never move a byte.
//
// Crash mode (exclusive with -chaos, Salus-only) journals incremental
// checkpoints of a generated workload onto a write/sync tape, then cuts
// power at every event boundary under every damage mode and recovers with
// the trusted root the TCB would have held at that instant. Honest cuts
// must reconstruct the last committed epoch byte-identically; a corrupted
// synced region must surface as a typed torn-checkpoint or rollback error;
// a replayed stale journal must be rejected as a rollback.
//
// On a violation it exits non-zero, printing the shrunk minimal reproducer
// both as an op listing and as a ready-to-commit Go regression test.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/salus-sim/salus/internal/check"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/metrics"
	"github.com/salus-sim/salus/internal/securemem"
)

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// explicitFlags reports which flags the user actually set, so modes with
// their own campaign defaults only honor overrides that were typed.
func explicitFlags(fs *flag.FlagSet) map[string]bool {
	m := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { m[f.Name] = true })
	return m
}

// parseModels turns a comma-separated model list into securemem models.
func parseModels(spec string) ([]securemem.Model, error) {
	var models []securemem.Model
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "none":
			models = append(models, securemem.ModelNone)
		case "conventional":
			models = append(models, securemem.ModelConventional)
		case "salus":
			models = append(models, securemem.ModelSalus)
		case "":
		default:
			return nil, fmt.Errorf("unknown model %q (want none, conventional, salus)", name)
		}
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("empty model list")
	}
	return models, nil
}

// appMain is the testable entry point.
func appMain(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("salus-check", flag.ContinueOnError)
	flag.SetOutput(stderr)
	def := check.DefaultConfig()
	seeds := flag.Int("seeds", def.Seeds, "number of seeds to run")
	ops := flag.Int("ops", def.Ops, "operations per seed")
	seed := flag.Int64("seed", def.FirstSeed, "first seed (seeds cover [seed, seed+seeds))")
	model := flag.String("model", "none,conventional,salus", "comma-separated models to check differentially")
	pages := flag.Int("pages", def.TotalPages, "home (CXL) pages in the checked address space")
	devPages := flag.Int("devpages", def.DevicePages, "device frames (< pages forces eviction churn)")
	chaos := flag.String("chaos", "", "fault plan: recoverable (transient link faults) or unrecoverable (plus media errors)")
	crashMode := flag.Bool("crash", false, "power-loss injection: enumerate every crash point of the checkpoint journal (Salus-only, exclusive with -chaos)")
	linkMode := flag.Bool("link", false, "CXL link chaos: replay every seed under deterministic flap plans and verify degraded-mode operation (Salus-only, exclusive with -chaos and -crash)")
	serveMode := flag.Bool("serve", false, "combined-chaos service campaign: concurrent client fleets under faults + link flaps + crash/recover at once (Salus-only, exclusive with the other modes)")
	tenantMode := flag.Bool("tenant", false, "hostile-tenant isolation campaign: victim/bystander/attacker domains over one pool, cross-tenant probes and chaos on the attacker only (Salus-only, exclusive with the other modes)")
	migrateMode := flag.Bool("migrate", false, "attested live-migration campaign: differential-oracle migrations, MITM tape attacks at every record boundary, endpoint crashes, link-loss resume, source retirement (Salus-only, exclusive with the other modes)")
	clients := flag.Int("clients", 0, "with -serve: concurrent client streams per seed (0 = campaign default)")
	workers := flag.Int("workers", 0, "with -tenant: worker streams per tenant (0 = campaign default)")
	linkPlan := flag.String("linkplan", "", "with -link: a single link plan spec (see internal/link.ParsePlan) replacing the default plan set")
	queueCap := flag.Int("queuecap", 0, "with -link: dirty-writeback queue capacity (0 = campaign default)")
	verbose := flag.Bool("v", false, "print per-seed progress")
	if err := flag.Parse(args); err != nil {
		return 2
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(stderr, "salus-check: unexpected argument %q\n", flag.Arg(0))
		return 2
	}
	set := explicitFlags(flag)

	models, err := parseModels(*model)
	if err != nil {
		fmt.Fprintln(stderr, "salus-check:", err)
		return 2
	}
	if *seeds < 1 || *ops < 1 || *pages < 1 || *devPages < 1 || *devPages > *pages {
		fmt.Fprintln(stderr, "salus-check: -seeds, -ops, -pages, -devpages must be positive and -devpages <= -pages")
		return 2
	}
	modes := 0
	for _, on := range []bool{*crashMode, *linkMode, *serveMode, *tenantMode, *migrateMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "salus-check: -crash, -link, -serve, -tenant, and -migrate are exclusive")
		return 2
	}
	if *migrateMode {
		if *chaos != "" || *linkPlan != "" || *clients != 0 || *workers != 0 {
			fmt.Fprintln(stderr, "salus-check: -migrate is exclusive with -chaos, -linkplan, -clients, and -workers")
			return 2
		}
		plan := check.DefaultMigratePlan()
		if set["seeds"] {
			plan.Seeds = *seeds
		}
		if set["seed"] {
			plan.FirstSeed = *seed
		}
		if set["pages"] {
			plan.PagesPerTenant = *pages
		}
		if set["devpages"] {
			plan.FramesPerTenant = *devPages
		}
		if *queueCap > 0 {
			plan.QueueCap = *queueCap
		}
		return migrateMain(plan, *verbose, stdout, stderr)
	}
	if *tenantMode {
		if *chaos != "" || *linkPlan != "" || *clients != 0 {
			fmt.Fprintln(stderr, "salus-check: -tenant is exclusive with -chaos, -linkplan, and -clients")
			return 2
		}
		plan := check.DefaultTenantPlan()
		if set["seeds"] {
			plan.Seeds = *seeds
		}
		if set["seed"] {
			plan.FirstSeed = *seed
		}
		if set["ops"] {
			plan.OpsPerWorker = *ops
		}
		if set["pages"] {
			plan.PagesPerTenant = *pages
		}
		if set["devpages"] {
			plan.FramesPerTenant = *devPages
		}
		if *workers > 0 {
			plan.WorkersPerTenant = *workers
		}
		if *queueCap > 0 {
			plan.QueueCap = *queueCap
		}
		return tenantMain(plan, *verbose, stdout, stderr)
	}
	if *workers != 0 {
		fmt.Fprintln(stderr, "salus-check: -workers requires -tenant")
		return 2
	}
	if *serveMode {
		if *chaos != "" || *linkPlan != "" {
			fmt.Fprintln(stderr, "salus-check: -serve is exclusive with -chaos and -linkplan")
			return 2
		}
		plan := check.DefaultServePlan()
		if set["seeds"] {
			plan.Seeds = *seeds
		}
		if set["seed"] {
			plan.FirstSeed = *seed
		}
		if set["ops"] {
			plan.OpsPerClient = *ops
		}
		if set["pages"] {
			plan.TotalPages = *pages
		}
		if set["devpages"] {
			plan.DevicePages = *devPages
		}
		if *clients > 0 {
			plan.Clients = *clients
		}
		if *queueCap > 0 {
			plan.QueueCap = *queueCap
		}
		return serveMain(plan, *verbose, stdout, stderr)
	}
	if *clients != 0 {
		fmt.Fprintln(stderr, "salus-check: -clients requires -serve")
		return 2
	}
	if *crashMode {
		if *chaos != "" {
			fmt.Fprintln(stderr, "salus-check: -crash and -chaos are exclusive")
			return 2
		}
		return crashMain(*seeds, *ops, *seed, *pages, *devPages, *verbose, stdout, stderr)
	}
	if *linkMode {
		if *chaos != "" {
			fmt.Fprintln(stderr, "salus-check: -link and -chaos are exclusive")
			return 2
		}
		return linkMain(*seeds, *ops, *seed, *pages, *devPages, *queueCap, *linkPlan, *verbose, stdout, stderr)
	}
	if *linkPlan != "" || *queueCap != 0 {
		fmt.Fprintln(stderr, "salus-check: -linkplan and -queuecap require -link")
		return 2
	}

	cfg := def
	cfg.Seeds = *seeds
	cfg.Ops = *ops
	cfg.FirstSeed = *seed
	cfg.TotalPages = *pages
	cfg.DevicePages = *devPages
	cfg.Models = models
	if *verbose {
		cfg.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}

	var faults securemem.OpStats
	switch *chaos {
	case "":
	case "recoverable", "unrecoverable":
		cfg = check.ChaosConfig(cfg, *chaos == "unrecoverable")
		cfg.Fault.Sink = func(_ string, st securemem.OpStats) {
			faults.TransientFaults += st.TransientFaults
			faults.PoisonFaults += st.PoisonFaults
			faults.StuckBitFaults += st.StuckBitFaults
			faults.Retries += st.Retries
			faults.RetryBackoffCycles += st.RetryBackoffCycles
			faults.TransparentRecoveries += st.TransparentRecoveries
			faults.FramesQuarantined += st.FramesQuarantined
			faults.ChunksPoisoned += st.ChunksPoisoned
			faults.PagesPinned += st.PagesPinned
		}
	default:
		fmt.Fprintf(stderr, "salus-check: -chaos must be empty, recoverable, or unrecoverable (got %q)\n", *chaos)
		return 2
	}

	res := check.Run(cfg)
	if f := res.Failure; f != nil {
		fmt.Fprintf(stdout, "salus-check: FAIL: %s\n\n", f)
		fmt.Fprintf(stdout, "minimal reproducer (%d ops):\n", len(f.Seq.Ops))
		for i, op := range f.Seq.Ops {
			fmt.Fprintf(stdout, "  %3d: %v\n", i, op)
		}
		fmt.Fprintf(stdout, "\nregression test:\n\n%s", f.GoTest(cfg, fmt.Sprintf("seed%d", f.Seq.Seed)))
		return 1
	}
	fmt.Fprintf(stdout, "salus-check: PASS: %d seeds, %d ops, %d models, no divergence\n",
		res.SeedsRun, res.OpsRun, len(models))
	if *chaos != "" {
		fmt.Fprintf(stdout, "salus-check: chaos (%s): %d transient (%d retries, %d backoff cycles), %d poison, %d stuck-bit; recovered %d, quarantined %d frames / %d chunks, pinned %d pages\n",
			*chaos, faults.TransientFaults, faults.Retries, faults.RetryBackoffCycles,
			faults.PoisonFaults, faults.StuckBitFaults, faults.TransparentRecoveries,
			faults.FramesQuarantined, faults.ChunksPoisoned, faults.PagesPinned)
	}
	return 0
}

// serveMain runs the combined-chaos service campaign. The -model flag is
// ignored: the traffic service fronts a ModelSalus engine.
func serveMain(plan check.ServePlan, verbose bool, stdout, stderr io.Writer) int {
	if verbose {
		plan.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}
	res := check.RunServe(plan)
	if res.Failed() {
		fmt.Fprintf(stdout, "salus-check: serve FAIL: %d violations after %d seeds\n", len(res.Violations), res.SeedsRun)
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(stdout, "salus-check: serve PASS: %d seeds, %d streams, %d requests; %d checkpoints (%d refused typed), %d crashes, %d outages, %d tainted bytes\n",
		res.SeedsRun, res.Streams, res.Ops,
		res.Checkpoints, res.CheckpointRefusals, res.Crashes, res.Outages, res.TaintedBytes)
	fmt.Fprint(stdout, res.Tables())
	return 0
}

// tenantMain runs the hostile-tenant isolation campaign. The -model
// flag is ignored: per-tenant key domains are a ModelSalus feature.
func tenantMain(plan check.TenantPlan, verbose bool, stdout, stderr io.Writer) int {
	if verbose {
		plan.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}
	res := check.RunTenant(plan)
	if res.Failed() {
		fmt.Fprintf(stdout, "salus-check: tenant FAIL: %d violations after %d seeds\n", len(res.Violations), res.SeedsRun)
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(stdout, "salus-check: tenant PASS: %d seeds, %d workers, %d ops; %d hostile probes (%d denied typed, %d quota refusals), %d/%d replays refused, %d checkpoints (%d refused typed), %d crashes, %d outages, %d tainted bytes\n",
		res.SeedsRun, res.Workers, res.Ops,
		res.HostileProbes, res.TypedDenials, res.QuotaRefusals,
		res.ReplayRefusals, res.ReplayAttacks,
		res.Checkpoints, res.CheckpointRefusals, res.Crashes, res.Outages, res.TaintedBytes)
	fmt.Fprintf(stdout, "salus-check: tenant availability: victim %.4f, bystander %.4f (floor %.4f), attacker %.4f under chaos\n",
		res.VictimAvailability, res.BystanderAvailability, plan.VictimSLO, res.AttackerAvailability)
	fmt.Fprint(stdout, res.Table())
	return 0
}

// linkMain runs the link-chaos campaign. The -model flag is ignored:
// degraded-mode operation is a ModelSalus feature.
func linkMain(seeds, ops int, firstSeed int64, pages, devPages, queueCap int, planSpec string, verbose bool, stdout, stderr io.Writer) int {
	plan := check.DefaultLinkPlan()
	plan.Seeds = seeds
	plan.Ops = ops
	plan.FirstSeed = firstSeed
	plan.TotalPages = pages
	plan.DevicePages = devPages
	if queueCap > 0 {
		plan.QueueCap = queueCap
	}
	if planSpec != "" {
		if _, err := link.ParsePlan(planSpec); err != nil {
			fmt.Fprintf(stderr, "salus-check: -linkplan: %v\n", err)
			return 2
		}
		plan.Plans = []check.NamedLinkPlan{{Name: "custom", Spec: planSpec}}
	}
	if verbose {
		plan.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}

	res := check.RunLink(plan)
	if f := res.Failure; f != nil {
		fmt.Fprintf(stdout, "salus-check: link FAIL: %s\n\n", f)
		fmt.Fprintf(stdout, "minimal reproducer (%d ops):\n", len(f.Seq.Ops))
		for i, op := range f.Seq.Ops {
			fmt.Fprintf(stdout, "  %3d: %v\n", i, op)
		}
		np := plan.Plans[0]
		for _, cand := range plan.Plans {
			if f.Target == "salus-link/"+cand.Name {
				np = cand
			}
		}
		fmt.Fprintf(stdout, "\nregression test:\n\n%s", f.LinkGoTest(plan, np, fmt.Sprintf("seed%d", f.Seq.Seed)))
		return 1
	}
	fmt.Fprintf(stdout, "salus-check: link PASS: %d seeds × %d plans, %d ops, %d flaps, %d rollback probes detected\n",
		res.SeedsRun, len(plan.Plans), res.OpsRun, res.Flaps, res.RollbackProbes)
	fmt.Fprintf(stdout, "salus-check: link availability: %.2f%% of ops served during outages (%d ok, %d refused typed: %d down, %d breaker fast-fails)\n",
		100*metrics.Availability(res.OpsOK, res.OpsRefused), res.OpsOK, res.OpsRefused, res.Refusals, res.FastFails)
	fmt.Fprintf(stdout, "salus-check: link writebacks: %d queued = %d drained (%d backpressure drops, peak depth %d, mean depth %.2f, mean parked age %.1f ops)\n",
		res.Queued, res.Drained, res.Dropped, res.QueuePeak,
		metrics.Per(res.DepthSum, res.DepthSamples), metrics.Per(res.AgeSum, res.AgeCount))
	return 0
}

// crashMain runs the power-loss-injection campaign. The -model flag is
// ignored: the checkpoint journal is a ModelSalus feature.
func crashMain(seeds, ops int, firstSeed int64, pages, devPages int, verbose bool, stdout, stderr io.Writer) int {
	plan := check.DefaultCrashPlan()
	plan.Seeds = seeds
	plan.Ops = ops
	plan.FirstSeed = firstSeed
	plan.TotalPages = pages
	plan.DevicePages = devPages
	if verbose {
		plan.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}

	res := check.RunCrash(plan)
	if f := res.Failure; f != nil {
		fmt.Fprintf(stdout, "salus-check: crash FAIL: %s\n\n", f)
		fmt.Fprintf(stdout, "minimal reproducer (%d ops):\n", len(f.Seq.Ops))
		for i, op := range f.Seq.Ops {
			fmt.Fprintf(stdout, "  %3d: %v\n", i, op)
		}
		fmt.Fprintf(stdout, "\nregression test:\n\n%s", f.CrashGoTest(plan, fmt.Sprintf("seed%d", f.Seq.Seed)))
		return 1
	}
	fmt.Fprintf(stdout, "salus-check: crash PASS: %d seeds, %d ops, %d epochs committed, %d cuts enumerated: %d recovered byte-identical, %d corruptions detected typed\n",
		res.SeedsRun, res.OpsRun, res.Epochs, res.Cuts, res.Recoveries, res.Detected)
	return 0
}

// migrateMain runs the attested live-migration campaign. The -model
// flag is ignored: migration streams ModelSalus checkpoint journals.
func migrateMain(plan check.MigratePlan, verbose bool, stdout, stderr io.Writer) int {
	if verbose {
		plan.Verbose = func(s string) { fmt.Fprintln(stderr, s) }
	}
	res := check.RunMigrate(plan)
	if res.Failed() {
		fmt.Fprintf(stdout, "salus-check: migrate FAIL: %d violations after %d seeds\n", len(res.Violations), res.SeedsRun)
		for _, v := range res.Violations {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		return 1
	}
	fmt.Fprintf(stdout, "salus-check: migrate PASS: %d seeds, %d migrations, %d serve requests; %d/%d attacks refused typed, %d crash cuts clean, %d resumes (%d retries), %d identities retired\n",
		res.SeedsRun, res.Migrations, res.ServeRequests,
		res.TypedRejections, res.Attacks, res.CrashCuts, res.Resumes, res.Retries, res.Destroyed)
	fmt.Fprint(stdout, res.Table())
	return 0
}
