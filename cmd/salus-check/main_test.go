package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCleanRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "2", "-ops", "60", "-pages", "6", "-devpages", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS summary: %q", out.String())
	}
}

func TestSingleModelRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "1", "-ops", "40", "-pages", "6", "-devpages", "2", "-model", "salus", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "clean") {
		t.Errorf("-v produced no progress lines: %q", errOut.String())
	}
}

func TestCrashRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-crash", "-seeds", "2", "-ops", "24", "-pages", "4", "-devpages", "2", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "crash PASS") {
		t.Errorf("missing crash PASS summary: %q", out.String())
	}
	if !strings.Contains(out.String(), "cuts enumerated") {
		t.Errorf("missing enumeration accounting: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "epochs") {
		t.Errorf("-v produced no per-seed crash progress: %q", errOut.String())
	}
}

func TestLinkRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-link", "-seeds", "2", "-ops", "60", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "link PASS") {
		t.Errorf("missing link PASS summary: %q", out.String())
	}
	if !strings.Contains(out.String(), "availability") || !strings.Contains(out.String(), "writebacks") {
		t.Errorf("missing availability/writeback report: %q", out.String())
	}
	if !strings.Contains(out.String(), "rollback probes detected") {
		t.Errorf("missing rollback probe accounting: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "clean") {
		t.Errorf("-v produced no per-seed link progress: %q", errOut.String())
	}
}

func TestLinkCustomPlanAndQueueCap(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-link", "-seeds", "1", "-ops", "60",
		"-linkplan", "down@30..80", "-queuecap", "4"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "1 plans") {
		t.Errorf("custom plan did not replace the default set: %q", out.String())
	}
}

func TestServeRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-serve", "-seeds", "2", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "serve PASS") {
		t.Errorf("missing serve PASS summary: %q", out.String())
	}
	for _, want := range []string{"42 streams", "interactive", "p99", "p999"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("serve report missing %q: %q", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "avail") {
		t.Errorf("-v produced no per-seed serve progress: %q", errOut.String())
	}
}

func TestTenantRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-tenant", "-seeds", "2", "-ops", "40", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "tenant PASS") {
		t.Errorf("missing tenant PASS summary: %q", out.String())
	}
	for _, want := range []string{"hostile probes", "replays refused", "victim", "bystander", "attacker", "denied", "recovers"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("tenant report missing %q: %q", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "hostile") {
		t.Errorf("-v produced no per-seed tenant progress: %q", errOut.String())
	}
}

func TestMigrateRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-migrate", "-seeds", "2", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "migrate PASS") {
		t.Errorf("missing migrate PASS summary: %q", out.String())
	}
	for _, want := range []string{"attacks refused typed", "crash cuts clean", "resumes", "retired", "migrant", "skipped", "attest"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("migrate report missing %q: %q", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "migrations") {
		t.Errorf("-v produced no per-seed migrate progress: %q", errOut.String())
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-model", "quantum"},
		{"-model", ""},
		{"-seeds", "0"},
		{"-devpages", "9", "-pages", "3"},
		{"-nonsense"},
		{"stray-positional"},
		{"-crash", "-chaos", "recoverable"},
		{"-crash", "-link"},
		{"-link", "-chaos", "recoverable"},
		{"-linkplan", "down@0..5"},
		{"-queuecap", "4"},
		{"-link", "-linkplan", "down@5..2"},
		{"-serve", "-chaos", "recoverable"},
		{"-serve", "-link"},
		{"-serve", "-crash"},
		{"-serve", "-linkplan", "down@0..5"},
		{"-clients", "4"},
		{"-workers", "4"},
		{"-tenant", "-serve"},
		{"-tenant", "-chaos", "recoverable"},
		{"-tenant", "-linkplan", "down@0..5"},
		{"-tenant", "-clients", "4"},
		{"-migrate", "-tenant"},
		{"-migrate", "-serve"},
		{"-migrate", "-crash"},
		{"-migrate", "-chaos", "recoverable"},
		{"-migrate", "-linkplan", "down@0..5"},
		{"-migrate", "-clients", "4"},
		{"-migrate", "-workers", "4"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := appMain(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestParseModels(t *testing.T) {
	if ms, err := parseModels("salus, conventional"); err != nil || len(ms) != 2 {
		t.Errorf("parseModels(\"salus, conventional\") = %v, %v", ms, err)
	}
	if _, err := parseModels("bogus"); err == nil {
		t.Error("parseModels accepted an unknown model")
	}
}
