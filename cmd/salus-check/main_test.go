package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCleanRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "2", "-ops", "60", "-pages", "6", "-devpages", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS summary: %q", out.String())
	}
}

func TestSingleModelRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-seeds", "1", "-ops", "40", "-pages", "6", "-devpages", "2", "-model", "salus", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "clean") {
		t.Errorf("-v produced no progress lines: %q", errOut.String())
	}
}

func TestCrashRunExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := appMain([]string{"-crash", "-seeds", "2", "-ops", "24", "-pages", "4", "-devpages", "2", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "crash PASS") {
		t.Errorf("missing crash PASS summary: %q", out.String())
	}
	if !strings.Contains(out.String(), "cuts enumerated") {
		t.Errorf("missing enumeration accounting: %q", out.String())
	}
	if !strings.Contains(errOut.String(), "epochs") {
		t.Errorf("-v produced no per-seed crash progress: %q", errOut.String())
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-model", "quantum"},
		{"-model", ""},
		{"-seeds", "0"},
		{"-devpages", "9", "-pages", "3"},
		{"-nonsense"},
		{"stray-positional"},
		{"-crash", "-chaos", "recoverable"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := appMain(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestParseModels(t *testing.T) {
	if ms, err := parseModels("salus, conventional"); err != nil || len(ms) != 2 {
		t.Errorf("parseModels(\"salus, conventional\") = %v, %v", ms, err)
	}
	if _, err := parseModels("bogus"); err == nil {
		t.Error("parseModels accepted an unknown model")
	}
}
