// Package salus is a from-scratch reproduction of "Salus: Efficient
// Security Support for CXL-Expanded GPU Memory" (HPCA 2024): a security
// model for two-tier GPU memory (device HBM/GDDR + CXL expansion) whose
// metadata is decoupled from the physical location of data, so page
// migration between tiers needs no re-encryption and minimal metadata
// traffic.
//
// The package exposes two layers:
//
//   - The functional library (this package, re-exporting
//     internal/securemem): a protected two-tier memory with real
//     counter-mode encryption, truncated keyed MACs, and Bonsai Merkle
//     Trees, usable as a reference implementation of the paper's
//     mechanisms. Open a System, Read and Write through it, and observe
//     migration, lazy metadata fetch, dirty tracking, and attack detection
//     via Stats and the error values.
//
//   - The evaluation stack (internal/system, internal/experiments, and the
//     cmd/ tools): a discrete-event timing simulator of a Volta-like GPU
//     with CXL expansion that regenerates every table and figure of the
//     paper's evaluation. See cmd/salus-bench.
package salus

import (
	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/securemem"
)

// Model selects the protection scheme of a System.
type Model = securemem.Model

// Protection models.
const (
	// ModelNone stores plaintext with no metadata (baseline for
	// comparisons; offers no protection).
	ModelNone = securemem.ModelNone
	// ModelConventional binds security metadata to physical locations, as
	// in prior GPU memory-protection work: every page migration decrypts
	// and re-encrypts the page.
	ModelConventional = securemem.ModelConventional
	// ModelSalus is the paper's unified model: metadata is indexed by the
	// permanent CXL address, migration moves ciphertext verbatim, majors
	// travel embedded in MAC sectors, MAC sectors are fetched on first
	// access, and eviction writes back only dirty chunks.
	ModelSalus = securemem.ModelSalus
)

// Config sizes a System.
type Config = securemem.Config

// HomeAddr is a byte address in the CXL (home) address space — the
// permanent identity of a datum; all security metadata is keyed by it.
type HomeAddr = securemem.HomeAddr

// DevAddr is a byte address in the GPU device tier — the transient
// physical location of a resident page.
type DevAddr = securemem.DevAddr

// System is a protected two-tier memory with transparent page migration.
type System = securemem.System

// Concurrent is a goroutine-safe wrapper around System.
type Concurrent = securemem.Concurrent

// OpStats counts the security and migration operations a System performed.
type OpStats = securemem.OpStats

// Geometry fixes the layout constants (sector, block, chunk, page sizes).
type Geometry = config.Geometry

// Detection errors returned by System.Read/Write.
var (
	// ErrIntegrity reports a failed MAC check: tampered or spliced data.
	ErrIntegrity = securemem.ErrIntegrity
	// ErrFreshness reports a failed integrity-tree check: replayed
	// metadata.
	ErrFreshness = securemem.ErrFreshness
	// ErrOutOfRange reports an access beyond the home address space.
	ErrOutOfRange = securemem.ErrOutOfRange
	// ErrTransient reports a retryable link fault that persisted past the
	// retry budget (only with a fault injector attached).
	ErrTransient = securemem.ErrTransient
	// ErrPoison reports an uncorrectable media error: the addressed data
	// is lost and its region quarantined.
	ErrPoison = securemem.ErrPoison
)

// RetryPolicy bounds the transient-fault retry loop of a fault-armed
// System; see System.AttachFaults.
type RetryPolicy = securemem.RetryPolicy

// DefaultRetryPolicy mirrors a CXL link-layer retry budget.
func DefaultRetryPolicy() RetryPolicy { return securemem.DefaultRetryPolicy() }

// DefaultGeometry returns the paper's layout: 32 B sectors, 128 B blocks,
// 256 B interleaving chunks, 4 KiB pages.
func DefaultGeometry() Geometry {
	return config.Default().Geometry
}

// New creates a protected two-tier memory. See securemem.Config for the
// fields; zero-valued keys fall back to built-in development keys.
func New(cfg Config) (*System, error) {
	return securemem.New(cfg)
}

// NewDefault creates a Salus-protected memory of totalPages pages whose
// device tier holds devicePages pages, using the default geometry.
func NewDefault(totalPages, devicePages int) (*System, error) {
	return securemem.New(securemem.Config{
		Geometry:    DefaultGeometry(),
		Model:       ModelSalus,
		TotalPages:  totalPages,
		DevicePages: devicePages,
	})
}

// NewConcurrent creates a goroutine-safe protected memory.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	return securemem.NewConcurrent(cfg)
}

// TrustedRoot is the TCB state of a suspended System: the integrity-tree
// roots that must be kept in trusted storage while the (untrusted) image
// is at rest.
type TrustedRoot = securemem.TrustedRoot

// Resume reconstructs a suspended Salus system from its untrusted image
// and trusted root; a tampered or replayed image is rejected. See
// System.Suspend.
func Resume(cfg Config, image []byte, root TrustedRoot) (*System, error) {
	return securemem.Resume(cfg, image, root)
}
