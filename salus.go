// Package salus is a from-scratch reproduction of "Salus: Efficient
// Security Support for CXL-Expanded GPU Memory" (HPCA 2024): a security
// model for two-tier GPU memory (device HBM/GDDR + CXL expansion) whose
// metadata is decoupled from the physical location of data, so page
// migration between tiers needs no re-encryption and minimal metadata
// traffic.
//
// The package exposes two layers:
//
//   - The functional library (this package, re-exporting
//     internal/securemem): a protected two-tier memory with real
//     counter-mode encryption, truncated keyed MACs, and Bonsai Merkle
//     Trees, usable as a reference implementation of the paper's
//     mechanisms. Open a System, Read and Write through it, and observe
//     migration, lazy metadata fetch, dirty tracking, and attack detection
//     via Stats and the error values.
//
//   - The evaluation stack (internal/system, internal/experiments, and the
//     cmd/ tools): a discrete-event timing simulator of a Volta-like GPU
//     with CXL expansion that regenerates every table and figure of the
//     paper's evaluation. See cmd/salus-bench.
package salus

import (
	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
)

// Model selects the protection scheme of a System.
type Model = securemem.Model

// Protection models.
const (
	// ModelNone stores plaintext with no metadata (baseline for
	// comparisons; offers no protection).
	ModelNone = securemem.ModelNone
	// ModelConventional binds security metadata to physical locations, as
	// in prior GPU memory-protection work: every page migration decrypts
	// and re-encrypts the page.
	ModelConventional = securemem.ModelConventional
	// ModelSalus is the paper's unified model: metadata is indexed by the
	// permanent CXL address, migration moves ciphertext verbatim, majors
	// travel embedded in MAC sectors, MAC sectors are fetched on first
	// access, and eviction writes back only dirty chunks.
	ModelSalus = securemem.ModelSalus
)

// Config sizes a System.
type Config = securemem.Config

// HomeAddr is a byte address in the CXL (home) address space — the
// permanent identity of a datum; all security metadata is keyed by it.
type HomeAddr = securemem.HomeAddr

// DevAddr is a byte address in the GPU device tier — the transient
// physical location of a resident page.
type DevAddr = securemem.DevAddr

// System is a protected two-tier memory with transparent page migration.
type System = securemem.System

// Concurrent is a goroutine-safe wrapper around System.
type Concurrent = securemem.Concurrent

// OpStats counts the security and migration operations a System performed.
type OpStats = securemem.OpStats

// Geometry fixes the layout constants (sector, block, chunk, page sizes).
type Geometry = config.Geometry

// Detection errors returned by System.Read/Write.
var (
	// ErrIntegrity reports a failed MAC check: tampered or spliced data.
	ErrIntegrity = securemem.ErrIntegrity
	// ErrFreshness reports a failed integrity-tree check: replayed
	// metadata.
	ErrFreshness = securemem.ErrFreshness
	// ErrOutOfRange reports an access beyond the home address space.
	ErrOutOfRange = securemem.ErrOutOfRange
	// ErrTransient reports a retryable link fault that persisted past the
	// retry budget (only with a fault injector attached).
	ErrTransient = securemem.ErrTransient
	// ErrPoison reports an uncorrectable media error: the addressed data
	// is lost and its region quarantined.
	ErrPoison = securemem.ErrPoison
	// ErrImageMismatch reports a Resume whose config or geometry disagrees
	// with the image's recorded dimensions.
	ErrImageMismatch = securemem.ErrImageMismatch
	// ErrTornCheckpoint reports checkpoint-journal damage before the
	// trusted epoch's commit record during Recover.
	ErrTornCheckpoint = crash.ErrTornCheckpoint
	// ErrRollback reports a checkpoint journal whose commits stop short of
	// the trusted epoch: a stale journal replayed against a newer root.
	ErrRollback = crash.ErrRollback
	// ErrPowerLost reports a write or sync on a crash-injected store after
	// its configured power-cut point.
	ErrPowerLost = crash.ErrPowerLost
	// ErrLinkDown reports a home-tier operation refused because the CXL
	// link is down (only with a link attached; see System.AttachLink).
	ErrLinkDown = securemem.ErrLinkDown
	// ErrDegraded reports a home-tier operation refused while the link
	// circuit breaker is open after repeated failures.
	ErrDegraded = securemem.ErrDegraded
	// ErrQueueFull reports an eviction writeback that could not be parked
	// because the dirty-writeback queue is at capacity.
	ErrQueueFull = securemem.ErrQueueFull
	// ErrWritebacksPending reports a Suspend or Checkpoint attempted while
	// parked writebacks have not yet been drained.
	ErrWritebacksPending = securemem.ErrWritebacksPending
	// ErrGeometry reports a Config whose geometry the security engine
	// cannot serve (e.g. a sector size other than the 32 B the counter
	// and MAC layout are built around).
	ErrGeometry = securemem.ErrGeometry
)

// RetryPolicy bounds the transient-fault retry loop of a fault-armed
// System; see System.AttachFaults.
type RetryPolicy = securemem.RetryPolicy

// DefaultRetryPolicy mirrors a CXL link-layer retry budget.
func DefaultRetryPolicy() RetryPolicy { return securemem.DefaultRetryPolicy() }

// DefaultGeometry returns the paper's layout: 32 B sectors, 128 B blocks,
// 256 B interleaving chunks, 4 KiB pages.
func DefaultGeometry() Geometry {
	return config.Default().Geometry
}

// New creates a protected two-tier memory. See securemem.Config for the
// fields; zero-valued keys fall back to built-in development keys.
func New(cfg Config) (*System, error) {
	return securemem.New(cfg)
}

// NewDefault creates a Salus-protected memory of totalPages pages whose
// device tier holds devicePages pages, using the default geometry.
func NewDefault(totalPages, devicePages int) (*System, error) {
	return securemem.New(securemem.Config{
		Geometry:    DefaultGeometry(),
		Model:       ModelSalus,
		TotalPages:  totalPages,
		DevicePages: devicePages,
	})
}

// NewConcurrent creates a goroutine-safe protected memory.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	return securemem.NewConcurrent(cfg)
}

// Link models the CXL interconnect between the device and home tiers: a
// deterministic Up/Degraded/Down state machine driven by a LinkPlan, with
// a circuit breaker in front of it. Attach one with System.AttachLink to
// enable degraded-mode operation.
type Link = link.Link

// LinkPlan scripts the link's behaviour over time; see ParseLinkPlan.
type LinkPlan = link.Plan

// ManualLink is a LinkPlan driven explicitly via Set, for tests and
// operational toggles.
type ManualLink = link.Manual

// LinkState is the instantaneous health of the link.
type LinkState = link.State

// Link states.
const (
	// LinkUp means transfers succeed at nominal latency.
	LinkUp = link.StateUp
	// LinkDegraded means transfers succeed but carry extra latency.
	LinkDegraded = link.StateDegraded
	// LinkDown means transfers are refused.
	LinkDown = link.StateDown
)

// BreakerConfig tunes the link circuit breaker: Threshold consecutive
// failures open it; while open, Cooldown attempts fast-fail before a
// half-open probe.
type BreakerConfig = link.Config

// DefaultBreakerConfig returns the standard breaker tuning.
func DefaultBreakerConfig() BreakerConfig { return link.DefaultConfig() }

// NewLink wraps plan in a circuit breaker. Pass the result to
// System.AttachLink.
func NewLink(plan LinkPlan, cfg BreakerConfig) *Link { return link.New(plan, cfg) }

// NewManualLink returns a plan that stays Up until Set is called.
func NewManualLink() *ManualLink { return link.NewManual() }

// ParseLinkPlan parses a flap-plan spec: either scripted windows such as
// "down@40..70,deg@100..200:16" (ordinal ranges, an optional :latency on
// degraded windows) or a seeded stochastic plan such as
// "rate:seed=1,flap=0.02,downlen=24,deg=0.02,deglen=16,lat=12".
func ParseLinkPlan(spec string) (LinkPlan, error) { return link.ParsePlan(spec) }

// DefaultWritebackQueueCap is the dirty-writeback queue capacity used when
// System.AttachLink is given a non-positive queueCap.
const DefaultWritebackQueueCap = securemem.DefaultWritebackQueueCap

// TrustedRoot is the TCB state of a suspended System: the integrity-tree
// roots that must be kept in trusted storage while the (untrusted) image
// is at rest.
type TrustedRoot = securemem.TrustedRoot

// Resume reconstructs a suspended Salus system from its untrusted image
// and trusted root; a tampered or replayed image is rejected. See
// System.Suspend.
func Resume(cfg Config, image []byte, root TrustedRoot) (*System, error) {
	return securemem.Resume(cfg, image, root)
}

// UnmarshalTrustedRoot decodes a TrustedRoot serialised with
// TrustedRoot.MarshalBinary, rejecting damaged or truncated encodings. The
// encoding carries no authentication — the root must still travel through
// trusted storage.
func UnmarshalTrustedRoot(data []byte) (TrustedRoot, error) {
	return securemem.UnmarshalTrustedRoot(data)
}

// StableStore is the durability interface a checkpoint journal writes
// through: appending writes separated by explicit sync barriers.
type StableStore = crash.StableStore

// MemStore is an always-durable in-memory StableStore for checkpoint
// journals.
type MemStore = crash.MemStore

// NewMemStore returns an empty in-memory journal store.
func NewMemStore() *MemStore { return crash.NewMemStore() }

// Journal is a write-ahead checkpoint journal with two-phase epoch commit;
// pass one to System.Checkpoint.
type Journal = crash.Journal

// NewJournal returns a checkpoint journal writing through store.
func NewJournal(store StableStore) *Journal { return crash.NewJournal(store) }

// CrashStore is a StableStore that simulates power loss at a chosen write
// boundary, for crash-recovery testing; see crash.NewCrashStore.
type CrashStore = crash.CrashStore

// DamageMode selects how a CrashStore's unsynced writes appear on the
// medium after the cut.
type DamageMode = crash.DamageMode

// Damage modes for NewCrashStore.
const (
	// CutClean drops every unsynced write.
	CutClean = crash.CutClean
	// CutTorn applies a prefix of the unsynced writes, tearing the last.
	CutTorn = crash.CutTorn
	// CutReorder applies an arbitrary subset at their natural offsets.
	CutReorder = crash.CutReorder
	// CutCorrupt additionally flips a bit in the synced region.
	CutCorrupt = crash.CutCorrupt
)

// NewCrashStore returns a store that loses power at event boundary
// cutAfter (writes and syncs both count), damaging the unsynced tail per
// mode; deterministic in (cutAfter, mode, seed).
func NewCrashStore(cutAfter int, mode DamageMode, seed int64) *CrashStore {
	return crash.NewCrashStore(cutAfter, mode, seed)
}

// Recover reconstructs a Salus system from a checkpoint journal and the
// trusted root of the epoch to restore. Journal damage before the trusted
// epoch's commit surfaces as ErrTornCheckpoint, a journal whose commits
// stop short of the trusted epoch as ErrRollback, and a journal whose
// counters disagree with the trusted roots as ErrFreshness. See
// System.Checkpoint.
func Recover(cfg Config, journal []byte, root TrustedRoot) (*System, error) {
	return securemem.Recover(cfg, journal, root)
}
