package salus_test

import (
	"bytes"
	"errors"
	"testing"

	salus "github.com/salus-sim/salus"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := salus.NewDefault(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("confidential model weights")
	if err := sys.Write(4096, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := sys.Read(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}
	if sys.Model() != salus.ModelSalus {
		t.Error("NewDefault should use the Salus model")
	}
	if sys.Stats().PageMigrationsIn == 0 {
		t.Error("no migrations recorded")
	}
}

func TestPublicErrorValues(t *testing.T) {
	sys, err := salus.NewDefault(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Read(salus.HomeAddr(sys.Size()), make([]byte, 1)); !errors.Is(err, salus.ErrOutOfRange) {
		t.Errorf("out-of-range read: %v", err)
	}
	if err := sys.Write(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if !sys.CorruptHome(0) {
		t.Fatal("CorruptHome(0) reported out of range")
	}
	if err := sys.Read(0, make([]byte, 1)); !errors.Is(err, salus.ErrIntegrity) {
		t.Errorf("tampered read: %v", err)
	}

	// A geometry the crypto layout cannot serve must be rejected up front
	// with the typed error, not fail deep inside the engine.
	g := salus.DefaultGeometry()
	g.SectorSize = 64
	if _, err := salus.New(salus.Config{
		Geometry: g, Model: salus.ModelSalus, TotalPages: 8, DevicePages: 2,
	}); !errors.Is(err, salus.ErrGeometry) {
		t.Errorf("64 B sector geometry: %v, want ErrGeometry", err)
	}
}

func TestConventionalModelViaPublicAPI(t *testing.T) {
	sys, err := salus.New(salus.Config{
		Geometry:    salus.DefaultGeometry(),
		Model:       salus.ModelConventional,
		TotalPages:  16,
		DevicePages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < 16; pg++ {
		if err := sys.Read(salus.HomeAddr(pg*4096), make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().RelocationReEncryptions == 0 {
		t.Error("conventional model performed no relocation re-encryptions")
	}
}

func TestCheckpointRecoverViaPublicAPI(t *testing.T) {
	sys, err := salus.NewDefault(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("survives power loss")
	if err := sys.Write(2*4096, msg); err != nil {
		t.Fatal(err)
	}
	store := salus.NewMemStore()
	j := salus.NewJournal(store)
	root, err := sys.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", sys.Stats().Checkpoints)
	}
	cfg := salus.Config{Geometry: salus.DefaultGeometry(), Model: salus.ModelSalus, TotalPages: 8, DevicePages: 2}
	rec, err := salus.Recover(cfg, store.Bytes(), root)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := rec.Read(2*4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("recovered %q, want %q", got, msg)
	}
	// The marshalled root round-trips through untrusted transport.
	root2, err := salus.UnmarshalTrustedRoot(root.MarshalBinary())
	if err != nil || root2.Epoch != root.Epoch || root2.CXLRoot != root.CXLRoot {
		t.Fatalf("root round trip: %+v, %v", root2, err)
	}
	// A stale journal against the advanced root is a rollback.
	if err := rec.Write(0, []byte("epoch 2")); err != nil {
		t.Fatal(err)
	}
	j2 := salus.NewJournal(salus.NewMemStore())
	root3, err := rec.Checkpoint(j2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := salus.Recover(cfg, store.Bytes(), root3); !errors.Is(err, salus.ErrRollback) {
		t.Errorf("stale journal: %v, want ErrRollback", err)
	}
	// A journal cut mid-write through a crash-injected store is torn.
	cs := salus.NewCrashStore(1000, salus.CutTorn, 7)
	if _, err := rec.Checkpoint(salus.NewJournal(cs)); err != nil {
		t.Fatal(err)
	}
	durable := cs.Durable()
	if len(durable) == 0 {
		t.Fatal("crash store recorded nothing")
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := salus.DefaultGeometry()
	if g.SectorSize != 32 || g.BlockSize != 128 || g.ChunkSize != 256 || g.PageSize != 4096 {
		t.Errorf("geometry = %+v", g)
	}
}
