// Benchmarks regenerating the paper's tables and figures. Each benchmark
// runs the corresponding experiment campaign on the reduced Quick settings
// (so `go test -bench=.` finishes in minutes) and reports the headline
// statistic as a custom metric alongside the usual ns/op. For the
// full-scale campaign matching EXPERIMENTS.md, use `go run ./cmd/salus-bench
// -all`.
package salus_test

import (
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/experiments"
	"github.com/salus-sim/salus/internal/perfbench"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Quick())
}

// BenchmarkTable1 exercises configuration validation and rendering.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(config.Default())
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 renders the metadata-cache configuration.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(config.Default())
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig03 regenerates the motivation slowdown (paper: 2.04x).
func BenchmarkFig03(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean slowdown (paper: 2.04)"], "slowdown-geomean")
	}
}

// BenchmarkFig10 regenerates the headline IPC improvement (paper: +29.94%).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["geomean improvement %% (paper: 29.94)"], "improvement-%")
	}
}

// BenchmarkFig11 regenerates the security-traffic reduction (paper: 47.79%
// of conventional on average).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["mean normalised traffic (paper: 0.4779)"], "traffic-ratio")
	}
}

// BenchmarkFig12 regenerates the bandwidth-utilisation savings (paper:
// 14.92 pp on CXL, 2.05 pp on device memory).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["mean CXL utilisation saved, pp (paper: 14.92)"], "cxl-saved-pp")
		b.ReportMetric(res.Summary["mean device utilisation saved, pp (paper: 2.05)"], "dev-saved-pp")
	}
}

// BenchmarkFig13 regenerates the CXL-bandwidth sensitivity sweep (paper:
// +32.79/29.94/32.90/21.76% at 1/32, 1/16, 1/8, 1/4).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["improvement % at 1/16"], "improvement-1/16-%")
	}
}

// BenchmarkFig14 regenerates the footprint sensitivity sweep (paper:
// +51.64/34.48/26.83% at 20/35/50% resident).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["improvement % at 20%"], "improvement-20%-%")
	}
}

// BenchmarkAblation regenerates the cumulative mechanism ablation.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		res, err := r.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["+ fine-grained dirty tracking (full Salus)"], "full-salus-%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// memory accesses per wall-clock second for one Salus run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := trace.ByName("nw")
	cfg := experiments.Quick().Cfg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := system.Run(system.Options{
			Cfg: cfg, Workload: w, Model: system.ModelSalus,
			MaxAccesses: 6000, CycleLimit: 1_000_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.MemRequests), "accesses/run")
	}
}

// BenchmarkFunctionalReadWrite measures the functional library's secure
// read+write throughput (real AES + HMAC + tree updates per access).
func BenchmarkFunctionalReadWrite(b *testing.B) {
	sys, err := securemem.New(securemem.Config{
		Geometry:    config.Default().Geometry,
		Model:       securemem.ModelSalus,
		TotalPages:  64,
		DevicePages: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 32)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := securemem.HomeAddr((i * 4096 * 3) % (64 * 4096 / 2))
		if err := sys.Write(addr, buf); err != nil {
			b.Fatal(err)
		}
		if err := sys.Read(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentParallel measures the thread-safe wrapper under
// parallel load, contrasting a single global lock (Shards=1) with the
// sharded default. This is the workload `make bench-record` snapshots
// into BENCH_perf.json and `make bench-compare` gates on; run with -cpu
// to study scaling, e.g. go test -bench ConcurrentParallel -cpu 1,2,4,8
func BenchmarkConcurrentParallel(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"global", 1}, {"sharded", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			c, err := perfbench.NewTarget(tc.shards)
			if err != nil {
				b.Fatal(err)
			}
			perfbench.RunParallelWorkload(b, c, perfbench.MixedWriteEvery)
		})
	}
}

// BenchmarkFunctionalMigration measures the cost of a page round trip
// (migrate in + evict) under both secure models, showing the functional
// cost asymmetry that the timing model turns into the paper's figures.
func BenchmarkFunctionalMigration(b *testing.B) {
	for _, model := range []securemem.Model{securemem.ModelConventional, securemem.ModelSalus} {
		b.Run(model.String(), func(b *testing.B) {
			sys, err := securemem.New(securemem.Config{
				Geometry:    config.Default().Geometry,
				Model:       model,
				TotalPages:  4,
				DevicePages: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate between two pages with one frame: every access
				// is a migration plus an eviction.
				if err := sys.Read(securemem.HomeAddr(i%2)*4096, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
