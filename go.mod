module github.com/salus-sim/salus

go 1.22
