package salus_test

import (
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

// The basic flow: create a protected two-tier memory, write through it,
// read back with full verification, and observe that migration needed no
// re-encryption.
func Example() {
	sys, err := salus.NewDefault(64, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(4096, []byte("hello, protected world")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 22)
	if err := sys.Read(4096, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	fmt.Println("relocation re-encryptions:", sys.Stats().RelocationReEncryptions)
	// Output:
	// hello, protected world
	// relocation re-encryptions: 0
}

// Suspend a system to an untrusted image plus a trusted root, then resume
// it elsewhere.
func ExampleResume() {
	cfg := salus.Config{
		Geometry:    salus.DefaultGeometry(),
		Model:       salus.ModelSalus,
		TotalPages:  16,
		DevicePages: 4,
	}
	sys, err := salus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(0, []byte("persist me")); err != nil {
		log.Fatal(err)
	}
	image, root, err := sys.Suspend()
	if err != nil {
		log.Fatal(err)
	}
	restored, err := salus.Resume(cfg, image, root)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 10)
	if err := restored.Read(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	// Output:
	// persist me
}

// Detect a physical attack: flipping a stored bit is caught by MAC
// verification on the next read.
func ExampleSystem_CorruptHome() {
	sys, err := salus.NewDefault(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(0, []byte("x")); err != nil {
		log.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.CorruptHome(0))
	err = sys.Read(0, make([]byte, 1))
	fmt.Println(err != nil)
	// Output:
	// true
	// true
}

// Stream data directly into the CXL tier without disturbing the device
// page cache, then checkpoint the chunk back to the compact counter form.
func ExampleSystem_WriteThrough() {
	sys, err := salus.NewDefault(16, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.WriteThrough(8*4096, []byte("streaming store")); err != nil {
		log.Fatal(err)
	}
	if err := sys.CheckpointChunk(8 * 4096); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 15)
	if err := sys.ReadThrough(8*4096, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf), sys.IsResident(8*4096))
	// Output:
	// streaming store false
}

// Rotate the keys: data survives, counters reset, old images become void.
func ExampleSystem_ReKey() {
	sys, err := salus.NewDefault(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(0, []byte("survives rotation")); err != nil {
		log.Fatal(err)
	}
	if err := sys.ReKey([]byte("0123456789abcdef"), []byte("fresh-mac-key")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 17)
	if err := sys.Read(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf), sys.Stats().KeyRotations)
	// Output:
	// survives rotation 1
}
