// Link outage: attach a CXL link model to a protected memory and walk
// the degraded-mode ladder. While the link is down, device-resident pages
// keep serving; misses fail fast with a typed error; dirty evictions park
// on a bounded writeback queue instead of blocking. On recovery the queue
// drains in order and the home tier ends byte-identical to an
// outage-free run — and a rollback staged against the home tier during
// the outage is caught on drain, because every parked chunk is
// re-verified against the trusted integrity root before it overwrites
// home state.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

func pageData(page, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(page*31 + i)
	}
	return b
}

func main() {
	// 8 pages total, 2 device frames, a hand-driven link, and a writeback
	// queue of 1 so backpressure is easy to show.
	sys, err := salus.NewDefault(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	manual := salus.NewManualLink()
	lnk := salus.NewLink(manual, salus.DefaultBreakerConfig())
	sys.AttachLink(lnk, nil, 1)

	// Pull pages 0 and 1 into the device tier and dirty them.
	for pg := 0; pg < 2; pg++ {
		if err := sys.Write(salus.HomeAddr(pg*4096), pageData(pg, 64)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("phase 1 — outage: resident pages serve, misses fail typed")
	manual.Set(salus.LinkDown)
	got := make([]byte, 64)
	if err := sys.Read(0, got); err != nil || !bytes.Equal(got, pageData(0, 64)) {
		log.Fatalf("FAILED: resident read during outage (err=%v)", err)
	}
	fmt.Println("  resident page 0 read byte-exact with the link down")
	err = sys.Read(5*4096, make([]byte, 32)) // page 5 is not resident
	if !errors.Is(err, salus.ErrLinkDown) && !errors.Is(err, salus.ErrDegraded) {
		log.Fatalf("FAILED: miss during outage not typed (err=%v)", err)
	}
	fmt.Printf("  miss on page 5 refused: %v\n\n", err)

	fmt.Println("phase 2 — dirty writebacks park; a full queue pushes back")
	err = sys.Flush() // two dirty pages, queue capacity one
	if !errors.Is(err, salus.ErrQueueFull) {
		log.Fatalf("FAILED: second eviction should hit queue capacity (err=%v)", err)
	}
	fmt.Printf("  %d writeback parked, then: %v\n\n", sys.QueuedWritebacks(), err)

	fmt.Println("phase 3 — recovery: the queue drains, home catches up")
	manual.Set(salus.LinkUp)
	lnk.ForceUp() // operator reset: close the breaker instead of waiting out its cooldown
	n, err := sys.DrainWritebacks()
	if err != nil {
		log.Fatalf("FAILED: drain after recovery (err=%v)", err)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("  drained %d parked writeback(s); link saw %d refusals, %d flaps\n\n",
		n, st.LinkDownRefusals, st.LinkFlaps)

	fmt.Println("phase 4 — a home rollback during the outage is detected on drain")
	sys2, err := salus.NewDefault(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	manual2 := salus.NewManualLink()
	lnk2 := salus.NewLink(manual2, salus.DefaultBreakerConfig())
	sys2.AttachLink(lnk2, nil, 4)
	if err := sys2.Write(0, pageData(1, 64)); err != nil { // epoch A
		log.Fatal(err)
	}
	if err := sys2.Flush(); err != nil {
		log.Fatal(err)
	}
	snap := sys2.SnapshotHomeChunk(0)                      // attacker records epoch A's home state
	if err := sys2.Write(0, pageData(2, 64)); err != nil { // epoch B
		log.Fatal(err)
	}
	if err := sys2.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := sys2.Write(0, pageData(3, 64)); err != nil { // epoch C, dirty
		log.Fatal(err)
	}
	manual2.Set(salus.LinkDown)
	if err := sys2.Flush(); err != nil && !errors.Is(err, salus.ErrLinkDown) &&
		!errors.Is(err, salus.ErrDegraded) {
		log.Fatal(err)
	}
	sys2.ReplayHomeChunk(snap) // roll the home tier back while the link is dark
	manual2.Set(salus.LinkUp)
	lnk2.ForceUp()
	if _, err := sys2.DrainWritebacks(); !errors.Is(err, salus.ErrFreshness) {
		log.Fatalf("FAILED: rollback not detected on drain (err=%v)", err)
	}
	fmt.Println("  drain refused: the parked chunk's metadata no longer matches the trusted root")
	fmt.Printf("  queue still holds the park (%d entries) — nothing stale reached home\n",
		sys2.QueuedWritebacks())
	fmt.Println("\noutage survived: resident data served, writebacks reconciled, rollback caught")
}
