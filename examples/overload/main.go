// Overload: push a traffic service past its admission, deadline, and
// retry budgets and watch every refusal come back typed. A serve.Server
// multiplexes classed requests onto one protected memory; a token bucket
// refuses bulk bursts (ErrOverload), a link outage turns retries into
// deadline misses (ErrDeadline), failed writes are refused a retry
// because the engine may have applied them (ErrAmbiguous), sustained
// link pressure climbs the degradation ladder until bulk is shed
// outright (ErrShed), and recovery steps the ladder back down. The final
// report shows per-class availability — the number the combined-chaos
// campaign (salus-check -serve) holds an SLO floor on.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/serve"
)

func main() {
	// A small protected memory: 8 pages, 2 device frames, hand-driven
	// CXL link. Pages 0 and 1 are made device-resident below; everything
	// else misses and needs the link.
	eng, err := securemem.NewConcurrent(securemem.Config{
		Geometry:    config.Default().Geometry,
		Model:       securemem.ModelSalus,
		TotalPages:  8,
		DevicePages: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	manual := link.NewManual()
	eng.AttachLink(link.New(manual, link.DefaultConfig()), nil, 2)

	// Tight budgets so every mechanism trips within a few requests:
	// interactive gets a 24-cycle deadline and 8 retries, bulk gets a
	// 2-token bucket. RestoreAfter 4 keeps the recovery phase short.
	var classes [serve.NumClasses]serve.ClassConfig
	classes[serve.Interactive] = serve.ClassConfig{Queue: 8, Retries: 8, Deadline: 24}
	classes[serve.Batch] = serve.ClassConfig{Queue: 8, Retries: 2, Deadline: 256}
	classes[serve.Bulk] = serve.ClassConfig{Rate: 0.25, Burst: 2, Queue: 4, Retries: 1, Deadline: 256}
	srv, err := serve.New(serve.Config{Engine: eng, Classes: classes, RestoreAfter: 4})
	if err != nil {
		log.Fatal(err)
	}

	payload := func(p int) []byte {
		b := make([]byte, 32)
		for i := range b {
			b[i] = byte(p*31 + i)
		}
		return b
	}

	fmt.Println("phase 1 — healthy: interactive writes pull pages device-resident")
	for p := 0; p < 2; p++ {
		req := serve.Request{Class: serve.Interactive, Addr: securemem.HomeAddr(p * 4096), Write: true, Data: payload(p)}
		if err := srv.Do(&req); err != nil {
			log.Fatalf("FAILED: healthy write: %v", err)
		}
	}
	fmt.Println("  pages 0 and 1 written and resident")

	fmt.Println("\nphase 2 — burst: bulk exceeds its token bucket, refused typed")
	served, refused := 0, 0
	for i := 0; i < 8; i++ {
		req := serve.Request{Class: serve.Bulk, Addr: 0, Buf: make([]byte, 32)}
		switch err := srv.Do(&req); {
		case err == nil:
			served++
		case errors.Is(err, serve.ErrOverload):
			refused++
		default:
			log.Fatalf("FAILED: burst refusal not typed ErrOverload: %v", err)
		}
	}
	fmt.Printf("  8 back-to-back bulk reads: %d served, %d refused with ErrOverload\n", served, refused)

	fmt.Println("\nphase 3 — outage: the link goes down, budgets start binding")
	manual.Set(link.StateDown)

	// A resident page still serves: degraded mode, not an outage for it.
	if err := srv.Do(&serve.Request{Class: serve.Interactive, Addr: 0, Buf: make([]byte, 32)}); err != nil {
		log.Fatalf("FAILED: resident read during outage: %v", err)
	}
	fmt.Println("  resident page 0 still serves with the link down")

	// A miss retries with exponential backoff charged to the service
	// clock until the 24-cycle deadline passes.
	err = srv.Do(&serve.Request{Class: serve.Interactive, Addr: securemem.HomeAddr(5 * 4096), Buf: make([]byte, 32)})
	if !errors.Is(err, serve.ErrDeadline) {
		log.Fatalf("FAILED: miss during outage not ErrDeadline: %v", err)
	}
	fmt.Printf("  miss on page 5 burned its deadline: %v\n", err)

	// A failed write is never retried: the engine may already have
	// applied it, and a blind retry could double-apply.
	err = srv.Do(&serve.Request{Class: serve.Interactive, Addr: securemem.HomeAddr(6 * 4096), Write: true, Data: payload(6)})
	if !errors.Is(err, serve.ErrAmbiguous) ||
		(!errors.Is(err, securemem.ErrLinkDown) && !errors.Is(err, securemem.ErrDegraded)) {
		log.Fatalf("FAILED: outage write not ErrAmbiguous+link cause: %v", err)
	}
	fmt.Printf("  write refused a retry: %v\n", err)

	fmt.Println("\nphase 4 — pressure: sustained refusals climb the shedding ladder")
	for srv.Tier() == 0 {
		srv.Do(&serve.Request{Class: serve.Interactive, Addr: securemem.HomeAddr(7 * 4096), Write: true, Data: payload(7)})
	}
	fmt.Printf("  degradation tier %d reached\n", srv.Tier())
	err = srv.Do(&serve.Request{Class: serve.Bulk, Addr: 0, Buf: make([]byte, 32)})
	if !errors.Is(err, serve.ErrShed) {
		log.Fatalf("FAILED: bulk under pressure not ErrShed: %v", err)
	}
	fmt.Printf("  bulk now shed before touching the engine: %v\n", err)

	fmt.Println("\nphase 5 — recovery: link restored, ladder steps back down")
	manual.Set(link.StateUp)
	for srv.Tier() > 0 {
		if err := srv.Do(&serve.Request{Class: serve.Interactive, Addr: 0, Buf: make([]byte, 32)}); err != nil {
			log.Fatalf("FAILED: post-recovery read: %v", err)
		}
	}
	if err := srv.Do(&serve.Request{Class: serve.Bulk, Addr: 0, Buf: make([]byte, 32)}); err != nil {
		log.Fatalf("FAILED: bulk after recovery: %v", err)
	}
	fmt.Println("  bulk serves again at tier 0")

	rep := srv.Snapshot()
	fmt.Println("\nfinal report — per-class outcomes and availability")
	for c := serve.Class(0); c < serve.NumClasses; c++ {
		o := rep.Ops[c]
		fmt.Printf("  %-11v served %2d, shed %d, deadline %d, overload %d, ambiguous %d  ->  availability %.2f\n",
			c, o.Served, o.Shed, o.Deadline, o.Overload, o.Ambiguous, rep.Availability(c))
	}
	fmt.Printf("  peak degradation tier: %d\n", rep.PeakTier)
	fmt.Println("\nOK: every refusal was typed; no request failed silently")
}
