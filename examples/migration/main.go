// Migration study: run the same page-thrashing workload under the
// conventional (location-coupled) model and under Salus, and compare the
// security operations each performs. This is the functional-library view
// of the paper's Fig. 3 motivation: conventional security pays a full
// decrypt + re-encrypt of every page on every move, Salus pays nothing on
// migration and one collapse pass per dirty chunk on eviction.
package main

import (
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

const (
	totalPages  = 128
	devicePages = 32
	sweeps      = 2
)

func runWorkload(model salus.Model) salus.OpStats {
	sys, err := salus.New(salus.Config{
		Geometry:    salus.DefaultGeometry(),
		Model:       model,
		TotalPages:  totalPages,
		DevicePages: devicePages,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Sweep the whole footprint repeatedly: every page visit migrates the
	// page in (and eventually back out). Reads touch one chunk; every
	// fourth page also writes a few bytes, dirtying exactly one chunk.
	buf := make([]byte, 64)
	for s := 0; s < sweeps; s++ {
		for pg := 0; pg < totalPages; pg++ {
			addr := salus.HomeAddr(pg * 4096)
			if err := sys.Read(addr, buf); err != nil {
				log.Fatal(err)
			}
			if pg%4 == 0 {
				if err := sys.Write(addr+256, []byte("dirty!")); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	return sys.Stats()
}

func main() {
	conv := runWorkload(salus.ModelConventional)
	sal := runWorkload(salus.ModelSalus)

	fmt.Println("identical workload, two security models")
	fmt.Printf("%-32s %14s %14s\n", "", "conventional", "salus")
	row := func(name string, c, s uint64) {
		fmt.Printf("%-32s %14d %14d\n", name, c, s)
	}
	row("page migrations in", conv.PageMigrationsIn, sal.PageMigrationsIn)
	row("page evictions", conv.PageEvictions, sal.PageEvictions)
	row("relocation re-encryptions", conv.RelocationReEncryptions, sal.RelocationReEncryptions)
	row("collapse re-encryptions", conv.CollapseReEncryptions, sal.CollapseReEncryptions)
	row("full-page writebacks", conv.FullPageWritebacks, sal.FullPageWritebacks)
	row("dirty chunk writebacks", conv.DirtyChunkWritebacks, sal.DirtyChunkWritebacks)
	row("clean chunks skipped", conv.CleanChunksSkipped, sal.CleanChunksSkipped)
	row("lazy MAC fetches", conv.LazyMACFetches, sal.LazyMACFetches)

	if sal.RelocationReEncryptions != 0 {
		log.Fatal("BUG: Salus performed relocation re-encryptions")
	}
	fmt.Println()
	fmt.Printf("conventional re-encrypted %d sectors because data moved;\n", conv.RelocationReEncryptions)
	fmt.Printf("salus re-encrypted 0 on relocation and %d collapsing dirty chunks.\n", sal.CollapseReEncryptions)
}
