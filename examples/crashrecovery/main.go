// Crash recovery: take incremental checkpoints of a protected memory
// into a write-ahead journal, lose power mid-checkpoint at an injected
// cut point, and recover the last committed epoch byte-identically —
// then show the two failure modes the design refuses to paper over: a
// corrupted journal fails typed, and a replayed stale journal is
// rejected as a rollback of the trusted epoch.
package main

import (
	"errors"
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

func main() {
	const pages, devPages = 16, 4
	cfg := salus.Config{
		Geometry:    salus.DefaultGeometry(),
		Model:       salus.ModelSalus,
		TotalPages:  pages,
		DevicePages: devPages,
	}
	sys, err := salus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Epoch 1: a little state, checkpointed. Only the dirty pages are
	// journaled — untouched pages need no records at all.
	store := salus.NewMemStore()
	j := salus.NewJournal(store)
	if err := sys.Write(0, []byte("epoch-1 weights")); err != nil {
		log.Fatal(err)
	}
	root1, err := sys.Checkpoint(j)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("epoch %d committed: %d dirty page(s), %d journal bytes\n",
		root1.Epoch, st.CheckpointPages, st.CheckpointBytes)

	// Epoch 2: more writes, another incremental checkpoint.
	if err := sys.Write(3*4096, []byte("epoch-2 activations")); err != nil {
		log.Fatal(err)
	}
	root2, err := sys.Checkpoint(j)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d committed: journal now %d bytes\n\n", root2.Epoch, len(store.Bytes()))

	fmt.Println("power loss mid-checkpoint (torn write injected)")
	// A third checkpoint runs against a store that loses power two write
	// events in — after the dirty-page record is synced but before the
	// commit record lands. The checkpoint call fails typed and must be
	// retried under a fresh epoch; the journal already durable is
	// untouched.
	cs := salus.NewCrashStore(2, salus.CutTorn, 42)
	crashJ := salus.NewJournal(cs)
	if err := sys.Write(5*4096, []byte("doomed epoch")); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Checkpoint(crashJ); errors.Is(err, salus.ErrPowerLost) {
		fmt.Printf("  checkpoint aborted: %v\n", err)
	} else {
		log.Fatalf("FAILED: crash store did not cut power (err=%v)", err)
	}

	fmt.Println("\nrecover from the journal with the epoch-2 trusted root")
	rec, err := salus.Recover(cfg, store.Bytes(), root2)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 19)
	if err := rec.Read(3*4096, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered: %q\n", buf)

	fmt.Println("\nattack 1 — flip one bit of the at-rest journal")
	evil := store.Bytes()
	evil[len(evil)/2] ^= 0x10
	if _, err := salus.Recover(cfg, evil, root2); errors.Is(err, salus.ErrTornCheckpoint) || errors.Is(err, salus.ErrFreshness) {
		fmt.Printf("  rejected: %v\n", err)
	} else {
		log.Fatalf("FAILED: corrupted journal accepted (err=%v)", err)
	}

	fmt.Println("\nattack 2 — replay the epoch-1 journal against the epoch-2 root")
	// An attacker snapshots the stable store after epoch 1 and restores
	// it later, hoping to roll the system back. The TCB's monotonic
	// epoch makes the staleness detectable.
	epoch1Journal := salus.NewMemStore()
	j1 := salus.NewJournal(epoch1Journal)
	fresh, err := salus.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fresh.Write(0, []byte("epoch-1 weights")); err != nil {
		log.Fatal(err)
	}
	if _, err := fresh.Checkpoint(j1); err != nil {
		log.Fatal(err)
	}
	if _, err := salus.Recover(cfg, epoch1Journal.Bytes(), root2); errors.Is(err, salus.ErrRollback) {
		fmt.Printf("  rejected: %v\n", err)
	} else {
		log.Fatalf("FAILED: stale journal accepted (err=%v)", err)
	}
}
