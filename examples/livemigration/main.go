// Attested live migration: move a protected tenant between two hosts
// as ciphertext — no re-encryption — behind a mutual attestation
// handshake, with live traffic riding across the quiesced cutover.
// Then the hostile cases: an alien host refused at the handshake, a
// tampered stream refused typed with the destination untouched, a link
// outage parking and resuming the session, and finally the source
// identity retired beyond use.
package main

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"log"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/migrate"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/serve"
	"github.com/salus-sim/salus/internal/tenant"
)

const migrant = "payroll"

// newHost builds one pool holding the migrant slice and a bystander
// sibling. Hosts sharing masterMAC derive the same per-tenant keys, so
// a migrated journal verifies without re-encryption; a host with
// different masters is cryptographically alien.
func newHost(masterMAC []byte) *tenant.Pool {
	geo := config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
	p, err := tenant.NewPool(tenant.Config{
		Geometry: geo,
		MACKey:   masterMAC,
		Slices: []tenant.Slice{
			{ID: migrant, BasePage: 0, Pages: 8, Frames: 2},
			{ID: "bystander", BasePage: 8, Pages: 8, Frames: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func mustTenant(p *tenant.Pool, id string) *tenant.Tenant {
	t, err := p.Tenant(id)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func nonce(label string) [32]byte {
	return sha256.Sum256([]byte("livemigration-example:" + label))
}

func main() {
	masters := bytes.Repeat([]byte{0x42}, 32)
	hostA := newHost(masters)
	hostB := newHost(masters)
	src := mustTenant(hostA, migrant)

	secret := []byte("payroll row 42, sealed at rest!!") // one full sector
	if err := src.Write(src.Base(), secret); err != nil {
		log.Fatal(err)
	}

	fmt.Println("step 1 — alien host refused at the handshake")
	// A pool built from different masters cannot impersonate a valid
	// destination: its measurement carries a foreign key-domain tag, so
	// the mutual handshake fails before a single byte moves.
	alien := newHost(bytes.Repeat([]byte{0x66}, 32))
	_, err := migrate.Run(migrate.Config{
		SourcePool: hostA, Source: src, DestPool: alien, Nonce: nonce("alien"),
	})
	if !errors.Is(err, migrate.ErrAttestation) {
		log.Fatalf("FAILED: alien host not refused typed (err=%v)", err)
	}
	fmt.Printf("  refused typed: %v\n\n", err)

	fmt.Println("step 2 — tampered stream refused, destination untouched")
	// A man-in-the-middle flips one bit of the third stream record. The
	// CRC+MAC framing catches it typed, the receiver latches fail-stop,
	// and host B applies nothing — its migrant slice stays at epoch 0
	// while host A keeps serving.
	dst := mustTenant(hostB, migrant)
	_, err = migrate.Run(migrate.Config{
		SourcePool: hostA, Source: src, DestPool: hostB, Nonce: nonce("tamper"),
		Tap: func(index int, frame []byte) []byte {
			if index != 2 {
				return nil // deliver unchanged
			}
			evil := append([]byte(nil), frame...)
			evil[len(evil)/2] ^= 0x01
			return evil
		},
	})
	if !errors.Is(err, migrate.ErrTornStream) {
		log.Fatalf("FAILED: tampered stream not refused typed (err=%v)", err)
	}
	if dst.Epoch() != 0 {
		log.Fatal("FAILED: destination advanced on a refused stream")
	}
	got := make([]byte, len(secret))
	if err := src.Read(src.Base(), got); err != nil || !bytes.Equal(got, secret) {
		log.Fatal("FAILED: source no longer serving after refused migration")
	}
	fmt.Printf("  refused typed: %v\n", err)
	fmt.Println("  destination untouched (epoch 0), source still serving")
	fmt.Println()

	fmt.Println("step 3 — live migration with traffic across the cutover")
	// Host A serves the tenant through the traffic service while the
	// real migration runs. The final sync round and cutover happen
	// inside a quiesced swap, so every request lands entirely on one
	// side; afterwards the same server handle fronts host B's engine.
	srv, err := serve.New(serve.Config{Engine: src.Engine()})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	update := []byte("payroll row 42, updated in-mig!!")
	if err := srv.Do(&serve.Request{Class: serve.Interactive, Addr: 0, Write: true,
		Data: update, Tenant: migrant, Deadline: 1 << 40}); err != nil {
		log.Fatal(err)
	}
	ops, err := migrate.Run(migrate.Config{
		SourcePool: hostA, Source: src, DestPool: hostB, Nonce: nonce("live"),
		Swap: srv,
	})
	if err != nil {
		log.Fatal(err)
	}
	if srv.Engine() != dst.Engine() {
		log.Fatal("FAILED: cutover did not swap the service onto host B")
	}
	if err := dst.Read(dst.Base(), got); err != nil || !bytes.Equal(got, update) {
		log.Fatal("FAILED: migrated bytes diverge from the served state")
	}
	// Post-cutover traffic lands on host B without the client changing
	// anything: same server handle, new host.
	probe := []byte("post-cutover write lands on B!!!")
	if err := srv.Do(&serve.Request{Class: serve.Interactive, Addr: 0, Write: true,
		Data: probe, Tenant: migrant, Deadline: 1 << 40}); err != nil {
		log.Fatal(err)
	}
	if err := dst.Read(dst.Base(), got); err != nil || !bytes.Equal(got, probe) {
		log.Fatal("FAILED: post-cutover write did not land on host B")
	}
	fmt.Printf("  migrated in %d rounds, %d chunks, %d bytes of ciphertext+metadata\n",
		ops.Rounds, ops.ChunksSent, ops.BytesStreamed)
	fmt.Println("  service swapped to host B; post-cutover write landed there")
	fmt.Println()

	fmt.Println("step 4 — link outage parks the session; resume skips verified chunks")
	// Migrate onward to host C over a link scripted to drop mid-stream.
	// Exhausted retries park the session resumable; while parked the
	// destination is untouched and host B keeps serving — even taking
	// new writes, which the resumed stream delivers.
	hostC := newHost(masters)
	sess, err := migrate.Start(migrate.Config{
		SourcePool: hostB, Source: dst, DestPool: hostC, Nonce: nonce("flap"),
		Link: link.New(&link.ScriptPlan{Windows: []link.Window{
			{From: 3, To: 9, State: link.StateDown},
		}}, link.Config{Threshold: 1, Cooldown: 1}),
		Retry: migrate.RetryPolicy{MaxRetries: 2, BaseBackoff: 1, MaxBackoff: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	parks := 0
	midPark := []byte("written while the link was down")
	for err = sess.Run(); err != nil; err = sess.Run() {
		if !errors.Is(err, migrate.ErrLinkLost) || !sess.Resumable() {
			log.Fatalf("FAILED: outage not parked resumable (err=%v)", err)
		}
		parks++
		if err := dst.Write(dst.Base()+securemem.HomeAddr(64), midPark); err != nil {
			log.Fatal(err)
		}
	}
	sops := sess.Ops()
	buf := make([]byte, len(midPark))
	hostCT := mustTenant(hostC, migrant)
	if err := hostCT.Read(hostCT.Base()+64, buf); err != nil || !bytes.Equal(buf, midPark) {
		log.Fatal("FAILED: mid-park write missing on host C")
	}
	fmt.Printf("  parked %d time(s), resumed %d, %d verified chunks skipped on resume\n",
		parks, sops.Resumes, sops.ChunksSkipped)
	fmt.Println("  mid-park writes arrived on host C")
	fmt.Println()

	fmt.Println("step 5 — retire the source identity")
	// After a move the stale copy must become cryptographically
	// unreachable: keys zeroized, backing windows scrubbed, frames
	// reclaimed. Every later operation fails typed — even recovery with
	// a valid journal.
	if err := hostB.DestroyTenant(migrant); err != nil {
		log.Fatal(err)
	}
	err = dst.Read(dst.Base(), got)
	if !errors.Is(err, tenant.ErrTenantClosed) {
		log.Fatalf("FAILED: retired identity not refused typed (err=%v)", err)
	}
	fmt.Printf("  refused typed: %v\n", err)
	fmt.Printf("  %d device frames reclaimed; bystander on host B unaffected:\n",
		hostB.ReclaimedFrames())
	by := mustTenant(hostB, "bystander")
	if err := by.Write(by.Base(), secret); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  bystander still reads and writes in its own domain")
	fmt.Println()
	fmt.Println("livemigration: OK")
}
