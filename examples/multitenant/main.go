// Multi-tenant isolation: carve one shared CXL pool into per-tenant
// key domains and show the blast radius of a hostile or crashing
// tenant is exactly its own slice. Tenant alpha probes, splices, storms
// its quota, gets poisoned, and crash-recovers — and tenant beta's
// bytes never move.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/tenant"
)

func main() {
	geo := config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
	pool, err := tenant.NewPool(tenant.Config{
		Geometry: geo,
		Slices: []tenant.Slice{
			{ID: "alpha", BasePage: tenant.AutoBase, Pages: 8, Frames: 2,
				OpRate: 0.5, OpBurst: 4}, // metered: ~1 op admitted per 2 attempts
			{ID: "beta", BasePage: tenant.AutoBase, Pages: 8, Frames: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	alpha := mustTenant(pool, "alpha")
	beta := mustTenant(pool, "beta")

	secret := []byte("beta: payroll row 42, sealed ok!") // one full sector
	if err := beta.Write(beta.Base(), secret); err != nil {
		log.Fatal(err)
	}
	if err := beta.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("step 1 — cross-tenant probe (address containment)")
	buf := make([]byte, 32)
	err = alpha.Read(beta.Base(), buf) // pool-global address of beta's slice
	if !errors.Is(err, tenant.ErrTenantDenied) {
		log.Fatalf("FAILED: probe not denied typed (err=%v)", err)
	}
	fmt.Printf("  refused typed: %v\n\n", err)

	fmt.Println("step 2 — replayed ciphertext (cryptographic containment)")
	// A compromised fabric copies beta's sealed sector into alpha's
	// slice. Alpha's own keys must refuse it: different domain, no MAC.
	if err := pool.SpliceHome(alpha.Base(), beta.Base(), 32); err != nil {
		log.Fatal(err)
	}
	err = alpha.Read(alpha.Base(), buf)
	if !errors.Is(err, securemem.ErrIntegrity) {
		log.Fatalf("FAILED: spliced sector not rejected (err=%v)", err)
	}
	if bytes.Contains(buf, []byte("payroll")) {
		log.Fatal("FAILED: victim plaintext leaked into attacker buffer")
	}
	fmt.Printf("  rejected by alpha's key domain: %v\n\n", err)

	fmt.Println("step 3 — quota storm (capacity containment)")
	quotaHits := 0
	for i := 0; i < 32; i++ {
		if err := alpha.Write(alpha.Base()+4096, bytes.Repeat([]byte{0xA1}, 32)); errors.Is(err, tenant.ErrQuota) {
			quotaHits++
		}
	}
	if quotaHits == 0 {
		log.Fatal("FAILED: metered tenant never hit its quota")
	}
	if err := beta.Read(beta.Base(), buf); err != nil || !bytes.Equal(buf, secret) {
		log.Fatalf("FAILED: beta disturbed by alpha's storm (err=%v)", err)
	}
	fmt.Printf("  alpha refused %d/32 ops typed; beta served untouched\n\n", quotaHits)

	fmt.Println("step 4 — checkpoint alpha, then wreck it mid-traffic")
	// A full-sector write repairs the sector the splice corrupted: the
	// engine reseals it under alpha's keys without a verify-fetch.
	if err := writeAlpha(alpha, uint64(alpha.Base()), []byte("alpha: committed state, epoch 1!")); err != nil {
		log.Fatal(err)
	}
	store := crash.NewMemStore()
	root, err := alpha.Checkpoint(crash.NewJournal(store))
	if err != nil {
		log.Fatal(err)
	}
	// Transient-fault storm on alpha only: every media error is typed,
	// then the slice is rebuilt from its own journal while beta keeps
	// serving.
	alpha.AttachFaults(fault.NewRatePlan(7, fault.Rates{Transient: 0.8}, 3),
		securemem.RetryPolicy{MaxRetries: 0, BaseBackoff: 1, MaxBackoff: 1}, nil)
	wrecked := 0
	for i := 0; i < 24; i++ {
		if err := writeAlpha(alpha, uint64(alpha.Base())+uint64(i%4)*64, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			wrecked++
		}
	}
	if err := beta.Write(beta.Base()+2*4096, bytes.Repeat([]byte{0xB2}, 32)); err != nil {
		log.Fatalf("FAILED: beta write failed during alpha's storm: %v", err)
	}
	betaBefore := beta.StateDigest() // beta's state going into alpha's recovery
	if err := pool.RecoverTenant("alpha", store.Bytes(), root); err != nil {
		log.Fatal(err)
	}
	if err := readAlpha(alpha, buf); err != nil || !bytes.HasPrefix(buf, []byte("alpha: committed")) {
		log.Fatalf("FAILED: alpha not restored to its checkpoint (err=%v)", err)
	}
	fmt.Printf("  %d alpha ops failed typed under the storm; alpha recovered to epoch %d\n\n",
		wrecked, alpha.Epoch())

	fmt.Println("step 5 — blast radius: beta is byte-identical")
	if beta.StateDigest() != betaBefore {
		log.Fatal("FAILED: beta's state digest moved during alpha's crash cycle")
	}
	if err := beta.Read(beta.Base(), buf); err != nil || !bytes.Equal(buf, secret) {
		log.Fatalf("FAILED: beta's secret changed (err=%v)", err)
	}
	// Cross-domain recovery is refused too: beta cannot be "restored"
	// from alpha's journal.
	if err := pool.RecoverTenant("beta", store.Bytes(), root); err == nil {
		log.Fatal("FAILED: beta accepted alpha's recovery journal")
	}
	fmt.Println("  beta untouched; foreign journal refused typed")
	fmt.Println("\nall containment properties held")
}

func mustTenant(p *tenant.Pool, id string) *tenant.Tenant {
	t, err := p.Tenant(id)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// writeAlpha retries through alpha's own quota refusals (the bucket
// refills per attempt) so the storm exercises media faults, not the
// meter.
func writeAlpha(t *tenant.Tenant, addr uint64, data []byte) error {
	var err error
	for i := 0; i < 8; i++ {
		if err = t.Write(securemem.HomeAddr(addr), data); !errors.Is(err, tenant.ErrQuota) {
			return err
		}
	}
	return err
}

// readAlpha reads alpha's first sector with the same quota-riding retry.
func readAlpha(t *tenant.Tenant, buf []byte) error {
	var err error
	for i := 0; i < 8; i++ {
		if err = t.Read(t.Base(), buf); !errors.Is(err, tenant.ErrQuota) {
			return err
		}
	}
	return err
}
