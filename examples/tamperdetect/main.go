// Tamper detection: mount the physical attacks from the paper's threat
// model — snooping, spoofing, splicing, and replay — against the protected
// memory and show that each is defeated or detected.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

func main() {
	sys, err := salus.NewDefault(32, 8)
	if err != nil {
		log.Fatal(err)
	}

	secret := []byte("account=4242 balance=1000000.00!") // one full sector
	if err := sys.Write(0, secret); err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(4096, bytes.Repeat([]byte{0xAB}, 32)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Flush(); err != nil { // everything back in the CXL tier
		log.Fatal(err)
	}

	fmt.Println("attack 1 — bus snooping (confidentiality)")
	raw := sys.RawHomeBytes(0, len(secret))
	if bytes.Contains(raw, []byte("balance")) {
		log.Fatal("FAILED: plaintext visible on the memory bus")
	}
	fmt.Printf("  attacker sees ciphertext only: %x...\n\n", raw[:16])

	fmt.Println("attack 2 — spoofing (flip a bit of stored data)")
	if !sys.CorruptHome(0) {
		log.Fatal("FAILED: corruption target out of range")
	}
	err = sys.Read(0, make([]byte, 32))
	if !errors.Is(err, salus.ErrIntegrity) {
		log.Fatalf("FAILED: spoofing not detected (err=%v)", err)
	}
	fmt.Printf("  detected: %v\n\n", err)

	// Repair for the next attack by rewriting the sector.
	mustRecover(sys, 0, secret)

	fmt.Println("attack 3 — splicing (move valid ciphertext to another address)")
	sys.SpliceHome(0, 4096)
	err = sys.Read(0, make([]byte, 32))
	if !errors.Is(err, salus.ErrIntegrity) {
		log.Fatalf("FAILED: splicing not detected (err=%v)", err)
	}
	fmt.Printf("  detected: %v\n\n", err)

	mustRecover(sys, 0, secret)

	fmt.Println("attack 4 — replay (restore old data, MACs, and counters)")
	snap := sys.SnapshotHomeChunk(0) // attacker records version 1 in full
	if err := sys.Write(0, []byte("account=4242 balance=0000000.01!")); err != nil {
		log.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	sys.ReplayHomeChunk(snap) // attacker restores everything untrusted
	err = sys.Read(0, make([]byte, 32))
	if !errors.Is(err, salus.ErrFreshness) {
		log.Fatalf("FAILED: replay not detected (err=%v)", err)
	}
	fmt.Printf("  detected: %v\n\n", err)

	fmt.Println("all four physical attacks defeated or detected")
}

// mustRecover rewrites a sector after a detected attack so the demo can
// continue (a real system would halt instead).
func mustRecover(sys *salus.System, addr salus.HomeAddr, data []byte) {
	if err := sys.Write(addr, data); err != nil {
		log.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
}
