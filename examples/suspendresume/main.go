// Suspend/resume: serialise a protected memory to an untrusted image plus
// a small trusted root, restore it, and show that tampering with or
// replaying the at-rest image is detected — the persistence story a
// confidential-computing deployment needs when a VM or kernel is
// checkpointed together with its CXL-expanded memory.
package main

import (
	"errors"
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

func main() {
	sys, err := salus.NewDefault(64, 16)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(0, []byte("checkpointed tensor shard #0")); err != nil {
		log.Fatal(err)
	}
	if err := sys.Write(40960, []byte("checkpointed tensor shard #10")); err != nil {
		log.Fatal(err)
	}

	image, root, err := sys.Suspend()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspended: %d KiB untrusted image + %d-byte trusted root\n\n", len(image)>>10, 64)

	cfg := salus.Config{
		Geometry:    salus.DefaultGeometry(),
		Model:       salus.ModelSalus,
		TotalPages:  64,
		DevicePages: 16,
	}

	fmt.Println("resume with the genuine image")
	restored, err := salus.Resume(cfg, image, root)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 28)
	if err := restored.Read(0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered: %q\n\n", buf)

	fmt.Println("attack 1 — tamper with the at-rest counter section")
	evil := append([]byte(nil), image...)
	evil[len(evil)-100] ^= 0x40 // flips a bit in the counter/split region
	if _, err := salus.Resume(cfg, evil, root); errors.Is(err, salus.ErrFreshness) {
		fmt.Printf("  rejected at resume: %v\n\n", err)
	} else {
		log.Fatalf("FAILED: tampered image accepted (err=%v)", err)
	}

	fmt.Println("attack 2 — replay an old image against a newer root")
	if err := restored.Write(0, []byte("newer version of the shard!!")); err != nil {
		log.Fatal(err)
	}
	_, newRoot, err := restored.Suspend()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := salus.Resume(cfg, image, newRoot); errors.Is(err, salus.ErrFreshness) {
		fmt.Printf("  rejected at resume: %v\n\n", err)
	} else {
		log.Fatalf("FAILED: replayed image accepted (err=%v)", err)
	}

	fmt.Println("attack 3 — tamper with at-rest ciphertext (caught lazily)")
	evil = append([]byte(nil), image...)
	evil[9+6*8] ^= 0x01 // first data byte, just past the magic + dimension header
	lazy, err := salus.Resume(cfg, evil, root)
	if err != nil {
		log.Fatalf("resume unexpectedly failed early: %v", err)
	}
	if err := lazy.Read(0, buf); errors.Is(err, salus.ErrIntegrity) {
		fmt.Printf("  rejected at first access: %v\n", err)
	} else {
		log.Fatalf("FAILED: tampered ciphertext accepted (err=%v)", err)
	}
}
