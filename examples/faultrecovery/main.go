// Fault recovery: arm a protected memory with a deterministic hardware
// fault plan — transient CXL link faults, then uncorrectable media errors
// on both tiers — and show the recovery ladder: retries with backoff heal
// transients invisibly, a poisoned device frame is quarantined and its
// page recovers from the home copy, and a poisoned home chunk becomes a
// typed ErrPoison that survives suspend/resume instead of stale bytes.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/sim"
)

func main() {
	sys, err := salus.NewDefault(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("salus!"), 16) // 96 B across three sectors
	if err := sys.Write(0, payload); err != nil {
		log.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("fault 1 — transient link faults (retry + backoff)")
	clock := sim.NewEngine()
	sys.AttachFaults(fault.NewScriptPlan([]fault.Event{
		{Tier: fault.TierDevice, N: 1, Kind: fault.Transient, Burst: 3},
	}), salus.DefaultRetryPolicy(), clock)
	got := make([]byte, len(payload))
	if err := sys.Read(0, got); err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("FAILED: transient faults were not healed (err=%v)", err)
	}
	st := sys.Stats()
	fmt.Printf("  healed: %d transients, %d retries, %d backoff cycles on the sim clock\n\n",
		st.TransientFaults, st.Retries, clock.Now())

	fmt.Println("fault 2 — uncorrectable device media error on a clean frame")
	sys.AttachFaults(fault.NewScriptPlan([]fault.Event{
		{Tier: fault.TierDevice, N: 1, Kind: fault.Poison},
	}), salus.DefaultRetryPolicy(), clock)
	if err := sys.Read(0, got); err != nil || !bytes.Equal(got, payload) {
		log.Fatalf("FAILED: clean-frame poison did not recover (err=%v)", err)
	}
	st = sys.Stats()
	fmt.Printf("  recovered from the home copy: frames quarantined=%v, page pinned to home tier=%v\n\n",
		sys.QuarantinedFrames(), sys.PinnedPages())

	fmt.Println("fault 3 — uncorrectable home media error (data truly lost)")
	sys.AttachFaults(fault.NewScriptPlan([]fault.Event{
		{Tier: fault.TierHome, N: 1, Kind: fault.Poison},
	}), salus.DefaultRetryPolicy(), clock)
	err = sys.Read(0, got)
	if !errors.Is(err, salus.ErrPoison) {
		log.Fatalf("FAILED: lost data served without a typed error (err=%v)", err)
	}
	fmt.Printf("  surfaced as typed error: %v\n", err)
	fmt.Printf("  quarantined home chunks: %v\n", sys.PoisonedChunks())
	healthy := make([]byte, 32)
	if err := sys.Read(4096, healthy); err != nil {
		log.Fatalf("FAILED: healthy page unreadable after quarantine: %v", err)
	}
	fmt.Println("  other pages still readable")
	fmt.Println()

	fmt.Println("fault 4 — the badblock list survives suspend/resume")
	image, root, err := sys.Suspend()
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := salus.Resume(salus.Config{
		Geometry:    salus.DefaultGeometry(),
		Model:       salus.ModelSalus,
		TotalPages:  8,
		DevicePages: 2,
	}, image, root)
	if err != nil {
		log.Fatal(err)
	}
	if err := resumed.Read(0, got); !errors.Is(err, salus.ErrPoison) {
		log.Fatalf("FAILED: resumed system serves stale bytes for poisoned chunk (err=%v)", err)
	}
	fmt.Printf("  resumed system still refuses the poisoned chunk: quarantine=%v\n", resumed.PoisonedChunks())
	fmt.Println("\nall faults retried, recovered, or surfaced as typed errors")
}
