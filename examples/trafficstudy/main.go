// Traffic study: run one workload through the timing simulator under all
// three security configurations and print the per-class traffic breakdown
// and normalised IPC — a single-workload slice of the paper's Figs. 10-12.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/system"
	"github.com/salus-sim/salus/internal/trace"
)

func main() {
	workload := flag.String("workload", "nw", "workload name")
	accesses := flag.Int("accesses", 12000, "memory accesses to simulate")
	flag.Parse()

	w, ok := trace.ByName(*workload)
	if !ok {
		log.Fatalf("unknown workload %q (available: %s)", *workload, strings.Join(trace.Names(), ", "))
	}
	cfg := config.Default()
	cfg.GPU.NumSMs = 16
	cfg.GPU.SMsPerGPC = 4
	cfg.Memory.DeviceChannels = 8
	cfg.GPU.L2KBPerPartition = 8

	runs := map[system.Model]*stats.Run{}
	for _, m := range []system.Model{system.ModelNone, system.ModelBaseline, system.ModelSalus} {
		r, err := system.Run(system.Options{
			Cfg: cfg, Workload: w, Model: m,
			MaxAccesses: *accesses, CycleLimit: 2_000_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		runs[m] = r
	}

	none := runs[system.ModelNone]
	fmt.Printf("workload %s: %d accesses, %d instructions\n\n", w.Name, none.MemRequests, none.Instructions)
	fmt.Printf("%-9s %8s %8s | %21s | %21s\n", "model", "cycles", "IPC/none", "CXL data/security B", "device data/security B")
	for _, m := range []system.Model{system.ModelNone, system.ModelBaseline, system.ModelSalus} {
		r := runs[m]
		fmt.Printf("%-9s %8d %8.3f | %10d %10d | %10d %10d\n",
			m, r.Cycles, r.IPC()/none.IPC(),
			r.Traffic.Bytes(stats.CXL, stats.Data), r.Traffic.SecurityBytes(stats.CXL),
			r.Traffic.Bytes(stats.Device, stats.Data), r.Traffic.SecurityBytes(stats.Device))
	}

	base, sal := runs[system.ModelBaseline], runs[system.ModelSalus]
	fmt.Printf("\nsalus vs conventional on %s:\n", w.Name)
	fmt.Printf("  IPC improvement:           %+.2f%%\n",
		(float64(base.Cycles)/float64(sal.Cycles)-1)*100)
	fmt.Printf("  security traffic:          %.1f%% of conventional\n",
		100*float64(sal.Traffic.TotalSecurityBytes())/float64(base.Traffic.TotalSecurityBytes()))
	fmt.Printf("  re-encryptions:            %d vs %d\n", sal.Ops.ReEncryptions, base.Ops.ReEncryptions)
	fmt.Printf("  lazy MAC fetches:          %d\n", sal.Ops.MACFetchesLazy)
	fmt.Printf("  chunks written back:       %d vs %d\n", sal.Ops.ChunksWrittenBack, base.Ops.ChunksWrittenBack)
}
