// Quickstart: create a Salus-protected two-tier memory, write and read
// through it, and watch pages migrate between the CXL tier and the device
// tier with zero relocation re-encryptions.
package main

import (
	"fmt"
	"log"

	salus "github.com/salus-sim/salus"
)

func main() {
	// 256 pages (1 MiB) of protected address space; the device tier holds
	// 64 pages (25%), so the access pattern below forces migration.
	sys, err := salus.NewDefault(256, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Write a record into every page — more pages than device frames, so
	// the page cache churns: migrations in, evictions with dirty-chunk
	// writeback.
	for pg := 0; pg < 256; pg++ {
		record := fmt.Sprintf("page-%03d: secret payload", pg)
		if err := sys.Write(salus.HomeAddr(pg*4096), []byte(record)); err != nil {
			log.Fatal(err)
		}
	}

	// Read them all back — every byte decrypts and verifies.
	for pg := 0; pg < 256; pg++ {
		want := fmt.Sprintf("page-%03d: secret payload", pg)
		buf := make([]byte, len(want))
		if err := sys.Read(salus.HomeAddr(pg*4096), buf); err != nil {
			log.Fatalf("page %d: %v", pg, err)
		}
		if string(buf) != want {
			log.Fatalf("page %d: corrupt data %q", pg, buf)
		}
	}

	st := sys.Stats()
	fmt.Println("all 256 pages verified through encryption + MAC + integrity tree")
	fmt.Printf("page migrations in:          %d\n", st.PageMigrationsIn)
	fmt.Printf("page evictions:              %d\n", st.PageEvictions)
	fmt.Printf("relocation re-encryptions:   %d  <- Salus's headline property\n", st.RelocationReEncryptions)
	fmt.Printf("collapse re-encryptions:     %d  (one pass per dirty chunk)\n", st.CollapseReEncryptions)
	fmt.Printf("dirty chunks written back:   %d\n", st.DirtyChunkWritebacks)
	fmt.Printf("clean chunks skipped:        %d  <- fine-grained dirty tracking\n", st.CleanChunksSkipped)
	fmt.Printf("lazy MAC sector fetches:     %d  <- fetch-only-on-access\n", st.LazyMACFetches)
}
