package pagecache

import (
	"testing"

	"github.com/salus-sim/salus/internal/securemem"
)

// TestAccessAddressBoundaries locks in the typed home→device address
// math at the geometry edges: first and last byte of the first and last
// chunk of a page, in frame 0 and in the last frame, across an eviction
// that re-targets frame 0. The invariant is that Access preserves the
// page offset exactly and never leaks page identity into the frame
// offset (that separation is what the HomeAddr/DevAddr split encodes).
func TestAccessAddressBoundaries(t *testing.T) {
	eng, pc, _, _ := testSetup(true, 2, 4)
	const pageSize = 4096
	const chunkSize = 256

	type probe struct {
		name      string
		page      int
		off       uint64
		wantFrame int
	}
	probes := []probe{
		{"page0/first-chunk/first-byte", 0, 0, 0},
		{"page0/first-chunk/last-byte", 0, chunkSize - 1, 0},
		{"page0/last-chunk/first-byte", 0, pageSize - chunkSize, 0},
		{"page0/last-chunk/last-byte", 0, pageSize - 1, 0},
		// Page 1 takes the second (last) frame.
		{"page1/first-chunk/first-byte", 1, 0, 1},
		{"page1/last-chunk/last-byte", 1, pageSize - 1, 1},
	}

	eng.At(0, func() {
		var step func(i int)
		step = func(i int) {
			if i == len(probes) {
				return
			}
			p := probes[i]
			homeAddr := securemem.HomePageAddr(p.page, pageSize, p.off)
			pc.Access(homeAddr, false, func(devAddr securemem.DevAddr) {
				if got := devAddr.Frame(pageSize); got != p.wantFrame {
					t.Errorf("%s: frame = %d, want %d", p.name, got, p.wantFrame)
				}
				if got := devAddr.PageOffset(pageSize); got != p.off {
					t.Errorf("%s: device offset = %#x, want %#x", p.name, got, p.off)
				}
				if got, want := devAddr, securemem.FrameAddr(p.wantFrame, pageSize, p.off); got != want {
					t.Errorf("%s: devAddr = %#x, want %#x", p.name, got, want)
				}
				if got, want := homeAddr.PageOffset(pageSize), devAddr.PageOffset(pageSize); got != want {
					t.Errorf("%s: home offset %#x != device offset %#x", p.name, got, want)
				}
				step(i + 1)
			})
		}
		step(0)
	})
	eng.Run(0)

	// Touch pages 2 and 3: both frames are occupied, so each access
	// evicts the LRU page. Whatever frame the evictor picks, the offset
	// invariants must survive re-targeting.
	eng.At(eng.Now()+1, func() {
		const off = pageSize - 1 // last byte of the last chunk
		pc.Access(securemem.HomePageAddr(2, pageSize, off), true, func(devAddr securemem.DevAddr) {
			if got := devAddr.PageOffset(pageSize); got != off {
				t.Errorf("page2 after eviction: device offset = %#x, want %#x", got, off)
			}
			if f := devAddr.Frame(pageSize); f != 0 && f != 1 {
				t.Errorf("page2: impossible frame %d", f)
			}
			pc.Access(securemem.HomePageAddr(3, pageSize, 0), true, func(devAddr2 securemem.DevAddr) {
				if got := devAddr2.PageOffset(pageSize); got != 0 {
					t.Errorf("page3 after eviction: device offset = %#x, want 0", got)
				}
				if devAddr2.Frame(pageSize) == devAddr.Frame(pageSize) {
					t.Error("pages 2 and 3 share a frame while both resident")
				}
			})
		})
	})
	eng.Run(0)
}

// TestAccessChunkBoundaryStraddle verifies that two accesses one byte
// apart across a chunk boundary land in the same frame at adjacent
// device offsets — chunk granularity affects fill bookkeeping, never
// address translation.
func TestAccessChunkBoundaryStraddle(t *testing.T) {
	eng, pc, _, _ := testSetup(true, 2, 4)
	const pageSize = 4096
	const chunkSize = 256

	var before, after securemem.DevAddr
	eng.At(0, func() {
		pc.Access(securemem.HomePageAddr(0, pageSize, chunkSize-1), false, func(d securemem.DevAddr) {
			before = d
			pc.Access(securemem.HomePageAddr(0, pageSize, chunkSize), false, func(d2 securemem.DevAddr) {
				after = d2
			})
		})
	})
	eng.Run(0)
	if after != before+1 {
		t.Errorf("straddle: devAddrs %#x, %#x not adjacent", before, after)
	}
	if before.Frame(pageSize) != after.Frame(pageSize) {
		t.Error("straddle crossed frames")
	}
}
