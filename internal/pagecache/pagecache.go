// Package pagecache models the GPU device memory as a page cache of the
// CXL-expansion memory, the organisation the paper assumes (§III-B): pages
// migrate in on demand, a background evictor keeps free frames available,
// and per-chunk touched/dirty bitmasks feed fetch-on-access and
// fine-grained dirty tracking.
//
// The page cache owns data movement (page copies and writebacks); the
// attached security engine owns all metadata movement and decides whether
// writebacks are page- or chunk-granular.
package pagecache

import (
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/cxlmem"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/secsim"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

type frameStatus int

const (
	frameFree frameStatus = iota
	frameFilling
	frameResident
	frameEvicting
)

type frameState struct {
	status   frameStatus
	homePage int
	lru      uint64
	dirty    uint64 // per-chunk dirty mask
	touched  uint64 // per-chunk touched mask
	present  uint64 // per-chunk filled mask (all chunks under whole-page mode)
	pins     int    // in-flight demand chunk fills; a pinned frame is not evictable
}

// Mode selects the migration granularity.
type Mode int

const (
	// WholePage copies the full 4 KiB page on a fault, the paper's default
	// assumption.
	WholePage Mode = iota
	// Predictive copies only the faulting chunk plus the chunks the page's
	// previous residency touched (a footprint-style predictor); other
	// chunks fill on demand. The paper notes its security design works
	// with either scheme (§IV-A3).
	Predictive
)

// PageCache manages the device tier as a cache of the home space.
type PageCache struct {
	eng    *sim.Engine
	geo    config.Geometry
	device *dram.Memory
	cxl    *cxlmem.Memory
	sec    secsim.Engine
	ops    *stats.Ops

	frames      []frameState
	pageToFrame []int
	lruClock    uint64

	// pageWaiters holds callbacks per home page awaiting an in-flight fill.
	pageWaiters map[int][]func(frame int)
	// chunkWaiters holds accesses blocked on an in-flight chunk fill,
	// keyed by frame*chunksPerPage+chunk.
	chunkWaiters map[int][]func()
	// frameWaiters holds fills blocked on a free frame.
	frameWaiters   []func(frame int)
	freeFrames     []int
	lowWater       int
	inFlightEvicts int

	mode    Mode
	history map[int]uint64 // homePage -> touched mask of previous residency

	// lnk, when set, models the CXL transport as a degradable resource:
	// every link transfer consults it first. A refused transfer retries
	// after linkRetryCycles; a brownout surcharge is charged to the event
	// clock before the access issues.
	lnk *link.Link

	// evictNotifier, when set, is told about each page leaving the device
	// tier (the interconnect uses it for directed mapping invalidation).
	evictNotifier func(homePage int)
}

// New builds a page cache with the given number of device frames over a
// home space of totalPages.
func New(eng *sim.Engine, geo config.Geometry, device *dram.Memory, cxl *cxlmem.Memory,
	sec secsim.Engine, ops *stats.Ops, totalPages, frames int) (*PageCache, error) {
	if frames <= 0 || totalPages <= 0 {
		return nil, fmt.Errorf("pagecache: need positive sizes, got frames=%d totalPages=%d", frames, totalPages)
	}
	if geo.ChunksPerPage() > 64 {
		return nil, fmt.Errorf("pagecache: %d chunks per page exceeds the 64-bit mask", geo.ChunksPerPage())
	}
	pc := &PageCache{
		eng:          eng,
		geo:          geo,
		device:       device,
		cxl:          cxl,
		sec:          sec,
		ops:          ops,
		frames:       make([]frameState, frames),
		pageToFrame:  make([]int, totalPages),
		pageWaiters:  make(map[int][]func(int)),
		chunkWaiters: make(map[int][]func()),
		lowWater:     2,
		history:      make(map[int]uint64),
	}
	if pc.lowWater > frames/2 {
		pc.lowWater = 1
	}
	for i := range pc.pageToFrame {
		pc.pageToFrame[i] = -1
	}
	for i := frames - 1; i >= 0; i-- {
		pc.frames[i].homePage = -1
		pc.freeFrames = append(pc.freeFrames, i)
	}
	return pc, nil
}

// SetMode selects whole-page or predictive partial migration. Call before
// simulation starts.
func (pc *PageCache) SetMode(m Mode) { pc.mode = m }

// SetEvictNotifier registers a callback run at the start of every page
// eviction (used for directed mapping-cache invalidation).
func (pc *PageCache) SetEvictNotifier(fn func(homePage int)) { pc.evictNotifier = fn }

// SetLink arms the page cache with a CXL link model. Call before
// simulation starts.
func (pc *PageCache) SetLink(l *link.Link) { pc.lnk = l }

// linkRetryCycles is the pause between retries of a link-refused transfer.
// The performance simulator cannot fail an in-flight migration the way the
// functional model does (callers hold no error path), so a refused
// transfer parks on the event queue and retries — the outage shows up as
// migration latency plus the link counters, not as a lost access.
const linkRetryCycles = 64

// cxlTransfer issues one data transfer over the CXL link, consulting the
// link model first when one is attached. Refusals reschedule the whole
// transfer; a degraded link charges its latency surcharge to the event
// clock before the memory access issues.
func (pc *PageCache) cxlTransfer(bytes uint64, class stats.Class, done func()) {
	if pc.lnk == nil {
		pc.cxl.Access(bytes, class, done)
		return
	}
	lat, err := pc.lnk.Transfer()
	pc.syncLinkStats()
	if err != nil {
		pc.eng.After(linkRetryCycles, func() { pc.cxlTransfer(bytes, class, done) })
		return
	}
	if lat > 0 {
		pc.eng.After(lat, func() { pc.cxl.Access(bytes, class, done) })
		return
	}
	pc.cxl.Access(bytes, class, done)
}

// syncLinkStats mirrors the link's counters into the run's op stats.
func (pc *PageCache) syncLinkStats() {
	st := pc.lnk.Stats()
	pc.ops.LinkFlaps = st.Flaps
	pc.ops.LinkDownRefusals = st.DownRefusals
	pc.ops.LinkFastFails = st.FastFails
	pc.ops.BreakerOpens = st.BreakerOpens
	pc.ops.BreakerCloses = st.BreakerCloses
	pc.ops.LinkLatencyCycles = uint64(st.ExtraLatencyCycles)
}

// Frames returns the device-tier capacity in frames.
func (pc *PageCache) Frames() int { return len(pc.frames) }

// Resident reports whether a home page is currently resident (and usable).
func (pc *PageCache) Resident(homePage int) bool {
	fi := pc.pageToFrame[homePage]
	return fi >= 0 && pc.frames[fi].status == frameResident
}

// Access routes one data access: it guarantees the page is resident, marks
// the touched/dirty masks, and calls done with the device address of the
// access. The call to done may be immediate (page already resident) or
// deferred behind a page fill.
func (pc *PageCache) Access(homeAddr securemem.HomeAddr, write bool, done func(devAddr securemem.DevAddr)) {
	page := homeAddr.Page(pc.geo.PageSize)
	if page >= len(pc.pageToFrame) {
		panic(fmt.Sprintf("pagecache: access to page %d beyond home space", page))
	}
	chunk := int(homeAddr.PageOffset(pc.geo.PageSize)) / pc.geo.ChunkSize
	complete := func(frame int) {
		f := &pc.frames[frame]
		pc.lruClock++
		f.lru = pc.lruClock
		finish := func() {
			// The frame may have been evicted (and even re-targeted)
			// while a demand chunk fill was in flight; marking bits on
			// the new occupant would corrupt its state, so refault.
			if f.homePage != page || f.status != frameResident {
				pc.Access(homeAddr, write, done)
				return
			}
			f.touched |= 1 << uint(chunk)
			if write {
				f.dirty |= 1 << uint(chunk)
			}
			done(securemem.FrameAddr(frame, pc.geo.PageSize, homeAddr.PageOffset(pc.geo.PageSize)))
		}
		if f.present&(1<<uint(chunk)) != 0 {
			finish()
			return
		}
		// Predictive mode: the chunk was not part of the prefetched
		// footprint — fill it on demand.
		pc.fillChunk(frame, page, chunk, finish)
	}
	switch fi := pc.pageToFrame[page]; {
	case fi >= 0 && pc.frames[fi].status == frameResident:
		complete(fi)
	case fi >= 0 || fi == fillPending:
		// A fill is already in flight (with or without a frame assigned).
		pc.pageWaiters[page] = append(pc.pageWaiters[page], complete)
	default:
		pc.pageWaiters[page] = append(pc.pageWaiters[page], complete)
		pc.fault(page)
	}
}

// fillPending marks a page whose fill has been requested but not yet
// assigned a frame.
const fillPending = -2

// fault initiates the migration of a home page into some frame.
func (pc *PageCache) fault(page int) {
	pc.pageToFrame[page] = fillPending
	pc.withFreeFrame(func(frame int) {
		f := &pc.frames[frame]
		f.status = frameFilling
		f.homePage = page
		f.dirty, f.touched, f.present = 0, 0, 0
		pc.pageToFrame[page] = frame
		pc.ops.PagesMigratedIn++

		// Choose the fill footprint: the whole page, or (predictive mode)
		// the chunks the page's previous residency touched. A first-time
		// page has no history and prefetches nothing; the faulting access
		// fills its chunk on demand after the fill completes.
		fillMask := uint64(1)<<uint(pc.geo.ChunksPerPage()) - 1
		if pc.mode == Predictive {
			fillMask = pc.history[page]
		}
		f.present = fillMask
		nChunks := popcount(fillMask)
		pc.ops.ChunksMigrated += uint64(nChunks)

		// The data movement (the footprint over the CXL link, chunks
		// landing on their interleaved device channels) and the security
		// work proceed in parallel; the fill completes when both have.
		pending := 2
		complete := func() {
			pending--
			if pending == 0 {
				pc.fillComplete(page, frame)
			}
		}
		if pc.mode == Predictive {
			// Chunk-proportional security work.
			j := nChunks
			if j == 0 {
				complete()
			} else {
				for c := 0; c < pc.geo.ChunksPerPage(); c++ {
					if fillMask&(1<<uint(c)) == 0 {
						continue
					}
					pc.sec.OnChunkFill(page, frame, c, func() {
						j--
						if j == 0 {
							complete()
						}
					})
				}
			}
		} else {
			pc.sec.OnMigrateIn(page, frame, complete)
		}
		if nChunks == 0 {
			complete()
			return
		}
		pc.cxlTransfer(uint64(nChunks*pc.geo.ChunkSize), stats.Data, func() {
			remaining := nChunks
			for c := 0; c < pc.geo.ChunksPerPage(); c++ {
				if fillMask&(1<<uint(c)) == 0 {
					continue
				}
				devAddr := uint64(frame*pc.geo.PageSize + c*pc.geo.ChunkSize)
				pc.device.Access(devAddr, uint64(pc.geo.ChunkSize), stats.Data, func() {
					remaining--
					if remaining == 0 {
						complete()
					}
				})
			}
		})
	})
	pc.maintainFreeSpace()
}

func (pc *PageCache) fillComplete(page, frame int) {
	pc.frames[frame].status = frameResident
	waiters := pc.pageWaiters[page]
	delete(pc.pageWaiters, page)
	for _, w := range waiters {
		w(frame)
	}
	// Fills queued behind a frame shortage can only be unblocked by an
	// eviction, and this frame just became evictable: re-kick the evictor.
	if len(pc.frameWaiters) > 0 {
		pc.maintainFreeSpace()
	}
}

// withFreeFrame invokes fn with a free frame, now or when one frees up.
func (pc *PageCache) withFreeFrame(fn func(frame int)) {
	if n := len(pc.freeFrames); n > 0 {
		frame := pc.freeFrames[n-1]
		pc.freeFrames = pc.freeFrames[:n-1]
		fn(frame)
		return
	}
	pc.frameWaiters = append(pc.frameWaiters, fn)
	pc.maintainFreeSpace()
}

// maintainFreeSpace runs the background evictor: keep at least lowWater
// frames free (or becoming free), as the paper's mapping discussion
// assumes ("evictions from the GPU memory may occur in the background").
func (pc *PageCache) maintainFreeSpace() {
	for len(pc.freeFrames)+pc.inFlightEvicts < pc.lowWater+len(pc.frameWaiters) {
		victim := pc.lruResident()
		if victim < 0 {
			return
		}
		pc.startEvict(victim)
	}
}

func (pc *PageCache) lruResident() int {
	best := -1
	for i := range pc.frames {
		if pc.frames[i].status != frameResident || pc.frames[i].pins > 0 {
			continue
		}
		if best < 0 || pc.frames[i].lru < pc.frames[best].lru {
			best = i
		}
	}
	return best
}

// startEvict writes a frame's data back per the security model's
// writeback policy and frees the frame.
func (pc *PageCache) startEvict(frame int) {
	f := &pc.frames[frame]
	page := f.homePage
	f.status = frameEvicting
	pc.inFlightEvicts++
	pc.ops.PagesEvicted++
	pc.pageToFrame[page] = -1 // accesses from now on refault
	if pc.evictNotifier != nil {
		pc.evictNotifier(page)
	}

	// Record the touched footprint for the predictor before the frame is
	// recycled.
	pc.history[page] = f.touched

	writeMask := f.present
	if pc.sec.FineGrainedWriteback() {
		writeMask = f.dirty
	}
	nChunks := 0
	for m := writeMask; m != 0; m &= m - 1 {
		nChunks++
	}
	pc.ops.ChunksWrittenBack += uint64(nChunks)

	// The data writeback and the model's eviction security work overlap;
	// the frame frees when both complete.
	dirty, present := f.dirty, f.present
	pending := 2
	complete := func() {
		pending--
		if pending == 0 {
			pc.inFlightEvicts--
			pc.frameFreed(frame)
		}
	}
	pc.sec.OnEvict(page, frame, dirty, present, complete)
	if nChunks == 0 {
		complete()
		return
	}
	// Data movement: read the chunks from their device channels, then one
	// aggregated transfer over the CXL link.
	remaining := nChunks
	for c := 0; c < pc.geo.ChunksPerPage(); c++ {
		if writeMask&(1<<uint(c)) == 0 {
			continue
		}
		devAddr := uint64(frame*pc.geo.PageSize + c*pc.geo.ChunkSize)
		pc.device.Access(devAddr, uint64(pc.geo.ChunkSize), stats.Data, func() {
			remaining--
			if remaining == 0 {
				pc.cxlTransfer(uint64(nChunks*pc.geo.ChunkSize), stats.Data, complete)
			}
		})
	}
}

func (pc *PageCache) frameFreed(frame int) {
	f := &pc.frames[frame]
	f.status = frameFree
	f.homePage = -1
	f.dirty, f.touched, f.present, f.pins = 0, 0, 0, 0
	if len(pc.frameWaiters) > 0 {
		fn := pc.frameWaiters[0]
		pc.frameWaiters = pc.frameWaiters[1:]
		fn(frame)
		if len(pc.frameWaiters) > 0 {
			pc.maintainFreeSpace()
		}
		return
	}
	pc.freeFrames = append(pc.freeFrames, frame)
}

// DirtyMask returns the dirty chunk mask of a resident page (0 otherwise);
// used by tests.
func (pc *PageCache) DirtyMask(homePage int) uint64 {
	fi := pc.pageToFrame[homePage]
	if fi < 0 {
		return 0
	}
	return pc.frames[fi].dirty
}

// fillChunk fills one chunk on demand (predictive mode): data over the
// link plus the chunk-proportional security work. Concurrent accesses to
// the same in-flight chunk merge.
func (pc *PageCache) fillChunk(frame, page, chunk int, done func()) {
	key := frame*pc.geo.ChunksPerPage() + chunk
	if waiters, ok := pc.chunkWaiters[key]; ok {
		pc.chunkWaiters[key] = append(waiters, done)
		return
	}
	pc.chunkWaiters[key] = []func(){done}
	pc.ops.ChunksMigrated++
	// Pin the frame so the evictor cannot recycle it while the fill is in
	// flight; otherwise waiters would complete against a stale mapping.
	pc.frames[frame].pins++

	pending := 2
	complete := func() {
		pending--
		if pending != 0 {
			return
		}
		f := &pc.frames[frame]
		f.pins--
		f.present |= 1 << uint(chunk)
		waiters := pc.chunkWaiters[key]
		delete(pc.chunkWaiters, key)
		for _, w := range waiters {
			w()
		}
		// An eviction may have been waiting for the pin to drop.
		if f.pins == 0 && len(pc.frameWaiters) > 0 {
			pc.maintainFreeSpace()
		}
	}
	devAddr := uint64(frame*pc.geo.PageSize + chunk*pc.geo.ChunkSize)
	pc.cxlTransfer(uint64(pc.geo.ChunkSize), stats.Data, func() {
		pc.device.Access(devAddr, uint64(pc.geo.ChunkSize), stats.Data, complete)
	})
	pc.sec.OnChunkFill(page, frame, chunk, complete)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
