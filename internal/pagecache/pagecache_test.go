package pagecache

import (
	"testing"
	"testing/quick"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/cxlmem"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// fakeSec records engine callbacks and lets tests pick the writeback policy.
type fakeSec struct {
	fine        bool
	migrates    int
	chunkFills  int
	evicts      int
	lastDirty   uint64
	lastPresent uint64
}

func (f *fakeSec) Name() string                                                   { return "fake" }
func (f *fakeSec) OnRead(h securemem.HomeAddr, d securemem.DevAddr, done func())  { done() }
func (f *fakeSec) OnWrite(h securemem.HomeAddr, d securemem.DevAddr, done func()) { done() }
func (f *fakeSec) OnMigrateIn(p, fr int, done func())                             { f.migrates++; done() }
func (f *fakeSec) OnChunkFill(p, fr, c int, done func())                          { f.chunkFills++; done() }
func (f *fakeSec) FineGrainedWriteback() bool                                     { return f.fine }
func (f *fakeSec) OnEvict(p, fr int, dirty, present uint64, done func()) {
	f.evicts++
	f.lastDirty = dirty
	f.lastPresent = present
	done()
}

func testSetup(fine bool, frames, totalPages int) (*sim.Engine, *PageCache, *fakeSec, *stats.Run) {
	eng := sim.NewEngine()
	run := &stats.Run{}
	geo := config.Default().Geometry
	device := dram.New(eng, 4, 32, 50, uint64(geo.ChunkSize), &run.Traffic)
	cxl := cxlmem.New(eng, 32, 1, 200, &run.Traffic)
	sec := &fakeSec{fine: fine}
	pc, err := New(eng, geo, device, cxl, sec, &run.Ops, totalPages, frames)
	if err != nil {
		panic(err)
	}
	return eng, pc, sec, run
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	geo := config.Default().Geometry
	if _, err := New(eng, geo, nil, nil, &fakeSec{}, &stats.Ops{}, 10, 0); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := New(eng, geo, nil, nil, &fakeSec{}, &stats.Ops{}, 0, 1); err == nil {
		t.Error("zero pages accepted")
	}
	big := geo
	big.PageSize = 256 * 128 // 128 chunks > 64-bit mask
	if _, err := New(eng, big, nil, nil, &fakeSec{}, &stats.Ops{}, 10, 2); err == nil {
		t.Error("oversized chunk mask accepted")
	}
}

func TestFaultThenResidentAccess(t *testing.T) {
	eng, pc, sec, run := testSetup(true, 4, 16)
	var first, second sim.Cycle
	var devAddr1, devAddr2 securemem.DevAddr
	eng.At(0, func() {
		pc.Access(4096+64, false, func(d securemem.DevAddr) {
			first = eng.Now()
			devAddr1 = d
			pc.Access(4096+64, false, func(d2 securemem.DevAddr) {
				second = eng.Now()
				devAddr2 = d2
			})
		})
	})
	eng.Run(0)
	if first == 0 {
		t.Fatal("fault never completed")
	}
	if second != first {
		t.Errorf("resident access took time: %d vs %d", second, first)
	}
	if devAddr1 != devAddr2 {
		t.Errorf("device address changed: %#x vs %#x", devAddr1, devAddr2)
	}
	if devAddr1%4096 != 64 {
		t.Errorf("page offset not preserved: %#x", devAddr1)
	}
	if sec.migrates != 1 {
		t.Errorf("migrations = %d, want 1", sec.migrates)
	}
	if run.Ops.PagesMigratedIn != 1 {
		t.Errorf("ops migrations = %d, want 1", run.Ops.PagesMigratedIn)
	}
	if !pc.Resident(1) {
		t.Error("page 1 not resident after access")
	}
}

func TestConcurrentFaultsMerge(t *testing.T) {
	eng, pc, sec, _ := testSetup(true, 4, 16)
	done := 0
	eng.At(0, func() {
		for i := 0; i < 5; i++ {
			pc.Access(securemem.HomeAddr(8192+i*32), false, func(securemem.DevAddr) { done++ })
		}
	})
	eng.Run(0)
	if done != 5 {
		t.Fatalf("completed = %d, want 5", done)
	}
	if sec.migrates != 1 {
		t.Errorf("migrations = %d, want 1 (merged fault)", sec.migrates)
	}
}

func TestMigrationDataTraffic(t *testing.T) {
	eng, pc, _, run := testSetup(true, 4, 16)
	eng.At(0, func() { pc.Access(0, false, func(securemem.DevAddr) {}) })
	eng.Run(0)
	if got := run.Traffic.Bytes(stats.CXL, stats.Data); got != 4096 {
		t.Errorf("CXL data = %d, want 4096", got)
	}
	if got := run.Traffic.Bytes(stats.Device, stats.Data); got != 4096 {
		t.Errorf("device data = %d, want 4096", got)
	}
}

func TestEvictionFineGrained(t *testing.T) {
	eng, pc, sec, run := testSetup(true, 2, 16)
	eng.At(0, func() {
		// Write one chunk of page 0, then touch pages 1..3 to force
		// eviction of page 0 (2 frames, low-water keeps evicting).
		pc.Access(256, true, func(securemem.DevAddr) {
			pc.Access(4096, false, func(securemem.DevAddr) {
				pc.Access(8192, false, func(securemem.DevAddr) {
					pc.Access(12288, false, func(securemem.DevAddr) {})
				})
			})
		})
	})
	eng.Run(0)
	if sec.evicts == 0 {
		t.Fatal("no evictions")
	}
	// Fine-grained: only the dirty chunk (chunk 1 of page 0) wrote back.
	if run.Ops.ChunksWrittenBack != 1 {
		t.Errorf("chunks written back = %d, want 1", run.Ops.ChunksWrittenBack)
	}
	wbBytes := run.Traffic.Bytes(stats.CXL, stats.Data) - 4*4096 // minus the 4 fills
	if wbBytes != 256 {
		t.Errorf("writeback bytes = %d, want 256", wbBytes)
	}
}

func TestEvictionPageGranular(t *testing.T) {
	eng, pc, sec, run := testSetup(false, 2, 16)
	eng.At(0, func() {
		pc.Access(256, true, func(securemem.DevAddr) {
			pc.Access(4096, false, func(securemem.DevAddr) {
				pc.Access(8192, false, func(securemem.DevAddr) {
					pc.Access(12288, false, func(securemem.DevAddr) {})
				})
			})
		})
	})
	eng.Run(0)
	if sec.evicts == 0 {
		t.Fatal("no evictions")
	}
	// Page-granular: every evicted page writes 16 chunks regardless of
	// dirtiness.
	if run.Ops.ChunksWrittenBack%16 != 0 || run.Ops.ChunksWrittenBack == 0 {
		t.Errorf("chunks written back = %d, want a positive multiple of 16", run.Ops.ChunksWrittenBack)
	}
}

func TestDirtyMaskPassedToEngine(t *testing.T) {
	eng, pc, sec, _ := testSetup(true, 2, 16)
	eng.At(0, func() {
		pc.Access(0, true, func(securemem.DevAddr) { // chunk 0 dirty
			pc.Access(512, true, func(securemem.DevAddr) { // chunk 2 dirty
				pc.Access(4096, false, func(securemem.DevAddr) {
					pc.Access(8192, false, func(securemem.DevAddr) {
						pc.Access(12288, false, func(securemem.DevAddr) {})
					})
				})
			})
		})
	})
	eng.Run(0)
	if sec.evicts == 0 {
		t.Fatal("no evictions")
	}
	if sec.lastDirty != 0 && sec.lastDirty != 0b101 {
		// Depending on LRU order, the page-0 eviction is one of them.
		t.Logf("lastDirty = %b (page order dependent)", sec.lastDirty)
	}
	if pc.DirtyMask(0) != 0 && pc.DirtyMask(0) != 0b101 {
		t.Errorf("dirty mask = %b", pc.DirtyMask(0))
	}
}

func TestThrashingManyPagesFewFrames(t *testing.T) {
	eng, pc, _, run := testSetup(true, 2, 64)
	done := 0
	var visit func(pg int)
	visit = func(pg int) {
		if pg >= 64 {
			return
		}
		pc.Access(securemem.HomeAddr(pg*4096), false, func(securemem.DevAddr) {
			done++
			visit(pg + 1)
		})
	}
	eng.At(0, func() { visit(0) })
	eng.Run(0)
	if done != 64 {
		t.Fatalf("visited %d pages, want 64", done)
	}
	if run.Ops.PagesMigratedIn != 64 {
		t.Errorf("migrations = %d, want 64", run.Ops.PagesMigratedIn)
	}
	if run.Ops.PagesEvicted < 60 {
		t.Errorf("evictions = %d, want >= 60", run.Ops.PagesEvicted)
	}
}

func TestRefaultAfterEviction(t *testing.T) {
	eng, pc, sec, _ := testSetup(true, 2, 16)
	var last securemem.DevAddr
	eng.At(0, func() {
		pc.Access(0, false, func(securemem.DevAddr) {
			pc.Access(4096, false, func(securemem.DevAddr) {
				pc.Access(8192, false, func(securemem.DevAddr) {
					pc.Access(12288, false, func(securemem.DevAddr) {
						// Page 0 evicted by now; access refaults.
						pc.Access(0, false, func(d securemem.DevAddr) { last = d + 1 })
					})
				})
			})
		})
	})
	eng.Run(0)
	if last == 0 {
		t.Fatal("refault never completed")
	}
	if sec.migrates < 5 {
		t.Errorf("migrations = %d, want >= 5 (refault)", sec.migrates)
	}
}

func TestFramesAccessor(t *testing.T) {
	_, pc, _, _ := testSetup(true, 7, 16)
	if pc.Frames() != 7 {
		t.Errorf("Frames = %d, want 7", pc.Frames())
	}
}

func TestPredictiveModeFirstVisitDemandFills(t *testing.T) {
	eng, pc, sec, run := testSetup(true, 4, 16)
	pc.SetMode(Predictive)
	done := 0
	eng.At(0, func() {
		// First visit: no history, so nothing prefetches; the access
		// demand-fills exactly one chunk.
		pc.Access(256, false, func(securemem.DevAddr) { done++ })
	})
	eng.Run(0)
	if done != 1 {
		t.Fatal("access incomplete")
	}
	if run.Ops.ChunksMigrated != 1 {
		t.Errorf("chunks migrated = %d, want 1 (demand fill only)", run.Ops.ChunksMigrated)
	}
	if got := run.Traffic.Bytes(stats.CXL, stats.Data); got != 256 {
		t.Errorf("CXL data = %d, want 256", got)
	}
	if sec.chunkFills != 1 {
		t.Errorf("chunk fills = %d, want 1", sec.chunkFills)
	}
	if sec.migrates != 0 {
		t.Errorf("whole-page migrations = %d, want 0", sec.migrates)
	}
}

func TestPredictiveModeHistoryPrefetch(t *testing.T) {
	eng, pc, _, run := testSetup(true, 2, 16)
	pc.SetMode(Predictive)
	seq := 0
	eng.At(0, func() {
		// Visit page 0 touching chunks 0 and 3, evict it by touching
		// pages 1-3, then refault page 0: the predictor prefetches the
		// remembered footprint {0,3}.
		pc.Access(0, false, func(securemem.DevAddr) {
			pc.Access(768, false, func(securemem.DevAddr) {
				pc.Access(4096, false, func(securemem.DevAddr) {
					pc.Access(8192, false, func(securemem.DevAddr) {
						pc.Access(12288, false, func(securemem.DevAddr) {
							base := run.Ops.ChunksMigrated
							pc.Access(0, false, func(securemem.DevAddr) {
								// The refault prefetched 2 chunks; this
								// access hit one of them (no extra fill).
								if got := run.Ops.ChunksMigrated - base; got != 2 {
									t.Errorf("refault migrated %d chunks, want 2", got)
								}
								seq++
							})
						})
					})
				})
			})
		})
	})
	eng.Run(0)
	if seq != 1 {
		t.Fatal("refault incomplete")
	}
}

func TestPredictiveEvictionWritesOnlyPresent(t *testing.T) {
	// Page-granular (non-fine) writeback under predictive mode still only
	// writes chunks that were actually filled.
	eng, pc, sec, _ := testSetup(false, 2, 16)
	pc.SetMode(Predictive)
	eng.At(0, func() {
		pc.Access(0, true, func(securemem.DevAddr) {
			pc.Access(4096, false, func(securemem.DevAddr) {
				pc.Access(8192, false, func(securemem.DevAddr) {
					pc.Access(12288, false, func(securemem.DevAddr) {})
				})
			})
		})
	})
	eng.Run(0)
	if sec.evicts == 0 {
		t.Fatal("no evictions")
	}
	// Each page only ever filled one chunk, so present masks are 1-hot.
	if popcount(sec.lastPresent) > 1 {
		t.Errorf("present mask = %b, want at most one chunk", sec.lastPresent)
	}
}

func TestWholePageModePresentIsFull(t *testing.T) {
	eng, pc, sec, _ := testSetup(false, 2, 16)
	eng.At(0, func() {
		pc.Access(0, true, func(securemem.DevAddr) {
			pc.Access(4096, false, func(securemem.DevAddr) {
				pc.Access(8192, false, func(securemem.DevAddr) {
					pc.Access(12288, false, func(securemem.DevAddr) {})
				})
			})
		})
	})
	eng.Run(0)
	if sec.evicts == 0 {
		t.Fatal("no evictions")
	}
	if sec.lastPresent != (1<<16)-1 {
		t.Errorf("present mask = %b, want all 16 chunks", sec.lastPresent)
	}
}

func TestRandomAccessSequenceInvariants(t *testing.T) {
	// Property: for any access sequence, (a) every access completes
	// exactly once, (b) the returned device address preserves the page
	// offset, (c) dirty masks are always a subset of touched masks, and
	// (d) the number of resident-or-filling frames never exceeds capacity.
	f := func(raw []uint16, writeBits uint64) bool {
		eng, pc, _, _ := testSetup(true, 3, 16)
		completions := 0
		ok := true
		eng.At(0, func() {
			for i, r := range raw {
				addr := securemem.HomeAddr(r) % (16 * 4096)
				write := writeBits&(1<<uint(i%64)) != 0
				wantOff := addr.PageOffset(4096)
				pc.Access(addr, write, func(devAddr securemem.DevAddr) {
					completions++
					if devAddr.PageOffset(4096) != wantOff {
						ok = false
					}
				})
			}
		})
		eng.Run(0)
		if completions != len(raw) {
			return false
		}
		for i := range pc.frames {
			f := &pc.frames[i]
			if f.dirty&^f.touched != 0 {
				return false
			}
			if f.dirty&^f.present != 0 && pc.mode == WholePage {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomAccessSequencePredictive(t *testing.T) {
	// The same completion property under predictive partial migration,
	// plus: dirty ⊆ present always.
	f := func(raw []uint16, writeBits uint64) bool {
		eng, pc, _, _ := testSetup(true, 3, 16)
		pc.SetMode(Predictive)
		completions := 0
		eng.At(0, func() {
			for i, r := range raw {
				addr := securemem.HomeAddr(r) % (16 * 4096)
				write := writeBits&(1<<uint(i%64)) != 0
				pc.Access(addr, write, func(securemem.DevAddr) { completions++ })
			}
		})
		eng.Run(0)
		if completions != len(raw) {
			return false
		}
		for i := range pc.frames {
			f := &pc.frames[i]
			if f.status == frameResident && f.dirty&^f.present != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLinkOutageRetriesMigration(t *testing.T) {
	eng, pc, _, run := testSetup(false, 2, 4)
	plan, err := link.ParsePlan("down@0..4")
	if err != nil {
		t.Fatal(err)
	}
	pc.SetLink(link.New(plan, link.Config{Threshold: 10, Cooldown: 1}))

	done := false
	eng.At(0, func() { pc.Access(0, false, func(securemem.DevAddr) { done = true }) })
	eng.Run(0)
	if !done {
		t.Fatal("access never completed across the outage")
	}
	// Four refusals, one retry pause each, before ordinal 4 goes through.
	if eng.Now() < 4*linkRetryCycles {
		t.Errorf("outage cost %d cycles, want >= %d", eng.Now(), 4*linkRetryCycles)
	}
	if run.Ops.LinkDownRefusals != 4 {
		t.Errorf("LinkDownRefusals = %d, want 4", run.Ops.LinkDownRefusals)
	}
	if run.Ops.LinkFlaps != 2 { // up->down at ordinal 0, down->up at 4
		t.Errorf("LinkFlaps = %d, want 2", run.Ops.LinkFlaps)
	}
	if !run.Ops.HasLink() {
		t.Error("link activity not visible via HasLink")
	}
}

func TestLinkBrownoutChargesLatency(t *testing.T) {
	engBase, pcBase, _, _ := testSetup(false, 2, 4)
	engBase.At(0, func() { pcBase.Access(0, false, func(securemem.DevAddr) {}) })
	engBase.Run(0)
	baseline := engBase.Now()

	eng, pc, _, run := testSetup(false, 2, 4)
	plan, err := link.ParsePlan("deg@0..1000:16")
	if err != nil {
		t.Fatal(err)
	}
	pc.SetLink(link.New(plan, link.DefaultConfig()))
	done := false
	eng.At(0, func() { pc.Access(0, false, func(securemem.DevAddr) { done = true }) })
	eng.Run(0)
	if !done {
		t.Fatal("access never completed under brownout")
	}
	if run.Ops.LinkLatencyCycles < 16 {
		t.Errorf("LinkLatencyCycles = %d, want >= 16", run.Ops.LinkLatencyCycles)
	}
	if eng.Now() < baseline+16 {
		t.Errorf("brownout added %d cycles over baseline %d, want >= 16", eng.Now()-baseline, baseline)
	}
}

func TestLinkOutageRetriesEviction(t *testing.T) {
	eng, pc, _, run := testSetup(true, 2, 6)
	// Ordinals: fills for pages 0 and 1 consume 0 and 1; the window hits
	// the eviction writeback and the fill behind it.
	plan, err := link.ParsePlan("down@2..6")
	if err != nil {
		t.Fatal(err)
	}
	pc.SetLink(link.New(plan, link.Config{Threshold: 10, Cooldown: 1}))

	completions := 0
	eng.At(0, func() {
		pc.Access(0, true, func(securemem.DevAddr) { completions++ })
		pc.Access(4096, true, func(securemem.DevAddr) { completions++ })
	})
	eng.Run(0)
	eng.At(eng.Now()+1, func() {
		pc.Access(2*4096, true, func(securemem.DevAddr) { completions++ })
	})
	eng.Run(0)
	if completions != 3 {
		t.Fatalf("%d accesses completed, want 3", completions)
	}
	if run.Ops.LinkDownRefusals == 0 {
		t.Error("eviction/fill outage never refused a transfer")
	}
	if run.Ops.PagesEvicted == 0 {
		t.Error("no eviction happened; the outage window missed its target")
	}
}
