package securemem

import (
	"bytes"
	"errors"
	"testing"
)

func TestReKeyPreservesData(t *testing.T) {
	for _, model := range []Model{ModelConventional, ModelSalus} {
		s := newSys(t, model, 8, 2)
		want := map[HomeAddr][]byte{
			100:   []byte("alpha"),
			4096:  []byte("beta"),
			28000: []byte("gamma"),
		}
		for addr, data := range want {
			if err := s.Write(addr, data); err != nil {
				t.Fatal(err)
			}
		}
		oldRaw := s.RawHomeBytes(0, 4096)
		if err := s.ReKey([]byte("fedcba9876543210"), []byte("new-mac-key")); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		// Data still reads back.
		for addr, data := range want {
			got := make([]byte, len(data))
			if err := s.Read(addr, got); err != nil {
				t.Fatalf("%v: read %d after rekey: %v", model, addr, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v: addr %d = %q, want %q", model, addr, got, data)
			}
		}
		// The at-rest ciphertext changed (fresh pads).
		if bytes.Equal(oldRaw, s.RawHomeBytes(0, 4096)) {
			t.Errorf("%v: ciphertext unchanged by rekey", model)
		}
		if s.Stats().KeyRotations != 1 {
			t.Errorf("%v: rotations = %d", model, s.Stats().KeyRotations)
		}
	}
}

func TestReKeyWithSplitState(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	if err := s.WriteThrough(0, []byte("direct-write before rekey")); err != nil {
		t.Fatal(err)
	}
	if err := s.ReKey([]byte("fedcba9876543210"), []byte("k2")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 25)
	if err := s.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "direct-write before rekey" {
		t.Errorf("got %q", got)
	}
	// Split state was cleared: new direct writes start fresh.
	if err := s.WriteThrough(4096, []byte("post")); err != nil {
		t.Fatal(err)
	}
}

func TestReKeyInvalidInputs(t *testing.T) {
	s := newSys(t, ModelNone, 4, 2)
	if err := s.ReKey([]byte("0123456789abcdef"), []byte("k")); err == nil {
		t.Error("ReKey on unencrypted model accepted")
	}
	s2 := newSys(t, ModelSalus, 4, 2)
	if err := s2.ReKey([]byte("short"), []byte("k")); err == nil {
		t.Error("short key accepted")
	}
	// Failed rekey leaves the system usable under the old keys.
	if err := s2.Write(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Read(0, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestReKeyDetectsPriorTampering(t *testing.T) {
	// Tampered at-rest data cannot be laundered through a rekey: the sweep
	// verifies every sector first.
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !s.CorruptHome(0) {
		t.Fatal("CorruptHome(0) reported out of range")
	}
	if err := s.ReKey([]byte("fedcba9876543210"), []byte("k2")); !errors.Is(err, ErrIntegrity) {
		t.Errorf("rekey over tampered data: %v", err)
	}
}

func TestOldSnapshotUselessAfterReKey(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	image, _, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReKey([]byte("fedcba9876543210"), []byte("k2")); err != nil {
		t.Fatal(err)
	}
	_, newRoot, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	// The pre-rekey image fails against the post-rekey root.
	if _, err := Resume(salusCfg(4, 2), image, newRoot); err == nil {
		t.Error("stale pre-rekey image accepted")
	}
}
