package securemem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/salus-sim/salus/internal/security/counters"
	"github.com/salus-sim/salus/internal/security/maclib"
)

// Suspend/resume support. A suspended System is split into two artifacts:
//
//   - an untrusted image: everything that lives in (or could live in)
//     off-chip memory — ciphertext, MAC sectors, counter blocks. It can be
//     written to any storage; tampering with it is detected on resume.
//   - a trusted root: the TCB state (keys stay with the caller; the root
//     digests of the integrity trees travel here). It must be kept in
//     trusted storage, exactly like the on-chip root register it models.
//
// Resume reconstructs a System from the configuration, keys, image, and
// root. A mismatched or replayed image fails verification either at
// Resume (tree roots) or at first access (MACs).

// snapshotMagic identifies the image format. Version 2 added the full
// geometry to the header so a Resume under a mismatched configuration is
// rejected up front (ErrImageMismatch) instead of mis-slicing sections.
var snapshotMagic = []byte("SALUSIMG2")

// ErrImageMismatch reports an image whose magic or recorded dimensions
// disagree with the configuration passed to Resume.
var ErrImageMismatch = errors.New("securemem: image does not match configuration")

// TrustedRoot is the TCB state of a suspended system. Besides the tree
// roots it carries the checkpoint epoch — the monotonic counter that
// pins which journal prefix Recover may accept — and the
// fault-containment badblock list: quarantined chunks, retired frames,
// and pinned pages must survive a suspend/resume cycle, or a resumed
// system would silently serve stale home bytes for data that was lost to
// an uncorrectable fault.
type TrustedRoot struct {
	Epoch     uint64 // last committed checkpoint epoch
	CXLRoot   [32]byte
	SplitRoot [32]byte // zero when the split state was never used
	HasSplit  bool

	PoisonedChunks    []int
	QuarantinedFrames []int
	PinnedPages       []int
}

// Suspend flushes the device tier and serialises the untrusted state. It
// returns the image and the trusted root. Only ModelSalus systems support
// suspend (the conventional model's device-tier metadata cannot outlive
// the device contents it is bound to).
func (s *System) Suspend() (image []byte, root TrustedRoot, err error) {
	if s.cfg.Model != ModelSalus {
		return nil, root, errors.New("securemem: Suspend requires ModelSalus")
	}
	// Everything must be home: flush the device tier. Writebacks parked
	// by a link outage cannot be serialised — their home copies are
	// stale — so a suspend must wait for the queue to drain.
	if err := s.Flush(); err != nil {
		return nil, root, err
	}
	if n := s.wbqLen(); n > 0 {
		return nil, root, fmt.Errorf("%w: %d parked", ErrWritebacksPending, n)
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	w64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w64(uint64(s.cfg.TotalPages))
	w64(uint64(s.cfg.DevicePages))
	w64(uint64(s.geo.SectorSize))
	w64(uint64(s.geo.BlockSize))
	w64(uint64(s.geo.ChunkSize))
	w64(uint64(s.geo.PageSize))
	buf.Write(s.cxlData)
	for i := range s.macSectors {
		img := s.macSectors[i].Encode()
		buf.Write(img[:])
	}
	for i := range s.collapsed {
		img := s.collapsed[i].Encode()
		buf.Write(img[:])
	}
	if s.cxlSplit != nil {
		w64(1)
		for i := range s.cxlSplit {
			img := s.cxlSplit[i].Encode()
			buf.Write(img[:])
		}
		for _, d := range s.splitDirty {
			if d {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
		root.SplitRoot = s.splitTree.Root()
		root.HasSplit = true
	} else {
		w64(0)
	}
	root.Epoch = s.epoch
	root.CXLRoot = s.cxlTree.Root()
	root.PoisonedChunks = s.PoisonedChunks()
	root.QuarantinedFrames = s.QuarantinedFrames()
	root.PinnedPages = s.PinnedPages()
	return buf.Bytes(), root, nil
}

// Resume reconstructs a suspended system. cfg and the keys must match the
// suspended system's; the image is untrusted and is verified against the
// trusted root before use.
func Resume(cfg Config, image []byte, root TrustedRoot) (*System, error) {
	if cfg.Model != ModelSalus {
		return nil, errors.New("securemem: Resume requires ModelSalus")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(image)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, fmt.Errorf("%w: not a salus image", ErrImageMismatch)
	}
	var hasSplit uint64
	rd64 := func(v *uint64) error { return binary.Read(r, binary.LittleEndian, v) }
	// The header pins every dimension the section offsets depend on; a
	// disagreement with cfg means the image belongs to a different system
	// and slicing it with cfg's layout would mis-index.
	dims := []struct {
		name string
		want int
	}{
		{"total pages", cfg.TotalPages},
		{"device pages", cfg.DevicePages},
		{"sector size", cfg.Geometry.SectorSize},
		{"block size", cfg.Geometry.BlockSize},
		{"chunk size", cfg.Geometry.ChunkSize},
		{"page size", cfg.Geometry.PageSize},
	}
	for _, d := range dims {
		var v uint64
		if err := rd64(&v); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrImageMismatch)
		}
		if v != uint64(d.want) {
			return nil, fmt.Errorf("%w: image %s %d, config %d", ErrImageMismatch, d.name, v, d.want)
		}
	}
	if _, err := io.ReadFull(r, s.cxlData); err != nil {
		return nil, fmt.Errorf("securemem: truncated data section: %v", err)
	}
	var sector [32]byte
	for i := range s.macSectors {
		if _, err := io.ReadFull(r, sector[:]); err != nil {
			return nil, fmt.Errorf("securemem: truncated MAC section: %v", err)
		}
		s.macSectors[i] = maclib.Decode(sector)
	}
	for i := range s.collapsed {
		if _, err := io.ReadFull(r, sector[:]); err != nil {
			return nil, fmt.Errorf("securemem: truncated counter section: %v", err)
		}
		s.collapsed[i] = counters.DecodeCollapsed(sector)
		if err := s.cxlTree.Update(i, sector); err != nil {
			return nil, err
		}
	}
	if err := rd64(&hasSplit); err != nil {
		return nil, err
	}
	if hasSplit == 1 {
		if err := s.ensureSplitState(); err != nil {
			return nil, err
		}
		for i := range s.cxlSplit {
			if _, err := io.ReadFull(r, sector[:]); err != nil {
				return nil, fmt.Errorf("securemem: truncated split section: %v", err)
			}
			s.cxlSplit[i] = counters.DecodeCXLSplit(sector)
			if err := s.splitTree.Update(i, sector); err != nil {
				return nil, err
			}
		}
		dirt := make([]byte, len(s.splitDirty))
		if _, err := io.ReadFull(r, dirt); err != nil {
			return nil, fmt.Errorf("securemem: truncated split-dirty section: %v", err)
		}
		for i, b := range dirt {
			s.splitDirty[i] = b == 1
		}
	}
	// Verify the rebuilt trees against the trusted root. A tampered or
	// replayed counter section produces a different root and is rejected
	// here; tampered data or MAC sections are caught by MAC verification
	// on first access.
	if s.cxlTree.Root() != root.CXLRoot {
		return nil, fmt.Errorf("%w: counter image does not match trusted root", ErrFreshness)
	}
	if root.HasSplit {
		if s.splitTree == nil || s.splitTree.Root() != root.SplitRoot {
			return nil, fmt.Errorf("%w: split-counter image does not match trusted root", ErrFreshness)
		}
	} else if hasSplit == 1 {
		return nil, fmt.Errorf("%w: image carries split state the trusted root does not know", ErrFreshness)
	}
	if err := s.applyTrustedBadblocks(root); err != nil {
		return nil, err
	}
	s.epoch = root.Epoch
	// The image restored pages the deterministic initial encryption knows
	// nothing about; any journal the caller checkpoints to next must carry
	// them all.
	for i := range s.ckptDirty {
		s.ckptDirty[i] = true
	}
	return s, nil
}

// applyTrustedBadblocks restores the fault-containment badblock list from
// the TCB root, validating every index against the configuration (shared
// by Resume and Recover).
func (s *System) applyTrustedBadblocks(root TrustedRoot) error {
	// Restored badblocks are pre-existing state, not new faults: the
	// quarantine slices and their atomic counts are set directly, without
	// touching the ChunksPoisoned/PagesPinned fault counters.
	for _, c := range root.PoisonedChunks {
		if c < 0 || c >= s.cfg.TotalPages*s.geo.ChunksPerPage() {
			return fmt.Errorf("securemem: trusted root quarantines out-of-range chunk %d", c)
		}
		if !s.poisoned[c] {
			s.poisoned[c] = true
			atomic.AddUint64(&s.poisonedN, 1)
		}
	}
	for _, fi := range root.QuarantinedFrames {
		if fi < 0 || fi >= len(s.frames) {
			return fmt.Errorf("securemem: trusted root retires out-of-range frame %d", fi)
		}
		s.frames[fi].quarantined = true
	}
	for _, p := range root.PinnedPages {
		if p < 0 || p >= s.cfg.TotalPages {
			return fmt.Errorf("securemem: trusted root pins out-of-range page %d", p)
		}
		if !s.pinned[p] {
			s.pinned[p] = true
			atomic.AddUint64(&s.pinnedN, 1)
		}
	}
	return nil
}

// rootMagic identifies a marshalled TrustedRoot.
var rootMagic = []byte("SROOT1")

// maxRootList bounds the badblock list lengths UnmarshalTrustedRoot will
// allocate for; a hostile blob cannot demand more.
const maxRootList = 1 << 20

// MarshalBinary serialises the trusted root for storage alongside (but
// never inside) the untrusted image or journal. The encoding carries no
// secrets — but its integrity is the whole point, so it must live in
// trusted storage exactly like the struct it encodes.
func (r TrustedRoot) MarshalBinary() []byte {
	var buf bytes.Buffer
	buf.Write(rootMagic)
	w64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w64(r.Epoch)
	buf.Write(r.CXLRoot[:])
	buf.Write(r.SplitRoot[:])
	if r.HasSplit {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	wlist := func(vs []int) {
		w64(uint64(len(vs)))
		for _, v := range vs {
			w64(uint64(v))
		}
	}
	wlist(r.PoisonedChunks)
	wlist(r.QuarantinedFrames)
	wlist(r.PinnedPages)
	return buf.Bytes()
}

// UnmarshalTrustedRoot parses a marshalled trusted root. It validates
// structure only (magic, lengths, bounded lists); semantic validation of
// the indices happens against the configuration when the root is used.
func UnmarshalTrustedRoot(data []byte) (TrustedRoot, error) {
	var root TrustedRoot
	r := bytes.NewReader(data)
	magic := make([]byte, len(rootMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, rootMagic) {
		return root, errors.New("securemem: not a trusted root")
	}
	rd64 := func(v *uint64) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd64(&root.Epoch); err != nil {
		return root, fmt.Errorf("securemem: truncated trusted root: %v", err)
	}
	if _, err := io.ReadFull(r, root.CXLRoot[:]); err != nil {
		return root, fmt.Errorf("securemem: truncated trusted root: %v", err)
	}
	if _, err := io.ReadFull(r, root.SplitRoot[:]); err != nil {
		return root, fmt.Errorf("securemem: truncated trusted root: %v", err)
	}
	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return root, fmt.Errorf("securemem: truncated trusted root: %v", err)
	}
	root.HasSplit = flag[0] == 1
	rdlist := func() ([]int, error) {
		var n uint64
		if err := rd64(&n); err != nil {
			return nil, fmt.Errorf("securemem: truncated trusted root: %v", err)
		}
		if n > maxRootList {
			return nil, fmt.Errorf("securemem: trusted root list of %d entries rejected", n)
		}
		if n == 0 {
			return nil, nil
		}
		vs := make([]int, n)
		for i := range vs {
			var v uint64
			if err := rd64(&v); err != nil {
				return nil, fmt.Errorf("securemem: truncated trusted root: %v", err)
			}
			vs[i] = int(v)
		}
		return vs, nil
	}
	var err error
	if root.PoisonedChunks, err = rdlist(); err != nil {
		return root, err
	}
	if root.QuarantinedFrames, err = rdlist(); err != nil {
		return root, err
	}
	if root.PinnedPages, err = rdlist(); err != nil {
		return root, err
	}
	if r.Len() != 0 {
		return root, errors.New("securemem: trailing bytes after trusted root")
	}
	return root, nil
}
