package securemem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/salus-sim/salus/internal/security/counters"
	"github.com/salus-sim/salus/internal/security/maclib"
)

// Suspend/resume support. A suspended System is split into two artifacts:
//
//   - an untrusted image: everything that lives in (or could live in)
//     off-chip memory — ciphertext, MAC sectors, counter blocks. It can be
//     written to any storage; tampering with it is detected on resume.
//   - a trusted root: the TCB state (keys stay with the caller; the root
//     digests of the integrity trees travel here). It must be kept in
//     trusted storage, exactly like the on-chip root register it models.
//
// Resume reconstructs a System from the configuration, keys, image, and
// root. A mismatched or replayed image fails verification either at
// Resume (tree roots) or at first access (MACs).

// snapshotMagic identifies the image format.
var snapshotMagic = []byte("SALUSIMG1")

// TrustedRoot is the TCB state of a suspended system. Besides the tree
// roots it carries the fault-containment badblock list: quarantined
// chunks, retired frames, and pinned pages must survive a suspend/resume
// cycle, or a resumed system would silently serve stale home bytes for
// data that was lost to an uncorrectable fault.
type TrustedRoot struct {
	CXLRoot   [32]byte
	SplitRoot [32]byte // zero when the split state was never used
	HasSplit  bool

	PoisonedChunks    []int
	QuarantinedFrames []int
	PinnedPages       []int
}

// Suspend flushes the device tier and serialises the untrusted state. It
// returns the image and the trusted root. Only ModelSalus systems support
// suspend (the conventional model's device-tier metadata cannot outlive
// the device contents it is bound to).
func (s *System) Suspend() (image []byte, root TrustedRoot, err error) {
	if s.cfg.Model != ModelSalus {
		return nil, root, errors.New("securemem: Suspend requires ModelSalus")
	}
	// Everything must be home: flush the device tier.
	if err := s.Flush(); err != nil {
		return nil, root, err
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	w64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w64(uint64(s.cfg.TotalPages))
	w64(uint64(s.cfg.DevicePages))
	buf.Write(s.cxlData)
	for i := range s.macSectors {
		img := s.macSectors[i].Encode()
		buf.Write(img[:])
	}
	for i := range s.collapsed {
		img := s.collapsed[i].Encode()
		buf.Write(img[:])
	}
	if s.cxlSplit != nil {
		w64(1)
		for i := range s.cxlSplit {
			img := s.cxlSplit[i].Encode()
			buf.Write(img[:])
		}
		for _, d := range s.splitDirty {
			if d {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
		root.SplitRoot = s.splitTree.Root()
		root.HasSplit = true
	} else {
		w64(0)
	}
	root.CXLRoot = s.cxlTree.Root()
	root.PoisonedChunks = s.PoisonedChunks()
	root.QuarantinedFrames = s.QuarantinedFrames()
	root.PinnedPages = s.PinnedPages()
	return buf.Bytes(), root, nil
}

// Resume reconstructs a suspended system. cfg and the keys must match the
// suspended system's; the image is untrusted and is verified against the
// trusted root before use.
func Resume(cfg Config, image []byte, root TrustedRoot) (*System, error) {
	if cfg.Model != ModelSalus {
		return nil, errors.New("securemem: Resume requires ModelSalus")
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(image)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, errors.New("securemem: not a salus image")
	}
	var total, device, hasSplit uint64
	rd64 := func(v *uint64) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd64(&total); err != nil {
		return nil, err
	}
	if err := rd64(&device); err != nil {
		return nil, err
	}
	if int(total) != cfg.TotalPages || int(device) != cfg.DevicePages {
		return nil, fmt.Errorf("securemem: image geometry %d/%d does not match config %d/%d",
			total, device, cfg.TotalPages, cfg.DevicePages)
	}
	if _, err := io.ReadFull(r, s.cxlData); err != nil {
		return nil, fmt.Errorf("securemem: truncated data section: %v", err)
	}
	var sector [32]byte
	for i := range s.macSectors {
		if _, err := io.ReadFull(r, sector[:]); err != nil {
			return nil, fmt.Errorf("securemem: truncated MAC section: %v", err)
		}
		s.macSectors[i] = maclib.Decode(sector)
	}
	for i := range s.collapsed {
		if _, err := io.ReadFull(r, sector[:]); err != nil {
			return nil, fmt.Errorf("securemem: truncated counter section: %v", err)
		}
		s.collapsed[i] = counters.DecodeCollapsed(sector)
		if err := s.cxlTree.Update(i, sector); err != nil {
			return nil, err
		}
	}
	if err := rd64(&hasSplit); err != nil {
		return nil, err
	}
	if hasSplit == 1 {
		if err := s.ensureSplitState(); err != nil {
			return nil, err
		}
		for i := range s.cxlSplit {
			if _, err := io.ReadFull(r, sector[:]); err != nil {
				return nil, fmt.Errorf("securemem: truncated split section: %v", err)
			}
			s.cxlSplit[i] = counters.DecodeCXLSplit(sector)
			if err := s.splitTree.Update(i, sector); err != nil {
				return nil, err
			}
		}
		dirt := make([]byte, len(s.splitDirty))
		if _, err := io.ReadFull(r, dirt); err != nil {
			return nil, fmt.Errorf("securemem: truncated split-dirty section: %v", err)
		}
		for i, b := range dirt {
			s.splitDirty[i] = b == 1
		}
	}
	// Verify the rebuilt trees against the trusted root. A tampered or
	// replayed counter section produces a different root and is rejected
	// here; tampered data or MAC sections are caught by MAC verification
	// on first access.
	if s.cxlTree.Root() != root.CXLRoot {
		return nil, fmt.Errorf("%w: counter image does not match trusted root", ErrFreshness)
	}
	if root.HasSplit {
		if s.splitTree == nil || s.splitTree.Root() != root.SplitRoot {
			return nil, fmt.Errorf("%w: split-counter image does not match trusted root", ErrFreshness)
		}
	} else if hasSplit == 1 {
		return nil, fmt.Errorf("%w: image carries split state the trusted root does not know", ErrFreshness)
	}
	// Restore the fault-containment badblock list from the TCB.
	for _, c := range root.PoisonedChunks {
		if c < 0 || c >= cfg.TotalPages*cfg.Geometry.ChunksPerPage() {
			return nil, fmt.Errorf("securemem: trusted root quarantines out-of-range chunk %d", c)
		}
		if s.poisoned == nil {
			s.poisoned = map[int]bool{}
		}
		s.poisoned[c] = true
	}
	for _, fi := range root.QuarantinedFrames {
		if fi < 0 || fi >= len(s.frames) {
			return nil, fmt.Errorf("securemem: trusted root retires out-of-range frame %d", fi)
		}
		s.frames[fi].quarantined = true
	}
	for _, p := range root.PinnedPages {
		if p < 0 || p >= cfg.TotalPages {
			return nil, fmt.Errorf("securemem: trusted root pins out-of-range page %d", p)
		}
		if s.pinned == nil {
			s.pinned = map[int]bool{}
		}
		s.pinned[p] = true
	}
	return s, nil
}
