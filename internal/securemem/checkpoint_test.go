package securemem

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/salus-sim/salus/internal/crash"
)

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	store := crash.NewMemStore()
	j := crash.NewJournal(store)

	if err := s.Write(0, []byte("epoch one, page zero")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(3*4096+100, []byte("epoch one, page three")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(j); err != nil {
		t.Fatal(err)
	}

	if err := s.Write(0, []byte("epoch two overwrite!")); err != nil {
		t.Fatal(err)
	}
	// Direct CXL write so the recovered system must rebuild split state.
	if err := s.WriteThrough(6*4096, []byte("split-state payload")); err != nil {
		t.Fatal(err)
	}
	root, err := s.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	if root.Epoch != 2 {
		t.Fatalf("root epoch = %d; want 2", root.Epoch)
	}
	liveDigest := s.StateDigest()

	r, err := Recover(salusCfg(8, 2), store.Bytes(), root)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.StateDigest(); got != liveDigest {
		t.Fatal("recovered state digest differs from the checkpointed system")
	}
	for addr, want := range map[HomeAddr]string{
		0:            "epoch two overwrite!",
		3*4096 + 100: "epoch one, page three",
		6 * 4096:     "split-state payload",
	} {
		got := make([]byte, len(want))
		if err := r.Read(addr, got); err != nil {
			t.Fatalf("read %d after recover: %v", addr, err)
		}
		if string(got) != want {
			t.Fatalf("addr %d: got %q, want %q", addr, got, want)
		}
	}
}

// TestCheckpointAccounting pins the satellite contract: N dirty pages
// yield exactly N page records, the journal byte growth lands in OpStats,
// and a checkpoint with nothing dirty commits an empty epoch.
func TestCheckpointAccounting(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	store := crash.NewMemStore()
	j := crash.NewJournal(store)

	const dirtyPages = 3
	for p := 0; p < dirtyPages; p++ {
		if err := s.Write(HomeAddr(p*4096), []byte{byte('a' + p)}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	root, err := s.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if got := after.CheckpointPages - before.CheckpointPages; got != dirtyPages {
		t.Fatalf("CheckpointPages grew by %d; want %d", got, dirtyPages)
	}
	if got := after.Checkpoints - before.Checkpoints; got != 1 {
		t.Fatalf("Checkpoints grew by %d; want 1", got)
	}
	if after.CheckpointBytes != j.BytesWritten() {
		t.Fatalf("CheckpointBytes = %d; journal wrote %d", after.CheckpointBytes, j.BytesWritten())
	}
	if after.CheckpointCycles == 0 {
		t.Fatal("checkpoint charged no cycles")
	}
	recs, err := crash.Replay(store.Bytes(), root.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != dirtyPages {
		t.Fatalf("journal holds %d records; want %d", len(recs), dirtyPages)
	}

	// Nothing dirty: the next checkpoint is an empty epoch — exactly one
	// commit record, no page records, epoch still advances.
	bytesBefore := j.BytesWritten()
	root2, err := s.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	final := s.Stats()
	if final.CheckpointPages != after.CheckpointPages {
		t.Fatalf("no-op checkpoint journaled %d pages", final.CheckpointPages-after.CheckpointPages)
	}
	if root2.Epoch != root.Epoch+1 {
		t.Fatalf("no-op checkpoint epoch = %d; want %d", root2.Epoch, root.Epoch+1)
	}
	grown := j.BytesWritten() - bytesBefore
	if grown == 0 || grown > 64 {
		t.Fatalf("no-op checkpoint wrote %d bytes; want one bare commit record", grown)
	}
	recs2, err := crash.Replay(store.Bytes(), root2.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != dirtyPages {
		t.Fatalf("after no-op epoch: %d records; want %d", len(recs2), dirtyPages)
	}
}

// TestRecoverRejectsStaleJournal is the rollback-attack regression: a
// bit-for-bit valid journal captured before the latest epoch must be
// rejected with ErrRollback when replayed against the current root.
func TestRecoverRejectsStaleJournal(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	store := crash.NewMemStore()
	j := crash.NewJournal(store)

	if err := s.Write(0, []byte("balance: 1000")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(j); err != nil {
		t.Fatal(err)
	}
	staleJournal := store.Bytes() // attacker snapshots the medium here

	if err := s.Write(0, []byte("balance: 0000")); err != nil {
		t.Fatal(err)
	}
	root, err := s.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Recover(salusCfg(4, 2), staleJournal, root); !errors.Is(err, crash.ErrRollback) {
		t.Fatalf("stale journal replay: %v; want ErrRollback", err)
	}
	// The honest journal still recovers.
	if _, err := Recover(salusCfg(4, 2), store.Bytes(), root); err != nil {
		t.Fatalf("honest journal: %v", err)
	}
}

func TestRecoverRejectsTamperedJournal(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	store := crash.NewMemStore()
	j := crash.NewJournal(store)
	if err := s.Write(0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	root, err := s.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	data := store.Bytes()
	data[len(data)/2] ^= 0x10
	if _, err := Recover(salusCfg(4, 2), data, root); !errors.Is(err, crash.ErrTornCheckpoint) {
		t.Fatalf("tampered journal: %v; want ErrTornCheckpoint", err)
	}
	// A journal that parses but encodes different counters than the TCB
	// root trusts is a forgery: flip a root bit instead.
	root.CXLRoot[0] ^= 1
	if _, err := Recover(salusCfg(4, 2), store.Bytes(), root); !errors.Is(err, ErrFreshness) {
		t.Fatalf("forged root: %v; want ErrFreshness", err)
	}
}

// failingStore passes writes through to a MemStore until a chosen write
// number, which fails once (a transient persistence outage, not a crash).
type failingStore struct {
	inner  crash.MemStore
	failAt int
	n      int
}

func (f *failingStore) Write(p []byte) error {
	f.n++
	if f.n == f.failAt {
		return fmt.Errorf("injected write failure")
	}
	return f.inner.Write(p)
}

func (f *failingStore) Sync() error { return nil }

// TestCheckpointRetryAfterFailure: a failed checkpoint consumes its epoch
// so the retry commits under a fresh one, and Replay discards the
// abandoned partial epoch cleanly.
func TestCheckpointRetryAfterFailure(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	fs := &failingStore{failAt: 2}
	j := crash.NewJournal(fs)

	for p := 0; p < 3; p++ {
		if err := s.Write(HomeAddr(p*4096), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(j); err == nil {
		t.Fatal("checkpoint over failing store succeeded")
	}
	// Retry on the same journal: the abandoned epoch-1 records are still
	// on the medium; epoch 2 must supersede them.
	root, err := s.Checkpoint(j)
	if err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	if root.Epoch != 2 {
		t.Fatalf("retry committed epoch %d; want 2 (epoch 1 consumed by the failure)", root.Epoch)
	}
	r, err := Recover(salusCfg(8, 2), fs.inner.Bytes(), root)
	if err != nil {
		t.Fatalf("recover after retry: %v", err)
	}
	if got, want := r.StateDigest(), s.StateDigest(); got != want {
		t.Fatal("recovered digest differs after retry")
	}
}

func TestCheckpointKeepsResidency(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	j := crash.NewJournal(crash.NewMemStore())
	if err := s.Write(0, []byte("resident dirty data")); err != nil {
		t.Fatal(err)
	}
	if !s.IsResident(0) {
		t.Fatal("page 0 not resident before checkpoint")
	}
	if _, err := s.Checkpoint(j); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !s.IsResident(0) {
		t.Fatal("checkpoint evicted the page")
	}
	if st.CheckpointWritebacks == 0 {
		t.Fatal("dirty resident chunk not written back")
	}
	if st.PageEvictions != 0 || st.DirtyChunkWritebacks != 0 {
		t.Fatalf("checkpoint leaked into eviction accounting: evictions=%d dirtyWritebacks=%d",
			st.PageEvictions, st.DirtyChunkWritebacks)
	}
	// The resident copy stays live: read and write again.
	buf := make([]byte, 19)
	if err := s.Read(0, buf); err != nil || string(buf) != "resident dirty data" {
		t.Fatalf("post-checkpoint read: %q, %v", buf, err)
	}
	if err := s.Write(0, []byte("still writable")); err != nil {
		t.Fatalf("post-checkpoint write: %v", err)
	}
}

func TestCheckpointModelAndArgumentErrors(t *testing.T) {
	conv := newSys(t, ModelConventional, 4, 2)
	if _, err := conv.Checkpoint(crash.NewJournal(crash.NewMemStore())); err == nil {
		t.Error("conventional checkpoint accepted")
	}
	if _, err := Recover(Config{Geometry: testGeo(), Model: ModelConventional, TotalPages: 4, DevicePages: 2}, nil, TrustedRoot{}); err == nil {
		t.Error("conventional recover accepted")
	}
	s := newSys(t, ModelSalus, 4, 2)
	if _, err := s.Checkpoint(nil); !errors.Is(err, ErrJournalRequired) {
		t.Errorf("nil journal: %v; want ErrJournalRequired", err)
	}
}

func TestTrustedRootMarshalRoundTrip(t *testing.T) {
	root := TrustedRoot{
		Epoch:             7,
		HasSplit:          true,
		PoisonedChunks:    []int{3, 9},
		QuarantinedFrames: []int{1},
		PinnedPages:       []int{0, 2, 5},
	}
	root.CXLRoot[0], root.SplitRoot[31] = 0xAB, 0xCD
	got, err := UnmarshalTrustedRoot(root.MarshalBinary())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != root.Epoch || got.CXLRoot != root.CXLRoot || got.SplitRoot != root.SplitRoot ||
		got.HasSplit != root.HasSplit ||
		fmt.Sprint(got.PoisonedChunks) != fmt.Sprint(root.PoisonedChunks) ||
		fmt.Sprint(got.QuarantinedFrames) != fmt.Sprint(root.QuarantinedFrames) ||
		fmt.Sprint(got.PinnedPages) != fmt.Sprint(root.PinnedPages) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, root)
	}
	if _, err := UnmarshalTrustedRoot([]byte("garbage")); err == nil {
		t.Error("garbage root accepted")
	}
	if _, err := UnmarshalTrustedRoot(root.MarshalBinary()[:10]); err == nil {
		t.Error("truncated root accepted")
	}
}

// TestConcurrentCheckpointUnderLoad checkpoints while reader and writer
// goroutines hammer the system; run under -race this is the satellite's
// checkpoint-under-load race test. The final recovery must reproduce the
// last committed digest even though ops continued after it.
func TestConcurrentCheckpointUnderLoad(t *testing.T) {
	c, err := NewConcurrent(salusCfg(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	store := crash.NewMemStore()
	j := crash.NewJournal(store)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addr := HomeAddr((g*1024 + i*64) % (8 * 4096))
				if i%2 == 0 {
					if err := c.Write(addr, []byte{byte(g), byte(i)}); err != nil {
						fail <- err
						return
					}
				} else if err := c.Read(addr, buf); err != nil {
					fail <- err
					return
				}
			}
		}(g)
	}
	var lastRoot TrustedRoot
	for k := 0; k < 8; k++ {
		root, err := c.Checkpoint(j)
		if err != nil {
			t.Fatal(err)
		}
		lastRoot = root
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if lastRoot.Epoch != 8 {
		t.Fatalf("epoch after 8 checkpoints = %d", lastRoot.Epoch)
	}
	// Quiesce and take one final checkpoint so the journal tip matches a
	// digest we can compare against.
	root, err := c.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	live := c.Unwrap().StateDigest()
	r, err := Recover(salusCfg(8, 2), store.Bytes(), root)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.StateDigest(); got != live {
		t.Fatal("recovered digest differs from quiesced system")
	}
}

func TestSuspendResumeCarriesEpoch(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	j := crash.NewJournal(crash.NewMemStore())
	if err := s.Write(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(j); err != nil {
		t.Fatal(err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if root.Epoch != 1 {
		t.Fatalf("suspend root epoch = %d; want 1", root.Epoch)
	}
	restored, err := Resume(salusCfg(4, 2), image, root)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != 1 {
		t.Fatalf("resumed epoch = %d; want 1", restored.Epoch())
	}
	// A resumed system cannot rely on the deterministic initial state:
	// its next checkpoint must journal every page.
	store2 := crash.NewMemStore()
	j2 := crash.NewJournal(store2)
	root2, err := restored.Checkpoint(j2)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Stats().CheckpointPages; got != 4 {
		t.Fatalf("post-resume checkpoint journaled %d pages; want all 4", got)
	}
	if _, err := Recover(salusCfg(4, 2), store2.Bytes(), root2); err != nil {
		t.Fatalf("recover from post-resume journal: %v", err)
	}
}
