package securemem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/link"
)

// TestBadGeometryRejected proves the sector-size mismatch a Config can
// smuggle past the old string-only validation is now a typed error: the
// crypto engine pads exactly cryptoeng.SectorSize bytes, so any other
// SectorSize must be refused at construction, not at first access.
func TestBadGeometryRejected(t *testing.T) {
	cfg := Config{Geometry: testGeo(), Model: ModelSalus, TotalPages: 8, DevicePages: 2}
	cfg.Geometry.SectorSize = 64
	if _, err := New(cfg); !errors.Is(err, ErrGeometry) {
		t.Fatalf("New with 64-byte sectors: err = %v, want ErrGeometry", err)
	}
	if _, err := NewConcurrent(cfg); !errors.Is(err, ErrGeometry) {
		t.Fatalf("NewConcurrent with 64-byte sectors: err = %v, want ErrGeometry", err)
	}
	cfg.Geometry.SectorSize = 16
	if _, err := New(cfg); !errors.Is(err, ErrGeometry) {
		t.Fatalf("New with 16-byte sectors: err = %v, want ErrGeometry", err)
	}
}

func TestConfigShardsValidation(t *testing.T) {
	cfg := Config{Geometry: testGeo(), Model: ModelSalus, TotalPages: 8, DevicePages: 2, Shards: -1}
	if _, err := NewConcurrent(cfg); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate passed negative Shards")
	}
}

// TestShardClamp pins the shard-count selection rules: zero means
// DefaultShards, and the count never exceeds the device tier (every
// shard must own at least one frame or its pages could never migrate),
// the page count, or maxShards.
func TestShardClamp(t *testing.T) {
	cases := []struct {
		total, dev, shards, want int
	}{
		{64, 32, 0, DefaultShards},
		{64, 2, 0, 2},
		{64, 32, 200, 32},
		{128, 64, 3, 3},
		{128, 100, 200, maxShards},
		{8, 1, 8, 1},
	}
	for _, tc := range cases {
		c, err := NewConcurrent(Config{
			Geometry:    testGeo(),
			Model:       ModelSalus,
			TotalPages:  tc.total,
			DevicePages: tc.dev,
			Shards:      tc.shards,
		})
		if err != nil {
			t.Fatalf("total=%d dev=%d shards=%d: %v", tc.total, tc.dev, tc.shards, err)
		}
		if got := c.Shards(); got != tc.want {
			t.Errorf("total=%d dev=%d shards=%d: Shards() = %d, want %d",
				tc.total, tc.dev, tc.shards, got, tc.want)
		}
	}
	// A bare System stays unsharded: nShards == 1 keeps the
	// single-threaded scan order (and hence ciphertext) byte-identical to
	// the pre-sharding implementation.
	if got := newSys(t, ModelSalus, 8, 2).Shards(); got != 1 {
		t.Errorf("bare System Shards() = %d, want 1", got)
	}
}

// TestShardFrameLocality verifies the partition invariant the whole lock
// design rests on: a page only ever occupies a device frame of its own
// shard (frame % nShards == page % nShards).
func TestShardFrameLocality(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  32,
		DevicePages: 8,
		Shards:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 32; p++ {
		if err := c.Write(HomeAddr(p*4096), pageData(p, 64)); err != nil {
			t.Fatal(err)
		}
	}
	sys := c.Unwrap()
	seen := 0
	for fi := range sys.frames {
		page := sys.frames[fi].homePage
		if page < 0 {
			continue
		}
		seen++
		if page%4 != fi%4 {
			t.Errorf("page %d (shard %d) resident in frame %d (shard %d)",
				page, page%4, fi, fi%4)
		}
	}
	if seen == 0 {
		t.Fatal("no pages resident after 32 writes")
	}
}

// TestConcurrentCrossShardWrite exercises multi-shard lock acquisition: a
// single Write spanning several pages locks every touched shard in
// ascending order and stays atomic with respect to same-range readers.
func TestConcurrentCrossShardWrite(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  16,
		DevicePages: 8,
		Shards:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 pages starting mid-page: crosses two page boundaries and three
	// shards in one call.
	base := HomeAddr(2*4096 + 2048)
	span := 3 * 4096
	want := pageData(99, span)
	if err := c.Write(base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, span)
	if err := c.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cross-shard span read back wrong bytes")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, span)
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					if err := c.Write(base, pageData(g*1000+i, span)); err != nil {
						fail(fmt.Errorf("span write g%d i%d: %w", g, i, err))
						return
					}
				} else if err := c.Read(base, buf); err != nil {
					fail(fmt.Errorf("span read g%d i%d: %w", g, i, err))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedRaceStress is the race-detector proof for the sharded lock
// design: readers and writers spread across every shard, cross-shard
// span writes, whole-system flushes, journal checkpoints, and drain
// loops all run at once, first on a healthy link and then across a
// scripted outage. Any missing synchronisation between shard-local
// state and the cross-shard pieces (stats, LRU clock, writeback queue,
// link/fault clock, split state) shows up under -race. The link only
// changes state between quiesced phases — the link model is shared
// "hardware" that securemem serialises internally, so the test may not
// poke it mid-flight.
func TestShardedRaceStress(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  32,
		DevicePages: 8,
		Shards:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.DefaultConfig())
	// Single-threaded setup: arm the link before any goroutine starts.
	c.Unwrap().AttachLink(lnk, nil, 4)

	linkTyped := func(err error) bool {
		return errors.Is(err, ErrLinkDown) || errors.Is(err, ErrDegraded) ||
			errors.Is(err, ErrQueueFull)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	drainErrs := func() {
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		errs = make(chan error, 16)
	}

	// Phase 1 — healthy link, every operation class at once. Nothing may
	// fail here.
	const iters = 80
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutine g owns pages g, g+8, g+16, g+24 — all shard g.
			buf := make([]byte, 48)
			for i := 0; i < iters; i++ {
				addr := HomeAddr((g + (i%4)*8) * 4096)
				payload := pageData(g*10000+i, 48)
				if err := c.Write(addr, payload); err != nil {
					fail(fmt.Errorf("shard %d i%d write: %w", g, i, err))
					return
				}
				if err := c.Read(addr, buf); err != nil {
					fail(fmt.Errorf("shard %d i%d read: %w", g, i, err))
					return
				}
			}
		}(g)
	}
	// Cross-shard span writer: multi-page writes lock several shards at
	// once, racing the single-shard traffic above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			base := HomeAddr((i%4)*4096 + 1024)
			if err := c.Write(base, pageData(i, 2*4096)); err != nil {
				fail(fmt.Errorf("span i%d: %w", i, err))
				return
			}
		}
	}()
	// Flusher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/8; i++ {
			if err := c.Flush(); err != nil {
				fail(fmt.Errorf("flush i%d: %w", i, err))
				return
			}
		}
	}()
	// Checkpointer: full journal checkpoints racing everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		j := crash.NewJournal(crash.NewMemStore())
		for i := 0; i < iters/8; i++ {
			if _, err := c.Checkpoint(j); err != nil {
				fail(fmt.Errorf("checkpoint i%d: %w", i, err))
				return
			}
		}
	}()
	// Drainer: the queue stays empty on a healthy link, but the loop
	// races its length checks against every writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if _, err := c.DrainWritebacks(); err != nil {
				fail(fmt.Errorf("drain i%d: %w", i, err))
				return
			}
		}
	}()
	// Metadata readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = c.Stats()
			_ = c.QueuedWritebacks()
			_ = c.Epoch()
			if c.Shards() != 8 {
				fail(errors.New("shard count changed under load"))
				return
			}
		}
	}()
	wg.Wait()
	drainErrs()

	// Phase 2 — scripted outage. Warm one page per shard, cut the link,
	// then race resident readers (must always succeed), missers (typed
	// failures only), drain attempts, and stats readers.
	for p := 0; p < 8; p++ {
		if err := c.Write(HomeAddr(p*4096), pageData(p, 48)); err != nil {
			t.Fatal(err)
		}
	}
	manual.Set(link.StateDown)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := pageData(g, 48)
			buf := make([]byte, 48)
			for i := 0; i < iters; i++ {
				if err := c.Read(HomeAddr(g*4096), buf); err != nil {
					fail(fmt.Errorf("outage resident read g%d i%d: %w", g, i, err))
					return
				}
				if !bytes.Equal(buf, want) {
					fail(fmt.Errorf("outage resident read g%d i%d: wrong bytes", g, i))
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := c.Write(HomeAddr((8+(g*4+i)%24)*4096), pageData(i, 16))
				if err != nil && !linkTyped(err) {
					fail(fmt.Errorf("outage miss g%d i%d: untyped %w", g, i, err))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := c.DrainWritebacks(); err != nil && !linkTyped(err) {
				fail(fmt.Errorf("outage drain i%d: untyped %w", i, err))
				return
			}
			_ = c.QueuedWritebacks()
			_ = c.Stats()
		}
	}()
	wg.Wait()
	drainErrs()

	// Phase 3 — recovery: restore the link (quiesced), then drain the
	// parked writebacks while resident readers keep running in other
	// shards.
	manual.Set(link.StateUp)
	lnk.ForceUp()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 48)
			for i := 0; i < iters/2; i++ {
				if err := c.Read(HomeAddr(g*4096), buf); err != nil {
					fail(fmt.Errorf("recovery read g%d i%d: %w", g, i, err))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := c.DrainWritebacks(); err != nil {
				fail(fmt.Errorf("recovery drain i%d: %w", i, err))
				return
			}
		}
	}()
	wg.Wait()
	drainErrs()

	if c.QueuedWritebacks() != 0 {
		t.Fatalf("queue not empty after recovery: %d", c.QueuedWritebacks())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 48)
	for p := 0; p < 32; p++ {
		if err := c.Read(HomeAddr(p*4096), buf); err != nil {
			t.Fatalf("post-stress read page %d: %v", p, err)
		}
	}
	if c.Stats().PageMigrationsIn == 0 {
		t.Error("stress run never migrated a page")
	}
}
