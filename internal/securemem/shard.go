package securemem

import (
	"sync"
	"sync/atomic"
)

// Page/frame sharding. A System is partitioned into nShards independent
// page groups: home page p and device frame f belong to shard p%nShards
// and f%nShards, and a page only ever occupies a frame of its own shard
// (migrateIn scans same-shard frames exclusively). Everything a
// sector-granular access touches — the frame, the page-table entry, the
// page's counter and MAC metadata, its dirty bits — is therefore owned by
// exactly one shard, and accesses to different shards can run
// concurrently once the caller (securemem.Concurrent) holds the
// respective shard locks.
//
// The few pieces of state that cross shard boundaries are synchronised
// here or at their own layer:
//
//   - the integrity trees (bmt.Tree carries its own mutex),
//   - the crypto engine (stateless per call; scratch comes from a pool),
//   - the fault injector, link model, and sim clock (locks.hw),
//   - the dirty-writeback queue (locks.wbQueueMu, held only inside the
//     wbq* helpers and never across a home-tier call),
//   - the OpStats counters (atomic bump/bumpN/peakMax on plain uint64s),
//   - the LRU clock (atomic), and
//   - the lazily armed split-counter state (locks.split + splitArmed).
//
// A System built by New has nShards == 1 (fully unsharded); the
// single-threaded behavior, scan orders, and therefore every byte of
// ciphertext are identical to the pre-sharding implementation.
// NewConcurrent calls configureSharding before any page is resident.

// DefaultShards is the shard count NewConcurrent selects when the Config
// does not name one. Eight covers typical GOMAXPROCS parallelism without
// fragmenting small device tiers.
const DefaultShards = 8

// maxShards bounds the shard count so multi-shard lock acquisition can
// track the held set in one machine word.
const maxShards = 64

// sysLocks groups the System-internal mutexes that guard cross-shard
// state. It carries no data of its own; the state each mutex guards is
// documented on the System fields.
type sysLocks struct {
	// hw serialises the shared "hardware" models: the fault injector,
	// the link model, and the sim clock they advance.
	hw sync.Mutex
	// wbQueueMu guards the dirty-writeback queue slice. It is held only
	// inside the wbq* helpers — never across a home-tier call — so a
	// drain in one shard cannot deadlock or stall accesses in another.
	wbQueueMu sync.Mutex
	// split guards the lazy allocation of the split-counter state
	// (ensureSplitState); splitArmed publishes the result.
	split sync.Mutex
}

// configureSharding partitions the system into n shards. It must run
// before any page becomes resident (NewConcurrent calls it right after
// New). Non-positive n selects DefaultShards; the count is clamped so
// every shard owns at least one device frame and at most maxShards locks
// are ever needed.
func (s *System) configureSharding(n int) {
	if n <= 0 {
		n = DefaultShards
	}
	if n > s.cfg.DevicePages {
		n = s.cfg.DevicePages
	}
	if n > s.cfg.TotalPages {
		n = s.cfg.TotalPages
	}
	if n > maxShards {
		n = maxShards
	}
	if n < 1 {
		n = 1
	}
	s.nShards = n
}

// Shards returns the page-partition count (1 when unsharded).
func (s *System) Shards() int { return s.nShards }

// pageShard returns the shard owning home page p.
func (s *System) pageShard(p int) int { return p % s.nShards }

// Atomic helpers for the OpStats counters. OpStats keeps plain uint64
// fields (the by-value copy Stats returns must stay copyable), so all
// writers funnel through these.

// bump atomically increments a stats counter.
func bump(p *uint64) { atomic.AddUint64(p, 1) }

// bumpN atomically adds n to a stats counter.
func bumpN(p *uint64, n uint64) { atomic.AddUint64(p, n) }

// peakMax atomically raises a high-water mark to v.
func peakMax(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if v <= cur || atomic.CompareAndSwapUint64(p, cur, v) {
			return
		}
	}
}
