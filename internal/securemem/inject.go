package securemem

import "github.com/salus-sim/salus/internal/security/counters"

// Attack-injection surface. These methods model an attacker with physical
// access to the untrusted memories: they mutate stored state directly,
// bypassing the trusted access path, so tests and examples can demonstrate
// that the protection models detect snooping-resistance, spoofing,
// splicing, and replay.

// RawHomeBytes returns a copy of the stored home-tier bytes at addr
// (ciphertext under the secure models). An attacker snooping the bus sees
// exactly this.
func (s *System) RawHomeBytes(addr HomeAddr, n int) []byte {
	if n < 0 || uint64(addr) > s.Size() || uint64(n) > s.Size()-uint64(addr) {
		return nil
	}
	out := make([]byte, n)
	copy(out, s.cxlData[addr:addr+HomeAddr(n)])
	return out
}

// CorruptHome flips a bit of the stored home-tier data (spoofing attack on
// the expansion memory) and reports whether addr was in range. A
// subsequent read of a non-resident page detects the flip via MAC
// verification.
func (s *System) CorruptHome(addr HomeAddr) bool {
	if uint64(addr) >= s.Size() {
		return false
	}
	s.cxlData[addr] ^= 0x01
	return true
}

// CorruptDevice flips a bit of the device-tier frame backing addr's page,
// if resident (spoofing attack on the device memory).
func (s *System) CorruptDevice(addr HomeAddr) bool {
	page := addr.Page(s.geo.PageSize)
	if uint64(addr) >= s.Size() || s.pageTable[page] < 0 {
		return false
	}
	fi := s.pageTable[page]
	off := FrameAddr(fi, s.geo.PageSize, addr.PageOffset(s.geo.PageSize))
	s.devData[off] ^= 0x01
	return true
}

// SpliceHome overwrites the stored bytes of dst's sector with those of
// src's sector (splicing attack: relocating valid ciphertext). Detected
// because the MAC binds the home address.
func (s *System) SpliceHome(dst, src HomeAddr) {
	ss := uint64(s.geo.SectorSize)
	d := uint64(dst) / ss * ss
	c := uint64(src) / ss * ss
	if d+ss > s.Size() || c+ss > s.Size() {
		return
	}
	copy(s.cxlData[d:d+ss], s.cxlData[c:c+ss])
}

// SpliceDevice overwrites the device-tier bytes backing dst's sector with
// the device-tier bytes backing src's sector (splicing attack relocating
// valid ciphertext inside the device memory). It reports whether the copy
// happened: both pages must be device-resident and in range. The secure
// models detect the splice because the MAC binds the address — the home
// address under Salus, the device address under the conventional model.
func (s *System) SpliceDevice(dst, src HomeAddr) bool {
	ss := uint64(s.geo.SectorSize)
	d := uint64(dst) / ss * ss
	c := uint64(src) / ss * ss
	if d+ss > s.Size() || c+ss > s.Size() {
		return false
	}
	dfi := s.pageTable[HomeAddr(d).Page(s.geo.PageSize)]
	sfi := s.pageTable[HomeAddr(c).Page(s.geo.PageSize)]
	if dfi < 0 || sfi < 0 {
		return false
	}
	dOff := FrameAddr(dfi, s.geo.PageSize, HomeAddr(d).PageOffset(s.geo.PageSize))
	sOff := FrameAddr(sfi, s.geo.PageSize, HomeAddr(c).PageOffset(s.geo.PageSize))
	copy(s.devData[dOff:dOff+DevAddr(ss)], s.devData[sOff:sOff+DevAddr(ss)])
	return true
}

// ChunkSnapshot captures everything an attacker would record to later
// replay a home-tier chunk: ciphertext, MAC sectors, and the collapsed
// counter state.
type ChunkSnapshot struct {
	homeChunk int
	data      []byte
	macs      []maclibSector
	collapsed counters.CollapsedSector
	convCtrs  counters.ConventionalSector
	convMACs  []uint64
}

type maclibSector struct {
	macs  [4]uint64
	major uint32
}

// SnapshotHomeChunk records the full untrusted state of the chunk holding
// addr, for a later replay attempt.
func (s *System) SnapshotHomeChunk(addr HomeAddr) ChunkSnapshot {
	cs := s.geo.ChunkSize
	chunk := addr.Chunk(cs)
	snap := ChunkSnapshot{homeChunk: chunk}
	snap.data = append(snap.data, s.cxlData[chunk*cs:(chunk+1)*cs]...)
	switch s.cfg.Model {
	case ModelSalus:
		for b := 0; b < s.geo.BlocksPerChunk(); b++ {
			idx := chunk*s.geo.BlocksPerChunk() + b
			snap.macs = append(snap.macs, maclibSector{macs: s.macSectors[idx].MACs, major: s.macSectors[idx].Major})
		}
		snap.collapsed = s.collapsed[chunk/counters.CollapsedMajors]
	case ModelConventional:
		firstSec := chunk * s.geo.SectorsPerChunk()
		snap.convCtrs = s.convCXLCtrs[firstSec/counters.ConvMinors]
		for k := 0; k < s.geo.SectorsPerChunk(); k++ {
			snap.convMACs = append(snap.convMACs, s.convCXLMACs[firstSec+k])
		}
	}
	return snap
}

// ReplayHomeChunk restores a previously captured chunk snapshot into the
// untrusted stores WITHOUT updating the integrity trees — exactly what a
// physical replay attack can and cannot touch. The trees live in (or are
// rooted in) the TCB, so a later read fails freshness verification.
func (s *System) ReplayHomeChunk(snap ChunkSnapshot) {
	cs := s.geo.ChunkSize
	chunk := snap.homeChunk
	copy(s.cxlData[chunk*cs:(chunk+1)*cs], snap.data)
	switch s.cfg.Model {
	case ModelSalus:
		for b, m := range snap.macs {
			idx := chunk*s.geo.BlocksPerChunk() + b
			s.macSectors[idx].MACs = m.macs
			s.macSectors[idx].Major = m.major
		}
		s.collapsed[chunk/counters.CollapsedMajors] = snap.collapsed
	case ModelConventional:
		firstSec := chunk * s.geo.SectorsPerChunk()
		s.convCXLCtrs[firstSec/counters.ConvMinors] = snap.convCtrs
		for k, m := range snap.convMACs {
			s.convCXLMACs[firstSec+k] = m
		}
	}
}
