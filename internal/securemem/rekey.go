package securemem

import (
	"errors"

	"github.com/salus-sim/salus/internal/security/bmt"
	"github.com/salus-sim/salus/internal/security/counters"
	"github.com/salus-sim/salus/internal/security/cryptoeng"
	"github.com/salus-sim/salus/internal/security/maclib"
)

// ReKey rotates the encryption and MAC keys: every sector is decrypted
// under the old keys and re-encrypted under the new ones, all counters
// reset to zero (safe, because the fresh key makes the OTP space new), and
// the integrity trees are rebuilt. This is the standard response to
// key-lifetime policy or impending global counter exhaustion.
//
// The device tier is flushed first, so after ReKey the home tier is the
// single source of truth under the new keys. The operation is atomic from
// the caller's perspective: on any error the system is left unchanged.
func (s *System) ReKey(newAESKey, newMACKey []byte) error {
	if s.cfg.Model == ModelNone {
		return errors.New("securemem: ReKey requires an encrypted model")
	}
	newEng, err := cryptoeng.New(newAESKey, newMACKey, maclib.MACBits)
	if err != nil {
		return err
	}
	if err := s.Flush(); err != nil {
		return err
	}

	// Decrypt the whole home store under the current keys and counters.
	ss := s.geo.SectorSize
	nSectors := len(s.cxlData) / ss
	plain := make([]byte, len(s.cxlData))
	for sec := 0; sec < nSectors; sec++ {
		addr := HomeAddr(sec * ss)
		major, minor, err := s.currentHomePair(addr)
		if err != nil {
			return err
		}
		ct := s.cxlData[sec*ss : (sec+1)*ss]
		bump(&s.stats.MACVerifies)
		if !s.eng.VerifyMAC(ct, uint64(addr), major, minor, s.homeMAC(addr)) {
			return ErrIntegrity
		}
		if err := s.eng.DecryptSector(plain[sec*ss:(sec+1)*ss], ct, uint64(addr), major, minor); err != nil {
			return err
		}
	}

	// Swap keys, reset all counter state, and re-encrypt under zero
	// counters with fresh MACs and trees.
	s.eng = newEng
	switch s.cfg.Model {
	case ModelSalus:
		for i := range s.collapsed {
			s.collapsed[i] = counters.CollapsedSector{}
		}
		if s.cxlSplit != nil {
			for i := range s.cxlSplit {
				s.cxlSplit[i] = counters.CXLSplitSector{}
				s.splitDirty[i] = false
			}
			s.splitTree, err = bmt.New(s.eng, len(s.cxlSplit))
			if err != nil {
				return err
			}
		}
		s.cxlTree, err = bmt.New(s.eng, len(s.collapsed))
		if err != nil {
			return err
		}
		devChunks := s.cfg.DevicePages * s.geo.ChunksPerPage()
		for i := range s.devGroups {
			s.devGroups[i] = counters.IFGroup{}
		}
		s.devTree, err = bmt.New(s.eng, (devChunks+counters.GroupsPerSector-1)/counters.GroupsPerSector)
		if err != nil {
			return err
		}
	case ModelConventional:
		for i := range s.convCXLCtrs {
			s.convCXLCtrs[i] = counters.ConventionalSector{}
		}
		for i := range s.convDevCtrs {
			s.convDevCtrs[i] = counters.ConventionalSector{}
		}
		s.convCXLTree, err = bmt.New(s.eng, len(s.convCXLCtrs))
		if err != nil {
			return err
		}
		s.convDevTree, err = bmt.New(s.eng, len(s.convDevCtrs))
		if err != nil {
			return err
		}
	}
	buf := make([]byte, ss)
	for sec := 0; sec < nSectors; sec++ {
		addr := HomeAddr(sec * ss)
		major, minor := s.homeCounterPair(addr) // zero after the reset
		ct := s.cxlData[sec*ss : (sec+1)*ss]
		if err := s.eng.EncryptSector(buf, plain[sec*ss:(sec+1)*ss], uint64(addr), major, minor); err != nil {
			return err
		}
		copy(ct, buf)
		mac, err := s.eng.MAC(ct, uint64(addr), major, minor)
		if err != nil {
			return err
		}
		if err := s.storeHomeMAC(addr, mac); err != nil {
			return err
		}
	}
	bumpN(&s.stats.OverflowReEncryptions, uint64(nSectors))
	bump(&s.stats.KeyRotations)
	return s.rebuildHomeTrees()
}

// currentHomePair is homeCounterPair plus split-state awareness, used by
// the re-key sweep where split chunks may still hold non-zero minors.
func (s *System) currentHomePair(addr HomeAddr) (major, minor uint64, err error) {
	if s.cfg.Model == ModelSalus && s.cxlSplit != nil {
		return s.splitPair(addr)
	}
	major, minor = s.homeCounterPair(addr)
	return major, minor, nil
}
