package securemem

import (
	"bytes"
	"errors"
	"testing"

	"github.com/salus-sim/salus/internal/config"
)

func testGeometry() config.Geometry {
	return config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
}

// TestBackingSizeMismatchTyped pins the typed rejection of a backing
// whose windows disagree with the configuration.
func TestBackingSizeMismatchTyped(t *testing.T) {
	geo := testGeometry()
	cfg := Config{Geometry: geo, Model: ModelSalus, TotalPages: 4, DevicePages: 2}
	cfg.Backing = &Backing{Home: make([]byte, 3*geo.PageSize), Device: make([]byte, 2*geo.PageSize)}
	if _, err := New(cfg); !errors.Is(err, ErrBacking) {
		t.Fatalf("short home backing: got %v, want ErrBacking", err)
	}
	cfg.Backing = &Backing{Home: make([]byte, 4*geo.PageSize), Device: make([]byte, geo.PageSize)}
	if _, err := New(cfg); !errors.Is(err, ErrBacking) {
		t.Fatalf("short device backing: got %v, want ErrBacking", err)
	}
}

// TestBackingZeroedOnNew proves a reused (stale) backing cannot leak its
// previous contents into a fresh engine: New zeroes both tiers, so the
// first read of every byte is zero.
func TestBackingZeroedOnNew(t *testing.T) {
	geo := testGeometry()
	b := NewBacking(geo, 4, 2)
	for i := range b.Home {
		b.Home[i] = 0xA5
	}
	for i := range b.Device {
		b.Device[i] = 0x5A
	}
	sys, err := New(Config{Geometry: geo, Model: ModelSalus, TotalPages: 4, DevicePages: 2, Backing: b})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := sys.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatalf("fresh engine over stale backing read %x, want zeros", buf)
	}
}

// TestSharedBackingDisjointWindows builds two engines over disjoint
// windows of one backing and proves complete isolation: each engine's
// plaintext round-trips, neither observes the other's writes, and both
// stay differentially equal to an engine with private storage.
func TestSharedBackingDisjointWindows(t *testing.T) {
	geo := testGeometry()
	const pages, frames = 4, 2
	shared := NewBacking(geo, 2*pages, 2*frames)
	mk := func(win *Backing) *System {
		sys, err := New(Config{Geometry: geo, Model: ModelSalus, TotalPages: pages, DevicePages: frames, Backing: win})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := mk(shared.Window(geo, 0, pages, 0, frames))
	b := mk(shared.Window(geo, pages, pages, frames, frames))
	private := func() *System {
		sys, err := New(Config{Geometry: geo, Model: ModelSalus, TotalPages: pages, DevicePages: frames})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}()

	msgA := []byte("tenant A secret payload bytes!!!")
	msgB := []byte("tenant B different payload here!")
	if err := a.Write(128, msgA); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(128, msgB); err != nil {
		t.Fatal(err)
	}
	if err := private.Write(128, msgA); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(msgA))
	if err := a.Read(128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgA) {
		t.Fatalf("engine A read %q, want %q", got, msgA)
	}
	if err := b.Read(128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgB) {
		t.Fatalf("engine B read %q, want %q", got, msgB)
	}
	if err := private.Read(128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgA) {
		t.Fatalf("private engine read %q, want %q", got, msgA)
	}

	// The shared home tier holds only ciphertext: neither plaintext may
	// appear anywhere in the raw pool bytes.
	if bytes.Contains(shared.Home, msgA) || bytes.Contains(shared.Home, msgB) {
		t.Fatal("plaintext visible in the shared home backing")
	}
}
