package securemem

import (
	"errors"
	"fmt"

	"github.com/salus-sim/salus/internal/security/bmt"
	"github.com/salus-sim/salus/internal/security/counters"
)

// Direct CXL access path (Salus model only). Streaming stores that would
// pollute the device page cache can bypass it and update CXL-resident data
// in place. This is the case the Fig. 6 counter layout exists for: the
// CXL side keeps a split design with doubled (16-bit) minors per chunk so
// that in-place writes do not immediately overflow into major increments,
// each of which would force a chunk re-encryption sweep.
//
// A chunk with any non-zero CXL-side minor is in "split" state; its
// sectors were encrypted with (major, minor) pairs from the CXLSplitSector
// rather than (collapsedMajor, 0). When such a chunk later migrates to the
// device tier (or a checkpoint is requested), it is collapsed first so the
// invariant "resident-in-CXL data whose chunk is not split is encrypted
// under (collapsedMajor, 0)" holds again.

// ensureSplitState lazily allocates the CXL split-sector array and the
// tree that keeps the split counter blocks fresh (the paper's CXL BMT is
// built over exactly these counter blocks). Shards race to arm it, so the
// allocation is double-checked: splitArmed is only published after every
// structure is fully built, and concurrent readers consult splitArmed
// (never the slice headers) before touching split state.
func (s *System) ensureSplitState() error {
	if s.splitArmed.Load() {
		return nil
	}
	s.locks.split.Lock()
	defer s.locks.split.Unlock()
	if s.splitArmed.Load() {
		return nil
	}
	homeChunks := s.cfg.TotalPages * s.geo.ChunksPerPage()
	cxlSplit := make([]counters.CXLSplitSector, homeChunks)
	splitDirty := make([]bool, homeChunks)
	splitTree, err := bmt.New(s.eng, homeChunks)
	if err != nil {
		return err
	}
	splitTree.SetTrustCache(4096)
	s.cxlSplit = cxlSplit
	s.splitDirty = splitDirty
	s.splitTree = splitTree
	s.splitArmed.Store(true)
	return nil
}

// splitPair returns the effective (major, minor) for a CXL-resident
// sector, freshness-verifying the split counter block when the chunk is in
// split state.
func (s *System) splitPair(homeAddr HomeAddr) (major, minor uint64, err error) {
	chunk := homeAddr.Chunk(s.geo.ChunkSize)
	if s.splitArmed.Load() && s.splitDirty[chunk] {
		bump(&s.stats.BMTVerifies)
		if err := s.splitTree.VerifyCached(chunk, s.cxlSplit[chunk].Encode()); err != nil {
			return 0, 0, fmt.Errorf("%w: %v", ErrFreshness, err)
		}
		sic := (int(homeAddr) % s.geo.ChunkSize) / s.geo.SectorSize
		major, minor = s.cxlSplit[chunk].Pair(sic)
		return major, minor, nil
	}
	major, minor = s.homeCounterPair(homeAddr)
	return major, minor, nil
}

// WriteThrough writes data directly into the CXL tier without migrating
// the page, using the Fig. 6 doubled-minor split counters. It is only
// available under ModelSalus and only for pages not currently resident in
// the device tier (a resident page must be written through the cache to
// keep a single point of truth).
func (s *System) WriteThrough(addr HomeAddr, data []byte) error {
	if s.cfg.Model != ModelSalus {
		return fmt.Errorf("securemem: WriteThrough requires ModelSalus, have %v", s.cfg.Model)
	}
	if uint64(addr) > s.Size() || uint64(len(data)) > s.Size()-uint64(addr) {
		return ErrOutOfRange
	}
	if s.IsResident(addr) || (len(data) > 0 && s.IsResident(addr+HomeAddr(len(data))-1)) {
		return fmt.Errorf("securemem: WriteThrough to device-resident page %d", addr.Page(s.geo.PageSize))
	}
	if err := s.ensureSplitState(); err != nil {
		return err
	}
	bump(&s.stats.Writes)
	ss := uint64(s.geo.SectorSize)
	base := uint64(addr)
	for off := uint64(0); off < uint64(len(data)); {
		secBase := (base + off) / ss * ss
		inSec := base + off - secBase
		n := ss - inSec
		if rem := uint64(len(data)) - off; n > rem {
			n = rem
		}
		var sector [32]byte
		if inSec != 0 || n != ss {
			if err := s.directReadSector(HomeAddr(secBase), sector[:]); err != nil {
				return err
			}
		}
		copy(sector[inSec:inSec+n], data[off:off+n])
		if err := s.directWriteSector(HomeAddr(secBase), sector[:]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// ReadThrough reads directly from the CXL tier without migrating the page
// (ModelSalus only, non-resident pages only).
func (s *System) ReadThrough(addr HomeAddr, buf []byte) error {
	if s.cfg.Model != ModelSalus {
		return fmt.Errorf("securemem: ReadThrough requires ModelSalus, have %v", s.cfg.Model)
	}
	if uint64(addr) > s.Size() || uint64(len(buf)) > s.Size()-uint64(addr) {
		return ErrOutOfRange
	}
	if s.IsResident(addr) || (len(buf) > 0 && s.IsResident(addr+HomeAddr(len(buf))-1)) {
		return fmt.Errorf("securemem: ReadThrough of device-resident page %d", addr.Page(s.geo.PageSize))
	}
	bump(&s.stats.Reads)
	ss := uint64(s.geo.SectorSize)
	base := uint64(addr)
	for off := uint64(0); off < uint64(len(buf)); {
		secBase := (base + off) / ss * ss
		inSec := base + off - secBase
		n := ss - inSec
		if rem := uint64(len(buf)) - off; n > rem {
			n = rem
		}
		var sector [32]byte
		if err := s.directReadSector(HomeAddr(secBase), sector[:]); err != nil {
			return err
		}
		copy(buf[off:off+n], sector[inSec:inSec+n])
		off += n
	}
	return nil
}

// directReadSector decrypts and verifies one CXL-resident sector in place.
func (s *System) directReadSector(homeAddr HomeAddr, out []byte) error {
	if err := s.gateHome(homeAddr, false); err != nil {
		return err
	}
	major, minor, err := s.splitPair(homeAddr)
	if err != nil {
		return err
	}
	ct := s.cxlData[homeAddr : homeAddr+32]
	bump(&s.stats.MACVerifies)
	if !s.eng.VerifyMAC(ct, uint64(homeAddr), major, minor, s.homeMAC(homeAddr)) {
		return fmt.Errorf("%w: home address %#x", ErrIntegrity, uint64(homeAddr))
	}
	return s.eng.DecryptSector(out, ct, uint64(homeAddr), major, minor)
}

// directWriteSector encrypts one sector in the CXL tier under a bumped
// doubled-width minor counter.
func (s *System) directWriteSector(homeAddr HomeAddr, in []byte) error {
	if err := s.gateHome(homeAddr, true); err != nil {
		return err
	}
	chunk := homeAddr.Chunk(s.geo.ChunkSize)
	sic := (int(homeAddr) % s.geo.ChunkSize) / s.geo.SectorSize
	sp := &s.cxlSplit[chunk]
	if !s.splitDirty[chunk] {
		// Entering split state: seed the split major from the collapsed
		// major so already-encrypted sectors of the chunk stay decryptable
		// (their minors are zero, matching the fresh split minors).
		major, err := s.salusHomeMajor(chunk)
		if err != nil {
			return err
		}
		sp.Major = major
		sp.Minors = [counters.IFMinors]uint16{}
		s.splitDirty[chunk] = true
	}
	old := *sp
	if sp.Inc(sic) {
		// 16-bit minor overflow: re-encrypt the whole chunk under the
		// incremented major. The doubled minors make this 256× rarer than
		// it would be with 8-bit minors.
		if err := s.directReencryptChunk(uint64(chunk), &old, sp, sic, in); err != nil {
			return err
		}
	} else {
		major, minor := sp.Pair(sic)
		ct := s.cxlData[homeAddr : homeAddr+32]
		if err := s.eng.EncryptSector(ct, in, uint64(homeAddr), major, minor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(ct, uint64(homeAddr), major, minor)
		if err != nil {
			return err
		}
		if err := s.storeHomeMAC(homeAddr, mac); err != nil {
			return err
		}
	}
	// Refresh both freshness structures: the split tree covers the full
	// split counter block (majors and minors), and the collapsed store is
	// kept in sync so migration sees the current major.
	bump(&s.stats.BMTUpdates)
	if err := s.splitTree.Update(chunk, sp.Encode()); err != nil {
		return err
	}
	return s.salusSetHomeMajor(chunk, sp.Major)
}

// directReencryptChunk re-encrypts a CXL-resident chunk after a split
// minor overflow.
func (s *System) directReencryptChunk(chunk uint64, old, cur *counters.CXLSplitSector, writeSic int, writeData []byte) error {
	cs := uint64(s.geo.ChunkSize)
	ss := uint64(s.geo.SectorSize)
	base := chunk * cs
	pt := make([]byte, ss)
	for i := 0; i < s.geo.SectorsPerChunk(); i++ {
		ha := base + uint64(i)*ss
		ct := s.cxlData[ha : ha+ss]
		if i == writeSic {
			copy(pt, writeData)
		} else {
			oldMajor, oldMinor := old.Pair(i)
			if err := s.eng.DecryptSector(pt, ct, ha, oldMajor, oldMinor); err != nil {
				return err
			}
		}
		newMajor, newMinor := cur.Pair(i)
		if err := s.eng.EncryptSector(ct, pt, ha, newMajor, newMinor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(ct, ha, newMajor, newMinor)
		if err != nil {
			return err
		}
		if err := s.storeHomeMAC(HomeAddr(ha), mac); err != nil {
			return err
		}
		bump(&s.stats.OverflowReEncryptions)
	}
	return nil
}

// CheckpointChunk collapses a split CXL chunk back to the compact
// representation: if any minor is non-zero the major increments, every
// sector re-encrypts under (major, 0), and the chunk leaves split state.
// Migrating a split chunk's page to the device tier performs this
// implicitly.
func (s *System) CheckpointChunk(addr HomeAddr) error {
	if s.cfg.Model != ModelSalus {
		return fmt.Errorf("securemem: CheckpointChunk requires ModelSalus")
	}
	if uint64(addr) >= s.Size() {
		return ErrOutOfRange
	}
	chunk := addr.Chunk(s.geo.ChunkSize)
	if s.poisoned[chunk] {
		// A quarantined chunk has no data left to protect; treating the
		// checkpoint as done lets its page still migrate for the sake of
		// the healthy chunks.
		return nil
	}
	if !s.splitArmed.Load() || !s.splitDirty[chunk] {
		return nil
	}
	// The collapse below is a read-modify-write of the whole chunk in the
	// home tier; gate it before any counter state moves. If the chunk dies
	// here it is quarantined and the checkpoint becomes moot.
	if err := s.gateHome(HomeAddr(chunk*s.geo.ChunkSize), true); err != nil {
		if errors.Is(err, ErrPoison) {
			return nil
		}
		return err
	}
	sp := &s.cxlSplit[chunk]
	old := *sp
	newMajor, reenc := sp.Collapse()
	if reenc {
		cs := uint64(s.geo.ChunkSize)
		ss := uint64(s.geo.SectorSize)
		base := uint64(chunk) * cs
		pt := make([]byte, ss)
		for i := 0; i < s.geo.SectorsPerChunk(); i++ {
			ha := base + uint64(i)*ss
			ct := s.cxlData[ha : ha+ss]
			oldMajor, oldMinor := old.Pair(i)
			if err := s.eng.DecryptSector(pt, ct, ha, oldMajor, oldMinor); err != nil {
				return err
			}
			if err := s.eng.EncryptSector(ct, pt, ha, uint64(newMajor), 0); err != nil {
				return err
			}
			mac, err := s.eng.MAC(ct, ha, uint64(newMajor), 0)
			if err != nil {
				return err
			}
			if err := s.storeHomeMAC(HomeAddr(ha), mac); err != nil {
				return err
			}
			bump(&s.stats.CollapseReEncryptions)
		}
	}
	s.splitDirty[chunk] = false
	bump(&s.stats.BMTUpdates)
	if err := s.splitTree.Update(chunk, sp.Encode()); err != nil {
		return err
	}
	return s.salusSetHomeMajor(chunk, newMajor)
}

// checkpointPage collapses every split chunk of a page; called before the
// page migrates into the device tier.
func (s *System) checkpointPage(page int) error {
	if !s.splitArmed.Load() {
		return nil
	}
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		addr := HomeAddr(page*s.geo.PageSize + c*s.geo.ChunkSize)
		if err := s.CheckpointChunk(addr); err != nil {
			return err
		}
	}
	return nil
}
