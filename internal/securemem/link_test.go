package securemem

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/salus-sim/salus/internal/link"
)

func pageData(page, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(page*31 + i)
	}
	return buf
}

// TestOutageParksEvictionsAndServesResident drives the core degraded-mode
// policy: during an outage, dirty evictions park on the writeback queue,
// parked pages keep serving reads and writes from device memory, misses
// fail fast typed, and a miss after recovery drains exactly the queue
// head — FIFO per page — to free its frame.
func TestOutageParksEvictionsAndServesResident(t *testing.T) {
	sys, err := New(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  6,
		DevicePages: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.Config{Threshold: 1, Cooldown: 1})
	sys.AttachLink(lnk, nil, 4)

	// Fill the device tier with three dirty pages.
	for p := 0; p < 3; p++ {
		if err := sys.Write(HomeAddr(p*4096), pageData(p, 64)); err != nil {
			t.Fatal(err)
		}
	}
	manual.Set(link.StateDown)

	// Flush cannot reach home: every dirty frame parks, none evicts.
	if err := sys.Flush(); err != nil {
		t.Fatalf("Flush during outage: %v", err)
	}
	if got := sys.QueuedWritebacks(); got != 3 {
		t.Fatalf("QueuedWritebacks = %d, want 3", got)
	}
	for p := 0; p < 3; p++ {
		if !sys.IsResident(HomeAddr(p * 4096)) {
			t.Fatalf("page %d no longer resident after parked flush", p)
		}
	}

	// Device hits keep serving, including writes to parked pages.
	got := make([]byte, 64)
	if err := sys.Read(HomeAddr(0), got); err != nil {
		t.Fatalf("resident read during outage: %v", err)
	}
	if !bytes.Equal(got, pageData(0, 64)) {
		t.Fatalf("resident read returned wrong bytes during outage")
	}
	if err := sys.Write(HomeAddr(4096), pageData(1, 64)); err != nil {
		t.Fatalf("resident write during outage: %v", err)
	}

	// Misses fail fast and typed — no retry/backoff spin.
	err = sys.Read(HomeAddr(3*4096), got)
	if !errors.Is(err, ErrLinkDown) && !errors.Is(err, ErrDegraded) {
		t.Fatalf("miss during outage: got %v, want ErrLinkDown/ErrDegraded", err)
	}
	st := sys.Stats()
	if st.Retries != 0 || st.RetryBackoffCycles != 0 {
		t.Fatalf("outage consumed the transient retry budget: %+v", st)
	}
	if st.LinkDownRefusals == 0 || st.BreakerOpens == 0 {
		t.Fatalf("outage not visible in stats: %+v", st)
	}

	// Recovery: a miss drains exactly the queue head to free a frame.
	manual.Set(link.StateUp)
	for tries := 0; ; tries++ {
		// The first attempt may still fast-fail while the breaker cools.
		err = sys.Read(HomeAddr(3*4096), got)
		if err == nil {
			break
		}
		if tries > 2 || !errors.Is(err, ErrDegraded) {
			t.Fatalf("post-recovery miss: %v", err)
		}
	}
	if sys.IsResident(HomeAddr(0)) {
		t.Fatal("queue head (page 0) was not drained first")
	}
	if !sys.IsResident(HomeAddr(4096)) || !sys.IsResident(HomeAddr(2*4096)) {
		t.Fatal("drain-on-miss drained more than the head")
	}
	if got := sys.QueuedWritebacks(); got != 2 {
		t.Fatalf("QueuedWritebacks = %d after head drain, want 2", got)
	}

	// The reconciler drains the remainder, FIFO, exactly once each.
	n, err := sys.DrainWritebacks()
	if err != nil {
		t.Fatalf("DrainWritebacks: %v", err)
	}
	if n != 2 || sys.QueuedWritebacks() != 0 {
		t.Fatalf("drained %d (queue %d), want 2 (0)", n, sys.QueuedWritebacks())
	}
	st = sys.Stats()
	if st.WritebacksQueued != 3 || st.WritebacksDrained != 3 || st.WritebackQueuePeak != 3 {
		t.Fatalf("queue accounting: %+v", st)
	}

	// Every byte survived the outage.
	for p := 0; p < 3; p++ {
		if err := sys.Read(HomeAddr(p*4096), got); err != nil {
			t.Fatalf("post-drain read of page %d: %v", p, err)
		}
		if !bytes.Equal(got, pageData(p, 64)) {
			t.Fatalf("page %d bytes diverged across the outage", p)
		}
	}
}

// TestDrainFIFOIdempotentUnderMidDrainFlap parks three writebacks, lets
// the link come back for exactly one drain, flaps it again, and checks
// that the interrupted drain resumes at the head with nothing drained
// twice: N parked writebacks produce exactly N drains, in page order.
func TestDrainFIFOIdempotentUnderMidDrainFlap(t *testing.T) {
	sys, err := New(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  6,
		DevicePages: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := sys.Write(HomeAddr(p*4096), pageData(p, 32)); err != nil {
			t.Fatal(err)
		}
	}
	// Ordinals: 0,1,2 park the three flush evictions; 3 drains the head;
	// 4 refuses the second drain; 5+ let the rest through. Threshold 10
	// keeps the breaker out of the schedule.
	plan, err := link.ParsePlan("down@0..3,down@4..5")
	if err != nil {
		t.Fatal(err)
	}
	sys.AttachLink(link.New(plan, link.Config{Threshold: 10, Cooldown: 1}), nil, 4)

	if err := sys.Flush(); err != nil {
		t.Fatalf("Flush during outage: %v", err)
	}
	if got := sys.QueuedWritebacks(); got != 3 {
		t.Fatalf("QueuedWritebacks = %d, want 3", got)
	}

	// First drain: head goes home, then the link flaps mid-drain.
	n, err := sys.DrainWritebacks()
	if n != 1 || !errors.Is(err, ErrLinkDown) {
		t.Fatalf("interrupted drain = (%d, %v), want (1, ErrLinkDown)", n, err)
	}
	if sys.IsResident(HomeAddr(0)) {
		t.Fatal("head (page 0) not drained first")
	}
	if !sys.IsResident(HomeAddr(4096)) || !sys.IsResident(HomeAddr(2*4096)) {
		t.Fatal("non-head pages drained out of order")
	}
	if got := sys.QueuedWritebacks(); got != 2 {
		t.Fatalf("QueuedWritebacks = %d after interruption, want 2", got)
	}
	// The interrupted page kept its queue position and was not re-queued.
	if st := sys.Stats(); st.WritebacksQueued != 3 {
		t.Fatalf("WritebacksQueued = %d after mid-drain flap, want 3 (no re-queue)", st.WritebacksQueued)
	}

	// Second drain resumes at the head and finishes: exactly N drains total.
	n, err = sys.DrainWritebacks()
	if n != 2 || err != nil {
		t.Fatalf("resumed drain = (%d, %v), want (2, nil)", n, err)
	}
	st := sys.Stats()
	if st.WritebacksQueued != 3 || st.WritebacksDrained != 3 || st.WritebacksDropped != 0 {
		t.Fatalf("queue accounting after resume: %+v", st)
	}
	buf := make([]byte, 32)
	for p := 0; p < 3; p++ {
		if err := sys.Read(HomeAddr(p*4096), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pageData(p, 32)) {
			t.Fatalf("page %d bytes diverged", p)
		}
	}
}

// TestQueueFullBackpressure checks the bounded queue pushes back with
// ErrQueueFull instead of growing without limit or blocking.
func TestQueueFullBackpressure(t *testing.T) {
	sys, err := New(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  8,
		DevicePages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.DefaultConfig())
	sys.AttachLink(lnk, nil, 2)
	for p := 0; p < 4; p++ {
		if err := sys.Write(HomeAddr(p*4096), pageData(p, 32)); err != nil {
			t.Fatal(err)
		}
	}
	manual.Set(link.StateDown)
	err = sys.Flush()
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Flush with full queue: got %v, want ErrQueueFull", err)
	}
	st := sys.Stats()
	if sys.QueuedWritebacks() != 2 || st.WritebacksDropped == 0 {
		t.Fatalf("queue = %d, dropped = %d; want 2 parked and drops counted",
			sys.QueuedWritebacks(), st.WritebacksDropped)
	}
	// Recovery still drains the parked two and the rest flush normally.
	manual.Set(link.StateUp)
	lnk.ForceUp()
	if n, err := sys.DrainWritebacks(); n != 2 || err != nil {
		t.Fatalf("drain after backpressure = (%d, %v), want (2, nil)", n, err)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for p := 0; p < 4; p++ {
		if err := sys.Read(HomeAddr(p*4096), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pageData(p, 32)) {
			t.Fatalf("page %d bytes diverged", p)
		}
	}
}

// TestSuspendRefusesParkedWritebacks: a suspend image must not be cut
// while parked writebacks hold newer data than the home tier.
func TestSuspendRefusesParkedWritebacks(t *testing.T) {
	sys, err := New(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  4,
		DevicePages: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.DefaultConfig())
	sys.AttachLink(lnk, nil, 4)
	if err := sys.Write(HomeAddr(0), pageData(0, 32)); err != nil {
		t.Fatal(err)
	}
	manual.Set(link.StateDown)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Suspend(); !errors.Is(err, ErrWritebacksPending) {
		t.Fatalf("Suspend with parked writebacks: got %v, want ErrWritebacksPending", err)
	}
	manual.Set(link.StateUp)
	lnk.ForceUp()
	if n, err := sys.DrainWritebacks(); n != 1 || err != nil {
		t.Fatalf("drain = (%d, %v), want (1, nil)", n, err)
	}
	if _, _, err := sys.Suspend(); err != nil {
		t.Fatalf("Suspend after drain: %v", err)
	}
}

// TestRollbackDuringOutageDetectedOnDrain is the security core of the
// reconciler: home-tier state rolled back while the link was down (and
// the system could not look) must surface as ErrFreshness when the queue
// drains — never be silently blessed by the writeback.
func TestRollbackDuringOutageDetectedOnDrain(t *testing.T) {
	sys, err := New(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  4,
		DevicePages: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.DefaultConfig())
	sys.AttachLink(lnk, nil, 4)

	// Epoch A: write and flush so the home tier holds state A.
	if err := sys.Write(HomeAddr(0), pageData(7, 32)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := sys.SnapshotHomeChunk(HomeAddr(0))

	// Epoch B: advance the home state past the snapshot.
	if err := sys.Write(HomeAddr(0), pageData(8, 32)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}

	// Epoch C stays dirty in the device tier when the link dies.
	if err := sys.Write(HomeAddr(0), pageData(9, 32)); err != nil {
		t.Fatal(err)
	}
	manual.Set(link.StateDown)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if sys.QueuedWritebacks() != 1 {
		t.Fatalf("QueuedWritebacks = %d, want 1", sys.QueuedWritebacks())
	}

	// The attack: roll the home chunk back to state A during the outage.
	sys.ReplayHomeChunk(snap)

	manual.Set(link.StateUp)
	lnk.ForceUp()
	n, err := sys.DrainWritebacks()
	if !errors.Is(err, ErrFreshness) {
		t.Fatalf("drain over rolled-back home tier = (%d, %v), want ErrFreshness", n, err)
	}
	if n != 0 || sys.QueuedWritebacks() != 1 {
		t.Fatalf("rollback drain freed state anyway: n=%d queue=%d", n, sys.QueuedWritebacks())
	}
	// Detection is sticky, not a one-shot: a retry refuses again.
	if _, err := sys.DrainWritebacks(); !errors.Is(err, ErrFreshness) {
		t.Fatalf("second drain after rollback: got %v, want ErrFreshness", err)
	}
}

// TestConcurrentOutageProgress is the race-stress proof for the
// degraded-mode locking: while a scripted outage refuses every home
// transfer, goroutines reading device-resident pages keep making
// progress — the wrapper never holds its lock across a retry/backoff
// spin — and concurrent misses fail fast with typed errors only.
func TestConcurrentOutageProgress(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  12,
		DevicePages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.DefaultConfig())
	// Single-threaded setup phase: arm the link and warm the device tier.
	sys := c.Unwrap()
	sys.AttachLink(lnk, nil, 2)
	for p := 0; p < 4; p++ {
		if err := c.Write(HomeAddr(p*4096), pageData(p, 48)); err != nil {
			t.Fatal(err)
		}
	}
	manual.Set(link.StateDown)

	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	// Device-resident readers: must succeed every time, outage or not.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := pageData(g, 48)
			buf := make([]byte, 48)
			for i := 0; i < iters; i++ {
				if err := c.Read(HomeAddr(g*4096), buf); err != nil {
					fail(fmt.Errorf("resident read g%d i%d: %w", g, i, err))
					return
				}
				if !bytes.Equal(buf, want) {
					fail(fmt.Errorf("resident read g%d i%d: wrong bytes", g, i))
					return
				}
			}
		}(g)
	}
	// Missers: every failure must be typed link degradation, never a hang
	// or an untyped error. (Misses can also park victims and hit queue
	// backpressure, both typed.)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < iters; i++ {
				err := c.Read(HomeAddr((4+(g*4+i)%8)*4096), buf)
				if err == nil {
					continue // a clean victim freed a frame; fine
				}
				if !errors.Is(err, ErrLinkDown) && !errors.Is(err, ErrDegraded) && !errors.Is(err, ErrQueueFull) {
					fail(fmt.Errorf("miss g%d i%d: untyped outage error %w", g, i, err))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Retries != 0 || st.RetryBackoffCycles != 0 {
		t.Fatalf("outage leaked into the retry budget: %+v", st)
	}
	if st.LinkDownRefusals == 0 {
		t.Fatalf("scripted outage never refused a transfer: %+v", st)
	}

	// Recovery: drain through the concurrent reconciler and verify bytes.
	manual.Set(link.StateUp)
	lnk.ForceUp()
	if _, err := c.DrainWritebacks(); err != nil {
		t.Fatalf("concurrent drain: %v", err)
	}
	if c.QueuedWritebacks() != 0 {
		t.Fatalf("queue not empty after drain: %d", c.QueuedWritebacks())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 48)
	for p := 0; p < 4; p++ {
		if err := c.Read(HomeAddr(p*4096), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pageData(p, 48)) {
			t.Fatalf("page %d bytes diverged across concurrent outage", p)
		}
	}
}
