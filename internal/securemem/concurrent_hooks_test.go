package securemem

import (
	"errors"
	"sync"
	"testing"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
)

// alwaysTransient faults every access on every attempt, so any retry
// budget exhausts.
type alwaysTransient struct{}

func (alwaysTransient) Inject(fault.Access) *fault.Fault {
	return &fault.Fault{Kind: fault.Transient}
}

// TestConcurrentFromRecovered pins the service-mode crash path: a System
// rebuilt by Recover can be wrapped for shared use with the full shard
// count (recovery leaves the device tier empty, so re-sharding is legal),
// and the wrapper serves the recovered bytes.
func TestConcurrentFromRecovered(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 4)
	store := crash.NewMemStore()
	j := crash.NewJournal(store)
	if err := s.Write(0, []byte("survives the crash")); err != nil {
		t.Fatal(err)
	}
	root, err := s.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	digest := s.StateDigest()

	r, err := Recover(salusCfg(8, 4), store.Bytes(), root)
	if err != nil {
		t.Fatal(err)
	}
	c := ConcurrentFrom(r, 4)
	if got := c.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	if got := c.StateDigest(); got != digest {
		t.Fatal("wrapped recovered system digest differs from checkpointed state")
	}
	got := make([]byte, 18)
	if err := c.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives the crash" {
		t.Fatalf("read %q after recover+wrap", got)
	}
	// Concurrent use through the wrapper must be race-clean.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := []byte{byte(g)}
			addr := HomeAddr(uint64(g) * 4096)
			for i := 0; i < 20; i++ {
				if err := c.Write(addr, buf); err != nil {
					t.Error(err)
					return
				}
				if err := c.Read(addr, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentFromResident verifies the safety clamp: wrapping a System
// that already has resident pages keeps its existing shard count instead
// of re-threading free lists under live placements.
func TestConcurrentFromResident(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 4)
	if err := s.Write(0, []byte("resident")); err != nil {
		t.Fatal(err)
	}
	c := ConcurrentFrom(s, 4)
	if got := c.Shards(); got != 1 {
		t.Fatalf("Shards() = %d after wrapping a resident system, want 1", got)
	}
	buf := make([]byte, 8)
	if err := c.Read(0, buf); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAttachLinkForceUp exercises the goroutine-safe attach and
// operator-reset hooks: a down link refuses misses typed through the
// wrapper, and ForceLinkUp restores service without touching the plan.
func TestConcurrentAttachLinkForceUp(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry: testGeo(), Model: ModelSalus, TotalPages: 8, DevicePages: 2, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual := link.NewManual()
	c.AttachLink(link.New(manual, link.Config{Threshold: 100, Cooldown: 1}), nil, 4)

	manual.Set(link.StateDown)
	buf := make([]byte, 8)
	// Page 5 is not resident, so the read needs the link and must refuse.
	if err := c.Read(5*4096, buf); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("miss under down link: %v, want ErrLinkDown", err)
	}
	c.ForceLinkUp()
	if err := c.Read(5*4096, buf); err != nil {
		t.Fatalf("read after ForceLinkUp: %v", err)
	}
}

// TestConcurrentAttachFaultsZeroRetryBudget pins the policy the service
// layer depends on: MaxRetries=0 (with a non-zero backoff so the policy
// is not mistaken for the zero value) means one attempt, zero retries,
// typed ErrTransient.
func TestConcurrentAttachFaultsZeroRetryBudget(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry: testGeo(), Model: ModelSalus, TotalPages: 8, DevicePages: 2, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AttachFaults(alwaysTransient{}, RetryPolicy{MaxRetries: 0, BaseBackoff: 1, MaxBackoff: 1}, nil)
	buf := make([]byte, 8)
	if err := c.Read(0, buf); !errors.Is(err, ErrTransient) {
		t.Fatalf("read under always-transient injector: %v, want ErrTransient", err)
	}
	st := c.Stats()
	if st.Retries != 0 {
		t.Fatalf("zero-budget policy retried %d times", st.Retries)
	}
}
