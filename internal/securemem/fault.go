package securemem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/sim"
)

// Hardware fault handling. A System can be armed with a fault.Injector
// that models CXL link and media failures on the raw data traffic of both
// tiers. Recovery is layered:
//
//   - Transient link faults (CRC retries) are retried with capped
//     exponential backoff per the RetryPolicy; the backoff stalls the
//     attached sim clock. Only exhaustion surfaces, as ErrTransient.
//   - Uncorrectable device-media faults retire the frame (quarantine).
//     A clean frame recovers transparently — the home copy is
//     authoritative — by remapping the page elsewhere, or pinning it to
//     the home-tier direct path under ModelSalus. Dirty chunks are lost:
//     their home chunks are poisoned and the access fails with ErrPoison.
//   - Uncorrectable home-media faults poison the chunk. Poisoned chunks
//     are a badblock list held in the TCB (it survives Suspend/Resume via
//     the TrustedRoot): every later access fails with ErrPoison rather
//     than returning stale bytes.
//
// Faults are modelled on data traffic only; metadata traffic (counters,
// MACs, tree nodes) is assumed to ride the protected on-package path.

// Fault-taxonomy sentinels, alongside ErrIntegrity/ErrFreshness.
var (
	// ErrTransient reports a retryable link fault that still failed after
	// the retry budget was exhausted.
	ErrTransient = errors.New("securemem: transient fault persisted past the retry budget")
	// ErrPoison reports an uncorrectable media error: the addressed data
	// is lost and the region is quarantined.
	ErrPoison = errors.New("securemem: uncorrectable media error (data poisoned)")
)

// errUncorrectable is the internal verdict of the retry loop for faults
// that retries cannot fix; callers translate it into quarantine actions
// and a wrapped ErrPoison.
var errUncorrectable = errors.New("securemem: uncorrectable fault")

// errNoFrames reports that no usable (non-quarantined) device frame is
// left for a migration.
var errNoFrames = errors.New("securemem: no usable device frame")

// RetryPolicy bounds the transient-fault retry loop. Backoff doubles from
// BaseBackoff per attempt, capped at MaxBackoff; the delay is charged to
// the attached sim clock.
type RetryPolicy struct {
	MaxRetries  int
	BaseBackoff sim.Cycle
	MaxBackoff  sim.Cycle
}

// DefaultRetryPolicy mirrors a CXL link-layer retry budget: a handful of
// attempts with short, sharply capped backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BaseBackoff: 16, MaxBackoff: 1024}
}

// backoff returns the delay before retry number attempt+1.
func (p RetryPolicy) backoff(attempt int) sim.Cycle {
	if p.BaseBackoff == 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d := p.BaseBackoff << uint(attempt)
	if p.MaxBackoff != 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// AttachFaults arms the system with a fault injector. A zero policy means
// DefaultRetryPolicy. clock may be nil, in which case backoff costs no
// simulated time (it is still accounted in RetryBackoffCycles).
func (s *System) AttachFaults(inj fault.Injector, policy RetryPolicy, clock *sim.Engine) {
	if policy == (RetryPolicy{}) {
		policy = DefaultRetryPolicy()
	}
	s.inj = inj
	s.retry = policy
	s.clock = clock
}

// gate runs one raw media access through the injector, retrying transient
// faults per the policy. It returns nil (access went through), a wrapped
// ErrTransient (budget exhausted), or errUncorrectable. Injector state and
// the sim clock are shared across shards, so the whole retry loop runs
// under the hardware lock (the nil fast path stays lock-free: AttachFaults
// is setup-time, before any concurrent use).
func (s *System) gate(tier fault.Tier, addr uint64, write bool) error {
	if s.inj == nil {
		return nil
	}
	s.locks.hw.Lock()
	defer s.locks.hw.Unlock()
	for attempt := 0; ; attempt++ {
		f := s.inj.Inject(fault.Access{Tier: tier, Addr: addr, Write: write, Attempt: attempt})
		if f == nil {
			return nil
		}
		switch f.Kind {
		case fault.Transient:
			bump(&s.stats.TransientFaults)
			if attempt >= s.retry.MaxRetries {
				return fmt.Errorf("%w: %v access at %v %#x after %d retries",
					ErrTransient, rw(write), tier, addr, s.retry.MaxRetries)
			}
			bump(&s.stats.Retries)
			d := s.retry.backoff(attempt)
			bumpN(&s.stats.RetryBackoffCycles, uint64(d))
			if s.clock != nil {
				s.clock.Advance(d)
			}
		case fault.Poison:
			bump(&s.stats.PoisonFaults)
			return errUncorrectable
		default: // fault.StuckBit
			bump(&s.stats.StuckBitFaults)
			return errUncorrectable
		}
	}
}

func rw(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// poisonCheck refuses access to a quarantined home chunk. The atomic
// count short-circuits the common no-faults case; the element read is
// safe because a chunk's flag only flips under its own shard's lock,
// which the caller holds.
func (s *System) poisonCheck(addr HomeAddr) error {
	if atomic.LoadUint64(&s.poisonedN) == 0 {
		return nil
	}
	if chunk := addr.Chunk(s.geo.ChunkSize); s.poisoned[chunk] {
		return fmt.Errorf("%w: home chunk %d is quarantined", ErrPoison, chunk)
	}
	return nil
}

// gateHome guards one home-tier data access: quarantined chunks refuse
// access outright, transients retry per the policy, and an uncorrectable
// media error quarantines the chunk before surfacing as ErrPoison.
func (s *System) gateHome(addr HomeAddr, write bool) error {
	if err := s.poisonCheck(addr); err != nil {
		return err
	}
	// The link refusal comes before the fault-retry gate: a dead link
	// fails fast instead of spinning through the transient retry budget.
	if err := s.linkCheck(); err != nil {
		return err
	}
	err := s.gate(fault.TierHome, uint64(addr), write)
	if err == nil {
		return nil
	}
	if errors.Is(err, errUncorrectable) {
		s.poisonChunk(addr.Chunk(s.geo.ChunkSize))
		return fmt.Errorf("%w: uncorrectable home media error at %#x", ErrPoison, uint64(addr))
	}
	return err
}

// gateHomePageRead guards the home-tier read side of a page migration,
// chunk by chunk, before any migration state moves. Chunks already
// quarantined are skipped (their sectors are skipped by the copy too);
// chunks that fail uncorrectably here are poisoned and abort the
// migration with ErrPoison.
func (s *System) gateHomePageRead(page int) error {
	if s.inj == nil && s.lnk == nil {
		return nil
	}
	bad := 0
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		chunk := page*s.geo.ChunksPerPage() + c
		if s.poisoned[chunk] {
			continue
		}
		if err := s.linkCheck(); err != nil {
			return err
		}
		err := s.gate(fault.TierHome, uint64(chunk*s.geo.ChunkSize), false)
		if errors.Is(err, errUncorrectable) {
			s.poisonChunk(chunk)
			bad++
			continue
		}
		if err != nil {
			return err
		}
	}
	if bad > 0 {
		return fmt.Errorf("%w: %d home chunk(s) of page %d failed while migrating in", ErrPoison, bad, page)
	}
	return nil
}

// gateEvictWrites guards the home-tier writeback traffic of frame fi
// before any eviction state moves: transient exhaustion aborts the
// eviction cleanly, while an uncorrectable error quarantines the
// destination chunk (the writeback target itself is gone) and the
// eviction proceeds without it. full selects every chunk (the
// conventional model's full-page writeback) rather than only dirty ones.
func (s *System) gateEvictWrites(fi int, full bool) error {
	if s.inj == nil && s.lnk == nil {
		return nil
	}
	f := &s.frames[fi]
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		if !full && f.dirty&(1<<uint(c)) == 0 {
			continue
		}
		chunk := f.homePage*s.geo.ChunksPerPage() + c
		if s.poisoned[chunk] {
			continue
		}
		if err := s.linkCheck(); err != nil {
			return err
		}
		err := s.gate(fault.TierHome, uint64(chunk*s.geo.ChunkSize), true)
		if errors.Is(err, errUncorrectable) {
			s.poisonChunk(chunk)
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// poisonChunk adds a home chunk to the quarantine list.
func (s *System) poisonChunk(chunk int) {
	if s.poisoned[chunk] {
		return
	}
	s.poisoned[chunk] = true
	atomic.AddUint64(&s.poisonedN, 1)
	bump(&s.stats.ChunksPoisoned)
}

// pinPage pins a home page to the direct CXL access path (ModelSalus
// degradation after its device frame was retired).
func (s *System) pinPage(page int) {
	if s.pinned[page] {
		return
	}
	s.pinned[page] = true
	atomic.AddUint64(&s.pinnedN, 1)
	bump(&s.stats.PagesPinned)
}

// quarantineResident retires frame fi after an uncorrectable device media
// error. A clean frame recovers transparently: the home copy is still
// authoritative, so the page is simply unmapped. Dirty chunks are lost —
// their home chunks are poisoned — and the returned error says so.
func (s *System) quarantineResident(fi int) error {
	f := &s.frames[fi]
	f.quarantined = true
	bump(&s.stats.FramesQuarantined)
	page := f.homePage
	lost := 0
	if page >= 0 {
		for c := 0; c < s.geo.ChunksPerPage(); c++ {
			if f.dirty&(1<<uint(c)) != 0 {
				s.poisonChunk(page*s.geo.ChunksPerPage() + c)
				lost++
			}
		}
		s.pageTable[page] = -1
		bump(&s.stats.PoisonPageDrops)
	}
	f.homePage = -1
	f.dirty, f.macIn, f.ctrIn = 0, 0, 0
	if lost > 0 {
		return fmt.Errorf("%w: device frame %d lost %d dirty chunk(s) of page %d", ErrPoison, fi, lost, page)
	}
	bump(&s.stats.TransparentRecoveries)
	return nil
}

// pinnedAccess serves a sector access for a page pinned to the home tier:
// the Salus direct CXL path with split counters, exactly as
// WriteThrough/ReadThrough use.
func (s *System) pinnedAccess(addr HomeAddr, out []byte, isWrite bool, in []byte) error {
	if !isWrite {
		return s.directReadSector(addr, out)
	}
	if err := s.ensureSplitState(); err != nil {
		return err
	}
	return s.directWriteSector(addr, in)
}

// PoisonedChunks returns the quarantined home chunks, sorted.
func (s *System) PoisonedChunks() []int { return setBits(s.poisoned) }

// PinnedPages returns the pages pinned to home-tier access, sorted.
func (s *System) PinnedPages() []int { return setBits(s.pinned) }

// QuarantinedFrames returns the retired device frames, sorted.
func (s *System) QuarantinedFrames() []int {
	var out []int
	for i := range s.frames {
		if s.frames[i].quarantined {
			out = append(out, i)
		}
	}
	return out
}

// PoisonedRange reports whether any byte of [addr, addr+n) lies in a
// quarantined home chunk. Out-of-range bytes are not poisoned.
func (s *System) PoisonedRange(addr HomeAddr, n int) bool {
	if atomic.LoadUint64(&s.poisonedN) == 0 || n <= 0 || uint64(addr) >= s.Size() {
		return false
	}
	if rem := s.Size() - uint64(addr); uint64(n) > rem {
		n = int(rem)
	}
	cs := s.geo.ChunkSize
	for c := int(addr) / cs; c <= (int(addr)+n-1)/cs; c++ {
		if s.poisoned[c] {
			return true
		}
	}
	return false
}

// setBits returns the indices of the set entries, in ascending order.
func setBits(flags []bool) []int {
	var out []int
	for i, b := range flags {
		if b {
			out = append(out, i)
		}
	}
	return out
}
