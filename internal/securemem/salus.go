package securemem

import (
	"fmt"

	"github.com/salus-sim/salus/internal/security/counters"
)

// Salus model internals. Every cryptographic computation below uses the
// *home* (CXL) address of the data, never its device location — this is
// the unified security model. Device-side counter groups exist only to
// track writes at fine granularity while the page is resident; the group's
// CXL tag records which home page the group belongs to.

// salusDevGroup returns the device counter group of a frame chunk, filling
// it from the chunk's MAC sector (embedded collapsed major) on first touch.
func (s *System) salusDevGroup(fi int, homeAddr HomeAddr) (*counters.IFGroup, error) {
	f := &s.frames[fi]
	cip := s.chunkInPage(homeAddr)
	gi := fi*s.geo.ChunksPerPage() + cip
	g := &s.devGroups[gi]
	if f.ctrIn&(1<<uint(cip)) == 0 {
		// Fetch-on-access: the major arrives embedded in the MAC sector.
		if err := s.salusFetchMAC(fi, homeAddr); err != nil {
			return nil, err
		}
		homeChunk := homeAddr.Chunk(s.geo.ChunkSize)
		major, err := s.salusHomeMajor(homeChunk)
		if err != nil {
			return nil, err
		}
		g.FillFromCollapsed(uint32(f.homePage), major)
		f.ctrIn |= 1 << uint(cip)
		if err := s.salusDevTreeUpdate(gi); err != nil {
			return nil, err
		}
	}
	if g.CXLTag != uint32(f.homePage) {
		return nil, fmt.Errorf("securemem: device counter group tag %d does not match page %d", g.CXLTag, f.homePage)
	}
	return g, nil
}

// salusHomeMajor reads (and freshness-verifies) the collapsed major of a
// home chunk.
func (s *System) salusHomeMajor(homeChunk int) (uint32, error) {
	si := homeChunk / counters.CollapsedMajors
	leaf := s.collapsed[si].Encode()
	bump(&s.stats.BMTVerifies)
	if err := s.cxlTree.VerifyCached(si, leaf); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFreshness, err)
	}
	return s.collapsed[si].Majors[homeChunk%counters.CollapsedMajors], nil
}

// salusSetHomeMajor updates the collapsed major of a home chunk and the
// CXL tree.
func (s *System) salusSetHomeMajor(homeChunk int, major uint32) error {
	s.markCkptDirty(homeChunk * s.geo.ChunkSize / s.geo.PageSize)
	si := homeChunk / counters.CollapsedMajors
	s.collapsed[si].Majors[homeChunk%counters.CollapsedMajors] = major
	bump(&s.stats.BMTUpdates)
	return s.cxlTree.Update(si, s.collapsed[si].Encode())
}

// salusDevTreeUpdate refreshes the device-tree leaf covering group gi.
func (s *System) salusDevTreeUpdate(gi int) error {
	leafIdx := gi / counters.GroupsPerSector
	var sec counters.IFSector
	base := leafIdx * counters.GroupsPerSector
	for k := 0; k < counters.GroupsPerSector; k++ {
		if base+k < len(s.devGroups) {
			sec.Groups[k] = s.devGroups[base+k]
		}
	}
	bump(&s.stats.BMTUpdates)
	return s.devTree.Update(leafIdx, sec.Encode())
}

// salusFetchMAC ensures the MAC sector of homeAddr's block is present on
// the device side (fetch-only-on-access, §IV-A3). The MAC store is home-
// indexed, so the "fetch" is an accounting event plus the CXL-tag check
// that the hardware would perform.
func (s *System) salusFetchMAC(fi int, homeAddr HomeAddr) error {
	f := &s.frames[fi]
	bip := s.blockInPage(homeAddr)
	if f.macIn&(1<<uint(bip)) == 0 {
		bump(&s.stats.LazyMACFetches)
		f.macIn |= 1 << uint(bip)
	}
	return nil
}

// salusAccess performs one resident-sector access under the Salus model.
func (s *System) salusAccess(homeAddr HomeAddr, devAddr DevAddr, fi int, out []byte, isWrite bool, in []byte) error {
	g, err := s.salusDevGroup(fi, homeAddr)
	if err != nil {
		return err
	}
	if err := s.salusFetchMAC(fi, homeAddr); err != nil {
		return err
	}
	sic := (int(homeAddr) % s.geo.ChunkSize) / s.geo.SectorSize // sector index in chunk
	ct := s.devData[devAddr : devAddr+32]

	if !isWrite {
		major, minor := g.Pair(sic)
		bump(&s.stats.MACVerifies)
		if !s.eng.VerifyMAC(ct, uint64(homeAddr), major, minor, s.homeMAC(homeAddr)) {
			return fmt.Errorf("%w: home address %#x", ErrIntegrity, uint64(homeAddr))
		}
		return s.eng.DecryptSector(out, ct, uint64(homeAddr), major, minor)
	}

	// Write: bump the minor; an overflow re-encrypts the whole chunk under
	// the incremented major (blast radius = one chunk, the point of the
	// interleaving-friendly layout). The pre-Inc group state is needed to
	// decrypt the chunk's other sectors, so snapshot it first.
	old := *g
	if g.Inc(sic) {
		if err := s.salusReencryptChunk(homeAddr, fi, &old, g, sic, in); err != nil {
			return err
		}
	} else {
		major, minor := g.Pair(sic)
		if err := s.eng.EncryptSector(ct, in, uint64(homeAddr), major, minor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(ct, uint64(homeAddr), major, minor)
		if err != nil {
			return err
		}
		if err := s.storeHomeMAC(homeAddr, mac); err != nil {
			return err
		}
	}
	f := &s.frames[fi]
	f.dirty |= 1 << uint(s.chunkInPage(homeAddr))
	gi := fi*s.geo.ChunksPerPage() + s.chunkInPage(homeAddr)
	return s.salusDevTreeUpdate(gi)
}

// salusReencryptChunk re-encrypts every sector of a resident chunk after a
// minor overflow: each sector is decrypted under its old (pre-overflow)
// pair and re-encrypted under (newMajor, 0); sector writeSic takes
// writeData instead of its old plaintext.
func (s *System) salusReencryptChunk(homeAddr HomeAddr, fi int, old, cur *counters.IFGroup, writeSic int, writeData []byte) error {
	cs := uint64(s.geo.ChunkSize)
	ss := uint64(s.geo.SectorSize)
	chunkHomeBase := uint64(homeAddr) / cs * cs
	pageOff := chunkHomeBase % uint64(s.geo.PageSize)
	chunkDevBase := uint64(fi*s.geo.PageSize) + pageOff
	pt := make([]byte, ss)
	for i := 0; i < s.geo.SectorsPerChunk(); i++ {
		ha := chunkHomeBase + uint64(i)*ss
		ct := s.devData[chunkDevBase+uint64(i)*ss : chunkDevBase+uint64(i+1)*ss]
		if i == writeSic {
			copy(pt, writeData)
		} else {
			oldMajor, oldMinor := old.Pair(i)
			if err := s.eng.DecryptSector(pt, ct, ha, oldMajor, oldMinor); err != nil {
				return err
			}
		}
		newMajor, newMinor := cur.Pair(i)
		if err := s.eng.EncryptSector(ct, pt, ha, newMajor, newMinor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(ct, ha, newMajor, newMinor)
		if err != nil {
			return err
		}
		if err := s.storeHomeMAC(HomeAddr(ha), mac); err != nil {
			return err
		}
		bump(&s.stats.OverflowReEncryptions)
	}
	return nil
}

// salusEvict writes a frame back under the Salus model: the fine-grained
// dirty bitmask selects which chunks move (§IV-A4); each dirty chunk is
// collapsed — one re-encryption under the incremented major with zeroed
// minors — and its ciphertext plus MAC sectors (with the embedded major)
// land in the home tier. Clean chunks need no traffic at all: their home-
// tier ciphertext is still valid because it was never re-encrypted.
func (s *System) salusEvict(fi int) error {
	if err := s.gateEvictWrites(fi, false); err != nil {
		return err
	}
	f := &s.frames[fi]
	page := f.homePage
	cs := s.geo.ChunkSize
	ss := s.geo.SectorSize
	pt := make([]byte, ss)
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		if f.dirty&(1<<uint(c)) == 0 {
			bump(&s.stats.CleanChunksSkipped)
			continue
		}
		bump(&s.stats.DirtyChunkWritebacks)
		homeChunk := page*s.geo.ChunksPerPage() + c
		if s.poisoned[homeChunk] {
			// The writeback target died under the eviction gate: the chunk
			// is quarantined, its writeback suppressed (still accounted as a
			// dirty-chunk writeback so the eviction arithmetic stays exact).
			continue
		}
		gi := fi*s.geo.ChunksPerPage() + c
		g := &s.devGroups[gi]
		old := *g
		newMajor, reenc := g.Collapse()
		chunkHomeBase := uint64(homeChunk * cs)
		chunkDevBase := uint64(fi*s.geo.PageSize + c*cs)
		for i := 0; i < s.geo.SectorsPerChunk(); i++ {
			ha := chunkHomeBase + uint64(i*ss)
			ct := s.devData[chunkDevBase+uint64(i*ss) : chunkDevBase+uint64((i+1)*ss)]
			if reenc {
				oldMajor, oldMinor := old.Pair(i)
				if err := s.eng.DecryptSector(pt, ct, ha, oldMajor, oldMinor); err != nil {
					return err
				}
				if err := s.eng.EncryptSector(ct, pt, ha, uint64(newMajor), 0); err != nil {
					return err
				}
				mac, err := s.eng.MAC(ct, ha, uint64(newMajor), 0)
				if err != nil {
					return err
				}
				if err := s.storeHomeMAC(HomeAddr(ha), mac); err != nil {
					return err
				}
				bump(&s.stats.CollapseReEncryptions)
			}
			copy(s.cxlData[ha:ha+uint64(ss)], ct)
		}
		if err := s.salusSetHomeMajor(homeChunk, newMajor); err != nil {
			return err
		}
		// The chunk's MAC sectors travel back with the embedded major.
		for b := 0; b < s.geo.BlocksPerChunk(); b++ {
			blockIdx := int(chunkHomeBase)/s.geo.BlockSize + b
			s.macSectors[blockIdx].Major = newMajor
		}
	}
	return nil
}
