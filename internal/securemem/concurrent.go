package securemem

import (
	"sync"

	"github.com/salus-sim/salus/internal/crash"
)

// Concurrent wraps a System with a mutex so multiple goroutines can share
// it. The underlying System is single-threaded by design (the hardware it
// models serialises security operations per memory controller); this
// wrapper gives library users a safe default without putting lock overhead
// on the single-threaded fast path.
type Concurrent struct {
	mu  sync.Mutex
	sys *System
}

// NewConcurrent builds a protected memory safe for concurrent use.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{sys: sys}, nil
}

// Read is a goroutine-safe System.Read.
func (c *Concurrent) Read(addr HomeAddr, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Read(addr, buf)
}

// Write is a goroutine-safe System.Write.
func (c *Concurrent) Write(addr HomeAddr, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Write(addr, data)
}

// WriteThrough is a goroutine-safe System.WriteThrough.
func (c *Concurrent) WriteThrough(addr HomeAddr, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.WriteThrough(addr, data)
}

// ReadThrough is a goroutine-safe System.ReadThrough.
func (c *Concurrent) ReadThrough(addr HomeAddr, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.ReadThrough(addr, buf)
}

// Flush is a goroutine-safe System.Flush.
func (c *Concurrent) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Flush()
}

// Checkpoint is a goroutine-safe System.Checkpoint: the epoch is
// serialised against concurrent accesses, so a checkpoint taken under
// load captures a consistent point-in-time state.
func (c *Concurrent) Checkpoint(j *crash.Journal) (TrustedRoot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Checkpoint(j)
}

// Suspend is a goroutine-safe System.Suspend.
func (c *Concurrent) Suspend() ([]byte, TrustedRoot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Suspend()
}

// DrainWritebacks is a goroutine-safe System.DrainWritebacks. Each
// queued writeback drains under its own lock acquisition, so concurrent
// device-resident reads interleave with a long drain instead of stalling
// behind it.
func (c *Concurrent) DrainWritebacks() (int, error) {
	n := 0
	for {
		c.mu.Lock()
		if c.sys.QueuedWritebacks() == 0 {
			c.mu.Unlock()
			return n, nil
		}
		err := c.sys.drainOne()
		c.mu.Unlock()
		if err != nil {
			return n, err
		}
		n++
	}
}

// QueuedWritebacks is a goroutine-safe System.QueuedWritebacks.
func (c *Concurrent) QueuedWritebacks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.QueuedWritebacks()
}

// Epoch is a goroutine-safe System.Epoch.
func (c *Concurrent) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Epoch()
}

// Stats is a goroutine-safe System.Stats.
func (c *Concurrent) Stats() OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Stats()
}

// Size returns the home address-space size in bytes.
func (c *Concurrent) Size() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Size()
}

// Model returns the active protection model.
func (c *Concurrent) Model() Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Model()
}

// Unwrap returns the underlying System for single-threaded phases. The
// caller must guarantee no concurrent use while holding it.
//
// salus-lint:ignore lockdiscipline Unwrap is the documented single-threaded escape hatch
func (c *Concurrent) Unwrap() *System { return c.sys }
