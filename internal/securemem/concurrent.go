package securemem

import (
	"sync"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/sim"
)

// Concurrent wraps a System for shared use by multiple goroutines with a
// sharded lock design: the home space is partitioned into nShards page
// groups (page p belongs to shard p % nShards, see shard.go), each with
// its own mutex, so accesses that touch different shards proceed in
// parallel — the single-mutex design this replaces serialised every read
// behind one global lock. Two lock layers compose:
//
//   - c.mu (RWMutex): address-granular operations hold it shared;
//     whole-system operations (Flush, Checkpoint, Suspend, the drain
//     loop, Stats) hold it exclusively, which quiesces every in-flight
//     access without touching a single shard lock.
//   - c.shards[i].mu: an address operation locks exactly the shards its
//     byte range touches, always in ascending shard order, so
//     multi-shard acquisitions cannot deadlock against each other.
//
// The lock order is therefore Concurrent.mu -> shardLock.mu -> the
// System-internal leaf locks (sysLocks fields, bmt.Tree.mu); nothing in
// the package acquires them in any other order.
type Concurrent struct {
	mu     sync.RWMutex
	shards []shardLock
	sys    *System
}

// shardLock is one shard's mutex, padded out to its own cache line so
// adjacent shards do not false-share under contention.
type shardLock struct {
	mu sync.Mutex
	_  [56]byte
}

// NewConcurrent builds a protected memory safe for concurrent use. The
// shard count comes from cfg.Shards (zero selects DefaultShards) and is
// clamped so every shard owns at least one page and one device frame.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sys.configureSharding(cfg.Shards)
	return &Concurrent{
		shards: make([]shardLock, sys.Shards()),
		sys:    sys,
	}, nil
}

// ConcurrentFrom wraps an existing System — typically one produced by
// Recover — for shared use, re-applying the sharded lock design. Sharding
// can only be (re)configured while no page is resident; a recovered
// System qualifies (recovery rebuilds the home tier and leaves the device
// tier empty). If pages are already resident the existing shard count is
// kept, so the wrapper is always safe, just possibly narrower than asked.
func ConcurrentFrom(sys *System, shards int) *Concurrent {
	resident := false
	for _, fi := range sys.pageTable {
		if fi >= 0 {
			resident = true
			break
		}
	}
	if !resident {
		sys.configureSharding(shards)
	}
	return &Concurrent{
		shards: make([]shardLock, sys.Shards()),
		sys:    sys,
	}
}

// AttachFaults is a goroutine-safe System.AttachFaults: the writer lock
// quiesces every in-flight access before the injector is armed, so no
// access can observe a half-attached fault model.
func (c *Concurrent) AttachFaults(inj fault.Injector, policy RetryPolicy, clock *sim.Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sys.AttachFaults(inj, policy, clock)
}

// AttachLink is a goroutine-safe System.AttachLink, quiescing in-flight
// accesses for the same reason as AttachFaults.
func (c *Concurrent) AttachLink(l *link.Link, clock *sim.Engine, queueCap int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sys.AttachLink(l, clock, queueCap)
}

// ForceLinkUp is a goroutine-safe operator link reset; it may run while
// traffic is in flight (the link consultation itself is serialised under
// the System's hardware lock).
func (c *Concurrent) ForceLinkUp() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.sys.ForceLinkUp()
}

// lockRange locks every shard the byte range [base, base+n) touches, in
// ascending shard order, and returns the held set as a bitmask for
// unlockRange. Empty or out-of-bounds ranges and ranges spanning at
// least nShards pages take every shard: the underlying operation either
// fails its own bounds check without mutating anything, or genuinely
// touches the whole system.
func (c *Concurrent) lockRange(base, n uint64) uint64 {
	ns := len(c.shards)
	if ns == 1 {
		c.shards[0].mu.Lock()
		return 1
	}
	if n == 0 {
		n = 1
	}
	all := (uint64(1) << uint(ns)) - 1
	var mask uint64
	size := c.sys.Size()
	if base >= size || n > size-base {
		mask = all
	} else {
		ps := uint64(c.sys.geo.PageSize)
		first := base / ps
		last := (base + n - 1) / ps
		if last-first+1 >= uint64(ns) {
			mask = all
		} else {
			for p := first; p <= last; p++ {
				mask |= uint64(1) << uint(p%uint64(ns))
			}
		}
	}
	for i := 0; i < ns; i++ {
		if mask&(uint64(1)<<uint(i)) != 0 {
			c.shards[i].mu.Lock()
		}
	}
	return mask
}

// unlockRange releases the shards lockRange locked.
func (c *Concurrent) unlockRange(mask uint64) {
	for i := len(c.shards) - 1; i >= 0; i-- {
		if mask&(uint64(1)<<uint(i)) != 0 {
			c.shards[i].mu.Unlock()
		}
	}
}

// Read is a goroutine-safe System.Read; reads of pages in different
// shards run in parallel.
func (c *Concurrent) Read(addr HomeAddr, buf []byte) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mask := c.lockRange(uint64(addr), uint64(len(buf)))
	defer c.unlockRange(mask)
	return c.sys.Read(addr, buf)
}

// Write is a goroutine-safe System.Write.
func (c *Concurrent) Write(addr HomeAddr, data []byte) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mask := c.lockRange(uint64(addr), uint64(len(data)))
	defer c.unlockRange(mask)
	return c.sys.Write(addr, data)
}

// WriteThrough is a goroutine-safe System.WriteThrough.
func (c *Concurrent) WriteThrough(addr HomeAddr, data []byte) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mask := c.lockRange(uint64(addr), uint64(len(data)))
	defer c.unlockRange(mask)
	return c.sys.WriteThrough(addr, data)
}

// ReadThrough is a goroutine-safe System.ReadThrough.
func (c *Concurrent) ReadThrough(addr HomeAddr, buf []byte) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mask := c.lockRange(uint64(addr), uint64(len(buf)))
	defer c.unlockRange(mask)
	return c.sys.ReadThrough(addr, buf)
}

// Flush is a goroutine-safe System.Flush. It quiesces the whole system:
// every shard's in-flight accesses complete before the eviction sweep.
func (c *Concurrent) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Flush()
}

// Checkpoint is a goroutine-safe System.Checkpoint: the epoch is
// serialised against concurrent accesses, so a checkpoint taken under
// load captures a consistent point-in-time state.
func (c *Concurrent) Checkpoint(j *crash.Journal) (TrustedRoot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Checkpoint(j)
}

// FullCheckpoint is a goroutine-safe System.FullCheckpoint: every home
// page rides the committed epoch, making the journal self-contained
// from this epoch on (the migration bootstrap round).
func (c *Concurrent) FullCheckpoint(j *crash.Journal) (TrustedRoot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.FullCheckpoint(j)
}

// Suspend is a goroutine-safe System.Suspend.
func (c *Concurrent) Suspend() ([]byte, TrustedRoot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Suspend()
}

// DrainWritebacks is a goroutine-safe System.DrainWritebacks. Each
// queued writeback drains under its own writer-lock acquisition, so
// concurrent accesses interleave with a long drain instead of stalling
// behind it.
func (c *Concurrent) DrainWritebacks() (int, error) {
	n := 0
	for {
		c.mu.Lock()
		if c.sys.QueuedWritebacks() == 0 {
			c.mu.Unlock()
			return n, nil
		}
		err := c.sys.drainOne()
		c.mu.Unlock()
		if err != nil {
			return n, err
		}
		n++
	}
}

// QueuedWritebacks is a goroutine-safe System.QueuedWritebacks.
func (c *Concurrent) QueuedWritebacks() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sys.QueuedWritebacks()
}

// Epoch is a goroutine-safe System.Epoch. The epoch only advances under
// the writer-excluding Checkpoint path, so shared mode suffices here.
func (c *Concurrent) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sys.Epoch()
}

// Stats is a goroutine-safe System.Stats. It holds the writer-excluding
// lock so the returned snapshot is consistent: no access is mid-flight
// while the plain-field counter copy is taken.
func (c *Concurrent) Stats() OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.Stats()
}

// StateDigest is a goroutine-safe System.StateDigest: the writer lock
// quiesces in-flight accesses so the digest covers a consistent state.
func (c *Concurrent) StateDigest() [32]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sys.StateDigest()
}

// Shards reports how many page shards the lock design is using.
func (c *Concurrent) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sys.Shards()
}

// Size returns the home address-space size in bytes.
func (c *Concurrent) Size() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sys.Size()
}

// Model returns the active protection model.
func (c *Concurrent) Model() Model {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sys.Model()
}

// Unwrap returns the underlying System for single-threaded phases. The
// caller must guarantee no concurrent use while holding it.
//
// salus-lint:ignore lockdiscipline Unwrap is the documented single-threaded escape hatch
func (c *Concurrent) Unwrap() *System { return c.sys }
