package securemem

import (
	"errors"
	"testing"
)

// Regression tests for the overflow-prone bounds checks: the old form
// `uint64(addr)+uint64(len) > Size()` wraps for addresses near 2^64, so an
// out-of-range access passed the check and panicked later when the address
// was used as a slice index. Every entry point must reject such addresses
// with ErrOutOfRange instead.

func TestBoundsCheckOverflowRejected(t *testing.T) {
	hostile := []struct {
		name string
		addr HomeAddr
		n    int
	}{
		{"max-addr", HomeAddr(^uint64(0)), 1},
		{"wraps-to-small", HomeAddr(^uint64(0) - 7), 16},
		{"wraps-to-zero", HomeAddr(^uint64(0) - 15), 16},
		{"just-past-end", 0, 0}, // addr filled in per system below
	}
	for _, m := range allModels {
		s := newSys(t, m, 2, 1)
		hostile[3].addr = HomeAddr(s.Size() - 1)
		hostile[3].n = 2
		for _, h := range hostile {
			if err := s.Read(h.addr, make([]byte, h.n)); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("%v: Read(%s) = %v, want ErrOutOfRange", m, h.name, err)
			}
			if err := s.Write(h.addr, make([]byte, h.n)); !errors.Is(err, ErrOutOfRange) {
				t.Errorf("%v: Write(%s) = %v, want ErrOutOfRange", m, h.name, err)
			}
			if m == ModelSalus {
				if err := s.ReadThrough(h.addr, make([]byte, h.n)); !errors.Is(err, ErrOutOfRange) {
					t.Errorf("ReadThrough(%s) = %v, want ErrOutOfRange", h.name, err)
				}
				if err := s.WriteThrough(h.addr, make([]byte, h.n)); !errors.Is(err, ErrOutOfRange) {
					t.Errorf("WriteThrough(%s) = %v, want ErrOutOfRange", h.name, err)
				}
			}
		}
		if got := s.RawHomeBytes(HomeAddr(^uint64(0)-7), 16); got != nil {
			t.Errorf("%v: RawHomeBytes with wrapping range = %v, want nil", m, got)
		}
	}
}

func TestBoundsZeroLengthAtEnd(t *testing.T) {
	// A zero-length access exactly at Size() is a no-op, not an error, and
	// must not panic under the rewritten checks.
	for _, m := range allModels {
		s := newSys(t, m, 2, 1)
		end := HomeAddr(s.Size())
		if err := s.Read(end, nil); err != nil {
			t.Errorf("%v: zero-length read at end: %v", m, err)
		}
		if err := s.Write(end, nil); err != nil {
			t.Errorf("%v: zero-length write at end: %v", m, err)
		}
		if err := s.Read(end+1, nil); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("%v: zero-length read past end = %v, want ErrOutOfRange", m, err)
		}
	}
}
