package securemem

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/security/counters"
	"github.com/salus-sim/salus/internal/security/maclib"
	"github.com/salus-sim/salus/internal/sim"
)

// Incremental checkpointing (ModelSalus). Where Suspend serialises the
// whole home tier into a one-shot image, Checkpoint appends only the
// pages whose home-tier security state changed since the last checkpoint
// to a crash.Journal, as one epoch committed with the journal's two-phase
// protocol. The epoch number is monotonic TCB state carried in the
// TrustedRoot; Recover replays the journal strictly up to the trusted
// epoch, so a crashed checkpoint is invisible and a replayed stale
// journal is rejected as a rollback.
//
// Pages never touched since New need no records at all: the initial
// encryption is a deterministic function of the keys, so Recover's fresh
// System already holds their exact home-tier bytes.

// RecordPage is the journal record type of one page checkpoint record.
// Payload layout (little-endian):
//
//	[0:8]   home page index
//	[8:..]  PageSize bytes of home ciphertext
//	[..]    BlocksPerPage × 32 B MAC sector encodings
//	[..]    ChunksPerPage × 4 B collapsed majors
//	[..]    1 B split flag
//	[..]    if split: ChunksPerPage × (1 B dirty + 32 B split sector)
const RecordPage byte = 0x01

// checkpointCommitCycles is the fixed latency charged per Checkpoint for
// the two durability barriers of the commit protocol.
const checkpointCommitCycles = 128

// ErrJournalRequired reports a Checkpoint call without a journal.
var ErrJournalRequired = errors.New("securemem: Checkpoint requires a journal")

// AttachClock charges persistence work (checkpoint serialisation and
// commit barriers) to a sim clock. AttachFaults also sets the clock; use
// AttachClock when no fault injector is armed.
func (s *System) AttachClock(clock *sim.Engine) { s.clock = clock }

// Epoch returns the checkpoint epoch of the system: the epoch the next
// successful Checkpoint will commit as epoch+1.
func (s *System) Epoch() uint64 { return s.epoch }

// markCkptDirty records that a page's home-tier security state changed
// and must ride the next checkpoint epoch. It is called from the two
// chokepoints every home mutation funnels through: storeHomeMAC (data and
// MAC changes) and salusSetHomeMajor (counter changes).
func (s *System) markCkptDirty(page int) {
	if s.ckptDirty != nil && page >= 0 && page < len(s.ckptDirty) {
		s.ckptDirty[page] = true
	}
}

// Checkpoint appends one epoch of dirty-page records to the journal and
// commits it, returning the new trusted root (tree roots, badblock list,
// and the committed epoch) to be stored in the TCB. Dirty chunks of
// resident pages are first collapsed and written back home in place —
// residency and device counter state survive, so the running system is
// undisturbed beyond the writeback.
//
// A checkpoint with no dirty pages commits an empty epoch: just the
// commit record, so state continuity advances even across idle periods.
//
// On error the epoch number is still consumed: a retry commits under a
// fresh epoch and Recover discards the abandoned records, so a partially
// written epoch can never alias a later complete one.
func (s *System) Checkpoint(j *crash.Journal) (TrustedRoot, error) {
	var root TrustedRoot
	if s.cfg.Model != ModelSalus {
		return root, errors.New("securemem: Checkpoint requires ModelSalus")
	}
	if j == nil {
		return root, ErrJournalRequired
	}
	// Consult the link for every home writeback this epoch needs before
	// anything (including the epoch number) moves: a checkpoint that
	// cannot reach the home tier is an atomic typed no-op, never a
	// half-written epoch with cleared dirty bits.
	if err := s.linkPrecheckCheckpoint(); err != nil {
		return root, err
	}
	epoch := s.epoch + 1
	s.epoch = epoch // consumed even on failure; see above
	startBytes := j.BytesWritten()

	var pages []int
	for p, d := range s.ckptDirty {
		if d {
			pages = append(pages, p)
		}
	}
	sort.Ints(pages)
	for _, page := range pages {
		if err := s.checkpointWriteback(page); err != nil {
			return root, err
		}
		if err := j.Append(RecordPage, epoch, s.encodePageRecord(page)); err != nil {
			return root, err
		}
	}
	if err := j.Commit(epoch); err != nil {
		return root, err
	}
	for _, page := range pages {
		s.ckptDirty[page] = false
	}
	bytes := j.BytesWritten() - startBytes
	bump(&s.stats.Checkpoints)
	bumpN(&s.stats.CheckpointPages, uint64(len(pages)))
	bumpN(&s.stats.CheckpointBytes, bytes)
	cycles := bytes/uint64(s.geo.SectorSize) + checkpointCommitCycles
	bumpN(&s.stats.CheckpointCycles, cycles)
	if s.clock != nil {
		s.clock.Advance(sim.Cycle(cycles))
	}

	root.Epoch = epoch
	root.CXLRoot = s.cxlTree.Root()
	if s.cxlSplit != nil {
		root.HasSplit = true
		root.SplitRoot = s.splitTree.Root()
	}
	root.PoisonedChunks = s.PoisonedChunks()
	root.QuarantinedFrames = s.QuarantinedFrames()
	root.PinnedPages = s.PinnedPages()
	return root, nil
}

// FullCheckpoint marks every home page checkpoint-dirty and commits one
// epoch carrying the whole home tier. Where Checkpoint ships only the
// incremental delta since the previous epoch, a full checkpoint makes
// the journal self-contained from this epoch on: a Recover (or a
// migration destination) replaying it needs no earlier journal to
// reconstruct the complete state. This is the bootstrap record set of a
// live migration's first sync round — later delta rounds ride ordinary
// Checkpoint epochs on the same journal.
func (s *System) FullCheckpoint(j *crash.Journal) (TrustedRoot, error) {
	if s.cfg.Model != ModelSalus {
		return TrustedRoot{}, errors.New("securemem: FullCheckpoint requires ModelSalus")
	}
	for p := range s.ckptDirty {
		s.ckptDirty[p] = true
	}
	return s.Checkpoint(j)
}

// checkpointWriteback collapses the dirty resident chunks of a page home
// in place, so the home tier holds the page's current state before it is
// journaled. Unlike salusEvict the page stays resident with its device
// counter state live (post-collapse the group equals its fetched-fresh
// form), and the work is accounted as CheckpointWritebacks — eviction
// accounting stays untouched.
func (s *System) checkpointWriteback(page int) error {
	fi := s.pageTable[page]
	if fi < 0 {
		return nil
	}
	f := &s.frames[fi]
	if f.dirty == 0 {
		return nil
	}
	cs := s.geo.ChunkSize
	ss := s.geo.SectorSize
	pt := make([]byte, ss)
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		if f.dirty&(1<<uint(c)) == 0 {
			continue
		}
		homeChunk := page*s.geo.ChunksPerPage() + c
		if s.poisoned[homeChunk] {
			// Data already lost; nothing to persist.
			f.dirty &^= 1 << uint(c)
			continue
		}
		bump(&s.stats.CheckpointWritebacks)
		gi := fi*s.geo.ChunksPerPage() + c
		g := &s.devGroups[gi]
		old := *g
		newMajor, reenc := g.Collapse()
		chunkHomeBase := uint64(homeChunk * cs)
		chunkDevBase := uint64(fi*s.geo.PageSize + c*cs)
		for i := 0; i < s.geo.SectorsPerChunk(); i++ {
			ha := chunkHomeBase + uint64(i*ss)
			ct := s.devData[chunkDevBase+uint64(i*ss) : chunkDevBase+uint64((i+1)*ss)]
			if reenc {
				oldMajor, oldMinor := old.Pair(i)
				if err := s.eng.DecryptSector(pt, ct, ha, oldMajor, oldMinor); err != nil {
					return err
				}
				if err := s.eng.EncryptSector(ct, pt, ha, uint64(newMajor), 0); err != nil {
					return err
				}
				mac, err := s.eng.MAC(ct, ha, uint64(newMajor), 0)
				if err != nil {
					return err
				}
				if err := s.storeHomeMAC(HomeAddr(ha), mac); err != nil {
					return err
				}
				bump(&s.stats.CollapseReEncryptions)
			}
			copy(s.cxlData[ha:ha+uint64(ss)], ct)
		}
		if err := s.salusSetHomeMajor(homeChunk, newMajor); err != nil {
			return err
		}
		for b := 0; b < s.geo.BlocksPerChunk(); b++ {
			blockIdx := int(chunkHomeBase)/s.geo.BlockSize + b
			s.macSectors[blockIdx].Major = newMajor
		}
		// The collapsed group stays live on the device side; refresh its
		// tree leaf so later device accesses verify.
		if err := s.salusDevTreeUpdate(gi); err != nil {
			return err
		}
		f.dirty &^= 1 << uint(c)
	}
	return nil
}

// encodePageRecord serialises the home-tier state of one page.
func (s *System) encodePageRecord(page int) []byte {
	g := s.geo
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(page))
	buf = append(buf, tmp[:]...)
	buf = append(buf, s.cxlData[page*g.PageSize:(page+1)*g.PageSize]...)
	blockBase := page * g.BlocksPerPage()
	for b := 0; b < g.BlocksPerPage(); b++ {
		enc := s.macSectors[blockBase+b].Encode()
		buf = append(buf, enc[:]...)
	}
	chunkBase := page * g.ChunksPerPage()
	for c := 0; c < g.ChunksPerPage(); c++ {
		chunk := chunkBase + c
		major := s.collapsed[chunk/counters.CollapsedMajors].Majors[chunk%counters.CollapsedMajors]
		var m [4]byte
		binary.LittleEndian.PutUint32(m[:], major)
		buf = append(buf, m[:]...)
	}
	if s.cxlSplit == nil {
		buf = append(buf, 0)
		return buf
	}
	buf = append(buf, 1)
	for c := 0; c < g.ChunksPerPage(); c++ {
		chunk := chunkBase + c
		if s.splitDirty[chunk] {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		enc := s.cxlSplit[chunk].Encode()
		buf = append(buf, enc[:]...)
	}
	return buf
}

// pageRecordLen returns the two valid lengths of a page record payload.
func pageRecordLen(g config.Geometry) (plain, split int) {
	plain = 8 + g.PageSize + g.BlocksPerPage()*32 + g.ChunksPerPage()*4 + 1
	split = plain + g.ChunksPerPage()*33
	return plain, split
}

// Recover reconstructs a Salus system from a checkpoint journal and its
// trusted root. The journal is untrusted: framing damage before the
// trusted epoch's commit surfaces as crash.ErrTornCheckpoint, a journal
// whose commits stop short of the trusted epoch as crash.ErrRollback, and
// a journal whose counters disagree with the trusted tree roots as
// ErrFreshness. cfg and keys must match the checkpointed system's
// (Config/geometry disagreement shows up as record-size or root
// mismatches, both typed).
func Recover(cfg Config, journal []byte, root TrustedRoot) (*System, error) {
	if cfg.Model != ModelSalus {
		return nil, errors.New("securemem: Recover requires ModelSalus")
	}
	recs, err := crash.Replay(journal, root.Epoch)
	if err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	g := cfg.Geometry
	plainLen, splitLen := pageRecordLen(g)
	touchedSplit := map[int]bool{}
	for _, rec := range recs {
		if rec.Type != RecordPage {
			return nil, fmt.Errorf("%w: unknown record type %#x", crash.ErrTornCheckpoint, rec.Type)
		}
		hasSplit := false
		switch len(rec.Payload) {
		case plainLen:
		case splitLen:
			hasSplit = true
		default:
			return nil, fmt.Errorf("%w: page record of %d bytes, want %d or %d",
				crash.ErrTornCheckpoint, len(rec.Payload), plainLen, splitLen)
		}
		page := binary.LittleEndian.Uint64(rec.Payload)
		if page >= uint64(cfg.TotalPages) {
			return nil, fmt.Errorf("%w: page record for out-of-range page %d", crash.ErrTornCheckpoint, page)
		}
		p := int(page)
		off := 8
		copy(s.cxlData[p*g.PageSize:(p+1)*g.PageSize], rec.Payload[off:off+g.PageSize])
		off += g.PageSize
		blockBase := p * g.BlocksPerPage()
		var sector [32]byte
		for b := 0; b < g.BlocksPerPage(); b++ {
			copy(sector[:], rec.Payload[off:off+32])
			s.macSectors[blockBase+b] = maclib.Decode(sector)
			off += 32
		}
		chunkBase := p * g.ChunksPerPage()
		for c := 0; c < g.ChunksPerPage(); c++ {
			chunk := chunkBase + c
			major := binary.LittleEndian.Uint32(rec.Payload[off:])
			s.collapsed[chunk/counters.CollapsedMajors].Majors[chunk%counters.CollapsedMajors] = major
			off += 4
		}
		off++ // split flag, already decoded from the length
		if hasSplit {
			if err := s.ensureSplitState(); err != nil {
				return nil, err
			}
			for c := 0; c < g.ChunksPerPage(); c++ {
				chunk := chunkBase + c
				s.splitDirty[chunk] = rec.Payload[off] == 1
				off++
				copy(sector[:], rec.Payload[off:off+32])
				s.cxlSplit[chunk] = counters.DecodeCXLSplit(sector)
				off += 32
				touchedSplit[chunk] = true
			}
		}
	}
	if err := s.rebuildHomeTrees(); err != nil {
		return nil, err
	}
	if root.HasSplit && s.cxlSplit == nil {
		// Split state existed but no committed record carried it (it was
		// allocated but never populated); materialise the pristine tree so
		// the root can be verified.
		if err := s.ensureSplitState(); err != nil {
			return nil, err
		}
	}
	for chunk := range touchedSplit {
		if err := s.splitTree.Update(chunk, s.cxlSplit[chunk].Encode()); err != nil {
			return nil, err
		}
	}
	// Verify the replayed counter state against the TCB roots; a journal
	// that replays cleanly but encodes different counters is a forgery.
	if s.cxlTree.Root() != root.CXLRoot {
		return nil, fmt.Errorf("%w: recovered counters do not match trusted root", ErrFreshness)
	}
	if root.HasSplit {
		if s.splitTree == nil || s.splitTree.Root() != root.SplitRoot {
			return nil, fmt.Errorf("%w: recovered split counters do not match trusted root", ErrFreshness)
		}
	} else if s.cxlSplit != nil {
		return nil, fmt.Errorf("%w: journal carries split state the trusted root does not know", ErrFreshness)
	}
	if err := s.applyTrustedBadblocks(root); err != nil {
		return nil, err
	}
	s.epoch = root.Epoch
	return s, nil
}

// StateDigest hashes the durable (home-tier plus TCB badblock) state of a
// Salus system: everything Checkpoint persists and Recover reconstructs.
// Two systems with equal digests are byte-identical from the journal's
// point of view; resident-page device state is excluded because it is
// rebuilt on demand from the home state. Dirty resident chunks not yet
// written back make the digest diverge from a recovered twin — call it
// right after Checkpoint, when the home tier is current.
func (s *System) StateDigest() [32]byte {
	h := sha256.New()
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], s.epoch)
	h.Write(tmp[:])
	h.Write(s.cxlData)
	for i := range s.macSectors {
		enc := s.macSectors[i].Encode()
		h.Write(enc[:])
	}
	for i := range s.collapsed {
		enc := s.collapsed[i].Encode()
		h.Write(enc[:])
	}
	if s.cxlSplit != nil {
		h.Write([]byte{1})
		for i := range s.cxlSplit {
			enc := s.cxlSplit[i].Encode()
			h.Write(enc[:])
			if s.splitDirty[i] {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	} else {
		h.Write([]byte{0})
	}
	writeInts := func(vs []int) {
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(vs)))
		h.Write(tmp[:])
		for _, v := range vs {
			binary.LittleEndian.PutUint64(tmp[:], uint64(v))
			h.Write(tmp[:])
		}
	}
	writeInts(s.PoisonedChunks())
	writeInts(s.QuarantinedFrames())
	writeInts(s.PinnedPages())
	var out [32]byte
	h.Sum(out[:0])
	return out
}
