package securemem

import (
	"fmt"

	"github.com/salus-sim/salus/internal/security/counters"
)

// Conventional model internals. Metadata is bound to the *physical*
// location of the data: the home tier has its own counter sectors, MACs,
// and tree, and the device tier has another set indexed by frame address.
// Moving a page therefore decrypts every sector with source-tier metadata
// and re-encrypts it with destination-tier metadata, in both directions —
// the overhead the paper's motivation section measures at 2.04×.

// convHomePair returns the counter pair of a home-tier sector, verifying
// the counter sector's freshness against the home tree.
func (s *System) convHomePair(homeAddr HomeAddr) (major, minor uint64, err error) {
	secIdx := homeAddr.Sector(s.geo.SectorSize)
	ci := secIdx / counters.ConvMinors
	bump(&s.stats.BMTVerifies)
	if err := s.convCXLTree.VerifyCached(ci, s.convCXLCtrs[ci].Encode()); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrFreshness, err)
	}
	major, minor = s.convCXLCtrs[ci].Pair(secIdx % counters.ConvMinors)
	return major, minor, nil
}

// convDevPair is convHomePair for the device tier.
func (s *System) convDevPair(devAddr DevAddr) (major, minor uint64, err error) {
	secIdx := devAddr.Sector(s.geo.SectorSize)
	ci := secIdx / counters.ConvMinors
	bump(&s.stats.BMTVerifies)
	if err := s.convDevTree.VerifyCached(ci, s.convDevCtrs[ci].Encode()); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrFreshness, err)
	}
	major, minor = s.convDevCtrs[ci].Pair(secIdx % counters.ConvMinors)
	return major, minor, nil
}

// convBumpHome increments a home-tier sector counter, re-encrypting the
// covered region on overflow, and updates the home tree.
func (s *System) convBumpHome(homeAddr HomeAddr) (major, minor uint64, err error) {
	secIdx := homeAddr.Sector(s.geo.SectorSize)
	ci := secIdx / counters.ConvMinors
	cs := &s.convCXLCtrs[ci]
	old := *cs
	if cs.Inc(secIdx % counters.ConvMinors) {
		if err := s.convReencryptHomeRegion(ci, &old, cs, secIdx); err != nil {
			return 0, 0, err
		}
	}
	bump(&s.stats.BMTUpdates)
	if err := s.convCXLTree.Update(ci, cs.Encode()); err != nil {
		return 0, 0, err
	}
	major, minor = cs.Pair(secIdx % counters.ConvMinors)
	return major, minor, nil
}

// convBumpDev is convBumpHome for the device tier.
func (s *System) convBumpDev(devAddr DevAddr) (major, minor uint64, err error) {
	secIdx := devAddr.Sector(s.geo.SectorSize)
	ci := secIdx / counters.ConvMinors
	cs := &s.convDevCtrs[ci]
	old := *cs
	if cs.Inc(secIdx % counters.ConvMinors) {
		if err := s.convReencryptDevRegion(ci, &old, cs, secIdx); err != nil {
			return 0, 0, err
		}
	}
	bump(&s.stats.BMTUpdates)
	if err := s.convDevTree.Update(ci, cs.Encode()); err != nil {
		return 0, 0, err
	}
	major, minor = cs.Pair(secIdx % counters.ConvMinors)
	return major, minor, nil
}

// convReencryptHomeRegion re-encrypts the 1 KiB home region covered by
// counter sector ci after an overflow (skipSec keeps its old ciphertext
// invalid and is re-written by the caller right after).
func (s *System) convReencryptHomeRegion(ci int, old, cur *counters.ConventionalSector, skipSec int) error {
	ss := s.geo.SectorSize
	pt := make([]byte, ss)
	for k := 0; k < counters.ConvMinors; k++ {
		secIdx := ci*counters.ConvMinors + k
		if secIdx*ss >= len(s.cxlData) {
			break
		}
		if secIdx == skipSec {
			continue
		}
		ha := uint64(secIdx * ss)
		ct := s.cxlData[ha : ha+uint64(ss)]
		oldMajor, oldMinor := old.Pair(k)
		if err := s.eng.DecryptSector(pt, ct, ha, oldMajor, oldMinor); err != nil {
			return err
		}
		newMajor, newMinor := cur.Pair(k)
		if err := s.eng.EncryptSector(ct, pt, ha, newMajor, newMinor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(ct, ha, newMajor, newMinor)
		if err != nil {
			return err
		}
		s.convCXLMACs[secIdx] = mac
		bump(&s.stats.OverflowReEncryptions)
	}
	return nil
}

// convReencryptDevRegion is the device-tier counterpart, re-encrypting only
// resident sectors (frames may be partially mapped at region edges).
func (s *System) convReencryptDevRegion(ci int, old, cur *counters.ConventionalSector, skipSec int) error {
	ss := s.geo.SectorSize
	pt := make([]byte, ss)
	for k := 0; k < counters.ConvMinors; k++ {
		secIdx := ci*counters.ConvMinors + k
		if secIdx*ss >= len(s.devData) {
			break
		}
		if secIdx == skipSec {
			continue
		}
		fi := secIdx * ss / s.geo.PageSize
		if s.frames[fi].homePage < 0 {
			continue
		}
		da := uint64(secIdx * ss)
		ct := s.devData[da : da+uint64(ss)]
		oldMajor, oldMinor := old.Pair(k)
		if err := s.eng.DecryptSector(pt, ct, da, oldMajor, oldMinor); err != nil {
			return err
		}
		newMajor, newMinor := cur.Pair(k)
		if err := s.eng.EncryptSector(ct, pt, da, newMajor, newMinor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(ct, da, newMajor, newMinor)
		if err != nil {
			return err
		}
		s.convDevMACs[secIdx] = mac
		bump(&s.stats.OverflowReEncryptions)
	}
	return nil
}

// convAccess performs one resident-sector access under the conventional
// model. All crypto uses the *device* address while the data is resident.
func (s *System) convAccess(homeAddr HomeAddr, devAddr DevAddr, fi int, out []byte, isWrite bool, in []byte) error {
	ct := s.devData[devAddr : devAddr+32]
	if !isWrite {
		major, minor, err := s.convDevPair(devAddr)
		if err != nil {
			return err
		}
		bump(&s.stats.MACVerifies)
		if !s.eng.VerifyMAC(ct, uint64(devAddr), major, minor, s.convDevMACs[devAddr.Sector(s.geo.SectorSize)]) {
			return fmt.Errorf("%w: device address %#x", ErrIntegrity, uint64(devAddr))
		}
		return s.eng.DecryptSector(out, ct, uint64(devAddr), major, minor)
	}
	major, minor, err := s.convBumpDev(devAddr)
	if err != nil {
		return err
	}
	if err := s.eng.EncryptSector(ct, in, uint64(devAddr), major, minor); err != nil {
		return err
	}
	mac, err := s.eng.MAC(ct, uint64(devAddr), major, minor)
	if err != nil {
		return err
	}
	s.convDevMACs[devAddr.Sector(s.geo.SectorSize)] = mac
	s.frames[fi].dirty |= 1 << uint(s.chunkInPage(homeAddr))
	return nil
}

// convMigrateIn moves a page into a frame: every sector is MAC-verified and
// decrypted under its home metadata, then re-encrypted under fresh device
// metadata. These are the relocation re-encryptions Salus eliminates.
func (s *System) convMigrateIn(page, fi int, src, dst []byte) error {
	ss := s.geo.SectorSize
	pt := make([]byte, ss)
	for i := 0; i < s.geo.SectorsPerPage(); i++ {
		if s.poisoned[page*s.geo.ChunksPerPage()+i*ss/s.geo.ChunkSize] {
			// Quarantined home chunk: its data is lost, so the sector is
			// neither verified nor moved. Accesses to it are refused before
			// they reach the frame copy.
			bump(&s.stats.PoisonSkippedRelocations)
			continue
		}
		ha := uint64(page*s.geo.PageSize + i*ss)
		da := uint64(fi*s.geo.PageSize + i*ss)
		srcCT := src[i*ss : (i+1)*ss]
		major, minor, err := s.convHomePair(HomeAddr(ha))
		if err != nil {
			return err
		}
		bump(&s.stats.MACVerifies)
		if !s.eng.VerifyMAC(srcCT, ha, major, minor, s.convCXLMACs[int(ha)/ss]) {
			return fmt.Errorf("%w: home address %#x during migration", ErrIntegrity, ha)
		}
		if err := s.eng.DecryptSector(pt, srcCT, ha, major, minor); err != nil {
			return err
		}
		dMajor, dMinor, err := s.convBumpDev(DevAddr(da))
		if err != nil {
			return err
		}
		dstCT := dst[i*ss : (i+1)*ss]
		if err := s.eng.EncryptSector(dstCT, pt, da, dMajor, dMinor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(dstCT, da, dMajor, dMinor)
		if err != nil {
			return err
		}
		s.convDevMACs[int(da)/ss] = mac
		bump(&s.stats.RelocationReEncryptions)
	}
	return nil
}

// convEvict writes the whole page back (GPU page tables have no dirty bit,
// so the conventional model cannot skip clean data), decrypting with
// device metadata and re-encrypting with home metadata.
func (s *System) convEvict(fi int) error {
	if err := s.gateEvictWrites(fi, true); err != nil {
		return err
	}
	f := &s.frames[fi]
	page := f.homePage
	ss := s.geo.SectorSize
	pt := make([]byte, ss)
	bump(&s.stats.FullPageWritebacks)
	for i := 0; i < s.geo.SectorsPerPage(); i++ {
		if s.poisoned[page*s.geo.ChunksPerPage()+i*ss/s.geo.ChunkSize] {
			// Quarantined home chunk: the writeback target (or, for chunks
			// skipped on the way in, the frame copy) is invalid — drop the
			// sector and account for it.
			bump(&s.stats.PoisonSkippedRelocations)
			continue
		}
		ha := uint64(page*s.geo.PageSize + i*ss)
		da := uint64(fi*s.geo.PageSize + i*ss)
		ct := s.devData[da : da+uint64(ss)]
		major, minor, err := s.convDevPair(DevAddr(da))
		if err != nil {
			return err
		}
		bump(&s.stats.MACVerifies)
		if !s.eng.VerifyMAC(ct, da, major, minor, s.convDevMACs[int(da)/ss]) {
			return fmt.Errorf("%w: device address %#x during eviction", ErrIntegrity, da)
		}
		if err := s.eng.DecryptSector(pt, ct, da, major, minor); err != nil {
			return err
		}
		hMajor, hMinor, err := s.convBumpHome(HomeAddr(ha))
		if err != nil {
			return err
		}
		dstCT := s.cxlData[ha : ha+uint64(ss)]
		if err := s.eng.EncryptSector(dstCT, pt, ha, hMajor, hMinor); err != nil {
			return err
		}
		mac, err := s.eng.MAC(dstCT, ha, hMajor, hMinor)
		if err != nil {
			return err
		}
		s.convCXLMACs[int(ha)/ss] = mac
		bump(&s.stats.RelocationReEncryptions)
	}
	return nil
}
