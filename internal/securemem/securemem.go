// Package securemem is the functional core of the Salus reproduction: a
// two-tier (GPU-device + CXL-expansion) protected memory with transparent
// page migration, implemented with real cryptography.
//
// Both tiers are untrusted: data is stored as counter-mode ciphertext,
// every sector carries a truncated keyed MAC, and counter blocks are
// covered by per-tier Bonsai Merkle Trees whose roots are TCB state. Three
// protection models are selectable:
//
//   - ModelNone: no protection (the paper's normalisation baseline).
//   - ModelConventional: metadata bound to the *physical* location, as in
//     prior GPU security work — every page migration decrypts with the
//     source tier's metadata and re-encrypts with the destination's.
//   - ModelSalus: the paper's unified model — security computations always
//     use the CXL (home) address, ciphertext migrates verbatim, MAC sectors
//     carry the collapsed major counter and are fetched on first access,
//     and only dirty chunks are written back on eviction.
//
// The operation counters exposed by Stats let callers observe the paper's
// central claims directly (e.g. zero relocation re-encryptions under
// Salus).
package securemem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/security/bmt"
	"github.com/salus-sim/salus/internal/security/counters"
	"github.com/salus-sim/salus/internal/security/cryptoeng"
	"github.com/salus-sim/salus/internal/security/maclib"
	"github.com/salus-sim/salus/internal/sim"
)

// Model selects the protection scheme.
type Model int

const (
	// ModelNone stores plaintext with no metadata.
	ModelNone Model = iota
	// ModelConventional binds metadata to physical locations.
	ModelConventional
	// ModelSalus is the paper's relocation-friendly unified model.
	ModelSalus
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ModelNone:
		return "none"
	case ModelConventional:
		return "conventional"
	case ModelSalus:
		return "salus"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Sentinel errors. Integrity and freshness failures indicate an attack (or
// corruption) was detected; they are returned, never masked.
var (
	ErrOutOfRange = errors.New("securemem: address out of range")
	ErrIntegrity  = errors.New("securemem: MAC verification failed (tampered or spliced data)")
	ErrFreshness  = errors.New("securemem: integrity tree verification failed (replayed metadata)")
	// ErrGeometry reports a configuration whose geometry is incompatible
	// with the crypto engine (today: a SectorSize other than the engine's
	// fixed cryptoeng.SectorSize, which the sector-granular access paths
	// hardcode).
	ErrGeometry = errors.New("securemem: geometry incompatible with crypto engine")
)

// Config sizes a System.
type Config struct {
	Geometry    config.Geometry
	Model       Model
	TotalPages  int // size of the CXL (home) address space, in pages
	DevicePages int // device-tier capacity, in pages
	AESKey      []byte
	MACKey      []byte

	// Shards selects the page-partition count used by NewConcurrent for
	// parallel access (see shard.go). Zero selects DefaultShards; the
	// count is clamped so every shard owns at least one device frame.
	// Plain New ignores it: a bare System is always single-threaded.
	Shards int

	// Backing, when non-nil, supplies externally owned storage for both
	// tiers instead of letting New allocate them — the mechanism by
	// which per-tenant engines share one physical pool (see backing.go).
	// Slice lengths must match TotalPages/DevicePages under Geometry.
	Backing *Backing
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.Geometry.SectorSize != cryptoeng.SectorSize:
		return fmt.Errorf("%w: sector size must be %d bytes, have %d",
			ErrGeometry, cryptoeng.SectorSize, c.Geometry.SectorSize)
	case c.Shards < 0:
		return errors.New("securemem: Shards must be non-negative")
	case c.TotalPages <= 0:
		return errors.New("securemem: TotalPages must be positive")
	case c.DevicePages <= 0:
		return errors.New("securemem: DevicePages must be positive")
	case c.DevicePages > c.TotalPages:
		return errors.New("securemem: device tier larger than home space")
	}
	return c.validateBacking()
}

// OpStats counts the operations the paper's analysis cares about.
type OpStats struct {
	Reads  uint64
	Writes uint64

	PageMigrationsIn uint64 // CXL -> device page copies
	PageEvictions    uint64 // device -> CXL

	// RelocationReEncryptions counts sectors decrypted+re-encrypted purely
	// because data changed physical location. Salus's headline property is
	// that this stays zero on migration-in and is limited to one collapse
	// pass per dirty chunk on eviction.
	RelocationReEncryptions uint64
	CollapseReEncryptions   uint64 // sectors re-encrypted by counter collapse
	OverflowReEncryptions   uint64 // sectors re-encrypted by minor-counter overflow

	LazyMACFetches       uint64 // MAC sectors fetched on first access (Salus)
	DirtyChunkWritebacks uint64
	CleanChunksSkipped   uint64 // chunks not written back thanks to dirty tracking
	FullPageWritebacks   uint64 // conventional model page-granularity writebacks

	MACVerifies uint64
	BMTVerifies uint64
	BMTUpdates  uint64

	KeyRotations uint64 // completed ReKey sweeps

	// Hardware fault accounting (populated only when a fault.Injector is
	// attached). All fields are monotone uint64s like the rest of OpStats.
	TransientFaults       uint64 // link faults observed (including each burst attempt)
	PoisonFaults          uint64 // uncorrectable media faults observed
	StuckBitFaults        uint64 // stuck-at media faults observed
	Retries               uint64 // transient-fault retries issued
	RetryBackoffCycles    uint64 // simulated cycles spent in retry backoff
	TransparentRecoveries uint64 // device faults survived with no data loss
	FramesQuarantined     uint64 // device frames retired
	ChunksPoisoned        uint64 // home chunks quarantined (data lost)
	PagesPinned           uint64 // pages degraded to home-tier direct access
	PoisonPageDrops       uint64 // resident pages unmapped by a frame quarantine
	// PoisonSkippedRelocations counts sectors the conventional model's
	// migration/eviction sweeps skipped because their home chunk is
	// quarantined; together with RelocationReEncryptions it keeps the
	// per-page sector accounting exact under faults.
	PoisonSkippedRelocations uint64

	// CXL link degradation accounting (populated only when a link.Link is
	// attached; see link.go). The first block mirrors the link's own
	// counters; the second tracks the dirty-writeback queue. All fields
	// are monotone, including the queue high-water mark.
	LinkFlaps             uint64 // observed link-state transitions
	LinkDownRefusals      uint64 // home transfers the link refused
	LinkFastFails         uint64 // home transfers the open breaker fast-failed
	BreakerOpens          uint64 // closed/half-open -> open transitions
	BreakerCloses         uint64 // open/half-open -> closed transitions
	BreakerProbes         uint64 // half-open probe admissions
	LinkDegradedTransfers uint64 // transfers that paid a brownout surcharge
	LinkLatencyCycles     uint64 // total brownout cycles charged
	WritebacksQueued      uint64 // evictions parked on the writeback queue
	WritebacksDrained     uint64 // parked writebacks completed on recovery
	WritebacksDropped     uint64 // parks refused by a full queue (ErrQueueFull)
	WritebackQueuePeak    uint64 // queue high-water mark

	// Incremental checkpoint accounting (see checkpoint.go). A checkpoint
	// journals exactly one page record per dirty page, so
	// CheckpointPages is also the journal record count net of commits.
	Checkpoints          uint64 // committed checkpoint epochs
	CheckpointPages      uint64 // page records journaled
	CheckpointWritebacks uint64 // dirty resident chunks collapsed home by checkpoints
	CheckpointBytes      uint64 // journal bytes written (records + commits)
	CheckpointCycles     uint64 // simulated cycles charged to checkpointing
}

// frame describes one device-tier page frame.
type frame struct {
	homePage    int // index of the resident page, -1 when free
	lru         uint64
	dirty       uint64 // per-chunk dirty bitmask (fine-grained tracking)
	macIn       uint64 // per-block mask: MAC sector fetched (Salus fetch-on-access)
	ctrIn       uint64 // per-chunk mask: device counter group initialised
	quarantined bool   // retired after an uncorrectable media fault
	parked      bool   // eviction deferred to the dirty-writeback queue (link outage)
}

// System is a two-tier protected memory.
type System struct {
	cfg Config
	geo config.Geometry
	eng *cryptoeng.Engine

	cxlData []byte // home-tier store (ciphertext, or plaintext for ModelNone)
	devData []byte // device-tier store

	frames    []frame
	pageTable []int // home page -> frame index, -1 if not resident
	lruClock  uint64

	// Salus metadata (home-indexed).
	macSectors []maclib.Sector            // one per home 128 B block
	collapsed  []counters.CollapsedSector // one per 8 home chunks
	cxlTree    *bmt.Tree                  // over collapsed sectors
	devGroups  []counters.IFGroup         // one per device-frame chunk
	devTree    *bmt.Tree                  // over device IF counter sectors
	cxlSplit   []counters.CXLSplitSector  // Fig. 6 state, allocated on first WriteThrough
	splitDirty []bool                     // chunks currently in split state
	splitTree  *bmt.Tree                  // freshness over split sectors (one leaf per chunk)

	// Conventional metadata (location-indexed, one set per tier).
	convCXLCtrs []counters.ConventionalSector // per 1 KiB of home space
	convDevCtrs []counters.ConventionalSector // per 1 KiB of device space
	convCXLMACs []uint64                      // per home sector
	convDevMACs []uint64                      // per device sector
	convCXLTree *bmt.Tree
	convDevTree *bmt.Tree

	// Sharding state (see shard.go). nShards is 1 for a bare New system;
	// locks guards the cross-shard state, splitArmed publishes the lazy
	// split-state allocation to concurrent shards.
	nShards    int
	locks      sysLocks
	splitArmed atomic.Bool

	// Fault model (see fault.go). inj is nil when no faults are armed.
	// poisoned and pinned are TCB badblock state: they survive
	// Suspend/Resume through the TrustedRoot. Both are indexed slices
	// (never resized after New) with atomic element-count fast paths, so
	// shard-disjoint accesses can consult them without a global lock.
	inj       fault.Injector
	retry     RetryPolicy
	clock     *sim.Engine
	poisoned  []bool // home chunk -> quarantined
	poisonedN uint64 // atomic count of quarantined chunks
	pinned    []bool // home page -> pinned to home-tier access
	pinnedN   uint64 // atomic count of pinned pages

	// Link degradation state (see link.go). lnk is nil when no link model
	// is armed; wbq holds the frame indices of parked dirty writebacks in
	// FIFO drain order.
	lnk    *link.Link
	wbq    []int
	wbqCap int

	// Incremental checkpoint state (ModelSalus, see checkpoint.go): the
	// committed epoch and the per-page dirty map feeding the next epoch.
	epoch     uint64
	ckptDirty []bool

	stats OpStats
}

// New builds a System. All pages start zero-filled and resident only in the
// home tier, already encrypted under the initial counters for the secure
// models.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AESKey == nil {
		cfg.AESKey = []byte("salus-default-k!")
	}
	if cfg.MACKey == nil {
		cfg.MACKey = []byte("salus-default-mac-key")
	}
	eng, err := cryptoeng.New(cfg.AESKey, cfg.MACKey, maclib.MACBits)
	if err != nil {
		return nil, err
	}
	g := cfg.Geometry
	cxlData := make([]byte, cfg.TotalPages*g.PageSize)
	devData := make([]byte, cfg.DevicePages*g.PageSize)
	if cfg.Backing != nil {
		// Shared backing: adopt the caller's windows. The engine's
		// starting-state contract (initialEncrypt assumes zero plaintext)
		// requires both tiers zeroed, and a recovered or re-created
		// tenant engine inherits whatever its predecessor left behind.
		cxlData, devData = cfg.Backing.Home, cfg.Backing.Device
		clear(cxlData)
		clear(devData)
	}
	s := &System{
		cfg:       cfg,
		geo:       g,
		eng:       eng,
		nShards:   1,
		cxlData:   cxlData,
		devData:   devData,
		frames:    make([]frame, cfg.DevicePages),
		pageTable: make([]int, cfg.TotalPages),
		poisoned:  make([]bool, cfg.TotalPages*g.ChunksPerPage()),
		pinned:    make([]bool, cfg.TotalPages),
	}
	for i := range s.frames {
		s.frames[i].homePage = -1
	}
	for i := range s.pageTable {
		s.pageTable[i] = -1
	}
	// Size of the trusted-node caches that accelerate repeated tree
	// verifications (models the hardware BMT caches).
	const trustCacheEntries = 4096
	switch cfg.Model {
	case ModelNone:
		// Plaintext; nothing else to set up.
	case ModelSalus:
		homeBlocks := cfg.TotalPages * g.BlocksPerPage()
		homeChunks := cfg.TotalPages * g.ChunksPerPage()
		s.macSectors = make([]maclib.Sector, homeBlocks)
		s.collapsed = make([]counters.CollapsedSector, (homeChunks+counters.CollapsedMajors-1)/counters.CollapsedMajors)
		s.cxlTree, err = bmt.New(eng, len(s.collapsed))
		if err != nil {
			return nil, err
		}
		devChunks := cfg.DevicePages * g.ChunksPerPage()
		s.devGroups = make([]counters.IFGroup, devChunks)
		s.devTree, err = bmt.New(eng, (devChunks+counters.GroupsPerSector-1)/counters.GroupsPerSector)
		if err != nil {
			return nil, err
		}
		s.cxlTree.SetTrustCache(trustCacheEntries)
		s.devTree.SetTrustCache(trustCacheEntries)
		if err := s.initialEncrypt(); err != nil {
			return nil, err
		}
		// Allocated after initialEncrypt so the deterministic initial
		// state counts as clean: untouched pages need no journal records.
		s.ckptDirty = make([]bool, cfg.TotalPages)
	case ModelConventional:
		homeSectors := cfg.TotalPages * g.SectorsPerPage()
		devSectors := cfg.DevicePages * g.SectorsPerPage()
		s.convCXLCtrs = make([]counters.ConventionalSector, (homeSectors+counters.ConvMinors-1)/counters.ConvMinors)
		s.convDevCtrs = make([]counters.ConventionalSector, (devSectors+counters.ConvMinors-1)/counters.ConvMinors)
		s.convCXLMACs = make([]uint64, homeSectors)
		s.convDevMACs = make([]uint64, devSectors)
		s.convCXLTree, err = bmt.New(eng, len(s.convCXLCtrs))
		if err != nil {
			return nil, err
		}
		s.convDevTree, err = bmt.New(eng, len(s.convDevCtrs))
		if err != nil {
			return nil, err
		}
		s.convCXLTree.SetTrustCache(trustCacheEntries)
		s.convDevTree.SetTrustCache(trustCacheEntries)
		if err := s.initialEncrypt(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("securemem: unknown model %d", cfg.Model)
	}
	return s, nil
}

// initialEncrypt converts the zero-filled home store into valid ciphertext
// under the initial (zero) counters, with matching MACs, so that the very
// first read of any sector verifies. Both secure models start with every
// (major, minor) pair at zero, so whole pages encrypt through the batch
// path (one IV encode per run) and the MACs ride a pinned Session scratch.
func (s *System) initialEncrypt() error {
	ss := s.geo.SectorSize
	ps := s.geo.PageSize
	spp := s.geo.SectorsPerPage()
	buf := make([]byte, ps)
	minors := make([]uint64, spp)
	sess := s.eng.NewSession()
	for page := 0; page < s.cfg.TotalPages; page++ {
		base := page * ps
		pg := s.cxlData[base : base+ps]
		if err := s.eng.EncryptSectors(buf, pg, uint64(base), 0, minors); err != nil {
			return err
		}
		copy(pg, buf)
		for i := 0; i < spp; i++ {
			addr := HomeAddr(base + i*ss)
			mac, err := sess.MAC(pg[i*ss:(i+1)*ss], uint64(addr), 0, 0)
			if err != nil {
				return err
			}
			if err := s.storeHomeMAC(addr, mac); err != nil {
				return err
			}
		}
	}
	return s.rebuildHomeTrees()
}

// homeCounterPair returns the current (major, minor) for a home-tier
// sector under the active model.
func (s *System) homeCounterPair(addr HomeAddr) (major, minor uint64) {
	switch s.cfg.Model {
	case ModelSalus:
		chunk := addr.Chunk(s.geo.ChunkSize)
		sector := s.collapsed[chunk/counters.CollapsedMajors]
		return uint64(sector.Majors[chunk%counters.CollapsedMajors]), 0
	case ModelConventional:
		secIdx := addr.Sector(s.geo.SectorSize)
		cs := s.convCXLCtrs[secIdx/counters.ConvMinors]
		return cs.Pair(secIdx % counters.ConvMinors)
	}
	return 0, 0
}

// storeHomeMAC records the MAC of a home-tier sector. Every home data or
// MAC mutation funnels through here, making it (with salusSetHomeMajor)
// the chokepoint for checkpoint dirty-page tracking.
func (s *System) storeHomeMAC(addr HomeAddr, mac uint64) error {
	switch s.cfg.Model {
	case ModelSalus:
		s.markCkptDirty(addr.Page(s.geo.PageSize))
		block := int(addr) / s.geo.BlockSize
		secInBlock := (int(addr) % s.geo.BlockSize) / s.geo.SectorSize
		return s.macSectors[block].SetMAC(secInBlock, mac)
	case ModelConventional:
		s.convCXLMACs[addr.Sector(s.geo.SectorSize)] = mac
	}
	return nil
}

// homeMAC returns the stored MAC of a home-tier sector.
func (s *System) homeMAC(addr HomeAddr) uint64 {
	switch s.cfg.Model {
	case ModelSalus:
		block := int(addr) / s.geo.BlockSize
		secInBlock := (int(addr) % s.geo.BlockSize) / s.geo.SectorSize
		return s.macSectors[block].MACs[secInBlock]
	case ModelConventional:
		return s.convCXLMACs[addr.Sector(s.geo.SectorSize)]
	}
	return 0
}

// rebuildHomeTrees refreshes the home-tier integrity trees after bulk
// initialisation.
func (s *System) rebuildHomeTrees() error {
	switch s.cfg.Model {
	case ModelSalus:
		for i := range s.collapsed {
			if err := s.cxlTree.Update(i, s.collapsed[i].Encode()); err != nil {
				return err
			}
		}
	case ModelConventional:
		for i := range s.convCXLCtrs {
			if err := s.convCXLTree.Update(i, s.convCXLCtrs[i].Encode()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Size returns the home address-space size in bytes.
func (s *System) Size() uint64 { return uint64(len(s.cxlData)) }

// Model returns the active protection model.
func (s *System) Model() Model { return s.cfg.Model }

// Stats returns a copy of the operation counters.
func (s *System) Stats() OpStats {
	s.syncLinkStats()
	return s.stats
}

// ResidentPages returns how many pages currently sit in the device tier.
func (s *System) ResidentPages() int {
	n := 0
	for _, f := range s.frames {
		if f.homePage >= 0 {
			n++
		}
	}
	return n
}

// IsResident reports whether the page containing addr is in the device tier.
func (s *System) IsResident(addr HomeAddr) bool {
	if uint64(addr) >= s.Size() {
		return false
	}
	return s.pageTable[addr.Page(s.geo.PageSize)] >= 0
}
