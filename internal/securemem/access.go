package securemem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/salus-sim/salus/internal/fault"
)

// Read copies len(buf) bytes starting at addr into buf, transparently
// migrating the page to the device tier, decrypting, and verifying
// integrity and freshness. It returns ErrIntegrity/ErrFreshness when an
// attack is detected.
func (s *System) Read(addr HomeAddr, buf []byte) error {
	// Overflow-safe bounds check: addr+len can wrap for addresses near
	// 2^64, so never compute the sum.
	if uint64(addr) > s.Size() || uint64(len(buf)) > s.Size()-uint64(addr) {
		return ErrOutOfRange
	}
	bump(&s.stats.Reads)
	ss := uint64(s.geo.SectorSize)
	base := uint64(addr)
	for off := uint64(0); off < uint64(len(buf)); {
		secBase := (base + off) / ss * ss
		inSec := base + off - secBase
		n := ss - inSec
		if rem := uint64(len(buf)) - off; n > rem {
			n = rem
		}
		var sector [32]byte
		if err := s.accessSector(HomeAddr(secBase), sector[:], false, nil); err != nil {
			return err
		}
		copy(buf[off:off+n], sector[inSec:inSec+n])
		off += n
	}
	return nil
}

// Write stores data at addr with read-modify-write at sector granularity.
// Each written sector gets a fresh counter, new ciphertext, and a new MAC.
func (s *System) Write(addr HomeAddr, data []byte) error {
	if uint64(addr) > s.Size() || uint64(len(data)) > s.Size()-uint64(addr) {
		return ErrOutOfRange
	}
	bump(&s.stats.Writes)
	ss := uint64(s.geo.SectorSize)
	base := uint64(addr)
	for off := uint64(0); off < uint64(len(data)); {
		secBase := (base + off) / ss * ss
		inSec := base + off - secBase
		n := ss - inSec
		if rem := uint64(len(data)) - off; n > rem {
			n = rem
		}
		var sector [32]byte
		if inSec != 0 || n != ss {
			// Partial sector: fetch current plaintext first.
			if err := s.accessSector(HomeAddr(secBase), sector[:], false, nil); err != nil {
				return err
			}
		}
		copy(sector[inSec:inSec+n], data[off:off+n])
		if err := s.accessSector(HomeAddr(secBase), sector[:], true, sector[:]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// accessSector performs one sector-granular access on the device tier,
// migrating the page in first when needed. For reads, out receives the
// plaintext. For writes, in is the full new plaintext of the sector.
//
// Fault handling: quarantined home chunks refuse access with ErrPoison;
// pinned pages are served by the home-tier direct path; an uncorrectable
// device fault retires the frame and — when no dirty data was lost —
// recovers transparently by remapping or (ModelSalus) pinning the page.
// The loop is bounded: each turn either completes the access, returns, or
// retires one more frame.
func (s *System) accessSector(addr HomeAddr, out []byte, isWrite bool, in []byte) error {
	if err := s.poisonCheck(addr); err != nil {
		return err
	}
	page := addr.Page(s.geo.PageSize)
	if s.pinned[page] {
		return s.pinnedAccess(addr, out, isWrite, in)
	}
	for tries := 0; tries <= len(s.frames); tries++ {
		fi := s.pageTable[page]
		if fi < 0 {
			var err error
			fi, err = s.migrateIn(page)
			if errors.Is(err, errNoFrames) {
				if s.cfg.Model == ModelSalus {
					// Graceful degradation: the whole device tier is
					// retired, so serve the page from home for good.
					s.pinPage(page)
					return s.pinnedAccess(addr, out, isWrite, in)
				}
				return fmt.Errorf("%w: no usable device frame left for page %d", ErrPoison, page)
			}
			if err != nil {
				return err
			}
		}
		f := &s.frames[fi]
		f.lru = atomic.AddUint64(&s.lruClock, 1)

		devAddr := FrameAddr(fi, s.geo.PageSize, addr.PageOffset(s.geo.PageSize))
		if err := s.gate(fault.TierDevice, uint64(devAddr), isWrite); err != nil {
			if !errors.Is(err, errUncorrectable) {
				return err // transient budget exhausted
			}
			if qerr := s.quarantineResident(fi); qerr != nil {
				return qerr // dirty chunks lost: wrapped ErrPoison
			}
			// Clean frame: the home copy is authoritative. Pin under Salus,
			// remap elsewhere (next loop turn) otherwise.
			if s.cfg.Model == ModelSalus {
				s.pinPage(page)
				return s.pinnedAccess(addr, out, isWrite, in)
			}
			continue
		}
		switch s.cfg.Model {
		case ModelNone:
			if isWrite {
				copy(s.devData[devAddr:devAddr+32], in)
				f.dirty |= 1 << uint(s.chunkInPage(addr))
			} else {
				copy(out, s.devData[devAddr:devAddr+32])
			}
			return nil
		case ModelSalus:
			return s.salusAccess(addr, devAddr, fi, out, isWrite, in)
		case ModelConventional:
			return s.convAccess(addr, devAddr, fi, out, isWrite, in)
		}
		return fmt.Errorf("securemem: unknown model %d", s.cfg.Model)
	}
	return fmt.Errorf("%w: no usable device frame left for page %d", ErrPoison, page)
}

func (s *System) chunkInPage(addr HomeAddr) int {
	return int(addr.PageOffset(s.geo.PageSize)) / s.geo.ChunkSize
}

func (s *System) blockInPage(addr HomeAddr) int {
	return int(addr.PageOffset(s.geo.PageSize)) / s.geo.BlockSize
}

// migrateIn copies a home page into a device frame, evicting a victim when
// no frame is free. Under Salus the ciphertext moves verbatim; under the
// conventional model every sector is decrypted with home-tier metadata and
// re-encrypted with device-tier metadata.
//
// Frames are partitioned by shard (see shard.go): a page only ever lands
// in a frame of its own shard, so every frame this function scans,
// evicts, or fills is owned by the caller's shard lock.
func (s *System) migrateIn(page int) (int, error) {
	// Gate the home-tier read side before any migration state moves: a
	// transient storm aborts cleanly and an uncorrectable home error
	// poisons the chunk instead of migrating garbage.
	if err := s.gateHomePageRead(page); err != nil {
		return -1, err
	}
	shard := s.pageShard(page)
	fi := s.freeFrame(shard)
	if fi < 0 {
		for {
			v := s.victimFrame(shard)
			if v < 0 {
				break
			}
			err := s.evict(v)
			if err == nil {
				fi = v
				break
			}
			var pe *parkedError
			if !errors.As(err, &pe) {
				return -1, err
			}
			// The victim parked on the writeback queue (link outage): it
			// stays resident and keeps serving; try the next-best victim.
		}
		if fi < 0 {
			// No free or evictable frame left in this shard. When frames
			// are parked awaiting the link, try to drain the shard's first
			// queued writeback to free one — on a live link this succeeds
			// immediately; during an outage the miss fails typed instead
			// of blocking or degrading the page to a permanent home-tier
			// pin.
			if qfi := s.wbqFirstOfShard(shard); qfi >= 0 {
				if err := s.drainFrame(qfi); err != nil {
					return -1, err
				}
				fi = s.freeFrame(shard)
			}
			if fi < 0 {
				return -1, errNoFrames
			}
		}
	}
	// Split chunks (direct CXL writes) must be checkpointed back to the
	// collapsed representation before their ciphertext can move verbatim.
	if s.cfg.Model == ModelSalus {
		if err := s.checkpointPage(page); err != nil {
			return -1, err
		}
	}
	bump(&s.stats.PageMigrationsIn)
	f := &s.frames[fi]
	*f = frame{homePage: page}
	s.pageTable[page] = fi
	f.lru = atomic.AddUint64(&s.lruClock, 1)

	src := s.cxlData[page*s.geo.PageSize : (page+1)*s.geo.PageSize]
	dst := s.devData[fi*s.geo.PageSize : (fi+1)*s.geo.PageSize]
	switch s.cfg.Model {
	case ModelNone, ModelSalus:
		// Ciphertext (or plaintext for ModelNone) moves verbatim: the
		// unified model needs no re-encryption on relocation. Device
		// counter groups and MAC sectors arrive lazily on first access.
		copy(dst, src)
	case ModelConventional:
		if err := s.convMigrateIn(page, fi, src, dst); err != nil {
			return -1, err
		}
	}
	return fi, nil
}

// freeFrame returns a free, non-quarantined frame of the given shard, or
// -1. The stride walk visits the same frames in the same order as the
// pre-sharding full scan when nShards is 1.
func (s *System) freeFrame(shard int) int {
	for i := shard; i < len(s.frames); i += s.nShards {
		if s.frames[i].homePage < 0 && !s.frames[i].quarantined {
			return i
		}
	}
	return -1
}

// victimFrame returns the LRU frame index among the shard's usable
// frames, or -1 when every frame has been quarantined or parked on the
// writeback queue.
func (s *System) victimFrame(shard int) int {
	best := -1
	for i := shard; i < len(s.frames); i += s.nShards {
		if s.frames[i].quarantined || s.frames[i].parked {
			continue
		}
		if best < 0 || s.frames[i].lru < s.frames[best].lru {
			best = i
		}
	}
	return best
}

// evict writes a frame back to the home tier per the active model and
// frees it. An eviction the link refuses parks the frame on the
// dirty-writeback queue instead (see link.go); PageEvictions counts only
// completed evictions, so the tier-conservation and per-chunk eviction
// arithmetic stay exact when an eviction parks or aborts.
func (s *System) evict(fi int) error {
	f := &s.frames[fi]
	if f.homePage < 0 {
		return nil
	}
	if f.parked {
		// Parked frames leave only through the writeback queue (drainOne
		// clears the flag first), preserving the FIFO drain order.
		return &parkedError{cause: ErrLinkDown}
	}
	var err error
	switch s.cfg.Model {
	case ModelNone:
		err = s.noneEvict(fi)
	case ModelSalus:
		err = s.salusEvict(fi)
	case ModelConventional:
		err = s.convEvict(fi)
	}
	if err != nil {
		if errors.Is(err, ErrLinkDown) || errors.Is(err, ErrDegraded) {
			return s.park(fi, err)
		}
		return err
	}
	bump(&s.stats.PageEvictions)
	s.pageTable[f.homePage] = -1
	f.homePage = -1
	f.dirty, f.macIn, f.ctrIn = 0, 0, 0
	return nil
}

// noneEvict copies dirty chunks back for the unprotected model.
func (s *System) noneEvict(fi int) error {
	if err := s.gateEvictWrites(fi, false); err != nil {
		return err
	}
	f := &s.frames[fi]
	page := f.homePage
	cs := s.geo.ChunkSize
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		if f.dirty&(1<<uint(c)) == 0 {
			continue
		}
		if s.poisoned[page*s.geo.ChunksPerPage()+c] {
			// The writeback target died under the eviction gate: the chunk
			// is quarantined and its data dropped.
			continue
		}
		srcOff := fi*s.geo.PageSize + c*cs
		dstOff := page*s.geo.PageSize + c*cs
		copy(s.cxlData[dstOff:dstOff+cs], s.devData[srcOff:srcOff+cs])
	}
	return nil
}

// Flush evicts every resident page, as at kernel completion. During a
// link outage, evictions the link refuses park on the dirty-writeback
// queue — those pages stay resident (check QueuedWritebacks) and drain
// on recovery via DrainWritebacks; Flush itself fails only on real
// errors, including ErrQueueFull backpressure when a park does not fit.
func (s *System) Flush() error {
	for fi := range s.frames {
		if s.frames[fi].parked {
			continue
		}
		if err := s.evict(fi); err != nil {
			var pe *parkedError
			if errors.As(err, &pe) {
				continue
			}
			return err
		}
	}
	return nil
}
