package securemem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentParallelAccess(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  32,
		DevicePages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const opsEach = 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns a disjoint page range.
			base := HomeAddr(g * 4 * 4096)
			for i := 0; i < opsEach; i++ {
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				addr := base + HomeAddr(i%3)*4096
				if err := c.Write(addr, payload); err != nil {
					errs <- err
					return
				}
				got := make([]byte, len(payload))
				if err := c.Read(addr, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("g%d: got %q want %q", g, got, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Stats().PageMigrationsIn == 0 {
		t.Error("no migrations under concurrent load")
	}
	if c.Size() != 32*4096 {
		t.Errorf("Size = %d", c.Size())
	}
	if c.Model() != ModelSalus {
		t.Error("model wrong")
	}
	if c.Unwrap() == nil {
		t.Error("Unwrap nil")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDirectPath(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  16,
		DevicePages: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := HomeAddr((8 + g) * 4096) // pages never touched via cache
			for i := 0; i < 50; i++ {
				v := []byte{byte(g), byte(i)}
				if err := c.WriteThrough(addr, v); err != nil {
					errs <- err
					return
				}
				got := make([]byte, 2)
				if err := c.ReadThrough(addr, got); err != nil {
					errs <- err
					return
				}
				if got[0] != byte(g) || got[1] != byte(i) {
					errs <- fmt.Errorf("g%d i%d: got %v", g, i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMixedOpsStress hammers one Concurrent with goroutines
// running different operation mixes at once — cached reads/writes,
// direct-path accesses, whole-system flushes, and stats/metadata reads —
// so the race detector sees every lock interleaving the wrapper must
// serialize. Data checks are deliberately loose (a concurrent Flush may
// evict between a write and its read-back, but bytes must still match,
// since flushing never loses data).
func TestConcurrentMixedOpsStress(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  32,
		DevicePages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writers+readers on disjoint page ranges.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := HomeAddr(g * 4 * 4096)
			for i := 0; i < iters; i++ {
				payload := []byte(fmt.Sprintf("mix-g%d-i%d", g, i))
				addr := base + HomeAddr(i%4)*4096
				if err := c.Write(addr, payload); err != nil {
					fail(err)
					return
				}
				got := make([]byte, len(payload))
				if err := c.Read(addr, got); err != nil {
					fail(err)
					return
				}
				if !bytes.Equal(got, payload) {
					fail(fmt.Errorf("mix g%d i%d: got %q want %q", g, i, got, payload))
					return
				}
			}
		}(g)
	}
	// Direct-path traffic on its own pages (never migrated by the above).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := HomeAddr((24 + g) * 4096)
			for i := 0; i < iters; i++ {
				v := []byte{0xA0 | byte(g), byte(i)}
				if err := c.WriteThrough(addr, v); err != nil {
					fail(err)
					return
				}
				got := make([]byte, 2)
				if err := c.ReadThrough(addr, got); err != nil {
					fail(err)
					return
				}
				if got[0] != 0xA0|byte(g) {
					fail(fmt.Errorf("direct g%d i%d: got %v", g, i, got))
					return
				}
			}
		}(g)
	}
	// Flusher: forces evictions to interleave with every other op.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if err := c.Flush(); err != nil {
				fail(err)
				return
			}
		}
	}()
	// Stats/metadata readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st := c.Stats()
				if st.Writes > 0 && st.Reads == 0 && st.PageMigrationsIn > 0 {
					// Loose sanity only; the interesting property is that
					// Stats races with nothing under -race.
					fail(fmt.Errorf("implausible stats: %+v", st))
					return
				}
				if c.Size() != 32*4096 {
					fail(fmt.Errorf("Size = %d", c.Size()))
					return
				}
				if c.Model() != ModelSalus {
					fail(fmt.Errorf("model changed"))
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().PageEvictions == 0 {
		t.Error("stress run never evicted a page")
	}
}

func TestNewConcurrentValidation(t *testing.T) {
	if _, err := NewConcurrent(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
