package securemem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentParallelAccess(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  32,
		DevicePages: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const opsEach = 100
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns a disjoint page range.
			base := uint64(g * 4 * 4096)
			for i := 0; i < opsEach; i++ {
				payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
				addr := base + uint64(i%3)*4096
				if err := c.Write(addr, payload); err != nil {
					errs <- err
					return
				}
				got := make([]byte, len(payload))
				if err := c.Read(addr, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("g%d: got %q want %q", g, got, payload)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.Stats().PageMigrationsIn == 0 {
		t.Error("no migrations under concurrent load")
	}
	if c.Size() != 32*4096 {
		t.Errorf("Size = %d", c.Size())
	}
	if c.Model() != ModelSalus {
		t.Error("model wrong")
	}
	if c.Unwrap() == nil {
		t.Error("Unwrap nil")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDirectPath(t *testing.T) {
	c, err := NewConcurrent(Config{
		Geometry:    testGeo(),
		Model:       ModelSalus,
		TotalPages:  16,
		DevicePages: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := uint64((8 + g) * 4096) // pages never touched via cache
			for i := 0; i < 50; i++ {
				v := []byte{byte(g), byte(i)}
				if err := c.WriteThrough(addr, v); err != nil {
					errs <- err
					return
				}
				got := make([]byte, 2)
				if err := c.ReadThrough(addr, got); err != nil {
					errs <- err
					return
				}
				if got[0] != byte(g) || got[1] != byte(i) {
					errs <- fmt.Errorf("g%d i%d: got %v", g, i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNewConcurrentValidation(t *testing.T) {
	if _, err := NewConcurrent(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
