package securemem

import (
	"bytes"
	"errors"
	"testing"
)

func salusCfg(total, device int) Config {
	return Config{Geometry: testGeo(), Model: ModelSalus, TotalPages: total, DevicePages: device}
}

func TestSuspendResumeRoundTrip(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	want := map[HomeAddr][]byte{
		0:     []byte("page zero payload"),
		4100:  []byte("page one payload!"),
		12400: []byte("page three data.."),
	}
	for addr, data := range want {
		if err := s.Write(addr, data); err != nil {
			t.Fatal(err)
		}
	}
	// Mix in a direct write so split state is exercised.
	if err := s.WriteThrough(5*4096, []byte("direct")); err != nil {
		t.Fatal(err)
	}

	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Resume(salusCfg(8, 2), image, root)
	if err != nil {
		t.Fatal(err)
	}
	for addr, data := range want {
		got := make([]byte, len(data))
		if err := restored.Read(addr, got); err != nil {
			t.Fatalf("read %d after resume: %v", addr, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("addr %d: got %q, want %q", addr, got, data)
		}
	}
	got := make([]byte, 6)
	if err := restored.Read(5*4096, got); err != nil {
		t.Fatalf("direct-written data after resume: %v", err)
	}
	if string(got) != "direct" {
		t.Fatalf("direct data = %q", got)
	}
}

func TestSuspendResumeWithoutSplitState(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if root.HasSplit {
		t.Error("root claims split state that was never used")
	}
	restored, err := Resume(salusCfg(4, 2), image, root)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := restored.Read(0, got); err != nil || got[0] != 'x' {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestResumeRejectsTamperedCounters(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	// The counter section sits after magic + 6×8 header + data + MACs.
	g := testGeo()
	ctrOff := len(snapshotMagic) + 48 + 4*g.PageSize + 4*g.BlocksPerPage()*32
	image[ctrOff] ^= 0x01
	if _, err := Resume(salusCfg(4, 2), image, root); !errors.Is(err, ErrFreshness) {
		t.Errorf("tampered counter image: %v", err)
	}
}

func TestResumeDetectsTamperedDataOnAccess(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	image[len(snapshotMagic)+48] ^= 0x01 // first data byte
	restored, err := Resume(salusCfg(4, 2), image, root)
	if err != nil {
		t.Fatalf("resume should succeed (data tampering caught lazily): %v", err)
	}
	if err := restored.Read(0, make([]byte, 1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered data read: %v", err)
	}
}

func TestResumeRejectsReplayedImage(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("version-1")); err != nil {
		t.Fatal(err)
	}
	oldImage, _, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	// Resume, update, suspend again: the root moves on.
	s2, err := Resume(salusCfg(4, 2), oldImage, mustRoot(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(0, []byte("version-2")); err != nil {
		t.Fatal(err)
	}
	_, newRoot, err := s2.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the old image against the new trusted root must fail.
	if _, err := Resume(salusCfg(4, 2), oldImage, newRoot); !errors.Is(err, ErrFreshness) {
		t.Errorf("replayed image accepted: %v", err)
	}
}

// mustRoot re-suspends to fetch the current root (helper for the replay
// test's chronology).
func mustRoot(t *testing.T, s *System) TrustedRoot {
	t.Helper()
	_, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestResumeRejectsGarbage(t *testing.T) {
	if _, err := Resume(salusCfg(4, 2), []byte("not an image"), TrustedRoot{}); !errors.Is(err, ErrImageMismatch) {
		t.Errorf("garbage image: %v; want ErrImageMismatch", err)
	}
	if _, err := Resume(salusCfg(4, 2), nil, TrustedRoot{}); !errors.Is(err, ErrImageMismatch) {
		t.Errorf("nil image: %v; want ErrImageMismatch", err)
	}
	// Truncated image.
	s := newSys(t, ModelSalus, 4, 2)
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(salusCfg(4, 2), image[:len(image)/2], root); err == nil {
		t.Error("truncated image accepted")
	}
	// Disagreeing page counts must be rejected up front, typed — not by
	// mis-indexing the sections.
	if _, err := Resume(salusCfg(8, 2), image, root); !errors.Is(err, ErrImageMismatch) {
		t.Errorf("mismatched page count: %v; want ErrImageMismatch", err)
	}
	if _, err := Resume(salusCfg(4, 3), image, root); !errors.Is(err, ErrImageMismatch) {
		t.Errorf("mismatched device pages: %v; want ErrImageMismatch", err)
	}
	// Disagreeing layout geometry likewise.
	badGeo := salusCfg(4, 2)
	badGeo.Geometry.PageSize *= 2
	if _, err := Resume(badGeo, image, root); !errors.Is(err, ErrImageMismatch) {
		t.Errorf("mismatched page size: %v; want ErrImageMismatch", err)
	}
}

func TestSuspendRequiresSalus(t *testing.T) {
	s := newSys(t, ModelConventional, 4, 2)
	if _, _, err := s.Suspend(); err == nil {
		t.Error("conventional suspend accepted")
	}
	if _, err := Resume(Config{Geometry: testGeo(), Model: ModelConventional, TotalPages: 4, DevicePages: 2}, nil, TrustedRoot{}); err == nil {
		t.Error("conventional resume accepted")
	}
}

func TestResumeRejectsUnknownSplitState(t *testing.T) {
	// An image carrying split state when the trusted root says there is
	// none is an injection attempt.
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.WriteThrough(0, []byte("d")); err != nil {
		t.Fatal(err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	root.HasSplit = false
	if _, err := Resume(salusCfg(4, 2), image, root); !errors.Is(err, ErrFreshness) {
		t.Errorf("split-state injection: %v", err)
	}
}
