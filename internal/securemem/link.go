package securemem

import (
	"errors"
	"fmt"

	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/sim"
)

// CXL link degradation. A System can be armed with a link.Link that
// models the transport to the home tier as a first-class degradable
// resource: Up, Degraded (every home transfer pays a latency surcharge,
// charged to the sim clock), or Down (home transfers refused). The
// degraded-mode policy is:
//
//   - Device-memory hits keep serving: resident pages never touch the
//     link, so reads and writes to them proceed at full speed.
//   - Misses fail fast with ErrLinkDown (the plan refused the transfer)
//     or ErrDegraded (the circuit breaker fast-failed it) — never a
//     retry/backoff spin against a dead transport.
//   - Evictions that cannot reach the home tier park the frame on a
//     bounded dirty-writeback queue instead of blocking: the page stays
//     resident and keeps serving, and the queue's FIFO order is the
//     eventual writeback order. A full queue pushes back with
//     ErrQueueFull.
//   - On recovery, DrainWritebacks empties the queue in FIFO-per-page
//     order. Every drained page's home-tier state is first re-verified
//     against the integrity tree, so a link outage can never be used to
//     mask a rollback or splice of home state: the outage window ends
//     with ErrFreshness, not silent acceptance.
//
// Link refusals are modelled on data traffic to the home tier only, at
// the same chokepoints as the fault gates (gateHome, gateHomePageRead,
// gateEvictWrites); device-tier traffic never consults the link.

// Link-taxonomy sentinels, alongside ErrTransient/ErrPoison.
var (
	// ErrLinkDown reports a home-tier access refused because the CXL
	// link is down.
	ErrLinkDown = errors.New("securemem: CXL link down")
	// ErrDegraded reports a home-tier access fast-failed by the open
	// circuit breaker while the link recovers.
	ErrDegraded = errors.New("securemem: CXL link degraded (circuit breaker open)")
	// ErrQueueFull reports an eviction that could not park on the
	// dirty-writeback queue because it is at capacity.
	ErrQueueFull = errors.New("securemem: dirty-writeback queue full")
	// ErrWritebacksPending reports a Suspend attempted while parked
	// writebacks still wait for the link; drain them first.
	ErrWritebacksPending = errors.New("securemem: parked writebacks pending (drain before suspend)")
)

// DefaultWritebackQueueCap bounds the dirty-writeback queue when
// AttachLink is given no explicit capacity.
const DefaultWritebackQueueCap = 8

// parkedError reports an eviction that parked its frame on the
// writeback queue instead of completing. It wraps the link error that
// caused the park, so errors.Is sees ErrLinkDown/ErrDegraded through it.
type parkedError struct {
	cause error
}

func (e *parkedError) Error() string {
	return fmt.Sprintf("securemem: eviction parked on writeback queue: %v", e.cause)
}

func (e *parkedError) Unwrap() error { return e.cause }

// AttachLink arms the system with a CXL link model. queueCap bounds the
// dirty-writeback queue (non-positive selects DefaultWritebackQueueCap).
// clock may be nil, in which case degraded-transfer latency costs no
// simulated time (it is still accounted in LinkLatencyCycles).
func (s *System) AttachLink(l *link.Link, clock *sim.Engine, queueCap int) {
	s.lnk = l
	if clock != nil {
		s.clock = clock
	}
	if queueCap <= 0 {
		queueCap = DefaultWritebackQueueCap
	}
	s.wbqCap = queueCap
}

// Link returns the attached link model, or nil.
func (s *System) Link() *link.Link { return s.lnk }

// ForceLinkUp pins the attached link up (a no-op without one). The link
// model is shared hardware, so the reset serialises under the hardware
// lock against concurrent linkCheck consultations from other shards.
func (s *System) ForceLinkUp() {
	if s.lnk == nil {
		return
	}
	s.locks.hw.Lock()
	defer s.locks.hw.Unlock()
	s.lnk.ForceUp()
}

// linkCheck consults the link for one chunk-sized home-tier transfer:
// nil means the transfer may proceed (any brownout surcharge has been
// charged to the clock); otherwise the typed refusal to surface. It runs
// before the fault-retry gate so a dead link fails fast instead of
// consuming the transient retry/backoff budget. The link model and the
// clock it charges are shared across shards, so the consultation runs
// under the hardware lock (the nil fast path stays lock-free: AttachLink
// is setup-time).
func (s *System) linkCheck() error {
	if s.lnk == nil {
		return nil
	}
	s.locks.hw.Lock()
	defer s.locks.hw.Unlock()
	lat, err := s.lnk.Transfer()
	if err != nil {
		if errors.Is(err, link.ErrBreakerOpen) {
			return fmt.Errorf("%w: %v", ErrDegraded, err)
		}
		return fmt.Errorf("%w: %v", ErrLinkDown, err)
	}
	if lat > 0 && s.clock != nil {
		s.clock.Advance(lat)
	}
	return nil
}

// syncLinkStats mirrors the link's counters into OpStats.
func (s *System) syncLinkStats() {
	if s.lnk == nil {
		return
	}
	lst := s.lnk.Stats()
	s.stats.LinkFlaps = lst.Flaps
	s.stats.LinkDownRefusals = lst.DownRefusals
	s.stats.LinkFastFails = lst.FastFails
	s.stats.BreakerOpens = lst.BreakerOpens
	s.stats.BreakerCloses = lst.BreakerCloses
	s.stats.BreakerProbes = lst.BreakerProbes
	s.stats.LinkDegradedTransfers = lst.DegradedTransfers
	s.stats.LinkLatencyCycles = lst.ExtraLatencyCycles
}

// Writeback-queue helpers. The queue slice is shared across shards
// (any shard's eviction can park, any shard's migration may drain), so
// every access goes through these helpers, each of which holds
// locks.wbQueueMu for its own duration only — never across a home-tier
// call, so a slow drain in one shard cannot stall queue inspection in
// another. The queue is tiny (wbqCap entries), so linear scans are fine.

// wbqLen returns the current queue length.
func (s *System) wbqLen() int {
	s.locks.wbQueueMu.Lock()
	defer s.locks.wbQueueMu.Unlock()
	return len(s.wbq)
}

// wbqHead returns the frame at the FIFO head, or -1 when empty.
func (s *System) wbqHead() int {
	s.locks.wbQueueMu.Lock()
	defer s.locks.wbQueueMu.Unlock()
	if len(s.wbq) == 0 {
		return -1
	}
	return s.wbq[0]
}

// wbqFirstOfShard returns the first queued frame belonging to shard, or
// -1. With one shard this is exactly the FIFO head.
func (s *System) wbqFirstOfShard(shard int) int {
	s.locks.wbQueueMu.Lock()
	defer s.locks.wbQueueMu.Unlock()
	for _, q := range s.wbq {
		if q%s.nShards == shard {
			return q
		}
	}
	return -1
}

// wbqPark queues fi unless it is already queued. It returns the queue
// length after the call, whether fi was appended by this call, and
// whether a full queue refused it.
func (s *System) wbqPark(fi int) (n int, appended, full bool) {
	s.locks.wbQueueMu.Lock()
	defer s.locks.wbQueueMu.Unlock()
	for _, q := range s.wbq {
		if q == fi {
			return len(s.wbq), false, false
		}
	}
	if len(s.wbq) >= s.wbqCap {
		return len(s.wbq), false, true
	}
	s.wbq = append(s.wbq, fi)
	return len(s.wbq), true, false
}

// wbqRemove deletes fi from the queue, preserving FIFO order of the rest.
func (s *System) wbqRemove(fi int) {
	s.locks.wbQueueMu.Lock()
	defer s.locks.wbQueueMu.Unlock()
	for i, q := range s.wbq {
		if q == fi {
			s.wbq = append(s.wbq[:i], s.wbq[i+1:]...)
			return
		}
	}
}

// park turns a link-refused eviction of frame fi into a queued
// writeback: the frame stays resident (and keeps serving) with its
// parked flag set, and the queue records the FIFO drain order. A frame
// already queued keeps its position, which is what makes a drain
// interrupted by a second flap idempotent. A full queue refuses with
// ErrQueueFull; otherwise the returned error is a parkedError wrapping
// cause.
func (s *System) park(fi int, cause error) error {
	f := &s.frames[fi]
	if !f.parked {
		n, appended, full := s.wbqPark(fi)
		if full {
			bump(&s.stats.WritebacksDropped)
			return fmt.Errorf("%w: %d writebacks already parked", ErrQueueFull, n)
		}
		if appended {
			bump(&s.stats.WritebacksQueued)
			peakMax(&s.stats.WritebackQueuePeak, uint64(n))
		}
		f.parked = true
	}
	return &parkedError{cause: cause}
}

// QueuedWritebacks returns how many frames are parked on the
// dirty-writeback queue.
func (s *System) QueuedWritebacks() int { return s.wbqLen() }

// DrainWritebacks is the reconciler: it evicts parked frames in FIFO
// order, re-verifying each page's home-tier freshness before the
// writeback touches home state. It returns how many writebacks drained.
// A link refusal mid-drain leaves the head parked (the next drain
// resumes exactly there) and surfaces typed; an ErrFreshness or
// ErrIntegrity verdict means the home tier was tampered with during the
// outage and is never silently accepted.
func (s *System) DrainWritebacks() (int, error) {
	n := 0
	for s.wbqLen() > 0 {
		if err := s.drainOne(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// drainOne drains the queue head: freshness-verify, then a real evict.
func (s *System) drainOne() error {
	fi := s.wbqHead()
	if fi < 0 {
		return nil
	}
	return s.drainFrame(fi)
}

// drainFrame drains one specific queued frame. DrainWritebacks always
// hands it the FIFO head; a migration starved of frames may instead
// drain the first queued frame of its own shard (the head with one
// shard), the one exception to strict FIFO order.
func (s *System) drainFrame(fi int) error {
	f := &s.frames[fi]
	if f.homePage < 0 || !f.parked {
		// The frame was freed behind the queue's back (cannot happen
		// through the public API: parked frames refuse plain evictions).
		s.wbqRemove(fi)
		f.parked = false
		bump(&s.stats.WritebacksDrained)
		return nil
	}
	if err := s.verifyParkedFreshness(fi); err != nil {
		return err
	}
	f.parked = false
	if err := s.evict(fi); err != nil {
		var pe *parkedError
		if errors.As(err, &pe) {
			// Re-parked: the link flapped again mid-drain. The frame kept
			// its queue position, so the next drain resumes at the head.
			return pe.cause
		}
		f.parked = true // still queued; keep the flag consistent
		return err
	}
	s.wbqRemove(fi)
	bump(&s.stats.WritebacksDrained)
	return nil
}

// verifyParkedFreshness re-verifies the home-tier state of a parked page
// before its drain writes anything back. The collapsed major of every
// chunk must still verify against the CXL integrity tree — a rollback or
// splice of home state during the outage surfaces as ErrFreshness — and
// the home ciphertext of every clean chunk must still carry a valid MAC
// under that major, so tampered bytes surface as ErrIntegrity. Without
// this check a link outage would be an integrity holiday: the attacker
// rewinds the home tier while the system cannot look, and the drain
// would bless the rewind by writing fresh chunks around it.
func (s *System) verifyParkedFreshness(fi int) error {
	if s.cfg.Model != ModelSalus {
		return nil
	}
	f := &s.frames[fi]
	page := f.homePage
	cs := s.geo.ChunkSize
	ss := s.geo.SectorSize
	for c := 0; c < s.geo.ChunksPerPage(); c++ {
		homeChunk := page*s.geo.ChunksPerPage() + c
		if s.poisoned[homeChunk] {
			continue
		}
		major, err := s.salusHomeMajor(homeChunk)
		if err != nil {
			return fmt.Errorf("parked page %d chunk %d: %w", page, c, err)
		}
		if f.dirty&(1<<uint(c)) != 0 {
			// The drain is about to overwrite this chunk's home copy; the
			// tree check above is the bar a rollback must clear.
			continue
		}
		if s.splitArmed.Load() && s.splitDirty[homeChunk] {
			// Split-state chunks are MAC'd under per-sector split pairs;
			// their freshness rides the split tree instead.
			continue
		}
		base := uint64(homeChunk * cs)
		for i := 0; i < s.geo.SectorsPerChunk(); i++ {
			ha := base + uint64(i*ss)
			ct := s.cxlData[ha : ha+uint64(ss)]
			bump(&s.stats.MACVerifies)
			if !s.eng.VerifyMAC(ct, ha, uint64(major), 0, s.homeMAC(HomeAddr(ha))) {
				return fmt.Errorf("%w: parked page %d home address %#x changed during outage",
					ErrIntegrity, page, ha)
			}
		}
	}
	return nil
}

// linkPrecheckCheckpoint consults the link for every home writeback a
// Checkpoint is about to perform, before any state (including the epoch
// number) moves: a checkpoint that cannot reach the home tier is an
// atomic no-op rather than a half-written epoch with cleared dirty bits.
func (s *System) linkPrecheckCheckpoint() error {
	if s.lnk == nil {
		return nil
	}
	for page, d := range s.ckptDirty {
		if !d {
			continue
		}
		fi := s.pageTable[page]
		if fi < 0 {
			continue
		}
		f := &s.frames[fi]
		for c := 0; c < s.geo.ChunksPerPage(); c++ {
			if f.dirty&(1<<uint(c)) == 0 {
				continue
			}
			if s.poisoned[page*s.geo.ChunksPerPage()+c] {
				continue
			}
			if err := s.linkCheck(); err != nil {
				return err
			}
		}
	}
	return nil
}
