package securemem

// Address domains. The entire correctness argument of the unified model
// (§IV-A) rests on keying every security computation off the *home* (CXL)
// address of a datum while the bytes physically live at a *device* address.
// The two spaces are both flat byte ranges, so as bare uint64s they are
// trivially confusable: swapping them compiles, passes most tests, and
// silently breaks the security model (a MAC computed over the wrong domain
// still "verifies" against itself).
//
// HomeAddr and DevAddr make the domains distinct named types, so direct
// cross-assignment is a compile error and explicit cross-domain conversions
// are flagged by the addrdomain analyzer in internal/lint. Converting
// through plain uint64 (for storage indices, crypto IVs, or hardware models
// below the address-domain boundary) is the sanctioned escape hatch.

// HomeAddr is a byte address in the CXL (home) address space — the
// permanent identity of a datum. All Salus security metadata (counters,
// MACs, tree leaves) is indexed by this address.
type HomeAddr uint64

// DevAddr is a byte address in the GPU device tier — the transient
// physical location of a datum while its page is resident in a frame.
// Under Salus nothing cryptographic may be derived from it; only the
// conventional (location-coupled) model keys metadata off it.
type DevAddr uint64

// Page returns the index of the home page containing a.
func (a HomeAddr) Page(pageSize int) int { return int(a) / pageSize }

// PageOffset returns a's byte offset within its page.
func (a HomeAddr) PageOffset(pageSize int) uint64 { return uint64(a) % uint64(pageSize) }

// Chunk returns the global home chunk index containing a.
func (a HomeAddr) Chunk(chunkSize int) int { return int(a) / chunkSize }

// Sector returns the global home sector index containing a.
func (a HomeAddr) Sector(sectorSize int) int { return int(a) / sectorSize }

// Frame returns the index of the device frame containing a.
func (a DevAddr) Frame(pageSize int) int { return int(a) / pageSize }

// PageOffset returns a's byte offset within its frame.
func (a DevAddr) PageOffset(pageSize int) uint64 { return uint64(a) % uint64(pageSize) }

// Sector returns the global device sector index containing a.
func (a DevAddr) Sector(sectorSize int) int { return int(a) / sectorSize }

// FrameAddr returns the device address of byte off within frame.
func FrameAddr(frame, pageSize int, off uint64) DevAddr {
	return DevAddr(uint64(frame)*uint64(pageSize) + off)
}

// HomePageAddr returns the home address of byte off within page.
func HomePageAddr(page, pageSize int, off uint64) HomeAddr {
	return HomeAddr(uint64(page)*uint64(pageSize) + off)
}
