package securemem

import (
	"bytes"
	"errors"
	"testing"

	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/sim"
)

// quickPolicy keeps fault tests fast: small budget, tiny backoff.
func quickPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BaseBackoff: 8, MaxBackoff: 64}
}

// runPattern performs a fixed op mix and returns the final plaintext of
// the first two pages, so faulted and fault-free runs can be compared.
func runPattern(t *testing.T, s *System) []byte {
	t.Helper()
	for i := 0; i < 8; i++ {
		addr := HomeAddr(i * 512)
		if err := s.Write(addr, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out := make([]byte, 2*4096)
	if err := s.Read(0, out); err != nil {
		t.Fatalf("read back: %v", err)
	}
	return out
}

// TestScriptedTransientRetryAccounting is the satellite acceptance test:
// a scripted plan with N transient faults yields exactly N retries in the
// stats and plaintext identical to a fault-free run.
func TestScriptedTransientRetryAccounting(t *testing.T) {
	const n = 5
	for _, m := range allModels {
		clean := newSys(t, m, 4, 2)
		want := runPattern(t, clean)

		faulty := newSys(t, m, 4, 2)
		var events []fault.Event
		for i := 0; i < n; i++ {
			// Burst 1: each fault clears on its first retry. Spread over
			// early device accesses so every event fires for every model.
			events = append(events, fault.Event{Tier: fault.TierDevice, N: uint64(i + 2), Kind: fault.Transient, Burst: 1})
		}
		plan := fault.NewScriptPlan(events)
		if !plan.Recoverable() {
			t.Fatal("transient-only script should be recoverable")
		}
		faulty.AttachFaults(plan, quickPolicy(), nil)
		got := runPattern(t, faulty)

		if !bytes.Equal(got, want) {
			t.Errorf("%v: plaintext diverged under %d recoverable faults", m, n)
		}
		st := faulty.Stats()
		if st.TransientFaults != n {
			t.Errorf("%v: TransientFaults = %d, want %d", m, st.TransientFaults, n)
		}
		if st.Retries != n {
			t.Errorf("%v: Retries = %d, want exactly %d", m, st.Retries, n)
		}
		if st.PoisonFaults != 0 || st.ChunksPoisoned != 0 || st.FramesQuarantined != 0 {
			t.Errorf("%v: recoverable plan left quarantine traces: %+v", m, st)
		}
	}
}

func TestTransientExhaustionSurfacesTyped(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		// Burst 10 with a budget of 4 retries: the access cannot succeed.
		s.AttachFaults(fault.NewScriptPlan([]fault.Event{
			{Tier: fault.TierDevice, N: 1, Kind: fault.Transient, Burst: 10},
		}), quickPolicy(), nil)
		err := s.Read(0, make([]byte, 32))
		if !errors.Is(err, ErrTransient) {
			t.Errorf("%v: exhausted retries returned %v, want ErrTransient", m, err)
		}
		if st := s.Stats(); st.Retries != 4 {
			t.Errorf("%v: Retries = %d, want the full budget of 4", m, st.Retries)
		}
		// The fault was never cleared but nothing was lost: the next access
		// succeeds (the scripted burst is spent).
		if err := s.Read(0, make([]byte, 32)); err != nil {
			t.Errorf("%v: read after transient exhaustion failed: %v", m, err)
		}
	}
}

func TestBackoffCostsSimulatedCycles(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	clock := sim.NewEngine()
	s.AttachFaults(fault.NewScriptPlan([]fault.Event{
		{Tier: fault.TierDevice, N: 1, Kind: fault.Transient, Burst: 3},
	}), RetryPolicy{MaxRetries: 4, BaseBackoff: 16, MaxBackoff: 1024}, clock)
	if err := s.Read(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	// Three retries with exponential backoff: 16 + 32 + 64 cycles.
	const want = 16 + 32 + 64
	if got := clock.Now(); got != want {
		t.Errorf("clock advanced %d cycles, want %d", got, want)
	}
	if st := s.Stats(); st.RetryBackoffCycles != want {
		t.Errorf("RetryBackoffCycles = %d, want %d", st.RetryBackoffCycles, want)
	}
}

// TestDevicePoisonCleanFrameRecovers: an uncorrectable device fault on a
// frame with no dirty data is survived transparently — the home copy is
// authoritative. None/Conventional remap the page to another frame; Salus
// pins it to the home-tier direct path.
func TestDevicePoisonCleanFrameRecovers(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("precious payload")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		// The page re-migrates clean; poison its frame on the next device
		// access after that.
		s.AttachFaults(fault.NewScriptPlan([]fault.Event{
			{Tier: fault.TierDevice, N: 1, Kind: fault.Poison},
		}), quickPolicy(), nil)
		buf := make([]byte, 16)
		if err := s.Read(0, buf); err != nil {
			t.Fatalf("%v: read across clean-frame poison failed: %v", m, err)
		}
		if string(buf) != "precious payload" {
			t.Errorf("%v: recovered read returned %q", m, buf)
		}
		st := s.Stats()
		if st.FramesQuarantined != 1 || st.TransparentRecoveries != 1 {
			t.Errorf("%v: quarantined=%d recoveries=%d, want 1/1", m, st.FramesQuarantined, st.TransparentRecoveries)
		}
		if st.ChunksPoisoned != 0 {
			t.Errorf("%v: clean-frame fault poisoned %d chunks", m, st.ChunksPoisoned)
		}
		if m == ModelSalus {
			if st.PagesPinned != 1 || s.IsResident(0) {
				t.Errorf("salus: page should be pinned home (pinned=%d resident=%v)", st.PagesPinned, s.IsResident(0))
			}
			// The pinned page stays writable through the direct path.
			if err := s.Write(0, []byte("still writable!!")); err != nil {
				t.Fatalf("salus: write to pinned page: %v", err)
			}
			if err := s.Read(0, buf); err != nil || string(buf) != "still writable!!" {
				t.Errorf("salus: pinned round trip got %q, %v", buf, err)
			}
		} else if !s.IsResident(0) {
			t.Errorf("%v: page should have been remapped to the surviving frame", m)
		}
		if got := len(s.QuarantinedFrames()); got != 1 {
			t.Errorf("%v: QuarantinedFrames = %v", m, s.QuarantinedFrames())
		}
	}
}

// TestDevicePoisonDirtyChunkIsLost: when the retired frame held dirty
// chunks, their data is gone — the access fails with ErrPoison, the home
// chunks are quarantined, and later reads keep failing instead of
// returning stale home bytes. Healthy chunks of the page stay readable.
func TestDevicePoisonDirtyChunkIsLost(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("doomed")); err != nil { // chunk 0 dirty
			t.Fatal(err)
		}
		s.AttachFaults(fault.NewScriptPlan([]fault.Event{
			{Tier: fault.TierDevice, N: 1, Kind: fault.StuckBit, Bit: 3},
		}), quickPolicy(), nil)
		err := s.Read(0, make([]byte, 4))
		if !errors.Is(err, ErrPoison) {
			t.Fatalf("%v: dirty-frame fault returned %v, want ErrPoison", m, err)
		}
		// The loss is sticky: the chunk refuses access from now on.
		if err := s.Read(0, make([]byte, 4)); !errors.Is(err, ErrPoison) {
			t.Errorf("%v: poisoned chunk re-read returned %v, want ErrPoison", m, err)
		}
		if err := s.Write(0, []byte("x")); !errors.Is(err, ErrPoison) {
			t.Errorf("%v: poisoned chunk write returned %v, want ErrPoison", m, err)
		}
		if !s.PoisonedRange(0, 1) || s.PoisonedRange(256, 1) {
			t.Errorf("%v: PoisonedRange wrong: chunks=%v", m, s.PoisonedChunks())
		}
		// A different chunk of the same page re-migrates and reads fine.
		if err := s.Read(512, make([]byte, 4)); err != nil {
			t.Errorf("%v: healthy chunk of the page failed: %v", m, err)
		}
		st := s.Stats()
		if st.ChunksPoisoned != 1 || st.StuckBitFaults != 1 || st.PoisonPageDrops != 1 {
			t.Errorf("%v: poisoned=%d stuck=%d drops=%d, want 1/1/1", m, st.ChunksPoisoned, st.StuckBitFaults, st.PoisonPageDrops)
		}
	}
}

func TestHomePoisonOnDirectPath(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	s.AttachFaults(fault.NewScriptPlan([]fault.Event{
		{Tier: fault.TierHome, N: 1, Kind: fault.Poison},
	}), quickPolicy(), nil)
	err := s.WriteThrough(0, []byte("direct"))
	if !errors.Is(err, ErrPoison) {
		t.Fatalf("WriteThrough over home poison returned %v, want ErrPoison", err)
	}
	if err := s.ReadThrough(0, make([]byte, 4)); !errors.Is(err, ErrPoison) {
		t.Errorf("quarantined chunk ReadThrough returned %v, want ErrPoison", err)
	}
	if got := s.PoisonedChunks(); len(got) != 1 || got[0] != 0 {
		t.Errorf("PoisonedChunks = %v, want [0]", got)
	}
}

// TestAllFramesQuarantined: the whole device tier dying degrades Salus to
// home-tier service and surfaces typed errors elsewhere.
func TestAllFramesQuarantined(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 1) // a single frame
		s.AttachFaults(fault.NewScriptPlan([]fault.Event{
			{Tier: fault.TierDevice, N: 1, Kind: fault.Poison},
		}), quickPolicy(), nil)
		err := s.Read(0, make([]byte, 8))
		if m == ModelSalus {
			if err != nil {
				t.Errorf("salus: read after total device loss failed: %v", err)
			}
			if st := s.Stats(); st.PagesPinned != 1 {
				t.Errorf("salus: PagesPinned = %d, want 1", st.PagesPinned)
			}
		} else if !errors.Is(err, ErrPoison) {
			t.Errorf("%v: read with no usable frames returned %v, want ErrPoison", m, err)
		}
	}
}

// TestSuspendResumeCarriesQuarantine: the badblock list is TCB state and
// survives suspend/resume via the TrustedRoot.
func TestSuspendResumeCarriesQuarantine(t *testing.T) {
	cfg := Config{Geometry: testGeo(), Model: ModelSalus, TotalPages: 4, DevicePages: 2}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachFaults(fault.NewScriptPlan([]fault.Event{
		{Tier: fault.TierHome, N: 1, Kind: fault.Poison},
	}), quickPolicy(), nil)
	if err := s.WriteThrough(0, []byte("x")); !errors.Is(err, ErrPoison) {
		t.Fatalf("seeding poison failed: %v", err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	if len(root.PoisonedChunks) != 1 {
		t.Fatalf("root.PoisonedChunks = %v, want one entry", root.PoisonedChunks)
	}
	r, err := Resume(cfg, image, root)
	if err != nil {
		t.Fatal(err)
	}
	// No injector attached to the resumed system: the quarantine must
	// still hold, or lost data would silently read back as stale bytes.
	if err := r.Read(0, make([]byte, 4)); !errors.Is(err, ErrPoison) {
		t.Errorf("resumed read of quarantined chunk returned %v, want ErrPoison", err)
	}
	if err := r.Read(256, make([]byte, 4)); err != nil {
		t.Errorf("resumed read of healthy chunk failed: %v", err)
	}
	if got := r.PoisonedChunks(); len(got) != 1 || got[0] != 0 {
		t.Errorf("resumed PoisonedChunks = %v, want [0]", got)
	}
}

func TestResumeRejectsCorruptBadblockList(t *testing.T) {
	cfg := Config{Geometry: testGeo(), Model: ModelSalus, TotalPages: 2, DevicePages: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	image, root, err := s.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*TrustedRoot){
		func(r *TrustedRoot) { r.PoisonedChunks = []int{-1} },
		func(r *TrustedRoot) { r.PoisonedChunks = []int{1 << 20} },
		func(r *TrustedRoot) { r.QuarantinedFrames = []int{7} },
		func(r *TrustedRoot) { r.PinnedPages = []int{99} },
	} {
		bad := root
		mut(&bad)
		if _, err := Resume(cfg, image, bad); err == nil {
			t.Error("Resume accepted an out-of-range badblock entry")
		}
	}
}

func TestRetryPolicyBackoffCapped(t *testing.T) {
	p := RetryPolicy{MaxRetries: 100, BaseBackoff: 8, MaxBackoff: 64}
	want := []sim.Cycle{8, 16, 32, 64, 64, 64}
	for i, w := range want {
		if got := p.backoff(i); got != w {
			t.Errorf("backoff(%d) = %d, want %d", i, got, w)
		}
	}
	// Huge attempt numbers must not overflow the shift.
	if got := p.backoff(1 << 20); got != 64 {
		t.Errorf("backoff(big) = %d, want cap", got)
	}
	if got := (RetryPolicy{}).backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %d, want 0", got)
	}
}
