package securemem

import "github.com/salus-sim/salus/internal/security/counters"

// Observation hooks for the differential checker (internal/check). They
// expose read-only views of internal metadata so invariants like counter
// monotonicity can be asserted from outside the package without widening
// the operational API.

// CounterMajors returns a copy of the home-indexed major counters of the
// active model: one entry per home chunk under ModelSalus (the collapsed
// majors), one per home counter sector under ModelConventional, nil under
// ModelNone.
//
// Outside of an explicit ReKey (which resets all counters under fresh
// keys), every entry is non-decreasing over the life of the system — the
// property the checker asserts after every operation. Collapse on
// eviction, split-minor overflow, and device-minor overflow may only ever
// increment a major.
func (s *System) CounterMajors() []uint64 {
	switch s.cfg.Model {
	case ModelSalus:
		homeChunks := s.cfg.TotalPages * s.geo.ChunksPerPage()
		out := make([]uint64, homeChunks)
		for c := 0; c < homeChunks; c++ {
			out[c] = uint64(s.collapsed[c/counters.CollapsedMajors].Majors[c%counters.CollapsedMajors])
		}
		return out
	case ModelConventional:
		out := make([]uint64, len(s.convCXLCtrs))
		for i := range s.convCXLCtrs {
			out[i] = s.convCXLCtrs[i].Major
		}
		return out
	}
	return nil
}
