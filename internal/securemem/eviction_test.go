package securemem

import (
	"bytes"
	"testing"
)

// Eviction-path coverage: the paths the differential checker leans on
// hardest, pinned down individually.

func TestFlushTwiceIsNoOp(t *testing.T) {
	// The second Flush must not evict, write back, or re-encrypt anything:
	// all frames are already free.
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("dirty me")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("%v: flush 1: %v", m, err)
		}
		before := s.Stats()
		if err := s.Flush(); err != nil {
			t.Fatalf("%v: flush 2: %v", m, err)
		}
		after := s.Stats()
		if before != after {
			t.Errorf("%v: second flush changed stats: %+v -> %+v", m, before, after)
		}
		if s.ResidentPages() != 0 {
			t.Errorf("%v: %d pages resident after double flush", m, s.ResidentPages())
		}
	}
}

func TestEvictFreeFrameIsSafe(t *testing.T) {
	// evict on a frame that holds no page must be a silent no-op, for every
	// frame of a completely fresh system.
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		for fi := range s.frames {
			if err := s.evict(fi); err != nil {
				t.Fatalf("%v: evict(free frame %d): %v", m, fi, err)
			}
		}
		if st := s.Stats(); st.PageEvictions != 0 {
			t.Errorf("%v: evicting free frames recorded %d evictions", m, st.PageEvictions)
		}
	}
}

func TestMigrateEvictMigrateReEncryptionAccounting(t *testing.T) {
	// A migrate-in / evict / migrate-in cycle of one page. Salus moves
	// ciphertext verbatim in both directions (zero relocation
	// re-encryptions); the conventional model re-encrypts every sector of
	// the page on each crossing.
	const totalPages, devicePages = 4, 1
	drive := func(s *System) {
		t.Helper()
		data := []byte("survives the round trip intact!!")
		if err := s.Write(0, data); err != nil { // migrate-in #1
			t.Fatal(err)
		}
		if err := s.Read(4096, make([]byte, 1)); err != nil { // evicts page 0
			t.Fatal(err)
		}
		if s.IsResident(0) {
			t.Fatal("page 0 still resident after pressure")
		}
		got := make([]byte, len(data))
		if err := s.Read(0, got); err != nil { // migrate-in #2
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("data corrupted across cycle: %q", got)
		}
	}

	s := newSys(t, ModelSalus, totalPages, devicePages)
	drive(s)
	st := s.Stats()
	if st.PageMigrationsIn < 3 || st.PageEvictions < 2 {
		t.Fatalf("cycle did not exercise migration: %+v", st)
	}
	if st.RelocationReEncryptions != 0 {
		t.Errorf("Salus relocation re-encryptions = %d, want 0", st.RelocationReEncryptions)
	}

	s = newSys(t, ModelConventional, totalPages, devicePages)
	drive(s)
	st = s.Stats()
	sectors := uint64(s.geo.SectorsPerPage())
	// One re-encryption per sector per tier crossing: every migration-in
	// and every (full-page) eviction re-encrypts the whole page.
	want := sectors * (st.PageMigrationsIn + st.PageEvictions)
	if st.RelocationReEncryptions != want {
		t.Errorf("conventional relocation re-encryptions = %d, want %d (one per sector per crossing)",
			st.RelocationReEncryptions, want)
	}
	if st.FullPageWritebacks != st.PageEvictions {
		t.Errorf("full-page writebacks = %d, want %d", st.FullPageWritebacks, st.PageEvictions)
	}
}
