package securemem

import (
	"bytes"
	"errors"
	"testing"

	"github.com/salus-sim/salus/internal/config"
)

func testGeo() config.Geometry {
	return config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
}

func newSys(t *testing.T, model Model, totalPages, devicePages int) *System {
	t.Helper()
	s, err := New(Config{
		Geometry:    testGeo(),
		Model:       model,
		TotalPages:  totalPages,
		DevicePages: devicePages,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var allModels = []Model{ModelNone, ModelConventional, ModelSalus}

func TestConfigValidate(t *testing.T) {
	base := Config{Geometry: testGeo(), TotalPages: 4, DevicePages: 2}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Geometry.SectorSize = 64 },
		func(c *Config) { c.TotalPages = 0 },
		func(c *Config) { c.DevicePages = 0 },
		func(c *Config) { c.DevicePages = 8 }, // larger than total
	}
	for i, mut := range bad {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewRejectsUnknownModel(t *testing.T) {
	_, err := New(Config{Geometry: testGeo(), Model: Model(99), TotalPages: 2, DevicePages: 1})
	if err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelString(t *testing.T) {
	if ModelNone.String() != "none" || ModelConventional.String() != "conventional" || ModelSalus.String() != "salus" {
		t.Error("model names wrong")
	}
	if Model(42).String() == "" {
		t.Error("unknown model name empty")
	}
}

func TestReadFreshSystemReturnsZeros(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		buf := make([]byte, 64)
		if err := s.Read(0, buf); err != nil {
			t.Fatalf("%v: read fresh: %v", m, err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatalf("%v: fresh read non-zero", m)
			}
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		data := []byte("the quick brown fox jumps over!!")
		if err := s.Write(100, data); err != nil {
			t.Fatalf("%v: write: %v", m, err)
		}
		got := make([]byte, len(data))
		if err := s.Read(100, got); err != nil {
			t.Fatalf("%v: read: %v", m, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%v: read %q, want %q", m, got, data)
		}
	}
}

func TestRoundTripAcrossEviction(t *testing.T) {
	// Write to page 0, then touch enough other pages to force its
	// eviction, then read it back (forcing re-migration).
	for _, m := range allModels {
		s := newSys(t, m, 6, 2)
		data := []byte("persistent-data-across-eviction!")
		if err := s.Write(0, data); err != nil {
			t.Fatalf("%v: write: %v", m, err)
		}
		for pg := 1; pg < 6; pg++ {
			if err := s.Write(HomeAddr(pg*4096), []byte{byte(pg)}); err != nil {
				t.Fatalf("%v: fill write: %v", m, err)
			}
		}
		if s.IsResident(0) {
			t.Fatalf("%v: page 0 still resident after pressure", m)
		}
		got := make([]byte, len(data))
		if err := s.Read(0, got); err != nil {
			t.Fatalf("%v: read back: %v", m, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%v: got %q, want %q", m, got, data)
		}
		if s.Stats().PageEvictions == 0 {
			t.Errorf("%v: no evictions recorded", m)
		}
	}
}

func TestPartialSectorWrite(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		if err := s.Write(10, []byte("abc")); err != nil { // straddles nothing, mid-sector
			t.Fatalf("%v: %v", m, err)
		}
		if err := s.Write(30, []byte("defgh")); err != nil { // straddles sectors 0 and 1
			t.Fatalf("%v: %v", m, err)
		}
		buf := make([]byte, 40)
		if err := s.Read(0, buf); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if string(buf[10:13]) != "abc" || string(buf[30:35]) != "defgh" {
			t.Errorf("%v: partial writes corrupted: %q", m, buf)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	s := newSys(t, ModelSalus, 2, 1)
	if err := s.Read(HomeAddr(s.Size()), make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := s.Write(HomeAddr(s.Size()-1), make([]byte, 2)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write past end: %v", err)
	}
	if s.IsResident(HomeAddr(s.Size())) {
		t.Error("IsResident past end")
	}
}

func TestCiphertextNotPlaintext(t *testing.T) {
	// Bus snooping: the stored bytes must not reveal the written data.
	for _, m := range []Model{ModelConventional, ModelSalus} {
		s := newSys(t, m, 4, 2)
		secret := bytes.Repeat([]byte("SECRET!!"), 4) // one full sector
		if err := s.Write(0, secret); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		raw := s.RawHomeBytes(0, len(secret))
		if bytes.Contains(raw, []byte("SECRET")) {
			t.Errorf("%v: plaintext visible in home store", m)
		}
	}
	// ModelNone stores plaintext — the contrast the figure-3 baseline needs.
	s := newSys(t, ModelNone, 4, 2)
	secret := bytes.Repeat([]byte("SECRET!!"), 4)
	if err := s.Write(0, secret); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(s.RawHomeBytes(0, len(secret)), []byte("SECRET")) {
		t.Error("ModelNone unexpectedly hides plaintext")
	}
}

func TestSalusMigrationNeedsNoReencryption(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	// Read-only sweep over all pages: lots of migrations and evictions.
	buf := make([]byte, 32)
	for pg := 0; pg < 8; pg++ {
		if err := s.Read(HomeAddr(pg*4096), buf); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PageMigrationsIn != 8 {
		t.Fatalf("migrations = %d, want 8", st.PageMigrationsIn)
	}
	if st.PageEvictions == 0 {
		t.Fatal("no evictions")
	}
	if st.RelocationReEncryptions != 0 {
		t.Errorf("Salus performed %d relocation re-encryptions, want 0", st.RelocationReEncryptions)
	}
	if st.CollapseReEncryptions != 0 {
		t.Errorf("read-only workload collapsed with re-encryption %d times, want 0", st.CollapseReEncryptions)
	}
}

func TestConventionalMigrationReencrypts(t *testing.T) {
	s := newSys(t, ModelConventional, 8, 2)
	buf := make([]byte, 32)
	for pg := 0; pg < 8; pg++ {
		if err := s.Read(HomeAddr(pg*4096), buf); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Every migrated page re-encrypts all 128 sectors; evictions add more.
	if st.RelocationReEncryptions < 8*128 {
		t.Errorf("conventional relocation re-encryptions = %d, want >= %d", st.RelocationReEncryptions, 8*128)
	}
}

func TestSalusDirtyTrackingSkipsCleanChunks(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 1)
	// Dirty exactly one chunk of page 0.
	if err := s.Write(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	// Force eviction by touching page 1.
	if err := s.Read(4096, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DirtyChunkWritebacks != 1 {
		t.Errorf("dirty chunk writebacks = %d, want 1", st.DirtyChunkWritebacks)
	}
	if st.CleanChunksSkipped != 15 {
		t.Errorf("clean chunks skipped = %d, want 15", st.CleanChunksSkipped)
	}
}

func TestSalusLazyMACFetchCounts(t *testing.T) {
	s := newSys(t, ModelSalus, 2, 1)
	// Touch 2 sectors in the same block: one MAC sector fetch.
	if err := s.Read(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(32, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LazyMACFetches; got != 1 {
		t.Errorf("lazy MAC fetches = %d, want 1", got)
	}
	// A different block fetches another.
	if err := s.Read(128, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LazyMACFetches; got != 2 {
		t.Errorf("lazy MAC fetches = %d, want 2", got)
	}
}

func TestTamperHomeDetected(t *testing.T) {
	for _, m := range []Model{ModelConventional, ModelSalus} {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("important")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if !s.CorruptHome(0) {
			t.Fatalf("%v: in-range CorruptHome reported failure", m)
		}
		err := s.Read(0, make([]byte, 8))
		if !errors.Is(err, ErrIntegrity) {
			t.Errorf("%v: tampered home read returned %v, want ErrIntegrity", m, err)
		}
		if s.CorruptHome(HomeAddr(s.Size())) {
			t.Errorf("%v: out-of-range CorruptHome reported success", m)
		}
	}
}

func TestTamperDeviceDetected(t *testing.T) {
	for _, m := range []Model{ModelConventional, ModelSalus} {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("important")); err != nil {
			t.Fatal(err)
		}
		if !s.CorruptDevice(0) {
			t.Fatalf("%v: page not resident", m)
		}
		err := s.Read(0, make([]byte, 8))
		if !errors.Is(err, ErrIntegrity) {
			t.Errorf("%v: tampered device read returned %v, want ErrIntegrity", m, err)
		}
	}
}

func TestSpliceDetected(t *testing.T) {
	for _, m := range []Model{ModelConventional, ModelSalus} {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, bytes.Repeat([]byte{1}, 32)); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(32, bytes.Repeat([]byte{2}, 32)); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		// Move sector 1's valid ciphertext over sector 0.
		s.SpliceHome(0, 32)
		err := s.Read(0, make([]byte, 32))
		if !errors.Is(err, ErrIntegrity) {
			t.Errorf("%v: spliced read returned %v, want ErrIntegrity", m, err)
		}
	}
}

func TestSpliceDeviceDetected(t *testing.T) {
	// Device-resident splice: valid ciphertext relocated inside the device
	// memory. Both secure models bind the MAC to an address (home under
	// Salus, device under conventional), so the moved sector fails
	// verification; ModelNone has no MACs and is blind to it — the
	// baseline the secure models are measured against.
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, bytes.Repeat([]byte{1}, 32)); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(32, bytes.Repeat([]byte{2}, 32)); err != nil {
			t.Fatal(err)
		}
		if !s.IsResident(0) {
			t.Fatalf("%v: page 0 not resident after writes", m)
		}
		// Move sector 1's device-resident ciphertext over sector 0.
		if !s.SpliceDevice(0, 32) {
			t.Fatalf("%v: resident SpliceDevice reported failure", m)
		}
		buf := make([]byte, 32)
		err := s.Read(0, buf)
		if m == ModelNone {
			if err != nil {
				t.Errorf("none: spliced read returned %v, want silent acceptance", err)
			} else if !bytes.Equal(buf, bytes.Repeat([]byte{2}, 32)) {
				t.Errorf("none: spliced read returned %v, want the relocated bytes", buf)
			}
			continue
		}
		if !errors.Is(err, ErrIntegrity) {
			t.Errorf("%v: device-spliced read returned %v, want ErrIntegrity", m, err)
		}
	}
}

func TestSpliceDeviceRejectsNonResidentAndOutOfRange(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if s.SpliceDevice(0, 32) {
		t.Error("SpliceDevice on non-resident pages reported success")
	}
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if s.SpliceDevice(0, HomeAddr(s.Size())) {
		t.Error("SpliceDevice with out-of-range source reported success")
	}
	if s.SpliceDevice(HomeAddr(s.Size()), 0) {
		t.Error("SpliceDevice with out-of-range destination reported success")
	}
}

func TestReplayDetected(t *testing.T) {
	for _, m := range []Model{ModelConventional, ModelSalus} {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("version-1")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		snap := s.SnapshotHomeChunk(0) // attacker records v1 + its metadata
		if err := s.Write(0, []byte("version-2")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		s.ReplayHomeChunk(snap) // attacker restores everything untrusted
		err := s.Read(0, make([]byte, 9))
		if !errors.Is(err, ErrFreshness) {
			t.Errorf("%v: replayed read returned %v, want ErrFreshness", m, err)
		}
	}
}

func TestFlushIdempotent(t *testing.T) {
	for _, m := range allModels {
		s := newSys(t, m, 4, 2)
		if err := s.Write(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("%v: flush 1: %v", m, err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("%v: flush 2: %v", m, err)
		}
		if s.ResidentPages() != 0 {
			t.Errorf("%v: %d pages resident after flush", m, s.ResidentPages())
		}
	}
}

func TestManyPagesStress(t *testing.T) {
	// Random-ish write/read mix across more pages than frames, verifying
	// data integrity end-to-end for every model.
	for _, m := range allModels {
		s := newSys(t, m, 10, 3)
		want := make(map[HomeAddr]byte)
		addr := HomeAddr(17)
		for i := 0; i < 400; i++ {
			addr = (addr*2654435761 + 12345) % HomeAddr(s.Size()-1)
			v := byte(i)
			if i%3 == 0 {
				if err := s.Write(addr, []byte{v}); err != nil {
					t.Fatalf("%v: write %d: %v", m, i, err)
				}
				want[addr] = v
			} else {
				var got [1]byte
				if err := s.Read(addr, got[:]); err != nil {
					t.Fatalf("%v: read %d: %v", m, i, err)
				}
				if w, ok := want[addr]; ok && got[0] != w {
					t.Fatalf("%v: addr %d = %d, want %d", m, addr, got[0], w)
				}
			}
		}
		// Final verification of all written addresses.
		for a, w := range want {
			var got [1]byte
			if err := s.Read(a, got[:]); err != nil {
				t.Fatalf("%v: final read: %v", m, err)
			}
			if got[0] != w {
				t.Fatalf("%v: final addr %d = %d, want %d", m, a, got[0], w)
			}
		}
	}
}

func TestStatsProgression(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Write(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(0, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// The partial-sector write's internal read-modify-write does not count
	// as a user-level Read.
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("reads=%d writes=%d, want 1/1", st.Reads, st.Writes)
	}
	if st.MACVerifies == 0 {
		t.Error("no MAC verifies recorded")
	}
}

func TestSalusDeviceMinorOverflow(t *testing.T) {
	// The interleaving-friendly minors are 8 bits: 256 writes to one
	// sector overflow the group, forcing a one-chunk re-encryption sweep
	// under the incremented major. Data in the other sectors of the chunk
	// must survive.
	s := newSys(t, ModelSalus, 2, 1)
	if err := s.Write(32, []byte("neighbour sector, must survive!!")); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	for i := 0; i < 300; i++ {
		payload[0] = byte(i)
		if err := s.Write(0, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := s.Stats().OverflowReEncryptions; got == 0 {
		t.Fatal("no overflow re-encryptions after 300 writes to one sector")
	}
	got := make([]byte, 32)
	if err := s.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != byte(299%256) {
		t.Errorf("sector 0 byte = %d, want %d", got[0], byte(299%256))
	}
	if err := s.Read(32, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "neighbour sector, must survive!!" {
		t.Errorf("neighbour sector corrupted by overflow sweep: %q", got)
	}
	// And the state survives an eviction round trip.
	if err := s.Read(4096, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != byte(299%256) {
		t.Errorf("after round trip: byte = %d, want %d", got[0], byte(299%256))
	}
}

func TestConventionalMinorOverflow(t *testing.T) {
	// Conventional 6-bit minors overflow after 63 increments; the whole
	// 1 KiB region covered by the counter sector re-encrypts.
	s := newSys(t, ModelConventional, 2, 1)
	if err := s.Write(64, []byte("data in the same counter region!")); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	for i := 0; i < 80; i++ {
		payload[0] = byte(i)
		if err := s.Write(0, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if s.Stats().OverflowReEncryptions == 0 {
		t.Fatal("no overflow re-encryptions after 80 writes")
	}
	got := make([]byte, 32)
	if err := s.Read(64, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:32]) != "data in the same counter region!" {
		t.Errorf("region neighbour corrupted: %q", got)
	}
}
