package securemem

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestReferenceModelEquivalence drives each protection model with long
// random operation sequences (reads, cached writes, direct writes,
// checkpoints, flushes) and checks every read against a plain in-memory
// reference. This is the strongest end-to-end invariant the library has:
// no sequence of migrations, evictions, collapses, overflows, or split
// transitions may ever lose or corrupt data.
func TestReferenceModelEquivalence(t *testing.T) {
	const (
		totalPages  = 12
		devicePages = 3
		steps       = 1500
	)
	for _, model := range allModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			s, err := New(Config{
				Geometry:    testGeo(),
				Model:       model,
				TotalPages:  totalPages,
				DevicePages: devicePages,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := make([]byte, s.Size())
			rng := rand.New(rand.NewSource(int64(model) + 99))

			for step := 0; step < steps; step++ {
				addr := HomeAddr(rng.Intn(int(s.Size()) - 64))
				n := rng.Intn(64) + 1
				switch op := rng.Intn(10); {
				case op < 4: // read
					got := make([]byte, n)
					if err := s.Read(addr, got); err != nil {
						t.Fatalf("step %d: read(%d,%d): %v", step, addr, n, err)
					}
					if !bytes.Equal(got, ref[addr:addr+HomeAddr(n)]) {
						t.Fatalf("step %d: read(%d,%d) = %x, want %x", step, addr, n, got, ref[addr:addr+HomeAddr(n)])
					}
				case op < 8: // cached write
					data := make([]byte, n)
					rng.Read(data)
					if err := s.Write(addr, data); err != nil {
						t.Fatalf("step %d: write(%d,%d): %v", step, addr, n, err)
					}
					copy(ref[addr:], data)
				case op == 8 && model == ModelSalus: // direct write when non-resident
					if s.IsResident(addr) || s.IsResident(addr+HomeAddr(n)-1) {
						continue
					}
					data := make([]byte, n)
					rng.Read(data)
					if err := s.WriteThrough(addr, data); err != nil {
						t.Fatalf("step %d: writeThrough(%d,%d): %v", step, addr, n, err)
					}
					copy(ref[addr:], data)
				default: // occasional checkpoint or flush
					if rng.Intn(4) == 0 {
						if err := s.Flush(); err != nil {
							t.Fatalf("step %d: flush: %v", step, err)
						}
					} else if model == ModelSalus {
						if err := s.CheckpointChunk(addr); err != nil {
							t.Fatalf("step %d: checkpoint: %v", step, err)
						}
					}
				}
			}
			// Final sweep: every byte must match the reference.
			got := make([]byte, 256)
			for off := HomeAddr(0); uint64(off) < s.Size(); off += 256 {
				if err := s.Read(off, got); err != nil {
					t.Fatalf("final read at %d: %v", off, err)
				}
				if !bytes.Equal(got, ref[off:off+256]) {
					t.Fatalf("final state diverged at %d", off)
				}
			}
		})
	}
}
