package securemem

import (
	"errors"
	"fmt"

	"github.com/salus-sim/salus/internal/config"
)

// Backing is externally owned storage for the two memory tiers. A bare
// New allocates its own stores; supplying a Backing instead lets several
// engines share one physical allocation — the multi-tenant pool carves
// one CXL home buffer and one device buffer into per-tenant slices and
// hands each tenant engine its own disjoint window. The engine treats
// the provided memory exactly like its own: it zeroes both tiers on New
// (the initial-encryption pass assumes zero plaintext) and never reads
// or writes a byte outside the slices it was given.
//
// The caller owns the disjointness contract: two engines handed
// overlapping windows would silently corrupt each other. The tenant
// pool's slice validation (internal/tenant) is the layer that enforces
// non-overlap before any engine is built.
type Backing struct {
	// Home is the CXL home-tier store; it must hold exactly
	// TotalPages*PageSize bytes for the Config it backs.
	Home []byte
	// Device is the device-tier store; it must hold exactly
	// DevicePages*PageSize bytes for the Config it backs.
	Device []byte
}

// ErrBacking reports a Backing whose slice sizes disagree with the
// configuration they are supposed to back.
var ErrBacking = errors.New("securemem: backing store sizes do not match configuration")

// NewBacking allocates a shared backing for totalPages home pages and
// devicePages device frames under the given geometry.
func NewBacking(geo config.Geometry, totalPages, devicePages int) *Backing {
	return &Backing{
		Home:   make([]byte, totalPages*geo.PageSize),
		Device: make([]byte, devicePages*geo.PageSize),
	}
}

// Window returns the sub-backing covering homePage..homePage+pages of
// the home tier and frame..frame+frames of the device tier. Bounds are
// the caller's responsibility (a tenant pool validates slices before
// carving); out-of-range windows panic like any slice expression.
func (b *Backing) Window(geo config.Geometry, homePage, pages, frame, frames int) *Backing {
	ps := geo.PageSize
	return &Backing{
		Home:   b.Home[homePage*ps : (homePage+pages)*ps : (homePage+pages)*ps],
		Device: b.Device[frame*ps : (frame+frames)*ps : (frame+frames)*ps],
	}
}

// validateBacking checks a provided backing against the configuration.
func (c Config) validateBacking() error {
	b := c.Backing
	if b == nil {
		return nil
	}
	if want := c.TotalPages * c.Geometry.PageSize; len(b.Home) != want {
		return fmt.Errorf("%w: home store %d bytes, want %d", ErrBacking, len(b.Home), want)
	}
	if want := c.DevicePages * c.Geometry.PageSize; len(b.Device) != want {
		return fmt.Errorf("%w: device store %d bytes, want %d", ErrBacking, len(b.Device), want)
	}
	return nil
}
