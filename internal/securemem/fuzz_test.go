package securemem

import (
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
)

// Fuzz targets for the two untrusted-input decoders of the persistence
// layer. Both consume attacker-controlled bytes (the image or journal is
// explicitly untrusted storage, and a marshalled TrustedRoot blob may be
// damaged in transit even though an undamaged one is trusted); the
// contract under fuzzing is: never panic, never mis-index — reject with
// an error or produce a system whose reads verify.

func fuzzCfg() Config {
	return Config{
		Geometry:    config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},
		Model:       ModelSalus,
		TotalPages:  4,
		DevicePages: 2,
	}
}

func fuzzSeedSystem(f *testing.F) *System {
	f.Helper()
	s, err := New(fuzzCfg())
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Write(0, []byte("seed data")); err != nil {
		f.Fatal(err)
	}
	if err := s.WriteThrough(3*4096, []byte("split seed")); err != nil {
		f.Fatal(err)
	}
	return s
}

func FuzzResume(f *testing.F) {
	s := fuzzSeedSystem(f)
	image, root, err := s.Suspend()
	if err != nil {
		f.Fatal(err)
	}
	rootBytes := root.MarshalBinary()
	f.Add(image, rootBytes)
	f.Add(image[:len(image)/2], rootBytes)
	f.Add([]byte("SALUSIMG2garbage"), rootBytes)
	f.Add(image, []byte("SROOT1 damaged"))

	f.Fuzz(func(t *testing.T, img, rb []byte) {
		root, err := UnmarshalTrustedRoot(rb)
		if err != nil {
			root = TrustedRoot{}
		}
		r, err := Resume(fuzzCfg(), img, root)
		if err != nil {
			return
		}
		// A resume that was accepted must be fully readable or fail with
		// typed detection errors — never panic or mis-index.
		buf := make([]byte, 64)
		for p := 0; p < 4; p++ {
			_ = r.Read(HomeAddr(p*4096), buf)
		}
	})
}

func FuzzRecover(f *testing.F) {
	s := fuzzSeedSystem(f)
	store := crash.NewMemStore()
	j := crash.NewJournal(store)
	root1, err := s.Checkpoint(j)
	if err != nil {
		f.Fatal(err)
	}
	epoch1 := store.Bytes()
	if err := s.Write(4096, []byte("second epoch")); err != nil {
		f.Fatal(err)
	}
	root2, err := s.Checkpoint(j)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(store.Bytes(), root2.MarshalBinary())
	f.Add(epoch1, root1.MarshalBinary())
	f.Add(epoch1, root2.MarshalBinary())             // stale journal: ErrRollback path
	f.Add(store.Bytes()[:30], root2.MarshalBinary()) // torn path
	f.Add([]byte{}, root1.MarshalBinary())

	f.Fuzz(func(t *testing.T, journal, rb []byte) {
		root, err := UnmarshalTrustedRoot(rb)
		if err != nil {
			root = TrustedRoot{Epoch: 1}
		}
		r, err := Recover(fuzzCfg(), journal, root)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for p := 0; p < 4; p++ {
			_ = r.Read(HomeAddr(p*4096), buf)
		}
	})
}
