package securemem

import (
	"bytes"
	"errors"
	"testing"
)

func TestWriteThroughRoundTrip(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	data := []byte("streamed directly into CXL tier!")
	if err := s.WriteThrough(4096, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadThrough(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
	// The page never became resident.
	if s.IsResident(4096) {
		t.Error("WriteThrough migrated the page")
	}
	// And the data is also visible through the cached path.
	got2 := make([]byte, len(data))
	if err := s.Read(4096, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatalf("cached read got %q, want %q", got2, data)
	}
}

func TestWriteThroughPartialSector(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	if err := s.WriteThrough(10, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteThrough(30, []byte("defgh")); err != nil { // straddles sectors
		t.Fatal(err)
	}
	buf := make([]byte, 40)
	if err := s.ReadThrough(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[10:13]) != "abc" || string(buf[30:35]) != "defgh" {
		t.Errorf("partial direct writes corrupted: %q", buf)
	}
}

func TestWriteThroughModelAndRangeChecks(t *testing.T) {
	conv := newSys(t, ModelConventional, 4, 2)
	if err := conv.WriteThrough(0, []byte("x")); err == nil {
		t.Error("WriteThrough accepted under conventional model")
	}
	if err := conv.ReadThrough(0, make([]byte, 1)); err == nil {
		t.Error("ReadThrough accepted under conventional model")
	}
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.WriteThrough(HomeAddr(s.Size()), []byte("x")); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range WriteThrough: %v", err)
	}
	if err := s.ReadThrough(HomeAddr(s.Size()-1), make([]byte, 2)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range ReadThrough: %v", err)
	}
}

func TestWriteThroughRefusesResidentPage(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.Read(0, make([]byte, 1)); err != nil { // migrates page 0 in
		t.Fatal(err)
	}
	if err := s.WriteThrough(0, []byte("x")); err == nil {
		t.Error("WriteThrough accepted for a resident page")
	}
	if err := s.ReadThrough(0, make([]byte, 1)); err == nil {
		t.Error("ReadThrough accepted for a resident page")
	}
}

func TestSplitStateCheckpointOnMigration(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	// Several direct writes put chunk 0 of page 1 in split state.
	for i := 0; i < 5; i++ {
		if err := s.WriteThrough(4096, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	chunk := 4096 / s.geo.ChunkSize
	if !s.splitDirty[chunk] {
		t.Fatal("chunk not in split state after direct writes")
	}
	// Migrating the page (via a cached read) checkpoints the chunk.
	got := make([]byte, 1)
	if err := s.Read(4096, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Errorf("read %d, want 4", got[0])
	}
	if s.splitDirty[chunk] {
		t.Error("split state survived migration")
	}
	if s.Stats().CollapseReEncryptions == 0 {
		t.Error("checkpoint performed no collapse re-encryption")
	}
}

func TestCheckpointChunkExplicit(t *testing.T) {
	s := newSys(t, ModelSalus, 8, 2)
	if err := s.WriteThrough(0, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointChunk(0); err != nil {
		t.Fatal(err)
	}
	if s.splitDirty[0] {
		t.Error("chunk still split after checkpoint")
	}
	// Data still reads back correctly through both paths.
	got := make([]byte, 5)
	if err := s.ReadThrough(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "dirty" {
		t.Errorf("got %q", got)
	}
	// Checkpointing a clean chunk is a no-op.
	if err := s.CheckpointChunk(8192); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckpointChunk(HomeAddr(s.Size())); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range checkpoint: %v", err)
	}
	conv := newSys(t, ModelConventional, 4, 2)
	if err := conv.CheckpointChunk(0); err == nil {
		t.Error("CheckpointChunk accepted under conventional model")
	}
}

func TestDirectWriteMinorOverflow(t *testing.T) {
	// Force a 16-bit minor overflow with a tiny loop is impractical
	// (65535 writes); instead pre-load the minor near its cap and write
	// twice more.
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.WriteThrough(0, []byte("seed")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().OverflowReEncryptions
	// Drive the first sector's minor to the cap behind the scenes, then
	// re-sync the split tree so freshness still holds.
	s.cxlSplit[0].Minors[0] = 65535
	if err := s.splitTree.Update(0, s.cxlSplit[0].Encode()); err != nil {
		t.Fatal(err)
	}
	// Full-sector write: no read-modify-write, so the forged minor is only
	// consumed as the "old pair" of the overflow re-encryption sweep.
	full := bytes.Repeat([]byte("boom!!!!"), 4)
	if err := s.WriteThrough(0, full); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().OverflowReEncryptions - before; got != 8 {
		t.Errorf("overflow re-encryptions = %d, want 8 (whole chunk)", got)
	}
	// Everything still verifies and decrypts.
	got := make([]byte, 32)
	if err := s.ReadThrough(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Errorf("got %q", got)
	}
}

func TestDirectPathTamperDetected(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.WriteThrough(0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if !s.CorruptHome(0) {
		t.Fatal("CorruptHome(0) reported out of range")
	}
	err := s.ReadThrough(0, make([]byte, 7))
	if !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered direct read: %v", err)
	}
}

func TestDirectPathReplayDetected(t *testing.T) {
	s := newSys(t, ModelSalus, 4, 2)
	if err := s.WriteThrough(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Attacker snapshots the untrusted split counter block, data, and MACs.
	oldSplit := s.cxlSplit[0]
	oldData := append([]byte(nil), s.cxlData[:256]...)
	oldMACs := make([]maclibSector, 2)
	for b := 0; b < 2; b++ {
		oldMACs[b] = maclibSector{macs: s.macSectors[b].MACs, major: s.macSectors[b].Major}
	}
	if err := s.WriteThrough(0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Replay everything untrusted.
	s.cxlSplit[0] = oldSplit
	copy(s.cxlData[:256], oldData)
	for b := 0; b < 2; b++ {
		s.macSectors[b].MACs = oldMACs[b].macs
		s.macSectors[b].Major = oldMACs[b].major
	}
	err := s.ReadThrough(0, make([]byte, 2))
	if !errors.Is(err, ErrFreshness) {
		t.Errorf("replayed direct read: %v", err)
	}
}

func TestMixedDirectAndCachedTraffic(t *testing.T) {
	// Interleave direct and cached accesses across pages and verify the
	// final state end-to-end.
	s := newSys(t, ModelSalus, 16, 4)
	for pg := 0; pg < 16; pg++ {
		addr := HomeAddr(pg * 4096)
		v := []byte{byte(pg), byte(pg + 1)}
		var err error
		if pg%2 == 0 && !s.IsResident(addr) {
			err = s.WriteThrough(addr, v)
		} else {
			err = s.Write(addr, v)
		}
		if err != nil {
			t.Fatalf("page %d: %v", pg, err)
		}
	}
	for pg := 0; pg < 16; pg++ {
		got := make([]byte, 2)
		if err := s.Read(HomeAddr(pg*4096), got); err != nil {
			t.Fatalf("page %d: %v", pg, err)
		}
		if got[0] != byte(pg) || got[1] != byte(pg+1) {
			t.Fatalf("page %d: got %v", pg, got)
		}
	}
}
