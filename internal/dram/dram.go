// Package dram models the GPU device memory (HBM/GDDR) as a set of
// independent channels. Each channel is a bandwidth-limited FIFO server:
// a request occupies the channel for bytes/bandwidth cycles and completes
// after an additional fixed access latency. Fine-grained chunk interleaving
// maps consecutive 256 B chunks of a page to consecutive channels, which is
// how current GPUs spread a page over many partitions (§II-D of the paper).
package dram

import (
	"fmt"

	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// Channel is one device-memory channel (one memory partition's DRAM).
type Channel struct {
	id     int
	server *sim.Server
}

// Memory is the collection of device channels.
type Memory struct {
	eng       *sim.Engine
	channels  []*Channel
	chunkSize uint64
	traffic   *stats.Traffic
}

// New creates a device memory with n channels, each serving bytesPerCycle
// with the given fixed latency. Traffic is accounted into tr (tier Device).
func New(eng *sim.Engine, n int, bytesPerCycle, latency uint64, chunkSize uint64, tr *stats.Traffic) *Memory {
	if n <= 0 {
		panic(fmt.Sprintf("dram: invalid channel count %d", n))
	}
	m := &Memory{eng: eng, chunkSize: chunkSize, traffic: tr}
	for i := 0; i < n; i++ {
		m.channels = append(m.channels, &Channel{
			id:     i,
			server: sim.NewServer(eng, 1, bytesPerCycle, sim.Cycle(latency)),
		})
	}
	return m
}

// Channels returns the channel count.
func (m *Memory) Channels() int { return len(m.channels) }

// ChannelFor maps a device-memory address to its channel by chunk
// interleaving: consecutive chunks go to consecutive channels.
func (m *Memory) ChannelFor(addr uint64) int {
	return int((addr / m.chunkSize) % uint64(len(m.channels)))
}

// Access submits a request of the given size and class to the channel
// owning addr, and schedules done (may be nil) at completion time.
func (m *Memory) Access(addr uint64, bytes uint64, class stats.Class, done func()) sim.Cycle {
	ch := m.channels[m.ChannelFor(addr)]
	if m.traffic != nil {
		m.traffic.Add(stats.Device, class, bytes)
	}
	return ch.server.Submit(bytes, done)
}

// AccessChannel submits directly to a channel index (used for metadata that
// is addressed per-partition rather than by global address).
func (m *Memory) AccessChannel(channel int, bytes uint64, class stats.Class, done func()) sim.Cycle {
	ch := m.channels[channel%len(m.channels)]
	if m.traffic != nil {
		m.traffic.Add(stats.Device, class, bytes)
	}
	return ch.server.Submit(bytes, done)
}

// BusyCycles sums busy cycles over all channels.
func (m *Memory) BusyCycles() uint64 {
	var sum uint64
	for _, ch := range m.channels {
		sum += uint64(ch.server.BusyCycles())
	}
	return sum
}

// BytesServed sums bytes served over all channels.
func (m *Memory) BytesServed() uint64 {
	var sum uint64
	for _, ch := range m.channels {
		sum += ch.server.UnitsServed()
	}
	return sum
}

// Utilization returns mean channel utilisation (0..1).
func (m *Memory) Utilization() float64 {
	if len(m.channels) == 0 {
		return 0
	}
	var sum float64
	for _, ch := range m.channels {
		sum += ch.server.Utilization()
	}
	return sum / float64(len(m.channels))
}

// MaxQueueDelay returns the worst current queueing delay across channels,
// a congestion signal used by tests.
func (m *Memory) MaxQueueDelay() sim.Cycle {
	var max sim.Cycle
	for _, ch := range m.channels {
		if d := ch.server.QueueDelay(); d > max {
			max = d
		}
	}
	return max
}
