package dram

import (
	"testing"

	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

func TestChannelInterleaving(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 4, 32, 100, 256, nil)
	cases := []struct {
		addr uint64
		want int
	}{
		{0, 0}, {255, 0}, {256, 1}, {512, 2}, {768, 3}, {1024, 0}, {1280, 1},
	}
	for _, c := range cases {
		if got := m.ChannelFor(c.addr); got != c.want {
			t.Errorf("ChannelFor(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestAccessLatencyAndBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 2, 32, 100, 256, nil)
	var done1, done2, done3 sim.Cycle
	eng.At(0, func() {
		done1 = m.Access(0, 32, stats.Data, nil)   // ch0: 1 cycle service + 100
		done2 = m.Access(0, 32, stats.Data, nil)   // ch0 queued: completes 1 cycle later
		done3 = m.Access(256, 32, stats.Data, nil) // ch1: parallel
	})
	eng.Run(0)
	if done1 != 101 {
		t.Errorf("done1 = %d, want 101", done1)
	}
	if done2 != 102 {
		t.Errorf("done2 = %d, want 102 (queued behind done1)", done2)
	}
	if done3 != 101 {
		t.Errorf("done3 = %d, want 101 (independent channel)", done3)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng := sim.NewEngine()
	var tr stats.Traffic
	m := New(eng, 2, 32, 10, 256, &tr)
	eng.At(0, func() {
		m.Access(0, 128, stats.Data, nil)
		m.Access(0, 32, stats.MAC, nil)
		m.AccessChannel(1, 64, stats.Counter, nil)
	})
	eng.Run(0)
	if got := tr.Bytes(stats.Device, stats.Data); got != 128 {
		t.Errorf("data bytes = %d, want 128", got)
	}
	if got := tr.Bytes(stats.Device, stats.MAC); got != 32 {
		t.Errorf("mac bytes = %d, want 32", got)
	}
	if got := tr.Bytes(stats.Device, stats.Counter); got != 64 {
		t.Errorf("counter bytes = %d, want 64", got)
	}
	if got := m.BytesServed(); got != 224 {
		t.Errorf("BytesServed = %d, want 224", got)
	}
}

func TestCallbackFires(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 1, 32, 5, 256, nil)
	fired := sim.Cycle(0)
	eng.At(0, func() {
		m.Access(0, 64, stats.Data, func() { fired = eng.Now() })
	})
	eng.Run(0)
	if fired != 7 { // 64B at 32B/cycle = 2 cycles + 5 latency
		t.Errorf("callback at %d, want 7", fired)
	}
}

func TestBusyAndUtilization(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 2, 32, 0, 256, nil)
	eng.At(0, func() {
		m.Access(0, 320, stats.Data, nil) // ch0 busy 10 cycles
	})
	eng.At(20, func() {}) // advance the clock to cycle 20
	eng.Run(0)
	if got := m.BusyCycles(); got != 10 {
		t.Errorf("BusyCycles = %d, want 10", got)
	}
	// ch0 busy 10/20 = 0.5, ch1 idle -> mean 0.25.
	if got := m.Utilization(); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
}

func TestAccessChannelWraps(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 3, 32, 0, 256, nil)
	eng.At(0, func() { m.AccessChannel(7, 32, stats.Data, nil) }) // 7 % 3 = 1
	eng.Run(0)
	if m.BytesServed() != 32 {
		t.Error("wrapped channel access not served")
	}
}

func TestNewPanicsOnZeroChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0 channels) did not panic")
		}
	}()
	New(sim.NewEngine(), 0, 32, 0, 256, nil)
}

func TestChannelsAndMaxQueueDelay(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 4, 32, 0, 256, nil)
	if m.Channels() != 4 {
		t.Errorf("Channels = %d, want 4", m.Channels())
	}
	var delay sim.Cycle
	eng.At(0, func() {
		m.Access(0, 320, stats.Data, nil) // ch0 busy 10 cycles
		delay = m.MaxQueueDelay()
	})
	eng.Run(0)
	if delay != 10 {
		t.Errorf("MaxQueueDelay = %d, want 10", delay)
	}
}
