package counters

import (
	"testing"
	"testing/quick"
)

func TestConventionalIncAndOverflow(t *testing.T) {
	var s ConventionalSector
	for i := 0; i < ConvMinorMax; i++ {
		if s.Inc(5) {
			t.Fatalf("overflow at increment %d", i)
		}
	}
	if s.Minors[5] != ConvMinorMax {
		t.Fatalf("minor = %d, want %d", s.Minors[5], ConvMinorMax)
	}
	s.Minors[7] = 3
	if !s.Inc(5) {
		t.Fatal("no overflow at max")
	}
	if s.Major != 1 {
		t.Errorf("major = %d, want 1", s.Major)
	}
	for i, m := range s.Minors {
		if m != 0 {
			t.Errorf("minor %d = %d after overflow, want 0", i, m)
		}
	}
}

func TestConventionalPair(t *testing.T) {
	var s ConventionalSector
	s.Major = 9
	s.Minors[3] = 4
	maj, min := s.Pair(3)
	if maj != 9 || min != 4 {
		t.Errorf("Pair = (%d,%d), want (9,4)", maj, min)
	}
}

func TestConventionalEncodeDecodeRoundTrip(t *testing.T) {
	f := func(major uint64, minorsRaw [ConvMinors]uint8) bool {
		var s ConventionalSector
		s.Major = major
		for i, m := range minorsRaw {
			s.Minors[i] = m & ConvMinorMax
		}
		got := DecodeConventional(s.Encode())
		return got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConventionalEncodePanicsOnWideMinor(t *testing.T) {
	var s ConventionalSector
	s.Minors[0] = ConvMinorMax + 1
	defer func() {
		if recover() == nil {
			t.Error("Encode accepted out-of-range minor")
		}
	}()
	s.Encode()
}

func TestIFGroupIncOverflowIsolated(t *testing.T) {
	var s IFSector
	g := &s.Groups[0]
	g.Minors[2] = IFMinorMax
	s.Groups[1].Major = 77
	s.Groups[1].Minors[0] = 5
	if !g.Inc(2) {
		t.Fatal("no overflow at max")
	}
	if g.Major != 1 {
		t.Errorf("group 0 major = %d, want 1", g.Major)
	}
	// Overflow in one chunk's group must not disturb the other chunk.
	if s.Groups[1].Major != 77 || s.Groups[1].Minors[0] != 5 {
		t.Error("overflow leaked into sibling group")
	}
}

func TestIFGroupCollapse(t *testing.T) {
	g := IFGroup{Major: 10}
	// Already collapsed: no re-encryption.
	maj, reenc := g.Collapse()
	if maj != 10 || reenc {
		t.Errorf("clean collapse = (%d,%v), want (10,false)", maj, reenc)
	}
	g.Minors[4] = 2
	maj, reenc = g.Collapse()
	if maj != 11 || !reenc {
		t.Errorf("dirty collapse = (%d,%v), want (11,true)", maj, reenc)
	}
	for _, m := range g.Minors {
		if m != 0 {
			t.Error("minors not reset by collapse")
		}
	}
}

func TestIFGroupFillFromCollapsed(t *testing.T) {
	g := IFGroup{CXLTag: 1, Major: 5, Minors: [IFMinors]uint8{1, 2, 3}}
	g.FillFromCollapsed(42, 99)
	if g.CXLTag != 42 || g.Major != 99 {
		t.Errorf("fill = %+v", g)
	}
	for _, m := range g.Minors {
		if m != 0 {
			t.Error("minors not reset on fill")
		}
	}
}

func TestIFSectorEncodeDecodeRoundTrip(t *testing.T) {
	f := func(tags [2]uint32, majors [2]uint32, minors [2][IFMinors]uint8) bool {
		var s IFSector
		for i := range s.Groups {
			s.Groups[i] = IFGroup{CXLTag: tags[i], Major: majors[i], Minors: minors[i]}
		}
		return DecodeIF(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollapsedSectorRoundTrip(t *testing.T) {
	f := func(majors [CollapsedMajors]uint32) bool {
		s := CollapsedSector{Majors: majors}
		return DecodeCollapsed(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCXLSplitIncOverflow(t *testing.T) {
	var s CXLSplitSector
	s.Minors[0] = CXLMinorMax
	if !s.Inc(0) {
		t.Fatal("no overflow at 16-bit max")
	}
	if s.Major != 1 {
		t.Errorf("major = %d, want 1", s.Major)
	}
	if s.Inc(1) {
		t.Error("fresh minor overflowed")
	}
	if maj, min := s.Pair(1); maj != 1 || min != 1 {
		t.Errorf("Pair = (%d,%d), want (1,1)", maj, min)
	}
}

func TestCXLSplitCollapse(t *testing.T) {
	s := CXLSplitSector{Major: 3}
	if maj, reenc := s.Collapse(); maj != 3 || reenc {
		t.Error("clean collapse changed state")
	}
	s.Minors[7] = 1
	if maj, reenc := s.Collapse(); maj != 4 || !reenc {
		t.Error("dirty collapse wrong")
	}
}

func TestCXLSplitRoundTrip(t *testing.T) {
	f := func(major uint32, minors [IFMinors]uint16) bool {
		s := CXLSplitSector{Major: major, Minors: minors}
		return DecodeCXLSplit(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutWidths(t *testing.T) {
	// The whole design rests on these blocks fitting in a 32-byte sector.
	// Conventional: 8 B major + 32×6 bits = 8 + 24 = 32 B.
	if 8+ConvMinors*ConvMinorBits/8 != SectorBytes {
		t.Error("conventional layout does not fill a sector")
	}
	// IF: 2 groups × (4 tag + 4 major + 8 minors) = 32 B.
	if GroupsPerSector*(4+4+IFMinors) != SectorBytes {
		t.Error("interleaving-friendly layout does not fill a sector")
	}
	// Collapsed: 8 × 4 B majors = 32 B.
	if CollapsedMajors*4 != SectorBytes {
		t.Error("collapsed layout does not fill a sector")
	}
	// CXL split: 4 + 16 = 20 B fits with 12 B reserved.
	if 4+IFMinors*2 > SectorBytes {
		t.Error("CXL split layout exceeds a sector")
	}
}

func TestEncodeImagesDiffer(t *testing.T) {
	// Distinct states must encode to distinct images (injective on the
	// covered ranges) — spot check a few nearby states.
	a := IFSector{}
	b := IFSector{}
	b.Groups[1].Minors[7] = 1
	if a.Encode() == b.Encode() {
		t.Error("distinct IF sectors encode identically")
	}
	c := CollapsedSector{}
	d := CollapsedSector{}
	d.Majors[7] = 1
	if c.Encode() == d.Encode() {
		t.Error("distinct collapsed sectors encode identically")
	}
}
