package counters

import "testing"

// FuzzDecodeConventional checks that decoding any 32-byte image and
// re-encoding it is stable (idempotent decode→encode→decode), i.e. the
// codec cannot corrupt counter state read from untrusted memory.
func FuzzDecodeConventional(f *testing.F) {
	f.Add(make([]byte, SectorBytes))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < SectorBytes {
			return
		}
		var img [SectorBytes]byte
		copy(img[:], raw)
		s := DecodeConventional(img)
		re := DecodeConventional(s.Encode())
		if re != s {
			t.Fatalf("decode/encode unstable: %+v vs %+v", s, re)
		}
	})
}

// FuzzDecodeIF is the same stability check for the interleaving-friendly
// layout.
func FuzzDecodeIF(f *testing.F) {
	f.Add(make([]byte, SectorBytes))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < SectorBytes {
			return
		}
		var img [SectorBytes]byte
		copy(img[:], raw)
		s := DecodeIF(img)
		if DecodeIF(s.Encode()) != s {
			t.Fatal("IF decode/encode unstable")
		}
		// IF images are dense: every byte participates, so encoding must
		// reproduce the input exactly.
		if s.Encode() != img {
			t.Fatal("IF encode lost information")
		}
	})
}

// FuzzDecodeCXLSplit checks the Fig. 6 layout codec.
func FuzzDecodeCXLSplit(f *testing.F) {
	f.Add(make([]byte, SectorBytes))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < SectorBytes {
			return
		}
		var img [SectorBytes]byte
		copy(img[:], raw)
		s := DecodeCXLSplit(img)
		if DecodeCXLSplit(s.Encode()) != s {
			t.Fatal("CXL split decode/encode unstable")
		}
	})
}
