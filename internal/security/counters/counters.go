// Package counters implements the bit-exact encryption-counter block
// layouts the paper compares:
//
//   - ConventionalSector: the GPU split-counter design of prior work
//     (PSSM): one 64-bit major counter shared by 32 6-bit minor counters in
//     a 32-byte counter sector, covering 32 data sectors (1 KiB). Because
//     the shared major spans four interleaving chunks, chunks from
//     different CXL pages that land contiguously in one device partition
//     would have to share (and so re-encrypt to unify) majors — the problem
//     §IV-A identifies.
//
//   - IFGroup / IFSector: Salus's interleaving-friendly split counters
//     (Fig. 4). One 32-bit major is shared by exactly the 8 minors of one
//     256 B chunk, and a 32-bit CXL tag identifies which CXL page the chunk
//     belongs to, enabling fetch-only-on-access. Two groups fit in one
//     32-byte counter sector.
//
//   - CollapsedSector: the CXL-side representation (§IV-A2): minors are
//     collapsed to zero, leaving one 32-bit major per chunk; eight majors
//     pack into one 32-byte sector covering 2 KiB of data, which is what
//     the compact CXL-side BMT is built over.
//
//   - CXLSplitSector: the CXL-side split design with doubled (16-bit)
//     minors (Fig. 6), used when CXL-resident data is written in place so
//     that minor overflows — each forcing a re-encryption sweep — stay
//     rare.
package counters

import (
	"encoding/binary"
	"fmt"
)

// Layout constants shared with the rest of the system.
const (
	SectorBytes = 32 // counter sector size

	// Conventional layout.
	ConvMinors    = 32 // minors per conventional sector
	ConvMinorBits = 6
	ConvMinorMax  = 1<<ConvMinorBits - 1

	// Interleaving-friendly layout.
	IFMinors        = 8 // minors per group = sectors per 256 B chunk
	IFMinorBits     = 8
	IFMinorMax      = 1<<IFMinorBits - 1
	GroupsPerSector = 2

	// Collapsed layout.
	CollapsedMajors = 8 // 32-bit majors per 32 B sector

	// CXL split layout (doubled minors).
	CXLMinorBits = 16
	CXLMinorMax  = 1<<CXLMinorBits - 1
)

// ConventionalSector is the prior-work GPU split-counter block.
type ConventionalSector struct {
	Major  uint64
	Minors [ConvMinors]uint8 // values limited to 6 bits
}

// Inc increments minor i. When the minor would exceed its 6-bit range the
// sector overflows: the major is incremented, every minor resets to zero,
// and the caller must re-encrypt all data the sector covers. It reports
// whether that overflow happened.
func (s *ConventionalSector) Inc(i int) (overflow bool) {
	if s.Minors[i] < ConvMinorMax {
		s.Minors[i]++
		return false
	}
	s.Major++
	s.Minors = [ConvMinors]uint8{}
	return true
}

// Pair returns the (major, minor) pair for data sector i, as used in the IV.
func (s *ConventionalSector) Pair(i int) (major, minor uint64) {
	return s.Major, uint64(s.Minors[i])
}

// Encode packs the sector into its 32-byte memory image:
// [8 B major][32 × 6-bit minors = 24 B].
func (s *ConventionalSector) Encode() [SectorBytes]byte {
	var out [SectorBytes]byte
	binary.LittleEndian.PutUint64(out[0:8], s.Major)
	packBits(out[8:], s.Minors[:], ConvMinorBits)
	return out
}

// DecodeConventional unpacks a 32-byte image.
func DecodeConventional(img [SectorBytes]byte) ConventionalSector {
	var s ConventionalSector
	s.Major = binary.LittleEndian.Uint64(img[0:8])
	unpackBits(img[8:], s.Minors[:], ConvMinorBits)
	return s
}

// IFGroup is one interleaving-friendly counter group: the counters of one
// 256 B chunk resident in device memory.
type IFGroup struct {
	CXLTag uint32 // identifies the CXL page the chunk belongs to
	Major  uint32
	Minors [IFMinors]uint8
}

// Inc increments minor i with the same overflow contract as
// ConventionalSector.Inc, but the blast radius is one chunk.
func (g *IFGroup) Inc(i int) (overflow bool) {
	if g.Minors[i] < IFMinorMax {
		g.Minors[i]++
		return false
	}
	g.Major++
	g.Minors = [IFMinors]uint8{}
	return true
}

// Pair returns the (major, minor) pair for sector i of the chunk.
func (g *IFGroup) Pair(i int) (major, minor uint64) {
	return uint64(g.Major), uint64(g.Minors[i])
}

// Collapse implements the eviction-side checkpoint (§IV-A2): if any minor
// is non-zero the major is incremented and all minors reset, requiring one
// re-encryption of the chunk; otherwise the group is already collapsed.
// It returns the collapsed major and whether re-encryption is needed.
func (g *IFGroup) Collapse() (major uint32, reencrypt bool) {
	for _, m := range g.Minors {
		if m != 0 {
			g.Major++
			g.Minors = [IFMinors]uint8{}
			return g.Major, true
		}
	}
	return g.Major, false
}

// FillFromCollapsed installs a major arriving from the CXL side (embedded
// in a MAC sector) and resets the minors, as happens on page transfer.
func (g *IFGroup) FillFromCollapsed(cxlTag, major uint32) {
	g.CXLTag = cxlTag
	g.Major = major
	g.Minors = [IFMinors]uint8{}
}

// IFSector packs two chunk groups into one 32-byte counter sector
// (Fig. 4): per group [4 B CXL tag][4 B major][8 × 1 B minors] = 16 B.
type IFSector struct {
	Groups [GroupsPerSector]IFGroup
}

// Encode packs the sector into its 32-byte memory image.
func (s *IFSector) Encode() [SectorBytes]byte {
	var out [SectorBytes]byte
	for gi, g := range s.Groups {
		base := gi * 16
		binary.LittleEndian.PutUint32(out[base:base+4], g.CXLTag)
		binary.LittleEndian.PutUint32(out[base+4:base+8], g.Major)
		copy(out[base+8:base+16], g.Minors[:])
	}
	return out
}

// DecodeIF unpacks a 32-byte image.
func DecodeIF(img [SectorBytes]byte) IFSector {
	var s IFSector
	for gi := range s.Groups {
		base := gi * 16
		s.Groups[gi].CXLTag = binary.LittleEndian.Uint32(img[base : base+4])
		s.Groups[gi].Major = binary.LittleEndian.Uint32(img[base+4 : base+8])
		copy(s.Groups[gi].Minors[:], img[base+8:base+16])
	}
	return s
}

// CollapsedSector is the CXL-side compact representation: eight 32-bit
// majors, one per chunk, covering 2 KiB of data per 32-byte sector. The
// CXL-side BMT is built over an array of these.
type CollapsedSector struct {
	Majors [CollapsedMajors]uint32
}

// Encode packs the sector into its 32-byte memory image.
func (s *CollapsedSector) Encode() [SectorBytes]byte {
	var out [SectorBytes]byte
	for i, m := range s.Majors {
		binary.LittleEndian.PutUint32(out[i*4:(i+1)*4], m)
	}
	return out
}

// DecodeCollapsed unpacks a 32-byte image.
func DecodeCollapsed(img [SectorBytes]byte) CollapsedSector {
	var s CollapsedSector
	for i := range s.Majors {
		s.Majors[i] = binary.LittleEndian.Uint32(img[i*4 : (i+1)*4])
	}
	return s
}

// CXLSplitSector is the Fig. 6 layout for one chunk written in place on the
// CXL side: a 32-bit major and eight doubled (16-bit) minors, packed as
// [4 B major][16 B minors][12 B reserved] in a 32-byte sector.
type CXLSplitSector struct {
	Major  uint32
	Minors [IFMinors]uint16
}

// Inc increments minor i; on 16-bit overflow the major increments, minors
// reset, and the chunk must be re-encrypted.
func (s *CXLSplitSector) Inc(i int) (overflow bool) {
	if s.Minors[i] < CXLMinorMax {
		s.Minors[i]++
		return false
	}
	s.Major++
	s.Minors = [IFMinors]uint16{}
	return true
}

// Pair returns the (major, minor) pair for sector i of the chunk.
func (s *CXLSplitSector) Pair(i int) (major, minor uint64) {
	return uint64(s.Major), uint64(s.Minors[i])
}

// Collapse checkpoints the chunk as in IFGroup.Collapse.
func (s *CXLSplitSector) Collapse() (major uint32, reencrypt bool) {
	for _, m := range s.Minors {
		if m != 0 {
			s.Major++
			s.Minors = [IFMinors]uint16{}
			return s.Major, true
		}
	}
	return s.Major, false
}

// Encode packs the sector into its 32-byte memory image.
func (s *CXLSplitSector) Encode() [SectorBytes]byte {
	var out [SectorBytes]byte
	binary.LittleEndian.PutUint32(out[0:4], s.Major)
	for i, m := range s.Minors {
		binary.LittleEndian.PutUint16(out[4+i*2:6+i*2], m)
	}
	return out
}

// DecodeCXLSplit unpacks a 32-byte image.
func DecodeCXLSplit(img [SectorBytes]byte) CXLSplitSector {
	var s CXLSplitSector
	s.Major = binary.LittleEndian.Uint32(img[0:4])
	for i := range s.Minors {
		s.Minors[i] = binary.LittleEndian.Uint16(img[4+i*2 : 6+i*2])
	}
	return s
}

// packBits packs values (each narrower than 8 bits) densely into dst.
func packBits(dst []byte, values []uint8, bits int) {
	bitPos := 0
	for _, v := range values {
		if int(v) > 1<<uint(bits)-1 {
			panic(fmt.Sprintf("counters: value %d exceeds %d bits", v, bits))
		}
		for b := 0; b < bits; b++ {
			if v&(1<<uint(b)) != 0 {
				dst[bitPos/8] |= 1 << uint(bitPos%8)
			}
			bitPos++
		}
	}
}

// unpackBits is the inverse of packBits.
func unpackBits(src []byte, values []uint8, bits int) {
	bitPos := 0
	for i := range values {
		var v uint8
		for b := 0; b < bits; b++ {
			if src[bitPos/8]&(1<<uint(bitPos%8)) != 0 {
				v |= 1 << uint(b)
			}
			bitPos++
		}
		values[i] = v
	}
}
