// Package bmt implements a Bonsai Merkle Tree: the integrity tree built
// over encryption-counter blocks that provides freshness (replay
// protection). Interior nodes are keyed hashes of their children; the root
// lives inside the TCB and is never written to untrusted memory. Replaying
// a stale counter block makes the recomputed path disagree with the stored
// nodes (or ultimately the root), which verification reports as an error.
//
// The tree is built level by level with arity Arity over fixed-size leaf
// sectors. Per the paper, each memory tier maintains its own local tree:
// the device tree covers the interleaving-friendly counter region, and the
// CXL tree covers the compact collapsed-counter region — which is what
// shrinks the CXL tree relative to building over MAC blocks (§IV-A2).
package bmt

import (
	"errors"
	"fmt"
	"sync"

	"github.com/salus-sim/salus/internal/security/cryptoeng"
)

// Arity is the tree fan-out: a 32-byte node hash covers 8 children.
const Arity = 8

// LeafBytes is the size of one leaf (a counter sector image).
const LeafBytes = 32

// Tree is a Bonsai Merkle Tree over a fixed number of leaves.
//
// levels[0] holds the leaf hashes; levels[len-1] holds the single root.
// The untrusted storage holds the leaf data itself and (conceptually) the
// interior nodes below the root; the root hash is TCB state.
//
// A Tree is safe for concurrent use: every exported method takes the
// internal mutex. One tree spans all page shards of a securemem.System,
// so sharded callers synchronize here rather than around the tree.
type Tree struct {
	mu       sync.Mutex
	eng      *cryptoeng.Engine
	nLeaves  int
	levels   [][][32]byte
	leafData [][LeafBytes]byte

	// Trusted-node cache (see SetTrustCache).
	trusted  map[[2]int]bool
	trustCap int
}

// New builds a tree over initially zeroed leaves.
func New(eng *cryptoeng.Engine, nLeaves int) (*Tree, error) {
	if eng == nil {
		return nil, errors.New("bmt: nil engine")
	}
	if nLeaves <= 0 {
		return nil, fmt.Errorf("bmt: leaf count %d must be positive", nLeaves)
	}
	t := &Tree{eng: eng, nLeaves: nLeaves, leafData: make([][LeafBytes]byte, nLeaves)}
	// Build level sizes.
	for n := nLeaves; ; n = (n + Arity - 1) / Arity {
		t.levels = append(t.levels, make([][32]byte, n))
		if n == 1 {
			break
		}
	}
	for i := 0; i < nLeaves; i++ {
		t.rehashLeaf(i)
	}
	for lvl := 1; lvl < len(t.levels); lvl++ {
		for i := range t.levels[lvl] {
			t.rehashNode(lvl, i)
		}
	}
	return t, nil
}

// Leaves returns the leaf count.
func (t *Tree) Leaves() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nLeaves
}

// Levels returns the number of levels including leaf hashes and root.
func (t *Tree) Levels() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.levels)
}

// InteriorNodes returns the number of nodes stored in untrusted memory:
// everything except the root (leaf data is counted separately as counter
// storage, but leaf hash nodes are materialised tree nodes).
func (t *Tree) InteriorNodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		n += len(t.levels[lvl])
	}
	return n
}

// Root returns the current root hash (TCB state).
func (t *Tree) Root() [32]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root()
}

func (t *Tree) root() [32]byte { return t.levels[len(t.levels)-1][0] }

func (t *Tree) rehashLeaf(i int) {
	t.levels[0][i] = t.eng.HashNode(t.leafData[i][:], 0, i)
}

func (t *Tree) rehashNode(lvl, i int) {
	first := i * Arity
	last := first + Arity
	if last > len(t.levels[lvl-1]) {
		last = len(t.levels[lvl-1])
	}
	var buf []byte
	for c := first; c < last; c++ {
		h := t.levels[lvl-1][c]
		buf = append(buf, h[:]...)
	}
	t.levels[lvl][i] = t.eng.HashNode(buf, lvl, i)
}

// Update installs new leaf data and recomputes the path to the root. This
// is the write-side operation: it happens when a counter block is written
// back to memory.
func (t *Tree) Update(leaf int, data [LeafBytes]byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf < 0 || leaf >= t.nLeaves {
		return fmt.Errorf("bmt: leaf %d out of range [0,%d)", leaf, t.nLeaves)
	}
	t.leafData[leaf] = data
	t.rehashLeaf(leaf)
	t.trust(0, leaf)
	idx := leaf
	for lvl := 1; lvl < len(t.levels); lvl++ {
		idx /= Arity
		t.rehashNode(lvl, idx)
		t.trust(lvl, idx)
	}
	return nil
}

// Leaf returns the stored leaf data (what untrusted memory holds).
func (t *Tree) Leaf(leaf int) ([LeafBytes]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf < 0 || leaf >= t.nLeaves {
		return [LeafBytes]byte{}, fmt.Errorf("bmt: leaf %d out of range [0,%d)", leaf, t.nLeaves)
	}
	return t.leafData[leaf], nil
}

// Verify checks candidate leaf data (as read from untrusted memory)
// against the tree: it recomputes the leaf hash and the path upward and
// compares against the root. A replayed (stale) or tampered leaf fails.
func (t *Tree) Verify(leaf int, data [LeafBytes]byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf < 0 || leaf >= t.nLeaves {
		return fmt.Errorf("bmt: leaf %d out of range [0,%d)", leaf, t.nLeaves)
	}
	h := t.eng.HashNode(data[:], 0, leaf)
	if h != t.levels[0][leaf] {
		return fmt.Errorf("bmt: leaf %d hash mismatch (tampered or replayed counter block)", leaf)
	}
	// Recompute the path from stored sibling hashes and compare to root —
	// this is what defeats an attacker who also replays interior nodes.
	idx := leaf
	for lvl := 1; lvl < len(t.levels); lvl++ {
		parent := idx / Arity
		first := parent * Arity
		last := first + Arity
		if last > len(t.levels[lvl-1]) {
			last = len(t.levels[lvl-1])
		}
		var buf []byte
		for c := first; c < last; c++ {
			sib := t.levels[lvl-1][c]
			buf = append(buf, sib[:]...)
		}
		h = t.eng.HashNode(buf, lvl, parent)
		if h != t.levels[lvl][parent] {
			return fmt.Errorf("bmt: level %d node %d mismatch", lvl, parent)
		}
		idx = parent
	}
	if h != t.root() {
		return errors.New("bmt: root mismatch")
	}
	return nil
}

// CorruptLeafForTest overwrites stored leaf data without rehashing,
// simulating a physical attack on untrusted memory. Tests use it to check
// that Verify detects the attack.
func (t *Tree) CorruptLeafForTest(leaf int, data [LeafBytes]byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.leafData[leaf] = data
}

// PathLength returns the number of tree-node reads needed to verify a leaf
// when nothing is cached: one node per level below the root.
func PathLength(nLeaves int) int {
	if nLeaves <= 0 {
		return 0
	}
	levels := 1
	for n := nLeaves; n > 1; n = (n + Arity - 1) / Arity {
		levels++
	}
	return levels - 1
}

// SetTrustCache enables a bounded cache of trusted interior nodes
// (capacity entries; 0 disables). It models the hardware BMT cache: a node
// that was verified against the root — or produced on-chip by an update —
// is trusted, and a later verification may stop at the first trusted
// ancestor instead of walking to the root. When the cache overflows it is
// cleared wholesale (a cheap approximation of eviction that can only cause
// extra verification work, never unsoundness).
func (t *Tree) SetTrustCache(capacity int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trustCap = capacity
	t.trusted = nil
	if capacity > 0 {
		t.trusted = make(map[[2]int]bool, capacity)
	}
}

func (t *Tree) trust(level, index int) {
	if t.trusted == nil {
		return
	}
	if len(t.trusted) >= t.trustCap {
		clear(t.trusted)
	}
	t.trusted[[2]int{level, index}] = true
}

func (t *Tree) isTrusted(level, index int) bool {
	return t.trusted != nil && t.trusted[[2]int{level, index}]
}

// VerifyCached is Verify with the trusted-node cache: the upward walk ends
// at the first trusted ancestor. Without a cache configured it is exactly
// Verify.
func (t *Tree) VerifyCached(leaf int, data [LeafBytes]byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if leaf < 0 || leaf >= t.nLeaves {
		return fmt.Errorf("bmt: leaf %d out of range [0,%d)", leaf, t.nLeaves)
	}
	h := t.eng.HashNode(data[:], 0, leaf)
	if h != t.levels[0][leaf] {
		return fmt.Errorf("bmt: leaf %d hash mismatch (tampered or replayed counter block)", leaf)
	}
	if t.isTrusted(0, leaf) {
		return nil
	}
	idx := leaf
	var path [][2]int
	path = append(path, [2]int{0, leaf})
	for lvl := 1; lvl < len(t.levels); lvl++ {
		parent := idx / Arity
		first := parent * Arity
		last := first + Arity
		if last > len(t.levels[lvl-1]) {
			last = len(t.levels[lvl-1])
		}
		var buf []byte
		for c := first; c < last; c++ {
			sib := t.levels[lvl-1][c]
			buf = append(buf, sib[:]...)
		}
		h = t.eng.HashNode(buf, lvl, parent)
		if h != t.levels[lvl][parent] {
			return fmt.Errorf("bmt: level %d node %d mismatch", lvl, parent)
		}
		if t.isTrusted(lvl, parent) || lvl == len(t.levels)-1 {
			// Reached a trusted ancestor (or the in-TCB root): the whole
			// walked path is now trusted.
			for _, p := range path {
				t.trust(p[0], p[1])
			}
			t.trust(lvl, parent)
			return nil
		}
		path = append(path, [2]int{lvl, parent})
		idx = parent
	}
	return nil
}
