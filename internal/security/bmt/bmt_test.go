package bmt

import (
	"testing"
	"testing/quick"

	"github.com/salus-sim/salus/internal/security/cryptoeng"
)

func newEngine(t *testing.T) *cryptoeng.Engine {
	t.Helper()
	return cryptoeng.MustNew([]byte("0123456789abcdef"), []byte("mac"), 56)
}

func TestNewValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := New(nil, 4); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(e, 0); err == nil {
		t.Error("zero leaves accepted")
	}
	if _, err := New(e, -3); err == nil {
		t.Error("negative leaves accepted")
	}
}

func TestFreshTreeVerifies(t *testing.T) {
	tree, err := New(newEngine(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []int{0, 1, 63, 64, 99} {
		data, err := tree.Leaf(leaf)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Verify(leaf, data); err != nil {
			t.Errorf("fresh leaf %d fails verification: %v", leaf, err)
		}
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tree, err := New(newEngine(t), 20)
	if err != nil {
		t.Fatal(err)
	}
	var data [LeafBytes]byte
	data[0] = 0xAA
	oldRoot := tree.Root()
	if err := tree.Update(7, data); err != nil {
		t.Fatal(err)
	}
	if tree.Root() == oldRoot {
		t.Error("root unchanged after update")
	}
	if err := tree.Verify(7, data); err != nil {
		t.Errorf("updated leaf fails: %v", err)
	}
	// Unrelated leaves still verify.
	other, _ := tree.Leaf(3)
	if err := tree.Verify(3, other); err != nil {
		t.Errorf("unrelated leaf broken by update: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	tree, err := New(newEngine(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 [LeafBytes]byte
	v1[0], v2[0] = 1, 2
	if err := tree.Update(5, v1); err != nil {
		t.Fatal(err)
	}
	stale, _ := tree.Leaf(5) // capture version 1
	if err := tree.Update(5, v2); err != nil {
		t.Fatal(err)
	}
	// Attacker replays the old counter block.
	if err := tree.Verify(5, stale); err == nil {
		t.Error("replayed stale leaf accepted")
	}
	// The genuine current value still verifies.
	cur, _ := tree.Leaf(5)
	if err := tree.Verify(5, cur); err != nil {
		t.Errorf("current leaf rejected: %v", err)
	}
}

func TestTamperDetected(t *testing.T) {
	tree, err := New(newEngine(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	var evil [LeafBytes]byte
	evil[31] = 0xFF
	tree.CorruptLeafForTest(9, evil)
	got, _ := tree.Leaf(9)
	if err := tree.Verify(9, got); err == nil {
		t.Error("tampered leaf accepted")
	}
}

func TestBoundsChecking(t *testing.T) {
	tree, err := New(newEngine(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	var d [LeafBytes]byte
	if err := tree.Update(-1, d); err == nil {
		t.Error("Update(-1) accepted")
	}
	if err := tree.Update(8, d); err == nil {
		t.Error("Update(8) accepted")
	}
	if err := tree.Verify(8, d); err == nil {
		t.Error("Verify(8) accepted")
	}
	if _, err := tree.Leaf(-5); err == nil {
		t.Error("Leaf(-5) accepted")
	}
}

func TestLevelsAndNodes(t *testing.T) {
	cases := []struct {
		leaves, levels, interior int
	}{
		{1, 1, 0},           // single leaf is the root level... built as 1 level
		{8, 2, 8},           // 8 leaves -> 8 leaf hashes + root
		{9, 3, 9 + 2},       // 9 -> 2 -> 1
		{64, 3, 64 + 8},     // 64 -> 8 -> 1
		{65, 4, 65 + 9 + 2}, // 65 -> 9 -> 2 -> 1
	}
	e := newEngine(t)
	for _, c := range cases {
		tree, err := New(e, c.leaves)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.Levels(); got != c.levels {
			t.Errorf("Levels(%d leaves) = %d, want %d", c.leaves, got, c.levels)
		}
		if got := tree.InteriorNodes(); got != c.interior {
			t.Errorf("InteriorNodes(%d leaves) = %d, want %d", c.leaves, got, c.interior)
		}
		if got := tree.Leaves(); got != c.leaves {
			t.Errorf("Leaves() = %d", got)
		}
	}
}

func TestPathLength(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 8: 1, 9: 2, 64: 2, 512: 3, 513: 4}
	for leaves, want := range cases {
		if got := PathLength(leaves); got != want {
			t.Errorf("PathLength(%d) = %d, want %d", leaves, got, want)
		}
	}
}

func TestSmallerTreeForCoarserLeaves(t *testing.T) {
	// The paper's point: the CXL tree over collapsed counters (1 sector per
	// 2 KiB) is much smaller than one over MAC sectors (1 per 128 B).
	dataBytes := 1 << 20
	overMACs := PathLength(dataBytes / 128)
	overCollapsed := PathLength(dataBytes / 2048)
	if overCollapsed >= overMACs {
		t.Errorf("collapsed tree depth %d not smaller than MAC tree depth %d", overCollapsed, overMACs)
	}
}

func TestRootStableAcrossRebuild(t *testing.T) {
	// Property: trees built with the same updates end with the same root.
	f := func(updates []uint8) bool {
		e := cryptoeng.MustNew([]byte("0123456789abcdef"), []byte("mac"), 56)
		t1, err := New(e, 32)
		if err != nil {
			return false
		}
		t2, err := New(e, 32)
		if err != nil {
			return false
		}
		for i, u := range updates {
			var d [LeafBytes]byte
			d[0] = u
			d[1] = byte(i)
			if t1.Update(int(u)%32, d) != nil || t2.Update(int(u)%32, d) != nil {
				return false
			}
		}
		return t1.Root() == t2.Root()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrustCacheShortCircuits(t *testing.T) {
	tree, err := New(newEngine(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetTrustCache(64)
	var d [LeafBytes]byte
	d[0] = 7
	if err := tree.Update(5, d); err != nil {
		t.Fatal(err)
	}
	// Update marked the path trusted: VerifyCached succeeds.
	if err := tree.VerifyCached(5, d); err != nil {
		t.Fatalf("cached verify after update: %v", err)
	}
	// Cold leaf: full walk, then trusted.
	leaf, _ := tree.Leaf(42)
	if err := tree.VerifyCached(42, leaf); err != nil {
		t.Fatalf("cold cached verify: %v", err)
	}
	if err := tree.VerifyCached(42, leaf); err != nil {
		t.Fatalf("warm cached verify: %v", err)
	}
}

func TestTrustCacheStillDetectsAttacks(t *testing.T) {
	tree, err := New(newEngine(t), 64)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetTrustCache(32)
	var v1, v2 [LeafBytes]byte
	v1[0], v2[0] = 1, 2
	if err := tree.Update(9, v1); err != nil {
		t.Fatal(err)
	}
	stale, _ := tree.Leaf(9)
	if err := tree.Update(9, v2); err != nil {
		t.Fatal(err)
	}
	// Replay with a warm trust cache must still fail: the leaf hash check
	// happens before any short-circuit.
	if err := tree.VerifyCached(9, stale); err == nil {
		t.Error("replayed leaf accepted with trust cache")
	}
	var evil [LeafBytes]byte
	evil[31] = 0xEE
	tree.CorruptLeafForTest(10, evil)
	got, _ := tree.Leaf(10)
	if err := tree.VerifyCached(10, got); err == nil {
		t.Error("tampered leaf accepted with trust cache")
	}
}

func TestTrustCacheOverflowClears(t *testing.T) {
	tree, err := New(newEngine(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetTrustCache(4) // tiny: constant clearing
	for i := 0; i < 64; i++ {
		leaf, _ := tree.Leaf(i)
		if err := tree.VerifyCached(i, leaf); err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
	}
	if len(tree.trusted) > 4 {
		t.Errorf("trust cache grew to %d entries, cap 4", len(tree.trusted))
	}
}

func TestVerifyCachedWithoutCacheEqualsVerify(t *testing.T) {
	tree, err := New(newEngine(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := tree.Leaf(3)
	if err := tree.VerifyCached(3, leaf); err != nil {
		t.Fatalf("no-cache VerifyCached: %v", err)
	}
	if err := tree.VerifyCached(-1, leaf); err == nil {
		t.Error("out-of-range accepted")
	}
}
