package bmt

import (
	"testing"

	"github.com/salus-sim/salus/internal/security/cryptoeng"
)

func benchTree(b *testing.B, leaves int) *Tree {
	b.Helper()
	e := cryptoeng.MustNew([]byte("0123456789abcdef"), []byte("mac"), 56)
	t, err := New(e, leaves)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func BenchmarkUpdate4K(b *testing.B) {
	t := benchTree(b, 4096)
	var d [LeafBytes]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d[0] = byte(i)
		if err := t.Update(i%4096, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify4K(b *testing.B) {
	t := benchTree(b, 4096)
	leaf, _ := t.Leaf(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Verify(7, leaf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild64K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchTree(b, 65536)
	}
}
