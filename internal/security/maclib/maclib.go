// Package maclib implements the MAC sector layout (Fig. 5 of the paper).
//
// One 32-byte MAC sector protects one 128-byte data block: four 56-bit MACs
// (one per 32-byte data sector) occupy 28 bytes, and the remaining 4 bytes
// hold the block's collapsed 32-bit major counter when the sector travels
// between memories. Embedding the major in the MAC sector is what lets
// Salus eliminate counter-block traffic between the two memories entirely:
// only MAC sectors move, counters are reconstructed at the destination
// (majors from the embedded field, minors zero).
package maclib

import (
	"encoding/binary"
	"fmt"
)

// Layout constants.
const (
	SectorBytes   = 32 // MAC sector size
	MACsPerSector = 4  // one per 32 B data sector of a 128 B block
	MACBits       = 56
	macMask       = 1<<MACBits - 1
)

// Sector is a decoded MAC sector.
type Sector struct {
	MACs  [MACsPerSector]uint64 // 56-bit values
	Major uint32                // embedded collapsed major (transfer format)
}

// SetMAC stores a 56-bit MAC for data sector i. Values wider than 56 bits
// are rejected so a silent truncation can never weaken verification.
func (s *Sector) SetMAC(i int, mac uint64) error {
	if mac > macMask {
		return fmt.Errorf("maclib: MAC %#x exceeds %d bits", mac, MACBits)
	}
	s.MACs[i] = mac
	return nil
}

// Encode packs the sector into its 32-byte memory image:
// [4 × 7 B MACs = 28 B][4 B embedded major].
func (s *Sector) Encode() [SectorBytes]byte {
	var out [SectorBytes]byte
	for i, m := range s.MACs {
		if m > macMask {
			panic(fmt.Sprintf("maclib: MAC %d = %#x exceeds %d bits", i, m, MACBits))
		}
		putUint56(out[i*7:(i+1)*7], m)
	}
	binary.LittleEndian.PutUint32(out[28:32], s.Major)
	return out
}

// Decode unpacks a 32-byte image.
func Decode(img [SectorBytes]byte) Sector {
	var s Sector
	for i := range s.MACs {
		s.MACs[i] = getUint56(img[i*7 : (i+1)*7])
	}
	s.Major = binary.LittleEndian.Uint32(img[28:32])
	return s
}

func putUint56(dst []byte, v uint64) {
	for i := 0; i < 7; i++ {
		dst[i] = byte(v >> uint(8*i))
	}
}

func getUint56(src []byte) uint64 {
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(src[i]) << uint(8*i)
	}
	return v
}
