package maclib

import (
	"testing"
	"testing/quick"
)

func TestSetMACRejectsWideValues(t *testing.T) {
	var s Sector
	if err := s.SetMAC(0, 1<<56); err == nil {
		t.Error("57-bit MAC accepted")
	}
	if err := s.SetMAC(0, 1<<56-1); err != nil {
		t.Errorf("max 56-bit MAC rejected: %v", err)
	}
	if s.MACs[0] != 1<<56-1 {
		t.Error("MAC not stored")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw [MACsPerSector]uint64, major uint32) bool {
		var s Sector
		for i, m := range raw {
			s.MACs[i] = m & (1<<MACBits - 1)
		}
		s.Major = major
		return Decode(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodePanicsOnWideMAC(t *testing.T) {
	var s Sector
	s.MACs[2] = 1 << 60
	defer func() {
		if recover() == nil {
			t.Error("Encode accepted out-of-range MAC")
		}
	}()
	s.Encode()
}

func TestLayoutExactlyFillsSector(t *testing.T) {
	if MACsPerSector*7+4 != SectorBytes {
		t.Fatalf("layout = %d bytes, want %d", MACsPerSector*7+4, SectorBytes)
	}
}

func TestMACsDoNotOverlap(t *testing.T) {
	// Setting one MAC must not disturb neighbours or the major in the
	// encoded image.
	var base Sector
	base.Major = 0xDEADBEEF
	for i := 0; i < MACsPerSector; i++ {
		s := base
		s.MACs[i] = 1<<56 - 1
		img := s.Encode()
		got := Decode(img)
		if got.Major != base.Major {
			t.Errorf("MAC %d overwrote major", i)
		}
		for j := 0; j < MACsPerSector; j++ {
			want := uint64(0)
			if j == i {
				want = 1<<56 - 1
			}
			if got.MACs[j] != want {
				t.Errorf("MAC %d write changed MAC %d to %#x", i, j, got.MACs[j])
			}
		}
	}
}

func TestUint56Helpers(t *testing.T) {
	buf := make([]byte, 7)
	for _, v := range []uint64{0, 1, 0xFF, 0xFFFFFFFFFFFFFF, 0xA5A5A5A5A5A5A5 & (1<<56 - 1)} {
		putUint56(buf, v)
		if got := getUint56(buf); got != v {
			t.Errorf("roundtrip %#x -> %#x", v, got)
		}
	}
}
