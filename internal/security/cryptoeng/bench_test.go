package cryptoeng

import "testing"

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	return MustNew([]byte("0123456789abcdef"), []byte("mac-key"), 56)
}

func BenchmarkPad(b *testing.B) {
	e := benchEngine(b)
	b.SetBytes(SectorSize)
	for i := 0; i < b.N; i++ {
		_ = e.Pad(uint64(i)*32, 1, 2)
	}
}

func BenchmarkEncryptSector(b *testing.B) {
	e := benchEngine(b)
	src := make([]byte, SectorSize)
	dst := make([]byte, SectorSize)
	b.SetBytes(SectorSize)
	for i := 0; i < b.N; i++ {
		if err := e.EncryptSector(dst, src, uint64(i)*32, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncryptSectors measures the batch path over one 256 B chunk
// (8 sectors), the unit the collapse/overflow/rekey sweeps re-encrypt.
func BenchmarkEncryptSectors(b *testing.B) {
	e := benchEngine(b)
	const run = 8
	src := make([]byte, run*SectorSize)
	dst := make([]byte, run*SectorSize)
	minors := make([]uint64, run)
	b.SetBytes(run * SectorSize)
	for i := 0; i < b.N; i++ {
		if err := e.EncryptSectors(dst, src, uint64(i)*256, 1, minors); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMAC(b *testing.B) {
	e := benchEngine(b)
	ct := make([]byte, SectorSize)
	b.SetBytes(SectorSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.MAC(ct, uint64(i)*32, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyMAC(b *testing.B) {
	e := benchEngine(b)
	ct := make([]byte, SectorSize)
	mac, err := e.MAC(ct, 0, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.VerifyMAC(ct, 0, 1, 0, mac) {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkSessionVerifyMAC is VerifyMAC without the pool round-trip, the
// shape of a chunk-granularity verify sweep.
func BenchmarkSessionVerifyMAC(b *testing.B) {
	e := benchEngine(b)
	s := e.NewSession()
	ct := make([]byte, SectorSize)
	mac, err := e.MAC(ct, 0, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.VerifyMAC(ct, 0, 1, 0, mac) {
			b.Fatal("verification failed")
		}
	}
}
