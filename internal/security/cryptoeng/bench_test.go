package cryptoeng

import "testing"

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	return MustNew([]byte("0123456789abcdef"), []byte("mac-key"), 56)
}

func BenchmarkPad(b *testing.B) {
	e := benchEngine(b)
	b.SetBytes(SectorSize)
	for i := 0; i < b.N; i++ {
		_ = e.Pad(uint64(i)*32, 1, 2)
	}
}

func BenchmarkEncryptSector(b *testing.B) {
	e := benchEngine(b)
	src := make([]byte, SectorSize)
	dst := make([]byte, SectorSize)
	b.SetBytes(SectorSize)
	for i := 0; i < b.N; i++ {
		if err := e.EncryptSector(dst, src, uint64(i)*32, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMAC(b *testing.B) {
	e := benchEngine(b)
	ct := make([]byte, SectorSize)
	b.SetBytes(SectorSize)
	for i := 0; i < b.N; i++ {
		_ = e.MAC(ct, uint64(i)*32, 1, 0)
	}
}

func BenchmarkVerifyMAC(b *testing.B) {
	e := benchEngine(b)
	ct := make([]byte, SectorSize)
	mac := e.MAC(ct, 0, 1, 0)
	for i := 0; i < b.N; i++ {
		if !e.VerifyMAC(ct, 0, 1, 0, mac) {
			b.Fatal("verification failed")
		}
	}
}
