package cryptoeng

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New([]byte("0123456789abcdef"), []byte("mac-key"), 56)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustMAC(t *testing.T, e *Engine, ct []byte, addr, major, minor uint64) uint64 {
	t.Helper()
	m, err := e.MAC(ct, addr, major, minor)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]byte("short"), []byte("k"), 56); err == nil {
		t.Error("short AES key accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), nil, 56); err == nil {
		t.Error("empty MAC key accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), []byte("k"), 0); err == nil {
		t.Error("0 MAC bits accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), []byte("k"), 65); err == nil {
		t.Error("65 MAC bits accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), []byte("k"), 64); err != nil {
		t.Errorf("64 MAC bits rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad key did not panic")
		}
	}()
	MustNew(nil, nil, 56)
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine(t)
	f := func(data [SectorSize]byte, addr uint64, major uint32, minor uint8) bool {
		var ct, pt [SectorSize]byte
		if err := e.EncryptSector(ct[:], data[:], addr, uint64(major), uint64(minor)); err != nil {
			return false
		}
		if err := e.DecryptSector(pt[:], ct[:], addr, uint64(major), uint64(minor)); err != nil {
			return false
		}
		return pt == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	e := testEngine(t)
	src := make([]byte, SectorSize)
	dst := make([]byte, SectorSize)
	if err := e.EncryptSector(dst, src, 0x1000, 1, 2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dst, src) {
		t.Error("ciphertext equals plaintext")
	}
}

func TestPadUniqueness(t *testing.T) {
	e := testEngine(t)
	base := e.Pad(0x1000, 5, 3)
	if e.Pad(0x1020, 5, 3) == base {
		t.Error("pad identical across addresses (spatial reuse)")
	}
	if e.Pad(0x1000, 6, 3) == base {
		t.Error("pad identical across majors (temporal reuse)")
	}
	if e.Pad(0x1000, 5, 4) == base {
		t.Error("pad identical across minors (temporal reuse)")
	}
	if e.Pad(0x1000, 5, 3) != base {
		t.Error("pad not deterministic")
	}
	// Pad halves must differ (distinct AES blocks).
	if bytes.Equal(base[:16], base[16:]) {
		t.Error("pad halves identical")
	}
}

// TestCounterWidthRejected is the regression test for the IV-truncation
// bug: counters that differ only above the packed field widths used to
// collide to the same IV (Pad truncated major to 32 bits and minor to 16),
// silently reusing a one-time pad. The engine must now refuse them with
// ErrCounterWidth at every entry point instead of encrypting.
func TestCounterWidthRejected(t *testing.T) {
	e := testEngine(t)
	var buf [SectorSize]byte
	src := make([]byte, SectorSize)

	// These pairs collided before the fix: they truncate to (1, 1).
	wideMajor := uint64(MaxMajor) + 2 // 1<<32 + 1 → truncated to 1
	wideMinor := uint64(MaxMinor) + 2 // 1<<16 + 1 → truncated to 1
	if e.Pad(0x40, 1, 1) != e.Pad(0x40, wideMajor, wideMinor) {
		t.Fatal("test premise broken: raw Pad no longer truncates — update the regression")
	}

	for _, tc := range []struct {
		name         string
		major, minor uint64
	}{
		{"wide major", wideMajor, 1},
		{"wide minor", 1, wideMinor},
		{"both wide", wideMajor, wideMinor},
	} {
		if err := e.EncryptSector(buf[:], src, 0x40, tc.major, tc.minor); !errors.Is(err, ErrCounterWidth) {
			t.Errorf("EncryptSector %s: got %v, want ErrCounterWidth", tc.name, err)
		}
		if err := e.DecryptSector(buf[:], src, 0x40, tc.major, tc.minor); !errors.Is(err, ErrCounterWidth) {
			t.Errorf("DecryptSector %s: got %v, want ErrCounterWidth", tc.name, err)
		}
		if _, err := e.MAC(src, 0x40, tc.major, tc.minor); !errors.Is(err, ErrCounterWidth) {
			t.Errorf("MAC %s: got %v, want ErrCounterWidth", tc.name, err)
		}
		if err := e.EncryptSectors(buf[:], src, 0x40, tc.major, []uint64{tc.minor}); !errors.Is(err, ErrCounterWidth) {
			t.Errorf("EncryptSectors %s: got %v, want ErrCounterWidth", tc.name, err)
		}
		s := e.NewSession()
		if _, err := s.MAC(src, 0x40, tc.major, tc.minor); !errors.Is(err, ErrCounterWidth) {
			t.Errorf("Session.MAC %s: got %v, want ErrCounterWidth", tc.name, err)
		}
		if s.VerifyMAC(src, 0x40, tc.major, tc.minor, 0) {
			t.Errorf("Session.VerifyMAC %s: out-of-width counters verified", tc.name)
		}
		if e.VerifyMAC(src, 0x40, tc.major, tc.minor, 0) {
			t.Errorf("VerifyMAC %s: out-of-width counters verified", tc.name)
		}
	}

	// Boundary values are in-width and must still work.
	if err := e.EncryptSector(buf[:], src, 0x40, MaxMajor, MaxMinor); err != nil {
		t.Errorf("boundary counters rejected: %v", err)
	}
}

func TestEncryptSectorSizeChecks(t *testing.T) {
	e := testEngine(t)
	if err := e.EncryptSector(make([]byte, 31), make([]byte, SectorSize), 0, 0, 0); err == nil {
		t.Error("short dst accepted")
	}
	if err := e.EncryptSector(make([]byte, SectorSize), make([]byte, 33), 0, 0, 0); err == nil {
		t.Error("long src accepted")
	}
	if err := e.EncryptSectors(make([]byte, SectorSize), make([]byte, SectorSize), 0, 0, []uint64{0, 0}); err == nil {
		t.Error("run/minor length mismatch accepted")
	}
}

// TestEncryptSectorsMatchesPerSector pins the batch path to the per-sector
// path: same pads, byte for byte.
func TestEncryptSectorsMatchesPerSector(t *testing.T) {
	e := testEngine(t)
	const n = 8
	src := make([]byte, n*SectorSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	minors := []uint64{0, 3, 65535, 1, 2, 9, 0, 255}
	batch := make([]byte, len(src))
	if err := e.EncryptSectors(batch, src, 0x2000, 77, minors); err != nil {
		t.Fatal(err)
	}
	single := make([]byte, len(src))
	for i := 0; i < n; i++ {
		off := i * SectorSize
		if err := e.EncryptSector(single[off:off+SectorSize], src[off:off+SectorSize],
			0x2000+uint64(off), 77, minors[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(batch, single) {
		t.Fatal("batch encryption diverges from per-sector encryption")
	}
	dec := make([]byte, len(src))
	if err := e.DecryptSectors(dec, batch, 0x2000, 77, minors); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("batch round trip lost data")
	}
}

func TestMACWidth(t *testing.T) {
	e := testEngine(t)
	ct := make([]byte, SectorSize)
	m := mustMAC(t, e, ct, 1, 2, 3)
	if m >= 1<<56 {
		t.Errorf("56-bit MAC %x exceeds width", m)
	}
	if e.MACBits() != 56 {
		t.Errorf("MACBits = %d", e.MACBits())
	}
	e64 := MustNew([]byte("0123456789abcdef"), []byte("k"), 64)
	if _, err := e64.MAC(ct, 1, 2, 3); err != nil { // must not panic on full-width mask
		t.Fatal(err)
	}
}

// TestMACMatchesHMACReference pins the pooled precomputed-state HMAC to
// the crypto/hmac reference: the optimization must be byte-identical, or
// every stored MAC in existing images and journals would go stale.
func TestMACMatchesHMACReference(t *testing.T) {
	for _, bits := range []int{56, 64} {
		e := MustNew([]byte("0123456789abcdef"), []byte("mac-key"), bits)
		s := e.NewSession()
		for i := 0; i < 64; i++ {
			ct := make([]byte, SectorSize)
			for j := range ct {
				ct[j] = byte(i*31 + j)
			}
			addr := uint64(i) * 0x20
			major := uint64(i * 11 % (MaxMajor + 1))
			minor := uint64(i * 7 % (MaxMinor + 1))

			ref := hmac.New(sha256.New, e.macKey[:])
			var hdr [24]byte
			binary.LittleEndian.PutUint64(hdr[0:8], addr)
			binary.LittleEndian.PutUint64(hdr[8:16], major)
			binary.LittleEndian.PutUint64(hdr[16:24], minor)
			ref.Write(hdr[:])
			ref.Write(ct)
			want := binary.LittleEndian.Uint64(ref.Sum(nil)[:8])
			if bits < 64 {
				want &= 1<<uint(bits) - 1
			}

			got, err := e.MAC(ct, addr, major, minor)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("bits=%d i=%d: pooled MAC %x != crypto/hmac reference %x", bits, i, got, want)
			}
			if sg, err := s.MAC(ct, addr, major, minor); err != nil || sg != want {
				t.Fatalf("bits=%d i=%d: session MAC %x (%v) != reference %x", bits, i, sg, err, want)
			}
		}
	}
}

// TestHashNodeMatchesHMACReference pins HashNode to crypto/hmac the same
// way: BMT roots recorded in trusted storage must not change.
func TestHashNodeMatchesHMACReference(t *testing.T) {
	e := testEngine(t)
	children := make([]byte, 64)
	for i := range children {
		children[i] = byte(i)
	}
	ref := hmac.New(sha256.New, e.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 3)
	binary.LittleEndian.PutUint64(hdr[8:16], 9)
	ref.Write(hdr[:])
	ref.Write(children)
	var want [32]byte
	copy(want[:], ref.Sum(nil))
	if got := e.HashNode(children, 3, 9); got != want {
		t.Fatalf("HashNode %x != crypto/hmac reference %x", got, want)
	}
}

func TestMACDetectsTampering(t *testing.T) {
	e := testEngine(t)
	ct := []byte("abcdefghijklmnopqrstuvwxyz012345")
	m := mustMAC(t, e, ct, 0x40, 7, 1)
	if !e.VerifyMAC(ct, 0x40, 7, 1, m) {
		t.Fatal("genuine MAC rejected")
	}
	tampered := append([]byte(nil), ct...)
	tampered[5] ^= 1
	if e.VerifyMAC(tampered, 0x40, 7, 1, m) {
		t.Error("tampered ciphertext accepted (spoofing)")
	}
	if e.VerifyMAC(ct, 0x60, 7, 1, m) {
		t.Error("relocated ciphertext accepted (splicing)")
	}
	if e.VerifyMAC(ct, 0x40, 6, 1, m) {
		t.Error("stale major accepted (replay)")
	}
	if e.VerifyMAC(ct, 0x40, 7, 0, m) {
		t.Error("stale minor accepted (replay)")
	}
}

func TestSessionMatchesEngine(t *testing.T) {
	e := testEngine(t)
	s := e.NewSession()
	ct := []byte("abcdefghijklmnopqrstuvwxyz012345")
	m := mustMAC(t, e, ct, 0x40, 7, 1)
	if got, err := s.MAC(ct, 0x40, 7, 1); err != nil || got != m {
		t.Fatalf("session MAC %x (%v) != engine MAC %x", got, err, m)
	}
	if !s.VerifyMAC(ct, 0x40, 7, 1, m) {
		t.Error("session rejected genuine MAC")
	}
	if s.VerifyMAC(ct, 0x40, 7, 1, m^1) {
		t.Error("session accepted wrong MAC")
	}
}

func TestMACDeterministic(t *testing.T) {
	e := testEngine(t)
	f := func(data [SectorSize]byte, addr uint64, major uint32, minor uint16) bool {
		a, err1 := e.MAC(data[:], addr, uint64(major), uint64(minor))
		b, err2 := e.MAC(data[:], addr, uint64(major), uint64(minor))
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashNodeBinding(t *testing.T) {
	e := testEngine(t)
	children := make([]byte, 64)
	h := e.HashNode(children, 1, 2)
	if e.HashNode(children, 1, 3) == h {
		t.Error("hash ignores index")
	}
	if e.HashNode(children, 2, 2) == h {
		t.Error("hash ignores level")
	}
	children[0] = 1
	if e.HashNode(children, 1, 2) == h {
		t.Error("hash ignores children")
	}
}

func TestDifferentKeysDifferentOutputs(t *testing.T) {
	e1 := MustNew([]byte("0123456789abcdef"), []byte("k1"), 56)
	e2 := MustNew([]byte("fedcba9876543210"), []byte("k2"), 56)
	if e1.Pad(1, 2, 3) == e2.Pad(1, 2, 3) {
		t.Error("pads equal under different AES keys")
	}
	ct := make([]byte, SectorSize)
	if mustMAC(t, e1, ct, 1, 2, 3) == mustMAC(t, e2, ct, 1, 2, 3) {
		t.Error("MACs equal under different MAC keys")
	}
}

// TestMACZeroAlloc asserts the pooled MAC path and the stack-array
// comparison allocate nothing — the satellite fix for the old
// u64le-allocating VerifyMAC.
func TestMACZeroAlloc(t *testing.T) {
	e := testEngine(t)
	ct := make([]byte, SectorSize)
	mac := mustMAC(t, e, ct, 0, 1, 0)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := e.MAC(ct, 0, 1, 0); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MAC allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if !e.VerifyMAC(ct, 0, 1, 0, mac) {
			t.Fatal("verification failed")
		}
	}); n != 0 {
		t.Errorf("VerifyMAC allocates %.1f times per op, want 0", n)
	}
	s := e.NewSession()
	if n := testing.AllocsPerRun(100, func() {
		if !s.VerifyMAC(ct, 0, 1, 0, mac) {
			t.Fatal("session verification failed")
		}
	}); n != 0 {
		t.Errorf("Session.VerifyMAC allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = e.HashNode(ct, 1, 2)
	}); n != 0 {
		t.Errorf("HashNode allocates %.1f times per op, want 0", n)
	}
}

// TestEncryptZeroAlloc asserts the pad-generation paths allocate nothing:
// the IV/pad scratch is pooled because slices passed through the
// cipher.Block interface escape, which used to cost two heap allocations
// per sector.
func TestEncryptZeroAlloc(t *testing.T) {
	e := testEngine(t)
	src := make([]byte, SectorSize)
	dst := make([]byte, SectorSize)
	if n := testing.AllocsPerRun(100, func() {
		if err := e.EncryptSector(dst, src, 0x40, 1, 2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncryptSector allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = e.Pad(0x40, 1, 2)
	}); n != 0 {
		t.Errorf("Pad allocates %.1f times per op, want 0", n)
	}
	runSrc := make([]byte, 8*SectorSize)
	runDst := make([]byte, 8*SectorSize)
	minors := make([]uint64, 8)
	if n := testing.AllocsPerRun(100, func() {
		if err := e.EncryptSectors(runDst, runSrc, 0, 3, minors); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncryptSectors allocates %.1f times per op, want 0", n)
	}
}
