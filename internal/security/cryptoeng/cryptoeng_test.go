package cryptoeng

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New([]byte("0123456789abcdef"), []byte("mac-key"), 56)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]byte("short"), []byte("k"), 56); err == nil {
		t.Error("short AES key accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), nil, 56); err == nil {
		t.Error("empty MAC key accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), []byte("k"), 0); err == nil {
		t.Error("0 MAC bits accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), []byte("k"), 65); err == nil {
		t.Error("65 MAC bits accepted")
	}
	if _, err := New([]byte("0123456789abcdef"), []byte("k"), 64); err != nil {
		t.Errorf("64 MAC bits rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad key did not panic")
		}
	}()
	MustNew(nil, nil, 56)
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine(t)
	f := func(data [SectorSize]byte, addr, major uint64, minor uint8) bool {
		var ct, pt [SectorSize]byte
		if err := e.EncryptSector(ct[:], data[:], addr, major, uint64(minor)); err != nil {
			return false
		}
		if err := e.DecryptSector(pt[:], ct[:], addr, major, uint64(minor)); err != nil {
			return false
		}
		return pt == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	e := testEngine(t)
	src := make([]byte, SectorSize)
	dst := make([]byte, SectorSize)
	if err := e.EncryptSector(dst, src, 0x1000, 1, 2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dst, src) {
		t.Error("ciphertext equals plaintext")
	}
}

func TestPadUniqueness(t *testing.T) {
	e := testEngine(t)
	base := e.Pad(0x1000, 5, 3)
	if e.Pad(0x1020, 5, 3) == base {
		t.Error("pad identical across addresses (spatial reuse)")
	}
	if e.Pad(0x1000, 6, 3) == base {
		t.Error("pad identical across majors (temporal reuse)")
	}
	if e.Pad(0x1000, 5, 4) == base {
		t.Error("pad identical across minors (temporal reuse)")
	}
	if e.Pad(0x1000, 5, 3) != base {
		t.Error("pad not deterministic")
	}
	// Pad halves must differ (distinct AES blocks).
	if bytes.Equal(base[:16], base[16:]) {
		t.Error("pad halves identical")
	}
}

func TestEncryptSectorSizeChecks(t *testing.T) {
	e := testEngine(t)
	if err := e.EncryptSector(make([]byte, 31), make([]byte, SectorSize), 0, 0, 0); err == nil {
		t.Error("short dst accepted")
	}
	if err := e.EncryptSector(make([]byte, SectorSize), make([]byte, 33), 0, 0, 0); err == nil {
		t.Error("long src accepted")
	}
}

func TestMACWidth(t *testing.T) {
	e := testEngine(t)
	ct := make([]byte, SectorSize)
	m := e.MAC(ct, 1, 2, 3)
	if m >= 1<<56 {
		t.Errorf("56-bit MAC %x exceeds width", m)
	}
	if e.MACBits() != 56 {
		t.Errorf("MACBits = %d", e.MACBits())
	}
	e64 := MustNew([]byte("0123456789abcdef"), []byte("k"), 64)
	_ = e64.MAC(ct, 1, 2, 3) // must not panic on full-width mask
}

func TestMACDetectsTampering(t *testing.T) {
	e := testEngine(t)
	ct := []byte("abcdefghijklmnopqrstuvwxyz012345")
	m := e.MAC(ct, 0x40, 7, 1)
	if !e.VerifyMAC(ct, 0x40, 7, 1, m) {
		t.Fatal("genuine MAC rejected")
	}
	tampered := append([]byte(nil), ct...)
	tampered[5] ^= 1
	if e.VerifyMAC(tampered, 0x40, 7, 1, m) {
		t.Error("tampered ciphertext accepted (spoofing)")
	}
	if e.VerifyMAC(ct, 0x60, 7, 1, m) {
		t.Error("relocated ciphertext accepted (splicing)")
	}
	if e.VerifyMAC(ct, 0x40, 6, 1, m) {
		t.Error("stale major accepted (replay)")
	}
	if e.VerifyMAC(ct, 0x40, 7, 0, m) {
		t.Error("stale minor accepted (replay)")
	}
}

func TestMACDeterministic(t *testing.T) {
	e := testEngine(t)
	f := func(data [SectorSize]byte, addr, major, minor uint64) bool {
		return e.MAC(data[:], addr, major, minor) == e.MAC(data[:], addr, major, minor)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashNodeBinding(t *testing.T) {
	e := testEngine(t)
	children := make([]byte, 64)
	h := e.HashNode(children, 1, 2)
	if e.HashNode(children, 1, 3) == h {
		t.Error("hash ignores index")
	}
	if e.HashNode(children, 2, 2) == h {
		t.Error("hash ignores level")
	}
	children[0] = 1
	if e.HashNode(children, 1, 2) == h {
		t.Error("hash ignores children")
	}
}

func TestDifferentKeysDifferentOutputs(t *testing.T) {
	e1 := MustNew([]byte("0123456789abcdef"), []byte("k1"), 56)
	e2 := MustNew([]byte("fedcba9876543210"), []byte("k2"), 56)
	if e1.Pad(1, 2, 3) == e2.Pad(1, 2, 3) {
		t.Error("pads equal under different AES keys")
	}
	ct := make([]byte, SectorSize)
	if e1.MAC(ct, 1, 2, 3) == e2.MAC(ct, 1, 2, 3) {
		t.Error("MACs equal under different MAC keys")
	}
}
