// Package cryptoeng implements the cryptographic primitives of the security
// model: counter-mode encryption (CME) with AES-128 one-time pads, and
// truncated keyed MACs.
//
// The initialisation vector binds each pad to a unique (address, major,
// minor) triple. Under Salus the address component is always the block's
// CXL (home) address, which is what keeps pads unique even though device-
// memory locations are reused by different pages over time (§IV-B,
// "Security Impact"). MACs are keyed hashes over the ciphertext, the home
// address, and the counter pair, truncated to a configurable width (56 bits
// by default, per Gueron's analysis cited by the paper).
package cryptoeng

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// SectorSize is the memory access granularity the engine encrypts at.
const SectorSize = 32

// Engine holds the keys of one trusted processor (the GPU chip TCB).
type Engine struct {
	block   cipher.Block
	macKey  [32]byte
	macBits int
}

// New creates an engine from a 16-byte AES key and a MAC key. macBits
// selects the truncated MAC width in (0, 64].
func New(aesKey, macKey []byte, macBits int) (*Engine, error) {
	if len(aesKey) != 16 {
		return nil, fmt.Errorf("cryptoeng: AES key must be 16 bytes, got %d", len(aesKey))
	}
	if len(macKey) == 0 {
		return nil, errors.New("cryptoeng: empty MAC key")
	}
	if macBits <= 0 || macBits > 64 {
		return nil, fmt.Errorf("cryptoeng: MAC width %d outside (0,64]", macBits)
	}
	b, err := aes.NewCipher(aesKey)
	if err != nil {
		return nil, err
	}
	e := &Engine{block: b, macBits: macBits}
	e.macKey = sha256.Sum256(macKey)
	return e, nil
}

// MustNew is New for statically valid keys; it panics on error.
func MustNew(aesKey, macKey []byte, macBits int) *Engine {
	e, err := New(aesKey, macKey, macBits)
	if err != nil {
		panic(err)
	}
	return e
}

// MACBits returns the configured MAC width.
func (e *Engine) MACBits() int { return e.macBits }

// Pad generates the one-time pad for a sector identified by its home
// address and counter pair. The pad is the AES encryption of the spatio-
// temporal IV; it can be precomputed before data arrives, which is why CME
// keeps decryption off the read critical path.
func (e *Engine) Pad(homeAddr uint64, major uint64, minor uint64) [SectorSize]byte {
	var pad [SectorSize]byte
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:8], homeAddr)
	binary.LittleEndian.PutUint32(iv[8:12], uint32(major))
	binary.LittleEndian.PutUint16(iv[12:14], uint16(minor))
	// Two AES blocks per 32 B sector, distinguished by the last IV byte.
	for blk := 0; blk < SectorSize/16; blk++ {
		iv[15] = byte(blk)
		e.block.Encrypt(pad[blk*16:(blk+1)*16], iv[:])
	}
	return pad
}

// EncryptSector applies the pad for (homeAddr, major, minor) to a 32-byte
// plaintext, producing the ciphertext in place of a fresh slice. Decryption
// is the same operation (XOR with the same pad).
func (e *Engine) EncryptSector(dst, src []byte, homeAddr, major, minor uint64) error {
	if len(src) != SectorSize || len(dst) != SectorSize {
		return fmt.Errorf("cryptoeng: sector must be %d bytes, got src=%d dst=%d", SectorSize, len(src), len(dst))
	}
	pad := e.Pad(homeAddr, major, minor)
	for i := range pad {
		dst[i] = src[i] ^ pad[i]
	}
	return nil
}

// DecryptSector is the inverse of EncryptSector (identical XOR).
func (e *Engine) DecryptSector(dst, src []byte, homeAddr, major, minor uint64) error {
	return e.EncryptSector(dst, src, homeAddr, major, minor)
}

// MAC computes the truncated keyed MAC over a ciphertext sector bound to
// its home address and counters. Binding the address defeats splicing
// (relocating a valid ciphertext); binding the counters, together with the
// integrity tree over counters, defeats replay.
func (e *Engine) MAC(ciphertext []byte, homeAddr, major, minor uint64) uint64 {
	mac := hmac.New(sha256.New, e.macKey[:])
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:8], homeAddr)
	binary.LittleEndian.PutUint64(hdr[8:16], major)
	binary.LittleEndian.PutUint64(hdr[16:24], minor)
	mac.Write(hdr[:])
	mac.Write(ciphertext)
	sum := mac.Sum(nil)
	v := binary.LittleEndian.Uint64(sum[:8])
	if e.macBits == 64 {
		return v
	}
	return v & ((1 << uint(e.macBits)) - 1)
}

// VerifyMAC recomputes and compares in constant time over the truncated
// width. It reports whether the MAC matches.
func (e *Engine) VerifyMAC(ciphertext []byte, homeAddr, major, minor, want uint64) bool {
	got := e.MAC(ciphertext, homeAddr, major, minor)
	return hmac.Equal(u64le(got), u64le(want))
}

// HashNode computes a 32-byte keyed hash used for integrity-tree nodes.
func (e *Engine) HashNode(children []byte, level, index int) [32]byte {
	mac := hmac.New(sha256.New, e.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(level))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(index))
	mac.Write(hdr[:])
	mac.Write(children)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}
