// Package cryptoeng implements the cryptographic primitives of the security
// model: counter-mode encryption (CME) with AES-128 one-time pads, and
// truncated keyed MACs.
//
// The initialisation vector binds each pad to a unique (address, major,
// minor) triple. Under Salus the address component is always the block's
// CXL (home) address, which is what keeps pads unique even though device-
// memory locations are reused by different pages over time (§IV-B,
// "Security Impact"). MACs are keyed hashes over the ciphertext, the home
// address, and the counter pair, truncated to a configurable width (56 bits
// by default, per Gueron's analysis cited by the paper).
//
// The IV has room for a 32-bit major and a 16-bit minor (MajorBits,
// MinorBits). Counters outside those widths would alias IVs of earlier
// counters and reuse one-time pads — a plaintext leak — so EncryptSector,
// DecryptSector, and MAC reject them with ErrCounterWidth instead of
// silently truncating. Every counter layout in the system (32-bit majors,
// 6/8/16-bit minors; see internal/security/counters) fits with margin.
//
// The engine is safe for concurrent use: per-call HMAC state comes from an
// internal pool of precomputed key schedules, so MAC and VerifyMAC do not
// allocate. Chunk-granularity callers can hold a Session to skip even the
// pool round-trips, and the batch EncryptSectors/DecryptSectors amortize
// IV setup across a contiguous run of sectors.
package cryptoeng

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
)

// SectorSize is the memory access granularity the engine encrypts at.
const SectorSize = 32

// IV field widths. The 16-byte AES IV packs [8 B home address][4 B
// major][2 B minor][1 B reserved][1 B block index]; counters wider than
// these fields cannot be represented and are rejected.
const (
	// MajorBits is the width of the IV's major-counter field.
	MajorBits = 32
	// MinorBits is the width of the IV's minor-counter field.
	MinorBits = 16
	// MaxMajor is the largest major counter the IV can carry.
	MaxMajor = 1<<MajorBits - 1
	// MaxMinor is the largest minor counter the IV can carry.
	MaxMinor = 1<<MinorBits - 1
)

// ErrCounterWidth reports a counter too wide for its IV field. Proceeding
// would alias the IV of an earlier counter value and reuse a one-time pad.
var ErrCounterWidth = errors.New("cryptoeng: counter exceeds IV field width")

// checkCounters validates a (major, minor) pair against the IV layout.
func checkCounters(major, minor uint64) error {
	if major > MaxMajor || minor > MaxMinor {
		return fmt.Errorf("cryptoeng: counter pair (major=%#x, minor=%#x) outside %d/%d-bit IV fields: %w",
			major, minor, MajorBits, MinorBits, ErrCounterWidth)
	}
	return nil
}

// Engine holds the keys of one trusted processor (the GPU chip TCB).
// An Engine is immutable after New and safe for concurrent use.
type Engine struct {
	block   cipher.Block
	macKey  [32]byte
	macBits int
	macMask uint64

	// inner and outer are the marshalled SHA-256 states after absorbing
	// the HMAC key XOR ipad / opad blocks. Restoring them per MAC skips
	// the two key-schedule compressions hmac.New pays on every call and
	// lets the whole computation run on pooled, allocation-free state.
	inner, outer []byte

	pool    sync.Pool // of *macScratch
	padPool sync.Pool // of *padScratch
}

// padScratch is the reusable IV/pad state of one pad generation. It lives
// on the heap (pooled) rather than the caller's stack because the IV slice
// passed to cipher.Block.Encrypt escapes through the interface call — two
// heap allocations per sector on the hottest path in the package.
type padScratch struct {
	iv  [16]byte
	pad [SectorSize]byte
}

// macScratch is the reusable per-call state of one MAC computation. The
// header buffer lives here rather than on the caller's stack because
// arguments to hash.Hash.Write escape, and a per-call heap header is
// exactly the allocation this engine exists to avoid.
type macScratch struct {
	h   hash.Hash
	hu  encoding.BinaryUnmarshaler
	hdr [24]byte
	sum [sha256.Size]byte
}

// New creates an engine from a 16-byte AES key and a MAC key. macBits
// selects the truncated MAC width in (0, 64].
func New(aesKey, macKey []byte, macBits int) (*Engine, error) {
	if len(aesKey) != 16 {
		return nil, fmt.Errorf("cryptoeng: AES key must be 16 bytes, got %d", len(aesKey))
	}
	if len(macKey) == 0 {
		return nil, errors.New("cryptoeng: empty MAC key")
	}
	if macBits <= 0 || macBits > 64 {
		return nil, fmt.Errorf("cryptoeng: MAC width %d outside (0,64]", macBits)
	}
	b, err := aes.NewCipher(aesKey)
	if err != nil {
		return nil, err
	}
	e := &Engine{block: b, macBits: macBits, macMask: ^uint64(0)}
	if macBits < 64 {
		e.macMask = 1<<uint(macBits) - 1
	}
	e.macKey = sha256.Sum256(macKey)

	// Precompute the two HMAC key-schedule states (key zero-padded to the
	// 64-byte SHA-256 block, XOR 0x36 / 0x5c). The result must be
	// byte-identical to hmac.New(sha256.New, macKey) — a test holds the
	// engine to that.
	var blk [sha256.BlockSize]byte
	copy(blk[:], e.macKey[:])
	for i := range blk {
		blk[i] ^= 0x36
	}
	e.inner, err = marshalAfter(blk[:])
	if err != nil {
		return nil, err
	}
	for i := range blk {
		blk[i] ^= 0x36 ^ 0x5c
	}
	e.outer, err = marshalAfter(blk[:])
	if err != nil {
		return nil, err
	}
	e.pool.New = func() any { return newMacScratch() }
	e.padPool.New = func() any { return new(padScratch) }
	return e, nil
}

// marshalAfter returns the serialized state of a fresh SHA-256 after
// absorbing one full block.
func marshalAfter(block []byte) ([]byte, error) {
	h := sha256.New()
	h.Write(block)
	m, ok := h.(encoding.BinaryMarshaler)
	if !ok {
		return nil, errors.New("cryptoeng: sha256 state is not marshalable")
	}
	return m.MarshalBinary()
}

func newMacScratch() *macScratch {
	h := sha256.New()
	return &macScratch{h: h, hu: h.(encoding.BinaryUnmarshaler)}
}

// MustNew is New for statically valid keys; it panics on error.
func MustNew(aesKey, macKey []byte, macBits int) *Engine {
	e, err := New(aesKey, macKey, macBits)
	if err != nil {
		panic(err)
	}
	return e
}

// MACBits returns the configured MAC width.
func (e *Engine) MACBits() int { return e.macBits }

// Pad generates the one-time pad for a sector identified by its home
// address and counter pair. The pad is the AES encryption of the spatio-
// temporal IV; it can be precomputed before data arrives, which is why CME
// keeps decryption off the read critical path.
//
// Pad assumes in-width counters (≤ MaxMajor, ≤ MaxMinor); the exported
// encrypt/decrypt/MAC entry points validate before calling it.
func (e *Engine) Pad(homeAddr uint64, major uint64, minor uint64) [SectorSize]byte {
	ps := e.padPool.Get().(*padScratch)
	binary.LittleEndian.PutUint32(ps.iv[8:12], uint32(major))
	binary.LittleEndian.PutUint16(ps.iv[12:14], uint16(minor))
	e.padInto(ps.pad[:], &ps.iv, homeAddr)
	pad := ps.pad
	e.padPool.Put(ps)
	return pad
}

// padInto fills dst with the pad for homeAddr using an IV whose counter
// fields (bytes 8..14) the caller has already set, so a run of sectors
// sharing a major re-encodes only the address and block index.
func (e *Engine) padInto(dst []byte, iv *[16]byte, homeAddr uint64) {
	binary.LittleEndian.PutUint64(iv[0:8], homeAddr)
	// Two AES blocks per 32 B sector, distinguished by the last IV byte.
	for blk := 0; blk < SectorSize/16; blk++ {
		iv[15] = byte(blk)
		e.block.Encrypt(dst[blk*16:(blk+1)*16], iv[:])
	}
}

// EncryptSector applies the pad for (homeAddr, major, minor) to a 32-byte
// plaintext, producing the ciphertext in place of a fresh slice. Decryption
// is the same operation (XOR with the same pad). Counters outside the IV
// widths are rejected with ErrCounterWidth.
func (e *Engine) EncryptSector(dst, src []byte, homeAddr, major, minor uint64) error {
	if len(src) != SectorSize || len(dst) != SectorSize {
		return fmt.Errorf("cryptoeng: sector must be %d bytes, got src=%d dst=%d", SectorSize, len(src), len(dst))
	}
	if err := checkCounters(major, minor); err != nil {
		return err
	}
	ps := e.padPool.Get().(*padScratch)
	binary.LittleEndian.PutUint32(ps.iv[8:12], uint32(major))
	binary.LittleEndian.PutUint16(ps.iv[12:14], uint16(minor))
	e.padInto(ps.pad[:], &ps.iv, homeAddr)
	for i := range ps.pad {
		dst[i] = src[i] ^ ps.pad[i]
	}
	e.padPool.Put(ps)
	return nil
}

// DecryptSector is the inverse of EncryptSector (identical XOR).
func (e *Engine) DecryptSector(dst, src []byte, homeAddr, major, minor uint64) error {
	return e.EncryptSector(dst, src, homeAddr, major, minor)
}

// EncryptSectors encrypts len(minors) contiguous sectors starting at
// homeAddr in one pass: sector i uses (homeAddr+i*SectorSize, major,
// minors[i]). The shared IV is encoded once and only the address, minor,
// and block-index bytes change per sector, which is the common shape of
// chunk re-encryption sweeps (collapse, overflow, rekey).
func (e *Engine) EncryptSectors(dst, src []byte, homeAddr, major uint64, minors []uint64) error {
	if len(src) != len(minors)*SectorSize || len(dst) != len(src) {
		return fmt.Errorf("cryptoeng: sector run must be %d bytes, got src=%d dst=%d",
			len(minors)*SectorSize, len(src), len(dst))
	}
	if err := checkCounters(major, 0); err != nil {
		return err
	}
	ps := e.padPool.Get().(*padScratch)
	binary.LittleEndian.PutUint32(ps.iv[8:12], uint32(major))
	for si, minor := range minors {
		if minor > MaxMinor {
			e.padPool.Put(ps)
			return fmt.Errorf("cryptoeng: minor %#x outside %d-bit IV field: %w", minor, MinorBits, ErrCounterWidth)
		}
		binary.LittleEndian.PutUint16(ps.iv[12:14], uint16(minor))
		off := si * SectorSize
		e.padInto(ps.pad[:], &ps.iv, homeAddr+uint64(off))
		for i := 0; i < SectorSize; i++ {
			dst[off+i] = src[off+i] ^ ps.pad[i]
		}
	}
	e.padPool.Put(ps)
	return nil
}

// DecryptSectors is the inverse of EncryptSectors (identical XOR).
func (e *Engine) DecryptSectors(dst, src []byte, homeAddr, major uint64, minors []uint64) error {
	return e.EncryptSectors(dst, src, homeAddr, major, minors)
}

// macCompute runs the two-pass HMAC over (sc.hdr[:hdrLen], data) on sc and
// returns the truncated value. sc must come from the engine's pool or a
// Session, with the header already encoded into sc.hdr.
func (e *Engine) macCompute(sc *macScratch, data []byte, hdrLen int) uint64 {
	if err := sc.hu.UnmarshalBinary(e.inner); err != nil {
		panic("cryptoeng: restoring inner HMAC state: " + err.Error())
	}
	sc.h.Write(sc.hdr[:hdrLen])
	sc.h.Write(data)
	sc.h.Sum(sc.sum[:0])
	if err := sc.hu.UnmarshalBinary(e.outer); err != nil {
		panic("cryptoeng: restoring outer HMAC state: " + err.Error())
	}
	sc.h.Write(sc.sum[:])
	sc.h.Sum(sc.sum[:0])
	return binary.LittleEndian.Uint64(sc.sum[:8]) & e.macMask
}

// macHeader encodes the (address, major, minor) binding of a sector MAC.
func (sc *macScratch) macHeader(homeAddr, major, minor uint64) {
	binary.LittleEndian.PutUint64(sc.hdr[0:8], homeAddr)
	binary.LittleEndian.PutUint64(sc.hdr[8:16], major)
	binary.LittleEndian.PutUint64(sc.hdr[16:24], minor)
}

// MAC computes the truncated keyed MAC over a ciphertext sector bound to
// its home address and counters. Binding the address defeats splicing
// (relocating a valid ciphertext); binding the counters, together with the
// integrity tree over counters, defeats replay. Counters outside the IV
// widths are rejected with ErrCounterWidth: such a pair can never have
// encrypted data, so a MAC under it would bind nothing.
func (e *Engine) MAC(ciphertext []byte, homeAddr, major, minor uint64) (uint64, error) {
	if err := checkCounters(major, minor); err != nil {
		return 0, err
	}
	sc := e.pool.Get().(*macScratch)
	sc.macHeader(homeAddr, major, minor)
	v := e.macCompute(sc, ciphertext, 24)
	e.pool.Put(sc)
	return v, nil
}

// VerifyMAC recomputes and compares in constant time over the truncated
// width. It reports whether the MAC matches; out-of-width counters never
// match (nothing can have been MACed under them).
func (e *Engine) VerifyMAC(ciphertext []byte, homeAddr, major, minor, want uint64) bool {
	got, err := e.MAC(ciphertext, homeAddr, major, minor)
	if err != nil {
		return false
	}
	return macEqual(got, want)
}

// macEqual compares two truncated MACs in constant time without heap
// allocation.
func macEqual(got, want uint64) bool {
	var g, w [8]byte
	binary.LittleEndian.PutUint64(g[:], got)
	binary.LittleEndian.PutUint64(w[:], want)
	return hmac.Equal(g[:], w[:])
}

// HashNode computes a 32-byte keyed hash used for integrity-tree nodes.
func (e *Engine) HashNode(children []byte, level, index int) [32]byte {
	sc := e.pool.Get().(*macScratch)
	binary.LittleEndian.PutUint64(sc.hdr[0:8], uint64(level))
	binary.LittleEndian.PutUint64(sc.hdr[8:16], uint64(index))
	e.macCompute(sc, children, 16)
	out := sc.sum
	e.pool.Put(sc)
	return out
}

// Session pins one MAC scratch state to a single goroutine, letting chunk
// loops (verify or re-MAC a run of sectors) skip the pool round-trip each
// sector pays through Engine.MAC. A Session must not be shared between
// goroutines; the Engine behind it may be.
type Session struct {
	e  *Engine
	sc *macScratch
}

// NewSession returns a reusable single-goroutine MAC context.
func (e *Engine) NewSession() *Session {
	return &Session{e: e, sc: newMacScratch()}
}

// MAC is Engine.MAC on the session's pinned scratch state.
func (s *Session) MAC(ciphertext []byte, homeAddr, major, minor uint64) (uint64, error) {
	if err := checkCounters(major, minor); err != nil {
		return 0, err
	}
	s.sc.macHeader(homeAddr, major, minor)
	return s.e.macCompute(s.sc, ciphertext, 24), nil
}

// VerifyMAC is Engine.VerifyMAC on the session's pinned scratch state.
func (s *Session) VerifyMAC(ciphertext []byte, homeAddr, major, minor, want uint64) bool {
	got, err := s.MAC(ciphertext, homeAddr, major, minor)
	if err != nil {
		return false
	}
	return macEqual(got, want)
}
