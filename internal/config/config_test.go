package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

func TestGeometryDerived(t *testing.T) {
	g := Default().Geometry
	if got := g.SectorsPerBlock(); got != 4 {
		t.Errorf("SectorsPerBlock = %d, want 4", got)
	}
	if got := g.SectorsPerChunk(); got != 8 {
		t.Errorf("SectorsPerChunk = %d, want 8", got)
	}
	if got := g.BlocksPerChunk(); got != 2 {
		t.Errorf("BlocksPerChunk = %d, want 2", got)
	}
	if got := g.ChunksPerPage(); got != 16 {
		t.Errorf("ChunksPerPage = %d, want 16", got)
	}
	if got := g.BlocksPerPage(); got != 32 {
		t.Errorf("BlocksPerPage = %d, want 32", got)
	}
	if got := g.SectorsPerPage(); got != 128 {
		t.Errorf("SectorsPerPage = %d, want 128", got)
	}
}

func TestGeometryValidateRejectsBadSizes(t *testing.T) {
	cases := []Geometry{
		{SectorSize: 0, BlockSize: 128, ChunkSize: 256, PageSize: 4096},
		{SectorSize: 32, BlockSize: 100, ChunkSize: 256, PageSize: 4096}, // block not multiple of sector
		{SectorSize: 32, BlockSize: 128, ChunkSize: 200, PageSize: 4096}, // chunk not multiple of block
		{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 1000}, // page not multiple of chunk
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestCXLBandwidthRatio(t *testing.T) {
	c := Default()
	num, den := c.Memory.CXLBytesPerCycleRational()
	// 16 channels × 32 B/cycle = 512 B/cycle aggregate; 1/16th = 32 B/cycle.
	if float64(num)/float64(den) != 32 {
		t.Errorf("CXL bandwidth = %d/%d, want 32 B/cycle", num, den)
	}
}

func TestWithCXLRatio(t *testing.T) {
	c := Default().WithCXLRatio(1, 4)
	if c.Memory.CXLRatioNum != 1 || c.Memory.CXLRatioDen != 4 {
		t.Errorf("ratio = %d/%d, want 1/4", c.Memory.CXLRatioNum, c.Memory.CXLRatioDen)
	}
	// Original preset untouched (value semantics).
	if d := Default(); d.Memory.CXLRatioDen != 16 {
		t.Error("Default() mutated by WithCXLRatio")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
}

func TestWithFootprintRatio(t *testing.T) {
	c := Default().WithFootprintRatio(0.2)
	if c.Memory.DeviceFootprintRatio != 0.2 {
		t.Errorf("ratio = %v, want 0.2", c.Memory.DeviceFootprintRatio)
	}
	bad := Default().WithFootprintRatio(0)
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted footprint ratio 0")
	}
	bad = Default().WithFootprintRatio(1.5)
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted footprint ratio > 1")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.GPU.NumSMs = 0 },
		func(c *Config) { c.GPU.MaxOutstanding = 0 },
		func(c *Config) { c.Memory.DeviceChannels = 0 },
		func(c *Config) { c.Memory.DeviceBytesPerCycle = 0 },
		func(c *Config) { c.Memory.CXLRatioDen = 0 },
		func(c *Config) { c.Security.MACBits = 65 },
		func(c *Config) { c.Security.MappingCacheEntries = 0 },
	}
	for i, mut := range mutations {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() = nil, want error", i)
		}
	}
}

func TestGPCs(t *testing.T) {
	g := GPU{NumSMs: 80, SMsPerGPC: 14}
	if got := g.GPCs(); got != 6 {
		t.Errorf("GPCs = %d, want 6", got)
	}
	g = GPU{NumSMs: 84, SMsPerGPC: 14}
	if got := g.GPCs(); got != 6 {
		t.Errorf("GPCs = %d, want 6", got)
	}
}
