// Package config defines the parameters of the simulated CXL-expanded GPU
// memory system and of the security machinery. The default configuration
// reproduces the paper's Table I (Volta-like GPU with CXL expansion at
// 1/16th of the device bandwidth, device memory holding 35% of the
// application footprint) and Table II (metadata caches and security engine).
package config

import (
	"errors"
	"fmt"
)

// Geometry fixes the data-layout constants shared by every module.
//
// A 32 B sector is the memory access granularity; a 128 B block is a
// sectored cache line (4 sectors); a 256 B chunk is the fine-grained channel
// interleaving granularity (2 blocks); a 4 KiB page is the migration
// granularity (16 chunks).
type Geometry struct {
	SectorSize int // bytes per memory access (32)
	BlockSize  int // bytes per cache block (128)
	ChunkSize  int // bytes per interleaving chunk (256)
	PageSize   int // bytes per migrated page (4096)
}

// SectorsPerBlock returns BlockSize / SectorSize.
func (g Geometry) SectorsPerBlock() int { return g.BlockSize / g.SectorSize }

// SectorsPerChunk returns ChunkSize / SectorSize.
func (g Geometry) SectorsPerChunk() int { return g.ChunkSize / g.SectorSize }

// BlocksPerChunk returns ChunkSize / BlockSize.
func (g Geometry) BlocksPerChunk() int { return g.ChunkSize / g.BlockSize }

// ChunksPerPage returns PageSize / ChunkSize.
func (g Geometry) ChunksPerPage() int { return g.PageSize / g.ChunkSize }

// BlocksPerPage returns PageSize / BlockSize.
func (g Geometry) BlocksPerPage() int { return g.PageSize / g.BlockSize }

// SectorsPerPage returns PageSize / SectorSize.
func (g Geometry) SectorsPerPage() int { return g.PageSize / g.SectorSize }

// Validate checks the geometric invariants every module relies on.
func (g Geometry) Validate() error {
	switch {
	case g.SectorSize <= 0 || g.BlockSize <= 0 || g.ChunkSize <= 0 || g.PageSize <= 0:
		return errors.New("config: geometry sizes must be positive")
	case g.BlockSize%g.SectorSize != 0:
		return errors.New("config: block size must be a multiple of sector size")
	case g.ChunkSize%g.BlockSize != 0:
		return errors.New("config: chunk size must be a multiple of block size")
	case g.PageSize%g.ChunkSize != 0:
		return errors.New("config: page size must be a multiple of chunk size")
	}
	return nil
}

// GPU describes the compute side: how memory requests are generated.
type GPU struct {
	NumSMs         int // streaming multiprocessors
	SMsPerGPC      int // SMs sharing one interconnect port / mapping cache
	WarpsPerSM     int // concurrently scheduled warps per SM
	MaxOutstanding int // in-flight memory requests per SM (MSHR-like bound)
	NonMemIPC      int // non-memory instructions retired per SM per cycle

	L2KBPerPartition int    // L2 slice capacity per memory partition
	L2Ways           int    // L2 associativity
	L2MSHRs          int    // L2 outstanding misses per slice
	L2Latency        uint64 // L2 hit latency, cycles
	XbarLatency      uint64 // interconnect traversal latency, cycles
}

// GPCs returns the number of graphics processing clusters.
func (g GPU) GPCs() int { return (g.NumSMs + g.SMsPerGPC - 1) / g.SMsPerGPC }

// Memory describes the two memory tiers.
type Memory struct {
	DeviceChannels       int    // HBM/GDDR channels (memory partitions)
	DeviceBytesPerCycle  uint64 // per-channel service bandwidth
	DeviceLatency        uint64 // fixed access latency per channel request, cycles
	CXLRatioNum          uint64 // CXL aggregate BW = Num/Den × device aggregate BW
	CXLRatioDen          uint64
	CXLLatency           uint64  // link + media latency, cycles
	DeviceFootprintRatio float64 // fraction of application footprint resident in device memory
}

// DeviceAggregateBytesPerCycle returns the total device-memory bandwidth.
func (m Memory) DeviceAggregateBytesPerCycle() uint64 {
	return uint64(m.DeviceChannels) * m.DeviceBytesPerCycle
}

// CXLBytesPerCycleRational returns the CXL link bandwidth as a rational
// number of bytes per cycle (num/den), preserving exact ratios like 1/16.
func (m Memory) CXLBytesPerCycleRational() (num, den uint64) {
	return m.DeviceAggregateBytesPerCycle() * m.CXLRatioNum, m.CXLRatioDen
}

// Security describes the metadata caches and the security engine (Table II).
type Security struct {
	MACBits             int    // MAC length in bits (56, per Gueron's analysis)
	MACLatency          uint64 // MAC generation/verification latency, cycles
	AESLatency          uint64 // OTP generation latency (hidden off critical path for reads)
	CounterCacheKB      int    // per-partition counter cache capacity
	MACCacheKB          int    // per-partition MAC cache capacity
	BMTCacheKB          int    // per-partition BMT node cache capacity
	MetaCacheWays       int    // associativity of metadata caches
	MetaCacheMSHRs      int    // MSHRs shared by the metadata caches
	MappingCacheEntries int    // per-GPC CXL-to-GPU mapping cache entries
	DirtyBufferEntries  int    // control-logic dirty-bitmask buffer entries
}

// Config aggregates everything needed to instantiate a system.
type Config struct {
	Geometry Geometry
	GPU      GPU
	Memory   Memory
	Security Security
}

// Default returns the paper's baseline configuration (Tables I and II).
func Default() Config {
	return Config{
		Geometry: Geometry{
			SectorSize: 32,
			BlockSize:  128,
			ChunkSize:  256,
			PageSize:   4096,
		},
		GPU: GPU{
			NumSMs:         80, // Volta-like
			SMsPerGPC:      14, // 6 GPCs
			WarpsPerSM:     24,
			MaxOutstanding: 48,
			NonMemIPC:      1,

			// L2 slices are scaled with the (scaled-down) workload
			// footprints so memory pressure matches the paper's regime.
			L2KBPerPartition: 32,
			L2Ways:           8,
			L2MSHRs:          64,
			L2Latency:        30,
			XbarLatency:      15,
		},
		Memory: Memory{
			DeviceChannels:       16,
			DeviceBytesPerCycle:  32, // one sector per cycle per channel
			DeviceLatency:        200,
			CXLRatioNum:          1,
			CXLRatioDen:          16, // PCIe 5.0 x16-comparable aggregate
			CXLLatency:           600,
			DeviceFootprintRatio: 0.35,
		},
		Security: Security{
			MACBits:             56,
			MACLatency:          40,
			AESLatency:          40,
			CounterCacheKB:      8,
			MACCacheKB:          2, // 2 kB per memory partition (Table II)
			BMTCacheKB:          8,
			MetaCacheWays:       4,
			MetaCacheMSHRs:      256,
			MappingCacheEntries: 128,
			DirtyBufferEntries:  32,
		},
	}
}

// Validate checks cross-field invariants. It returns the first problem found.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.GPU.NumSMs <= 0 || c.GPU.SMsPerGPC <= 0 || c.GPU.WarpsPerSM <= 0:
		return errors.New("config: GPU dimensions must be positive")
	case c.GPU.MaxOutstanding <= 0:
		return errors.New("config: MaxOutstanding must be positive")
	case c.Memory.DeviceChannels <= 0:
		return errors.New("config: need at least one device channel")
	case c.Memory.DeviceBytesPerCycle == 0:
		return errors.New("config: device bandwidth must be positive")
	case c.Memory.CXLRatioNum == 0 || c.Memory.CXLRatioDen == 0:
		return errors.New("config: CXL bandwidth ratio must be positive")
	case c.Memory.DeviceFootprintRatio <= 0 || c.Memory.DeviceFootprintRatio > 1:
		return fmt.Errorf("config: device footprint ratio %v outside (0,1]", c.Memory.DeviceFootprintRatio)
	case c.Security.MACBits <= 0 || c.Security.MACBits > 64:
		return fmt.Errorf("config: MAC bits %d outside (0,64]", c.Security.MACBits)
	case c.Security.MappingCacheEntries <= 0:
		return errors.New("config: mapping cache must have entries")
	}
	if c.Geometry.PageSize/c.Geometry.ChunkSize > c.Memory.DeviceChannels &&
		c.Memory.DeviceChannels&(c.Memory.DeviceChannels-1) != 0 {
		return errors.New("config: device channel count must be a power of two when pages span more chunks than channels")
	}
	return nil
}

// WithCXLRatio returns a copy with the CXL bandwidth ratio replaced
// (used by the Fig. 13 sensitivity sweep).
func (c Config) WithCXLRatio(num, den uint64) Config {
	c.Memory.CXLRatioNum, c.Memory.CXLRatioDen = num, den
	return c
}

// WithFootprintRatio returns a copy with the device-memory-to-footprint
// ratio replaced (used by the Fig. 14 sensitivity sweep).
func (c Config) WithFootprintRatio(r float64) Config {
	c.Memory.DeviceFootprintRatio = r
	return c
}
