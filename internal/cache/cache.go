// Package cache implements the sectored set-associative cache with MSHRs
// used throughout the simulated system: for L2 slices and for the per-
// partition security-metadata caches (counter, MAC, and BMT caches), which
// prior GPU-security work (PSSM) models as sectored caches.
//
// The cache is a state container; timing is the caller's concern. A lookup
// reports which requested sectors hit and which miss, the MSHR file merges
// outstanding misses, and fills may evict a victim whose dirty sectors the
// caller must write back.
package cache

import (
	"errors"
	"fmt"
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// SectorMask is a bitmask of sectors within a block (bit i = sector i).
type SectorMask uint32

// Has reports whether sector i is set.
func (m SectorMask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// Count returns the number of set sectors.
func (m SectorMask) Count() int {
	n := 0
	for x := m; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// MaskAll returns a mask with the low n bits set.
func MaskAll(n int) SectorMask { return SectorMask(1<<uint(n)) - 1 }

// Config sizes a cache.
type Config struct {
	SizeBytes  int // total capacity
	BlockSize  int // bytes per line
	SectorSize int // bytes per sector (SectorSize == BlockSize means unsectored)
	Ways       int // associativity
	MSHRs      int // outstanding misses tracked (0 disables the MSHR file)
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.BlockSize <= 0 || c.SectorSize <= 0 || c.Ways <= 0:
		return errors.New("cache: sizes and ways must be positive")
	case c.BlockSize%c.SectorSize != 0:
		return errors.New("cache: block size must be a multiple of sector size")
	case c.BlockSize/c.SectorSize > 32:
		return errors.New("cache: at most 32 sectors per block")
	case c.SizeBytes%(c.BlockSize*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by block*ways %d", c.SizeBytes, c.BlockSize*c.Ways)
	case c.MSHRs < 0:
		return errors.New("cache: negative MSHR count")
	}
	sets := c.SizeBytes / (c.BlockSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

type line struct {
	tag   Addr
	valid SectorMask
	dirty SectorMask
	extra uint64 // caller-managed tag (e.g. Salus CXL tag); 0 when unused
	lru   uint64
	inUse bool
}

// Victim describes an evicted line.
type Victim struct {
	BlockAddr Addr
	Dirty     SectorMask // sectors needing writeback
	Valid     SectorMask
	Extra     uint64
}

// Stats counts cache activity.
type Stats struct {
	Lookups      uint64
	LineHits     uint64 // lookups where the line was present
	LineMisses   uint64
	SectorHits   uint64 // sectors served from the cache
	SectorMisses uint64 // sectors that needed a fill
	Evictions    uint64
	Writebacks   uint64 // evictions with at least one dirty sector
}

// Cache is a sectored set-associative cache.
type Cache struct {
	cfg        Config
	sets       [][]line
	setMask    Addr
	sectorsPer int
	clock      uint64
	mshrs      map[Addr]*MSHR
	stats      Stats
}

// New builds a cache; it panics on invalid configuration (caller bug).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.BlockSize * cfg.Ways)
	c := &Cache{
		cfg:        cfg,
		sets:       make([][]line, sets),
		setMask:    Addr(sets - 1),
		sectorsPer: cfg.BlockSize / cfg.SectorSize,
		mshrs:      make(map[Addr]*MSHR),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// SectorsPerBlock returns the number of sectors in a line.
func (c *Cache) SectorsPerBlock() int { return c.sectorsPer }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr rounds an address down to its block base.
func (c *Cache) BlockAddr(a Addr) Addr { return a - a%Addr(c.cfg.BlockSize) }

// SectorIndex returns the sector index of an address within its block.
func (c *Cache) SectorIndex(a Addr) int {
	return int(a%Addr(c.cfg.BlockSize)) / c.cfg.SectorSize
}

func (c *Cache) setIndex(block Addr) int {
	return int((block / Addr(c.cfg.BlockSize)) & c.setMask)
}

func (c *Cache) find(block Addr) *line {
	set := c.sets[c.setIndex(block)]
	for i := range set {
		if set[i].inUse && set[i].tag == block {
			return &set[i]
		}
	}
	return nil
}

// LookupResult reports the outcome of a cache lookup.
type LookupResult struct {
	LinePresent bool
	Hit         SectorMask // requested sectors present
	Miss        SectorMask // requested sectors absent
	Extra       uint64     // extra tag of the line when present
}

// Lookup checks block for the requested sectors and updates LRU and stats.
// It does not allocate; use Fill after fetching missing sectors.
func (c *Cache) Lookup(block Addr, want SectorMask) LookupResult {
	c.stats.Lookups++
	ln := c.find(block)
	if ln == nil {
		c.stats.LineMisses++
		c.stats.SectorMisses += uint64(want.Count())
		return LookupResult{Miss: want}
	}
	c.clock++
	ln.lru = c.clock
	c.stats.LineHits++
	hit := want & ln.valid
	miss := want &^ ln.valid
	c.stats.SectorHits += uint64(hit.Count())
	c.stats.SectorMisses += uint64(miss.Count())
	return LookupResult{LinePresent: true, Hit: hit, Miss: miss, Extra: ln.extra}
}

// Peek reports line state without touching LRU or stats.
func (c *Cache) Peek(block Addr) (valid, dirty SectorMask, extra uint64, present bool) {
	ln := c.find(block)
	if ln == nil {
		return 0, 0, 0, false
	}
	return ln.valid, ln.dirty, ln.extra, true
}

// Fill installs sectors of block, allocating (and possibly evicting) a line.
// extra is stored as the line's caller-managed tag. The returned victim is
// non-nil when a valid line was displaced.
func (c *Cache) Fill(block Addr, sectors SectorMask, extra uint64) *Victim {
	if ln := c.find(block); ln != nil {
		ln.valid |= sectors
		ln.extra = extra
		c.clock++
		ln.lru = c.clock
		return nil
	}
	set := c.sets[c.setIndex(block)]
	victimIdx := 0
	for i := range set {
		if !set[i].inUse {
			victimIdx = i
			goto install
		}
		if set[i].lru < set[victimIdx].lru {
			victimIdx = i
		}
	}
install:
	var victim *Victim
	v := &set[victimIdx]
	if v.inUse {
		c.stats.Evictions++
		victim = &Victim{BlockAddr: v.tag, Dirty: v.dirty, Valid: v.valid, Extra: v.extra}
		if v.dirty != 0 {
			c.stats.Writebacks++
		}
	}
	c.clock++
	*v = line{tag: block, valid: sectors, extra: extra, lru: c.clock, inUse: true}
	return victim
}

// MarkDirty marks sectors of a present block dirty. It reports whether the
// block (with all the given sectors valid) was present.
func (c *Cache) MarkDirty(block Addr, sectors SectorMask) bool {
	ln := c.find(block)
	if ln == nil || sectors&^ln.valid != 0 {
		return false
	}
	ln.dirty |= sectors
	return true
}

// SetExtra updates the caller-managed tag of a present line.
func (c *Cache) SetExtra(block Addr, extra uint64) bool {
	ln := c.find(block)
	if ln == nil {
		return false
	}
	ln.extra = extra
	return true
}

// Invalidate drops a block, returning its victim record if it was present.
func (c *Cache) Invalidate(block Addr) *Victim {
	ln := c.find(block)
	if ln == nil {
		return nil
	}
	v := &Victim{BlockAddr: ln.tag, Dirty: ln.dirty, Valid: ln.valid, Extra: ln.extra}
	*ln = line{}
	return v
}

// FlushDirty returns victim records for every dirty line and marks them
// clean. Used at end-of-run to account for pending writebacks.
func (c *Cache) FlushDirty() []Victim {
	var out []Victim
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			if ln.inUse && ln.dirty != 0 {
				out = append(out, Victim{BlockAddr: ln.tag, Dirty: ln.dirty, Valid: ln.valid, Extra: ln.extra})
				ln.dirty = 0
			}
		}
	}
	return out
}

// MSHR tracks one outstanding miss to a block.
type MSHR struct {
	Block   Addr
	Pending SectorMask // union of requested missing sectors
	Waiters []func(SectorMask)
}

// MSHRStatus is the outcome of an MSHR allocation attempt.
type MSHRStatus int

const (
	// MSHRNew means a new entry was allocated; the caller must issue the fetch.
	MSHRNew MSHRStatus = iota
	// MSHRMerged means the miss was merged into an existing entry.
	MSHRMerged
	// MSHRFull means no entry was available; the caller must stall and retry.
	MSHRFull
)

// AllocateMSHR records an outstanding miss for (block, sectors) and
// registers onFill to run when the fill completes. With MSHRs disabled
// (cfg.MSHRs == 0) every allocation reports MSHRNew and completion callbacks
// still fire on CompleteMSHR.
func (c *Cache) AllocateMSHR(block Addr, sectors SectorMask, onFill func(SectorMask)) MSHRStatus {
	if m, ok := c.mshrs[block]; ok {
		m.Pending |= sectors
		if onFill != nil {
			m.Waiters = append(m.Waiters, onFill)
		}
		return MSHRMerged
	}
	if c.cfg.MSHRs > 0 && len(c.mshrs) >= c.cfg.MSHRs {
		return MSHRFull
	}
	m := &MSHR{Block: block, Pending: sectors}
	if onFill != nil {
		m.Waiters = append(m.Waiters, onFill)
	}
	c.mshrs[block] = m
	return MSHRNew
}

// PendingMSHR returns the pending sector mask for a block's MSHR (0 if none).
func (c *Cache) PendingMSHR(block Addr) SectorMask {
	if m, ok := c.mshrs[block]; ok {
		return m.Pending
	}
	return 0
}

// OutstandingMSHRs returns the number of live MSHR entries.
func (c *Cache) OutstandingMSHRs() int { return len(c.mshrs) }

// CompleteMSHR fills the block (allocate-on-fill policy, per Table II),
// releases the MSHR, and invokes the waiters. It returns the fill victim.
func (c *Cache) CompleteMSHR(block Addr, extra uint64) *Victim {
	m, ok := c.mshrs[block]
	if !ok {
		return nil
	}
	delete(c.mshrs, block)
	victim := c.Fill(block, m.Pending, extra)
	for _, w := range m.Waiters {
		w(m.Pending)
	}
	return victim
}
