package cache

import "testing"

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{SizeBytes: 64 * 1024, BlockSize: 128, SectorSize: 32, Ways: 8, MSHRs: 64})
	for a := Addr(0); a < 64*1024; a += 128 {
		c.Fill(a, 0xF, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(Addr(i%512)*128, 0x1)
	}
}

func BenchmarkFillEvictChurn(b *testing.B) {
	c := New(Config{SizeBytes: 8 * 1024, BlockSize: 128, SectorSize: 32, Ways: 4, MSHRs: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(Addr(i)*128, 0xF, 0)
	}
}

func BenchmarkMSHRCycle(b *testing.B) {
	c := New(Config{SizeBytes: 8 * 1024, BlockSize: 128, SectorSize: 32, Ways: 4, MSHRs: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := Addr(i%32) * 128
		c.AllocateMSHR(block, 1, nil)
		c.CompleteMSHR(block, 0)
	}
}
