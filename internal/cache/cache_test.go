package cache

import (
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{SizeBytes: 1024, BlockSize: 128, SectorSize: 32, Ways: 2, MSHRs: 4}
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, BlockSize: 128, SectorSize: 32, Ways: 2},
		{SizeBytes: 1024, BlockSize: 100, SectorSize: 32, Ways: 2},  // block % sector
		{SizeBytes: 1024, BlockSize: 4096, SectorSize: 32, Ways: 2}, // >32 sectors
		{SizeBytes: 1000, BlockSize: 128, SectorSize: 32, Ways: 2},  // size % (block*ways)
		{SizeBytes: 1152, BlockSize: 128, SectorSize: 32, Ways: 3},  // 3 sets, not pow2
		{SizeBytes: 1024, BlockSize: 128, SectorSize: 32, Ways: 2, MSHRs: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSectorMask(t *testing.T) {
	m := MaskAll(4)
	if m != 0xF {
		t.Errorf("MaskAll(4) = %x, want f", m)
	}
	if !m.Has(0) || !m.Has(3) || m.Has(4) {
		t.Error("Has wrong")
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d, want 4", m.Count())
	}
	if MaskAll(0) != 0 {
		t.Error("MaskAll(0) != 0")
	}
}

func TestLookupMissThenFillHit(t *testing.T) {
	c := New(smallCfg())
	r := c.Lookup(0x1000, 0b0011)
	if r.LinePresent || r.Hit != 0 || r.Miss != 0b0011 {
		t.Fatalf("cold lookup = %+v", r)
	}
	if v := c.Fill(0x1000, 0b0011, 7); v != nil {
		t.Fatalf("fill into empty set evicted %+v", v)
	}
	r = c.Lookup(0x1000, 0b0001)
	if !r.LinePresent || r.Hit != 0b0001 || r.Miss != 0 || r.Extra != 7 {
		t.Fatalf("warm lookup = %+v", r)
	}
	// Partial sector hit: sector 2 absent.
	r = c.Lookup(0x1000, 0b0110)
	if r.Hit != 0b0010 || r.Miss != 0b0100 {
		t.Fatalf("partial lookup = %+v", r)
	}
}

func TestBlockAddrSectorIndex(t *testing.T) {
	c := New(smallCfg())
	if got := c.BlockAddr(0x1234); got != 0x1200+0x00 { // 0x1234 % 128 = 0x34
		if got != 0x1234-0x34 {
			t.Errorf("BlockAddr = %#x", got)
		}
	}
	if got := c.SectorIndex(0x1234); got != 1 { // 0x34=52; 52/32 = 1
		t.Errorf("SectorIndex = %d, want 1", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallCfg()) // 4 sets, 2 ways
	// Three blocks mapping to the same set: set = (addr/128) % 4.
	a, b, d := Addr(0), Addr(128*4), Addr(128*8)
	c.Fill(a, 0b1, 0)
	c.Fill(b, 0b1, 0)
	c.Lookup(a, 0b1) // make a MRU
	v := c.Fill(d, 0b1, 0)
	if v == nil || v.BlockAddr != b {
		t.Fatalf("victim = %+v, want block %#x", v, b)
	}
	if _, _, _, ok := c.Peek(a); !ok {
		t.Error("MRU block was evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, 0b0011, 0)
	if !c.MarkDirty(0, 0b0001) {
		t.Fatal("MarkDirty on valid sector failed")
	}
	if c.MarkDirty(0, 0b0100) {
		t.Error("MarkDirty on invalid sector succeeded")
	}
	if c.MarkDirty(0x8000, 0b1) {
		t.Error("MarkDirty on absent block succeeded")
	}
	// Force eviction of block 0 by filling its set.
	c.Fill(128*4, 0b1, 0)
	v := c.Fill(128*8, 0b1, 0)
	if v == nil || v.BlockAddr != 0 || v.Dirty != 0b0001 {
		t.Fatalf("victim = %+v, want dirty mask 1 on block 0", v)
	}
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", st.Writebacks)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, 0b11, 5)
	c.MarkDirty(0, 0b01)
	c.Fill(128, 0b11, 6)
	c.MarkDirty(128, 0b10)

	v := c.Invalidate(0)
	if v == nil || v.Dirty != 0b01 || v.Extra != 5 {
		t.Fatalf("Invalidate = %+v", v)
	}
	if c.Invalidate(0) != nil {
		t.Error("double Invalidate returned a victim")
	}
	flushed := c.FlushDirty()
	if len(flushed) != 1 || flushed[0].BlockAddr != 128 || flushed[0].Dirty != 0b10 {
		t.Fatalf("FlushDirty = %+v", flushed)
	}
	if again := c.FlushDirty(); len(again) != 0 {
		t.Errorf("second FlushDirty = %+v, want empty", again)
	}
}

func TestSetExtra(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, 0b1, 1)
	if !c.SetExtra(0, 42) {
		t.Fatal("SetExtra on present line failed")
	}
	if r := c.Lookup(0, 0b1); r.Extra != 42 {
		t.Errorf("Extra = %d, want 42", r.Extra)
	}
	if c.SetExtra(0x9000, 1) {
		t.Error("SetExtra on absent line succeeded")
	}
}

func TestMSHRLifecycle(t *testing.T) {
	c := New(smallCfg())
	var filled SectorMask
	st := c.AllocateMSHR(0, 0b0001, func(m SectorMask) { filled = m })
	if st != MSHRNew {
		t.Fatalf("first allocate = %v, want MSHRNew", st)
	}
	st = c.AllocateMSHR(0, 0b0010, nil)
	if st != MSHRMerged {
		t.Fatalf("second allocate = %v, want MSHRMerged", st)
	}
	if got := c.PendingMSHR(0); got != 0b0011 {
		t.Fatalf("Pending = %b, want 11", got)
	}
	if c.OutstandingMSHRs() != 1 {
		t.Fatalf("Outstanding = %d, want 1", c.OutstandingMSHRs())
	}
	c.CompleteMSHR(0, 9)
	if filled != 0b0011 {
		t.Errorf("waiter saw mask %b, want 11", filled)
	}
	if c.OutstandingMSHRs() != 0 {
		t.Error("MSHR not released")
	}
	if r := c.Lookup(0, 0b0011); r.Miss != 0 || r.Extra != 9 {
		t.Errorf("post-fill lookup = %+v", r)
	}
	if c.CompleteMSHR(0x7777, 0) != nil {
		t.Error("CompleteMSHR on unknown block returned victim")
	}
}

func TestMSHRFull(t *testing.T) {
	cfg := smallCfg()
	cfg.MSHRs = 2
	c := New(cfg)
	c.AllocateMSHR(0, 1, nil)
	c.AllocateMSHR(128, 1, nil)
	if st := c.AllocateMSHR(256, 1, nil); st != MSHRFull {
		t.Fatalf("third allocate = %v, want MSHRFull", st)
	}
	// Merging into existing entries still works when full.
	if st := c.AllocateMSHR(0, 2, nil); st != MSHRMerged {
		t.Fatalf("merge while full = %v, want MSHRMerged", st)
	}
}

func TestStatsCounting(t *testing.T) {
	c := New(smallCfg())
	c.Lookup(0, 0b11) // line miss, 2 sector misses
	c.Fill(0, 0b01, 0)
	c.Lookup(0, 0b11) // line hit, 1 sector hit, 1 sector miss
	st := c.Stats()
	if st.Lookups != 2 || st.LineHits != 1 || st.LineMisses != 1 {
		t.Errorf("line stats = %+v", st)
	}
	if st.SectorHits != 1 || st.SectorMisses != 3 {
		t.Errorf("sector stats = %+v", st)
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	// Property: after arbitrary fills, the number of resident blocks never
	// exceeds ways×sets, and a just-filled block is always present.
	cfg := smallCfg()
	f := func(addrs []uint16) bool {
		c := New(cfg)
		for _, a := range addrs {
			block := c.BlockAddr(Addr(a) * 32)
			c.Fill(block, 0b1, 0)
			if _, _, _, ok := c.Peek(block); !ok {
				return false
			}
		}
		resident := 0
		seen := map[Addr]bool{}
		for _, a := range addrs {
			block := c.BlockAddr(Addr(a) * 32)
			if seen[block] {
				continue
			}
			seen[block] = true
			if _, _, _, ok := c.Peek(block); ok {
				resident++
			}
		}
		return resident <= cfg.SizeBytes/cfg.BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillMergesSectors(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, 0b0001, 0)
	if v := c.Fill(0, 0b0100, 3); v != nil {
		t.Fatalf("refill same block evicted %+v", v)
	}
	valid, _, extra, ok := c.Peek(0)
	if !ok || valid != 0b0101 || extra != 3 {
		t.Errorf("after merge: valid=%b extra=%d ok=%v", valid, extra, ok)
	}
}
