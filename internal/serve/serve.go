// Package serve is the in-process traffic service: it multiplexes many
// concurrent client streams onto one shared securemem.Concurrent engine
// with real overload protection. The request pipeline is
//
//	shed check -> token-bucket admission -> bounded queue slot ->
//	deadline/retry execution loop -> typed outcome
//
// and every stage fails fast with a typed error — ErrShed, ErrOverload,
// ErrDeadline, ErrRetryBudget, ErrAmbiguous — so no request is ever
// buffered unboundedly, silently dropped, or silently wrong. Time is the
// shared sim.Clock: it advances only when requests do work, so deadlines
// and bucket refills are deterministic functions of load, never of the
// wall clock.
//
// Overload behaviour is class-aware (stats.ServeClass): under link
// pressure the degradation tiers shed bulk traffic first, then batch,
// and never interactive — device-resident reads keep serving through a
// CXL outage because they never touch the link.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// Class identifies a client's traffic class; it is the stats enum so the
// service counters wire straight into stats.Ops.
type Class = stats.ServeClass

// Traffic classes, re-exported for callers of this package.
const (
	Interactive = stats.ServeInteractive
	Batch       = stats.ServeBatch
	Bulk        = stats.ServeBulk
	NumClasses  = stats.NumServeClasses
)

// Typed rejection taxonomy. Every error Do returns wraps exactly one of
// these (or passes a securemem sentinel through typed); errors.Is is the
// supported way to classify an outcome.
var (
	// ErrOverload reports a request refused by admission control: the
	// class token bucket was empty or its bounded queue was full.
	ErrOverload = errors.New("serve: overload (admission refused)")
	// ErrDeadline reports a request whose deadline passed before it
	// could complete.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrShed reports a request refused by a degradation tier before
	// touching the engine.
	ErrShed = errors.New("serve: shed by degradation tier")
	// ErrRetryBudget reports an idempotent request that kept failing
	// after its retry budget was spent.
	ErrRetryBudget = errors.New("serve: retry budget exhausted")
	// ErrAmbiguous reports a write that failed after reaching the
	// engine: the bytes may or may not have been applied, so the service
	// refuses to retry it (a retry could double-apply).
	ErrAmbiguous = errors.New("serve: write failed ambiguously (not retried)")
	// ErrClosed reports a request submitted after Close.
	ErrClosed = errors.New("serve: server closed")
)

// ClassConfig tunes one traffic class.
type ClassConfig struct {
	// Rate is the token-bucket refill rate in tokens per clock cycle;
	// zero or negative disables admission-rate limiting for the class.
	Rate float64
	// Burst is the bucket capacity (minimum 1 when Rate is set).
	Burst float64
	// Queue bounds the class's in-flight requests; at the bound further
	// requests fail fast with ErrOverload. Minimum 1.
	Queue int
	// Retries is the default service-level retry budget for idempotent
	// requests (a Request may override it). Writes never retry.
	Retries int
	// Deadline is the default relative deadline in clock cycles charged
	// to the service clock; zero means no deadline.
	Deadline sim.Cycle
}

// TenantConfig tunes one tenant's cross-class admission bucket: a
// second token-bucket gate after the class bucket, keyed by
// Request.Tenant, so one tenant's burst cannot spend a whole class's
// admission budget.
type TenantConfig struct {
	// Rate is the refill rate in tokens per clock cycle; zero or
	// negative disables rate limiting for the tenant.
	Rate float64
	// Burst is the bucket capacity (minimum 1 when Rate is set).
	Burst float64
}

// Config configures a Server.
type Config struct {
	// Engine is the shared protected-memory engine. Required.
	Engine *securemem.Concurrent
	// Clock is the shared service clock; nil allocates a fresh one.
	Clock *sim.Clock
	// Classes tunes each traffic class; zero entries take defaults from
	// DefaultConfig.
	Classes [NumClasses]ClassConfig
	// ShedAfter is the consecutive-link-refusal pressure at which the
	// degradation ladder starts shedding bulk traffic (2x sheds batch
	// too); zero selects DefaultShedAfter.
	ShedAfter int
	// RestoreAfter is how many consecutive successes step the ladder
	// back down one tier; zero selects DefaultRestoreAfter.
	RestoreAfter int
	// Tenants configures per-tenant admission buckets, keyed by
	// Request.Tenant. Requests tagged with a tenant absent from the map
	// are tracked in the per-tenant counters but never rate-limited;
	// untagged requests skip the tenant stage entirely.
	Tenants map[string]TenantConfig
}

// Degradation-ladder defaults.
const (
	DefaultShedAfter    = 8
	DefaultRestoreAfter = 16
)

// DefaultClasses returns the default per-class tuning: interactive is
// low-latency (tight deadline, modest retries, generous rate), batch is
// throughput-oriented, bulk is background filler admitted only when
// there is room.
func DefaultClasses() [NumClasses]ClassConfig {
	var c [NumClasses]ClassConfig
	c[Interactive] = ClassConfig{Rate: 0, Burst: 0, Queue: 64, Retries: 4, Deadline: 64}
	c[Batch] = ClassConfig{Rate: 0.50, Burst: 32, Queue: 32, Retries: 2, Deadline: 256}
	c[Bulk] = ClassConfig{Rate: 0.25, Burst: 16, Queue: 16, Retries: 1, Deadline: 1024}
	return c
}

// Request is one client operation. Exactly one of the read/write shapes
// is used: Write=false reads len(Buf) bytes at Addr into Buf, Write=true
// writes Data at Addr.
type Request struct {
	Class Class
	Addr  securemem.HomeAddr
	Write bool
	Data  []byte // write payload
	Buf   []byte // read destination

	// Tenant tags the request with a tenant identity for per-tenant
	// admission (Config.Tenants) and the per-tenant outcome rollup in
	// Report.Tenants. Empty opts out of both.
	Tenant string

	// Deadline is the absolute service-clock deadline; zero selects the
	// class default (relative to submission).
	Deadline sim.Cycle
	// Retries overrides the class retry budget when >= 0; pass -1 (or
	// leave the class default by using 0... see NoRetryOverride) to keep
	// the class default. Writes never retry regardless.
	Retries int
	// OnDone, when set, runs with the outcome before Do returns, while
	// the server still holds its engine lock — but only if the request
	// actually reached the engine. Admission-stage rejections (shed,
	// overload, pre-execution deadline) never touched engine state, so
	// OnDone is not called for them; classify those from Do's return
	// value. The engine-lock guarantee is what lets a client mutate its
	// oracle inside OnDone without racing a concurrent quiesce/snapshot.
	OnDone func(err error)
}

// tokenBucket is a deterministic token bucket refilled by clock cycles.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   sim.Cycle
}

// take refills for elapsed cycles and consumes one token if available.
func (b *tokenBucket) take(now sim.Cycle) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// degrade is the degradation ladder: a leaky pressure counter of link
// refusals with hysteresis between the shed and restore thresholds, so
// the tier does not flap request-by-request at a boundary.
type degrade struct {
	mu           sync.Mutex
	shedAfter    int
	restoreAfter int
	pressure     int // link refusals minus successes, floored at 0
	oks          int // consecutive successes toward a tier step-down
	tier         int // 0 healthy, 1 shed bulk, 2 shed bulk+batch
}

// observe folds one engine-touched outcome into the ladder.
func (d *degrade) observe(success, linkRefused bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case linkRefused:
		d.pressure++
		d.oks = 0
		if d.pressure >= 2*d.shedAfter {
			d.tier = 2
		} else if d.pressure >= d.shedAfter && d.tier < 1 {
			d.tier = 1
		}
	case success:
		if d.pressure > 0 {
			d.pressure--
		}
		d.oks++
		if d.tier > 0 && d.oks >= d.restoreAfter {
			d.tier--
			d.oks = 0
		}
	}
}

func (d *degrade) currentTier() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tier
}

// Server multiplexes client requests onto the shared engine.
//
// Lock order: Server.state -> Concurrent.mu (and its interior). Requests
// hold state shared for their whole engine interaction including the
// OnDone callback; WithQuiesced and SwapEngine hold it exclusively, so a
// snapshot or an engine swap can never interleave with a half-finished
// request's oracle update.
type Server struct {
	state sync.RWMutex // guards eng identity; see lock-order comment
	eng   *securemem.Concurrent

	clock   *sim.Clock
	classes [NumClasses]ClassConfig
	admit   [NumClasses]tokenBucket
	tadmit  map[string]*tokenBucket // per-tenant buckets; immutable after New
	slots   [NumClasses]chan struct{}
	deg     degrade
	closed  atomic.Bool

	mu   sync.Mutex // guards ops, lat, and tops
	ops  [NumClasses]stats.ServeOps
	lat  [NumClasses]stats.Histogram
	tops map[string]*stats.TenantOps
	tmax int // high-water tier, for reporting
}

// New builds a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("serve: Config.Engine is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = &sim.Clock{}
	}
	defaults := DefaultClasses()
	s := &Server{eng: cfg.Engine, clock: cfg.Clock}
	for c := Class(0); c < NumClasses; c++ {
		cc := cfg.Classes[c]
		if cc == (ClassConfig{}) {
			cc = defaults[c]
		}
		if cc.Queue < 1 {
			cc.Queue = 1
		}
		if cc.Rate > 0 && cc.Burst < 1 {
			cc.Burst = 1
		}
		s.classes[c] = cc
		b := &s.admit[c]
		b.rate, b.burst, b.tokens = cc.Rate, cc.Burst, cc.Burst
		s.slots[c] = make(chan struct{}, cc.Queue)
	}
	s.tadmit = make(map[string]*tokenBucket, len(cfg.Tenants))
	for id, tc := range cfg.Tenants {
		if id == "" {
			return nil, errors.New("serve: Config.Tenants key must be non-empty")
		}
		if tc.Rate > 0 && tc.Burst < 1 {
			tc.Burst = 1
		}
		s.tadmit[id] = &tokenBucket{rate: tc.Rate, burst: tc.Burst, tokens: tc.Burst}
	}
	s.tops = make(map[string]*stats.TenantOps)
	s.deg.shedAfter = cfg.ShedAfter
	if s.deg.shedAfter <= 0 {
		s.deg.shedAfter = DefaultShedAfter
	}
	s.deg.restoreAfter = cfg.RestoreAfter
	if s.deg.restoreAfter <= 0 {
		s.deg.restoreAfter = DefaultRestoreAfter
	}
	return s, nil
}

// Clock returns the shared service clock.
func (s *Server) Clock() *sim.Clock {
	s.state.RLock()
	defer s.state.RUnlock()
	return s.clock
}

// Tier returns the current degradation tier (0 = healthy). Like
// Snapshot, it reads the degradation state under the counter mutex.
func (s *Server) Tier() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deg.currentTier()
}

// Close marks the server closed; subsequent Do calls fail with
// ErrClosed. In-flight requests complete normally. Publishing under the
// counter mutex orders the close against concurrent Snapshot calls.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed.Store(true)
}

// shedClass reports whether the current tier sheds class c.
func (s *Server) shedClass(c Class) (bool, int) {
	t := s.deg.currentTier()
	return (t >= 1 && c == Bulk) || (t >= 2 && c == Batch), t
}

// retryable reports whether an engine failure may be retried for an
// idempotent request: transports recover (transient faults, link
// refusals, a momentarily full writeback queue); media verdicts and
// integrity verdicts do not.
func retryable(err error) bool {
	return errors.Is(err, securemem.ErrTransient) ||
		errors.Is(err, securemem.ErrLinkDown) ||
		errors.Is(err, securemem.ErrDegraded) ||
		errors.Is(err, securemem.ErrQueueFull)
}

// linkRefused reports whether an engine failure signals link pressure,
// feeding the degradation ladder.
func linkRefused(err error) bool {
	return errors.Is(err, securemem.ErrLinkDown) ||
		errors.Is(err, securemem.ErrDegraded) ||
		errors.Is(err, securemem.ErrQueueFull)
}

// Do runs one request through the full pipeline and returns its typed
// outcome. It is safe for any number of goroutines.
func (s *Server) Do(req *Request) error {
	c := req.Class
	if c < 0 || c >= NumClasses {
		return fmt.Errorf("serve: invalid class %d", int(c))
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if shed, tier := s.shedClass(c); shed {
		s.finish(c, func(o *stats.ServeOps) { o.Shed++ })
		s.finishTenant(req.Tenant, func(o *stats.TenantOps) { o.Quota++ })
		return fmt.Errorf("%w: class %v at tier %d", ErrShed, c, tier)
	}
	if !s.admit[c].take(s.clock.Now()) {
		s.finish(c, func(o *stats.ServeOps) { o.Overload++ })
		s.finishTenant(req.Tenant, func(o *stats.TenantOps) { o.Quota++ })
		return fmt.Errorf("%w: class %v token bucket empty", ErrOverload, c)
	}
	if tb := s.tadmit[req.Tenant]; tb != nil && !tb.take(s.clock.Now()) {
		s.finish(c, func(o *stats.ServeOps) { o.Overload++ })
		s.finishTenant(req.Tenant, func(o *stats.TenantOps) { o.Quota++ })
		return fmt.Errorf("%w: tenant %q token bucket empty", ErrOverload, req.Tenant)
	}
	select {
	case s.slots[c] <- struct{}{}:
	default:
		s.finish(c, func(o *stats.ServeOps) { o.Overload++ })
		s.finishTenant(req.Tenant, func(o *stats.TenantOps) { o.Quota++ })
		return fmt.Errorf("%w: class %v queue full (%d in flight)", ErrOverload, c, cap(s.slots[c]))
	}
	defer func() { <-s.slots[c] }()

	s.state.RLock()
	defer s.state.RUnlock()
	return s.run(req, c)
}

// run is the execution loop; the caller holds the engine read lock.
func (s *Server) run(req *Request, c Class) error {
	cc := s.classes[c]
	start := s.clock.Now()
	deadline := req.Deadline
	if deadline == 0 && cc.Deadline > 0 {
		deadline = start + cc.Deadline
	}
	budget := cc.Retries
	if req.Retries > 0 {
		budget = req.Retries
	}
	if req.Write {
		budget = 0
	}

	var err error
	touched := false
	retries := 0
	for attempt := 0; ; attempt++ {
		if deadline != 0 && s.clock.Now() >= deadline && attempt > 0 {
			err = fmt.Errorf("%w: class %v after %d attempts", ErrDeadline, c, attempt)
			break
		}
		err = s.exec(req)
		touched = true
		if err == nil {
			break
		}
		if req.Write {
			// Both sentinels stay visible to errors.Is: the service verdict
			// (ambiguous) and the engine cause (link, fault, ...).
			err = fmt.Errorf("%w: %w", ErrAmbiguous, err)
			break
		}
		if !retryable(err) {
			break
		}
		if attempt >= budget {
			err = fmt.Errorf("%w (budget %d): %w", ErrRetryBudget, budget, err)
			break
		}
		retries++
		// Exponential backoff between retries, charged to the service
		// clock (capped at 64 cycles): this is what arms the deadline
		// check — a request burning its budget against a down link runs
		// out of time, not just attempts.
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		s.clock.Advance(sim.Cycle(1) << uint(shift))
	}
	latency := s.clock.Now() - start

	s.deg.observe(err == nil, linkRefused(err))
	s.finish(c, func(o *stats.ServeOps) {
		o.Retries += uint64(retries)
		switch {
		case err == nil:
			o.Served++
		case errors.Is(err, ErrDeadline):
			o.Deadline++
		case errors.Is(err, ErrAmbiguous):
			o.Ambiguous++
			o.Refused++
		default:
			o.Refused++
		}
		if err == nil {
			s.lat[c].Observe(uint64(latency))
		}
	})
	s.finishTenant(req.Tenant, func(o *stats.TenantOps) {
		if req.Write {
			o.Writes++
		} else {
			o.Reads++
		}
		if err != nil {
			o.Faults++
		}
	})
	if touched && req.OnDone != nil {
		req.OnDone(err)
	}
	return err
}

// exec performs one engine attempt, charging one service cycle.
func (s *Server) exec(req *Request) error {
	s.clock.Advance(1)
	if req.Write {
		return s.eng.Write(req.Addr, req.Data)
	}
	return s.eng.Read(req.Addr, req.Buf)
}

// finish applies one outcome to the per-class counters.
func (s *Server) finish(c Class, f func(*stats.ServeOps)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.ops[c])
	if t := s.deg.currentTier(); t > s.tmax {
		s.tmax = t
	}
}

// finishTenant applies one outcome to a tenant's rollup counters; the
// empty tenant (an untagged request) is not tracked.
func (s *Server) finishTenant(id string, f func(*stats.TenantOps)) {
	if id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.tops[id]
	if o == nil {
		o = &stats.TenantOps{Name: id}
		s.tops[id] = o
	}
	f(o)
}

// WithQuiesced runs fn with every request drained and excluded: fn owns
// the engine single-threadedly for its duration. Checkpoints, crash
// recovery swaps, and oracle snapshots run here — the exclusive lock is
// what makes a snapshot atomic with respect to OnDone oracle updates.
func (s *Server) WithQuiesced(fn func(eng *securemem.Concurrent) error) error {
	s.state.Lock()
	defer s.state.Unlock()
	return fn(s.eng)
}

// SwapEngine atomically replaces the engine (crash recovery: the old
// engine's device state is gone, the new one was rebuilt by Recover).
// It waits for in-flight requests to drain first.
func (s *Server) SwapEngine(eng *securemem.Concurrent) {
	s.state.Lock()
	defer s.state.Unlock()
	s.eng = eng
}

// WithQuiescedSwap runs fn quiesced like WithQuiesced and atomically
// installs the engine fn returns (nil keeps the current one). This is
// the crash-recovery primitive for a server with live clients: the
// rebuilt engine and the clients' oracle rewinds must become visible in
// the same exclusion, or a request draining between them would verify
// recovered bytes against a pre-crash oracle. On error nothing is
// swapped.
func (s *Server) WithQuiescedSwap(fn func(old *securemem.Concurrent) (*securemem.Concurrent, error)) error {
	s.state.Lock()
	defer s.state.Unlock()
	eng, err := fn(s.eng)
	if err != nil {
		return err
	}
	if eng != nil {
		s.eng = eng
	}
	return nil
}

// Engine returns the current engine. The caller must not retain it
// across a SwapEngine; quiesced phases should prefer WithQuiesced.
func (s *Server) Engine() *securemem.Concurrent {
	s.state.RLock()
	defer s.state.RUnlock()
	return s.eng
}

// Report is a consistent copy of the service counters and latency
// histograms.
type Report struct {
	Ops     [NumClasses]stats.ServeOps
	Latency [NumClasses]stats.Histogram
	// Tenants is the per-tenant rollup for tenant-tagged requests,
	// sorted by name: Reads/Writes count requests that reached the
	// execution loop, Quota counts admission refusals (shed, class or
	// tenant bucket, queue full), and Faults sub-classifies executed
	// requests that failed.
	Tenants []stats.TenantOps
	// Tier is the degradation tier at snapshot time; PeakTier the
	// highest tier the run ever reached.
	Tier     int
	PeakTier int
}

// Snapshot returns a consistent Report.
func (s *Server) Snapshot() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Report{Ops: s.ops, Latency: s.lat, Tier: s.deg.currentTier(), PeakTier: s.tmax}
	r.Tenants = make([]stats.TenantOps, 0, len(s.tops))
	for _, o := range s.tops {
		r.Tenants = append(r.Tenants, *o)
	}
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Name < r.Tenants[j].Name })
	return r
}

// Availability returns class c's served fraction (1 when the class never
// submitted anything).
func (r *Report) Availability(c Class) float64 {
	o := r.Ops[c]
	att := o.Attempts()
	if att == 0 {
		return 1
	}
	return float64(o.Served) / float64(att)
}

// FillOps copies the per-class counters into a stats.Ops block.
func (r *Report) FillOps(o *stats.Ops) {
	o.Serve = r.Ops
	o.Tenants = append([]stats.TenantOps(nil), r.Tenants...)
}

// TenantTable renders the per-tenant rollup (empty table when no
// request was tenant-tagged).
func (r *Report) TenantTable() *stats.Table {
	o := stats.Ops{Tenants: r.Tenants}
	return o.TenantTable()
}

// OutcomeTable renders the per-class outcome counters with availability.
func (r *Report) OutcomeTable() *stats.Table {
	t := &stats.Table{Header: []string{"class", "served", "shed", "deadline", "overload", "refused", "retries", "ambiguous", "avail"}}
	for c := Class(0); c < NumClasses; c++ {
		o := r.Ops[c]
		t.AddRow(c.String(),
			fmt.Sprintf("%d", o.Served), fmt.Sprintf("%d", o.Shed),
			fmt.Sprintf("%d", o.Deadline), fmt.Sprintf("%d", o.Overload),
			fmt.Sprintf("%d", o.Refused), fmt.Sprintf("%d", o.Retries),
			fmt.Sprintf("%d", o.Ambiguous), fmt.Sprintf("%.4f", r.Availability(c)))
	}
	return t
}

// LatencyTable renders the per-class served-latency quantiles in service
// cycles: the p50/p99/p999 row set the availability SLOs are stated
// over.
func (r *Report) LatencyTable() *stats.Table {
	t := &stats.Table{Header: stats.QuantileHeader("class")}
	for c := Class(0); c < NumClasses; c++ {
		h := r.Latency[c]
		t.AddRow(append([]string{c.String()}, h.QuantileRow()...)...)
	}
	return t
}

// Merge folds o's counters and histograms into r (campaign aggregation).
func (r *Report) Merge(o *Report) {
	for c := Class(0); c < NumClasses; c++ {
		a, b := &r.Ops[c], &o.Ops[c]
		a.Served += b.Served
		a.Shed += b.Shed
		a.Deadline += b.Deadline
		a.Overload += b.Overload
		a.Refused += b.Refused
		a.Retries += b.Retries
		a.Ambiguous += b.Ambiguous
		r.Latency[c].Merge(&o.Latency[c])
	}
	if o.PeakTier > r.PeakTier {
		r.PeakTier = o.PeakTier
	}
	if len(o.Tenants) > 0 {
		byName := make(map[string]int, len(r.Tenants))
		for i := range r.Tenants {
			byName[r.Tenants[i].Name] = i
		}
		for _, t := range o.Tenants {
			i, ok := byName[t.Name]
			if !ok {
				r.Tenants = append(r.Tenants, t)
				continue
			}
			a := &r.Tenants[i]
			a.Reads += t.Reads
			a.Writes += t.Writes
			a.Denied += t.Denied
			a.Quota += t.Quota
			a.Integrity += t.Integrity
			a.Faults += t.Faults
			a.Checkpoints += t.Checkpoints
			a.Recovers += t.Recovers
		}
		sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Name < r.Tenants[j].Name })
	}
}
