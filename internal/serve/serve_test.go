package serve

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/stats"
)

func testGeo() config.Geometry {
	return config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
}

func testEngine(t *testing.T, pages, devPages, shards int) *securemem.Concurrent {
	t.Helper()
	eng, err := securemem.NewConcurrent(securemem.Config{
		Geometry: testGeo(), Model: securemem.ModelSalus,
		TotalPages: pages, DevicePages: devPages, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testServer(t *testing.T, eng *securemem.Concurrent, cfg Config) *Server {
	t.Helper()
	cfg.Engine = eng
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHealthyTraffic runs several concurrent clients over a healthy
// engine: everything is served, the oracles stay clean, and the
// counters conserve (every submitted request has exactly one outcome).
func TestHealthyTraffic(t *testing.T) {
	eng := testEngine(t, 16, 4, 4)
	srv := testServer(t, eng, Config{})

	const nClients, ops = 6, 60
	clients := make([]*Client, nClients)
	region := 16 * 4096 / nClients
	for i := range clients {
		c, err := NewClient(ClientConfig{
			ID: i, Class: Class(i % int(NumClasses)),
			Base: securemem.HomeAddr(i * region), Len: region,
			Ops: ops, Seed: int64(1000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) { defer wg.Done(); c.Run(srv) }(c)
	}
	wg.Wait()

	rep := srv.Snapshot()
	var att uint64
	for c := Class(0); c < NumClasses; c++ {
		att += rep.Ops[c].Attempts()
	}
	if att != nClients*ops {
		t.Fatalf("outcome conservation: %d outcomes for %d requests", att, nClients*ops)
	}
	for _, c := range clients {
		if v := c.Violations(); len(v) > 0 {
			t.Fatalf("healthy run violations: %v", v)
		}
		if c.TaintedBytes() != 0 {
			t.Fatalf("healthy run left %d tainted bytes", c.TaintedBytes())
		}
		if v := c.VerifyFinal(eng.Read); len(v) > 0 {
			t.Fatalf("final sweep: %v", v)
		}
	}
	// Healthy bulk/batch may see token-bucket overloads but never shed.
	for c := Class(0); c < NumClasses; c++ {
		if rep.Ops[c].Shed != 0 {
			t.Fatalf("healthy run shed class %v", c)
		}
	}
	if rep.Ops[Interactive].Served == 0 {
		t.Fatal("interactive served nothing")
	}
	if rep.Latency[Interactive].Count() != rep.Ops[Interactive].Served {
		t.Fatal("latency histogram counts != served count")
	}
}

// TestTokenBucketOverloadTyped pins the admission fast-fail: an empty
// bucket refuses with ErrOverload before touching the engine.
func TestTokenBucketOverloadTyped(t *testing.T) {
	eng := testEngine(t, 4, 2, 1)
	cfg := Config{}
	cfg.Classes[Bulk] = ClassConfig{Rate: 1e-9, Burst: 1, Queue: 4, Retries: 1}
	srv := testServer(t, eng, cfg)

	buf := make([]byte, 8)
	if err := srv.Do(&Request{Class: Bulk, Addr: 0, Buf: buf}); err != nil {
		t.Fatalf("first bulk request: %v", err)
	}
	err := srv.Do(&Request{Class: Bulk, Addr: 0, Buf: buf, OnDone: func(error) {
		t.Error("OnDone ran for an admission-refused request")
	}})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("second bulk request: %v, want ErrOverload", err)
	}
	rep := srv.Snapshot()
	if rep.Ops[Bulk].Overload != 1 || rep.Ops[Bulk].Served != 1 {
		t.Fatalf("bulk counters: %+v", rep.Ops[Bulk])
	}
}

// TestQueueBoundTyped pins the bounded-queue fast-fail: with the class's
// one slot held by an in-flight request, the next request fails
// ErrOverload instead of buffering.
func TestQueueBoundTyped(t *testing.T) {
	eng := testEngine(t, 4, 2, 1)
	cfg := Config{}
	cfg.Classes[Batch] = ClassConfig{Queue: 1, Retries: 1}
	srv := testServer(t, eng, cfg)

	hold := make(chan struct{})
	held := make(chan struct{})
	go func() {
		buf := make([]byte, 8)
		srv.Do(&Request{Class: Batch, Addr: 0, Buf: buf, OnDone: func(error) {
			close(held)
			<-hold // keep the slot occupied
		}})
	}()
	<-held
	err := srv.Do(&Request{Class: Batch, Addr: 0, Buf: make([]byte, 8)})
	close(hold)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("request against a full queue: %v, want ErrOverload", err)
	}
}

// TestDeadlineTyped pins deadline enforcement: a read retrying against a
// down link runs out of service-clock budget and fails ErrDeadline, not
// a transport error.
func TestDeadlineTyped(t *testing.T) {
	eng := testEngine(t, 8, 2, 1)
	manual := link.NewManual()
	eng.AttachLink(link.New(manual, link.Config{Threshold: 1000, Cooldown: 1}), nil, 4)
	cfg := Config{}
	cfg.Classes[Interactive] = ClassConfig{Queue: 4, Retries: 100, Deadline: 3}
	srv := testServer(t, eng, cfg)

	manual.Set(link.StateDown)
	var cbErr error
	err := srv.Do(&Request{
		Class: Interactive, Addr: 6 * 4096, Buf: make([]byte, 8),
		OnDone: func(e error) { cbErr = e },
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("read past deadline: %v, want ErrDeadline", err)
	}
	if !errors.Is(cbErr, ErrDeadline) {
		t.Fatalf("OnDone got %v, want the ErrDeadline outcome", cbErr)
	}
	rep := srv.Snapshot()
	if rep.Ops[Interactive].Deadline != 1 {
		t.Fatalf("deadline counter: %+v", rep.Ops[Interactive])
	}
	if rep.Ops[Interactive].Retries == 0 {
		t.Fatal("deadline loop recorded no retries")
	}
}

// TestDegradationTiers drives the ladder end to end: link pressure sheds
// bulk first, then batch, never interactive; recovery restores service
// in reverse order.
func TestDegradationTiers(t *testing.T) {
	eng := testEngine(t, 8, 2, 1)
	manual := link.NewManual()
	eng.AttachLink(link.New(manual, link.Config{Threshold: 1000, Cooldown: 1}), nil, 4)
	cfg := Config{ShedAfter: 4, RestoreAfter: 2}
	cfg.Classes[Interactive] = ClassConfig{Queue: 4}
	cfg.Classes[Batch] = ClassConfig{Queue: 4}
	cfg.Classes[Bulk] = ClassConfig{Queue: 4}
	srv := testServer(t, eng, cfg)

	miss := func(class Class) error {
		return srv.Do(&Request{Class: class, Addr: 6 * 4096, Buf: make([]byte, 8)})
	}
	manual.Set(link.StateDown)
	for i := 0; i < 4; i++ {
		if err := miss(Interactive); !errors.Is(err, ErrRetryBudget) {
			t.Fatalf("interactive miss %d under outage: %v, want ErrRetryBudget", i, err)
		}
	}
	if srv.Tier() != 1 {
		t.Fatalf("tier after %d link refusals = %d, want 1", 4, srv.Tier())
	}
	if err := miss(Bulk); !errors.Is(err, ErrShed) {
		t.Fatalf("bulk at tier 1: %v, want ErrShed", err)
	}
	if err := miss(Batch); errors.Is(err, ErrShed) {
		t.Fatal("batch shed at tier 1")
	}
	for i := 0; i < 4; i++ {
		miss(Interactive)
	}
	if srv.Tier() != 2 {
		t.Fatalf("tier after sustained refusals = %d, want 2", srv.Tier())
	}
	if err := miss(Batch); !errors.Is(err, ErrShed) {
		t.Fatalf("batch at tier 2: %v, want ErrShed", err)
	}
	// Interactive is never shed — and device hits keep serving even now.
	if err := srv.Do(&Request{Class: Interactive, Addr: 0, Data: []byte("hit"), Write: true}); err != nil {
		// Address 0 may not be resident yet; a typed refusal is fine,
		// shedding is not.
		if errors.Is(err, ErrShed) {
			t.Fatal("interactive shed")
		}
	}

	manual.Set(link.StateUp)
	for i := 0; i < 16 && srv.Tier() > 0; i++ {
		if err := miss(Interactive); err != nil {
			t.Fatalf("read after recovery: %v", err)
		}
	}
	if srv.Tier() != 0 {
		t.Fatalf("tier after recovery = %d, want 0", srv.Tier())
	}
	if err := miss(Bulk); err != nil {
		t.Fatalf("bulk after recovery: %v", err)
	}
	rep := srv.Snapshot()
	if rep.PeakTier != 2 {
		t.Fatalf("PeakTier = %d, want 2", rep.PeakTier)
	}
	if rep.Ops[Interactive].Shed != 0 {
		t.Fatal("interactive recorded sheds")
	}
}

// TestCheckpointCrashSwap pins the crash-recovery composition the chaos
// campaign relies on: quiesced checkpoint + oracle snapshot, traffic,
// crash to the checkpoint via Recover + ConcurrentFrom + SwapEngine +
// oracle restore, then more traffic and a clean final sweep.
func TestCheckpointCrashSwap(t *testing.T) {
	eng := testEngine(t, 8, 4, 2)
	srv := testServer(t, eng, Config{})
	store := crash.NewMemStore()
	j := crash.NewJournal(store)

	c, err := NewClient(ClientConfig{ID: 0, Class: Interactive, Base: 0, Len: 2 * 4096, Ops: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(srv)

	var root securemem.TrustedRoot
	var snap ClientState
	if err := srv.WithQuiesced(func(e *securemem.Concurrent) error {
		var err error
		root, err = e.Checkpoint(j)
		if err != nil {
			return err
		}
		snap = c.Snapshot()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	c.Run(srv) // post-checkpoint traffic that the crash will erase

	sys, err := securemem.Recover(securemem.Config{
		Geometry: testGeo(), Model: securemem.ModelSalus, TotalPages: 8, DevicePages: 4,
	}, store.Bytes(), root)
	if err != nil {
		t.Fatal(err)
	}
	srv.SwapEngine(securemem.ConcurrentFrom(sys, 2))
	c.Restore(snap)

	c.Run(srv) // post-crash traffic against the recovered engine

	if v := c.Violations(); len(v) > 0 {
		t.Fatalf("violations across crash: %v", v)
	}
	if v := c.VerifyFinal(srv.Engine().Read); len(v) > 0 {
		t.Fatalf("final sweep across crash: %v", v)
	}
}

// TestInvalidRequests covers the guard rails.
func TestInvalidRequests(t *testing.T) {
	eng := testEngine(t, 4, 2, 1)
	srv := testServer(t, eng, Config{})
	if err := srv.Do(&Request{Class: Class(9)}); err == nil {
		t.Fatal("invalid class accepted")
	}
	srv.Close()
	if err := srv.Do(&Request{Class: Interactive, Buf: make([]byte, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("request after Close: %v, want ErrClosed", err)
	}
	if _, err := NewClient(ClientConfig{Len: 0}); err == nil {
		t.Fatal("zero-length client region accepted")
	}
	if _, err := NewClient(ClientConfig{Len: 8, Class: Class(9)}); err == nil {
		t.Fatal("invalid client class accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without engine accepted")
	}
}

// faultFirstN faults the first n injector consultations with transient
// faults, then passes everything.
type faultFirstN struct{ n *int }

func (f faultFirstN) Inject(fault.Access) *fault.Fault {
	if *f.n > 0 {
		*f.n--
		return &fault.Fault{Kind: fault.Transient}
	}
	return nil
}

var _ fault.Injector = faultFirstN{}

// zeroEngineRetries is the engine-level policy service mode uses: the
// serve layer owns the retry budget, so the engine gets exactly one
// attempt per request attempt.
func zeroEngineRetries() securemem.RetryPolicy {
	return securemem.RetryPolicy{MaxRetries: 0, BaseBackoff: 1, MaxBackoff: 1}
}

// TestTenantAdmissionAndRollup pins the per-tenant stage: a tenant with
// a tight bucket is refused with ErrOverload once its burst is spent
// while a sibling tenant on the same class keeps serving, every
// tenant-tagged outcome lands in exactly one rollup counter, and
// untagged requests stay out of the table entirely.
func TestTenantAdmissionAndRollup(t *testing.T) {
	eng := testEngine(t, 8, 2, 2)
	cfg := Config{Tenants: map[string]TenantConfig{
		"metered": {Rate: 1e-9, Burst: 2},
	}}
	srv := testServer(t, eng, cfg)

	buf := make([]byte, 8)
	do := func(tenant string, write bool) error {
		req := &Request{Class: Interactive, Addr: 0, Tenant: tenant}
		if write {
			req.Write, req.Data = true, []byte{1, 2, 3, 4}
		} else {
			req.Buf = buf
		}
		return srv.Do(req)
	}

	const metered, free = 8, 6
	var quotaHits int
	for i := 0; i < metered; i++ {
		err := do("metered", i%2 == 0)
		if errors.Is(err, ErrOverload) {
			quotaHits++
		} else if err != nil {
			t.Fatalf("metered request %d: %v", i, err)
		}
	}
	if quotaHits != metered-2 {
		t.Fatalf("metered tenant: %d quota refusals, want %d (burst 2)", quotaHits, metered-2)
	}
	for i := 0; i < free; i++ {
		if err := do("free", false); err != nil {
			t.Fatalf("free tenant request %d: %v", i, err)
		}
	}
	// An untagged request must not create a tenant row.
	if err := do("", false); err != nil {
		t.Fatalf("untagged request: %v", err)
	}

	rep := srv.Snapshot()
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant rows: %d, want 2 (%+v)", len(rep.Tenants), rep.Tenants)
	}
	if rep.Tenants[0].Name != "free" || rep.Tenants[1].Name != "metered" {
		t.Fatalf("tenant rows not sorted by name: %+v", rep.Tenants)
	}
	m := rep.Tenants[1]
	if m.Quota != uint64(quotaHits) || m.Attempts() != metered {
		t.Fatalf("metered rollup: %+v, want %d quota over %d attempts", m, quotaHits, metered)
	}
	if m.Reads+m.Writes != 2 || m.Faults != 0 {
		t.Fatalf("metered rollup executed %d reads + %d writes (faults %d), want 2 total", m.Reads, m.Writes, m.Faults)
	}
	f := rep.Tenants[0]
	if f.Reads != free || f.Quota != 0 || f.Attempts() != free {
		t.Fatalf("free rollup: %+v, want %d clean reads", f, free)
	}
	table := rep.TenantTable().String()
	for _, want := range []string{"tenant", "quota", "metered", "free"} {
		if !strings.Contains(table, want) {
			t.Fatalf("tenant table missing %q:\n%s", want, table)
		}
	}

	// Merge folds rollups by name and keeps the order stable.
	other := Report{Tenants: []stats.TenantOps{{Name: "metered", Reads: 3}, {Name: "zeta", Writes: 1}}}
	rep.Merge(&other)
	if len(rep.Tenants) != 3 || rep.Tenants[2].Name != "zeta" {
		t.Fatalf("merge rows: %+v", rep.Tenants)
	}
	if got := rep.Tenants[1]; got.Name != "metered" || got.Reads != m.Reads+3 {
		t.Fatalf("merge did not fold metered reads: %+v", got)
	}
}
