package serve

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
)

// Client is one synthetic traffic stream: a seeded generator issuing
// reads and writes over its own disjoint byte region, carrying a
// region-sized oracle of the plaintext it believes the engine holds.
//
// Consistency tracking is ambiguity-aware. A write that fails after
// reaching the engine (ErrAmbiguous) may or may not have applied, so
// each touched byte becomes tainted with a candidate-value set — the
// previous value plus every unresolved ambiguous write's byte — and a
// later verified read resolves the byte to whichever candidate it
// observed. A read byte matching no candidate, or a clean byte differing
// from the oracle, is a silent divergence and is recorded as a
// violation.
//
// All oracle and taint mutation happens inside Request.OnDone callbacks,
// which the server runs under its engine lock; Snapshot and Restore are
// meant to be called from a quiesced phase (Server.WithQuiesced or after
// Run returns), which is what makes checkpoint/crash state capture
// atomic. Everything else is confined to the Run goroutine.
type Client struct {
	cfg ClientConfig
	rng *rand.Rand

	oracle []byte
	// cand maps a tainted byte offset to its candidate values; the
	// oracle byte (value if no unresolved write applied) is always one
	// of them. Untainted offsets are absent.
	cand map[int][]byte

	violations []string
	outcomes   OutcomeCounts
}

// OutcomeCounts tallies the typed outcomes one client observed.
type OutcomeCounts struct {
	Served, Shed, Deadline, Overload, Refused, Ambiguous, Untyped int
}

// ClientConfig configures one traffic stream.
type ClientConfig struct {
	ID    int
	Class Class
	// Tenant tags every request the client issues (per-tenant admission
	// and Report.Tenants rollup); empty opts out.
	Tenant string
	// Base/Len is the client's byte region; regions of concurrent
	// clients must be disjoint (the consistency oracle owns its bytes).
	Base securemem.HomeAddr
	Len  int
	// Ops is how many requests Run issues.
	Ops int
	// Seed drives the request generator.
	Seed int64
	// WriteFrac is the write fraction in [0, 1]; zero defaults to 0.4.
	WriteFrac float64
	// MaxSpan bounds a request's byte span; zero defaults to 96, always
	// clamped to Len.
	MaxSpan int
	// Deadline and Retries override the class defaults when non-zero
	// (relative deadline in cycles; Retries=-1 forces zero retries).
	Deadline sim.Cycle
	Retries  int
	// Pace, when set, receives exactly one tick per completed request —
	// the chaos driver's work-based pacing signal. The send blocks, so
	// the receiver must keep draining until every client returned; the
	// guaranteed delivery is what makes a driver's tick-indexed chaos
	// schedule a deterministic function of its seed.
	Pace chan<- struct{}
}

// ClientState is a Client's checkpointable consistency state.
type ClientState struct {
	oracle []byte
	cand   map[int][]byte
}

// NewClient builds a client over a zeroed region (a fresh engine reads
// zeros, so the oracle starts all-zero).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Len <= 0 {
		return nil, fmt.Errorf("serve: client %d: region length %d", cfg.ID, cfg.Len)
	}
	if cfg.Class < 0 || cfg.Class >= NumClasses {
		return nil, fmt.Errorf("serve: client %d: invalid class %d", cfg.ID, int(cfg.Class))
	}
	if cfg.WriteFrac == 0 {
		cfg.WriteFrac = 0.4
	}
	if cfg.MaxSpan <= 0 {
		cfg.MaxSpan = 96
	}
	if cfg.MaxSpan > cfg.Len {
		cfg.MaxSpan = cfg.Len
	}
	return &Client{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		oracle: make([]byte, cfg.Len),
		cand:   make(map[int][]byte),
	}, nil
}

// Run issues cfg.Ops requests against s, blocking until done. It must
// run on its own goroutine when other clients share the server.
func (c *Client) Run(s *Server) {
	for i := 0; i < c.cfg.Ops; i++ {
		span := 1 + c.rng.Intn(c.cfg.MaxSpan)
		off := c.rng.Intn(c.cfg.Len - span + 1)
		req := &Request{
			Class:   c.cfg.Class,
			Addr:    c.cfg.Base + securemem.HomeAddr(off),
			Tenant:  c.cfg.Tenant,
			Retries: c.cfg.Retries,
		}
		if c.cfg.Deadline > 0 {
			req.Deadline = s.Clock().Now() + c.cfg.Deadline
		}
		if c.rng.Float64() < c.cfg.WriteFrac {
			data := make([]byte, span)
			c.rng.Read(data)
			req.Write, req.Data = true, data
			req.OnDone = func(err error) { c.onWrite(off, data, err) }
		} else {
			buf := make([]byte, span)
			req.Buf = buf
			req.OnDone = func(err error) { c.onRead(off, buf, err) }
		}
		c.note(s.Do(req))
		if c.cfg.Pace != nil {
			c.cfg.Pace <- struct{}{}
		}
	}
}

// note classifies a terminal outcome; an error outside the typed
// taxonomy is itself a violation ("never dropped, never untyped").
func (c *Client) note(err error) {
	switch {
	case err == nil:
		c.outcomes.Served++
	case errors.Is(err, ErrShed):
		c.outcomes.Shed++
	case errors.Is(err, ErrOverload):
		c.outcomes.Overload++
	case errors.Is(err, ErrDeadline):
		c.outcomes.Deadline++
	case errors.Is(err, ErrAmbiguous):
		c.outcomes.Ambiguous++
	case errors.Is(err, ErrRetryBudget),
		errors.Is(err, ErrClosed),
		errors.Is(err, securemem.ErrTransient),
		errors.Is(err, securemem.ErrPoison),
		errors.Is(err, securemem.ErrLinkDown),
		errors.Is(err, securemem.ErrDegraded),
		errors.Is(err, securemem.ErrQueueFull),
		errors.Is(err, securemem.ErrIntegrity),
		errors.Is(err, securemem.ErrFreshness):
		c.outcomes.Refused++
	default:
		c.outcomes.Untyped++
		c.fail("untyped error: %v", err)
	}
}

// onWrite folds a write outcome into the oracle. The server's contract
// is that a write's OnDone error is nil or wraps ErrAmbiguous.
func (c *Client) onWrite(off int, data []byte, err error) {
	switch {
	case err == nil:
		copy(c.oracle[off:], data)
		for i := range data {
			delete(c.cand, off+i)
		}
	case errors.Is(err, ErrAmbiguous):
		for i, b := range data {
			c.taint(off+i, b)
		}
	default:
		c.fail("write outcome neither success nor ambiguous: %v", err)
	}
}

// onRead verifies a read outcome byte-for-byte against the oracle,
// resolving tainted bytes to whichever candidate the engine returned.
func (c *Client) onRead(off int, buf []byte, err error) {
	if err != nil {
		return // typed refusal: no bytes to verify
	}
	for i, b := range buf {
		j := off + i
		cands, tainted := c.cand[j]
		switch {
		case !tainted:
			if b != c.oracle[j] {
				c.fail("silent divergence at +%d: read %#02x, oracle %#02x", j, b, c.oracle[j])
			}
		case matches(b, cands):
			// The verified read resolves the ambiguity: whatever subset
			// of the unresolved writes applied, this is the byte now.
			c.oracle[j] = b
			delete(c.cand, j)
		default:
			c.fail("divergence at tainted +%d: read %#02x, candidates %v", j, b, cands)
		}
	}
}

// taint marks offset j ambiguous with candidate value v: the byte may
// now hold v (the failed write applied) or any previously possible
// value.
func (c *Client) taint(j int, v byte) {
	cands, ok := c.cand[j]
	if !ok {
		cands = []byte{c.oracle[j]}
	}
	if !matches(v, cands) {
		cands = append(cands, v)
	}
	c.cand[j] = cands
}

// matches reports whether b is one of the candidate values.
func matches(b byte, cands []byte) bool {
	for _, v := range cands {
		if v == b {
			return true
		}
	}
	return false
}

func (c *Client) fail(format string, args ...any) {
	c.violations = append(c.violations,
		fmt.Sprintf("client %d (%v): %s", c.cfg.ID, c.cfg.Class, fmt.Sprintf(format, args...)))
}

// Violations returns the recorded consistency violations. Call only
// after Run returns (or from a quiesced phase).
func (c *Client) Violations() []string { return c.violations }

// Outcomes returns the client-side outcome tally; Untyped must be zero
// on a healthy run.
func (c *Client) Outcomes() OutcomeCounts { return c.outcomes }

// TaintedBytes counts bytes still carrying write ambiguity.
func (c *Client) TaintedBytes() int { return len(c.cand) }

// Snapshot captures the consistency state for a checkpoint. Must be
// called from a quiesced phase.
func (c *Client) Snapshot() ClientState {
	st := ClientState{
		oracle: make([]byte, len(c.oracle)),
		cand:   make(map[int][]byte, len(c.cand)),
	}
	copy(st.oracle, c.oracle)
	for j, cands := range c.cand {
		st.cand[j] = append([]byte(nil), cands...)
	}
	return st
}

// Restore rewinds the consistency state to a snapshot (crash recovery
// rolled the engine back to the matching checkpoint). Must be called
// from a quiesced phase.
func (c *Client) Restore(st ClientState) {
	copy(c.oracle, st.oracle)
	c.cand = make(map[int][]byte, len(st.cand))
	for j, cands := range st.cand {
		c.cand[j] = append([]byte(nil), cands...)
	}
}

// VerifyFinal reads the whole region through read and compares it
// against the oracle modulo surviving taint, returning any divergences.
// Call after quiesce with chaos disarmed: the read itself must succeed.
func (c *Client) VerifyFinal(read func(addr securemem.HomeAddr, buf []byte) error) []string {
	buf := make([]byte, c.cfg.Len)
	if err := read(c.cfg.Base, buf); err != nil {
		return []string{fmt.Sprintf("client %d (%v): final read failed: %v", c.cfg.ID, c.cfg.Class, err)}
	}
	var out []string
	for j, b := range buf {
		cands, tainted := c.cand[j]
		switch {
		case !tainted:
			if b != c.oracle[j] {
				out = append(out, fmt.Sprintf("client %d (%v): final divergence at +%d: engine %#02x, oracle %#02x",
					c.cfg.ID, c.cfg.Class, j, b, c.oracle[j]))
			}
		case !matches(b, cands):
			out = append(out, fmt.Sprintf("client %d (%v): final divergence at tainted +%d: engine %#02x, candidates %v",
				c.cfg.ID, c.cfg.Class, j, b, cands))
		}
	}
	return out
}
