package serve

import (
	"errors"
	"fmt"
	"testing"

	"github.com/salus-sim/salus/internal/securemem"
)

// The retry-budget satellite contract, pinned end to end:
//
//   - N transient faults against an idempotent read: at most the budget
//     in retries, then a typed give-up (ErrRetryBudget wrapping the
//     engine cause).
//   - An ambiguous write failure: zero retries, typed ErrAmbiguous, and
//     the write applied at most once.
//
// The engine is armed with a zero-retry policy (zeroEngineRetries), so
// the service layer's budget is the only retry loop in play.

// TestReadRetryBudgetExhaustion: persistent transient faults exhaust the
// read budget: exactly budget retries, then a typed give-up carrying
// both the service verdict and the engine cause.
func TestReadRetryBudgetExhaustion(t *testing.T) {
	eng := testEngine(t, 4, 2, 1)
	n := 1 << 30 // effectively persistent
	eng.AttachFaults(faultFirstN{&n}, zeroEngineRetries(), nil)

	const budget = 3
	cfg := Config{}
	cfg.Classes[Interactive] = ClassConfig{Queue: 4, Retries: budget}
	srv := testServer(t, eng, cfg)

	err := srv.Do(&Request{Class: Interactive, Addr: 0, Buf: make([]byte, 8)})
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("persistent-fault read: %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, securemem.ErrTransient) {
		t.Fatalf("give-up error lost the engine cause: %v", err)
	}
	rep := srv.Snapshot()
	o := rep.Ops[Interactive]
	if o.Retries != budget {
		t.Fatalf("retries = %d, want exactly the budget %d", o.Retries, budget)
	}
	if o.Refused != 1 || o.Served != 0 {
		t.Fatalf("counters after give-up: %+v", o)
	}
}

// TestReadRetriesWithinBudget: a transient burst shorter than the budget
// is survived — the read succeeds after exactly that many retries.
func TestReadRetriesWithinBudget(t *testing.T) {
	eng := testEngine(t, 4, 2, 1)
	n := 2
	eng.AttachFaults(faultFirstN{&n}, zeroEngineRetries(), nil)

	cfg := Config{}
	cfg.Classes[Interactive] = ClassConfig{Queue: 4, Retries: 4}
	srv := testServer(t, eng, cfg)

	if err := srv.Do(&Request{Class: Interactive, Addr: 0, Buf: make([]byte, 8)}); err != nil {
		t.Fatalf("read with burst 2 under budget 4: %v", err)
	}
	rep := srv.Snapshot()
	o := rep.Ops[Interactive]
	if o.Served != 1 || o.Retries != 2 {
		t.Fatalf("counters: %+v, want served=1 retries=2", o)
	}
}

// TestAmbiguousWriteNotRetried: a write failing after it reached the
// engine is never retried — zero service retries, typed ErrAmbiguous —
// and the data lands at most once: a post-fault readback shows every
// byte as either the old or the new value.
func TestAmbiguousWriteNotRetried(t *testing.T) {
	eng := testEngine(t, 4, 2, 1)
	n := 1
	eng.AttachFaults(faultFirstN{&n}, zeroEngineRetries(), nil)

	cfg := Config{}
	cfg.Classes[Interactive] = ClassConfig{Queue: 4, Retries: 8} // budget must not apply to writes
	srv := testServer(t, eng, cfg)

	newVal := byte(0xAB)
	data := []byte{newVal, newVal, newVal, newVal}
	var cbErr error
	err := srv.Do(&Request{
		Class: Interactive, Addr: 64, Write: true, Data: data,
		OnDone: func(e error) { cbErr = e },
	})
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("faulted write: %v, want ErrAmbiguous", err)
	}
	if !errors.Is(err, securemem.ErrTransient) {
		t.Fatalf("ambiguous error lost the engine cause: %v", err)
	}
	if !errors.Is(cbErr, ErrAmbiguous) {
		t.Fatalf("OnDone got %v, want the ambiguous outcome", cbErr)
	}
	rep := srv.Snapshot()
	o := rep.Ops[Interactive]
	if o.Retries != 0 {
		t.Fatalf("ambiguous write was retried %d times", o.Retries)
	}
	if o.Ambiguous != 1 || o.Refused != 1 {
		t.Fatalf("counters: %+v, want ambiguous=1 refused=1", o)
	}

	// Oracle check: with faults spent, read the bytes back. Each must be
	// the old value (0, fresh region) or the new one — the write applied
	// at most once, never a torn or doubled variant.
	buf := make([]byte, len(data))
	if err := srv.Do(&Request{Class: Interactive, Addr: 64, Buf: buf}); err != nil {
		t.Fatalf("readback: %v", err)
	}
	for i, b := range buf {
		if b != 0 && b != newVal {
			t.Fatalf("byte %d after ambiguous write: %#02x, want 0x00 or %#02x", i, b, newVal)
		}
	}
}

// TestClientAmbiguityTracking drives the Client's candidate-set oracle
// directly: ambiguous writes taint bytes, verified reads resolve them,
// and impossible observations surface as violations.
func TestClientAmbiguityTracking(t *testing.T) {
	c, err := NewClient(ClientConfig{ID: 1, Class: Interactive, Base: 0, Len: 8, Ops: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	amb := fmt.Errorf("%w: injected", ErrAmbiguous)

	c.onWrite(0, []byte{5, 5}, amb)
	c.onWrite(1, []byte{7}, amb) // second unresolved write overlapping byte 1
	if got := c.TaintedBytes(); got != 2 {
		t.Fatalf("tainted bytes = %d, want 2", got)
	}
	// Byte 1 may now be 0 (neither applied), 5 (first applied), or 7.
	c.onRead(1, []byte{5}, nil)
	if c.TaintedBytes() != 1 {
		t.Fatalf("read did not resolve byte 1: %d tainted", c.TaintedBytes())
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("legitimate candidate flagged: %v", c.Violations())
	}
	// Byte 0 can be 0 or 5 — observing 9 is a divergence.
	c.onRead(0, []byte{9}, nil)
	if len(c.Violations()) != 1 {
		t.Fatalf("impossible byte not flagged: %v", c.Violations())
	}
	// A successful write clears ambiguity outright.
	c.onWrite(0, []byte{3}, nil)
	if c.TaintedBytes() != 0 {
		t.Fatalf("successful write left %d tainted bytes", c.TaintedBytes())
	}
	// Clean-byte divergence is flagged too.
	c.onRead(0, []byte{4}, nil)
	if len(c.Violations()) != 2 {
		t.Fatalf("clean divergence not flagged: %v", c.Violations())
	}
	// Failed reads carry no bytes and must not disturb the oracle.
	before := c.TaintedBytes()
	c.onRead(0, []byte{0xFF}, ErrDeadline)
	if c.TaintedBytes() != before || len(c.Violations()) != 2 {
		t.Fatal("failed read disturbed the oracle")
	}
}
