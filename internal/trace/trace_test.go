package trace

import (
	"testing"
	"testing/quick"
)

var testGeo = Geometry{SectorSize: 32, ChunkSize: 256, PageSize: 4096}

func testParams() Params {
	return Params{
		Name: "t", FootprintBytes: 64 * 4096, PageCoverage: 0.5, Rereference: 1,
		WriteFraction: 0.3, ComputePerMem: 2, Pattern: Sequential, Passes: 1, Seed: 42,
	}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.FootprintBytes = 0 },
		func(p *Params) { p.PageCoverage = 0 },
		func(p *Params) { p.PageCoverage = 1.5 },
		func(p *Params) { p.Rereference = 0 },
		func(p *Params) { p.WriteFraction = -0.1 },
		func(p *Params) { p.WriteFraction = 1.1 },
		func(p *Params) { p.ComputePerMem = -1 },
		func(p *Params) { p.Passes = 0 },
		func(p *Params) { p.Pattern = Strided; p.PageStride = 0 },
	}
	for i, mut := range mutations {
		p := testParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := testParams()
	p.Pattern = Random
	collect := func() []Access {
		s, err := p.NewStream(testGeo, 3, 8, 500)
		if err != nil {
			t.Fatal(err)
		}
		var out []Access
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			out = append(out, a)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamAddressesInFootprint(t *testing.T) {
	f := func(seed int64, smRaw uint8) bool {
		p := testParams()
		p.Seed = seed
		p.Pattern = Random
		sm := int(smRaw % 8)
		s, err := p.NewStream(testGeo, sm, 8, 1000)
		if err != nil {
			return false
		}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Addr >= p.FootprintBytes {
				return false
			}
			if a.Addr%uint64(testGeo.SectorSize) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamCap(t *testing.T) {
	p := testParams()
	s, err := p.NewStream(testGeo, 0, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 17 {
		t.Errorf("capped stream yielded %d accesses, want 17", n)
	}
}

func TestStreamUncappedLength(t *testing.T) {
	// 4 pages for 1 SM, coverage 0.5 (8 of 16 chunks), reref 1, 8
	// sectors/chunk, 2 passes: 4*8*8*2 = 512 accesses.
	p := testParams()
	p.FootprintBytes = 4 * 4096
	p.Passes = 2
	s, err := p.NewStream(testGeo, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 512 {
		t.Errorf("stream length %d, want 512", n)
	}
}

func TestCoverageControlsChunksTouched(t *testing.T) {
	countChunks := func(cov float64) int {
		p := testParams()
		p.FootprintBytes = 4096 // one page
		p.PageCoverage = cov
		s, err := p.NewStream(testGeo, 0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		chunks := map[uint64]bool{}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			chunks[a.Addr/uint64(testGeo.ChunkSize)] = true
		}
		return len(chunks)
	}
	if got := countChunks(1.0); got != 16 {
		t.Errorf("coverage 1.0 touched %d chunks, want 16", got)
	}
	if got := countChunks(0.25); got != 4 {
		t.Errorf("coverage 0.25 touched %d chunks, want 4", got)
	}
	if got := countChunks(0.01); got != 1 {
		t.Errorf("coverage 0.01 touched %d chunks, want 1 (floor)", got)
	}
}

func TestWriteFractionRoughlyHonoured(t *testing.T) {
	p := testParams()
	p.WriteFraction = 0.5
	p.Passes = 4
	s, err := p.NewStream(testGeo, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	writes, total := 0, 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		total++
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("write fraction %v, want ~0.5 (n=%d)", frac, total)
	}
}

func TestSMPartitioning(t *testing.T) {
	// Two SMs partition pages disjointly under Sequential.
	p := testParams()
	pagesOf := func(sm int) map[uint64]bool {
		s, err := p.NewStream(testGeo, sm, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		pages := map[uint64]bool{}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			pages[a.Addr/uint64(testGeo.PageSize)] = true
		}
		return pages
	}
	p0, p1 := pagesOf(0), pagesOf(1)
	for pg := range p0 {
		if p1[pg] {
			t.Fatalf("page %d visited by both SMs", pg)
		}
	}
	if len(p0)+len(p1) != 64 {
		t.Errorf("total pages = %d, want 64", len(p0)+len(p1))
	}
}

func TestMoreSMsThanPages(t *testing.T) {
	p := testParams()
	p.FootprintBytes = 2 * 4096
	s, err := p.NewStream(testGeo, 7, 16, 10) // SM 7, only 2 pages
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Next(); !ok {
		t.Error("stream empty for SM beyond page count")
	}
}

func TestStreamErrors(t *testing.T) {
	p := testParams()
	if _, err := p.NewStream(testGeo, 5, 4, 0); err == nil {
		t.Error("sm >= totalSMs accepted")
	}
	if _, err := p.NewStream(testGeo, -1, 4, 0); err == nil {
		t.Error("negative sm accepted")
	}
	p.FootprintBytes = 100 // less than a page
	if _, err := p.NewStream(testGeo, 0, 1, 0); err == nil {
		t.Error("sub-page footprint accepted")
	}
}

func TestSuiteValidatesAndIsComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d workloads, want 14", len(suite))
	}
	seen := map[string]bool{}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		seen[p.Name] = true
	}
	// The paper's named winners have low coverage; named losers have full
	// coverage — the property its Fig. 10 explanation rests on.
	for _, winner := range []string{"nw", "btree", "lava"} {
		p, ok := ByName(winner)
		if !ok {
			t.Fatalf("missing workload %s", winner)
		}
		if p.PageCoverage >= 0.5 {
			t.Errorf("%s coverage %v, want < 0.5", winner, p.PageCoverage)
		}
	}
	for _, loser := range []string{"backprop", "sgemm"} {
		p, ok := ByName(loser)
		if !ok {
			t.Fatalf("missing workload %s", loser)
		}
		if p.PageCoverage != 1.0 {
			t.Errorf("%s coverage %v, want 1.0", loser, p.PageCoverage)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName(nosuch) found something")
	}
	names := Names()
	if len(names) != len(Suite()) {
		t.Error("Names length mismatch")
	}
	if names[0] != "backprop" {
		t.Errorf("first name = %s", names[0])
	}
}

func TestPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || Random.String() != "random" || Strided.String() != "strided" {
		t.Error("pattern names wrong")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern empty")
	}
}
