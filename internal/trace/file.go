package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace-file support: streams can be exported to (and replayed from) a
// simple line-oriented text format, so traces captured from real systems —
// or hand-crafted corner cases — can drive the simulator in place of the
// synthetic generators.
//
// Format: one access per line, `R <hex-addr>` or `W <hex-addr>`, with `#`
// comment lines and blank lines ignored.

// WriteTo exports up to max accesses of the stream (0 = all) to w.
// It returns the number of accesses written.
func (s *Stream) WriteTo(w io.Writer, max int) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# salus trace: workload=%s\n", s.p.Name); err != nil {
		return 0, err
	}
	n := 0
	for max == 0 || n < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		op := "R"
		if a.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s %x\n", op, a.Addr); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// FileStream replays a recorded trace. It satisfies the same Next/
// ComputePerMem contract as Stream, so system code can run either through
// a small interface.
type FileStream struct {
	accesses      []Access
	pos           int
	computePerMem int
}

// ReadTrace parses a trace from r. computePerMem sets the compute-to-
// memory instruction ratio replayed streams report.
func ReadTrace(r io.Reader, computePerMem int) (*FileStream, error) {
	fs := &FileStream{computePerMem: computePerMem}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want `R|W <hex-addr>`, got %q", line, text)
		}
		var write bool
		switch fields[0] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q: %v", line, fields[1], err)
		}
		fs.accesses = append(fs.accesses, Access{Addr: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Next returns the next recorded access.
func (f *FileStream) Next() (Access, bool) {
	if f.pos >= len(f.accesses) {
		return Access{}, false
	}
	a := f.accesses[f.pos]
	f.pos++
	return a, true
}

// ComputePerMem returns the configured compute ratio.
func (f *FileStream) ComputePerMem() int { return f.computePerMem }

// Len returns the number of recorded accesses.
func (f *FileStream) Len() int { return len(f.accesses) }

// Reset rewinds the stream to the beginning.
func (f *FileStream) Reset() { f.pos = 0 }
