// Package trace generates synthetic GPU memory-access streams standing in
// for the paper's CUDA benchmarks (Rodinia, Parboil, LonestarGPU, Pannotia).
//
// The security-relevant behaviour of a workload in a CXL-expanded GPU is
// captured by a handful of parameters the paper itself uses to explain its
// results (§V-B1): the footprint (how often pages migrate for a given
// device-memory ratio), how many of a page's interleaving chunks are touched
// while the page is resident (NW/B+tree/Lava touch under half their
// channels; Backprop/Sgemm touch nearly all), the write fraction (dirty
// chunks on eviction), the re-reference count (device-memory hit rate), and
// the page-visit order (sequential sweeps vs. pointer chasing).
//
// Streams are deterministic for a given seed so different security models
// see byte-identical access sequences.
package trace

import (
	"errors"
	"fmt"
	"math/rand"
)

// Access is one warp-level memory access in the CXL (home) address space.
type Access struct {
	Addr  uint64 // sector-aligned byte address
	Write bool
}

// Pattern selects the page-visit order.
type Pattern int

const (
	// Sequential visits pages in address order (dense sweeps: stencil,
	// kmeans, backprop).
	Sequential Pattern = iota
	// Random visits pages in a seeded random order (graph workloads,
	// b+tree lookups).
	Random
	// Strided visits pages with a fixed page stride (tiled kernels).
	Strided
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case Strided:
		return "strided"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// Params describes one workload.
type Params struct {
	Name           string
	FootprintBytes uint64  // total data footprint
	PageCoverage   float64 // fraction of a page's chunks touched per visit (0..1]
	Rereference    int     // accesses per touched sector during a visit (>=1)
	WriteFraction  float64 // fraction of accesses that are writes
	ComputePerMem  int     // compute instructions retired per memory access
	Pattern        Pattern
	PageStride     int   // pages skipped between visits (Strided only)
	Passes         int   // full passes over the footprint
	Seed           int64 // base PRNG seed
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("trace: workload needs a name")
	case p.FootprintBytes == 0:
		return errors.New("trace: zero footprint")
	case p.PageCoverage <= 0 || p.PageCoverage > 1:
		return fmt.Errorf("trace: %s: page coverage %v outside (0,1]", p.Name, p.PageCoverage)
	case p.Rereference < 1:
		return fmt.Errorf("trace: %s: re-reference %d < 1", p.Name, p.Rereference)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("trace: %s: write fraction %v outside [0,1]", p.Name, p.WriteFraction)
	case p.ComputePerMem < 0:
		return fmt.Errorf("trace: %s: negative compute ratio", p.Name)
	case p.Passes < 1:
		return fmt.Errorf("trace: %s: passes %d < 1", p.Name, p.Passes)
	case p.Pattern == Strided && p.PageStride < 1:
		return fmt.Errorf("trace: %s: strided pattern needs a positive stride", p.Name)
	}
	return nil
}

// Geometry is the subset of layout constants the generator needs.
type Geometry struct {
	SectorSize int
	ChunkSize  int
	PageSize   int
}

// Stream produces one SM's access sequence.
type Stream struct {
	p   Params
	geo Geometry
	rng *rand.Rand

	pages     []uint64 // page indices this stream visits, in order
	pageIdx   int
	visit     []uint64 // sector addresses of the current page visit, in order
	visitIdx  int
	capped    bool
	remaining int // total accesses left when capped
}

// NewStream builds the stream for one SM out of totalSMs. maxAccesses caps
// the stream length (0 = no cap beyond the configured passes).
func (p Params) NewStream(geo Geometry, sm, totalSMs, maxAccesses int) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sm < 0 || totalSMs <= 0 || sm >= totalSMs {
		return nil, fmt.Errorf("trace: sm %d out of range of %d", sm, totalSMs)
	}
	nPages := int(p.FootprintBytes / uint64(geo.PageSize))
	if nPages == 0 {
		return nil, errors.New("trace: footprint smaller than one page")
	}
	s := &Stream{
		p:         p,
		geo:       geo,
		rng:       rand.New(rand.NewSource(p.Seed ^ int64(sm)*0x5DEECE66D + int64(sm+1))),
		capped:    maxAccesses > 0,
		remaining: maxAccesses,
	}
	// Partition pages round-robin over SMs, then order per pattern. Each
	// pass repeats the sequence (re-visits after likely eviction).
	var mine []uint64
	for pg := sm; pg < nPages; pg += totalSMs {
		mine = append(mine, uint64(pg))
	}
	if len(mine) == 0 { // more SMs than pages: share page sm%nPages
		mine = []uint64{uint64(sm % nPages)}
	}
	switch p.Pattern {
	case Random:
		s.rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
	case Strided:
		stride := p.PageStride
		reordered := make([]uint64, 0, len(mine))
		for start := 0; start < stride; start++ {
			for i := start; i < len(mine); i += stride {
				reordered = append(reordered, mine[i])
			}
		}
		mine = reordered
	}
	for pass := 0; pass < p.Passes; pass++ {
		s.pages = append(s.pages, mine...)
	}
	return s, nil
}

// buildVisit fills s.visit with the sector-granular accesses of one page
// visit: a coverage-sized subset of the page's chunks, each sector of a
// chosen chunk accessed Rereference times, ordered chunk-by-chunk (spatial
// locality within the visit).
func (s *Stream) buildVisit(page uint64) {
	chunksPerPage := s.geo.PageSize / s.geo.ChunkSize
	sectorsPerChunk := s.geo.ChunkSize / s.geo.SectorSize
	nChunks := int(float64(chunksPerPage)*s.p.PageCoverage + 0.5)
	if nChunks < 1 {
		nChunks = 1
	}
	if nChunks > chunksPerPage {
		nChunks = chunksPerPage
	}
	// Choose which chunks: sequential prefix for sweeps, random subset for
	// irregular workloads. Using the pattern keeps sweeps channel-ordered.
	chunks := make([]int, 0, nChunks)
	if s.p.Pattern == Random {
		perm := s.rng.Perm(chunksPerPage)
		for _, c := range perm[:nChunks] {
			chunks = append(chunks, c)
		}
	} else {
		// Rotate the starting chunk per page so partial coverage does not
		// always hit channel 0 (matches diagonal/wavefront access).
		start := int(page) % chunksPerPage
		for i := 0; i < nChunks; i++ {
			chunks = append(chunks, (start+i)%chunksPerPage)
		}
	}
	base := page * uint64(s.geo.PageSize)
	s.visit = s.visit[:0]
	for _, c := range chunks {
		chunkBase := base + uint64(c*s.geo.ChunkSize)
		for r := 0; r < s.p.Rereference; r++ {
			for sec := 0; sec < sectorsPerChunk; sec++ {
				s.visit = append(s.visit, chunkBase+uint64(sec*s.geo.SectorSize))
			}
		}
	}
	s.visitIdx = 0
}

// Next returns the next access; ok is false when the stream is exhausted.
func (s *Stream) Next() (Access, bool) {
	if s.capped && s.remaining == 0 {
		return Access{}, false
	}
	for s.visitIdx >= len(s.visit) {
		if s.pageIdx >= len(s.pages) {
			return Access{}, false
		}
		s.buildVisit(s.pages[s.pageIdx])
		s.pageIdx++
	}
	addr := s.visit[s.visitIdx]
	s.visitIdx++
	if s.capped {
		s.remaining--
	}
	return Access{Addr: addr, Write: s.rng.Float64() < s.p.WriteFraction}, true
}

// ComputePerMem returns the workload's compute-to-memory instruction ratio.
func (s *Stream) ComputePerMem() int { return s.p.ComputePerMem }
