package trace

// Suite returns the 14-benchmark workload set standing in for the paper's
// Rodinia-3.1 / Parboil / LonestarGPU-2.0 / Pannotia selection.
//
// Parameters are calibrated to the behaviour the paper reports:
//
//   - NW, B+tree, and Lava have the majority of their pages evicted with
//     fewer than half of their channels (chunks) ever accessed — these see
//     the largest Salus gains (Fig. 10), so their PageCoverage is low.
//   - Backprop and Sgemm touch almost all channels of every transferred
//     page, with accesses spread out over time — these see little gain or a
//     small slowdown, so their coverage is 1.0 with multiple passes.
//   - Stencil, B+tree, Lava, and NW are the low-memory-intensity group
//     (higher ComputePerMem); the rest are medium/high intensity.
//
// Footprints are scaled down so a simulation finishes in seconds while
// staying in the paper's regime: the device tier is large enough to hold
// the SMs' concurrently active pages (so no premature-eviction thrash)
// but far smaller than the pages touched over a run, so capacity churn —
// migrations plus evictions — dominates, as with the paper's
// oversubscribed footprints.
func Suite() []Params {
	const MiB = 1 << 20
	return []Params{
		{Name: "backprop", FootprintBytes: 4 * MiB, PageCoverage: 1.0, Rereference: 1,
			WriteFraction: 0.45, ComputePerMem: 4, Pattern: Sequential, Passes: 3, Seed: 1},
		{Name: "bfs", FootprintBytes: 4 * MiB, PageCoverage: 0.20, Rereference: 1,
			WriteFraction: 0.10, ComputePerMem: 3, Pattern: Random, Passes: 3, Seed: 2},
		{Name: "btree", FootprintBytes: 6 * MiB, PageCoverage: 0.12, Rereference: 2,
			WriteFraction: 0.05, ComputePerMem: 10, Pattern: Random, Passes: 2, Seed: 3},
		{Name: "color", FootprintBytes: 4 * MiB, PageCoverage: 0.30, Rereference: 1,
			WriteFraction: 0.15, ComputePerMem: 4, Pattern: Random, Passes: 3, Seed: 4},
		{Name: "hotspot", FootprintBytes: 4 * MiB, PageCoverage: 0.90, Rereference: 2,
			WriteFraction: 0.35, ComputePerMem: 5, Pattern: Sequential, Passes: 2, Seed: 5},
		{Name: "kmeans", FootprintBytes: 4 * MiB, PageCoverage: 1.0, Rereference: 2,
			WriteFraction: 0.10, ComputePerMem: 4, Pattern: Sequential, Passes: 2, Seed: 6},
		{Name: "lava", FootprintBytes: 6 * MiB, PageCoverage: 0.25, Rereference: 3,
			WriteFraction: 0.30, ComputePerMem: 12, Pattern: Strided, PageStride: 4, Passes: 2, Seed: 7},
		{Name: "nw", FootprintBytes: 6 * MiB, PageCoverage: 0.18, Rereference: 2,
			WriteFraction: 0.40, ComputePerMem: 10, Pattern: Strided, PageStride: 8, Passes: 2, Seed: 8},
		{Name: "pagerank", FootprintBytes: 4 * MiB, PageCoverage: 0.35, Rereference: 1,
			WriteFraction: 0.20, ComputePerMem: 3, Pattern: Random, Passes: 3, Seed: 9},
		{Name: "pathfinder", FootprintBytes: 4 * MiB, PageCoverage: 0.50, Rereference: 1,
			WriteFraction: 0.25, ComputePerMem: 4, Pattern: Sequential, Passes: 3, Seed: 10},
		{Name: "sgemm", FootprintBytes: 4 * MiB, PageCoverage: 1.0, Rereference: 2,
			WriteFraction: 0.30, ComputePerMem: 4, Pattern: Strided, PageStride: 2, Passes: 3, Seed: 11},
		{Name: "srad", FootprintBytes: 4 * MiB, PageCoverage: 0.90, Rereference: 1,
			WriteFraction: 0.35, ComputePerMem: 5, Pattern: Sequential, Passes: 2, Seed: 12},
		{Name: "sssp", FootprintBytes: 4 * MiB, PageCoverage: 0.25, Rereference: 1,
			WriteFraction: 0.15, ComputePerMem: 3, Pattern: Random, Passes: 3, Seed: 13},
		{Name: "stencil", FootprintBytes: 4 * MiB, PageCoverage: 1.0, Rereference: 3,
			WriteFraction: 0.30, ComputePerMem: 12, Pattern: Sequential, Passes: 2, Seed: 14},
	}
}

// ByName returns the suite workload with the given name, or false.
func ByName(name string) (Params, bool) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// Names returns the suite workload names in suite order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, p := range s {
		out[i] = p.Name
	}
	return out
}
