package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteToAndReadTraceRoundTrip(t *testing.T) {
	p := testParams()
	src, err := p.NewStream(testGeo, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := src.WriteTo(&buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("wrote %d accesses, want 100", n)
	}

	// Replay and compare against a fresh generator stream.
	fs, err := ReadTrace(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 100 {
		t.Fatalf("parsed %d accesses, want 100", fs.Len())
	}
	ref, err := p.NewStream(testGeo, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		want, okW := ref.Next()
		got, okG := fs.Next()
		if okW != okG {
			t.Fatalf("length mismatch at %d", i)
		}
		if !okW {
			break
		}
		if want != got {
			t.Fatalf("access %d: got %+v, want %+v", i, got, want)
		}
	}
	if fs.ComputePerMem() != 3 {
		t.Errorf("ComputePerMem = %d, want 3", fs.ComputePerMem())
	}
}

func TestFileStreamReset(t *testing.T) {
	fs, err := ReadTrace(strings.NewReader("R 100\nW 200\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := fs.Next()
	fs.Next()
	if _, ok := fs.Next(); ok {
		t.Fatal("stream longer than 2")
	}
	fs.Reset()
	a2, ok := fs.Next()
	if !ok || a1 != a2 {
		t.Error("Reset did not rewind")
	}
}

func TestReadTraceFormat(t *testing.T) {
	good := "# comment\n\nR 1f00\nw ff\nW 0\n"
	fs, err := ReadTrace(strings.NewReader(good), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 3 {
		t.Fatalf("Len = %d, want 3", fs.Len())
	}
	a, _ := fs.Next()
	if a.Addr != 0x1f00 || a.Write {
		t.Errorf("first access = %+v", a)
	}
	a, _ = fs.Next()
	if a.Addr != 0xff || !a.Write {
		t.Errorf("second access = %+v", a)
	}

	bad := []string{
		"R\n",           // missing address
		"X 100\n",       // unknown op
		"R zz\n",        // bad hex
		"R 100 extra\n", // trailing field
	}
	for _, tc := range bad {
		if _, err := ReadTrace(strings.NewReader(tc), 0); err == nil {
			t.Errorf("accepted malformed line %q", tc)
		}
	}
}

func TestWriteToIncludesHeader(t *testing.T) {
	p := testParams()
	src, err := p.NewStream(testGeo, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# salus trace: workload=t\n") {
		t.Errorf("missing header: %q", buf.String())
	}
}
