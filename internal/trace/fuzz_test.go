package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace checks that the trace parser never panics and that any
// trace it accepts round-trips through the writer format.
func FuzzReadTrace(f *testing.F) {
	f.Add("R 100\nW 200\n")
	f.Add("# comment\n\nr ff\n")
	f.Add("X nope\n")
	f.Add("R " + strings.Repeat("f", 20) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		fs, err := ReadTrace(strings.NewReader(input), 1)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted traces must re-serialise and re-parse identically.
		var buf bytes.Buffer
		buf.WriteString("# roundtrip\n")
		for {
			a, ok := fs.Next()
			if !ok {
				break
			}
			op := "R"
			if a.Write {
				op = "W"
			}
			if _, err := buf.WriteString(op + " "); err != nil {
				t.Fatal(err)
			}
			if _, err := buf.WriteString(hex(a.Addr) + "\n"); err != nil {
				t.Fatal(err)
			}
		}
		fs.Reset()
		fs2, err := ReadTrace(&buf, 1)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if fs2.Len() != fs.Len() {
			t.Fatalf("round-trip length %d != %d", fs2.Len(), fs.Len())
		}
		for {
			a1, ok1 := fs.Next()
			a2, ok2 := fs2.Next()
			if ok1 != ok2 {
				t.Fatal("length mismatch")
			}
			if !ok1 {
				break
			}
			if a1 != a2 {
				t.Fatalf("access mismatch: %+v vs %+v", a1, a2)
			}
		}
	})
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var b [16]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v&0xF]
		v >>= 4
	}
	return string(b[i:])
}
