package tenant

import (
	"fmt"
	"sync"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/stats"
)

// Pool is the shared backing tier plus the tenant engines carved over
// it. The pool allocates one home buffer and one device buffer, hands
// each tenant a disjoint window of both, and never again touches tenant
// bytes itself — every data-path byte flows through exactly one
// tenant's engine and key domain. The topology (slice map, tenant set)
// is immutable after NewPool; per-tenant mutable state lives inside
// each Tenant under its own locks, so pool lookups need no lock.
type Pool struct {
	geo        config.Geometry
	backing    *securemem.Backing
	tenants    map[string]*Tenant
	order      []*Tenant
	totalPages int
	frames     int

	// reclaimed is the only pool-level mutable state: the running count
	// of device frames handed back by DestroyTenant, locked inside its
	// own type so the immutable topology fields above stay lock-free.
	reclaimed reclaimCounter
}

// reclaimCounter is a mutex-carrying counter of reclaimed device frames.
type reclaimCounter struct {
	mu sync.Mutex
	n  int
}

func (c *reclaimCounter) add(n int) {
	c.mu.Lock()
	c.n += n
	c.mu.Unlock()
}

func (c *reclaimCounter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// NewPool validates the slice layout, allocates the shared backing, and
// builds one engine per tenant — each with keys derived from the pool
// masters and the tenant identity, its own TrustedRoot lineage, and its
// own disjoint backing window.
func NewPool(cfg Config) (*Pool, error) {
	l, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	p := &Pool{
		geo:        cfg.Geometry,
		backing:    securemem.NewBacking(cfg.Geometry, l.totalPages, l.frames),
		tenants:    make(map[string]*Tenant, len(cfg.Slices)),
		totalPages: l.totalPages,
		frames:     l.frames,
	}
	for i, s := range cfg.Slices {
		aesKey, macKey := deriveKeys(cfg.AESKey, cfg.MACKey, s.ID)
		memCfg := securemem.Config{
			Geometry:    cfg.Geometry,
			Model:       securemem.ModelSalus,
			TotalPages:  s.Pages,
			DevicePages: s.Frames,
			AESKey:      aesKey,
			MACKey:      macKey,
			Shards:      s.Shards,
			Backing:     p.backing.Window(cfg.Geometry, l.bases[i], s.Pages, l.frameBase[i], s.Frames),
		}
		eng, err := securemem.NewConcurrent(memCfg)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", s.ID, err)
		}
		t := &Tenant{
			id:       s.ID,
			domain:   domainTag(aesKey, macKey, s.ID),
			basePage: l.bases[i],
			pages:    s.Pages,
			frames:   s.Frames,
			base:     uint64(l.bases[i]) * uint64(cfg.Geometry.PageSize),
			size:     uint64(s.Pages) * uint64(cfg.Geometry.PageSize),
			shards:   s.Shards,
			queueCap: cfg.QueueCap,
			memCfg:   memCfg,
			eng:      eng,
		}
		t.bucket = newQuotaBucket(s.OpRate, s.OpBurst)
		p.tenants[s.ID] = t
		p.order = append(p.order, t)
	}
	return p, nil
}

// Tenant returns the named tenant, or ErrUnknownTenant.
func (p *Pool) Tenant(id string) (*Tenant, error) {
	t, ok := p.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	return t, nil
}

// Tenants returns the pool's tenants in slice-declaration order.
func (p *Pool) Tenants() []*Tenant {
	out := make([]*Tenant, len(p.order))
	copy(out, p.order)
	return out
}

// TotalPages returns the shared home pool size in pages.
func (p *Pool) TotalPages() int { return p.totalPages }

// DeviceFrames returns the shared device tier size in frames.
func (p *Pool) DeviceFrames() int { return p.frames }

// Geometry returns the pool geometry.
func (p *Pool) Geometry() config.Geometry { return p.geo }

// Stats returns per-tenant counter snapshots in declaration order.
func (p *Pool) Stats() []stats.TenantOps {
	out := make([]stats.TenantOps, 0, len(p.order))
	for _, t := range p.order {
		out = append(out, t.Stats())
	}
	return out
}

// RecoverTenant rebuilds one tenant from its checkpoint journal and
// trusted root, swapping the recovered engine in under the tenant's
// exclusive lock. Only that tenant's backing window is rewritten; every
// sibling keeps serving from its own domain while the recovery runs —
// that containment is exactly what the chaos campaign's blast-radius
// oracle asserts.
func (p *Pool) RecoverTenant(id string, journal []byte, root securemem.TrustedRoot) error {
	t, err := p.Tenant(id)
	if err != nil {
		return err
	}
	t.state.Lock()
	defer t.state.Unlock()
	if t.eng == nil {
		return fmt.Errorf("%w: cannot recover %q", ErrTenantClosed, id)
	}
	sys, err := securemem.Recover(t.memCfg, journal, root)
	if err != nil {
		return err
	}
	t.eng = securemem.ConcurrentFrom(sys, t.shards)
	t.mu.Lock()
	t.ops.Recovers++
	t.mu.Unlock()
	return nil
}

// DestroyTenant retires one tenant: under the tenant's exclusive lock
// it zeroizes the derived key material, scrubs the tenant's home and
// device backing windows (the frame partition returns to the pool with
// no ciphertext residue), and drops the engine, so every later
// operation under that identity — reads, writes, checkpoints, even
// RecoverTenant with a valid journal — fails typed ErrTenantClosed.
// This is the retirement step after a tenant migrates away: the source
// copy must become cryptographically unreachable, not merely idle.
// Destroying an already-destroyed tenant fails ErrTenantClosed;
// siblings are untouched throughout.
func (p *Pool) DestroyTenant(id string) error {
	t, err := p.Tenant(id)
	if err != nil {
		return err
	}
	t.state.Lock()
	defer t.state.Unlock()
	if t.eng == nil {
		return fmt.Errorf("%w: %q already destroyed", ErrTenantClosed, id)
	}
	for i := range t.memCfg.AESKey {
		t.memCfg.AESKey[i] = 0
	}
	for i := range t.memCfg.MACKey {
		t.memCfg.MACKey[i] = 0
	}
	if b := t.memCfg.Backing; b != nil {
		for i := range b.Home {
			b.Home[i] = 0
		}
		for i := range b.Device {
			b.Device[i] = 0
		}
	}
	t.eng = nil
	p.reclaimed.add(t.frames)
	return nil
}

// ReclaimedFrames reports how many device frames DestroyTenant has
// handed back to the pool so far.
func (p *Pool) ReclaimedFrames() int {
	return p.reclaimed.get()
}

// SpliceHome copies n raw bytes of home-tier ciphertext from src to dst
// (pool-global addresses), modelling an attacker with physical access
// to the shared CXL pool replaying a sibling's ciphertext into its own
// slice. It bypasses every tenant gate on purpose: it is the attack
// surface the verification campaign drives, mirroring securemem's
// inject helpers. The defence under test is cryptographic — spliced
// bytes can never verify under the victim-distinct key domain — not the
// address gate. Out-of-pool ranges fail with securemem.ErrOutOfRange.
func (p *Pool) SpliceHome(dst, src securemem.HomeAddr, n int) error {
	size := uint64(p.totalPages) * uint64(p.geo.PageSize)
	d, s := uint64(dst), uint64(src)
	if n < 0 || d > size || uint64(n) > size-d || s > size || uint64(n) > size-s {
		return fmt.Errorf("%w: splice [%d,+%d) <- [%d,+%d) outside pool of %d bytes",
			securemem.ErrOutOfRange, d, n, s, n, size)
	}
	copy(p.backing.Home[d:d+uint64(n)], p.backing.Home[s:s+uint64(n)])
	return nil
}
