package tenant

import (
	"bytes"
	"errors"
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/securemem"
)

func testGeometry() config.Geometry {
	return config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096}
}

// newTestPool builds a two-tenant pool: a at pages [0,8), b at [8,16),
// two device frames each.
func newTestPool(t *testing.T, slices ...Slice) *Pool {
	t.Helper()
	if slices == nil {
		slices = []Slice{
			{ID: "a", BasePage: 0, Pages: 8, Frames: 2},
			{ID: "b", BasePage: 8, Pages: 8, Frames: 2},
		}
	}
	p, err := NewPool(Config{Geometry: testGeometry(), Slices: slices})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tn(t *testing.T, p *Pool, id string) *Tenant {
	t.Helper()
	ten, err := p.Tenant(id)
	if err != nil {
		t.Fatal(err)
	}
	return ten
}

func TestPoolRoundTripAndGlobalAddressing(t *testing.T) {
	p := newTestPool(t)
	a, b := tn(t, p, "a"), tn(t, p, "b")

	msgA := []byte("tenant A plaintext, page two!")
	msgB := []byte("tenant B plaintext, page ten!")
	if err := a.Write(2*4096+64, msgA); err != nil {
		t.Fatal(err)
	}
	// b addresses pool-globally: its slice starts at page 8.
	if err := b.Write(10*4096+64, msgB); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msgA))
	if err := a.Read(2*4096+64, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgA) {
		t.Fatalf("tenant a read %q, want %q", got, msgA)
	}
	got = make([]byte, len(msgB))
	if err := b.Read(10*4096+64, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgB) {
		t.Fatalf("tenant b read %q, want %q", got, msgB)
	}

	if _, err := p.Tenant("nobody"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant lookup: got %v", err)
	}
}

// TestCrossTenantDeniedTyped pins the isolation gate: every flavour of
// out-of-slice access fails ErrTenantDenied, never bytes, and the
// caller's buffer is untouched.
func TestCrossTenantDeniedTyped(t *testing.T) {
	p := newTestPool(t)
	a, b := tn(t, p, "a"), tn(t, p, "b")

	secret := []byte("b's secret, resident or parked")
	if err := b.Write(9*4096, secret); err != nil {
		t.Fatal(err)
	}
	// Evict b's pages so the probe targets non-resident (parked) state.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	sentinel := bytes.Repeat([]byte{0xEE}, 64)
	probes := []struct {
		name string
		addr securemem.HomeAddr
		n    int
	}{
		{"sibling slice", 9 * 4096, 64},
		{"straddle out the top", securemem.HomeAddr(8*4096 - 32), 64},
		{"far out of pool", 1 << 40, 64},
		{"length overflow", 0, 0}, // patched below: huge length via buf
	}
	for _, pr := range probes {
		buf := append([]byte(nil), sentinel...)
		if pr.n == 0 {
			// Whole-slice-plus-one read: length pushes past the slice end.
			buf = make([]byte, 8*4096+1)
			copy(buf, sentinel)
		}
		err := a.Read(pr.addr, buf)
		if !errors.Is(err, ErrTenantDenied) {
			t.Fatalf("%s: got %v, want ErrTenantDenied", pr.name, err)
		}
		if !bytes.Equal(buf[:len(sentinel)], sentinel) {
			t.Fatalf("%s: denied read mutated the caller buffer", pr.name)
		}
		if werr := a.Write(pr.addr, buf); !errors.Is(werr, ErrTenantDenied) {
			t.Fatalf("%s write: got %v, want ErrTenantDenied", pr.name, werr)
		}
	}

	// The denials changed nothing in b's domain.
	got := make([]byte, len(secret))
	if err := b.Read(9*4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("sibling bytes changed by denied probes")
	}
	ops := a.Stats()
	if ops.Denied == 0 {
		t.Fatal("denials not counted")
	}
}

// TestKeyDomainsDistinct proves two tenants never share key material:
// identical plaintext at identical slice-relative addresses yields
// different ciphertext in the shared pool, and the domain fingerprints
// differ.
func TestKeyDomainsDistinct(t *testing.T) {
	p := newTestPool(t)
	a, b := tn(t, p, "a"), tn(t, p, "b")
	if a.Domain() == b.Domain() {
		t.Fatal("tenant key domains not distinct")
	}

	msg := bytes.Repeat([]byte("same plaintext! "), 2) // one full sector
	if err := a.Write(0, msg); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(8*4096, msg); err != nil { // same slice-relative addr 0
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	ctA := append([]byte(nil), poolHome(p)[0:32]...)
	ctB := append([]byte(nil), poolHome(p)[8*4096:8*4096+32]...)
	if bytes.Equal(ctA, ctB) {
		t.Fatal("identical ciphertext across tenants: key domains are shared")
	}
	if bytes.Contains(poolHome(p), msg[:16]) {
		t.Fatal("plaintext visible in shared pool")
	}
}

// poolHome exposes the raw shared home bytes for test assertions.
func poolHome(p *Pool) []byte { return p.backing.Home }

// TestSplicedSiblingCiphertextRejected replays b's ciphertext into a's
// slice via raw pool access and proves a's engine refuses it typed —
// the cross-domain replay yields ErrIntegrity, never b's plaintext.
func TestSplicedSiblingCiphertextRejected(t *testing.T) {
	p := newTestPool(t)
	a, b := tn(t, p, "a"), tn(t, p, "b")

	secret := bytes.Repeat([]byte("sibling secret!!"), 2)
	if err := b.Write(8*4096, secret); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0, bytes.Repeat([]byte{0x11}, 32)); err != nil {
		t.Fatal(err)
	}
	// Park both tenants' state in the home tier, then replay b's first
	// ciphertext sector over a's.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.SpliceHome(0, 8*4096, 32); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	err := a.Read(0, buf)
	if !errors.Is(err, securemem.ErrIntegrity) {
		t.Fatalf("spliced read: got %v, want ErrIntegrity", err)
	}
	if bytes.Contains(buf, []byte("sibling secret")) {
		t.Fatal("cross-tenant replay leaked sibling plaintext")
	}
	if got := a.Stats(); got.Integrity == 0 {
		t.Fatal("integrity refusal not counted")
	}

	// Out-of-pool splices are refused typed.
	if err := p.SpliceHome(1<<40, 0, 32); !errors.Is(err, securemem.ErrOutOfRange) {
		t.Fatalf("out-of-pool splice: got %v", err)
	}
}

// TestQuotaStormTyped drives a tenant past its admission quota and pins
// the typed refusal, the deterministic duty cycle, and that a sibling
// with no quota is unaffected.
func TestQuotaStormTyped(t *testing.T) {
	p := newTestPool(t,
		Slice{ID: "limited", BasePage: 0, Pages: 8, Frames: 2, OpRate: 0.5, OpBurst: 4},
		Slice{ID: "free", BasePage: 8, Pages: 8, Frames: 2},
	)
	lim, free := tn(t, p, "limited"), tn(t, p, "free")

	buf := make([]byte, 16)
	admitted, denied := 0, 0
	for i := 0; i < 64; i++ {
		err := lim.Read(0, buf)
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrQuota):
			denied++
		default:
			t.Fatalf("op %d: unexpected %v", i, err)
		}
	}
	if denied == 0 {
		t.Fatal("quota storm never hit ErrQuota")
	}
	// Burst 4 + 0.5/attempt over 64 attempts admits ~36 ops.
	if admitted < 30 || admitted > 40 {
		t.Fatalf("duty cycle off: %d admitted of 64", admitted)
	}
	ops := lim.Stats()
	if int(ops.Quota) != denied || int(ops.Reads) != admitted {
		t.Fatalf("counters %d/%d disagree with observed %d/%d", ops.Quota, ops.Reads, denied, admitted)
	}

	for i := 0; i < 64; i++ {
		if err := free.Read(8*4096, buf); err != nil {
			t.Fatalf("unlimited sibling refused during storm: %v", err)
		}
	}
}

// TestBlastRadiusCheckpointRecover crashes tenant a (poison storm, then
// recover from its own checkpoint) and proves tenant b's byte state and
// availability never move: independent epochs, independent roots,
// identical sibling digests before and after.
func TestBlastRadiusCheckpointRecover(t *testing.T) {
	p := newTestPool(t)
	a, b := tn(t, p, "a"), tn(t, p, "b")

	msgA := []byte("a's durable state")
	msgB := []byte("b's steady state bytes")
	if err := a.Write(0, msgA); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(8*4096, msgB); err != nil {
		t.Fatal(err)
	}

	storeA := crash.NewMemStore()
	rootA, err := a.Checkpoint(crash.NewJournal(storeA))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Epoch(); got != 0 {
		t.Fatalf("a's checkpoint advanced b's epoch to %d", got)
	}
	digestB := b.StateDigest()

	// Wreck a: poison storm on a's engine only, then divergent writes.
	plan := fault.NewRatePlan(7, fault.Rates{Poison: 1.0}, 4)
	a.AttachFaults(plan, securemem.RetryPolicy{MaxRetries: 0, BaseBackoff: 1, MaxBackoff: 1}, nil)
	junk := make([]byte, 64)
	for i := 0; i < 8; i++ {
		_ = a.Write(securemem.HomeAddr(i*256), junk) // errors expected: a is dying
	}
	a.AttachFaults(nil, securemem.RetryPolicy{}, nil)

	if err := p.RecoverTenant("a", storeA.Bytes(), rootA); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msgA))
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgA) {
		t.Fatalf("a recovered %q, want %q", got, msgA)
	}
	if a.Stats().Recovers != 1 {
		t.Fatal("recover not counted")
	}

	// b: byte-identical digest, untouched bytes, zero observed failures.
	if b.StateDigest() != digestB {
		t.Fatal("sibling digest moved across a's crash/recover")
	}
	got = make([]byte, len(msgB))
	if err := b.Read(8*4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msgB) {
		t.Fatalf("b read %q, want %q", got, msgB)
	}

	// Recovery against the wrong root is refused typed, not applied.
	if err := p.RecoverTenant("b", storeA.Bytes(), rootA); err == nil {
		t.Fatal("b recovered from a's journal: lineages not independent")
	}
}

// TestConfigValidationTyped spot-checks the typed slice-layout
// rejections.
func TestConfigValidationTyped(t *testing.T) {
	geo := testGeometry()
	cases := []struct {
		name   string
		slices []Slice
	}{
		{"empty", nil},
		{"zero pages", []Slice{{ID: "a", Pages: 0, Frames: 1}}},
		{"zero frames", []Slice{{ID: "a", Pages: 4, Frames: 0}}},
		{"frames exceed pages", []Slice{{ID: "a", Pages: 2, Frames: 3}}},
		{"duplicate id", []Slice{{ID: "a", Pages: 4, Frames: 1}, {ID: "a", BasePage: 4, Pages: 4, Frames: 1}}},
		{"overlap", []Slice{{ID: "a", Pages: 4, Frames: 1}, {ID: "b", BasePage: 2, Pages: 4, Frames: 1}}},
		{"rate without burst", []Slice{{ID: "a", Pages: 4, Frames: 1, OpRate: 1}}},
	}
	for _, c := range cases {
		if _, err := NewPool(Config{Geometry: geo, Slices: c.slices}); !errors.Is(err, ErrSliceConfig) {
			t.Errorf("%s: got %v, want ErrSliceConfig", c.name, err)
		}
	}

	// Auto placement fills gaps without overlap.
	p, err := NewPool(Config{Geometry: geo, Slices: []Slice{
		{ID: "fixed", BasePage: 4, Pages: 4, Frames: 1},
		{ID: "auto1", BasePage: AutoBase, Pages: 4, Frames: 1},
		{ID: "auto2", BasePage: AutoBase, Pages: 4, Frames: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	seenBase := map[securemem.HomeAddr]bool{}
	for _, ten := range p.Tenants() {
		if seenBase[ten.Base()] {
			t.Fatalf("two tenants share base %d", ten.Base())
		}
		seenBase[ten.Base()] = true
	}
	if p.TotalPages() != 12 {
		t.Fatalf("pool pages = %d, want 12", p.TotalPages())
	}
}

// TestParseSlices pins the spec grammar round trip and its typed
// failures.
func TestParseSlices(t *testing.T) {
	got, err := ParseSlices("a:0+16/4,b:auto+8/2@0.5/8")
	if err != nil {
		t.Fatal(err)
	}
	want := []Slice{
		{ID: "a", BasePage: 0, Pages: 16, Frames: 4},
		{ID: "b", BasePage: AutoBase, Pages: 8, Frames: 2, OpRate: 0.5, OpBurst: 8},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d slices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "a", "a:", "a:+4/1", "a:0+/1", "a:0+4", "a:0+4/", "a:x+4/1",
		"a:0+99999999999999999999/1", "a:0+4/1@1", "a:0+4/1@x/1", ":0+4/1",
		"a:0+-4/1", "a:0+4/1@-1/2", "a:0+4/1@NaN/2",
	} {
		if _, err := ParseSlices(bad); !errors.Is(err, ErrSliceConfig) {
			t.Errorf("ParseSlices(%q): got %v, want ErrSliceConfig", bad, err)
		}
	}
}
