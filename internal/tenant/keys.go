package tenant

import (
	"crypto/sha256"
	"encoding/hex"
)

// Deterministic pool master keys used when the caller supplies none —
// the same spirit as check.DefaultConfig: reproducible runs, real
// crypto. Distinct per-tenant keys are still derived from these.
var (
	defaultMasterAES = []byte("salus-tenant-pool-aes-master-key")
	defaultMasterMAC = []byte("salus-tenant-pool-mac-master-key")
)

// deriveKeys binds a tenant's key material to the pool masters and the
// tenant identity: aes = H(master || 0x00 || id)[:16], mac = H(master ||
// 0x01 || id). Two tenants therefore live in cryptographically distinct
// domains — ciphertext and MACs copied verbatim from a sibling's slice
// can never verify under this tenant's engine, which is what turns a
// replay-from-sibling attack into a typed ErrIntegrity instead of a
// byte leak.
func deriveKeys(masterAES, masterMAC []byte, id string) (aesKey, macKey []byte) {
	if len(masterAES) == 0 {
		masterAES = defaultMasterAES
	}
	if len(masterMAC) == 0 {
		masterMAC = defaultMasterMAC
	}
	a := sha256.New()
	a.Write(masterAES)
	a.Write([]byte{0x00})
	a.Write([]byte(id))
	aesKey = a.Sum(nil)[:16]

	m := sha256.New()
	m.Write(masterMAC)
	m.Write([]byte{0x01})
	m.Write([]byte(id))
	macKey = m.Sum(nil)
	return aesKey, macKey
}

// migrationKey binds the migration transport secret to the tenant's
// MAC key domain: H(macKey || 0x02 || id). The 0x02 label keeps it
// disjoint from the 0x00/0x01 derivations above, so the stream MAC key
// can never collide with storage key material, and two pools built from
// the same masters derive the same transport secret for the same
// tenant — the attestation precondition for moving ciphertext verbatim.
func migrationKey(macKey []byte, id string) []byte {
	h := sha256.New()
	h.Write(macKey)
	h.Write([]byte{0x02})
	h.Write([]byte(id))
	return h.Sum(nil)
}

// domainTag is a short stable fingerprint of a tenant's key domain,
// exposed via Tenant.Domain so tests and operators can confirm two
// tenants really hold distinct key material without ever seeing it.
func domainTag(aesKey, macKey []byte, id string) string {
	h := sha256.New()
	h.Write(aesKey)
	h.Write(macKey)
	h.Write([]byte(id))
	return hex.EncodeToString(h.Sum(nil)[:8])
}
