package tenant

import (
	"errors"
	"strings"
	"testing"
)

// FuzzTenantConfig feeds hostile slice-layout specs through the parse +
// validate + pool-construction path and holds the robustness contract:
// every rejection is typed ErrSliceConfig, construction never panics,
// and any accepted layout really is disjoint.
func FuzzTenantConfig(f *testing.F) {
	for _, seed := range []string{
		"a:0+16/4,b:16+16/4",
		"victim:auto+8/2,attacker:auto+8/2@0.5/8",
		"a:0+0/0", "a:0+4/1,a:4+4/1", "a:0+4/1,b:2+4/1",
		"x:auto+16777216/1", "a:0+4/1@1e308/2", "a:0+4/1@0.0001/1",
		",,,", "a:b:c+d/e@f/g", "a:-1+4/1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		slices, err := ParseSlices(spec)
		if err != nil {
			if !errors.Is(err, ErrSliceConfig) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		cfg := Config{Geometry: testGeometry(), Slices: slices}
		layout, err := cfg.Validate()
		if err != nil {
			if !errors.Is(err, ErrSliceConfig) {
				t.Fatalf("untyped validate error: %v", err)
			}
			return
		}
		// Accepted layouts must be disjoint and in-bounds.
		used := map[int]string{}
		for i, s := range slices {
			base := layout.bases[i]
			if base < 0 || base+s.Pages > layout.totalPages {
				t.Fatalf("slice %q placed out of pool: base %d pages %d pool %d", s.ID, base, s.Pages, layout.totalPages)
			}
			for p := base; p < base+s.Pages; p++ {
				if owner, clash := used[p]; clash {
					t.Fatalf("page %d owned by both %q and %q", p, owner, s.ID)
				}
				used[p] = s.ID
			}
		}
		// Keep real pool construction (which allocates backing) to small
		// layouts so the fuzzer explores structure, not allocator limits.
		if layout.totalPages <= 64 && !strings.Contains(spec, "\x00") {
			if _, err := NewPool(cfg); err != nil {
				t.Fatalf("validated layout failed pool construction: %v", err)
			}
		}
	})
}
