package tenant

import (
	"bytes"
	"errors"
	"testing"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/securemem"
)

// TestDestroyTenantRetiresIdentity pins the retirement contract: after
// DestroyTenant every operation under the identity fails typed
// ErrTenantClosed, query methods degrade to zero values, and the pool
// reports the reclaimed frame partition.
func TestDestroyTenantRetiresIdentity(t *testing.T) {
	p := newTestPool(t)
	a := tn(t, p, "a")

	if err := a.Write(0, []byte("doomed tenant payload")); err != nil {
		t.Fatal(err)
	}
	store := crash.NewMemStore()
	j := crash.NewJournal(store)
	if _, err := a.Checkpoint(j); err != nil {
		t.Fatal(err)
	}
	if a.Closed() {
		t.Fatal("tenant reports closed before destruction")
	}

	if err := p.DestroyTenant("a"); err != nil {
		t.Fatal(err)
	}
	if !a.Closed() {
		t.Error("Closed() = false after DestroyTenant")
	}
	if a.Engine() != nil {
		t.Error("Engine() non-nil after DestroyTenant")
	}
	if got := p.ReclaimedFrames(); got != a.Frames() {
		t.Errorf("ReclaimedFrames = %d, want %d", got, a.Frames())
	}

	buf := make([]byte, 8)
	checks := map[string]error{
		"Read":           a.Read(0, buf),
		"Write":          a.Write(0, buf),
		"Flush":          a.Flush(),
		"DestroyAgain":   p.DestroyTenant("a"),
		"RecoverTenant":  p.RecoverTenant("a", store.Bytes(), securemem.TrustedRoot{}),
		"SecondMigKeyOp": func() error { _, err := a.MigrationKey(); return err }(),
		"Checkpoint":     func() error { _, err := a.Checkpoint(j); return err }(),
		"FullCheckpoint": func() error { _, err := a.FullCheckpoint(j); return err }(),
		"Drain":          func() error { _, err := a.DrainWritebacks(); return err }(),
	}
	for name, err := range checks {
		if !errors.Is(err, ErrTenantClosed) {
			t.Errorf("%s after destroy: got %v, want ErrTenantClosed", name, err)
		}
	}
	if a.Epoch() != 0 {
		t.Errorf("Epoch after destroy = %d, want 0", a.Epoch())
	}
	if a.QueuedWritebacks() != 0 {
		t.Error("QueuedWritebacks non-zero after destroy")
	}
	if a.StateDigest() != [32]byte{} {
		t.Error("StateDigest non-zero after destroy")
	}

	if err := p.DestroyTenant("ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("DestroyTenant(ghost): got %v, want ErrUnknownTenant", err)
	}
}

// TestDestroyTenantZeroizesKeysAndScrubsWindows proves retirement
// leaves no residue: the derived key material and the tenant's home
// and device backing windows all read as zero afterwards, while the
// sibling's window — and its service — are untouched.
func TestDestroyTenantZeroizesKeysAndScrubsWindows(t *testing.T) {
	p := newTestPool(t)
	a, b := tn(t, p, "a"), tn(t, p, "b")

	msgB := []byte("sibling stays intact")
	if err := a.Write(64, []byte("secret bytes for tenant a")); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil { // push ciphertext into the home window
		t.Fatal(err)
	}
	if err := b.Write(b.Base()+64, msgB); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	sibDigest := b.StateDigest()

	aBacking := a.memCfg.Backing
	aesKey, macKey := a.memCfg.AESKey, a.memCfg.MACKey
	if allZero(aBacking.Home) {
		t.Fatal("test setup: tenant a home window empty before destroy")
	}

	if err := p.DestroyTenant("a"); err != nil {
		t.Fatal(err)
	}
	if !allZero(aesKey) || !allZero(macKey) {
		t.Error("key material not zeroized")
	}
	if !allZero(aBacking.Home) || !allZero(aBacking.Device) {
		t.Error("backing windows not scrubbed")
	}

	if got := b.StateDigest(); got != sibDigest {
		t.Error("sibling digest changed by DestroyTenant")
	}
	got := make([]byte, len(msgB))
	if err := b.Read(b.Base()+64, got); err != nil || !bytes.Equal(got, msgB) {
		t.Errorf("sibling read after destroy: %v, %q", err, got)
	}
}

// TestFullCheckpointSelfContained pins the migration bootstrap
// property: a FullCheckpoint journal alone — no earlier epochs —
// rebuilds the whole slice on a second pool derived from the same
// masters, byte-identical.
func TestFullCheckpointSelfContained(t *testing.T) {
	src := newTestPool(t)
	a := tn(t, src, "a")

	msg1 := []byte("written before an ordinary checkpoint")
	msg2 := []byte("written after it, carried only by the full one")
	if err := a.Write(128, msg1); err != nil {
		t.Fatal(err)
	}
	// Deliberately discarded: the full journal must not need it.
	if _, err := a.Checkpoint(crash.NewJournal(crash.NewMemStore())); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(2*4096, msg2); err != nil {
		t.Fatal(err)
	}
	fullStore := crash.NewMemStore()
	root, err := a.FullCheckpoint(crash.NewJournal(fullStore))
	if err != nil {
		t.Fatal(err)
	}

	dst := newTestPool(t)
	if err := dst.RecoverTenant("a", fullStore.Bytes(), root); err != nil {
		t.Fatalf("recover from self-contained journal: %v", err)
	}
	da := tn(t, dst, "a")
	for _, probe := range []struct {
		addr securemem.HomeAddr
		want []byte
	}{{128, msg1}, {2 * 4096, msg2}} {
		got := make([]byte, len(probe.want))
		if err := da.Read(probe.addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, probe.want) {
			t.Errorf("dest read @%d = %q, want %q", probe.addr, got, probe.want)
		}
	}
}

// TestMigrationKeyDerivation pins the transport-secret contract: equal
// across pools built from the same masters (the attestation
// precondition), distinct per tenant, and disjoint from the storage MAC
// key itself.
func TestMigrationKeyDerivation(t *testing.T) {
	p1, p2 := newTestPool(t), newTestPool(t)
	k1, err := tn(t, p1, "a").MigrationKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := tn(t, p2, "a").MigrationKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := tn(t, p1, "b").MigrationKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1, k2) {
		t.Error("same tenant on same-master pools derived different migration keys")
	}
	if bytes.Equal(k1, kb) {
		t.Error("distinct tenants share a migration key")
	}
	if bytes.Equal(k1, tn(t, p1, "a").memCfg.MACKey) {
		t.Error("migration key equals the storage MAC key")
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
