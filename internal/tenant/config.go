// Package tenant carves one shared CXL-expanded memory pool into
// per-tenant cryptographic domains. Each tenant gets its own
// address-space slice of the home pool, its own device-frame partition,
// its own derived key domain (a distinct cryptoeng engine whose AES and
// MAC keys are bound to the tenant identity, so ciphertext replayed
// from a sibling slice can never verify), its own op quota, and an
// independent checkpoint/recover epoch with its own TrustedRoot
// lineage.
//
// The robustness contract is blast-radius isolation: every cross-tenant
// access — an out-of-slice read or write, a probe of a sibling's
// evicted or parked pages, a quota-pressure storm — fails with a typed
// denial (ErrTenantDenied, ErrQuota), never bytes and never a panic;
// and one tenant's poison quarantine, crash/recover cycle, or
// writeback-queue overflow during a link outage leaves every sibling's
// availability and byte-state untouched. internal/check's hostile-
// tenant campaign (salus-check -tenant) replays exactly those attacks
// per seed and asserts the contract holds.
package tenant

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/salus-sim/salus/internal/config"
)

// Typed denial and configuration taxonomy. errors.Is is the supported
// way to classify an outcome.
var (
	// ErrTenantDenied reports an access outside the tenant's address-
	// space slice: the isolation layer refuses it before any engine or
	// backing byte is touched.
	ErrTenantDenied = errors.New("tenant: access outside tenant slice (denied)")
	// ErrQuota reports an op refused by the tenant's admission quota.
	ErrQuota = errors.New("tenant: op quota exhausted")
	// ErrUnknownTenant reports a lookup of a tenant id the pool does not
	// host.
	ErrUnknownTenant = errors.New("tenant: unknown tenant id")
	// ErrTenantClosed reports an operation on a destroyed tenant: its
	// key material was zeroized and its slice scrubbed and reclaimed by
	// Pool.DestroyTenant, so nothing can be read, written, checkpointed,
	// or recovered under its identity again.
	ErrTenantClosed = errors.New("tenant: tenant destroyed (closed)")
	// ErrSliceConfig reports an invalid slice layout: zero-size or
	// overlapping slices, duplicate ids, frames exceeding pages, or a
	// slice that does not fit the pool.
	ErrSliceConfig = errors.New("tenant: invalid slice configuration")
)

// AutoBase marks a slice whose home placement the pool chooses
// (first-fit into the free gaps left by explicitly placed slices).
const AutoBase = -1

// maxSlicePages bounds a single dimension of a parsed slice so hostile
// specs cannot request absurd allocations; real pools are far smaller.
const maxSlicePages = 1 << 24

// Slice describes one tenant's carve-out of the shared pool.
type Slice struct {
	// ID names the tenant; it must be non-empty, unique within the
	// pool, and free of the spec grammar's separators.
	ID string
	// BasePage is the slice's first home page in pool space, or
	// AutoBase to let the pool place it.
	BasePage int
	// Pages is the slice's home address-space size in pages.
	Pages int
	// Frames is the tenant's device-tier partition in page frames; it
	// bounds device residency (the page-cache quota) and must not
	// exceed Pages.
	Frames int
	// Shards selects the tenant engine's lock-shard count (0 = engine
	// default).
	Shards int
	// OpRate/OpBurst configure the tenant's deterministic admission
	// quota: the bucket gains OpRate tokens per attempted op and holds
	// at most OpBurst. OpRate <= 0 disables the quota.
	OpRate  float64
	OpBurst float64
}

// Config sizes a Pool.
type Config struct {
	Geometry config.Geometry
	Slices   []Slice

	// AESKey/MACKey are the pool master keys; per-tenant keys are
	// derived from them and the tenant identity (see keys.go). Nil
	// selects deterministic defaults, like securemem.
	AESKey []byte
	MACKey []byte

	// TotalPages fixes the shared home pool size; zero derives it from
	// the slice layout (every slice must fit either way).
	TotalPages int

	// QueueCap bounds each tenant's dirty-writeback queue when a link
	// model is attached (0 = engine default at attach time).
	QueueCap int
}

// layout is a validated slice placement: resolved home bases plus the
// derived pool dimensions.
type layout struct {
	bases      []int // resolved BasePage per slice
	frameBase  []int // first device frame per slice
	totalPages int
	frames     int
}

// Validate checks the configuration and resolves the slice layout.
// Every violation is typed ErrSliceConfig.
func (c Config) Validate() (layout, error) {
	var l layout
	if err := c.Geometry.Validate(); err != nil {
		return l, fmt.Errorf("%w: %v", ErrSliceConfig, err)
	}
	if len(c.Slices) == 0 {
		return l, fmt.Errorf("%w: no slices", ErrSliceConfig)
	}
	if c.TotalPages < 0 || c.TotalPages > maxSlicePages {
		return l, fmt.Errorf("%w: TotalPages %d out of range", ErrSliceConfig, c.TotalPages)
	}
	seen := map[string]bool{}
	for i, s := range c.Slices {
		switch {
		case s.ID == "" || strings.ContainsAny(s.ID, ",:+/@ \t\n"):
			return l, fmt.Errorf("%w: slice %d: bad id %q", ErrSliceConfig, i, s.ID)
		case seen[s.ID]:
			return l, fmt.Errorf("%w: duplicate tenant id %q", ErrSliceConfig, s.ID)
		case s.Pages <= 0 || s.Pages > maxSlicePages:
			return l, fmt.Errorf("%w: tenant %q: %d pages", ErrSliceConfig, s.ID, s.Pages)
		case s.Frames <= 0 || s.Frames > s.Pages:
			return l, fmt.Errorf("%w: tenant %q: %d frames for %d pages", ErrSliceConfig, s.ID, s.Frames, s.Pages)
		case s.BasePage != AutoBase && (s.BasePage < 0 || s.BasePage > maxSlicePages):
			return l, fmt.Errorf("%w: tenant %q: base page %d", ErrSliceConfig, s.ID, s.BasePage)
		case s.Shards < 0:
			return l, fmt.Errorf("%w: tenant %q: negative shards", ErrSliceConfig, s.ID)
		case s.OpRate < 0 || s.OpBurst < 0:
			return l, fmt.Errorf("%w: tenant %q: negative quota", ErrSliceConfig, s.ID)
		case s.OpRate > 0 && s.OpBurst < 1:
			return l, fmt.Errorf("%w: tenant %q: quota rate without burst capacity", ErrSliceConfig, s.ID)
		}
		seen[s.ID] = true
	}

	// Place explicit slices first and check pairwise overlap, then
	// first-fit the AutoBase slices into the remaining gaps.
	type span struct{ base, end int }
	var placed []span
	overlaps := func(base, end int) *span {
		for i := range placed {
			if base < placed[i].end && placed[i].base < end {
				return &placed[i]
			}
		}
		return nil
	}
	l.bases = make([]int, len(c.Slices))
	for i, s := range c.Slices {
		if s.BasePage == AutoBase {
			l.bases[i] = AutoBase
			continue
		}
		end := s.BasePage + s.Pages
		if o := overlaps(s.BasePage, end); o != nil {
			return layout{}, fmt.Errorf("%w: tenant %q slice [%d,%d) overlaps sibling slice [%d,%d)",
				ErrSliceConfig, s.ID, s.BasePage, end, o.base, o.end)
		}
		l.bases[i] = s.BasePage
		placed = append(placed, span{s.BasePage, end})
	}
	for i, s := range c.Slices {
		if l.bases[i] != AutoBase {
			continue
		}
		base := 0
		for overlaps(base, base+s.Pages) != nil {
			// Jump past the earliest placed slice that blocks this base.
			next := base + 1
			for _, p := range placed {
				if base < p.end && p.base < base+s.Pages && p.end > next {
					next = p.end
				}
			}
			base = next
			if base > maxSlicePages {
				return layout{}, fmt.Errorf("%w: tenant %q: no room to auto-place %d pages", ErrSliceConfig, s.ID, s.Pages)
			}
		}
		l.bases[i] = base
		placed = append(placed, span{base, base + s.Pages})
	}

	l.frameBase = make([]int, len(c.Slices))
	for i, s := range c.Slices {
		if end := l.bases[i] + s.Pages; end > l.totalPages {
			l.totalPages = end
		}
		l.frameBase[i] = l.frames
		l.frames += s.Frames
	}
	if c.TotalPages > 0 {
		if l.totalPages > c.TotalPages {
			return layout{}, fmt.Errorf("%w: slice layout needs %d pages, pool has %d", ErrSliceConfig, l.totalPages, c.TotalPages)
		}
		l.totalPages = c.TotalPages
	}
	return l, nil
}

// ParseSlices parses a slice-layout spec: a comma-separated list of
//
//	id:base+pages/frames[@rate/burst]
//
// where base is a page number or "auto". Examples:
//
//	a:0+16/4,b:16+16/4
//	victim:auto+8/2,attacker:auto+8/2@0.5/8
//
// Every parse or layout failure is typed ErrSliceConfig; a hostile spec
// can never panic. The parsed slices still need Config.Validate (NewPool
// runs it) for overlap/fit checking against a concrete pool.
func ParseSlices(spec string) ([]Slice, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrSliceConfig)
	}
	var out []Slice
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		id, rest, ok := strings.Cut(item, ":")
		if !ok || id == "" {
			return nil, fmt.Errorf("%w: %q: want id:base+pages/frames", ErrSliceConfig, item)
		}
		var quota string
		rest, quota, _ = strings.Cut(rest, "@")
		baseStr, rest, ok := strings.Cut(rest, "+")
		if !ok {
			return nil, fmt.Errorf("%w: %q: missing base+pages", ErrSliceConfig, item)
		}
		pagesStr, framesStr, ok := strings.Cut(rest, "/")
		if !ok {
			return nil, fmt.Errorf("%w: %q: missing /frames", ErrSliceConfig, item)
		}
		s := Slice{ID: id, BasePage: AutoBase}
		if baseStr != "auto" {
			base, err := parseDim(baseStr)
			if err != nil {
				return nil, fmt.Errorf("%w: %q: base: %v", ErrSliceConfig, item, err)
			}
			s.BasePage = base
		}
		var err error
		if s.Pages, err = parseDim(pagesStr); err != nil {
			return nil, fmt.Errorf("%w: %q: pages: %v", ErrSliceConfig, item, err)
		}
		if s.Frames, err = parseDim(framesStr); err != nil {
			return nil, fmt.Errorf("%w: %q: frames: %v", ErrSliceConfig, item, err)
		}
		if quota != "" {
			rateStr, burstStr, ok := strings.Cut(quota, "/")
			if !ok {
				return nil, fmt.Errorf("%w: %q: quota wants @rate/burst", ErrSliceConfig, item)
			}
			if s.OpRate, err = parseQuota(rateStr); err != nil {
				return nil, fmt.Errorf("%w: %q: quota rate: %v", ErrSliceConfig, item, err)
			}
			if s.OpBurst, err = parseQuota(burstStr); err != nil {
				return nil, fmt.Errorf("%w: %q: quota burst: %v", ErrSliceConfig, item, err)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// parseDim parses one non-negative slice dimension with an upper bound,
// so a hostile spec cannot smuggle in an overflowing allocation size.
func parseDim(s string) (int, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", s)
	}
	if v < 0 || v > maxSlicePages {
		return 0, fmt.Errorf("%d out of range [0, %d]", v, maxSlicePages)
	}
	return int(v), nil
}

// parseQuota parses one non-negative, finite quota parameter.
func parseQuota(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a number", s)
	}
	if v < 0 || v != v || v > float64(maxSlicePages) {
		return 0, fmt.Errorf("%v out of range", v)
	}
	return v, nil
}
