package tenant

import (
	"errors"
	"sync"

	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// Tenant is one cryptographic domain over the shared pool. All
// addresses are pool-global home addresses; the tenant refuses anything
// outside its slice with ErrTenantDenied before a single engine or
// backing byte is touched, then translates in-slice addresses to its
// private engine, which runs with tenant-derived keys over the tenant's
// backing window.
//
// Lock order: state -> mu -> the engine's internal locks. state guards
// the engine pointer (held shared across every delegated op, exclusively
// only while Pool.RecoverTenant swaps in a recovered engine); mu guards
// the admission bucket and the op counters.
type Tenant struct {
	id       string
	domain   string
	basePage int
	pages    int
	frames   int
	base     uint64 // slice start, pool-global bytes
	size     uint64 // slice length in bytes
	shards   int
	queueCap int
	memCfg   securemem.Config

	state sync.RWMutex
	eng   *securemem.Concurrent

	mu     sync.Mutex
	bucket quotaBucket
	ops    stats.TenantOps
}

// quotaBucket is the tenant's deterministic admission quota: a token
// bucket clocked by op attempts rather than wall time (the simulation
// core is wall-clock-free), gaining rate tokens per attempt up to
// burst. A storm of attempts therefore drains to a fixed duty cycle of
// rate admitted ops per attempt — deterministic for a given op sequence.
type quotaBucket struct {
	enabled     bool
	rate, burst float64
	tokens      float64
}

func newQuotaBucket(rate, burst float64) quotaBucket {
	return quotaBucket{enabled: rate > 0, rate: rate, burst: burst, tokens: burst}
}

// take advances the bucket one attempt-tick and reports admission.
func (b *quotaBucket) take() bool {
	if !b.enabled {
		return true
	}
	b.tokens += b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// ID returns the tenant identifier.
func (t *Tenant) ID() string {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.id
}

// Domain returns a short fingerprint of the tenant's key domain.
// Distinct tenants always report distinct domains; the underlying key
// material is never exposed.
func (t *Tenant) Domain() string {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.domain
}

// Base returns the slice's first pool-global byte address.
func (t *Tenant) Base() securemem.HomeAddr {
	t.state.RLock()
	defer t.state.RUnlock()
	return securemem.HomeAddr(t.base)
}

// Size returns the slice length in bytes.
func (t *Tenant) Size() uint64 {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.size
}

// Pages returns the slice's home size in pages.
func (t *Tenant) Pages() int {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.pages
}

// Frames returns the tenant's device-frame quota.
func (t *Tenant) Frames() int {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.frames
}

// admit runs the isolation and quota gates for an n-byte access at
// pool-global addr and returns the slice-local engine address. Denials
// are counted and typed; nothing downstream of this gate sees an
// out-of-slice address. Callers hold state shared (mu nests inside).
func (t *Tenant) admit(addr securemem.HomeAddr, n int, write bool) (securemem.HomeAddr, error) {
	a := uint64(addr)
	t.mu.Lock()
	defer t.mu.Unlock()
	// Overflow-safe slice containment: [a, a+n) within [base, base+size).
	if a < t.base || a-t.base > t.size || uint64(n) > t.size-(a-t.base) {
		t.ops.Denied++
		return 0, ErrTenantDenied
	}
	if !t.bucket.take() {
		t.ops.Quota++
		return 0, ErrQuota
	}
	if write {
		t.ops.Writes++
	} else {
		t.ops.Reads++
	}
	return securemem.HomeAddr(a - t.base), nil
}

// note classifies a completed engine op's failure into the tenant
// counters. Callers hold state shared.
func (t *Tenant) note(err error) {
	if err == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case isIntegrity(err):
		t.ops.Integrity++
	case isFault(err):
		t.ops.Faults++
	}
}

// Closed reports whether the tenant was retired by Pool.DestroyTenant.
func (t *Tenant) Closed() bool {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.eng == nil
}

// Read reads len(buf) bytes at pool-global addr from the tenant's
// domain. Out-of-slice ranges fail with ErrTenantDenied and leave buf
// untouched; quota exhaustion fails with ErrQuota; a destroyed tenant
// fails with ErrTenantClosed.
func (t *Tenant) Read(addr securemem.HomeAddr, buf []byte) error {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return ErrTenantClosed
	}
	local, err := t.admit(addr, len(buf), false)
	if err != nil {
		return err
	}
	err = t.eng.Read(local, buf)
	t.note(err)
	return err
}

// Write writes data at pool-global addr into the tenant's domain, with
// the same gate as Read.
func (t *Tenant) Write(addr securemem.HomeAddr, data []byte) error {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return ErrTenantClosed
	}
	local, err := t.admit(addr, len(data), true)
	if err != nil {
		return err
	}
	err = t.eng.Write(local, data)
	t.note(err)
	return err
}

// Checkpoint commits the tenant's own epoch to its own journal; sibling
// epochs are untouched. The checkpoint itself is not quota-gated — an
// operator durability action must not be starved by a tenant's traffic
// budget.
func (t *Tenant) Checkpoint(j *crash.Journal) (securemem.TrustedRoot, error) {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return securemem.TrustedRoot{}, ErrTenantClosed
	}
	root, err := t.eng.Checkpoint(j)
	t.mu.Lock()
	if err == nil {
		t.ops.Checkpoints++
	}
	t.mu.Unlock()
	t.note(err)
	return root, err
}

// FullCheckpoint commits one epoch carrying the tenant's whole home
// slice, making the journal self-contained from that epoch on — the
// bootstrap round of a live migration's sync stream.
func (t *Tenant) FullCheckpoint(j *crash.Journal) (securemem.TrustedRoot, error) {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return securemem.TrustedRoot{}, ErrTenantClosed
	}
	root, err := t.eng.FullCheckpoint(j)
	t.mu.Lock()
	if err == nil {
		t.ops.Checkpoints++
	}
	t.mu.Unlock()
	t.note(err)
	return root, err
}

// Epoch returns the tenant's checkpoint epoch (0 once destroyed).
func (t *Tenant) Epoch() uint64 {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return 0
	}
	return t.eng.Epoch()
}

// Flush evicts every resident page in the tenant's domain.
func (t *Tenant) Flush() error {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return ErrTenantClosed
	}
	err := t.eng.Flush()
	t.note(err)
	return err
}

// QueuedWritebacks reports the tenant's parked dirty writebacks.
func (t *Tenant) QueuedWritebacks() int {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return 0
	}
	return t.eng.QueuedWritebacks()
}

// DrainWritebacks drains the tenant's parked writebacks.
func (t *Tenant) DrainWritebacks() (int, error) {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return 0, ErrTenantClosed
	}
	n, err := t.eng.DrainWritebacks()
	t.note(err)
	return n, err
}

// AttachFaults arms a fault injector on this tenant's engine only; a
// destroyed tenant has no engine to arm and ignores the call.
func (t *Tenant) AttachFaults(inj fault.Injector, policy securemem.RetryPolicy, clock *sim.Engine) {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return
	}
	t.eng.AttachFaults(inj, policy, clock)
}

// AttachLink arms a link model on this tenant's engine only, using the
// pool's per-tenant writeback queue bound.
func (t *Tenant) AttachLink(l *link.Link, clock *sim.Engine) {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return
	}
	t.eng.AttachLink(l, clock, t.queueCap)
}

// ForceLinkUp is the operator link reset for this tenant's engine.
func (t *Tenant) ForceLinkUp() {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return
	}
	t.eng.ForceLinkUp()
}

// StateDigest returns the tenant's quiesced state digest — the oracle
// used to prove a sibling's crash left this tenant byte-identical. A
// destroyed tenant digests to all-zero.
func (t *Tenant) StateDigest() [32]byte {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return [32]byte{}
	}
	return t.eng.StateDigest()
}

// Engine returns the tenant's engine (nil once destroyed). The engine
// speaks slice-local addresses and bypasses the tenant's containment
// and quota gates, so it must only front trusted surfaces — a
// serve.Server multiplexing this tenant's own traffic, or a migration
// cutover swapping service from a source engine to a destination
// engine. Hostile-facing paths go through Read/Write.
func (t *Tenant) Engine() *securemem.Concurrent {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.eng
}

// MigrationKey derives the tenant's migration transport key: a secret
// bound to the tenant's MAC key domain, equal on any pool that derives
// the same tenant from the same masters — which is exactly the
// precondition for moving its ciphertext verbatim. The attested
// migration stream MACs every record under this key, so a transport
// endpoint that cannot produce it can neither impersonate a source nor
// accept as a destination.
func (t *Tenant) MigrationKey() ([]byte, error) {
	t.state.RLock()
	defer t.state.RUnlock()
	if t.eng == nil {
		return nil, ErrTenantClosed
	}
	return migrationKey(t.memCfg.MACKey, t.id), nil
}

// Stats returns a snapshot of the tenant's op counters.
func (t *Tenant) Stats() stats.TenantOps {
	t.state.RLock()
	defer t.state.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	ops := t.ops
	ops.Name = t.id
	return ops
}

// isIntegrity reports whether err is a cryptographic verification
// refusal (tampered, spliced, or replayed data detected).
func isIntegrity(err error) bool {
	return errors.Is(err, securemem.ErrIntegrity) || errors.Is(err, securemem.ErrFreshness)
}

// isFault reports whether err is a typed media/link refusal.
func isFault(err error) bool {
	return errors.Is(err, securemem.ErrTransient) ||
		errors.Is(err, securemem.ErrPoison) ||
		errors.Is(err, securemem.ErrLinkDown) ||
		errors.Is(err, securemem.ErrDegraded) ||
		errors.Is(err, securemem.ErrQueueFull) ||
		errors.Is(err, securemem.ErrWritebacksPending)
}
