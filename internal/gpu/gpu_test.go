package gpu

import (
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/trace"
)

func testGPUCfg() config.GPU {
	return config.GPU{
		NumSMs: 2, SMsPerGPC: 2, WarpsPerSM: 2, MaxOutstanding: 4, NonMemIPC: 1,
	}
}

func makeStreams(t *testing.T, cfg config.GPU, accessesPerSM int, writeFrac float64) []Stream {
	t.Helper()
	p := trace.Params{
		Name: "t", FootprintBytes: 16 * 4096, PageCoverage: 1.0, Rereference: 1,
		WriteFraction: writeFrac, ComputePerMem: 3, Pattern: trace.Sequential, Passes: 4, Seed: 3,
	}
	geo := trace.Geometry{SectorSize: 32, ChunkSize: 256, PageSize: 4096}
	var out []Stream
	for i := 0; i < cfg.NumSMs; i++ {
		st, err := p.NewStream(geo, i, cfg.NumSMs, accessesPerSM)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}

// immediateIssuer completes every access after a fixed delay.
func immediateIssuer(eng *sim.Engine, delay sim.Cycle) (Issuer, *int) {
	count := 0
	return func(gpc int, addr securemem.HomeAddr, write bool, done func()) {
		count++
		eng.After(delay, done)
	}, &count
}

func TestGPURunsToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testGPUCfg()
	streams := makeStreams(t, cfg, 50, 0.3)
	issuer, issued := immediateIssuer(eng, 10)
	g := New(eng, cfg, streams, issuer)
	finished := false
	g.Start(func() { finished = true })
	eng.Run(0)
	if !finished || !g.Done() {
		t.Fatal("GPU never finished")
	}
	if *issued != 100 {
		t.Errorf("issued %d accesses, want 100", *issued)
	}
	if g.MemRequests() != 100 {
		t.Errorf("MemRequests = %d, want 100", g.MemRequests())
	}
	// Each access retires computePerMem+1 = 4 instructions.
	if g.Instructions() != 400 {
		t.Errorf("Instructions = %d, want 400", g.Instructions())
	}
	if g.FinishCycle() == 0 {
		t.Error("finish cycle zero")
	}
}

func TestIssueBandwidthBoundsIPC(t *testing.T) {
	// With instant memory, runtime is bounded below by instructions /
	// (SMs × NonMemIPC).
	eng := sim.NewEngine()
	cfg := testGPUCfg()
	streams := makeStreams(t, cfg, 100, 0)
	issuer, _ := immediateIssuer(eng, 0)
	g := New(eng, cfg, streams, issuer)
	g.Start(nil)
	eng.Run(0)
	minCycles := g.Instructions() / uint64(cfg.NumSMs*cfg.NonMemIPC)
	if uint64(g.FinishCycle()) < minCycles {
		t.Errorf("finished in %d cycles, below issue bound %d", g.FinishCycle(), minCycles)
	}
	ipc := float64(g.Instructions()) / float64(g.FinishCycle())
	if ipc > float64(cfg.NumSMs*cfg.NonMemIPC)+0.01 {
		t.Errorf("IPC %f exceeds issue bandwidth %d", ipc, cfg.NumSMs*cfg.NonMemIPC)
	}
}

func TestMemoryLatencyStallsLanes(t *testing.T) {
	// Same work with slower memory must take longer.
	run := func(delay sim.Cycle) sim.Cycle {
		eng := sim.NewEngine()
		cfg := testGPUCfg()
		streams := makeStreams(t, cfg, 50, 0) // all reads: lanes block
		issuer, _ := immediateIssuer(eng, delay)
		g := New(eng, cfg, streams, issuer)
		g.Start(nil)
		eng.Run(0)
		return g.FinishCycle()
	}
	fast, slow := run(1), run(500)
	if slow <= fast {
		t.Errorf("slow memory (%d) not slower than fast (%d)", slow, fast)
	}
}

func TestMaxOutstandingRespected(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testGPUCfg()
	cfg.MaxOutstanding = 2
	cfg.WarpsPerSM = 8                      // more lanes than slots
	streams := makeStreams(t, cfg, 40, 1.0) // all writes: posted, slot-bound
	inFlight, maxInFlight := 0, 0
	issuer := func(gpc int, addr securemem.HomeAddr, write bool, done func()) {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		eng.After(20, func() {
			inFlight--
			done()
		})
	}
	g := New(eng, cfg, streams, issuer)
	g.Start(nil)
	eng.Run(0)
	if !g.Done() {
		t.Fatal("did not finish")
	}
	// Per SM at most 2 outstanding, 2 SMs -> at most 4 in flight.
	if maxInFlight > 4 {
		t.Errorf("max in flight = %d, want <= 4", maxInFlight)
	}
}

func TestGPCAssignment(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testGPUCfg()
	cfg.NumSMs = 4
	cfg.SMsPerGPC = 2
	streams := makeStreams(t, cfg, 10, 0)
	gpcs := map[int]bool{}
	issuer := func(gpc int, addr securemem.HomeAddr, write bool, done func()) {
		gpcs[gpc] = true
		eng.After(1, done)
	}
	g := New(eng, cfg, streams, issuer)
	g.Start(nil)
	eng.Run(0)
	if len(gpcs) != 2 || !gpcs[0] || !gpcs[1] {
		t.Errorf("GPCs seen = %v, want {0,1}", gpcs)
	}
}

func TestEmptyGPU(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, testGPUCfg(), nil, func(int, securemem.HomeAddr, bool, func()) {})
	fired := false
	g.Start(func() { fired = true })
	if !fired || !g.Done() {
		t.Error("empty GPU did not finish immediately")
	}
}

func TestStartTwicePanics(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, testGPUCfg(), nil, func(int, securemem.HomeAddr, bool, func()) {})
	g.Start(nil)
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	g.Start(nil)
}
