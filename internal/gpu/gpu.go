// Package gpu models the compute side of the simulated system: streaming
// multiprocessors that turn workload streams into timed memory requests.
//
// Each SM owns one instruction issue pipe (a bandwidth server retiring
// NonMemIPC instructions per cycle) shared by its warp lanes. A lane
// repeatedly retires its compute batch, then issues the next memory
// access. Loads block the lane until the reply returns; stores are posted
// but hold an outstanding-request slot so a store-heavy lane cannot run
// unboundedly ahead of the memory system. Instructions retired and the
// finish cycle give the IPC the experiments report.
package gpu

import (
	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/trace"
)

// Issuer sends one memory access into the memory system and calls done at
// completion time.
type Issuer func(gpc int, addr securemem.HomeAddr, write bool, done func())

// Stream is the access source an SM executes: either a synthetic
// generator (*trace.Stream) or a replayed file (*trace.FileStream).
type Stream interface {
	Next() (trace.Access, bool)
	ComputePerMem() int
}

// GPU is the collection of SMs executing one workload.
type GPU struct {
	eng    *sim.Engine
	cfg    config.GPU
	issuer Issuer

	sms      []*sm
	active   int // SMs still executing
	instrs   uint64
	memReqs  uint64
	finish   sim.Cycle
	onFinish func()
	started  bool
}

type sm struct {
	g           *GPU
	id, gpc     int
	issue       *sim.Server
	stream      Stream
	computeCost uint64

	lanes       int // live lanes
	outstanding int
	slotWaiters []func()
	exhausted   bool
}

// New builds a GPU whose SM i executes streams[i]. The issuer delivers
// memory accesses to the memory system.
func New(eng *sim.Engine, cfg config.GPU, streams []Stream, issuer Issuer) *GPU {
	g := &GPU{eng: eng, cfg: cfg, issuer: issuer}
	for i, st := range streams {
		g.sms = append(g.sms, &sm{
			g:           g,
			id:          i,
			gpc:         i / cfg.SMsPerGPC,
			issue:       sim.NewServer(eng, 1, uint64(cfg.NonMemIPC), 0),
			stream:      st,
			computeCost: uint64(st.ComputePerMem() + 1),
		})
	}
	return g
}

// Start launches every SM at the current simulation time. onFinish runs
// once when the last SM drains. Start may be called once.
func (g *GPU) Start(onFinish func()) {
	if g.started {
		panic("gpu: Start called twice")
	}
	g.started = true
	g.onFinish = onFinish
	g.active = len(g.sms)
	if g.active == 0 {
		g.finish = g.eng.Now()
		if onFinish != nil {
			onFinish()
		}
		return
	}
	for _, s := range g.sms {
		s.lanes = g.cfg.WarpsPerSM
		for l := 0; l < g.cfg.WarpsPerSM; l++ {
			s.laneStep()
		}
	}
}

// Instructions returns the instructions retired so far.
func (g *GPU) Instructions() uint64 { return g.instrs }

// MemRequests returns the memory accesses issued so far.
func (g *GPU) MemRequests() uint64 { return g.memReqs }

// FinishCycle returns the cycle at which the last SM drained (valid after
// onFinish has run).
func (g *GPU) FinishCycle() sim.Cycle { return g.finish }

// Done reports whether all SMs have drained.
func (g *GPU) Done() bool { return g.started && g.active == 0 }

// laneStep advances one warp lane: retire the compute batch plus the
// memory instruction through the issue pipe, then perform the access.
func (s *sm) laneStep() {
	acc, ok := s.stream.Next()
	if !ok {
		s.laneDone()
		return
	}
	s.issue.Submit(s.computeCost, func() {
		s.g.instrs += s.computeCost
		s.acquireSlot(func() {
			s.g.memReqs++
			write := acc.Write
			s.g.issuer(s.gpc, securemem.HomeAddr(acc.Addr), write, func() {
				s.releaseSlot()
				if !write {
					s.laneStep()
				}
			})
			if write {
				// Posted store: the lane proceeds without waiting.
				s.laneStep()
			}
		})
	})
}

func (s *sm) acquireSlot(fn func()) {
	if s.outstanding < s.g.cfg.MaxOutstanding {
		s.outstanding++
		fn()
		return
	}
	s.slotWaiters = append(s.slotWaiters, fn)
}

func (s *sm) releaseSlot() {
	if len(s.slotWaiters) > 0 {
		fn := s.slotWaiters[0]
		s.slotWaiters = s.slotWaiters[1:]
		fn()
		return
	}
	s.outstanding--
	s.maybeFinish()
}

func (s *sm) laneDone() {
	s.lanes--
	s.exhausted = s.lanes == 0
	s.maybeFinish()
}

func (s *sm) maybeFinish() {
	if !s.exhausted || s.outstanding != 0 || s.lanes != 0 {
		return
	}
	s.exhausted = false // fire once
	s.g.active--
	if s.g.active == 0 {
		s.g.finish = s.g.eng.Now()
		if s.g.onFinish != nil {
			s.g.onFinish()
		}
	}
}
