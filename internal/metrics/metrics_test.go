package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	g, err := Geomean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-2) > 1e-12 {
		t.Errorf("Geomean(1,4) = %v, want 2", g)
	}
	g, err = Geomean([]float64{2, 2, 2})
	if err != nil || g != 2 {
		t.Errorf("Geomean(2,2,2) = %v, %v", g, err)
	}
}

func TestGeomeanErrors(t *testing.T) {
	if _, err := Geomean(nil); err == nil {
		t.Error("Geomean(nil) should error")
	}
	if _, err := Geomean([]float64{1, 0}); err == nil {
		t.Error("Geomean with zero should error")
	}
	if _, err := Geomean([]float64{1, -2}); err == nil {
		t.Error("Geomean with negative should error")
	}
}

func TestMustGeomeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGeomean(nil) did not panic")
		}
	}()
	MustGeomean(nil)
}

func TestGeomeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		g := MustGeomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	// Property: geomean(k*xs) = k*geomean(xs).
	f := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := float64(kRaw%9) + 1
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%100) + 1
			scaled[i] = xs[i] * k
		}
		a := MustGeomean(xs) * k
		b := MustGeomean(scaled)
		return math.Abs(a-b) < 1e-6*math.Abs(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v, err := Normalize(3, 2)
	if err != nil || v != 1.5 {
		t.Errorf("Normalize(3,2) = %v, %v", v, err)
	}
	if _, err := Normalize(1, 0); err == nil {
		t.Error("Normalize by zero should error")
	}
}

func TestImprovementPct(t *testing.T) {
	if got := ImprovementPct(1.2994); math.Abs(got-29.94) > 1e-9 {
		t.Errorf("ImprovementPct(1.2994) = %v, want 29.94", got)
	}
	if got := ImprovementPct(1); got != 0 {
		t.Errorf("ImprovementPct(1) = %v, want 0", got)
	}
	if got := ImprovementPct(0.5); got != -50 {
		t.Errorf("ImprovementPct(0.5) = %v, want -50", got)
	}
}

func TestAvailability(t *testing.T) {
	if got := Availability(0, 0); got != 1 {
		t.Errorf("Availability(0, 0) = %v, want 1 (nothing was unavailable)", got)
	}
	if got := Availability(99, 1); got != 0.99 {
		t.Errorf("Availability(99, 1) = %v, want 0.99", got)
	}
	if got := Availability(0, 5); got != 0 {
		t.Errorf("Availability(0, 5) = %v, want 0", got)
	}
}

func TestPerMillion(t *testing.T) {
	if got := PerMillion(3, 0); got != 0 {
		t.Errorf("PerMillion(3, 0) = %v, want 0", got)
	}
	if got := PerMillion(5, 1_000_000); got != 5 {
		t.Errorf("PerMillion(5, 1e6) = %v, want 5", got)
	}
	if got := PerMillion(1, 2_000_000); got != 0.5 {
		t.Errorf("PerMillion(1, 2e6) = %v, want 0.5", got)
	}
}

func TestPer(t *testing.T) {
	if got := Per(3, 0); got != 0 {
		t.Errorf("Per(3, 0) = %v, want 0", got)
	}
	if got := Per(6, 4); got != 1.5 {
		t.Errorf("Per(6, 4) = %v, want 1.5", got)
	}
	if got := Per(0, 9); got != 0 {
		t.Errorf("Per(0, 9) = %v, want 0", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v, want 2", Mean(xs))
	}
	if Min(xs) != 1 {
		t.Errorf("Min = %v, want 1", Min(xs))
	}
	if Max(xs) != 3 {
		t.Errorf("Max = %v, want 3", Max(xs))
	}
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) = %v, want 0", Mean(nil))
	}
}
