// Package metrics provides the aggregation helpers the paper's methodology
// uses: normalisation against a reference run and geometric means across
// workloads.
package metrics

import (
	"errors"
	"math"
)

// Geomean returns the geometric mean of xs. It returns an error when xs is
// empty or contains a non-positive value (geometric means are undefined
// there, and a silent zero would corrupt a result table).
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("metrics: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("metrics: geomean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeomean is Geomean for call sites with statically valid inputs.
func MustGeomean(xs []float64) float64 {
	g, err := Geomean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Normalize returns value/reference, guarding the zero reference.
func Normalize(value, reference float64) (float64, error) {
	if reference == 0 {
		return 0, errors.New("metrics: normalise against zero reference")
	}
	return value / reference, nil
}

// ImprovementPct converts a ratio new/old into a percentage improvement of
// new over old: 1.30 -> +30%.
func ImprovementPct(ratio float64) float64 { return (ratio - 1) * 100 }

// Availability returns the fraction of accesses that succeeded,
// ok/(ok+failed). With no accesses at all there is nothing unavailable,
// so it returns 1.
func Availability(ok, failed uint64) float64 {
	if ok+failed == 0 {
		return 1
	}
	return float64(ok) / float64(ok+failed)
}

// PerMillion scales an event count against a total into events per
// million, the usual unit for fault and error rates (0 when total is 0).
func PerMillion(events, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(events) / float64(total) * 1e6
}

// Per returns the zero-guarded ratio n/d for per-unit counter figures —
// journal bytes per checkpoint epoch, retries per fault, and the like (0
// when d is 0).
func Per(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
