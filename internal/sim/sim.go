// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a future-event list ordered by (time, sequence).
// Components schedule callbacks at absolute or relative cycle times; the
// engine dispatches them in order. Ties are broken by insertion order so a
// run is fully reproducible.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a scheduled callback.
type Event struct {
	when Cycle
	seq  uint64
	fn   func()

	index int // heap index, -1 when not queued
}

// When returns the cycle at which the event fires.
func (e *Event) When() Cycle { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute cycle when. Scheduling in the past (or
// at the current cycle) runs the callback at the current cycle, after all
// already-queued events for this cycle. It returns the event so it can be
// cancelled.
func (e *Engine) At(when Cycle, fn func()) *Event {
	if when < e.now {
		when = e.now
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was cancelled is a no-op. It reports whether the event was removed.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(e.events) || e.events[ev.index] != ev {
		return false
	}
	heap.Remove(&e.events, ev.index)
	return true
}

// Step dispatches the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run dispatches events until the queue drains or the time limit is
// exceeded. A limit of 0 means no limit. It returns the cycle at which the
// run stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	for len(e.events) > 0 {
		if limit != 0 && e.events[0].when > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// Advance moves simulated time forward by d cycles, dispatching any events
// that fall due in the crossed interval, and returns the new current time.
// Components that consume time without scheduling callbacks (e.g. a memory
// controller stalling on a link retry backoff) use this to charge latency
// to the clock.
func (e *Engine) Advance(d Cycle) Cycle {
	if d == 0 {
		return e.now
	}
	target := e.now + d
	for len(e.events) > 0 && e.events[0].when <= target {
		e.Step()
	}
	e.now = target
	return e.now
}

// RunUntil dispatches events while cond() is true and events remain, up to
// the optional time limit (0 = none). It returns the stop cycle.
func (e *Engine) RunUntil(limit Cycle, cond func() bool) Cycle {
	for cond() && len(e.events) > 0 {
		if limit != 0 && e.events[0].when > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}
