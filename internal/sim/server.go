package sim

// Server models a work-conserving FIFO resource with a fixed service rate,
// such as a memory channel or a link. Work is submitted in abstract units
// (typically bytes); each unit takes cyclesPerUnit cycles of service. A
// submission completes after its queueing delay plus its own service time
// plus a fixed pipeline latency.
//
// Server is the single queueing abstraction shared by the DRAM channel and
// CXL link models; contention effects arise naturally from the FIFO.
type Server struct {
	eng *Engine

	// cyclesPerUnitNum/cyclesPerUnitDen express the service time per unit
	// as a rational so bandwidth ratios like 1/16th of a channel can be
	// modelled without floating-point drift.
	num, den uint64

	latency Cycle // fixed latency added to every completion

	// freeAt is the cycle at which the server finishes all queued work.
	freeAt Cycle

	// accumulated service residue (numerator units) for rational rates.
	residue uint64

	busyCycles Cycle // total cycles spent serving (for utilisation)
	unitsDone  uint64
}

// NewServer creates a server attached to an engine. num/den is the number of
// cycles needed to serve one unit (e.g. num=1, den=4 means 4 units per
// cycle). latency is a fixed pipeline delay added to each completion.
func NewServer(eng *Engine, num, den uint64, latency Cycle) *Server {
	if num == 0 || den == 0 {
		panic("sim: server rate must be positive")
	}
	return &Server{eng: eng, num: num, den: den, latency: latency}
}

// Submit enqueues units of work and schedules done (may be nil) when the
// work has been fully served and the fixed latency elapsed. It returns the
// completion cycle.
func (s *Server) Submit(units uint64, done func()) Cycle {
	now := s.eng.Now()
	if s.freeAt < now {
		// The server went idle. The residue — fractional service already
		// submitted but not yet billed a whole cycle — carries over to the
		// next busy period, so busyCycles converges to the exact rational
		// total instead of silently dropping up to (den-1)/den cycles per
		// idle gap.
		s.freeAt = now
	}
	// service = floor((units*num + residue) / den), remainder carried.
	total := units*s.num + s.residue
	service := total / s.den
	s.residue = total % s.den
	start := s.freeAt
	s.freeAt = start + Cycle(service)
	s.busyCycles += Cycle(service)
	s.unitsDone += units
	completeAt := s.freeAt + s.latency
	if done != nil {
		s.eng.At(completeAt, done)
	}
	return completeAt
}

// QueueDelay returns how many cycles a new submission would wait before
// service begins.
func (s *Server) QueueDelay() Cycle {
	now := s.eng.Now()
	if s.freeAt <= now {
		return 0
	}
	return s.freeAt - now
}

// BusyCycles returns the total cycles this server spent actively serving.
func (s *Server) BusyCycles() Cycle { return s.busyCycles }

// UnitsServed returns the total units submitted so far.
func (s *Server) UnitsServed() uint64 { return s.unitsDone }

// Utilization returns busy cycles divided by the elapsed cycles (0..1).
func (s *Server) Utilization() float64 {
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	busy := s.busyCycles
	if busy > now {
		busy = now
	}
	return float64(busy) / float64(now)
}
