package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same cycle: FIFO by seq
	e.At(20, func() { order = append(order, 4) })
	e.Run(0)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %d, want 20", e.Now())
	}
	if e.Fired() != 4 {
		t.Errorf("Fired() = %d, want 4", e.Fired())
	}
}

func TestEngineSchedulePastClamped(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past: clamps to now
	})
	e.Run(0)
	if at != 100 {
		t.Errorf("past event fired at %d, want 100", at)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	e.At(1, func() {
		fired = append(fired, e.Now())
		e.After(9, func() { fired = append(fired, e.Now()) })
	})
	e.Run(0)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 10 {
		t.Errorf("fired = %v, want [1 10]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(5, func() { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for queued event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	e.Run(0)
	if ran {
		t.Error("cancelled event still fired")
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	stop := e.Run(100)
	if stop != 100 {
		t.Errorf("Run stopped at %d, want 100", stop)
	}
	if count != 10 {
		t.Errorf("fired %d ticks, want 10", count)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(1, tick)
	}
	e.After(1, tick)
	e.RunUntil(0, func() bool { return count < 7 })
	if count != 7 {
		t.Errorf("count = %d, want 7", count)
	}
}

func TestEngineAdvance(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	e.At(5, func() { fired = append(fired, e.Now()) })
	e.At(20, func() { fired = append(fired, e.Now()) })
	if got := e.Advance(0); got != 0 {
		t.Errorf("Advance(0) = %d, want 0", got)
	}
	if got := e.Advance(10); got != 10 {
		t.Errorf("Advance(10) = %d, want 10", got)
	}
	if len(fired) != 1 || fired[0] != 5 {
		t.Errorf("events fired during first advance = %v, want [5]", fired)
	}
	// Time moves even with an empty due window, and pending events survive.
	if got := e.Advance(5); got != 15 {
		t.Errorf("Advance to 15 = %d", got)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	if got := e.Advance(10); got != 25 {
		t.Errorf("Advance to 25 = %d", got)
	}
	if len(fired) != 2 || fired[1] != 20 {
		t.Errorf("fired = %v, want the cycle-20 event dispatched en route", fired)
	}
}

func TestEngineMonotonicTime(t *testing.T) {
	// Property: dispatch order never goes backwards in time, for any set of
	// scheduled delays.
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last Cycle
		ok := true
		for _, d := range delays {
			e.At(Cycle(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerSerialService(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2, 1, 0) // 2 cycles per unit, no latency
	var c1, c2 Cycle
	e.At(0, func() {
		c1 = s.Submit(3, nil) // serves [0,6)
		c2 = s.Submit(2, nil) // serves [6,10)
	})
	e.Run(0)
	if c1 != 6 {
		t.Errorf("first completion = %d, want 6", c1)
	}
	if c2 != 10 {
		t.Errorf("second completion = %d, want 10", c2)
	}
}

func TestServerLatencyAndIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1, 1, 100)
	var c1, c2 Cycle
	e.At(0, func() { c1 = s.Submit(4, nil) })
	e.At(50, func() { c2 = s.Submit(4, nil) }) // server idle since cycle 4
	e.Run(0)
	if c1 != 104 {
		t.Errorf("c1 = %d, want 104", c1)
	}
	if c2 != 154 { // starts at 50, serves 4, +100 latency
		t.Errorf("c2 = %d, want 154", c2)
	}
}

func TestServerRationalRate(t *testing.T) {
	// 1/4 cycle per unit: 4 units per cycle. 10 units -> ceil-free rational
	// accumulation: 10/4 = 2.5 cycles; residue carries to next submission.
	e := NewEngine()
	s := NewServer(e, 1, 4, 0)
	var c1, c2 Cycle
	e.At(0, func() {
		c1 = s.Submit(10, nil) // 10/4 = 2 cycles + residue 2
		c2 = s.Submit(10, nil) // (10+residue 2)/4 = 3 cycles exactly
	})
	e.Run(0)
	if c1 != 2 {
		t.Errorf("c1 = %d, want 2", c1)
	}
	if c2 != 5 { // total 20 units at 4/cycle = 5 cycles
		t.Errorf("c2 = %d, want 5", c2)
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1, 1, 0)
	e.At(0, func() { s.Submit(10, nil) })
	e.At(0, func() { e.At(20, func() {}) }) // extend sim to cycle 20
	e.Run(0)
	if got := s.Utilization(); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if s.UnitsServed() != 10 {
		t.Errorf("UnitsServed = %d, want 10", s.UnitsServed())
	}
}

func TestServerQueueDelay(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 3, 1, 0)
	var delay Cycle
	e.At(0, func() {
		s.Submit(5, nil) // busy until 15
		delay = s.QueueDelay()
	})
	e.Run(0)
	if delay != 15 {
		t.Errorf("QueueDelay = %d, want 15", delay)
	}
}

func TestServerBandwidthConservation(t *testing.T) {
	// Property: total busy cycles equal ceil-accumulated work regardless of
	// submission pattern.
	f := func(sizes []uint8) bool {
		e := NewEngine()
		s := NewServer(e, 3, 2, 7)
		var total uint64
		e.At(0, func() {
			for _, sz := range sizes {
				u := uint64(sz%32) + 1
				total += u
				s.Submit(u, nil)
			}
		})
		e.Run(0)
		want := total * 3 / 2 // residue may leave < 1 cycle unaccounted
		got := uint64(s.BusyCycles())
		return got == want || got == want-0 || (total*3)%2 != 0 && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerResidueBilledAcrossIdleGaps(t *testing.T) {
	// A 1/16-rate server (16 units per cycle) receiving one unit per
	// submission with idle gaps in between: each submission's fractional
	// service used to be discarded when the server went idle, leaving
	// busyCycles at zero forever. With the residue carried across idle
	// periods, 32 single-unit submissions bill exactly 32/16 = 2 cycles.
	e := NewEngine()
	s := NewServer(e, 1, 16, 0)
	for i := 0; i < 32; i++ {
		e.At(Cycle(i*100), func() { s.Submit(1, nil) })
	}
	e.Run(0)
	if got := s.BusyCycles(); got != 2 {
		t.Errorf("BusyCycles = %d, want 2", got)
	}
	if got := s.UnitsServed(); got != 32 {
		t.Errorf("UnitsServed = %d, want 32", got)
	}
}

func TestServerResidueConservationAcrossIdle(t *testing.T) {
	// Property form: for any submission pattern with arbitrary idle gaps,
	// total busy cycles equal floor(total_units * num / den).
	e := NewEngine()
	s := NewServer(e, 3, 7, 5)
	var total uint64
	when := Cycle(0)
	for i := 0; i < 50; i++ {
		u := uint64(i%5 + 1)
		total += u
		e.At(when, func() { s.Submit(u, nil) })
		when += Cycle(i%40 + 1) // mixes back-to-back and long-idle submissions
	}
	e.Run(0)
	if want := Cycle(total * 3 / 7); s.BusyCycles() != want {
		t.Errorf("BusyCycles = %d, want %d (total units %d)", s.BusyCycles(), want, total)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero Clock starts at %d", c.Now())
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 4000 {
		t.Fatalf("Clock.Now() = %d after 4x1000 advances, want 4000", got)
	}
	if got := c.Advance(5); got != 4005 {
		t.Fatalf("Advance returned %d, want 4005", got)
	}
}
