package sim

import "sync/atomic"

// Clock is a goroutine-safe monotonic cycle counter: the shared service
// clock for components that charge simulated time from many goroutines
// at once. Engine's future-event list is deliberately single-threaded
// (deterministic replay depends on its total event order), so concurrent
// layers — the traffic service, its admission buckets, per-request
// deadlines — advance a Clock instead: logical time moves only when work
// happens, never with the wall clock, and reads never race with
// advances. The zero value is ready to use and starts at cycle 0.
type Clock struct {
	now atomic.Uint64
}

// Now returns the current cycle.
func (c *Clock) Now() Cycle { return Cycle(c.now.Load()) }

// Advance moves the clock forward by d cycles and returns the new time.
func (c *Clock) Advance(d Cycle) Cycle { return Cycle(c.now.Add(uint64(d))) }
