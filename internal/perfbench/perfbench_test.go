package perfbench

import (
	"strings"
	"testing"

	"github.com/salus-sim/salus/internal/securemem"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{SchemaVersion: SnapshotSchemaVersion, Procs: 8}
	s.Results = []Result{
		{Name: CaseReadGlobal, NsPerOp: 4000},
		{Name: CaseReadSharded, NsPerOp: 1000},
		{Name: CaseMixedGlobal, NsPerOp: 4500},
		{Name: CaseMixedSharded, NsPerOp: 1500},
		{Name: CaseMAC, NsPerOp: 300, AllocsPerOp: 0},
		{Name: CaseVerifySession, NsPerOp: 280, AllocsPerOp: 0},
		{Name: CaseEncryptBatch, NsPerOp: 20000},
		{Name: CaseEncryptLoop, NsPerOp: 30000},
	}
	s.derive()
	return s
}

func TestSnapshotRoundTripAndDerive(t *testing.T) {
	s := sampleSnapshot()
	if s.Derived.ReadHeavySpeedup != 4.0 {
		t.Fatalf("ReadHeavySpeedup = %v, want 4", s.Derived.ReadHeavySpeedup)
	}
	if s.Derived.MixedSpeedup != 3.0 {
		t.Fatalf("MixedSpeedup = %v, want 3", s.Derived.MixedSpeedup)
	}
	if s.Derived.BatchEncryptSpeedup != 1.5 {
		t.Fatalf("BatchEncryptSpeedup = %v, want 1.5", s.Derived.BatchEncryptSpeedup)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Derived != s.Derived || len(back.Results) != len(s.Results) {
		t.Fatal("snapshot did not round-trip")
	}
	if _, err := Decode([]byte(`{"schema_version": 99}`)); err == nil {
		t.Fatal("wrong schema version accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompareGates(t *testing.T) {
	base := sampleSnapshot()
	opts := DefaultCompareOptions()

	if bad := Compare(base, sampleSnapshot(), opts); len(bad) != 0 {
		t.Fatalf("identical snapshots flagged: %v", bad)
	}

	// A collapsed sharded speedup must trip the floor even when raw
	// timings are within the slowdown budget.
	slow := sampleSnapshot()
	slow.Case(CaseReadSharded).NsPerOp = 4200
	slow.derive()
	bad := Compare(base, slow, opts)
	if len(bad) == 0 || !strings.Contains(strings.Join(bad, "\n"), "read-heavy") {
		t.Fatalf("lost sharding speedup not flagged: %v", bad)
	}

	// Raw per-case regression beyond the generous budget.
	creep := sampleSnapshot()
	creep.Case(CaseMAC).NsPerOp = 300 * 4
	creep.derive()
	bad = Compare(base, creep, opts)
	if len(bad) == 0 || !strings.Contains(strings.Join(bad, "\n"), CaseMAC) {
		t.Fatalf("4x MAC regression not flagged: %v", bad)
	}

	// New allocations on a crypto hot path.
	allocs := sampleSnapshot()
	allocs.Case(CaseVerifySession).AllocsPerOp = 2
	bad = Compare(base, allocs, opts)
	if len(bad) == 0 || !strings.Contains(strings.Join(bad, "\n"), "allocs") {
		t.Fatalf("crypto allocs not flagged: %v", bad)
	}

	// A dropped case must fail loudly, not silently shrink the gate.
	dropped := sampleSnapshot()
	dropped.Results = dropped.Results[:len(dropped.Results)-1]
	dropped.derive()
	bad = Compare(base, dropped, opts)
	if len(bad) == 0 || !strings.Contains(strings.Join(bad, "\n"), "missing") {
		t.Fatalf("dropped case not flagged: %v", bad)
	}
}

// TestCompareCrossEnvironment pins the cross-environment contract: a
// baseline measured on a different host (CPU count, Go version, ...)
// reports the mismatch via EnvMismatch, and Compare skips the raw ns/op
// slowdown checks — which are meaningless across hosts — while the
// within-run ratio and allocation gates keep gating.
func TestCompareCrossEnvironment(t *testing.T) {
	base := sampleSnapshot()
	opts := DefaultCompareOptions()

	if warn := EnvMismatch(base, sampleSnapshot()); len(warn) != 0 {
		t.Fatalf("identical environments flagged: %v", warn)
	}

	other := sampleSnapshot()
	other.NumCPU = base.NumCPU + 7
	other.GoVersion = "go9.99"
	warn := EnvMismatch(base, other)
	if len(warn) != 2 {
		t.Fatalf("EnvMismatch = %v, want num_cpu and go version diffs", warn)
	}

	// A 4x raw regression is NOT flagged across environments...
	other.Case(CaseMAC).NsPerOp = 300 * 4
	other.derive()
	if bad := Compare(base, other, opts); len(bad) != 0 {
		t.Fatalf("cross-env raw slowdown failed the gate: %v", bad)
	}
	// ...but a collapsed within-run ratio still is.
	other.Case(CaseReadSharded).NsPerOp = 4200
	other.derive()
	if bad := Compare(base, other, opts); len(bad) == 0 {
		t.Fatal("cross-env comparison skipped the ratio gates too")
	}
	// ...and so is a crypto allocation regression.
	allocs := sampleSnapshot()
	allocs.NumCPU = base.NumCPU + 7
	allocs.Case(CaseVerifySession).AllocsPerOp = 2
	if bad := Compare(base, allocs, opts); len(bad) == 0 {
		t.Fatal("cross-env comparison skipped the alloc gate")
	}
}

func TestNewTargetWarmsResidentSet(t *testing.T) {
	c, err := NewTarget(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() < 2 {
		t.Fatalf("default target not sharded: %d", c.Shards())
	}
	st := c.Stats()
	if st.PageMigrationsIn < BenchPages {
		t.Fatalf("warm-up migrated %d pages, want >= %d", st.PageMigrationsIn, BenchPages)
	}
	// Every benchmark page must now be resident: reads cause no further
	// migrations.
	buf := make([]byte, PayloadBytes)
	for p := 0; p < BenchPages; p++ {
		if err := c.Read(securemem.HomeAddr(p*4096), buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().PageMigrationsIn; got != st.PageMigrationsIn {
		t.Fatalf("resident reads still migrated: %d -> %d", st.PageMigrationsIn, got)
	}
}

// BenchmarkParallelRead/Mixed are the go-test entry points for the same
// workloads Collect records; run with -cpu to study scaling, e.g.
// go test -bench Parallel -cpu 1,2,4,8 ./internal/perfbench
func BenchmarkParallelRead(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"global", 1}, {"sharded", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			c, err := NewTarget(tc.shards)
			if err != nil {
				b.Fatal(err)
			}
			RunParallelWorkload(b, c, 0)
		})
	}
}

func BenchmarkParallelMixed(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"global", 1}, {"sharded", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			c, err := NewTarget(tc.shards)
			if err != nil {
				b.Fatal(err)
			}
			RunParallelWorkload(b, c, MixedWriteEvery)
		})
	}
}
