package perfbench

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
)

// SnapshotSchemaVersion identifies the snapshot layout; bench-compare
// refuses to diff snapshots from different schemas.
const SnapshotSchemaVersion = 1

// Result is one benchmark case of a snapshot.
type Result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Derived holds the headline ratios computed from the raw cases. They
// are within-run ratios, so they are far more stable across machines
// than the raw ns/op numbers.
type Derived struct {
	// ReadHeavySpeedup is global-mutex ns/op divided by sharded ns/op on
	// the read-heavy parallel workload: how much the sharded lock design
	// buys on the path the paper's read-dominated workloads stress.
	ReadHeavySpeedup float64 `json:"read_heavy_speedup"`
	// MixedSpeedup is the same ratio for the 3:1 read/write mix.
	MixedSpeedup float64 `json:"mixed_speedup"`
	// BatchEncryptSpeedup is per-sector-loop ns divided by batched ns
	// for one whole-page encryption.
	BatchEncryptSpeedup float64 `json:"batch_encrypt_speedup"`
}

// Snapshot is one recorded perf run (the payload of BENCH_perf.json).
type Snapshot struct {
	SchemaVersion int      `json:"schema_version"`
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	NumCPU        int      `json:"num_cpu"`
	Procs         int      `json:"gomaxprocs"`
	Results       []Result `json:"results"`
	Derived       Derived  `json:"derived"`
}

func (s *Snapshot) add(name string, r testing.BenchmarkResult) {
	res := Result{
		Name:        name,
		Ops:         r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	s.Results = append(s.Results, res)
}

// Case returns the named result, or nil.
func (s *Snapshot) Case(name string) *Result {
	for i := range s.Results {
		if s.Results[i].Name == name {
			return &s.Results[i]
		}
	}
	return nil
}

func (s *Snapshot) derive() {
	ratio := func(num, den string) float64 {
		n, d := s.Case(num), s.Case(den)
		if n == nil || d == nil || d.NsPerOp == 0 {
			return 0
		}
		return n.NsPerOp / d.NsPerOp
	}
	s.Derived.ReadHeavySpeedup = ratio(CaseReadGlobal, CaseReadSharded)
	s.Derived.MixedSpeedup = ratio(CaseMixedGlobal, CaseMixedSharded)
	s.Derived.BatchEncryptSpeedup = ratio(CaseEncryptLoop, CaseEncryptBatch)
}

// Encode renders the snapshot as indented JSON.
func (s *Snapshot) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses a snapshot and checks the schema version.
func Decode(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perfbench: bad snapshot: %w", err)
	}
	if s.SchemaVersion != SnapshotSchemaVersion {
		return nil, fmt.Errorf("perfbench: snapshot schema %d, want %d",
			s.SchemaVersion, SnapshotSchemaVersion)
	}
	return &s, nil
}

// CompareOptions sets the regression thresholds bench-compare enforces.
type CompareOptions struct {
	// MaxSlowdown bounds per-case ns/op drift: current may be at most
	// this factor slower than the baseline. Generous by design — raw
	// wall-clock numbers move with the machine; the ratios below are the
	// real trajectory gates.
	MaxSlowdown float64
	// MinReadHeavySpeedup is the floor for Derived.ReadHeavySpeedup.
	MinReadHeavySpeedup float64
	// MinMixedSpeedup is the floor for Derived.MixedSpeedup.
	MinMixedSpeedup float64
	// MinBatchEncryptSpeedup is the floor for Derived.BatchEncryptSpeedup.
	MinBatchEncryptSpeedup float64
	// MaxCryptoAllocs bounds allocs/op on every crypto/* case (the hot
	// MAC and pad paths are designed to be allocation-free).
	MaxCryptoAllocs int64
}

// DefaultCompareOptions are the thresholds `make bench-compare` runs
// with, chosen to hold on a single-core CI host where the sharded
// design can only win by contention avoidance (the gap widens to
// multi-x with real CPU parallelism; the gomaxprocs/num_cpu fields are
// recorded alongside so a snapshot is interpretable):
//
//   - The read-heavy floor sits under the ~1.05-1.2x a single-core host
//     measures (multi-x with real cores) but above the ~0.85x the ratio
//     falls to if multi-shard locking degenerates — e.g. lockRange
//     taking every shard on every access, or the wrapper regrowing a
//     global bottleneck.
//   - The mixed workload serialises on the shared integrity-tree mutex
//     during writes, so on one core its ratio hovers at parity; its
//     floor is a non-collapse guard, not a speedup claim.
//   - The batched-encrypt floor likewise guards "never slower than the
//     per-sector loop" with margin for single-core frequency drift;
//     most of the batch win on this host went into making both paths
//     allocation-free, which the alloc gate holds instead.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{
		MaxSlowdown:            2.5,
		MinReadHeavySpeedup:    0.98,
		MinMixedSpeedup:        0.9,
		MinBatchEncryptSpeedup: 0.95,
		MaxCryptoAllocs:        0,
	}
}

// EnvMismatch reports the measurement-environment differences between
// two snapshots: Go version, OS/arch, CPU count, and GOMAXPROCS. A
// non-empty result means raw wall-clock comparisons between them are
// apples to oranges — Compare downgrades those to the within-run ratio
// gates, and callers should surface the messages as warnings, never as
// failures.
func EnvMismatch(baseline, current *Snapshot) []string {
	var warn []string
	diff := func(field, b, c string) {
		if b != c {
			warn = append(warn, fmt.Sprintf("%s differs: baseline %s, current %s", field, b, c))
		}
	}
	diff("go version", baseline.GoVersion, current.GoVersion)
	diff("GOOS", baseline.GOOS, current.GOOS)
	diff("GOARCH", baseline.GOARCH, current.GOARCH)
	diff("num_cpu", fmt.Sprintf("%d", baseline.NumCPU), fmt.Sprintf("%d", current.NumCPU))
	diff("gomaxprocs", fmt.Sprintf("%d", baseline.Procs), fmt.Sprintf("%d", current.Procs))
	return warn
}

// Compare diffs current against baseline and returns one message per
// violated threshold (empty means the gate passes). Cases present in
// only one snapshot are reported: a silently dropped case would make
// the gate vacuous. When the two snapshots were measured in different
// environments (EnvMismatch), the raw ns/op slowdown checks are skipped
// — only the within-run ratios and allocation budgets, which are
// portable across hosts, still gate.
func Compare(baseline, current *Snapshot, o CompareOptions) []string {
	var bad []string
	crossEnv := len(EnvMismatch(baseline, current)) > 0
	for _, b := range baseline.Results {
		c := current.Case(b.Name)
		if c == nil {
			bad = append(bad, fmt.Sprintf("%s: case missing from current snapshot", b.Name))
			continue
		}
		if !crossEnv && o.MaxSlowdown > 0 && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*o.MaxSlowdown {
			bad = append(bad, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (over %.2fx budget)",
				b.Name, c.NsPerOp, b.NsPerOp, o.MaxSlowdown))
		}
	}
	for _, c := range current.Results {
		if baseline.Case(c.Name) == nil {
			bad = append(bad, fmt.Sprintf("%s: case missing from baseline snapshot", c.Name))
		}
	}
	for _, c := range current.Results {
		if len(c.Name) >= 7 && c.Name[:7] == "crypto/" && c.AllocsPerOp > o.MaxCryptoAllocs {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op, budget %d",
				c.Name, c.AllocsPerOp, o.MaxCryptoAllocs))
		}
	}
	d := current.Derived
	if d.ReadHeavySpeedup < o.MinReadHeavySpeedup {
		bad = append(bad, fmt.Sprintf("read-heavy sharded speedup %.2fx under floor %.2fx",
			d.ReadHeavySpeedup, o.MinReadHeavySpeedup))
	}
	if d.MixedSpeedup < o.MinMixedSpeedup {
		bad = append(bad, fmt.Sprintf("mixed sharded speedup %.2fx under floor %.2fx",
			d.MixedSpeedup, o.MinMixedSpeedup))
	}
	if d.BatchEncryptSpeedup < o.MinBatchEncryptSpeedup {
		bad = append(bad, fmt.Sprintf("batched encrypt speedup %.2fx under floor %.2fx",
			d.BatchEncryptSpeedup, o.MinBatchEncryptSpeedup))
	}
	sort.Strings(bad)
	return bad
}
