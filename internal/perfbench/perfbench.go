// Package perfbench measures the concurrency and crypto hot paths the
// sharded securemem.Concurrent design optimises, and records the results
// as machine-readable snapshots so CI can hold the perf trajectory: the
// sharded lock design must stay faster than a global mutex, and the
// per-sector crypto primitives must stay allocation-free.
//
// The parallel workloads run each worker against pages of its own shard
// (the favourable case the sharding exists for); the speedup reported is
// sharded-vs-global measured in the same process, same run, so
// machine-to-machine noise cancels out of the ratio.
package perfbench

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/security/cryptoeng"
	"github.com/salus-sim/salus/internal/security/maclib"
)

// Workload geometry. Pages 0..BenchPages-1 are written during warm-up so
// every benchmarked read hits a resident frame; with the default shard
// count each shard owns exactly BenchPages/DefaultShards of them.
const (
	// TotalPages sizes the home space of the benchmark target.
	TotalPages = 64
	// DevicePages sizes the device tier; it equals BenchPages so the
	// warmed working set is exactly resident.
	DevicePages = 32
	// BenchPages is the page working set every workload touches.
	BenchPages = 32
	// PayloadBytes is the per-operation transfer size (one sector).
	PayloadBytes = 32
	// MixedWriteEvery makes every Nth operation of the mixed workload a
	// write.
	MixedWriteEvery = 4
)

// NewTarget builds a Concurrent with the given shard count and warms
// pages 0..BenchPages-1 into the device tier.
func NewTarget(shards int) (*securemem.Concurrent, error) {
	c, err := securemem.NewConcurrent(securemem.Config{
		Geometry:    config.Default().Geometry,
		Model:       securemem.ModelSalus,
		TotalPages:  TotalPages,
		DevicePages: DevicePages,
		Shards:      shards,
	})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, PayloadBytes)
	for p := 0; p < BenchPages; p++ {
		buf[0] = byte(p)
		if err := c.Write(securemem.HomeAddr(p*4096), buf); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// RunParallelWorkload drives b.N operations across GOMAXPROCS workers.
// Worker w is confined to the pages of shard w % c.Shards(), so with a
// sharded target the workers contend only on the reader half of the
// wrapper lock, while a Shards=1 target funnels everyone through one
// mutex — the contrast the recorded speedup captures. writeEvery == 0
// means pure reads; otherwise every writeEvery-th operation is a write.
func RunParallelWorkload(b *testing.B, c *securemem.Concurrent, writeEvery int) {
	nsh := c.Shards()
	perShard := BenchPages / nsh
	if perShard == 0 {
		perShard = 1
	}
	var widCtr atomic.Int64
	b.SetBytes(PayloadBytes)
	// 8x GOMAXPROCS workers: a protected memory serves many client
	// streams, and sustained waiter pressure is what separates a global
	// mutex (every waiter queues behind every operation) from the sharded
	// design (waiters spread over nShards locks). It also keeps the
	// measured contrast stable on hosts where GOMAXPROCS exceeds the
	// physical core count.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		shard := int(widCtr.Add(1)-1) % nsh
		buf := make([]byte, PayloadBytes)
		i := 0
		for pb.Next() {
			page := shard + (i%perShard)*nsh
			off := (i % (4096 / PayloadBytes)) * PayloadBytes
			addr := securemem.HomeAddr(page*4096 + off)
			var err error
			if writeEvery > 0 && i%writeEvery == 0 {
				buf[0] = byte(i)
				err = c.Write(addr, buf)
			} else {
				err = c.Read(addr, buf)
			}
			if err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// benchEngine returns a deterministic crypto engine for the micro cases.
func benchEngine() *cryptoeng.Engine {
	aes := make([]byte, 16)
	mac := make([]byte, 32)
	for i := range aes {
		aes[i] = byte(i + 1)
	}
	for i := range mac {
		mac[i] = byte(0xA0 + i)
	}
	return cryptoeng.MustNew(aes, mac, maclib.MACBits)
}

// Case names recorded in snapshots. bench-compare matches on these, so
// they are part of the snapshot schema.
const (
	CaseReadSharded   = "concurrent/read-heavy/sharded"
	CaseReadGlobal    = "concurrent/read-heavy/global"
	CaseMixedSharded  = "concurrent/mixed/sharded"
	CaseMixedGlobal   = "concurrent/mixed/global"
	CaseMAC           = "crypto/mac"
	CaseVerifySession = "crypto/verify-mac-session"
	CaseEncryptBatch  = "crypto/encrypt-page-batched"
	CaseEncryptLoop   = "crypto/encrypt-page-sector-loop"
)

// CollectPasses is how many interleaved measurement passes Collect runs.
// The recorded value per case is the fastest pass: single-core hosts
// drift by ±15% with frequency scaling, and interleaving the case list
// cancels that drift out of the within-run ratios the gate keys on.
const CollectPasses = 3

// Collect runs every benchmark case at the given GOMAXPROCS and returns
// the snapshot. procs <= 0 keeps the current setting.
func Collect(procs int) (*Snapshot, error) {
	if procs > 0 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
	}

	// Environment fields are read at measurement time, after the
	// GOMAXPROCS override took effect: the snapshot records the world the
	// numbers were measured in (num_cpu 1 alongside gomaxprocs 8 means an
	// oversubscribed single-core host), not the world that was requested.
	snap := &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Procs:         runtime.GOMAXPROCS(0),
	}

	var failed error
	concurrentCase := func(name string, shards, writeEvery int) func(*testing.B) {
		return func(b *testing.B) {
			c, err := NewTarget(shards)
			if err != nil {
				if failed == nil {
					failed = fmt.Errorf("%s: %w", name, err)
				}
				b.Skip()
				return
			}
			RunParallelWorkload(b, c, writeEvery)
			if b.Failed() && failed == nil {
				failed = fmt.Errorf("%s: workload error under benchmark", name)
			}
		}
	}

	eng := benchEngine()
	ct := make([]byte, cryptoeng.SectorSize)
	mac, err := eng.MAC(ct, 0x1000, 7, 3)
	if err != nil {
		return nil, err
	}
	sess := eng.NewSession()
	const pageSectors = 4096 / cryptoeng.SectorSize
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	minors := make([]uint64, pageSectors)

	cases := []struct {
		name string
		fn   func(*testing.B)
	}{
		{CaseReadGlobal, concurrentCase(CaseReadGlobal, 1, 0)},
		{CaseReadSharded, concurrentCase(CaseReadSharded, 0, 0)},
		{CaseMixedGlobal, concurrentCase(CaseMixedGlobal, 1, MixedWriteEvery)},
		{CaseMixedSharded, concurrentCase(CaseMixedSharded, 0, MixedWriteEvery)},
		{CaseMAC, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.MAC(ct, 0x1000, 7, 3); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{CaseVerifySession, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !sess.VerifyMAC(ct, 0x1000, 7, 3, mac) {
					b.Fatal("verify failed")
				}
			}
		}},
		{CaseEncryptBatch, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(4096)
			for i := 0; i < b.N; i++ {
				if err := eng.EncryptSectors(dst, src, 0, 5, minors); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{CaseEncryptLoop, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(4096)
			for i := 0; i < b.N; i++ {
				for s := 0; s < pageSectors; s++ {
					off := s * cryptoeng.SectorSize
					if err := eng.EncryptSector(dst[off:off+cryptoeng.SectorSize],
						src[off:off+cryptoeng.SectorSize],
						uint64(off), 5, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}

	best := make(map[string]Result, len(cases))
	perPass := make(map[string][]float64, len(cases))
	for pass := 0; pass < CollectPasses; pass++ {
		for _, tc := range cases {
			r := testing.Benchmark(tc.fn)
			if failed != nil {
				return nil, failed
			}
			var tmp Snapshot
			tmp.add(tc.name, r)
			res := tmp.Results[0]
			perPass[tc.name] = append(perPass[tc.name], res.NsPerOp)
			prev, ok := best[tc.name]
			if !ok || res.NsPerOp < prev.NsPerOp {
				if ok && prev.AllocsPerOp > res.AllocsPerOp {
					// Keep the worst allocation count seen: the alloc gate
					// must not be weakened by a lucky pass.
					res.AllocsPerOp = prev.AllocsPerOp
					res.BytesPerOp = prev.BytesPerOp
				}
				best[tc.name] = res
			} else if res.AllocsPerOp > prev.AllocsPerOp {
				prev.AllocsPerOp = res.AllocsPerOp
				prev.BytesPerOp = res.BytesPerOp
				best[tc.name] = prev
			}
		}
	}
	for _, tc := range cases {
		snap.Results = append(snap.Results, best[tc.name])
	}

	// Derive the headline ratios from per-pass pairs, not the cross-pass
	// minima: the two sides of a ratio measured in the same pass see the
	// same machine state, and the median over passes shrugs off a single
	// outlier pass.
	snap.Derived.ReadHeavySpeedup = medianRatio(perPass[CaseReadGlobal], perPass[CaseReadSharded])
	snap.Derived.MixedSpeedup = medianRatio(perPass[CaseMixedGlobal], perPass[CaseMixedSharded])
	snap.Derived.BatchEncryptSpeedup = medianRatio(perPass[CaseEncryptLoop], perPass[CaseEncryptBatch])
	return snap, nil
}

// medianRatio returns the median of the pairwise num[i]/den[i] ratios.
func medianRatio(num, den []float64) float64 {
	n := len(num)
	if len(den) < n {
		n = len(den)
	}
	if n == 0 {
		return 0
	}
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if den[i] > 0 {
			ratios = append(ratios, num[i]/den[i])
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}
