package secsim

import (
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/cxlmem"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

func testCtx() (*Ctx, *stats.Run) {
	run := &stats.Run{}
	eng := sim.NewEngine()
	cfg := config.Default()
	cfg.Memory.DeviceChannels = 4
	device := dram.New(eng, 4, 32, 100, 256, &run.Traffic)
	cxl := cxlmem.New(eng, 32, 1, 300, &run.Traffic)
	return &Ctx{Eng: eng, Cfg: cfg, Device: device, CXL: cxl, Ops: &run.Ops}, run
}

func drain(ctx *Ctx) { ctx.Eng.Run(0) }

func TestChanLocal(t *testing.T) {
	ctx, _ := testCtx()
	// 4 channels, 256 B chunks: chunk i -> channel i%4, local dense.
	cases := []struct {
		addr    uint64
		channel int
		local   uint64
	}{
		{0, 0, 0},
		{100, 0, 100},
		{256, 1, 0},
		{256 + 5, 1, 5},
		{1024, 0, 256},
		{1024 + 256, 1, 256},
	}
	for _, c := range cases {
		ch, local := ctx.chanLocal(DevAddr(c.addr))
		if ch != c.channel || local != c.local {
			t.Errorf("chanLocal(%d) = (%d,%d), want (%d,%d)", c.addr, ch, local, c.channel, c.local)
		}
	}
}

func TestJoin(t *testing.T) {
	fired := 0
	j := join(3, func() { fired++ })
	j()
	j()
	if fired != 0 {
		t.Fatal("join fired early")
	}
	j()
	if fired != 1 {
		t.Fatalf("join fired %d times, want 1", fired)
	}
	// n == 0 fires immediately.
	immediate := 0
	join(0, func() { immediate++ })
	if immediate != 1 {
		t.Error("join(0) did not fire immediately")
	}
}

func TestMetaCacheFetchMissThenHit(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 2, 4, 16, 0, stats.Counter)
	var hits []bool
	ctx.Eng.At(0, func() {
		mc.Fetch(0, 0, func(hit bool) {
			hits = append(hits, hit)
			mc.Fetch(0, 0, func(hit bool) { hits = append(hits, hit) })
		})
	})
	drain(ctx)
	if len(hits) != 2 || hits[0] || !hits[1] {
		t.Fatalf("hits = %v, want [false true]", hits)
	}
	if got := run.Traffic.Bytes(stats.Device, stats.Counter); got != 32 {
		t.Errorf("counter traffic = %d, want 32", got)
	}
}

func TestMetaCacheMSHRMerge(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 2, 4, 16, 0, stats.Counter)
	done := 0
	ctx.Eng.At(0, func() {
		mc.Fetch(0, 0, func(bool) { done++ })
		mc.Fetch(0, 0, func(bool) { done++ }) // merges, no second read
	})
	drain(ctx)
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if got := run.Traffic.Bytes(stats.Device, stats.Counter); got != 32 {
		t.Errorf("traffic = %d, want 32 (merged miss)", got)
	}
}

func TestMetaCacheCXLSide(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 2, 4, 16, -1, stats.MAC)
	ctx.Eng.At(0, func() { mc.Fetch(64, 0, func(bool) {}) })
	drain(ctx)
	if got := run.Traffic.Bytes(stats.CXL, stats.MAC); got != 32 {
		t.Errorf("CXL MAC traffic = %d, want 32", got)
	}
	if run.Traffic.TierTotal(stats.Device) != 0 {
		t.Error("CXL-side cache touched device memory")
	}
}

func TestMetaCacheDirtyWriteback(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 1, 4, 16, 0, stats.MAC) // 1 KiB = 32 lines
	ctx.Eng.At(0, func() {
		for i := 0; i < 40; i++ {
			mc.Install(uint64(i*32), 0) // install dirty
		}
	})
	drain(ctx)
	// 40 installs into 32 lines: at least 8 dirty writebacks.
	if got := run.Traffic.Bytes(stats.Device, stats.MAC); got < 8*32 {
		t.Errorf("writeback traffic = %d, want >= 256", got)
	}
}

func TestMetaCacheInvalidateNoWriteback(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 1, 4, 16, 0, stats.MAC)
	ctx.Eng.At(0, func() {
		mc.Install(0, 0)
		mc.Invalidate(0)
	})
	drain(ctx)
	if got := run.Traffic.TierTotal(stats.Device); got != 0 {
		t.Errorf("invalidate produced %d bytes of traffic", got)
	}
}

func TestBMTRegionLevels(t *testing.T) {
	ctx, _ := testCtx()
	mc := newMetaCache(ctx, 8, 4, 16, 0, stats.BMT)
	cases := map[int]int{1: 0, 8: 1, 64: 2, 65: 3, 4096: 4}
	for leaves, want := range cases {
		r := newBMTRegion(mc, leaves, 0)
		if got := r.Levels(); got != want {
			t.Errorf("Levels(%d leaves) = %d, want %d", leaves, got, want)
		}
	}
}

func TestBMTWalkColdThenWarm(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 8, 4, 16, 0, stats.BMT)
	r := newBMTRegion(mc, 512, 0) // 3 levels: 64, 8, 1
	doneAt := []sim.Cycle{}
	ctx.Eng.At(0, func() {
		r.Verify(0, func() {
			doneAt = append(doneAt, ctx.Eng.Now())
			// Second verify of the same leaf: all ancestors cached,
			// first lookup hits, walk ends immediately.
			r.Verify(0, func() { doneAt = append(doneAt, ctx.Eng.Now()) })
		})
	})
	drain(ctx)
	if len(doneAt) != 2 {
		t.Fatalf("verifies completed: %d", len(doneAt))
	}
	cold := run.Traffic.Bytes(stats.Device, stats.BMT)
	if cold != 3*32 {
		t.Errorf("cold walk read %d bytes, want 96 (3 levels)", cold)
	}
	if doneAt[1] != doneAt[0] {
		t.Errorf("warm verify took extra time: %d vs %d", doneAt[1], doneAt[0])
	}
}

func TestBMTUpdateMarksDirtyPath(t *testing.T) {
	ctx, run := testCtx()
	mc := newMetaCache(ctx, 8, 4, 16, 0, stats.BMT)
	r := newBMTRegion(mc, 512, 0)
	ctx.Eng.At(0, func() { r.Update(5, func() {}) })
	drain(ctx)
	// Update walks to the root even past cached nodes and dirties them;
	// reads happened for the cold fills.
	if got := run.Traffic.Bytes(stats.Device, stats.BMT); got != 96 {
		t.Errorf("update read %d bytes, want 96", got)
	}
	flushed := mc.c.FlushDirty()
	if len(flushed) != 3 {
		t.Errorf("dirty path nodes = %d, want 3", len(flushed))
	}
}

func TestNoneEngineIsFree(t *testing.T) {
	n := NewNone()
	calls := 0
	n.OnRead(0, 0, func() { calls++ })
	n.OnWrite(0, 0, func() { calls++ })
	n.OnMigrateIn(0, 0, func() { calls++ })
	n.OnEvict(0, 0, 0, 0, func() { calls++ })
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (all immediate)", calls)
	}
	if n.FineGrainedWriteback() {
		t.Error("none engine claims fine-grained writeback")
	}
	if n.Name() != "none" {
		t.Error("name wrong")
	}
}

func TestBaselineMigrateTrafficShape(t *testing.T) {
	ctx, run := testCtx()
	b := NewBaseline(ctx, 1<<20, 1<<22)
	doneFired := false
	ctx.Eng.At(0, func() { b.OnMigrateIn(5, 0, func() { doneFired = true }) })
	drain(ctx)
	if !doneFired {
		t.Fatal("migration security never completed")
	}
	// CXL side must have read counters (4 sectors = 128 B) and MACs
	// (32 sectors = 1 KiB), plus BMT verify reads.
	if got := run.Traffic.Bytes(stats.CXL, stats.Counter); got != 128 {
		t.Errorf("CXL counter bytes = %d, want 128", got)
	}
	if got := run.Traffic.Bytes(stats.CXL, stats.MAC); got != 1024 {
		t.Errorf("CXL MAC bytes = %d, want 1024", got)
	}
	if run.Traffic.Bytes(stats.CXL, stats.BMT) == 0 {
		t.Error("no CXL BMT traffic on cold migration")
	}
	if run.Ops.ReEncryptions != 128 {
		t.Errorf("re-encryptions = %d, want 128 (every sector)", run.Ops.ReEncryptions)
	}
}

func TestBaselineEvictTrafficShape(t *testing.T) {
	ctx, run := testCtx()
	b := NewBaseline(ctx, 1<<20, 1<<22)
	fired := false
	ctx.Eng.At(0, func() { b.OnEvict(5, 0, 0, 0xFFFF, func() { fired = true }) })
	drain(ctx)
	if !fired {
		t.Fatal("eviction security never completed")
	}
	// Device side reads counters + MACs for the whole page even though
	// nothing is dirty (location-coupled metadata + no dirty bit).
	if run.Traffic.Bytes(stats.Device, stats.Counter) == 0 {
		t.Error("no device counter reads on eviction")
	}
	if run.Traffic.Bytes(stats.Device, stats.MAC) == 0 {
		t.Error("no device MAC reads on eviction")
	}
	if run.Ops.ReEncryptions != 128 {
		t.Errorf("re-encryptions = %d, want 128", run.Ops.ReEncryptions)
	}
}

func TestSalusMigrateIsFree(t *testing.T) {
	ctx, run := testCtx()
	s := NewSalus(ctx, 1<<20, 1<<22, 256)
	fired := false
	ctx.Eng.At(0, func() { s.OnMigrateIn(5, 3, func() { fired = true }) })
	drain(ctx)
	if !fired {
		t.Fatal("migration never completed")
	}
	if got := run.Traffic.Total(); got != 0 {
		t.Errorf("salus migration moved %d metadata bytes, want 0", got)
	}
	if run.Ops.ReEncryptions != 0 {
		t.Errorf("salus migration re-encrypted %d sectors", run.Ops.ReEncryptions)
	}
}

func TestSalusFirstAccessLazyFetch(t *testing.T) {
	ctx, run := testCtx()
	s := NewSalus(ctx, 1<<20, 1<<22, 256)
	reads := 0
	ctx.Eng.At(0, func() {
		s.OnMigrateIn(5, 0, func() {})
		s.OnRead(5*4096, 0, func() { reads++ })
	})
	drain(ctx)
	if reads != 1 {
		t.Fatal("read never completed")
	}
	// Exactly one 32 B MAC sector over CXL; no counter traffic on the link.
	if got := run.Traffic.Bytes(stats.CXL, stats.MAC); got != 32 {
		t.Errorf("CXL MAC bytes = %d, want 32", got)
	}
	if got := run.Traffic.Bytes(stats.CXL, stats.Counter); got != 0 {
		t.Errorf("CXL counter bytes = %d, want 0 (embedded major)", got)
	}
	if run.Ops.MACFetchesLazy != 1 {
		t.Errorf("lazy fetches = %d, want 1", run.Ops.MACFetchesLazy)
	}
}

func TestSalusSecondAccessNoCXLTraffic(t *testing.T) {
	ctx, run := testCtx()
	s := NewSalus(ctx, 1<<20, 1<<22, 256)
	seq := 0
	ctx.Eng.At(0, func() {
		s.OnMigrateIn(5, 0, func() {})
		s.OnRead(5*4096, 0, func() {
			seq++
			before := run.Traffic.TierTotal(stats.CXL)
			s.OnRead(5*4096, 0, func() {
				seq++
				if run.Traffic.TierTotal(stats.CXL) != before {
					t.Error("second access to the same block crossed the link")
				}
			})
		})
	})
	drain(ctx)
	if seq != 2 {
		t.Fatalf("reads completed: %d", seq)
	}
}

func TestSalusEvictOnlyDirtyChunks(t *testing.T) {
	ctx, run := testCtx()
	s := NewSalus(ctx, 1<<20, 1<<22, 256)
	fired := false
	// One dirty chunk out of 16.
	ctx.Eng.At(0, func() { s.OnEvict(5, 0, 0b1, 0b11, func() { fired = true }) })
	drain(ctx)
	if !fired {
		t.Fatal("eviction never completed")
	}
	// 2 MAC sectors (the chunk's 2 blocks) cross the link.
	if got := run.Traffic.Bytes(stats.CXL, stats.MAC); got != 64 {
		t.Errorf("CXL MAC bytes = %d, want 64", got)
	}
	if run.Ops.ReEncryptions != 8 {
		t.Errorf("re-encryptions = %d, want 8 (one chunk collapse)", run.Ops.ReEncryptions)
	}
}

func TestSalusEvictCleanPageFree(t *testing.T) {
	ctx, run := testCtx()
	s := NewSalus(ctx, 1<<20, 1<<22, 256)
	fired := false
	ctx.Eng.At(0, func() { s.OnEvict(5, 0, 0, 0xFFFF, func() { fired = true }) })
	drain(ctx)
	if !fired {
		t.Fatal("clean eviction never completed")
	}
	if got := run.Traffic.Total(); got != 0 {
		t.Errorf("clean eviction moved %d bytes", got)
	}
}

func TestSalusAblationToggles(t *testing.T) {
	// Disabling dirty tracking makes a clean eviction behave like a full
	// writeback; disabling collapse adds counter transfers.
	ctx, run := testCtx()
	s := NewSalus(ctx, 1<<20, 1<<22, 256)
	s.DirtyTracking = false
	if s.FineGrainedWriteback() {
		t.Error("FineGrainedWriteback true with dirty tracking off")
	}
	ctx.Eng.At(0, func() { s.OnEvict(5, 0, 0, 0, func() {}) })
	drain(ctx)
	if got := run.Traffic.Bytes(stats.CXL, stats.MAC); got != 16*2*32 {
		t.Errorf("no-dirty-tracking eviction MAC bytes = %d, want 1024", got)
	}

	ctx2, run2 := testCtx()
	s2 := NewSalus(ctx2, 1<<20, 1<<22, 256)
	s2.CollapseCounters = false
	ctx2.Eng.At(0, func() { s2.OnEvict(5, 0, 0b11, 0b11, func() {}) })
	drain(ctx2)
	if got := run2.Traffic.Bytes(stats.CXL, stats.Counter); got != 32 {
		t.Errorf("no-collapse eviction counter bytes = %d, want 32", got)
	}

	ctx3, run3 := testCtx()
	s3 := NewSalus(ctx3, 1<<20, 1<<22, 256)
	s3.FetchOnAccess = false
	ctx3.Eng.At(0, func() { s3.OnMigrateIn(5, 0, func() {}) })
	drain(ctx3)
	if got := run3.Traffic.Bytes(stats.CXL, stats.MAC); got != 1024 {
		t.Errorf("eager-fetch migration MAC bytes = %d, want 1024", got)
	}
}

func TestEngineNames(t *testing.T) {
	ctx, _ := testCtx()
	if NewBaseline(ctx, 1<<20, 1<<22).Name() != "baseline" {
		t.Error("baseline name")
	}
	if NewSalus(ctx, 1<<20, 1<<22, 1).Name() != "salus" {
		t.Error("salus name")
	}
	if !NewSalus(ctx, 1<<20, 1<<22, 1).FineGrainedWriteback() {
		t.Error("salus should default to fine-grained writeback")
	}
	if NewBaseline(ctx, 1<<20, 1<<22).FineGrainedWriteback() {
		t.Error("baseline should not use fine-grained writeback")
	}
}

func TestCacheHitRatesReported(t *testing.T) {
	ctx, _ := testCtx()
	b := NewBaseline(ctx, 1<<20, 1<<22)
	done := 0
	ctx.Eng.At(0, func() {
		b.OnRead(0, 0, func() {
			done++
			b.OnRead(0, 0, func() { done++ }) // second read hits
		})
	})
	drain(ctx)
	if done != 2 {
		t.Fatal("reads incomplete")
	}
	rates := b.CacheHitRates()
	for _, key := range []string{"device.counter", "device.mac", "device.bmt", "cxl.bmt"} {
		if _, ok := rates[key]; !ok {
			t.Errorf("missing hit-rate key %s", key)
		}
	}
	if rates["device.counter"] <= 0 || rates["device.counter"] > 1 {
		t.Errorf("counter hit rate = %v", rates["device.counter"])
	}

	s := NewSalus(ctx, 1<<20, 1<<22, 16)
	if got := s.CacheHitRates(); len(got) != 4 {
		t.Errorf("salus hit-rate keys = %d, want 4", len(got))
	}
}
