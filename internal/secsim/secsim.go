// Package secsim contains the timing-model security engines that attach to
// the simulated memory system. An engine decides, for every data access,
// page migration, and page eviction, which security-metadata transfers hit
// the memories (counter blocks, MAC sectors, BMT nodes) and when the
// security processing completes. Three engines implement the paper's
// compared configurations: None (no protection), Baseline (conventional
// location-coupled metadata), and Salus (the unified relocation-friendly
// model).
//
// Metadata is organised per memory partition with channel-local addressing,
// following PSSM: the metadata of a data chunk lives in the same channel as
// the chunk, which is why a page interleaved over N channels has its
// metadata spread over those same N channels.
package secsim

import (
	"github.com/salus-sim/salus/internal/cache"
	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/cxlmem"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// HomeAddr and DevAddr alias the canonical address-domain types so engine
// signatures stay readable; see securemem's addr.go for the convention.
type (
	HomeAddr = securemem.HomeAddr
	DevAddr  = securemem.DevAddr
)

// Engine is the security model attached to the memory system.
type Engine interface {
	// Name identifies the model in reports.
	Name() string
	// OnRead runs the read-side security work for a device-resident sector
	// and calls done when the data may be released to the core.
	OnRead(homeAddr HomeAddr, devAddr DevAddr, done func())
	// OnWrite runs the write-side security work (counter bump, MAC
	// generation, tree update) for a device-resident sector.
	OnWrite(homeAddr HomeAddr, devAddr DevAddr, done func())
	// OnMigrateIn runs the security work of copying homePage into frame.
	// Data movement itself is the page cache's job.
	OnMigrateIn(homePage, frame int, done func())
	// OnChunkFill runs the security work of a partial (chunk-granular)
	// fill under predictive migration; whole-page fills use OnMigrateIn.
	OnChunkFill(homePage, frame, chunk int, done func())
	// OnEvict runs the security work of evicting a frame. dirty and
	// present are per-chunk bitmasks maintained by the page cache: present
	// is every chunk actually filled into the frame (all of them under
	// whole-page migration), dirty the subset written.
	OnEvict(homePage, frame int, dirty, present uint64, done func())
	// FineGrainedWriteback reports whether eviction data traffic is
	// limited to dirty chunks (Salus dirty tracking) or whole pages.
	FineGrainedWriteback() bool
}

// Ctx bundles the handles every engine needs.
type Ctx struct {
	Eng    *sim.Engine
	Cfg    config.Config
	Device *dram.Memory
	CXL    *cxlmem.Memory
	Ops    *stats.Ops
}

// chanLocal converts a device address to (channel, channel-local offset):
// consecutive chunks go to consecutive channels, and each channel's chunks
// are dense in its local metadata address space.
func (c *Ctx) chanLocal(devAddr DevAddr) (channel int, local uint64) {
	cs := uint64(c.Cfg.Geometry.ChunkSize)
	n := uint64(c.Cfg.Memory.DeviceChannels)
	chunk := uint64(devAddr) / cs
	channel = int(chunk % n)
	local = (chunk/n)*cs + uint64(devAddr)%cs
	return channel, local
}

// metaCache is a metadata cache in front of one memory (a device partition
// or the CXL controller): lookups that miss fetch a 32-byte sector from the
// backing memory, and dirty victims write back.
type metaCache struct {
	ctx     *Ctx
	c       *cache.Cache
	class   stats.Class
	channel int // device channel, or -1 for the CXL side
}

func newMetaCache(ctx *Ctx, sizeKB, ways, mshrs, channel int, class stats.Class) *metaCache {
	return &metaCache{
		ctx: ctx,
		c: cache.New(cache.Config{
			SizeBytes:  sizeKB * 1024,
			BlockSize:  32, // metadata accessed at sector granularity
			SectorSize: 32,
			Ways:       ways,
			MSHRs:      mshrs,
		}),
		class:   class,
		channel: channel,
	}
}

// backingAccess issues a 32-byte transfer to the backing memory.
func (m *metaCache) backingAccess(done func()) {
	if m.channel >= 0 {
		m.ctx.Device.AccessChannel(m.channel, 32, m.class, done)
	} else {
		m.ctx.CXL.Access(32, m.class, done)
	}
}

// writebackVictim spills a dirty victim to the backing memory.
func (m *metaCache) writebackVictim(v *cache.Victim) {
	if v != nil && v.Dirty != 0 {
		m.backingAccess(nil)
	}
}

// Fetch ensures addr's 32-byte metadata sector is cached, calling
// done(hit) when it is available; hit reports whether the sector was
// already cached. extra is the caller-managed tag stored with the line.
func (m *metaCache) Fetch(addr uint64, extra uint64, done func(hit bool)) {
	block := m.c.BlockAddr(cache.Addr(addr))
	r := m.c.Lookup(block, 1)
	if r.Miss == 0 {
		done(true)
		return
	}
	switch m.c.AllocateMSHR(block, 1, func(cache.SectorMask) { done(false) }) {
	case cache.MSHRNew:
		m.backingAccess(func() {
			m.writebackVictim(m.c.CompleteMSHR(block, extra))
		})
	case cache.MSHRMerged:
		// done will fire with the existing fill.
	case cache.MSHRFull:
		// Structural stall: retry after a short backoff.
		m.ctx.Eng.After(8, func() { m.Fetch(addr, extra, done) })
	}
}

// MarkDirty marks addr's cached sector dirty (after a Fetch).
func (m *metaCache) MarkDirty(addr uint64) {
	m.c.MarkDirty(m.c.BlockAddr(cache.Addr(addr)), 1)
}

// Install fills addr's sector directly (metadata produced on-chip, e.g. a
// freshly reconstructed counter group), marking it dirty.
func (m *metaCache) Install(addr, extra uint64) {
	block := m.c.BlockAddr(cache.Addr(addr))
	m.writebackVictim(m.c.Fill(block, 1, extra))
	m.c.MarkDirty(block, 1)
}

// Invalidate drops addr's sector without writeback (used when a page's
// device-side metadata becomes meaningless after eviction).
func (m *metaCache) Invalidate(addr uint64) {
	m.c.Invalidate(m.c.BlockAddr(cache.Addr(addr)))
}

// Stats exposes the underlying cache counters.
func (m *metaCache) Stats() cache.Stats { return m.c.Stats() }

// bmtRegion models one integrity tree's timing: a walk from a leaf's
// parent toward the root through a BMT node cache, reading missed nodes
// from the backing memory. A cached node is trusted, so the walk stops at
// the first hit; the root is always in the TCB.
type bmtRegion struct {
	cache      *metaCache
	levelBase  []uint64 // synthetic node base address per level
	levelNodes []int
}

// newBMTRegion sizes a tree over nLeaves leaf blocks. Addresses are
// synthetic, unique within the cache's index space.
func newBMTRegion(cache *metaCache, nLeaves int, addrBase uint64) *bmtRegion {
	r := &bmtRegion{cache: cache}
	n := nLeaves
	base := addrBase
	for n > 1 {
		n = (n + 7) / 8
		r.levelBase = append(r.levelBase, base)
		r.levelNodes = append(r.levelNodes, n)
		base += uint64(n) * 32
	}
	return r
}

// Levels returns the number of interior levels below the root.
func (r *bmtRegion) Levels() int { return len(r.levelNodes) }

// walk traverses from the leaf's parent upward. Verification ends at the
// first *cached* ancestor (a trusted node); updates continue to the root
// so every ancestor is refreshed and marked dirty. The path nodes below
// the trusted ancestor are fetched in parallel — the verification engine
// is pipelined, so a cold walk costs one memory round trip, not one per
// level.
func (r *bmtRegion) walk(leaf int, dirty bool, done func()) {
	if len(r.levelNodes) == 0 {
		done()
		return
	}
	var addrs []uint64
	idx := leaf
	for level := 0; level < len(r.levelNodes); level++ {
		idx /= 8
		addr := r.levelBase[level] + uint64(idx)*32
		addrs = append(addrs, addr)
		if !dirty {
			if _, _, _, present := r.cache.c.Peek(cache.Addr(addr)); present {
				break // trusted cached ancestor ends the verification
			}
		}
	}
	j := join(len(addrs), done)
	for _, addr := range addrs {
		a := addr
		r.cache.Fetch(a, 0, func(bool) {
			if dirty {
				r.cache.MarkDirty(a)
			}
			j()
		})
	}
}

// Verify runs a read-side freshness check for the counter block at leaf.
func (r *bmtRegion) Verify(leaf int, done func()) { r.walk(leaf, false, done) }

// Update runs a write-side path refresh for the counter block at leaf.
func (r *bmtRegion) Update(leaf int, done func()) { r.walk(leaf, true, done) }

// join returns a callback that fires fn after being called n times. n == 0
// fires immediately.
func join(n int, fn func()) func() {
	if n == 0 {
		fn()
		return func() {}
	}
	remaining := n
	return func() {
		remaining--
		if remaining == 0 {
			fn()
		}
	}
}

// HitRates summarises a metadata cache's sector hit rate (0..1); used for
// the per-run cache report.
func hitRate(st cache.Stats) float64 {
	total := st.SectorHits + st.SectorMisses
	if total == 0 {
		return 0
	}
	return float64(st.SectorHits) / float64(total)
}
