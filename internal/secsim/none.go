package secsim

// None is the no-security configuration: data moves unprotected, and the
// only eviction policy difference from the secure models is that, like a
// conventional GPU (whose page tables carry no dirty bit), whole pages are
// written back.
type None struct{}

// NewNone returns the no-security engine.
func NewNone() *None { return &None{} }

// Name implements Engine.
func (*None) Name() string { return "none" }

// OnRead implements Engine: no security work.
func (*None) OnRead(homeAddr HomeAddr, devAddr DevAddr, done func()) { done() }

// OnWrite implements Engine: no security work.
func (*None) OnWrite(homeAddr HomeAddr, devAddr DevAddr, done func()) { done() }

// OnMigrateIn implements Engine: no security work.
func (*None) OnMigrateIn(homePage, frame int, done func()) { done() }

// OnChunkFill implements Engine: no security work.
func (*None) OnChunkFill(homePage, frame, chunk int, done func()) { done() }

// OnEvict implements Engine: no security work.
func (*None) OnEvict(homePage, frame int, dirty, present uint64, done func()) { done() }

// FineGrainedWriteback implements Engine: conventional GPUs write back
// whole pages.
func (*None) FineGrainedWriteback() bool { return false }
