package secsim

import (
	"github.com/salus-sim/salus/internal/cache"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// Salus is the paper's unified, relocation-friendly security engine:
//
//   - All metadata is indexed by the home (CXL) address; migration moves
//     ciphertext verbatim with zero security operations (§IV-A).
//   - Device-side counters use the interleaving-friendly layout: one
//     32-byte sector covers two 256-byte chunks (§IV-A1).
//   - CXL-side counters are collapsed majors: one 32-byte sector covers
//     eight chunks (2 KiB), and the compact CXL BMT is built over them
//     (§IV-A2). Majors travel embedded in MAC sectors, so counter blocks
//     never cross the link.
//   - MAC sectors are fetched from CXL only on first access to their data
//     block while the page is resident (§IV-A3).
//   - Eviction writes back only dirty chunks, with one collapse
//     re-encryption per dirty chunk (§IV-A4).
type Salus struct {
	ctx *Ctx

	// Feature toggles for the ablation study. The full design has all
	// enabled; disabling one falls back to the baseline-like behaviour for
	// that mechanism only.
	CollapseCounters bool // majors embedded in MAC sectors (no counter traffic on link)
	FetchOnAccess    bool // lazy MAC fetch instead of up-front page metadata
	DirtyTracking    bool // fine-grained dirty writeback

	// Per device channel.
	ctrCaches []*metaCache
	macCaches []*metaCache
	devTrees  []*bmtRegion

	// CXL controller side: collapsed counter sectors + compact tree.
	cxlCol  *metaCache
	cxlTree *bmtRegion

	// Residency-scoped lazy-fetch state, indexed by frame.
	macIn []uint64 // per-block "MAC sector present on device side" mask
	ctrIn []uint64 // per-chunk "counter group initialised" mask
}

// Salus metadata coverage constants: one interleaving-friendly counter
// sector covers two chunks (512 B); one collapsed sector covers eight
// chunks (2 KiB).
const (
	ifCtrCoverage     = 512
	collapsedCoverage = 2048
)

// NewSalus builds the Salus engine with every mechanism enabled. devBytes
// is the device-tier capacity; totalBytes the home-space size; frames the
// device frame count.
func NewSalus(ctx *Ctx, devBytes, totalBytes uint64, frames int) *Salus {
	s := &Salus{
		ctx:              ctx,
		CollapseCounters: true,
		FetchOnAccess:    true,
		DirtyTracking:    true,
		macIn:            make([]uint64, frames),
		ctrIn:            make([]uint64, frames),
	}
	ch := ctx.Cfg.Memory.DeviceChannels
	sec := ctx.Cfg.Security
	perChan := devBytes / uint64(ch)
	for c := 0; c < ch; c++ {
		ctr := newMetaCache(ctx, sec.CounterCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, c, stats.Counter)
		mac := newMetaCache(ctx, sec.MACCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, c, stats.MAC)
		bmtc := newMetaCache(ctx, sec.BMTCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, c, stats.BMT)
		s.ctrCaches = append(s.ctrCaches, ctr)
		s.macCaches = append(s.macCaches, mac)
		leaves := int(perChan / ifCtrCoverage)
		if leaves < 1 {
			leaves = 1
		}
		s.devTrees = append(s.devTrees, newBMTRegion(bmtc, leaves, 1<<40))
	}
	s.cxlCol = newMetaCache(ctx, sec.CounterCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, -1, stats.Counter)
	cxlBMTCache := newMetaCache(ctx, sec.BMTCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, -1, stats.BMT)
	leaves := int(totalBytes / collapsedCoverage)
	if leaves < 1 {
		leaves = 1
	}
	s.cxlTree = newBMTRegion(cxlBMTCache, leaves, 1<<40)
	return s
}

// Name implements Engine.
func (s *Salus) Name() string { return "salus" }

// FineGrainedWriteback implements Engine.
func (s *Salus) FineGrainedWriteback() bool { return s.DirtyTracking }

// devMeta computes device-side metadata addresses for a device address.
func (s *Salus) devMeta(devAddr DevAddr) (ch int, ctrAddr uint64, ctrLeaf int, macAddr uint64) {
	ch, local := s.ctx.chanLocal(devAddr)
	ctrLeaf = int(local / ifCtrCoverage)
	ctrAddr = uint64(ctrLeaf) * 32
	macAddr = local / macCoverage * 32
	return ch, ctrAddr, ctrLeaf, macAddr
}

func (s *Salus) frameGeom(devAddr DevAddr) (frame, chunkInPage, blockInPage int) {
	g := s.ctx.Cfg.Geometry
	frame = int(devAddr) / g.PageSize
	off := int(devAddr) % g.PageSize
	return frame, off / g.ChunkSize, off / g.BlockSize
}

// ensureChunkMeta makes the counter group and the accessed block's MAC
// sector available on the device side, fetching the MAC sector (with its
// embedded major) from CXL on first access. It calls done when both are
// available.
func (s *Salus) ensureChunkMeta(homeAddr HomeAddr, devAddr DevAddr, write bool, done func()) {
	frame, cip, bip := s.frameGeom(devAddr)
	ch, ctrAddr, ctrLeaf, macAddr := s.devMeta(devAddr)

	needMAC := s.macIn[frame]&(1<<uint(bip)) == 0
	needCtr := s.ctrIn[frame]&(1<<uint(cip)) == 0

	if needMAC || needCtr {
		// Fetch-on-access: one 32-byte MAC sector crosses the link; the
		// chunk's major is embedded in it, so no counter traffic occurs.
		s.ctx.Ops.MACFetchesLazy++
		s.macIn[frame] |= 1 << uint(bip)
		first := needCtr
		s.ctrIn[frame] |= 1 << uint(cip)
		s.ctx.CXL.Access(32, stats.MAC, func() {
			// Install the MAC sector (dirty only when this access writes)
			// and, on the chunk's first touch, the reconstructed counter
			// group, then refresh the device tree path over the counters.
			s.macCaches[ch].Install(macAddr, uint64(frame))
			if first {
				s.ctrCaches[ch].Install(ctrAddr, uint64(frame))
				s.ctx.Ops.BMTUpdates++
				s.devTrees[ch].Update(ctrLeaf, done)
				return
			}
			done()
		})
		return
	}

	// Steady state: both metadata come from the device-side hierarchy.
	j := join(2, done)
	s.ctrCaches[ch].Fetch(ctrAddr, uint64(frame), func(hit bool) {
		if write {
			s.ctrCaches[ch].MarkDirty(ctrAddr)
		}
		if hit {
			j()
			return
		}
		s.ctx.Ops.BMTVerifies++
		s.devTrees[ch].Verify(ctrLeaf, j)
	})
	s.macCaches[ch].Fetch(macAddr, uint64(frame), func(bool) {
		if write {
			s.macCaches[ch].MarkDirty(macAddr)
		}
		j()
	})
}

// OnRead implements Engine.
func (s *Salus) OnRead(homeAddr HomeAddr, devAddr DevAddr, done func()) {
	s.ctx.Ops.MACVerifies++
	s.ensureChunkMeta(homeAddr, devAddr, false, func() {
		s.ctx.Eng.After(sim.Cycle(s.ctx.Cfg.Security.MACLatency), done)
	})
}

// OnWrite implements Engine: bump the chunk's minor counter, refresh the
// device tree path, and produce the new MAC.
func (s *Salus) OnWrite(homeAddr HomeAddr, devAddr DevAddr, done func()) {
	s.ctx.Ops.Encryptions++
	s.ctx.Ops.MACComputes++
	ch, ctrAddr, ctrLeaf, _ := s.devMeta(devAddr)
	s.ensureChunkMeta(homeAddr, devAddr, true, func() {
		s.ctrCaches[ch].MarkDirty(ctrAddr)
		s.ctx.Ops.BMTUpdates++
		s.devTrees[ch].Update(ctrLeaf, func() {})
		done()
	})
}

// OnMigrateIn implements Engine: under the unified model the ciphertext
// moves verbatim and metadata follows lazily, so migration itself performs
// no security work at all. Only the residency-scoped lazy state resets.
//
// When FetchOnAccess is disabled (ablation), the page's MAC sectors are
// fetched up-front instead.
func (s *Salus) OnMigrateIn(homePage, frame int, done func()) {
	s.macIn[frame] = 0
	s.ctrIn[frame] = 0
	if s.FetchOnAccess {
		done()
		return
	}
	// Ablation: eager metadata fetch of all MAC sectors (majors embedded).
	g := s.ctx.Cfg.Geometry
	n := g.BlocksPerPage()
	j := join(n, done)
	for i := 0; i < n; i++ {
		bip := i
		s.ctx.Ops.MACFetchesLazy++
		s.ctx.CXL.Access(32, stats.MAC, func() {
			s.macIn[frame] |= 1 << uint(bip)
			j()
		})
	}
	s.ctrIn[frame] = (1 << uint(g.ChunksPerPage())) - 1
	for c := 0; c < g.ChunksPerPage(); c++ {
		devAddr := securemem.FrameAddr(frame, g.PageSize, uint64(c*g.ChunkSize))
		ch, ctrAddr, ctrLeaf, _ := s.devMeta(devAddr)
		s.ctrCaches[ch].Install(ctrAddr, uint64(frame))
		s.devTrees[ch].Update(ctrLeaf, func() {})
	}
}

// OnChunkFill implements Engine: under the unified model a partial fill
// needs no security work either — metadata follows on first access.
func (s *Salus) OnChunkFill(homePage, frame, chunk int, done func()) {
	g := s.ctx.Cfg.Geometry
	s.macIn[frame] &^= blockMaskOfChunk(chunk, g.BlocksPerChunk())
	s.ctrIn[frame] &^= 1 << uint(chunk)
	if s.FetchOnAccess {
		done()
		return
	}
	// Ablation: eager per-chunk MAC fetch.
	n := g.BlocksPerChunk()
	j := join(n, done)
	for b := 0; b < n; b++ {
		bip := chunk*g.BlocksPerChunk() + b
		s.ctx.Ops.MACFetchesLazy++
		s.ctx.CXL.Access(32, stats.MAC, func() {
			s.macIn[frame] |= 1 << uint(bip)
			j()
		})
	}
}

// blockMaskOfChunk returns the per-page block mask covered by a chunk.
func blockMaskOfChunk(chunk, blocksPerChunk int) uint64 {
	mask := uint64(1)<<uint(blocksPerChunk) - 1
	return mask << uint(chunk*blocksPerChunk)
}

// OnEvict implements Engine: each dirty chunk is collapsed (one
// re-encryption pass under the incremented major), its MAC sectors — with
// the embedded major — return to CXL, and the collapsed counter sector and
// compact CXL tree are refreshed. Clean chunks produce no security traffic
// because their home-tier ciphertext and metadata were never invalidated.
func (s *Salus) OnEvict(homePage, frame int, dirty, present uint64, done func()) {
	g := s.ctx.Cfg.Geometry
	if !s.DirtyTracking {
		// Ablation: without dirty tracking every touched chunk is treated
		// as dirty (GPU page tables have no dirty bit).
		dirty = (1 << uint(g.ChunksPerPage())) - 1
	}

	// Invalidate device-side metadata for the departing page: its contents
	// are meaningless once the frame is reused (no writeback needed — the
	// authoritative copies go to CXL below).
	for c := 0; c < g.ChunksPerPage(); c++ {
		devAddr := securemem.FrameAddr(frame, g.PageSize, uint64(c*g.ChunkSize))
		ch, ctrAddr, _, macAddr := s.devMeta(devAddr)
		s.ctrCaches[ch].Invalidate(ctrAddr)
		for blk := 0; blk < g.BlocksPerChunk(); blk++ {
			s.macCaches[ch].Invalidate(macAddr + uint64(blk)*32)
		}
	}
	s.macIn[frame] = 0
	s.ctrIn[frame] = 0

	nDirty := popcount(dirty)
	if nDirty == 0 {
		done()
		return
	}
	s.ctx.Ops.ReEncryptions += uint64(nDirty * g.SectorsPerChunk())
	s.ctx.Ops.Encryptions += uint64(nDirty * g.SectorsPerChunk())
	s.ctx.Ops.Decryptions += uint64(nDirty * g.SectorsPerChunk())

	// Distinct collapsed sectors and tree leaves affected.
	colSectors := map[int]bool{}
	pageBase := uint64(homePage) * uint64(g.PageSize)
	macWrites := 0
	for c := 0; c < g.ChunksPerPage(); c++ {
		if dirty&(1<<uint(c)) == 0 {
			continue
		}
		macWrites += g.BlocksPerChunk()
		homeChunkAddr := pageBase + uint64(c*g.ChunkSize)
		colSectors[int(homeChunkAddr/collapsedCoverage)] = true
	}

	counterTransfers := 0
	if !s.CollapseCounters {
		// Ablation: without MAC-embedded majors, counter sectors cross the
		// link too (one interleaving-friendly sector per 2 dirty chunks).
		counterTransfers = (nDirty + 1) / 2
	}

	parts := macWrites + len(colSectors) + counterTransfers
	aes := sim.Cycle(s.ctx.Cfg.Security.AESLatency) + sim.Cycle(uint64(g.SectorsPerChunk()))
	j := join(parts, func() { s.ctx.Eng.After(aes, done) })

	// MAC sectors (majors embedded) cross the link.
	for i := 0; i < macWrites; i++ {
		s.ctx.Ops.MACComputes++
		s.ctx.CXL.Access(32, stats.MAC, j)
	}
	for i := 0; i < counterTransfers; i++ {
		s.ctx.CXL.Access(32, stats.Counter, j)
	}
	// Collapsed counter sectors and the compact CXL tree are refreshed.
	for leaf := range colSectors {
		s.cxlCol.Install(uint64(leaf)*32, 0)
		s.ctx.Ops.BMTUpdates++
		s.cxlTree.Update(leaf, j)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// CacheHitRates reports aggregate metadata-cache sector hit rates, keyed
// by cache class and side.
func (s *Salus) CacheHitRates() map[string]float64 {
	out := map[string]float64{}
	agg := func(caches []*metaCache) cache.Stats {
		var sum cache.Stats
		for _, c := range caches {
			st := c.Stats()
			sum.SectorHits += st.SectorHits
			sum.SectorMisses += st.SectorMisses
		}
		return sum
	}
	out["device.counter"] = hitRate(agg(s.ctrCaches))
	out["device.mac"] = hitRate(agg(s.macCaches))
	if len(s.devTrees) > 0 {
		out["device.bmt"] = hitRate(agg([]*metaCache{s.devTrees[0].cache}))
	}
	out["cxl.bmt"] = hitRate(s.cxlTree.cache.Stats())
	return out
}
