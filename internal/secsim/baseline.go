package secsim

import (
	"github.com/salus-sim/salus/internal/cache"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
)

// Baseline is the conventional security model of prior GPU work: split
// counters, MACs, and a BMT per memory, all indexed by the *physical*
// address of the data. Each memory partition holds the metadata for its
// local data (PSSM organisation). The consequences the paper measures:
//
//   - Migrating a page reads counters + MACs from the CXL side, verifies
//     freshness there, decrypts, re-encrypts every sector under
//     device-side counters, and writes device-side counters + MACs.
//   - Evicting mirrors all of that in the other direction, for the whole
//     page (no dirty bit in GPU page tables).
type Baseline struct {
	ctx *Ctx

	// SkipRelocationWork disables the security work tied to page movement
	// (migration and eviction metadata transfers and re-encryptions) while
	// keeping the per-access security costs. This is the hypothetical
	// "security without data-movement overheads" system the paper's Fig. 3
	// motivation compares against.
	SkipRelocationWork bool

	// MonolithicCounters switches from split counters to SGX-style
	// monolithic 64-bit counters (one per 32 B sector, so a 32-byte
	// counter sector covers only 128 B of data instead of 1 KiB). This is
	// the organisation the paper's background contrasts split counters
	// against (§II-A1): metadata footprint and traffic grow 8x and the
	// trees deepen. Used by the counter-organisation extension study.
	MonolithicCounters bool

	// Per device channel.
	ctrCaches []*metaCache
	macCaches []*metaCache
	devTrees  []*bmtRegion

	// CXL controller side.
	cxlCtr  *metaCache
	cxlMAC  *metaCache
	cxlTree *bmtRegion

	devBytesPerChannel uint64
	totalBytes         uint64
	devBMTCaches       []*metaCache
	cxlBMTCache        *metaCache
}

// Conventional metadata coverage: one 32-byte counter sector covers 1 KiB
// of data with split counters (64-bit major + 32 6-bit minors) but only
// 128 B with SGX-style monolithic 64-bit counters; one 32-byte MAC sector
// covers one 128-byte block.
const (
	convCtrCoverage = 1024
	monoCtrCoverage = 128
	macCoverage     = 128
)

// ctrCoverage returns the bytes of data one counter sector covers under
// the configured counter organisation.
func (b *Baseline) ctrCoverage() uint64 {
	if b.MonolithicCounters {
		return monoCtrCoverage
	}
	return convCtrCoverage
}

// NewBaseline builds the conventional engine. devBytes is the device-tier
// capacity (frames × page size); totalBytes is the home space size.
func NewBaseline(ctx *Ctx, devBytes, totalBytes uint64) *Baseline {
	b := &Baseline{ctx: ctx}
	ch := ctx.Cfg.Memory.DeviceChannels
	sec := ctx.Cfg.Security
	b.devBytesPerChannel = devBytes / uint64(ch)
	b.totalBytes = totalBytes
	for c := 0; c < ch; c++ {
		ctr := newMetaCache(ctx, sec.CounterCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, c, stats.Counter)
		mac := newMetaCache(ctx, sec.MACCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, c, stats.MAC)
		bmtc := newMetaCache(ctx, sec.BMTCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, c, stats.BMT)
		b.ctrCaches = append(b.ctrCaches, ctr)
		b.macCaches = append(b.macCaches, mac)
		b.devBMTCaches = append(b.devBMTCaches, bmtc)
	}
	b.cxlCtr = newMetaCache(ctx, sec.CounterCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, -1, stats.Counter)
	b.cxlMAC = newMetaCache(ctx, sec.MACCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, -1, stats.MAC)
	b.cxlBMTCache = newMetaCache(ctx, sec.BMTCacheKB, sec.MetaCacheWays, sec.MetaCacheMSHRs, -1, stats.BMT)
	b.rebuildTrees()
	return b
}

// rebuildTrees sizes the integrity trees for the active counter
// organisation (leaves = counter sectors in the covered region).
func (b *Baseline) rebuildTrees() {
	b.devTrees = b.devTrees[:0]
	for _, bmtc := range b.devBMTCaches {
		leaves := int(b.devBytesPerChannel / b.ctrCoverage())
		if leaves < 1 {
			leaves = 1
		}
		b.devTrees = append(b.devTrees, newBMTRegion(bmtc, leaves, 1<<40))
	}
	leaves := int(b.totalBytes / b.ctrCoverage())
	if leaves < 1 {
		leaves = 1
	}
	b.cxlTree = newBMTRegion(b.cxlBMTCache, leaves, 1<<40)
}

// SetMonolithicCounters switches the counter organisation and resizes the
// trees. Call before the simulation starts.
func (b *Baseline) SetMonolithicCounters(on bool) {
	b.MonolithicCounters = on
	b.rebuildTrees()
}

// Name implements Engine.
func (*Baseline) Name() string { return "baseline" }

// FineGrainedWriteback implements Engine: whole-page writebacks.
func (*Baseline) FineGrainedWriteback() bool { return false }

// devMeta computes the channel and channel-local metadata addresses for a
// device data address.
func (b *Baseline) devMeta(devAddr DevAddr) (ch int, ctrAddr uint64, ctrLeaf int, macAddr uint64) {
	ch, local := b.ctx.chanLocal(devAddr)
	ctrLeaf = int(local / b.ctrCoverage())
	ctrAddr = uint64(ctrLeaf) * 32
	macAddr = local / macCoverage * 32
	return ch, ctrAddr, ctrLeaf, macAddr
}

// OnRead implements Engine: fetch the counter (verifying freshness on a
// counter-cache miss) and the MAC in parallel, then pay the MAC latency.
func (b *Baseline) OnRead(homeAddr HomeAddr, devAddr DevAddr, done func()) {
	ch, ctrAddr, ctrLeaf, macAddr := b.devMeta(devAddr)
	b.ctx.Ops.MACVerifies++
	j := join(2, func() {
		b.ctx.Eng.After(sim.Cycle(b.ctx.Cfg.Security.MACLatency), done)
	})
	b.ctrCaches[ch].Fetch(ctrAddr, 0, func(hit bool) {
		if hit {
			j()
			return
		}
		b.ctx.Ops.BMTVerifies++
		b.devTrees[ch].Verify(ctrLeaf, j)
	})
	b.macCaches[ch].Fetch(macAddr, 0, func(bool) { j() })
}

// OnWrite implements Engine: bump the counter (dirty in cache), refresh
// the tree path, and produce a new MAC (dirty in cache). The store is
// posted: done fires when the counter is available, since the OTP for the
// write can be generated as soon as the counter is known.
func (b *Baseline) OnWrite(homeAddr HomeAddr, devAddr DevAddr, done func()) {
	ch, ctrAddr, ctrLeaf, macAddr := b.devMeta(devAddr)
	b.ctx.Ops.Encryptions++
	b.ctx.Ops.MACComputes++
	b.ctrCaches[ch].Fetch(ctrAddr, 0, func(bool) {
		b.ctrCaches[ch].MarkDirty(ctrAddr)
		b.ctx.Ops.BMTUpdates++
		b.devTrees[ch].Update(ctrLeaf, func() {})
		done()
	})
	b.macCaches[ch].Fetch(macAddr, 0, func(bool) {
		b.macCaches[ch].MarkDirty(macAddr)
	})
}

// OnMigrateIn implements Engine. Security work for moving one page from
// CXL to the device tier: read + verify the page's CXL counters and MACs,
// decrypt, re-encrypt everything under device counters, install device
// counters + MACs, refresh the device trees.
func (b *Baseline) OnMigrateIn(homePage, frame int, done func()) {
	if b.SkipRelocationWork {
		done()
		return
	}
	g := b.ctx.Cfg.Geometry
	pageBase := uint64(homePage) * uint64(g.PageSize)
	frameBase := uint64(frame) * uint64(g.PageSize)

	nCtr := g.PageSize / int(b.ctrCoverage()) // CXL counter sectors covering the page
	nMAC := g.BlocksPerPage()                 // CXL MAC sectors
	// The page's metadata is contiguous on each side, so it moves as bulk
	// transfers: one counter read and one MAC read from CXL, one counter +
	// MAC write per device channel. Freshness walks go through the BMT
	// caches. The page's sectors then drain through the per-partition AES
	// pipes (1 sector/cycle each).
	parts := 2 + nCtr + 3*g.ChunksPerPage()
	aes := sim.Cycle(b.ctx.Cfg.Security.AESLatency) +
		sim.Cycle(uint64(g.SectorsPerPage()/b.ctx.Cfg.Memory.DeviceChannels))
	j := join(parts, func() { b.ctx.Eng.After(aes, done) })

	b.ctx.Ops.ReEncryptions += uint64(g.SectorsPerPage())
	b.ctx.Ops.Decryptions += uint64(g.SectorsPerPage())
	b.ctx.Ops.Encryptions += uint64(g.SectorsPerPage())
	b.ctx.Ops.MACVerifies += uint64(g.SectorsPerPage())

	// CXL side: bulk counter + MAC reads, with a freshness walk per
	// counter sector.
	b.ctx.CXL.Access(uint64(nCtr*32), stats.Counter, j)
	b.ctx.CXL.Access(uint64(nMAC*32), stats.MAC, j)
	for i := 0; i < nCtr; i++ {
		leaf := int(pageBase/b.ctrCoverage()) + i
		b.ctx.Ops.BMTVerifies++
		b.cxlTree.Verify(leaf, j)
	}
	// Device side: per chunk (one per channel), write the fresh counter
	// group and MAC sectors and refresh the tree.
	for c := 0; c < g.ChunksPerPage(); c++ {
		devAddr := DevAddr(frameBase + uint64(c*g.ChunkSize))
		ch, _, ctrLeaf, _ := b.devMeta(devAddr)
		b.ctx.Device.AccessChannel(ch, 32, stats.Counter, j)
		b.ctx.Device.AccessChannel(ch, uint64(g.BlocksPerChunk())*32, stats.MAC, j)
		b.ctx.Ops.BMTUpdates++
		b.devTrees[ch].Update(ctrLeaf, j)
	}
}

// OnChunkFill implements Engine: the chunk-proportional slice of the
// migration security work — read + verify the chunk's CXL counter sector
// and MAC sectors, decrypt, re-encrypt under device counters, write the
// device-side metadata, refresh the trees.
func (b *Baseline) OnChunkFill(homePage, frame, chunk int, done func()) {
	if b.SkipRelocationWork {
		done()
		return
	}
	g := b.ctx.Cfg.Geometry
	chunkHome := uint64(homePage*g.PageSize + chunk*g.ChunkSize)
	devAddr := securemem.FrameAddr(frame, g.PageSize, uint64(chunk*g.ChunkSize))
	ch, _, ctrLeaf, _ := b.devMeta(devAddr)

	parts := 5 // CXL ctr + CXL MAC + CXL tree verify + device writes + device tree
	aes := sim.Cycle(b.ctx.Cfg.Security.AESLatency) + sim.Cycle(uint64(g.SectorsPerChunk()))
	j := join(parts, func() { b.ctx.Eng.After(aes, done) })

	b.ctx.Ops.ReEncryptions += uint64(g.SectorsPerChunk())
	b.ctx.Ops.Decryptions += uint64(g.SectorsPerChunk())
	b.ctx.Ops.Encryptions += uint64(g.SectorsPerChunk())
	b.ctx.Ops.MACVerifies += uint64(g.SectorsPerChunk())

	b.ctx.CXL.Access(32, stats.Counter, j)
	b.ctx.CXL.Access(uint64(g.BlocksPerChunk())*32, stats.MAC, j)
	b.ctx.Ops.BMTVerifies++
	b.cxlTree.Verify(int(chunkHome/b.ctrCoverage()), j)
	b.ctx.Device.AccessChannel(ch, 32+uint64(g.BlocksPerChunk())*32, stats.Counter, j)
	b.ctx.Ops.BMTUpdates++
	b.devTrees[ch].Update(ctrLeaf, j)
}

// OnEvict implements Engine. The whole page returns to the CXL tier:
// device-side counters and MACs are read (and freshness-verified), every
// sector is decrypted and re-encrypted under CXL counters, and CXL-side
// counters + MACs are produced with their tree paths refreshed.
func (b *Baseline) OnEvict(homePage, frame int, dirty, present uint64, done func()) {
	if b.SkipRelocationWork {
		done()
		return
	}
	g := b.ctx.Cfg.Geometry
	pageBase := uint64(homePage) * uint64(g.PageSize)
	frameBase := uint64(frame) * uint64(g.PageSize)

	// Only the chunks actually present move back (all of them under
	// whole-page migration). The metadata bill is proportional: device
	// reads + freshness walks per present chunk, CXL writes + tree
	// refreshes per affected counter sector, AES drain for the moved
	// sectors.
	nPresent := popcount(present)
	if nPresent == 0 {
		done()
		return
	}
	ctrLeaves := map[int]bool{}
	for c := 0; c < g.ChunksPerPage(); c++ {
		if present&(1<<uint(c)) == 0 {
			continue
		}
		chunkHome := pageBase + uint64(c*g.ChunkSize)
		ctrLeaves[int(chunkHome/b.ctrCoverage())] = true
	}
	parts := 3*nPresent + 2 + len(ctrLeaves)
	aes := sim.Cycle(b.ctx.Cfg.Security.AESLatency) +
		sim.Cycle(uint64(nPresent*g.SectorsPerChunk()/b.ctx.Cfg.Memory.DeviceChannels+1))
	j := join(parts, func() { b.ctx.Eng.After(aes, done) })

	moved := uint64(nPresent * g.SectorsPerChunk())
	b.ctx.Ops.ReEncryptions += moved
	b.ctx.Ops.Decryptions += moved
	b.ctx.Ops.Encryptions += moved
	b.ctx.Ops.MACVerifies += moved
	b.ctx.Ops.MACComputes += moved

	for c := 0; c < g.ChunksPerPage(); c++ {
		if present&(1<<uint(c)) == 0 {
			continue
		}
		devAddr := DevAddr(frameBase + uint64(c*g.ChunkSize))
		ch, _, ctrLeaf, _ := b.devMeta(devAddr)
		b.ctx.Device.AccessChannel(ch, 32, stats.Counter, j)
		b.ctx.Device.AccessChannel(ch, uint64(g.BlocksPerChunk())*32, stats.MAC, j)
		b.ctx.Ops.BMTVerifies++
		b.devTrees[ch].Verify(ctrLeaf, j)
	}
	b.ctx.CXL.Access(uint64(len(ctrLeaves)*32), stats.Counter, j)
	b.ctx.CXL.Access(uint64(nPresent*g.BlocksPerChunk()*32), stats.MAC, j)
	for leaf := range ctrLeaves {
		b.ctx.Ops.BMTUpdates++
		b.cxlTree.Update(leaf, j)
	}
}

// CacheHitRates reports aggregate metadata-cache sector hit rates, keyed
// by cache class and side.
func (b *Baseline) CacheHitRates() map[string]float64 {
	out := map[string]float64{}
	agg := func(caches []*metaCache) cache.Stats {
		var sum cache.Stats
		for _, c := range caches {
			st := c.Stats()
			sum.SectorHits += st.SectorHits
			sum.SectorMisses += st.SectorMisses
		}
		return sum
	}
	out["device.counter"] = hitRate(agg(b.ctrCaches))
	out["device.mac"] = hitRate(agg(b.macCaches))
	if len(b.devTrees) > 0 {
		out["device.bmt"] = hitRate(agg([]*metaCache{b.devTrees[0].cache}))
	}
	out["cxl.bmt"] = hitRate(b.cxlTree.cache.Stats())
	return out
}
