// Package system assembles the full simulated machine — SMs, interconnect
// with mapping caches, per-partition L2 slices, device-memory channels,
// the CXL link, the page cache, and a security engine — and runs one
// workload to completion, producing the measurements the experiments
// report.
package system

import (
	"fmt"

	"github.com/salus-sim/salus/internal/cache"
	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/cxlmem"
	"github.com/salus-sim/salus/internal/dram"
	"github.com/salus-sim/salus/internal/gpu"
	"github.com/salus-sim/salus/internal/pagecache"
	"github.com/salus-sim/salus/internal/secsim"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/trace"
	"github.com/salus-sim/salus/internal/xbar"
)

// Model selects the security engine attached to the memory system.
type Model int

const (
	// ModelNone runs without security support (the normalisation baseline).
	ModelNone Model = iota
	// ModelBaseline runs the conventional location-coupled security model.
	ModelBaseline
	// ModelSalus runs the paper's unified relocation-friendly model.
	ModelSalus
)

// String returns the model name used in reports.
func (m Model) String() string {
	switch m {
	case ModelNone:
		return "none"
	case ModelBaseline:
		return "baseline"
	case ModelSalus:
		return "salus"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Options configure one simulation run.
type Options struct {
	Cfg      config.Config
	Workload trace.Params
	Model    Model

	// MaxAccesses caps the total memory accesses across all SMs (0 = run
	// the workload's full configured passes). The cap is distributed
	// evenly over SMs so every model sees identical streams.
	MaxAccesses int

	// CycleLimit aborts a run that exceeds this many cycles (0 = none); a
	// safety net for misconfigured experiments.
	CycleLimit uint64

	// Tune gives ablation studies access to the Salus engine's feature
	// toggles before the run starts. Ignored for other models.
	Tune func(*secsim.Salus)

	// TuneBaseline gives the Fig. 3 motivation experiment access to the
	// baseline engine's toggles before the run starts.
	TuneBaseline func(*secsim.Baseline)

	// Streams, when non-nil, replaces the synthetic per-SM streams with
	// caller-supplied access streams (e.g. replayed trace files). Workload
	// is still used for its name and footprint; MaxAccesses is ignored.
	Streams []gpu.Stream

	// PredictiveMigration switches the page cache from whole-page copies
	// to footprint-predicted partial fills (§IV-A3 notes the security
	// design works with either).
	PredictiveMigration bool
}

// Run simulates one workload under one security model.
func Run(opts Options) (*stats.Run, error) {
	cfg := opts.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Workload.Validate(); err != nil {
		return nil, err
	}

	geo := cfg.Geometry
	totalPages := int(opts.Workload.FootprintBytes) / geo.PageSize
	if totalPages < 1 {
		return nil, fmt.Errorf("system: footprint smaller than one page")
	}
	frames := int(float64(totalPages)*cfg.Memory.DeviceFootprintRatio + 0.5)
	if frames < 1 {
		frames = 1
	}
	if frames > totalPages {
		frames = totalPages
	}
	devBytes := uint64(frames) * uint64(geo.PageSize)
	totalBytes := uint64(totalPages) * uint64(geo.PageSize)

	eng := sim.NewEngine()
	run := &stats.Run{Workload: opts.Workload.Name, Model: opts.Model.String()}

	device := dram.New(eng, cfg.Memory.DeviceChannels, cfg.Memory.DeviceBytesPerCycle,
		cfg.Memory.DeviceLatency, uint64(geo.ChunkSize), &run.Traffic)
	bwNum, bwDen := cfg.Memory.CXLBytesPerCycleRational()
	cxl := cxlmem.New(eng, bwNum, bwDen, cfg.Memory.CXLLatency, &run.Traffic)

	ctx := &secsim.Ctx{Eng: eng, Cfg: cfg, Device: device, CXL: cxl, Ops: &run.Ops}
	var sec secsim.Engine
	switch opts.Model {
	case ModelNone:
		sec = secsim.NewNone()
	case ModelBaseline:
		b := secsim.NewBaseline(ctx, devBytes, totalBytes)
		if opts.TuneBaseline != nil {
			opts.TuneBaseline(b)
		}
		sec = b
	case ModelSalus:
		s := secsim.NewSalus(ctx, devBytes, totalBytes, frames)
		if opts.Tune != nil {
			opts.Tune(s)
		}
		sec = s
	default:
		return nil, fmt.Errorf("system: unknown model %d", opts.Model)
	}

	pc, err := pagecache.New(eng, geo, device, cxl, sec, &run.Ops, totalPages, frames)
	if err != nil {
		return nil, err
	}
	if opts.PredictiveMigration {
		pc.SetMode(pagecache.Predictive)
	}
	xb := xbar.New(eng, cfg, device, pc, &run.Ops)
	pc.SetEvictNotifier(func(homePage int) { xb.Invalidate(homePage) })

	// Per-partition L2 slices, sectored like the hardware's.
	var l2s []*cache.Cache
	for i := 0; i < cfg.Memory.DeviceChannels; i++ {
		l2s = append(l2s, cache.New(cache.Config{
			SizeBytes:  cfg.GPU.L2KBPerPartition * 1024,
			BlockSize:  geo.BlockSize,
			SectorSize: geo.SectorSize,
			Ways:       cfg.GPU.L2Ways,
			MSHRs:      cfg.GPU.L2MSHRs,
		}))
	}
	chunks := uint64(geo.ChunkSize)
	channelFor := func(devAddr securemem.DevAddr) int {
		return int((uint64(devAddr) / chunks) % uint64(cfg.Memory.DeviceChannels))
	}

	// handleVictim writes back a dirty L2 victim: the data write plus the
	// security write path for each dirty sector.
	handleVictim := func(ch int, v *cache.Victim) {
		if v == nil || v.Dirty == 0 {
			return
		}
		for i := 0; i < geo.SectorsPerBlock(); i++ {
			if !v.Dirty.Has(i) {
				continue
			}
			devAddr := securemem.DevAddr(uint64(v.BlockAddr) + uint64(i*geo.SectorSize))
			homeAddr := securemem.HomeAddr(v.Extra + uint64(i*geo.SectorSize))
			device.Access(uint64(devAddr), uint64(geo.SectorSize), stats.Data, nil)
			sec.OnWrite(homeAddr, devAddr, func() {})
		}
	}

	// access runs the post-interconnect memory path for one request. It is
	// self-referential for the MSHR-full retry path.
	var access func(homeAddr securemem.HomeAddr, devAddr securemem.DevAddr, write bool, done func())
	access = func(homeAddr securemem.HomeAddr, devAddr securemem.DevAddr, write bool, done func()) {
		ch := channelFor(devAddr)
		l2 := l2s[ch]
		block := l2.BlockAddr(cache.Addr(devAddr))
		homeBlock := uint64(homeAddr) - uint64(homeAddr)%uint64(geo.BlockSize)
		secMask := cache.SectorMask(1) << uint(l2.SectorIndex(cache.Addr(devAddr)))

		if write {
			// Write-validate: install the sector dirty without fetching.
			r := l2.Lookup(block, secMask)
			if r.Miss != 0 {
				handleVictim(ch, l2.Fill(block, secMask, uint64(homeBlock)))
			}
			l2.MarkDirty(block, secMask)
			eng.After(sim.Cycle(cfg.GPU.L2Latency), done)
			return
		}

		r := l2.Lookup(block, secMask)
		if r.Miss == 0 {
			eng.After(sim.Cycle(cfg.GPU.L2Latency), done)
			return
		}
		fill := func(cache.SectorMask) { done() }
		switch l2.AllocateMSHR(block, secMask, fill) {
		case cache.MSHRNew:
			// The data read and the security read path run in parallel;
			// the fill completes when both have.
			j := 2
			complete := func() {
				j--
				if j == 0 {
					handleVictim(ch, l2.CompleteMSHR(block, uint64(homeBlock)))
				}
			}
			device.Access(uint64(devAddr), uint64(geo.SectorSize), stats.Data, complete)
			sec.OnRead(homeAddr, devAddr, complete)
		case cache.MSHRMerged:
			// fill will fire with the in-flight request.
		case cache.MSHRFull:
			eng.After(8, func() { access(homeAddr, devAddr, write, done) })
		}
	}

	issuer := func(gpc int, homeAddr securemem.HomeAddr, write bool, done func()) {
		xb.Request(gpc, homeAddr, write, func(devAddr securemem.DevAddr) {
			access(homeAddr, devAddr, write, done)
		})
	}

	// Build one stream per SM (or use the caller-supplied replay streams).
	streams := opts.Streams
	if streams == nil {
		perSM := 0
		if opts.MaxAccesses > 0 {
			perSM = (opts.MaxAccesses + cfg.GPU.NumSMs - 1) / cfg.GPU.NumSMs
		}
		tgeo := trace.Geometry{SectorSize: geo.SectorSize, ChunkSize: geo.ChunkSize, PageSize: geo.PageSize}
		for i := 0; i < cfg.GPU.NumSMs; i++ {
			st, err := opts.Workload.NewStream(tgeo, i, cfg.GPU.NumSMs, perSM)
			if err != nil {
				return nil, err
			}
			streams = append(streams, st)
		}
	}

	g := gpu.New(eng, cfg.GPU, streams, issuer)
	g.Start(func() {})
	eng.RunUntil(sim.Cycle(opts.CycleLimit), func() bool { return !g.Done() })
	if !g.Done() {
		return nil, fmt.Errorf("system: %s/%s exceeded the cycle limit %d", run.Workload, run.Model, opts.CycleLimit)
	}

	run.Cycles = uint64(g.FinishCycle())
	run.Instructions = g.Instructions()
	run.MemRequests = g.MemRequests()
	run.DeviceBusyCycles = device.BusyCycles()
	run.CXLBusyCycles = cxl.BusyCycles()
	if reporter, ok := sec.(interface{ CacheHitRates() map[string]float64 }); ok {
		run.CacheHitRates = reporter.CacheHitRates()
	}
	return run, nil
}
