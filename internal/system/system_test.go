package system

import (
	"testing"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/trace"
)

// smallCfg shrinks the machine so tests run in milliseconds while keeping
// enough warp parallelism to stay in the paper's bandwidth-bound regime
// (too few in-flight requests makes every model latency-bound and washes
// out the traffic differences).
func smallCfg() config.Config {
	c := config.Default()
	c.GPU.NumSMs = 16
	c.GPU.SMsPerGPC = 4
	c.GPU.WarpsPerSM = 8
	c.GPU.L2KBPerPartition = 8
	c.Memory.DeviceChannels = 8
	return c
}

func smallWorkload() trace.Params {
	return trace.Params{
		Name: "test", FootprintBytes: 64 * 4096, PageCoverage: 0.5, Rereference: 1,
		WriteFraction: 0.3, ComputePerMem: 2, Pattern: trace.Sequential, Passes: 2, Seed: 7,
	}
}

func runModel(t *testing.T, m Model, w trace.Params) *stats.Run {
	t.Helper()
	r, err := Run(Options{Cfg: smallCfg(), Workload: w, Model: m, MaxAccesses: 4000, CycleLimit: 50_000_000})
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	return r
}

func TestRunCompletesAllModels(t *testing.T) {
	w := smallWorkload()
	for _, m := range []Model{ModelNone, ModelBaseline, ModelSalus} {
		r := runModel(t, m, w)
		if r.Cycles == 0 || r.Instructions == 0 || r.MemRequests == 0 {
			t.Errorf("%v: empty run: %+v", m, r)
		}
		if r.Ops.PagesMigratedIn == 0 {
			t.Errorf("%v: no migrations — device tier not exercised", m)
		}
		t.Logf("%v: cycles=%d ipc=%.3f migrations=%d cxl=%dB sec=%dB",
			m, r.Cycles, r.IPC(), r.Ops.PagesMigratedIn,
			r.Traffic.TierTotal(stats.CXL), r.Traffic.TotalSecurityBytes())
	}
}

func TestIdenticalWorkAcrossModels(t *testing.T) {
	// All models must execute the same instruction and access counts —
	// only timing and traffic may differ.
	w := smallWorkload()
	none := runModel(t, ModelNone, w)
	base := runModel(t, ModelBaseline, w)
	sal := runModel(t, ModelSalus, w)
	if none.Instructions != base.Instructions || base.Instructions != sal.Instructions {
		t.Errorf("instruction counts differ: %d / %d / %d",
			none.Instructions, base.Instructions, sal.Instructions)
	}
	if none.MemRequests != base.MemRequests || base.MemRequests != sal.MemRequests {
		t.Errorf("request counts differ: %d / %d / %d",
			none.MemRequests, base.MemRequests, sal.MemRequests)
	}
}

func TestSecurityOrdering(t *testing.T) {
	// The paper's central result shape: none >= salus >= baseline in IPC,
	// and salus moves less security traffic than baseline.
	w := smallWorkload()
	none := runModel(t, ModelNone, w)
	base := runModel(t, ModelBaseline, w)
	sal := runModel(t, ModelSalus, w)

	if none.Traffic.TotalSecurityBytes() != 0 {
		t.Errorf("none model moved %d security bytes", none.Traffic.TotalSecurityBytes())
	}
	if base.Traffic.TotalSecurityBytes() == 0 {
		t.Error("baseline moved no security bytes")
	}
	if sal.Traffic.TotalSecurityBytes() >= base.Traffic.TotalSecurityBytes() {
		t.Errorf("salus security traffic %d not below baseline %d",
			sal.Traffic.TotalSecurityBytes(), base.Traffic.TotalSecurityBytes())
	}
	if !(none.Cycles <= sal.Cycles && sal.Cycles <= base.Cycles) {
		t.Errorf("cycle ordering violated: none=%d salus=%d baseline=%d",
			none.Cycles, sal.Cycles, base.Cycles)
	}
}

func TestSalusNoRelocationReencryptToDevice(t *testing.T) {
	w := smallWorkload()
	sal := runModel(t, ModelSalus, w)
	base := runModel(t, ModelBaseline, w)
	// Baseline re-encrypts whole pages on every move; Salus only collapses
	// dirty chunks on eviction.
	if sal.Ops.ReEncryptions >= base.Ops.ReEncryptions {
		t.Errorf("salus re-encryptions %d not below baseline %d",
			sal.Ops.ReEncryptions, base.Ops.ReEncryptions)
	}
	if sal.Ops.MACFetchesLazy == 0 {
		t.Error("salus performed no lazy MAC fetches")
	}
}

func TestLowCoverageWorkloadFavoursSalusMore(t *testing.T) {
	// NW-like low coverage should give Salus a bigger relative win than a
	// backprop-like full-coverage sweep (the Fig. 10 explanation).
	low := smallWorkload()
	low.Name = "low"
	low.PageCoverage = 0.15

	high := smallWorkload()
	high.Name = "high"
	high.PageCoverage = 1.0

	gain := func(w trace.Params) float64 {
		base := runModel(t, ModelBaseline, w)
		sal := runModel(t, ModelSalus, w)
		return float64(base.Cycles) / float64(sal.Cycles)
	}
	gLow, gHigh := gain(low), gain(high)
	if gLow <= gHigh {
		t.Errorf("low-coverage gain %.3f not above high-coverage gain %.3f", gLow, gHigh)
	}
}

func TestCycleLimitEnforced(t *testing.T) {
	w := smallWorkload()
	_, err := Run(Options{Cfg: smallCfg(), Workload: w, Model: ModelBaseline, MaxAccesses: 4000, CycleLimit: 10})
	if err == nil {
		t.Error("cycle limit not enforced")
	}
}

func TestInvalidInputs(t *testing.T) {
	w := smallWorkload()
	bad := smallCfg()
	bad.GPU.NumSMs = 0
	if _, err := Run(Options{Cfg: bad, Workload: w, Model: ModelNone}); err == nil {
		t.Error("invalid config accepted")
	}
	w2 := w
	w2.PageCoverage = 0
	if _, err := Run(Options{Cfg: smallCfg(), Workload: w2, Model: ModelNone}); err == nil {
		t.Error("invalid workload accepted")
	}
	w3 := w
	w3.FootprintBytes = 100
	if _, err := Run(Options{Cfg: smallCfg(), Workload: w3, Model: ModelNone}); err == nil {
		t.Error("sub-page footprint accepted")
	}
	if _, err := Run(Options{Cfg: smallCfg(), Workload: w, Model: Model(99)}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelString(t *testing.T) {
	if ModelNone.String() != "none" || ModelBaseline.String() != "baseline" || ModelSalus.String() != "salus" {
		t.Error("model names wrong")
	}
}

func TestDeterminism(t *testing.T) {
	w := smallWorkload()
	a := runModel(t, ModelSalus, w)
	b := runModel(t, ModelSalus, w)
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.Traffic.Total() != b.Traffic.Total() {
		t.Errorf("non-deterministic runs: %d/%d vs %d/%d",
			a.Cycles, a.Traffic.Total(), b.Cycles, b.Traffic.Total())
	}
}
