package check

import (
	"reflect"
	"strings"
	"testing"
)

// quickConfig is a reduced budget for unit tests; the full smoke budget
// runs in make check-smoke and TestSmokeBudgetClean below.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Seeds = 3
	cfg.Ops = 120
	cfg.TotalPages = 8
	cfg.DevicePages = 2
	return cfg
}

func TestRunClean(t *testing.T) {
	res := Run(quickConfig())
	if res.Failure != nil {
		t.Fatalf("checker reported a failure on the real models:\n%s", res.Failure)
	}
	if res.SeedsRun != 3 {
		t.Errorf("SeedsRun = %d, want 3", res.SeedsRun)
	}
	if res.OpsRun == 0 {
		t.Error("no ops recorded")
	}
}

func TestSmokeBudgetClean(t *testing.T) {
	// The exact budget CI runs via `make check-smoke`.
	if testing.Short() {
		t.Skip("full smoke budget in -short mode")
	}
	res := Run(DefaultConfig())
	if res.Failure != nil {
		t.Fatalf("smoke budget failed:\n%s\n\nminimal reproducer:\n%s",
			res.Failure, res.Failure.GoTest(DefaultConfig(), "smoke"))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := quickConfig()
	a := GenerateSequence(cfg, 42)
	b := GenerateSequence(cfg, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different sequences")
	}
	c := GenerateSequence(cfg, 43)
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGenerateCoversOpVocabulary(t *testing.T) {
	cfg := quickConfig()
	cfg.Ops = 2000
	seen := map[OpKind]int{}
	hostile := 0
	size := cfg.size()
	for _, op := range GenerateSequence(cfg, 7).Ops {
		seen[op.Kind]++
		if op.Addr > size || uint64(op.Len) > size-op.Addr {
			hostile++
		}
	}
	for k := OpRead; k <= OpSuspendResume; k++ {
		if seen[k] == 0 {
			t.Errorf("2000 generated ops never produced %v", k)
		}
	}
	if hostile == 0 {
		t.Error("no hostile out-of-range ops generated")
	}
}

func TestFillDataDeterministic(t *testing.T) {
	if !reflect.DeepEqual(FillData(9, 33), FillData(9, 33)) {
		t.Fatal("FillData not deterministic")
	}
	if reflect.DeepEqual(FillData(9, 33), FillData(10, 33)) {
		t.Fatal("FillData ignores the tag")
	}
}

// corruptingTarget behaves correctly until its nth write, then silently
// flips a bit of what it stores — a model of the silent arithmetic bugs
// the checker exists to flush out.
type corruptingTarget struct {
	plainTarget
	writes    int
	corruptAt int
}

func (c *corruptingTarget) Write(addr uint64, data []byte) error {
	c.writes++
	if err := c.plainTarget.Write(addr, data); err != nil {
		return err
	}
	if c.writes == c.corruptAt && len(data) > 0 {
		c.data[addr] ^= 0x80
	}
	return nil
}

func TestCheckerCatchesSilentCorruption(t *testing.T) {
	cfg := quickConfig()
	cfg.Seeds = 10
	cfg.NewTargets = func(c Config) ([]Target, error) {
		return []Target{&corruptingTarget{
			plainTarget: plainTarget{data: make([]byte, c.size())},
			corruptAt:   20,
		}}, nil
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatal("checker missed a silently corrupting target")
	}
	if !strings.Contains(res.Failure.Reason, "diverged from oracle") {
		t.Errorf("unexpected reason: %s", res.Failure.Reason)
	}
}

func TestShrinkProducesMinimalReproducer(t *testing.T) {
	cfg := quickConfig()
	cfg.Seeds = 10
	cfg.NewTargets = func(c Config) ([]Target, error) {
		return []Target{&corruptingTarget{
			plainTarget: plainTarget{data: make([]byte, c.size())},
			corruptAt:   20,
		}}, nil
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatal("no failure to shrink")
	}
	// The corruption fires on the 20th write; the minimal reproducer still
	// needs 20 writes but every read and non-write op should be gone, and
	// the divergence must surface on the final kept op.
	writes := 0
	for _, op := range res.Failure.Seq.Ops {
		if op.Kind == OpWrite || op.Kind == OpWriteThrough {
			writes++
		}
	}
	if len(res.Failure.Seq.Ops) != writes {
		t.Errorf("shrunk sequence keeps %d non-write ops: %v",
			len(res.Failure.Seq.Ops)-writes, res.Failure.Seq.Ops)
	}
	if writes != 20 {
		t.Errorf("shrunk sequence has %d writes, want exactly 20", writes)
	}
	// And replaying the shrunk sequence against the same faulty target
	// must still fail — the reproducer is self-contained.
	if ReplaySequence(cfg, res.Failure.Seq) == nil {
		t.Error("shrunk sequence does not reproduce the failure")
	}
}

func TestGoTestRendering(t *testing.T) {
	cfg := quickConfig()
	f := &Failure{
		Seq: Sequence{Seed: 5, Ops: []Op{
			{Kind: OpWrite, Addr: 0x40, Len: 33, Tag: 3},
			{Kind: OpFlush},
			{Kind: OpRead, Addr: 0x40, Len: 33},
		}},
		OpIdx:  2,
		Target: "salus",
		Reason: "example",
	}
	src := f.GoTest(cfg, "example")
	for _, want := range []string{
		"func TestCheckRegression_example(t *testing.T)",
		"check.DefaultConfig()",
		"cfg.TotalPages = 8",
		"cfg.DevicePages = 2",
		"{Kind: check.OpWrite, Addr: 0x40, Len: 33, Tag: 3},",
		"{Kind: check.OpFlush},",
		"{Kind: check.OpRead, Addr: 0x40, Len: 33},",
		"check.ReplaySequence(cfg, seq)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted test missing %q:\n%s", want, src)
		}
	}
}

func TestFailureString(t *testing.T) {
	f := &Failure{
		Seq:    Sequence{Seed: 9, Ops: []Op{{Kind: OpFlush}}},
		OpIdx:  0,
		Target: "salus",
		Reason: "boom",
	}
	s := f.String()
	for _, want := range []string{"seed 9", "op 0", "flush", "salus", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("Failure.String() = %q missing %q", s, want)
		}
	}
	f.OpIdx = 1
	if !strings.Contains(f.String(), "final sweep") {
		t.Errorf("OpIdx past the sequence should render as the final sweep: %q", f.String())
	}
}
