package check

import (
	"strings"
	"sync"
	"testing"

	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/securemem"
)

// statSink accumulates per-target fault stats across a campaign.
type statSink struct {
	mu     sync.Mutex
	totals securemem.OpStats
}

func (s *statSink) add(_ string, st securemem.OpStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.totals.TransientFaults += st.TransientFaults
	s.totals.PoisonFaults += st.PoisonFaults
	s.totals.StuckBitFaults += st.StuckBitFaults
	s.totals.Retries += st.Retries
	s.totals.FramesQuarantined += st.FramesQuarantined
	s.totals.ChunksPoisoned += st.ChunksPoisoned
	s.totals.PagesPinned += st.PagesPinned
}

// TestChaosRecoverableByteIdentical is the headline chaos property at the
// full CI smoke budget: under a recoverable-only fault plan (transient
// link faults that always fit the retry budget), every model reproduces
// byte-identical oracle plaintext end to end — faults fire, retries
// happen, and nothing observable changes.
func TestChaosRecoverableByteIdentical(t *testing.T) {
	cfg := ChaosConfig(DefaultConfig(), false)
	sink := &statSink{}
	cfg.Fault.Sink = sink.add
	res := Run(cfg)
	if res.Failure != nil {
		t.Fatalf("recoverable fault plan broke equivalence:\n%s", res.Failure)
	}
	if sink.totals.TransientFaults == 0 || sink.totals.Retries == 0 {
		t.Fatalf("chaos campaign injected no faults (transient=%d retries=%d) — the plan is not wired in",
			sink.totals.TransientFaults, sink.totals.Retries)
	}
	if sink.totals.PoisonFaults != 0 || sink.totals.StuckBitFaults != 0 {
		t.Fatalf("recoverable plan emitted uncorrectable faults: %+v", sink.totals)
	}
}

// TestChaosUnrecoverableNoSilentDivergence drives the full smoke budget
// under a plan that also injects uncorrectable media errors. Every fault
// must surface as a typed error or quarantine — the replay flags any
// silent plaintext divergence, untyped error, or read served from a
// quarantined range as a Failure.
func TestChaosUnrecoverableNoSilentDivergence(t *testing.T) {
	cfg := ChaosConfig(DefaultConfig(), true)
	sink := &statSink{}
	cfg.Fault.Sink = sink.add
	res := Run(cfg)
	if res.Failure != nil {
		t.Fatalf("unrecoverable fault plan produced a silent divergence:\n%s", res.Failure)
	}
	if sink.totals.PoisonFaults+sink.totals.StuckBitFaults == 0 {
		t.Fatal("unrecoverable campaign never injected an uncorrectable fault — rates too low for the budget")
	}
	if sink.totals.ChunksPoisoned == 0 && sink.totals.FramesQuarantined == 0 {
		t.Fatalf("uncorrectable faults fired but nothing was quarantined: %+v", sink.totals)
	}
}

// TestChaosMisdeclaredPlanCaught proves the declaration matters: a plan
// that injects poison while claiming to be recoverable is itself flagged —
// the typed fault error leaks where the contract allows none.
func TestChaosMisdeclaredPlanCaught(t *testing.T) {
	cfg := quickConfig()
	cfg.Seeds = 10
	cfg.Fault = &FaultPlan{
		New: func(seed int64) fault.Injector {
			return fault.NewRatePlan(seed, fault.Rates{Transient: 0.01, Poison: 0.01}, 2)
		},
		Policy:        securemem.RetryPolicy{MaxRetries: 4, BaseBackoff: 8, MaxBackoff: 64},
		Unrecoverable: false, // lie: the plan injects poison
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatal("poison under a recoverable-declared plan was not flagged")
	}
	if !strings.Contains(res.Failure.Reason, "rejected an in-range operation") &&
		!strings.Contains(res.Failure.Reason, "verify read") {
		t.Errorf("failure should be the leaked fault error, got: %s", res.Failure)
	}
}

// silentCorruptTarget swallows one bit of every Nth write — a model bug
// chaos mode must still catch: taint tracking only excuses bytes whose
// write FAILED, never bytes a successful write quietly mangled.
type silentCorruptTarget struct {
	plainTarget
	writes int
}

func (c *silentCorruptTarget) Write(addr uint64, data []byte) error {
	if err := c.plainTarget.Write(addr, data); err != nil {
		return err
	}
	c.writes++
	if c.writes%5 == 0 && len(data) > 0 {
		c.data[addr] ^= 0x40 // silent corruption, no error
	}
	return nil
}

func (c *silentCorruptTarget) WriteThrough(addr uint64, data []byte) error {
	return c.Write(addr, data)
}

func TestChaosStillCatchesSilentCorruption(t *testing.T) {
	cfg := ChaosConfig(quickConfig(), true)
	cfg.NewTargets = func(c Config) ([]Target, error) {
		return []Target{&silentCorruptTarget{plainTarget: plainTarget{data: make([]byte, c.size())}}}, nil
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatal("chaos mode masked a silently corrupting target")
	}
	if !strings.Contains(res.Failure.Reason, "diverged from oracle") {
		t.Errorf("failure should be a plaintext divergence, got: %s", res.Failure)
	}
}

// TestChaosScriptedDeterministicReplay pins determinism: replaying the
// same sequence under the same scripted plan twice yields identical
// outcomes and identical fault accounting, which is what makes shrunk
// chaos reproducers trustworthy.
func TestChaosScriptedDeterministicReplay(t *testing.T) {
	cfg := quickConfig()
	cfg.Fault = &FaultPlan{
		New: func(seed int64) fault.Injector {
			return fault.NewScriptPlan([]fault.Event{
				{Tier: fault.TierDevice, N: 3, Kind: fault.Transient, Burst: 2},
				{Tier: fault.TierHome, N: 7, Kind: fault.Transient, Burst: 1},
			})
		},
		Policy: securemem.RetryPolicy{MaxRetries: 4, BaseBackoff: 8, MaxBackoff: 64},
	}
	var runs []securemem.OpStats
	cfg.Fault.Sink = func(name string, st securemem.OpStats) {
		if name == securemem.ModelSalus.String() {
			runs = append(runs, st)
		}
	}
	seq := GenerateSequence(cfg, 42)
	for i := 0; i < 2; i++ {
		if f := ReplaySequence(cfg, seq); f != nil {
			t.Fatalf("replay %d failed: %v", i, f)
		}
	}
	if len(runs) != 2 {
		t.Fatalf("sink saw %d salus runs, want 2", len(runs))
	}
	if runs[0] != runs[1] {
		t.Fatalf("replay is not deterministic:\n  first:  %+v\n  second: %+v", runs[0], runs[1])
	}
	if runs[0].TransientFaults == 0 {
		t.Fatal("scripted events never fired")
	}
}

// TestChaosGoTestEmitsArming: reproducers emitted from a chaos failure
// re-arm the standard plan so the committed regression test replays the
// same fault schedule.
func TestChaosGoTestEmitsArming(t *testing.T) {
	cfg := ChaosConfig(DefaultConfig(), true)
	f := &Failure{Seq: Sequence{Seed: 7, Ops: []Op{{Kind: OpFlush}}}}
	src := f.GoTest(cfg, "chaos")
	if !strings.Contains(src, "cfg = check.ChaosConfig(cfg, true)") {
		t.Errorf("GoTest output missing chaos arming line:\n%s", src)
	}
}
