package check

import (
	"errors"
	"strings"
	"testing"
)

// plainTarget is a trivially correct Target over a flat byte slice. It is
// the base both for fault-injection targets in tests and a sanity check
// that the replay engine itself is model-agnostic.
type plainTarget struct {
	data []byte
}

func (p *plainTarget) Name() string { return "plain" }

func (p *plainTarget) bounds(addr uint64, n int) error {
	size := uint64(len(p.data))
	if addr > size || uint64(n) > size-addr {
		return errors.New("plain: out of range")
	}
	return nil
}

func (p *plainTarget) Read(addr uint64, buf []byte) error {
	if err := p.bounds(addr, len(buf)); err != nil {
		return err
	}
	copy(buf, p.data[addr:])
	return nil
}

func (p *plainTarget) Write(addr uint64, data []byte) error {
	if err := p.bounds(addr, len(data)); err != nil {
		return err
	}
	copy(p.data[addr:], data)
	return nil
}

func (p *plainTarget) ReadThrough(addr uint64, buf []byte) error   { return p.Read(addr, buf) }
func (p *plainTarget) WriteThrough(addr uint64, data []byte) error { return p.Write(addr, data) }
func (p *plainTarget) VerifyRead(addr uint64, buf []byte) error    { return p.Read(addr, buf) }

func (p *plainTarget) Checkpoint(addr uint64) error {
	if addr >= uint64(len(p.data)) {
		return errors.New("plain: out of range")
	}
	return nil
}

func (p *plainTarget) Flush() error           { return nil }
func (p *plainTarget) SuspendResume() error   { return nil }
func (p *plainTarget) CheckInvariants() error { return nil }

func TestPlainTargetPassesChecker(t *testing.T) {
	cfg := quickConfig()
	cfg.NewTargets = func(c Config) ([]Target, error) {
		return []Target{&plainTarget{data: make([]byte, c.size())}}, nil
	}
	if res := Run(cfg); res.Failure != nil {
		t.Fatalf("replay engine flagged a correct target:\n%s", res.Failure)
	}
}

// overflowTarget re-introduces the exact bounds-check bug this PR fixes in
// internal/securemem: `addr+len > size` wraps around 2^64 for addresses
// near the top of the space, accepting the access and then panicking (or
// corrupting memory) when the slice is indexed. The checker must catch it
// within the CI smoke budget.
type overflowTarget struct {
	plainTarget
}

func (o *overflowTarget) badBounds(addr uint64, n int) error {
	// BUG (deliberate): addr + n can wrap for addr near 2^64.
	if addr+uint64(n) > uint64(len(o.data)) {
		return errors.New("overflow: out of range")
	}
	return nil
}

func (o *overflowTarget) Read(addr uint64, buf []byte) error {
	if err := o.badBounds(addr, len(buf)); err != nil {
		return err
	}
	copy(buf, o.data[addr:]) // panics when the check wrongly accepted
	return nil
}

func (o *overflowTarget) Write(addr uint64, data []byte) error {
	if err := o.badBounds(addr, len(data)); err != nil {
		return err
	}
	copy(o.data[addr:], data)
	return nil
}

func (o *overflowTarget) ReadThrough(addr uint64, buf []byte) error   { return o.Read(addr, buf) }
func (o *overflowTarget) WriteThrough(addr uint64, data []byte) error { return o.Write(addr, data) }
func (o *overflowTarget) VerifyRead(addr uint64, buf []byte) error    { return o.Read(addr, buf) }

// TestCheckerCatchesReintroducedOverflow is the acceptance demonstration:
// a target carrying the pre-fix overflow-prone bounds check is flagged by
// the checker, as a library, within the same seeds×ops budget CI runs.
func TestCheckerCatchesReintroducedOverflow(t *testing.T) {
	cfg := DefaultConfig() // the CI smoke budget: 25 seeds × 200 ops
	cfg.NewTargets = func(c Config) ([]Target, error) {
		return []Target{&overflowTarget{plainTarget{data: make([]byte, c.size())}}}, nil
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatal("checker missed the re-introduced overflow bounds check within the smoke budget")
	}
	f := res.Failure
	if !strings.Contains(f.Reason, "panic") && !strings.Contains(f.Reason, "accepted an out-of-range") {
		t.Errorf("failure should stem from the wrapping check accepting a bad op, got: %s", f.Reason)
	}
	// The shrinker should cut it down to (close to) the single hostile op.
	if len(f.Seq.Ops) > 2 {
		t.Errorf("shrunk reproducer has %d ops, want <= 2: %v", len(f.Seq.Ops), f.Seq.Ops)
	}
	// And the emitted regression test must reference the failing op.
	src := f.GoTest(cfg, "overflow")
	if !strings.Contains(src, "func TestCheckRegression_overflow") {
		t.Errorf("GoTest output malformed:\n%s", src)
	}
}
