package check

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/serve"
	"github.com/salus-sim/salus/internal/stats"
)

// Serve-chaos mode: the campaign that earns the service layer its SLOs.
// Per seed, a fleet of concurrent client streams drives a shared
// serve.Server while a chaos driver — paced by the traffic itself, never
// by the wall clock — injects all three failure families at once, for
// the first time mid-traffic:
//
//   - transient faults (a seeded rate plan, engine retries disabled so
//     the service retry budget is the only recovery loop);
//   - CXL link outages (a manual link the driver flaps down and up);
//   - crash/recover cycles (quiesce, checkpoint to a journal, later
//     rebuild the engine from the journal with securemem.Recover and
//     swap it under the live server while the clients' oracles rewind
//     to the matching snapshot).
//
// The contract asserted, per seed and campaign-wide:
//
//   - every rejection is typed (shed, overload, deadline, retry-budget,
//     ambiguous, or a typed engine sentinel) — an untyped error is a
//     violation;
//   - zero silent divergences: every verified read matches the client's
//     oracle modulo bytes tainted by ambiguous writes, and after
//     quiesce the engine state is byte-identical to the oracles;
//   - outcome conservation: every submitted request has exactly one
//     outcome, on both the client and the server side of the counter;
//   - per-class availability meets the configured SLO floors —
//     interactive, which is never shed and keeps serving device-resident
//     reads through outages, is the class held to a floor by default.

// ServePlan sizes a combined-chaos service campaign.
type ServePlan struct {
	Seeds     int   // traffic sessions run by RunServe
	FirstSeed int64 // sessions cover [FirstSeed, FirstSeed+Seeds)

	Clients      int // concurrent client streams per session
	OpsPerClient int // requests each stream submits

	TotalPages  int // home (CXL) pages
	DevicePages int // device frames; << TotalPages keeps miss traffic up
	Shards      int // engine lock shards
	Geometry    config.Geometry

	// QueueCap bounds the dirty-writeback queue (ErrQueueFull pressure).
	QueueCap int

	// TransientRate is the per-consultation transient fault probability;
	// FaultBurst bounds how many consecutive attempts one fault eats.
	TransientRate float64
	FaultBurst    int

	// EventEvery is the pace-tick period between chaos events; <= 0
	// disables chaos entirely (a healthy baseline run).
	EventEvery int
	// OutageMin/OutageMax bound a forced link outage in pace ticks.
	OutageMin, OutageMax int

	// SLO holds per-class availability floors in [0, 1]; a zero entry is
	// reported but not asserted. Floors are asserted on the campaign
	// aggregate, after all seeds ran.
	SLO [stats.NumServeClasses]float64

	// TenantNames, when non-empty, tags the client streams with tenant
	// identities round-robin, so every request feeds the server's
	// per-tenant rollup (Report.Tenants) alongside its class counters.
	TenantNames []string
	// TenantSLO is the per-tenant availability floor in [0, 1],
	// asserted on the campaign-aggregate rollup for every named tenant:
	// (reads+writes-faults)/attempts. Zero reports without asserting.
	TenantSLO float64

	// Classes overrides the server's per-class tuning; the zero value
	// selects serve.DefaultClasses via serve.New.
	Classes [serve.NumClasses]serve.ClassConfig

	// Verbose, when non-nil, receives per-seed progress lines.
	Verbose func(string)
}

// DefaultServePlan returns the smoke-budget combined-chaos campaign used
// by `make serve-smoke`: 10 sessions × 21 streams (7 per class) × 60
// requests over a 24-page home space with 6 device frames. The
// interactive floor is deliberately conservative — the point of the
// assertion is "the healthy class keeps serving through combined
// chaos", not a tuned-to-yesterday ratio.
func DefaultServePlan() ServePlan {
	var slo [stats.NumServeClasses]float64
	slo[serve.Interactive] = 0.60
	// Interactive gets a generous retry budget but a tight deadline, so
	// under an outage the concurrent fleet's clock advancement expires
	// requests mid-retry-loop: the campaign exercises typed deadline
	// rejections, not just budget exhaustion.
	var classes [serve.NumClasses]serve.ClassConfig
	classes[serve.Interactive] = serve.ClassConfig{Queue: 64, Retries: 8, Deadline: 24}
	return ServePlan{
		Seeds:     10,
		FirstSeed: 1,

		Clients:      21,
		OpsPerClient: 60,

		TotalPages:  24,
		DevicePages: 6,
		Shards:      4,
		Geometry:    config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},

		QueueCap: 4,

		TransientRate: 0.01,
		FaultBurst:    2,

		EventEvery: 40,
		OutageMin:  8,
		OutageMax:  24,

		SLO:     slo,
		Classes: classes,

		// Two tenants against three classes keeps the assignments
		// decorrelated (each tenant holds streams of every class). The
		// floor is deliberately far below the interactive one: a
		// tenant's rollup includes its batch and bulk streams, which
		// the degradation ladder sheds by design under outages, and how
		// much of those survive moves with real goroutine scheduling
		// (a race-detector run sheds measurably more). The assertion is
		// "no tenant is starved outright", not a tuned-to-yesterday
		// yield.
		TenantNames: []string{"tenant-a", "tenant-b"},
		TenantSLO:   0.20,
	}
}

// size returns the home address-space size in bytes.
func (p ServePlan) size() int { return p.TotalPages * p.Geometry.PageSize }

// memConfig returns the securemem configuration of the served engine.
func (p ServePlan) memConfig() securemem.Config {
	return securemem.Config{
		Geometry:    p.Geometry,
		Model:       securemem.ModelSalus,
		TotalPages:  p.TotalPages,
		DevicePages: p.DevicePages,
		Shards:      p.Shards,
	}
}

// serveEnginePolicy is the engine retry policy under service mode: one
// attempt per service attempt. The zero RetryPolicy selects the engine
// default (8 retries), so MaxRetries: 0 must ride with non-zero backoff
// fields to mean what it says.
func serveEnginePolicy() securemem.RetryPolicy {
	return securemem.RetryPolicy{MaxRetries: 0, BaseBackoff: 1, MaxBackoff: 1}
}

// ServeResult summarises a RunServe campaign.
type ServeResult struct {
	SeedsRun int
	Streams  int // client streams completed
	Ops      int // requests submitted

	// Aggregate folds every session's server report: per-class outcome
	// counters and served-latency histograms (p50/p99/p999 source).
	Aggregate serve.Report

	Checkpoints        int // successful journal checkpoints
	CheckpointRefusals int // checkpoints refused typed (link down)
	Crashes            int // crash/recover cycles survived
	Outages            int // forced link outages injected
	TaintedBytes       int // bytes still write-ambiguous after quiesce

	// Violations holds every contract breach: silent divergences,
	// untyped errors, conservation failures, SLO misses. Empty means
	// PASS.
	Violations []string
}

// Failed reports whether the campaign found any contract violation.
func (r *ServeResult) Failed() bool { return len(r.Violations) > 0 }

// Tables renders the aggregate per-class outcome and latency tables.
func (r *ServeResult) Tables() string {
	var b strings.Builder
	b.WriteString(r.Aggregate.OutcomeTable().String())
	b.WriteString(r.Aggregate.LatencyTable().String())
	if len(r.Aggregate.Tenants) > 0 {
		b.WriteString(r.Aggregate.TenantTable().String())
	}
	return b.String()
}

// RunServe runs plan.Seeds combined-chaos traffic sessions and asserts
// the aggregate availability SLOs. It stops after the first session that
// records violations (the campaign convention: report the first broken
// seed, not a flood).
func RunServe(plan ServePlan) ServeResult {
	var res ServeResult
	for i := 0; i < plan.Seeds; i++ {
		seed := plan.FirstSeed + int64(i)
		s := runServeSeed(plan, seed)

		res.SeedsRun++
		res.Streams += plan.Clients
		res.Ops += plan.Clients * plan.OpsPerClient
		res.Aggregate.Merge(&s.report)
		res.Checkpoints += s.checkpoints
		res.CheckpointRefusals += s.ckptRefused
		res.Crashes += s.crashes
		res.Outages += s.outages
		res.TaintedBytes += s.tainted

		if plan.Verbose != nil {
			rep := &s.report
			plan.Verbose(fmt.Sprintf(
				"seed %d: %d streams, interactive avail %.3f, %d ckpt (%d refused), %d crashes, %d outages, peak tier %d, %d tainted",
				seed, plan.Clients, rep.Availability(serve.Interactive),
				s.checkpoints, s.ckptRefused, s.crashes, s.outages, rep.PeakTier, s.tainted))
		}
		if len(s.violations) > 0 {
			for _, v := range s.violations {
				res.Violations = append(res.Violations, fmt.Sprintf("seed %d: %s", seed, v))
			}
			return res
		}
	}

	for c := serve.Class(0); c < serve.NumClasses; c++ {
		if floor := plan.SLO[c]; floor > 0 {
			if got := res.Aggregate.Availability(c); got < floor {
				res.Violations = append(res.Violations,
					fmt.Sprintf("SLO miss: class %v availability %.4f below floor %.4f", c, got, floor))
			}
		}
	}
	if plan.TenantSLO > 0 && len(plan.TenantNames) > 0 {
		if len(res.Aggregate.Tenants) == 0 {
			res.Violations = append(res.Violations,
				"per-tenant SLO configured but no tenant rollup was recorded")
		}
		for i := range res.Aggregate.Tenants {
			t := &res.Aggregate.Tenants[i]
			att := t.Attempts()
			if att == 0 {
				continue
			}
			got := float64(t.Reads+t.Writes-t.Faults) / float64(att)
			if got < plan.TenantSLO {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"SLO miss: tenant %s availability %.4f below floor %.4f", t.Name, got, plan.TenantSLO))
			}
		}
	}
	return res
}

// serveSeedResult is one session's outcome.
type serveSeedResult struct {
	report      serve.Report
	checkpoints int
	ckptRefused int
	crashes     int
	outages     int
	tainted     int
	violations  []string
}

// runServeSeed runs one combined-chaos traffic session: build the
// engine, arm the chaos surface, start the client fleet, drive chaos
// paced by the traffic, then quiesce and verify.
func runServeSeed(plan ServePlan, seed int64) serveSeedResult {
	var res serveSeedResult
	fail := func(format string, a ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, a...))
	}

	if plan.Clients <= 0 || plan.OpsPerClient <= 0 || plan.size() < plan.Clients {
		fail("plan sizing: %d clients × %d ops over %d bytes", plan.Clients, plan.OpsPerClient, plan.size())
		return res
	}

	// --- Engine with the full chaos surface attached. ---
	memCfg := plan.memConfig()
	eng, err := securemem.NewConcurrent(memCfg)
	if err != nil {
		fail("session setup: %v", err)
		return res
	}
	manual := link.NewManual()
	eng.AttachLink(link.New(manual, link.DefaultConfig()), nil, plan.QueueCap)
	if plan.TransientRate > 0 {
		inj := fault.NewRatePlan(seed, fault.Rates{Transient: plan.TransientRate}, plan.FaultBurst)
		eng.AttachFaults(inj, serveEnginePolicy(), nil)
	}

	srv, err := serve.New(serve.Config{Engine: eng, Classes: plan.Classes})
	if err != nil {
		fail("session setup: %v", err)
		return res
	}

	// --- Client fleet over disjoint regions, classes round-robin. ---
	pace := make(chan struct{}, 1024)
	region := plan.size() / plan.Clients
	clients := make([]*serve.Client, plan.Clients)
	for i := range clients {
		tenantID := ""
		if len(plan.TenantNames) > 0 {
			tenantID = plan.TenantNames[i%len(plan.TenantNames)]
		}
		c, err := serve.NewClient(serve.ClientConfig{
			ID:     i,
			Class:  serve.Class(i % int(serve.NumClasses)),
			Tenant: tenantID,
			Base:   securemem.HomeAddr(i * region),
			Len:    region,
			Ops:    plan.OpsPerClient,
			Seed:   seed<<16 + int64(i),
			Pace:   pace,
		})
		if err != nil {
			fail("session setup: %v", err)
			return res
		}
		clients[i] = c
	}

	// --- Checkpoint/crash machinery. A checkpoint captures the engine
	// root and every client oracle in one quiesced exclusion; a crash
	// rebuilds the engine from the journal and rewinds the oracles to
	// the matching snapshot in one quiesced swap. The driver only
	// checkpoints in its own link-up windows, so (with the fault
	// injector detached for the maintenance window) the only failure
	// mode left is the typed atomic link-precheck refusal. ---
	store := crash.NewMemStore()
	journal := crash.NewJournal(store)
	var root securemem.TrustedRoot
	haveRoot := false
	snaps := make([]serve.ClientState, len(clients))

	checkpoint := func() {
		err := srv.WithQuiesced(func(eng *securemem.Concurrent) error {
			eng.AttachFaults(nil, serveEnginePolicy(), nil)
			defer func() {
				if plan.TransientRate > 0 {
					inj := fault.NewRatePlan(seed^int64(res.checkpoints+1)<<8,
						fault.Rates{Transient: plan.TransientRate}, plan.FaultBurst)
					eng.AttachFaults(inj, serveEnginePolicy(), nil)
				}
			}()
			r, err := eng.Checkpoint(journal)
			if err != nil {
				return err
			}
			root, haveRoot = r, true
			for i, c := range clients {
				snaps[i] = c.Snapshot()
			}
			return nil
		})
		switch {
		case err == nil:
			res.checkpoints++
		case linkErr(err):
			res.ckptRefused++
		default:
			fail("checkpoint failed untyped: %v", err)
		}
	}

	crashRecover := func() {
		if !haveRoot {
			return
		}
		err := srv.WithQuiescedSwap(func(_ *securemem.Concurrent) (*securemem.Concurrent, error) {
			sys, err := securemem.Recover(memCfg, store.Bytes(), root)
			if err != nil {
				return nil, fmt.Errorf("recover from epoch %d: %w", root.Epoch, err)
			}
			reborn := securemem.ConcurrentFrom(sys, plan.Shards)
			// The reboot renegotiates the chaos surface: same manual link
			// plan (whatever state the driver left it in), a reseeded
			// fault plan.
			reborn.AttachLink(link.New(manual, link.DefaultConfig()), nil, plan.QueueCap)
			if plan.TransientRate > 0 {
				inj := fault.NewRatePlan(seed^int64(res.crashes+1)<<24,
					fault.Rates{Transient: plan.TransientRate}, plan.FaultBurst)
				reborn.AttachFaults(inj, serveEnginePolicy(), nil)
			}
			for i, c := range clients {
				c.Restore(snaps[i])
			}
			return reborn, nil
		})
		if err != nil {
			fail("crash recovery failed: %v", err)
			return
		}
		res.crashes++
	}

	// --- Traffic plus the chaos driver. The driver is paced by client
	// completions (one lossy tick per finished request), never by the
	// wall clock, so the schedule is load-proportional and the session
	// terminates exactly when the fleet does. ---
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *serve.Client) {
			defer wg.Done()
			c.Run(srv)
		}(c)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	// Pace sends are blocking and the loop drains pace before honoring
	// done, so every one of the Clients×Ops ticks is counted: the event
	// schedule — which ticks flap, checkpoint, or crash — is a pure
	// function of the seed, independent of goroutine interleaving.
	rng := rand.New(rand.NewSource(seed ^ 0x5a1e))
	ticks, upAt := 0, 0
	linkDown := false
	for running := true; running; {
		select {
		case <-pace:
			ticks++
		default:
			select {
			case <-pace:
				ticks++
			case <-done:
				running = false
			}
		}
		if linkDown && (ticks >= upAt || !running) {
			manual.Set(link.StateUp)
			linkDown = false
		}
		if !running || plan.EventEvery <= 0 || ticks%plan.EventEvery != 0 {
			continue
		}
		switch ev := rng.Intn(10); {
		case ev < 4: // link outage window
			if !linkDown {
				manual.Set(link.StateDown)
				linkDown = true
				upAt = ticks + plan.OutageMin + rng.Intn(plan.OutageMax-plan.OutageMin+1)
				res.outages++
			}
		case ev < 8: // checkpoint in a link-up maintenance window
			if !linkDown {
				checkpoint()
			}
		default: // crash/recover (the reboot brings the link back up)
			if !linkDown {
				crashRecover()
			}
		}
	}

	// --- Quiesce: chaos disarmed, link forced up, writebacks drained.
	// From here on everything must succeed. ---
	final := srv.Engine()
	final.AttachFaults(nil, serveEnginePolicy(), nil)
	final.ForceLinkUp()
	if _, err := final.DrainWritebacks(); err != nil {
		fail("post-quiesce drain failed: %v", err)
	}

	// --- Verification: conservation, typed-only outcomes, zero silent
	// divergences modulo surviving write ambiguity. ---
	res.report = srv.Snapshot()
	var attempts uint64
	for c := serve.Class(0); c < serve.NumClasses; c++ {
		attempts += res.report.Ops[c].Attempts()
	}
	if want := uint64(plan.Clients * plan.OpsPerClient); attempts != want {
		fail("server outcome conservation: %d outcomes for %d submitted requests", attempts, want)
	}
	read := func(addr securemem.HomeAddr, buf []byte) error { return final.Read(addr, buf) }
	for _, c := range clients {
		res.violations = append(res.violations, c.Violations()...)
		res.violations = append(res.violations, c.VerifyFinal(read)...)
		o := c.Outcomes()
		if total := o.Served + o.Shed + o.Deadline + o.Overload + o.Refused + o.Ambiguous + o.Untyped; total != plan.OpsPerClient {
			fail("client outcome conservation: %d outcomes for %d submitted requests", total, plan.OpsPerClient)
		}
		res.tainted += c.TaintedBytes()
	}
	return res
}
