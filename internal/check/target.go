package check

import (
	"errors"
	"fmt"
	"reflect"

	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/sim"
)

// Target is the operation surface the checker drives. The production
// implementation wraps a *securemem.System (one per protection model);
// tests substitute deliberately broken implementations to prove the
// checker catches them.
//
// Contract: every method must return a non-nil error — never panic — for
// out-of-range addresses, including addresses whose addr+len wraps around
// 2^64. Ops a model does not support natively (the through-path and
// checkpoints outside ModelSalus) degrade to their closest supported
// equivalent so plaintext equivalence across models is preserved.
type Target interface {
	Name() string
	Read(addr uint64, buf []byte) error
	Write(addr uint64, data []byte) error
	ReadThrough(addr uint64, buf []byte) error
	WriteThrough(addr uint64, data []byte) error
	// VerifyRead is a read for the checker's own verification passes; it
	// should take the least-intrusive path available (e.g. not migrate a
	// page the op under test deliberately left non-resident).
	VerifyRead(addr uint64, buf []byte) error
	Checkpoint(addr uint64) error
	Flush() error
	SuspendResume() error
	// CheckInvariants asserts the target's internal invariants; the
	// checker calls it after every operation.
	CheckInvariants() error
}

// systemTarget adapts one securemem.System to the Target interface and
// carries the bookkeeping for its invariant checks.
type systemTarget struct {
	cfg    Config
	model  securemem.Model
	sys    *securemem.System
	prev   securemem.OpStats
	majors []uint64

	// Chaos-mode state: the injector and clock outlive a SuspendResume so
	// the fault schedule continues deterministically across the swap.
	inj   fault.Injector
	clock *sim.Engine
}

// NewSystemTarget builds a securemem-backed target for one model,
// fault-armed when cfg carries a FaultPlan.
func NewSystemTarget(cfg Config, model securemem.Model) (Target, error) {
	sys, err := securemem.New(securemem.Config{
		Geometry:    cfg.Geometry,
		Model:       model,
		TotalPages:  cfg.TotalPages,
		DevicePages: cfg.DevicePages,
	})
	if err != nil {
		return nil, err
	}
	t := &systemTarget{cfg: cfg, model: model, sys: sys, majors: sys.CounterMajors()}
	if cfg.Fault != nil {
		t.inj = cfg.Fault.New(cfg.faultSeed)
		t.clock = sim.NewEngine()
		sys.AttachFaults(t.inj, cfg.Fault.Policy, t.clock)
	}
	return t, nil
}

func (t *systemTarget) Name() string { return t.model.String() }

func (t *systemTarget) Read(addr uint64, buf []byte) error {
	return t.sys.Read(securemem.HomeAddr(addr), buf)
}

func (t *systemTarget) Write(addr uint64, data []byte) error {
	return t.sys.Write(securemem.HomeAddr(addr), data)
}

// throughOK reports whether the direct CXL path applies: ModelSalus and no
// end of the range resident (ranges are < 2 pages, so the ends suffice —
// the same rule securemem itself enforces).
func (t *systemTarget) throughOK(addr uint64, n int) bool {
	if t.model != securemem.ModelSalus {
		return false
	}
	if t.sys.IsResident(securemem.HomeAddr(addr)) {
		return false
	}
	return n == 0 || !t.sys.IsResident(securemem.HomeAddr(addr+uint64(n)-1))
}

func (t *systemTarget) ReadThrough(addr uint64, buf []byte) error {
	if t.throughOK(addr, len(buf)) {
		return t.sys.ReadThrough(securemem.HomeAddr(addr), buf)
	}
	return t.sys.Read(securemem.HomeAddr(addr), buf)
}

func (t *systemTarget) WriteThrough(addr uint64, data []byte) error {
	if t.throughOK(addr, len(data)) {
		return t.sys.WriteThrough(securemem.HomeAddr(addr), data)
	}
	return t.sys.Write(securemem.HomeAddr(addr), data)
}

func (t *systemTarget) VerifyRead(addr uint64, buf []byte) error {
	// Prefer the through-path so verification does not migrate pages the
	// sequence left in the CXL tier.
	return t.ReadThrough(addr, buf)
}

func (t *systemTarget) Checkpoint(addr uint64) error {
	if t.model == securemem.ModelSalus {
		return t.sys.CheckpointChunk(securemem.HomeAddr(addr))
	}
	// Other models have no split state; mirror the bounds contract so all
	// targets agree on which checkpoint ops are rejected.
	if addr >= t.sys.Size() {
		return securemem.ErrOutOfRange
	}
	return nil
}

// Flush flushes and asserts the metamorphic property that a second Flush
// is a no-op: no evictions, writebacks, or re-encryptions of any kind.
func (t *systemTarget) Flush() error {
	if err := t.sys.Flush(); err != nil {
		return err
	}
	before := t.sys.Stats()
	if err := t.sys.Flush(); err != nil {
		return fmt.Errorf("second flush errored: %w", err)
	}
	if after := t.sys.Stats(); after != before {
		return fmt.Errorf("flush not idempotent: stats moved from %+v to %+v", before, after)
	}
	if n := t.sys.ResidentPages(); n != 0 {
		return fmt.Errorf("flush left %d pages resident", n)
	}
	return nil
}

// SuspendResume suspends to an untrusted image plus trusted root and
// resumes from them, replacing the live system (ModelSalus); other models
// flush, the closest behaviour they support.
func (t *systemTarget) SuspendResume() error {
	if t.model != securemem.ModelSalus {
		return t.sys.Flush()
	}
	image, root, err := t.sys.Suspend()
	if err != nil {
		return fmt.Errorf("suspend: %w", err)
	}
	resumed, err := securemem.Resume(securemem.Config{
		Geometry:    t.cfg.Geometry,
		Model:       t.model,
		TotalPages:  t.cfg.TotalPages,
		DevicePages: t.cfg.DevicePages,
	}, image, root)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	t.sys = resumed
	// Re-arm the same injector and clock: the fault schedule continues
	// across the swap, exactly as the hardware would keep failing.
	if t.inj != nil {
		resumed.AttachFaults(t.inj, t.cfg.Fault.Policy, t.clock)
	}
	// The resumed system starts with zeroed op counters; re-baseline the
	// monotonicity tracking. Counter majors survive the round trip, so
	// their baseline is kept — resuming must never regress a counter.
	t.prev = resumed.Stats()
	return nil
}

// PoisonedRange and FaultStats implement faultStateReporter, letting the
// chaos replay assert quarantine semantics and aggregate fault counters.
func (t *systemTarget) PoisonedRange(addr uint64, n int) bool {
	return t.sys.PoisonedRange(securemem.HomeAddr(addr), n)
}

func (t *systemTarget) FaultStats() securemem.OpStats { return t.sys.Stats() }

// CheckInvariants asserts stats conservation, per-model accounting, and
// counter monotonicity.
func (t *systemTarget) CheckInvariants() error {
	cur := t.sys.Stats()

	// Every operation counter is monotone non-decreasing.
	cv, pv := reflect.ValueOf(cur), reflect.ValueOf(t.prev)
	for i := 0; i < cv.NumField(); i++ {
		if cv.Field(i).Uint() < pv.Field(i).Uint() {
			return fmt.Errorf("stat %s regressed from %d to %d",
				cv.Type().Field(i).Name, pv.Field(i).Uint(), cv.Field(i).Uint())
		}
	}
	t.prev = cur

	// Tier conservation: every page that entered the device tier either
	// left it again — evicted, or dropped when its frame was quarantined
	// after an uncorrectable fault — or is still resident.
	if out := cur.PageEvictions + cur.PoisonPageDrops; cur.PageMigrationsIn < out {
		return fmt.Errorf("more pages left the device tier (%d evicted + %d poison-dropped) than migrated in (%d)",
			cur.PageEvictions, cur.PoisonPageDrops, cur.PageMigrationsIn)
	}
	if resident := uint64(t.sys.ResidentPages()); cur.PageMigrationsIn-cur.PageEvictions-cur.PoisonPageDrops != resident {
		return fmt.Errorf("tier conservation broken: %d in - %d evicted - %d poison-dropped != %d resident",
			cur.PageMigrationsIn, cur.PageEvictions, cur.PoisonPageDrops, resident)
	}

	switch t.model {
	case securemem.ModelSalus:
		// The headline property: relocation never re-encrypts.
		if cur.RelocationReEncryptions != 0 {
			return fmt.Errorf("salus performed %d relocation re-encryptions", cur.RelocationReEncryptions)
		}
		// Every evicted page's chunks are either written back or skipped.
		chunks := uint64(t.cfg.Geometry.ChunksPerPage())
		if got, want := cur.DirtyChunkWritebacks+cur.CleanChunksSkipped, chunks*cur.PageEvictions; got != want {
			return fmt.Errorf("eviction chunk accounting: %d dirty + clean != %d evictions × %d chunks",
				got, cur.PageEvictions, chunks)
		}
	case securemem.ModelConventional:
		// One re-encryption per sector per tier crossing, full pages only;
		// sectors of quarantined chunks are skipped but accounted.
		sectors := uint64(t.cfg.Geometry.SectorsPerPage())
		if got, want := cur.RelocationReEncryptions+cur.PoisonSkippedRelocations, sectors*(cur.PageMigrationsIn+cur.PageEvictions); got != want {
			return fmt.Errorf("conventional relocation re-encryptions + poison-skips = %d, want %d (one per sector per crossing)", got, want)
		}
		if cur.FullPageWritebacks != cur.PageEvictions {
			return fmt.Errorf("full-page writebacks %d != evictions %d", cur.FullPageWritebacks, cur.PageEvictions)
		}
	case securemem.ModelNone:
		if cur.MACVerifies != 0 || cur.BMTVerifies != 0 || cur.RelocationReEncryptions != 0 ||
			cur.CollapseReEncryptions != 0 || cur.OverflowReEncryptions != 0 {
			return errors.New("unprotected model recorded security operations")
		}
	}

	// Home major counters only move forward.
	majors := t.sys.CounterMajors()
	if len(majors) != len(t.majors) {
		return fmt.Errorf("counter major set changed size: %d -> %d", len(t.majors), len(majors))
	}
	for i := range majors {
		if majors[i] < t.majors[i] {
			return fmt.Errorf("counter major %d regressed from %d to %d", i, t.majors[i], majors[i])
		}
	}
	t.majors = majors
	return nil
}
