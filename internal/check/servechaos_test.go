package check

import (
	"strings"
	"testing"

	"github.com/salus-sim/salus/internal/serve"
)

// TestServeChaosSmoke runs a short combined-chaos campaign: concurrent
// client fleets under simultaneous transient faults, link outages, and
// crash/recover cycles. It must come back with zero violations and must
// actually have exercised each chaos family.
func TestServeChaosSmoke(t *testing.T) {
	plan := DefaultServePlan()
	plan.Seeds = 3
	if testing.Short() {
		plan.Seeds = 1
	}
	res := RunServe(plan)
	if res.Failed() {
		t.Fatalf("combined-chaos campaign failed:\n  %s", strings.Join(res.Violations, "\n  "))
	}
	if res.SeedsRun != plan.Seeds {
		t.Fatalf("seeds run = %d, want %d", res.SeedsRun, plan.Seeds)
	}
	if want := plan.Seeds * plan.Clients * plan.OpsPerClient; res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Outages == 0 {
		t.Fatal("campaign injected no link outages")
	}
	if res.Checkpoints == 0 {
		t.Fatal("campaign committed no checkpoints")
	}
	if !testing.Short() && res.Crashes == 0 {
		t.Fatal("campaign survived no crash/recover cycles")
	}
	// The histograms behind the -report quantiles must have data.
	if res.Aggregate.Latency[serve.Interactive].Count() == 0 {
		t.Fatal("interactive latency histogram is empty")
	}
}

// TestServeChaosHealthyBaseline disables every chaos family: the
// interactive class must then serve everything (availability exactly 1)
// and no byte may end the session write-ambiguous.
func TestServeChaosHealthyBaseline(t *testing.T) {
	plan := DefaultServePlan()
	plan.Seeds = 2
	plan.EventEvery = 0
	plan.TransientRate = 0
	res := RunServe(plan)
	if res.Failed() {
		t.Fatalf("healthy baseline failed:\n  %s", strings.Join(res.Violations, "\n  "))
	}
	if got := res.Aggregate.Availability(serve.Interactive); got != 1 {
		t.Fatalf("healthy interactive availability = %.4f, want 1", got)
	}
	if res.TaintedBytes != 0 {
		t.Fatalf("healthy run left %d tainted bytes", res.TaintedBytes)
	}
	if res.Outages != 0 || res.Crashes != 0 {
		t.Fatalf("healthy run injected chaos: %d outages, %d crashes", res.Outages, res.Crashes)
	}
}

// TestServeChaosSLOEnforced pins that the SLO floor is a real assertion:
// an impossible floor must turn an otherwise clean campaign into a
// failure typed as an SLO miss.
func TestServeChaosSLOEnforced(t *testing.T) {
	plan := DefaultServePlan()
	plan.Seeds = 1
	plan.SLO[serve.Bulk] = 1.01 // unattainable by construction
	res := RunServe(plan)
	if !res.Failed() {
		t.Fatal("impossible SLO floor did not fail the campaign")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "SLO miss") && strings.Contains(v, "bulk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations carry no bulk SLO miss: %v", res.Violations)
	}
}
