package check

import (
	"errors"

	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/securemem"
)

// Chaos mode: the differential replay runs with every securemem target
// armed with a deterministic fault injector, and the equivalence oracle is
// weakened exactly as far as the declared fault plan allows — no further:
//
//   - Under a recoverable-only plan (transient link faults within the
//     retry budget), nothing is allowed to change: every in-range op must
//     succeed and return byte-identical oracle plaintext, end to end.
//   - Under an unrecoverable plan, an in-range op may fail, but only with
//     a typed fault error (ErrTransient or ErrPoison). Data a failed
//     write may have half-applied is tainted until a later write lands;
//     every untainted byte must still match the oracle, and a read that
//     covers a range the target itself reports as quarantined must never
//     succeed. A divergence outside those carve-outs — a silent plaintext
//     mismatch, an untyped error, served bytes from a poisoned range — is
//     a Failure and shrinks to a reproducer like any other bug.

// FaultPlan arms every securemem-backed target of a replay with a fault
// injector. Injection is deterministic per sequence: New is called once
// per target with the sequence's seed, so a shrunk reproducer replays the
// same fault schedule.
type FaultPlan struct {
	// New builds a fresh injector for one target.
	New func(seed int64) fault.Injector
	// Policy is the retry policy attached alongside the injector; the
	// zero value means securemem.DefaultRetryPolicy.
	Policy securemem.RetryPolicy
	// Unrecoverable declares that the plan may emit uncorrectable faults.
	// It widens the oracle as described above; a plan that injects poison
	// without declaring it is itself caught as a Failure.
	Unrecoverable bool
	// Sink, when non-nil, receives each target's final op stats after a
	// sequence replays clean, for campaign-level fault accounting.
	Sink func(target string, st securemem.OpStats)
}

// ChaosConfig returns cfg armed with the standard chaos fault plan: a
// seeded rate injector with burst-bounded transients that always fit the
// retry budget, plus — when unrecoverable — rare uncorrectable media
// errors on both tiers. GoTest emits reproducers in terms of this plan.
func ChaosConfig(cfg Config, unrecoverable bool) Config {
	rates := fault.Rates{Transient: 0.02}
	if unrecoverable {
		rates.Poison = 0.0008
		rates.StuckBit = 0.0004
	}
	cfg.Fault = &FaultPlan{
		New:           func(seed int64) fault.Injector { return fault.NewRatePlan(seed, rates, 3) },
		Policy:        securemem.RetryPolicy{MaxRetries: 4, BaseBackoff: 8, MaxBackoff: 64},
		Unrecoverable: unrecoverable,
	}
	return cfg
}

// faultErr reports whether err is (or wraps) one of the typed fault
// sentinels an armed target is allowed to surface.
func faultErr(err error) bool {
	return errors.Is(err, securemem.ErrTransient) || errors.Is(err, securemem.ErrPoison)
}

// faultStateReporter is the optional Target extension chaos mode uses to
// assert quarantine semantics and to aggregate fault stats. Targets that
// do not implement it (e.g. the plain oracle-like test targets) are held
// to the plain byte-equivalence rules only.
type faultStateReporter interface {
	PoisonedRange(addr uint64, n int) bool
	FaultStats() securemem.OpStats
}
