package check

// Shrink reduces a failing sequence to a (locally) minimal reproducer:
// first it truncates everything after the failing op, then it runs a
// ddmin-style pass, removing op windows of halving size as long as the
// reduced sequence still fails. Ops are self-contained (address, length,
// payload tag), so removing any subset leaves a replayable sequence.
//
// Replay is deterministic, so the result is reproducible: replaying the
// returned sequence fails with the same class of violation.
func Shrink(cfg Config, seq Sequence) Sequence {
	return shrinkOps(seq, func(ops []Op) *Failure {
		return ReplaySequence(cfg, Sequence{Seed: seq.Seed, Ops: ops})
	})
}

// ShrinkCrash is Shrink for crash-mode sequences: the reduction predicate
// is the full crash replay (golden run plus every enumerated cut), so the
// minimal sequence still reaches the failing crash point.
func ShrinkCrash(plan CrashPlan, seq Sequence) Sequence {
	return shrinkOps(seq, func(ops []Op) *Failure {
		return ReplayCrashSequence(plan, Sequence{Seed: seq.Seed, Ops: ops})
	})
}

// shrinkOps is the ddmin core shared by the replay modes; fails replays a
// candidate op list under the original seed.
func shrinkOps(seq Sequence, fails func(ops []Op) *Failure) Sequence {
	ops := append([]Op(nil), seq.Ops...)
	f := fails(ops)
	if f == nil {
		// Not reproducible from a fresh replay (should not happen with
		// deterministic targets); return the input unshrunk.
		return seq
	}
	// Drop the suffix the failure never reached.
	if f.OpIdx >= 0 && f.OpIdx+1 < len(ops) {
		if trunc := ops[:f.OpIdx+1]; fails(trunc) != nil {
			ops = trunc
		}
	}
	// Remove windows of halving size while the failure reproduces.
	for sz := len(ops) / 2; sz >= 1; sz /= 2 {
		for i := 0; i+sz <= len(ops); {
			cand := make([]Op, 0, len(ops)-sz)
			cand = append(cand, ops[:i]...)
			cand = append(cand, ops[i+sz:]...)
			if fails(cand) != nil {
				ops = cand
			} else {
				i += sz
			}
		}
	}
	return Sequence{Seed: seq.Seed, Ops: ops}
}
