package check

import (
	"fmt"
	"strings"
)

// kindIdent maps op kinds to their exported identifiers for emitted code.
var kindIdent = map[OpKind]string{
	OpRead:            "check.OpRead",
	OpWrite:           "check.OpWrite",
	OpReadThrough:     "check.OpReadThrough",
	OpWriteThrough:    "check.OpWriteThrough",
	OpCheckpoint:      "check.OpCheckpoint",
	OpFlush:           "check.OpFlush",
	OpSuspendResume:   "check.OpSuspendResume",
	OpEpochCheckpoint: "check.OpEpochCheckpoint",
	OpDrainWritebacks: "check.OpDrainWritebacks",
}

// writeOps renders a sequence's op list as Go composite-literal lines.
func writeOps(b *strings.Builder, ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpFlush, OpSuspendResume, OpEpochCheckpoint, OpDrainWritebacks:
			fmt.Fprintf(b, "\t\t{Kind: %s},\n", kindIdent[op.Kind])
		case OpCheckpoint:
			fmt.Fprintf(b, "\t\t{Kind: %s, Addr: %#x},\n", kindIdent[op.Kind], op.Addr)
		case OpWrite, OpWriteThrough:
			fmt.Fprintf(b, "\t\t{Kind: %s, Addr: %#x, Len: %d, Tag: %d},\n", kindIdent[op.Kind], op.Addr, op.Len, op.Tag)
		default:
			fmt.Fprintf(b, "\t\t{Kind: %s, Addr: %#x, Len: %d},\n", kindIdent[op.Kind], op.Addr, op.Len)
		}
	}
}

// GoTest renders the failure's (shrunk) sequence as a runnable Go
// regression test asserting the sequence replays cleanly under cfg's
// sizing. It is meant to be committed next to the fix: paste it into a
// _test.go file in any package that can import internal/check. name
// becomes part of the test function name and must be a valid identifier
// suffix.
func (f *Failure) GoTest(cfg Config, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Regression test emitted by the salus-check shrinker.\n")
	fmt.Fprintf(&b, "// Original failure: %s\n", f)
	fmt.Fprintf(&b, "func TestCheckRegression_%s(t *testing.T) {\n", name)
	b.WriteString("\tcfg := check.DefaultConfig()\n")
	fmt.Fprintf(&b, "\tcfg.TotalPages = %d\n", cfg.TotalPages)
	fmt.Fprintf(&b, "\tcfg.DevicePages = %d\n", cfg.DevicePages)
	if cfg.Fault != nil {
		// Re-arm the standard chaos plan. A custom FaultPlan cannot be
		// rendered as source; the emitted reproducer approximates it with
		// ChaosConfig at the same recoverability level.
		fmt.Fprintf(&b, "\tcfg = check.ChaosConfig(cfg, %v)\n", cfg.Fault.Unrecoverable)
	}
	fmt.Fprintf(&b, "\tseq := check.Sequence{Seed: %d, Ops: []check.Op{\n", f.Seq.Seed)
	writeOps(&b, f.Seq.Ops)
	b.WriteString("\t}}\n")
	b.WriteString("\tif f := check.ReplaySequence(cfg, seq); f != nil {\n")
	b.WriteString("\t\tt.Fatalf(\"regression reproduced: %v\", f)\n")
	b.WriteString("\t}\n")
	b.WriteString("}\n")
	return b.String()
}

// CrashGoTest renders the failure's (shrunk) crash-mode sequence as a
// runnable Go regression test replaying it — golden run, every enumerated
// crash point, and the rollback probe — under plan's sizing.
func (f *Failure) CrashGoTest(plan CrashPlan, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Regression test emitted by the salus-check crash shrinker.\n")
	fmt.Fprintf(&b, "// Original failure: %s\n", f)
	fmt.Fprintf(&b, "func TestCrashRegression_%s(t *testing.T) {\n", name)
	b.WriteString("\tplan := check.DefaultCrashPlan()\n")
	fmt.Fprintf(&b, "\tplan.TotalPages = %d\n", plan.TotalPages)
	fmt.Fprintf(&b, "\tplan.DevicePages = %d\n", plan.DevicePages)
	fmt.Fprintf(&b, "\tseq := check.Sequence{Seed: %d, Ops: []check.Op{\n", f.Seq.Seed)
	writeOps(&b, f.Seq.Ops)
	b.WriteString("\t}}\n")
	b.WriteString("\tif f := check.ReplayCrashSequence(plan, seq); f != nil {\n")
	b.WriteString("\t\tt.Fatalf(\"regression reproduced: %v\", f)\n")
	b.WriteString("\t}\n")
	b.WriteString("}\n")
	return b.String()
}
