// Package check is a deterministic differential and metamorphic testing
// harness for the securemem protection models.
//
// A seeded PRNG generates randomized operation sequences — reads, cached
// writes, direct CXL reads/writes, chunk checkpoints, flushes, and
// suspend/resume cycles, skewed to force page migrations, evictions,
// partial-sector writes, and chunk-boundary straddles, with a fraction of
// hostile out-of-range and address-wrapping probes. Each sequence is
// replayed against every protection model plus a plain []byte oracle, and
// after every operation the harness asserts:
//
//   - plaintext equivalence: every model returns (and reads back) exactly
//     the oracle's bytes, and hostile operations are rejected by every
//     model without panicking;
//   - the Salus invariants: zero relocation re-encryptions, monotone
//     non-decreasing home major counters, idempotent Flush, and
//     suspend/resume round-trip fidelity;
//   - stats conservation: pages migrated in minus pages evicted equals
//     pages resident, eviction chunk accounting sums to chunks-per-page,
//     and every operation counter is monotone.
//
// On failure the sequence is shrunk (ddmin-style) to a minimal reproducer
// that can be printed as a runnable Go regression test, so every bug the
// checker finds lands with its own pinned test.
package check

import (
	"fmt"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/securemem"
)

// OpKind identifies one generated operation.
type OpKind uint8

// The operation vocabulary. Through-ops and checkpoints degrade gracefully
// on models that lack the direct CXL path (see Target).
const (
	OpRead OpKind = iota
	OpWrite
	OpReadThrough
	OpWriteThrough
	OpCheckpoint
	OpFlush
	OpSuspendResume
	// OpEpochCheckpoint commits one incremental checkpoint epoch to the
	// crash journal. It is generated only for crash-mode sequences (see
	// crash.go); the plain replay treats it as a no-op because without a
	// journal it has no observable plaintext effect.
	OpEpochCheckpoint
	// OpDrainWritebacks drains the dirty-writeback queue parked by a link
	// outage. It is generated only for link-mode sequences (see
	// linkchaos.go); the plain replay treats it as a no-op because without
	// an attached link nothing ever parks.
	OpDrainWritebacks
)

// String returns the op name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReadThrough:
		return "read-through"
	case OpWriteThrough:
		return "write-through"
	case OpCheckpoint:
		return "checkpoint"
	case OpFlush:
		return "flush"
	case OpSuspendResume:
		return "suspend-resume"
	case OpEpochCheckpoint:
		return "epoch-checkpoint"
	case OpDrainWritebacks:
		return "drain-writebacks"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one self-contained operation: replaying it needs no state beyond
// the fields here, which is what makes sequences shrinkable.
type Op struct {
	Kind OpKind
	Addr uint64
	Len  int  // payload length for read/write-class ops
	Tag  byte // write payload = FillData(Tag, Len)
}

// String renders the op compactly.
func (o Op) String() string {
	switch o.Kind {
	case OpCheckpoint:
		return fmt.Sprintf("%v addr=%#x", o.Kind, o.Addr)
	case OpFlush, OpSuspendResume, OpEpochCheckpoint, OpDrainWritebacks:
		return o.Kind.String()
	case OpWrite, OpWriteThrough:
		return fmt.Sprintf("%v addr=%#x len=%d tag=%d", o.Kind, o.Addr, o.Len, o.Tag)
	}
	return fmt.Sprintf("%v addr=%#x len=%d", o.Kind, o.Addr, o.Len)
}

// Sequence is a replayable operation list tagged with the seed that
// generated it.
type Sequence struct {
	Seed int64
	Ops  []Op
}

// Config sizes a checking campaign.
type Config struct {
	Seeds     int   // seeds run by Run
	Ops       int   // operations per generated sequence
	FirstSeed int64 // Run covers [FirstSeed, FirstSeed+Seeds)

	TotalPages  int // home (CXL) pages; keep small so sweeps stay fast
	DevicePages int // device frames; << TotalPages to force eviction churn
	Geometry    config.Geometry

	// Models replayed differentially; the []byte oracle is always present.
	Models []securemem.Model

	// Verbose, when non-nil, receives per-seed progress lines.
	Verbose func(string)

	// NewTargets overrides target construction. Tests use it to aim the
	// checker at deliberately broken implementations and prove it catches
	// them; nil builds one securemem target per entry in Models.
	NewTargets func(Config) ([]Target, error)

	// Fault, when non-nil, enables chaos mode: every securemem target is
	// armed with a deterministic fault injector and the replay asserts
	// the recovery contract (see FaultPlan).
	Fault *FaultPlan

	// faultSeed is the seed handed to Fault.New; ReplaySequence sets it
	// from the sequence being replayed so reproducers are deterministic.
	faultSeed int64
}

// DefaultConfig returns the smoke-budget configuration used by
// `make check-smoke`: 25 seeds × 200 ops against all three models, with a
// 12-page home space over 3 device frames so every seed sees constant
// migration and eviction pressure.
func DefaultConfig() Config {
	return Config{
		Seeds:     25,
		Ops:       200,
		FirstSeed: 1,

		TotalPages:  12,
		DevicePages: 3,
		Geometry:    config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},

		Models: []securemem.Model{securemem.ModelNone, securemem.ModelConventional, securemem.ModelSalus},
	}
}

// size returns the home address-space size in bytes.
func (c Config) size() uint64 { return uint64(c.TotalPages) * uint64(c.Geometry.PageSize) }

func (c Config) targets() ([]Target, error) {
	if c.NewTargets != nil {
		return c.NewTargets(c)
	}
	ts := make([]Target, 0, len(c.Models))
	for _, m := range c.Models {
		t, err := NewSystemTarget(c, m)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// Failure describes one invariant violation, pinned to the op that
// triggered it.
type Failure struct {
	Seq    Sequence // the sequence that reproduces the failure
	OpIdx  int      // failing op index; len(Seq.Ops) = final sweep, -1 = setup
	Target string   // name of the diverging target
	Reason string
	// Loc, when non-empty, overrides the op-index location. Crash-mode
	// failures use it to name the crash point ("cut 17/80 (torn)") that
	// the whole sequence, not one op, led to.
	Loc string
}

// String renders the failure with its location inside the sequence.
func (f *Failure) String() string {
	loc := "setup"
	switch {
	case f.Loc != "":
		loc = f.Loc
	case f.OpIdx >= 0 && f.OpIdx < len(f.Seq.Ops):
		loc = fmt.Sprintf("op %d (%v)", f.OpIdx, f.Seq.Ops[f.OpIdx])
	case f.OpIdx == len(f.Seq.Ops):
		loc = "final sweep"
	}
	return fmt.Sprintf("seed %d, %s, target %s: %s", f.Seq.Seed, loc, f.Target, f.Reason)
}

// Result summarises a Run.
type Result struct {
	SeedsRun int
	OpsRun   int
	Failure  *Failure // nil when every seed replayed clean
}

// Run generates and replays cfg.Seeds sequences. On the first failure it
// shrinks the sequence to a minimal reproducer and stops.
func Run(cfg Config) Result {
	var res Result
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.FirstSeed + int64(i)
		seq := GenerateSequence(cfg, seed)
		res.SeedsRun++
		res.OpsRun += len(seq.Ops)
		f := ReplaySequence(cfg, seq)
		if f == nil {
			if cfg.Verbose != nil {
				cfg.Verbose(fmt.Sprintf("seed %d: %d ops clean", seed, len(seq.Ops)))
			}
			continue
		}
		min := Shrink(cfg, f.Seq)
		// Re-replay the minimal sequence so the failure's location and
		// reason describe it, not the original.
		if mf := ReplaySequence(cfg, min); mf != nil {
			f = mf
		}
		res.Failure = f
		return res
	}
	return res
}

// ReplaySequence replays one sequence against freshly built targets and a
// zeroed oracle, returning the first invariant violation or nil.
func ReplaySequence(cfg Config, seq Sequence) *Failure {
	cfg.faultSeed = seq.Seed
	targets, err := cfg.targets()
	if err != nil {
		return &Failure{Seq: seq, OpIdx: -1, Reason: fmt.Sprintf("target setup: %v", err)}
	}
	st := replayState{cfg: cfg, targets: targets, oracle: make([]byte, cfg.size())}
	if cfg.Fault != nil && cfg.Fault.Unrecoverable {
		st.taint = make([][]bool, len(targets))
		for i := range st.taint {
			st.taint[i] = make([]bool, cfg.size())
		}
	}
	for i, op := range seq.Ops {
		if f := st.apply(op); f != nil {
			f.Seq, f.OpIdx = seq, i
			return f
		}
	}
	if f := st.finalSweep(); f != nil {
		f.Seq, f.OpIdx = seq, len(seq.Ops)
		return f
	}
	if cfg.Fault != nil && cfg.Fault.Sink != nil {
		for _, t := range targets {
			if r, ok := t.(faultStateReporter); ok {
				cfg.Fault.Sink(t.Name(), r.FaultStats())
			}
		}
	}
	return nil
}

type replayState struct {
	cfg     Config
	targets []Target
	oracle  []byte
	// taint marks, per target, bytes a fault-failed write may have left
	// half-applied; they are excluded from oracle comparison until a
	// later successful write covers them. Nil outside unrecoverable
	// chaos mode.
	taint [][]bool
}

// setTaint marks or clears [addr, addr+n) in target ti's taint map.
func (st *replayState) setTaint(ti int, addr uint64, n int, v bool) {
	if st.taint == nil {
		return
	}
	row := st.taint[ti]
	for i := uint64(0); i < uint64(n); i++ {
		row[addr+i] = v
	}
}

// mismatch returns the first index where got differs from want outside
// target ti's tainted bytes, or -1 when they agree.
func (st *replayState) mismatch(ti int, addr uint64, got, want []byte) int {
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if st.taint != nil && st.taint[ti][addr+uint64(i)] {
			continue
		}
		return i
	}
	return -1
}

// wantErr reports whether every target must reject the op.
func (st *replayState) wantErr(op Op) bool {
	size := uint64(len(st.oracle))
	switch op.Kind {
	case OpFlush, OpSuspendResume, OpEpochCheckpoint, OpDrainWritebacks:
		return false
	case OpCheckpoint:
		return op.Addr >= size
	}
	return op.Addr > size || uint64(op.Len) > size-op.Addr
}

// apply runs one op on every target, then checks equivalence against the
// oracle and each target's internal invariants.
func (st *replayState) apply(op Op) *Failure {
	reject := st.wantErr(op)
	unrec := st.cfg.Fault != nil && st.cfg.Fault.Unrecoverable
	write := op.Kind == OpWrite || op.Kind == OpWriteThrough
	var data []byte
	if write {
		data = FillData(op.Tag, op.Len)
	}

	for ti, t := range st.targets {
		var buf []byte
		var err error
		switch op.Kind {
		case OpRead:
			buf = make([]byte, op.Len)
			err = safely(func() error { return t.Read(op.Addr, buf) })
		case OpReadThrough:
			buf = make([]byte, op.Len)
			err = safely(func() error { return t.ReadThrough(op.Addr, buf) })
		case OpWrite:
			err = safely(func() error { return t.Write(op.Addr, data) })
		case OpWriteThrough:
			err = safely(func() error { return t.WriteThrough(op.Addr, data) })
		case OpCheckpoint:
			err = safely(func() error { return t.Checkpoint(op.Addr) })
		case OpFlush:
			err = safely(t.Flush)
		case OpSuspendResume:
			err = safely(t.SuspendResume)
		case OpEpochCheckpoint, OpDrainWritebacks:
			// Journal-backed epoch checkpoints and writeback drains only
			// exist in crash/link mode; the plain replay passes them through.
		default:
			return &Failure{Target: t.Name(), Reason: fmt.Sprintf("generator produced unknown op kind %d", op.Kind)}
		}

		if pe, ok := err.(*panicError); ok {
			return &Failure{Target: t.Name(), Reason: pe.Error()}
		}
		if reject && err == nil {
			return &Failure{Target: t.Name(), Reason: "accepted an out-of-range operation"}
		}
		if !reject && err != nil {
			if !unrec {
				return &Failure{Target: t.Name(), Reason: fmt.Sprintf("rejected an in-range operation: %v", err)}
			}
			if !faultErr(err) {
				return &Failure{Target: t.Name(), Reason: fmt.Sprintf("in-range operation failed with a non-fault error: %v", err)}
			}
			// A typed fault surfaced — the unrecoverable-plan contract. A
			// failed write may have landed partially; taint its range so
			// later compares skip those bytes until a write succeeds.
			if write {
				st.setTaint(ti, op.Addr, op.Len, true)
			}
			continue
		}
		if !reject && write {
			st.setTaint(ti, op.Addr, op.Len, false)
		}
		if !reject && (op.Kind == OpRead || op.Kind == OpReadThrough) {
			if unrec && op.Len > 0 {
				if r, ok := t.(faultStateReporter); ok && r.PoisonedRange(op.Addr, op.Len) {
					return &Failure{Target: t.Name(), Reason: fmt.Sprintf("read at %#x served bytes from a quarantined range", op.Addr)}
				}
			}
			want := st.oracle[op.Addr : op.Addr+uint64(op.Len)]
			if i := st.mismatch(ti, op.Addr, buf, want); i >= 0 {
				return &Failure{Target: t.Name(), Reason: diffReason("read", op.Addr, i, buf, want)}
			}
		}
	}

	// Commit in-range writes to the oracle, then read them back from every
	// target so write-class divergence surfaces on the very op that caused
	// it, not on some later read. Targets whose write failed under an
	// unrecoverable fault plan carry taint instead of the new bytes.
	if !reject && write {
		copy(st.oracle[op.Addr:], data)
		if f := st.verifyRange(op.Addr, op.Len); f != nil {
			return f
		}
	}

	for _, t := range st.targets {
		if err := safely(t.CheckInvariants); err != nil {
			return &Failure{Target: t.Name(), Reason: fmt.Sprintf("invariant: %v", err)}
		}
	}
	return nil
}

// verifyRange reads [addr, addr+n) back from every target and compares it
// with the oracle, using each target's least-intrusive read path.
func (st *replayState) verifyRange(addr uint64, n int) *Failure {
	unrec := st.cfg.Fault != nil && st.cfg.Fault.Unrecoverable
	want := st.oracle[addr : addr+uint64(n)]
	for ti, t := range st.targets {
		buf := make([]byte, n)
		if err := safely(func() error { return t.VerifyRead(addr, buf) }); err != nil {
			if unrec && faultErr(err) {
				// The range is unreadable because the declared fault plan
				// poisoned it (or exhausted the retry budget). Surfacing
				// a typed error is the contract; nothing to compare.
				continue
			}
			return &Failure{Target: t.Name(), Reason: fmt.Sprintf("verify read at %#x: %v", addr, err)}
		}
		if unrec && n > 0 {
			if r, ok := t.(faultStateReporter); ok && r.PoisonedRange(addr, n) {
				return &Failure{Target: t.Name(), Reason: fmt.Sprintf("verify read at %#x served bytes from a quarantined range", addr)}
			}
		}
		if i := st.mismatch(ti, addr, buf, want); i >= 0 {
			return &Failure{Target: t.Name(), Reason: diffReason("verify read", addr, i, buf, want)}
		}
	}
	return nil
}

// finalSweep compares every byte of every target against the oracle.
func (st *replayState) finalSweep() *Failure {
	stride := st.cfg.Geometry.ChunkSize
	for addr := uint64(0); addr < uint64(len(st.oracle)); addr += uint64(stride) {
		if f := st.verifyRange(addr, stride); f != nil {
			return f
		}
	}
	return nil
}

// diffReason renders a plaintext divergence at the given byte index.
func diffReason(what string, addr uint64, i int, got, want []byte) string {
	return fmt.Sprintf("%s at %#x diverged from oracle at byte %d: got %#x want %#x",
		what, addr, i, got[i], want[i])
}

// panicError marks a recovered panic. A panic is always a failure, even
// where an error return was expected.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// safely runs f, converting a panic into a *panicError.
func safely(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r}
		}
	}()
	return f()
}
