package check

import (
	"strings"
	"testing"
)

// tinyCrashPlan keeps crash tests fast: few ops, tight checkpoint cadence,
// small footprint — still enough to commit several epochs and exercise
// every damage mode at every cut.
func tinyCrashPlan() CrashPlan {
	plan := DefaultCrashPlan()
	plan.Seeds = 2
	plan.Ops = 24
	plan.CheckpointEvery = 8
	plan.TotalPages = 4
	plan.DevicePages = 2
	return plan
}

func TestCrashCampaignSmoke(t *testing.T) {
	res := RunCrash(tinyCrashPlan())
	if res.Failure != nil {
		t.Fatalf("crash campaign failed: %v", res.Failure)
	}
	if res.SeedsRun != 2 {
		t.Errorf("SeedsRun = %d, want 2", res.SeedsRun)
	}
	// Baseline + interleaved + final checkpoints per seed.
	if res.Epochs < 2*3 {
		t.Errorf("Epochs = %d, want >= 6", res.Epochs)
	}
	if res.Cuts == 0 || res.Recoveries == 0 {
		t.Errorf("enumeration did no work: %d cuts, %d recoveries", res.Cuts, res.Recoveries)
	}
	// Every cut either recovers or detects, except the ones before the
	// baseline commit's final sync: per seed the empty baseline epoch is
	// exactly 3 tape events (sync, commit write, sync), so boundaries
	// e=0..2 pair with no epoch, under each of the 4 damage modes.
	preCommit := res.SeedsRun * 3 * 4
	if res.Recoveries+res.Detected != res.Cuts-preCommit {
		t.Errorf("cuts %d - %d pre-commit != recoveries %d + detections %d",
			res.Cuts, preCommit, res.Recoveries, res.Detected)
	}
	if res.Detected == 0 {
		t.Error("no corrupting cut was detected — CutCorrupt is not biting")
	}
}

func TestGenerateCrashSequenceDeterministic(t *testing.T) {
	plan := tinyCrashPlan()
	a := GenerateCrashSequence(plan, 7)
	b := GenerateCrashSequence(plan, 7)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a.Ops[i], b.Ops[i])
		}
	}
	var epochs int
	size := plan.size()
	for _, op := range a.Ops {
		if op.Kind == OpEpochCheckpoint {
			epochs++
			continue
		}
		if op.Kind != OpFlush && (op.Addr >= size || uint64(op.Len) > size-op.Addr) {
			t.Fatalf("generated out-of-range op %v", op)
		}
	}
	if epochs < 2 {
		t.Fatalf("sequence carries %d epoch checkpoints, want >= 2", epochs)
	}
	if last := a.Ops[len(a.Ops)-1]; last.Kind != OpEpochCheckpoint {
		t.Fatalf("sequence must end in an epoch checkpoint, ends in %v", last)
	}
}

func TestReplayCrashSequenceRejectsOutOfRange(t *testing.T) {
	plan := tinyCrashPlan()
	seq := Sequence{Seed: 1, Ops: []Op{
		{Kind: OpWrite, Addr: plan.size(), Len: 8, Tag: 1},
		{Kind: OpEpochCheckpoint},
	}}
	f := ReplayCrashSequence(plan, seq)
	if f == nil {
		t.Fatal("out-of-range op accepted by crash replay")
	}
	if !strings.Contains(f.Reason, "in range") {
		t.Errorf("unexpected reason: %s", f.Reason)
	}
}

func TestReplayCrashSequenceMinimal(t *testing.T) {
	// The degenerate sequence — one write, one commit — must still pass
	// full enumeration: it is the shape shrunk reproducers converge to.
	plan := tinyCrashPlan()
	seq := Sequence{Seed: 3, Ops: []Op{
		{Kind: OpWrite, Addr: 0, Len: 32, Tag: 5},
		{Kind: OpEpochCheckpoint},
		{Kind: OpWriteThrough, Addr: 2 * 4096, Len: 32, Tag: 6},
		{Kind: OpEpochCheckpoint},
	}}
	if f := ReplayCrashSequence(plan, seq); f != nil {
		t.Fatalf("minimal crash sequence failed: %v", f)
	}
}

func TestCrashGoTest(t *testing.T) {
	plan := tinyCrashPlan()
	f := &Failure{
		Seq: Sequence{Seed: 9, Ops: []Op{
			{Kind: OpWrite, Addr: 0x40, Len: 3, Tag: 2},
			{Kind: OpEpochCheckpoint},
		}},
		OpIdx:  2,
		Loc:    "cut 4/9 (torn)",
		Target: crashTarget,
		Reason: "example",
	}
	src := f.GoTest(DefaultConfig(), "x")
	if !strings.Contains(src, "check.ReplaySequence") {
		t.Errorf("plain reproducer malformed:\n%s", src)
	}
	csrc := f.CrashGoTest(plan, "seed9")
	for _, want := range []string{
		"TestCrashRegression_seed9",
		"check.DefaultCrashPlan()",
		"plan.TotalPages = 4",
		"check.OpEpochCheckpoint",
		"check.ReplayCrashSequence",
		"cut 4/9 (torn)",
	} {
		if !strings.Contains(csrc, want) {
			t.Errorf("crash reproducer missing %q:\n%s", want, csrc)
		}
	}
}

func TestCrashFailureLoc(t *testing.T) {
	f := &Failure{Seq: Sequence{Seed: 2}, OpIdx: 0, Loc: "rollback probe", Target: crashTarget, Reason: "r"}
	if s := f.String(); !strings.Contains(s, "rollback probe") {
		t.Errorf("Loc not rendered: %s", s)
	}
}
