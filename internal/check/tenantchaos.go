package check

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/fault"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/tenant"
)

// Tenant-chaos mode: the cross-tenant leak campaign that earns the
// multi-tenant pool its isolation contract. Per seed, three tenants
// share one pool — a victim and a bystander serving honest traffic, and
// an attacker that mixes honest ops with hostile probes while the full
// chaos surface (transient faults, link outages, crash/recover cycles)
// is aimed at the attacker alone:
//
//   - slice-straddling and out-of-slice probes of the siblings' live,
//     evicted, and parked pages — every one must fail ErrTenantDenied
//     with the caller's buffer untouched;
//   - replayed ciphertext: a victim home-tier sector spliced verbatim
//     into the attacker's slice must be refused by the attacker's own
//     key domain (ErrIntegrity), never decrypted into victim plaintext;
//   - quota-pressure storms that must drown in typed ErrQuota without
//     starving the siblings.
//
// The contract asserted, per seed and campaign-wide:
//
//   - zero cross-tenant byte leaks: no probe ever returns sibling
//     bytes, and no sibling byte moves because of one;
//   - every hostile probe and every chaos casualty is refused typed —
//     an untyped error anywhere is a violation;
//   - per-tenant differential oracles stay byte-identical after
//     quiesce, modulo bytes the attacker's own failed writes tainted;
//   - blast radius: after the attacker is deliberately wrecked (poison
//     storm, in-slice ciphertext splatter, crash/recover), the victim
//     and bystander StateDigests are bit-identical to their pre-wreck
//     values and their availability never dropped below the SLO floor.

// TenantPlan sizes a hostile-tenant campaign.
type TenantPlan struct {
	Seeds     int   // sessions run by RunTenant
	FirstSeed int64 // sessions cover [FirstSeed, FirstSeed+Seeds)

	WorkersPerTenant int // concurrent worker streams per tenant
	OpsPerWorker     int // op slots each worker drives

	PagesPerTenant  int // home pages per tenant slice
	FramesPerTenant int // device frames per tenant slice
	Shards          int // lock shards per tenant engine
	Geometry        config.Geometry

	// QueueCap bounds each tenant's parked-writeback queue.
	QueueCap int

	// TransientRate/FaultBurst drive the attacker-only fault injector.
	TransientRate float64
	FaultBurst    int

	// EventEvery is the pace-tick period between chaos events;
	// OutageMin/OutageMax bound an attacker link outage in ticks.
	EventEvery           int
	OutageMin, OutageMax int

	// AttackerOpRate/AttackerOpBurst are the attacker's admission quota
	// (the victim and bystander run unmetered).
	AttackerOpRate  float64
	AttackerOpBurst float64

	// HostileEvery makes every n-th attacker op slot a hostile probe.
	HostileEvery int

	// VictimSLO is the availability floor asserted for the victim and
	// the bystander on the campaign aggregate.
	VictimSLO float64

	// Verbose, when non-nil, receives per-seed progress lines.
	Verbose func(string)
}

// Tenant role names used by the campaign.
const (
	roleVictim    = "victim"
	roleBystander = "bystander"
	roleAttacker  = "attacker"
)

// DefaultTenantPlan returns the smoke-budget hostile-tenant campaign
// used by `make tenant-smoke`: 8 sessions × 3 tenants × 3 workers × 70
// op slots over 8-page slices with 2 device frames each. The victim
// floor is strict on purpose: nothing the attacker does — probes,
// storms, outages, crashes — is allowed to cost the healthy tenants
// more than 1% availability.
func DefaultTenantPlan() TenantPlan {
	return TenantPlan{
		Seeds:     8,
		FirstSeed: 1,

		WorkersPerTenant: 3,
		OpsPerWorker:     70,

		PagesPerTenant:  8,
		FramesPerTenant: 2,
		Shards:          2,
		Geometry:        config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},

		QueueCap: 4,

		TransientRate: 0.02,
		FaultBurst:    2,

		EventEvery: 40,
		OutageMin:  8,
		OutageMax:  20,

		AttackerOpRate:  0.5,
		AttackerOpBurst: 8,

		HostileEvery: 5,

		VictimSLO: 0.99,
	}
}

// TenantResult summarises a RunTenant campaign.
type TenantResult struct {
	SeedsRun int
	Workers  int // worker streams completed
	Ops      int // op attempts submitted (honest + hostile + storm sub-ops)

	HostileProbes  int // hostile probe attempts driven
	TypedDenials   int // probes refused ErrTenantDenied
	QuotaRefusals  int // ops refused ErrQuota
	ReplayAttacks  int // sibling-ciphertext splices driven
	ReplayRefusals int // splices refused by the key domain, typed

	Checkpoints        int // attacker checkpoints committed
	CheckpointRefusals int // checkpoints refused typed (link down)
	Crashes            int // attacker crash/recover cycles survived
	Outages            int // attacker link outages injected
	TaintedBytes       int // attacker bytes still write-ambiguous after quiesce

	// Aggregate holds the per-role tenant counters summed over seeds,
	// in role order victim, bystander, attacker.
	Aggregate []stats.TenantOps

	// VictimAvailability / BystanderAvailability / AttackerAvailability
	// are ok/attempt ratios over the whole campaign. Only the first two
	// are held to the SLO floor; the attacker's is reported so a plan
	// that accidentally no-ops the chaos is visible.
	VictimAvailability    float64
	BystanderAvailability float64
	AttackerAvailability  float64

	// Violations holds every contract breach. Empty means PASS.
	Violations []string
}

// Failed reports whether the campaign found any contract violation.
func (r *TenantResult) Failed() bool { return len(r.Violations) > 0 }

// Table renders the aggregate per-tenant rollup.
func (r *TenantResult) Table() string {
	o := stats.Ops{Tenants: r.Aggregate}
	return o.TenantTable().String()
}

// RunTenant runs plan.Seeds hostile-tenant sessions and asserts the
// aggregate availability floors. Like the other campaign runners it
// stops after the first session that records violations.
func RunTenant(plan TenantPlan) TenantResult {
	var res TenantResult
	agg := map[string]*stats.TenantOps{}
	roles := []string{roleVictim, roleBystander, roleAttacker}
	for _, role := range roles {
		agg[role] = &stats.TenantOps{Name: role}
	}
	avail := map[string]*[2]int{} // role -> {ok, attempts}
	for _, role := range roles {
		avail[role] = &[2]int{}
	}

	for i := 0; i < plan.Seeds; i++ {
		seed := plan.FirstSeed + int64(i)
		s := runTenantSeed(plan, seed)

		res.SeedsRun++
		res.Workers += 3 * plan.WorkersPerTenant
		res.Ops += s.ops
		res.HostileProbes += s.hostile
		res.TypedDenials += s.denials
		res.QuotaRefusals += s.quota
		res.ReplayAttacks += s.replays
		res.ReplayRefusals += s.replayRefused
		res.Checkpoints += s.checkpoints
		res.CheckpointRefusals += s.ckptRefused
		res.Crashes += s.crashes
		res.Outages += s.outages
		res.TaintedBytes += s.tainted
		for _, ops := range s.tenantOps {
			mergeTenantOps(agg[ops.Name], &ops)
		}
		for role, a := range s.avail {
			avail[role][0] += a[0]
			avail[role][1] += a[1]
		}

		if plan.Verbose != nil {
			plan.Verbose(fmt.Sprintf(
				"seed %d: %d ops, %d hostile (%d denied, %d quota), %d/%d replays refused, %d ckpt (%d refused), %d crashes, %d outages, victim avail %.3f",
				seed, s.ops, s.hostile, s.denials, s.quota, s.replayRefused, s.replays,
				s.checkpoints, s.ckptRefused, s.crashes, s.outages, ratio(s.avail[roleVictim])))
		}
		if len(s.violations) > 0 {
			for _, v := range s.violations {
				res.Violations = append(res.Violations, fmt.Sprintf("seed %d: %s", seed, v))
			}
			break
		}
	}

	for _, role := range roles {
		agg[role].Name = role
		res.Aggregate = append(res.Aggregate, *agg[role])
	}
	res.VictimAvailability = ratio(*avail[roleVictim])
	res.BystanderAvailability = ratio(*avail[roleBystander])
	res.AttackerAvailability = ratio(*avail[roleAttacker])
	if len(res.Violations) == 0 && plan.VictimSLO > 0 {
		if res.VictimAvailability < plan.VictimSLO {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"SLO miss: victim availability %.4f below floor %.4f", res.VictimAvailability, plan.VictimSLO))
		}
		if res.BystanderAvailability < plan.VictimSLO {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"SLO miss: bystander availability %.4f below floor %.4f", res.BystanderAvailability, plan.VictimSLO))
		}
	}
	return res
}

func ratio(a [2]int) float64 {
	if a[1] == 0 {
		return 1
	}
	return float64(a[0]) / float64(a[1])
}

// mergeTenantOps sums src into dst (names handled by the caller).
func mergeTenantOps(dst, src *stats.TenantOps) {
	dst.Reads += src.Reads
	dst.Writes += src.Writes
	dst.Denied += src.Denied
	dst.Quota += src.Quota
	dst.Integrity += src.Integrity
	dst.Faults += src.Faults
	dst.Checkpoints += src.Checkpoints
	dst.Recovers += src.Recovers
}

// tenantSeedResult is one session's outcome.
type tenantSeedResult struct {
	ops           int
	hostile       int
	denials       int
	quota         int
	replays       int
	replayRefused int
	checkpoints   int
	ckptRefused   int
	crashes       int
	outages       int
	tainted       int
	tenantOps     []stats.TenantOps
	avail         map[string][2]int
	violations    []string
}

// runTenantSeed runs one hostile-tenant session.
func runTenantSeed(plan TenantPlan, seed int64) tenantSeedResult {
	res := tenantSeedResult{avail: map[string][2]int{}}
	fail := func(format string, a ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, a...))
	}
	ps := plan.Geometry.PageSize
	if plan.WorkersPerTenant <= 0 || plan.OpsPerWorker <= 0 || plan.PagesPerTenant < 2 ||
		(plan.PagesPerTenant-1)*ps/plan.WorkersPerTenant < 256 {
		fail("plan sizing: %d workers × %d ops over %d pages", plan.WorkersPerTenant, plan.OpsPerWorker, plan.PagesPerTenant)
		return res
	}

	// --- Pool: three sibling domains; only the attacker is metered. ---
	slices := []tenant.Slice{
		{ID: roleVictim, BasePage: tenant.AutoBase, Pages: plan.PagesPerTenant, Frames: plan.FramesPerTenant, Shards: plan.Shards},
		{ID: roleBystander, BasePage: tenant.AutoBase, Pages: plan.PagesPerTenant, Frames: plan.FramesPerTenant, Shards: plan.Shards},
		{ID: roleAttacker, BasePage: tenant.AutoBase, Pages: plan.PagesPerTenant, Frames: plan.FramesPerTenant, Shards: plan.Shards,
			OpRate: plan.AttackerOpRate, OpBurst: plan.AttackerOpBurst},
	}
	pool, err := tenant.NewPool(tenant.Config{Geometry: plan.Geometry, Slices: slices, QueueCap: plan.QueueCap})
	if err != nil {
		fail("session setup: %v", err)
		return res
	}
	victim, _ := pool.Tenant(roleVictim)
	bystander, _ := pool.Tenant(roleBystander)
	attacker, _ := pool.Tenant(roleAttacker)

	// --- Replayed-ciphertext attack, in the reserved last page of each
	// slice (worker regions exclude it, so no oracle ever covers the
	// battleground). The victim parks a secret sector in the home tier;
	// the raw bytes are spliced verbatim into the attacker's slice; the
	// attacker's key domain must refuse them typed and leak nothing. ---
	secret := bytes.Repeat([]byte{0x5e}, plan.Geometry.SectorSize)
	for i := range secret {
		secret[i] ^= byte(seed) + byte(i)
	}
	victimScratch := victim.Base() + securemem.HomeAddr(victim.Size()) - securemem.HomeAddr(ps)
	attackScratch := attacker.Base() + securemem.HomeAddr(attacker.Size()) - securemem.HomeAddr(ps)
	replay := func() {
		res.replays++
		if err := victim.Write(victimScratch, secret); err != nil {
			fail("replay setup: victim write: %v", err)
			return
		}
		if err := victim.Flush(); err != nil {
			fail("replay setup: victim flush: %v", err)
			return
		}
		if _, err := attacker.DrainWritebacks(); err != nil && !linkErr(err) && !faultErr(err) {
			fail("replay setup: attacker drain: %v", err)
			return
		}
		if err := attacker.Flush(); err != nil && !linkErr(err) && !faultErr(err) {
			fail("replay setup: attacker flush: %v", err)
			return
		}
		if err := pool.SpliceHome(attackScratch, victimScratch, plan.Geometry.SectorSize); err != nil {
			fail("replay splice: %v", err)
			return
		}
		buf := make([]byte, plan.Geometry.SectorSize)
		err := attacker.Read(attackScratch, buf)
		switch {
		case err == nil:
			fail("cross-tenant replay VERIFIED under the attacker key domain")
		case errors.Is(err, securemem.ErrIntegrity), errors.Is(err, securemem.ErrFreshness),
			errors.Is(err, tenant.ErrQuota), linkErr(err), faultErr(err):
			res.replayRefused++
		default:
			fail("replay read failed untyped: %v", err)
		}
		if bytes.Contains(buf, secret[:8]) {
			fail("cross-tenant replay leaked victim bytes into the attacker buffer")
		}
		// Victim's own copy must be untouched by the splice.
		got := make([]byte, len(secret))
		if err := victim.Read(victimScratch, got); err != nil {
			fail("victim re-read after replay: %v", err)
		} else if !bytes.Equal(got, secret) {
			fail("victim bytes moved by a sibling replay")
		}
	}
	replay() // once pre-chaos; repeated by the chaos driver mid-traffic

	// --- Workers: disjoint sub-regions of each slice (minus the
	// reserved scratch page), per-worker differential oracles. ---
	usable := int(victim.Size()) - ps
	region := usable / plan.WorkersPerTenant
	var workers []*tenantWorker
	mkWorkers := func(ten *tenant.Tenant, role string, hostile bool, sibling *tenant.Tenant) {
		for w := 0; w < plan.WorkersPerTenant; w++ {
			workers = append(workers, &tenantWorker{
				ten:     ten,
				role:    role,
				hostile: hostile,
				plan:    plan,
				base:    uint64(ten.Base()) + uint64(w*region),
				size:    uint64(region),
				sibling: sibling,
				slots:   plan.OpsPerWorker,
				rng:     rand.New(rand.NewSource(seed<<12 ^ int64(len(workers)+1)*0x9e37)),
			})
		}
	}
	mkWorkers(victim, roleVictim, false, attacker)
	mkWorkers(bystander, roleBystander, false, victim)
	mkWorkers(attacker, roleAttacker, true, victim)
	for _, w := range workers {
		if err := w.init(); err != nil {
			fail("worker init (%s): %v", w.role, err)
			return res
		}
	}

	// --- Chaos surface, attacker only. The victim and bystander run
	// with no injector and no link model: any failure they ever see is
	// by definition the attacker's blast radius escaping. ---
	manual := link.NewManual()
	attacker.AttachLink(link.New(manual, link.DefaultConfig()), nil)
	armFaults := func(salt int64) {
		if plan.TransientRate > 0 {
			inj := fault.NewRatePlan(seed^salt, fault.Rates{Transient: plan.TransientRate}, plan.FaultBurst)
			attacker.AttachFaults(inj, serveEnginePolicy(), nil)
		}
	}
	disarmFaults := func() { attacker.AttachFaults(nil, serveEnginePolicy(), nil) }
	armFaults(0)

	// --- Checkpoint/crash machinery for the attacker domain. attackMu
	// serialises the maintenance windows against the attacker workers
	// (each op+oracle update runs under the read side), so a checkpoint
	// snapshots engine and oracles at one consistent cut, and a crash
	// swaps the recovered engine and rewinds the oracles atomically. ---
	var attackMu sync.RWMutex
	store := crash.NewMemStore()
	journal := crash.NewJournal(store)
	var root securemem.TrustedRoot
	haveRoot := false
	var snaps [][2][]byte // per attacker worker: oracle, taint

	attackerWorkers := workers[2*plan.WorkersPerTenant:]
	checkpoint := func() {
		attackMu.Lock()
		defer attackMu.Unlock()
		disarmFaults()
		defer armFaults(int64(res.checkpoints+1) << 8)
		r, err := attacker.Checkpoint(journal)
		switch {
		case err == nil:
			root, haveRoot = r, true
			snaps = snaps[:0]
			for _, w := range attackerWorkers {
				snaps = append(snaps, w.snapshot())
			}
			res.checkpoints++
		case linkErr(err):
			res.ckptRefused++
		default:
			fail("attacker checkpoint failed untyped: %v", err)
		}
	}
	crashRecover := func() {
		if !haveRoot {
			return
		}
		attackMu.Lock()
		defer attackMu.Unlock()
		if err := pool.RecoverTenant(roleAttacker, store.Bytes(), root); err != nil {
			fail("attacker recovery failed: %v", err)
			return
		}
		// The reborn engine renegotiates its chaos surface and the
		// worker oracles rewind to the checkpoint cut.
		attacker.AttachLink(link.New(manual, link.DefaultConfig()), nil)
		armFaults(int64(res.crashes+1) << 24)
		for i, w := range attackerWorkers {
			w.restore(snaps[i])
		}
		res.crashes++
	}

	// --- Traffic plus the chaos driver, paced by worker op completions
	// exactly like the serve campaign: blocking ticks, drained before
	// done, so the event schedule is a pure function of the seed. ---
	pace := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *tenantWorker) {
			defer wg.Done()
			w.run(pace, &attackMu)
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()

	rng := rand.New(rand.NewSource(seed ^ 0x7e4a))
	ticks, upAt := 0, 0
	linkDown := false
	for running := true; running; {
		select {
		case <-pace:
			ticks++
		default:
			select {
			case <-pace:
				ticks++
			case <-done:
				running = false
			}
		}
		if linkDown && (ticks >= upAt || !running) {
			manual.Set(link.StateUp)
			linkDown = false
		}
		if !running || plan.EventEvery <= 0 || ticks%plan.EventEvery != 0 {
			continue
		}
		switch ev := rng.Intn(12); {
		case ev < 4: // attacker link outage window
			if !linkDown {
				manual.Set(link.StateDown)
				linkDown = true
				upAt = ticks + plan.OutageMin + rng.Intn(plan.OutageMax-plan.OutageMin+1)
				res.outages++
			}
		case ev < 7: // checkpoint in a link-up maintenance window
			if !linkDown {
				checkpoint()
			}
		case ev < 9: // crash/recover the attacker domain
			if !linkDown {
				crashRecover()
			}
		default: // mid-traffic sibling-ciphertext replay
			if !linkDown {
				attackMu.Lock()
				disarmFaults()
				replay()
				armFaults(int64(ticks) << 4)
				attackMu.Unlock()
			}
		}
	}

	// --- Quiesce: chaos disarmed, link forced up, attacker drained.
	// From here on everything must succeed. ---
	disarmFaults()
	attacker.ForceLinkUp()
	if _, err := attacker.DrainWritebacks(); err != nil {
		fail("post-quiesce attacker drain failed: %v", err)
	}

	// --- Verification: per-worker oracles, outcome conservation,
	// availability accounting. ---
	for _, w := range workers {
		res.violations = append(res.violations, w.violations...)
		w.verifyFinal()
		res.violations = append(res.violations, w.finalViolations...)
		if total := w.ok + w.denied + w.quotaHits + w.faulted + w.integrity + w.untyped; total != w.attempts {
			fail("%s worker outcome conservation: %d outcomes for %d attempts", w.role, total, w.attempts)
		}
		res.ops += w.attempts
		res.hostile += w.hostileOps
		res.denials += w.denied
		res.quota += w.quotaHits
		res.tainted += w.taintedBytes()
		a := res.avail[w.role]
		a[0] += w.ok
		a[1] += w.attempts
		res.avail[w.role] = a
	}

	// The healthy tenants must have seen zero denials, zero integrity
	// refusals, zero faults: they never probe and no chaos is theirs.
	for _, ten := range []*tenant.Tenant{victim, bystander} {
		ops := ten.Stats()
		if ops.Denied != 0 || ops.Integrity != 0 || ops.Faults != 0 || ops.Quota != 0 {
			fail("%s absorbed sibling blast: denied=%d integrity=%d faults=%d quota=%d",
				ops.Name, ops.Denied, ops.Integrity, ops.Faults, ops.Quota)
		}
	}

	// --- Blast radius: fingerprint the healthy tenants, then wreck the
	// attacker on purpose — poison storm, in-slice ciphertext splatter,
	// a final crash/recover — and prove the fingerprints never move. ---
	digestV := victim.StateDigest()
	digestB := bystander.StateDigest()

	poison := fault.NewRatePlan(seed^0x90150, fault.Rates{Poison: 0.5}, 3)
	attacker.AttachFaults(poison, serveEnginePolicy(), nil)
	junk := make([]byte, 64)
	for i := 0; i < 12; i++ {
		addr := attacker.Base() + securemem.HomeAddr(i*ps/2)
		if err := attacker.Read(addr, junk); err != nil && !faultErr(err) && !errors.Is(err, tenant.ErrQuota) && !errors.Is(err, securemem.ErrIntegrity) {
			fail("attacker wreck read failed untyped: %v", err)
		}
		if err := attacker.Write(addr, junk); err != nil && !faultErr(err) && !errors.Is(err, tenant.ErrQuota) && !errors.Is(err, securemem.ErrIntegrity) {
			fail("attacker wreck write failed untyped: %v", err)
		}
	}
	disarmFaults()
	// Ciphertext splatter within the attacker slice only.
	for i := 0; i < 4; i++ {
		dst := attacker.Base() + securemem.HomeAddr(i*plan.Geometry.ChunkSize)
		if err := pool.SpliceHome(dst, attackScratch, plan.Geometry.SectorSize); err != nil {
			fail("wreck splice: %v", err)
		}
	}
	if haveRoot {
		if err := pool.RecoverTenant(roleAttacker, store.Bytes(), root); err != nil {
			fail("post-wreck attacker recovery failed: %v", err)
		} else {
			res.crashes++
		}
	}

	if victim.StateDigest() != digestV {
		fail("victim state digest moved while the attacker was wrecked")
	}
	if bystander.StateDigest() != digestB {
		fail("bystander state digest moved while the attacker was wrecked")
	}
	// And the healthy tenants still serve, byte-correct.
	for _, w := range workers[:2*plan.WorkersPerTenant] {
		w.finalViolations = w.finalViolations[:0]
		w.verifyFinal()
		res.violations = append(res.violations, w.finalViolations...)
	}

	for _, ten := range pool.Tenants() {
		res.tenantOps = append(res.tenantOps, ten.Stats())
	}
	return res
}

// tenantWorker drives one stream of ops against one tenant, keeping a
// differential oracle over its own disjoint sub-region. Attacker
// workers interleave hostile probes; probe outcomes never touch the
// oracle (they are refused before bytes move, and the campaign fails if
// not).
type tenantWorker struct {
	ten     *tenant.Tenant
	role    string
	hostile bool
	plan    TenantPlan
	base    uint64
	size    uint64
	sibling *tenant.Tenant
	slots   int
	rng     *rand.Rand

	oracle []byte
	taint  []bool

	attempts, ok, denied, quotaHits, faulted, integrity, untyped int
	hostileOps                                                   int
	violations                                                   []string
	finalViolations                                              []string
}

// init seeds the oracle from a pre-chaos read of the whole region.
func (w *tenantWorker) init() error {
	w.oracle = make([]byte, w.size)
	w.taint = make([]bool, w.size)
	return w.ten.Read(securemem.HomeAddr(w.base), w.oracle)
}

func (w *tenantWorker) snapshot() [2][]byte {
	o := append([]byte(nil), w.oracle...)
	t := make([]byte, len(w.taint))
	for i, b := range w.taint {
		if b {
			t[i] = 1
		}
	}
	return [2][]byte{o, t}
}

func (w *tenantWorker) restore(s [2][]byte) {
	copy(w.oracle, s[0])
	for i := range w.taint {
		w.taint[i] = s[1][i] == 1
	}
}

func (w *tenantWorker) taintedBytes() int {
	n := 0
	for _, b := range w.taint {
		if b {
			n++
		}
	}
	return n
}

// run drives the worker's op slots. Attacker workers take the read side
// of mu around every op so maintenance windows see consistent cuts.
func (w *tenantWorker) run(pace chan<- struct{}, mu *sync.RWMutex) {
	for i := 0; i < w.slots; i++ {
		if w.hostile {
			mu.RLock()
		}
		if w.hostile && w.plan.HostileEvery > 0 && i%w.plan.HostileEvery == w.plan.HostileEvery-1 {
			w.hostileStep()
		} else {
			w.honestStep()
		}
		if w.hostile {
			mu.RUnlock()
		}
		pace <- struct{}{}
	}
}

func (w *tenantWorker) fail(format string, a ...any) {
	w.violations = append(w.violations, fmt.Sprintf("%s worker: %s", w.role, fmt.Sprintf(format, a...)))
}

// classify folds one op outcome into the counters; only nil, typed
// denials, typed quota, typed integrity, and typed fault/link sentinels
// are legal.
func (w *tenantWorker) classify(err error, op string) {
	w.attempts++
	switch {
	case err == nil:
		w.ok++
	case errors.Is(err, tenant.ErrTenantDenied):
		w.denied++
	case errors.Is(err, tenant.ErrQuota):
		w.quotaHits++
	case errors.Is(err, securemem.ErrIntegrity), errors.Is(err, securemem.ErrFreshness):
		w.integrity++
	case linkErr(err), faultErr(err):
		w.faulted++
	default:
		w.untyped++
		w.fail("%s failed untyped: %v", op, err)
	}
}

// honestStep performs one in-region read or write and maintains the
// oracle. Failed writes taint their range (the bytes are ambiguous —
// old or new); a later verified read resolves the taint by adoption.
func (w *tenantWorker) honestStep() {
	n := 1 + w.rng.Intn(96)
	if n > int(w.size) {
		n = int(w.size)
	}
	off := w.rng.Intn(int(w.size) - n + 1)
	addr := securemem.HomeAddr(w.base + uint64(off))
	if w.rng.Intn(2) == 0 {
		buf := make([]byte, n)
		err := w.ten.Read(addr, buf)
		w.classify(err, "read")
		if err != nil {
			return
		}
		for j := 0; j < n; j++ {
			switch {
			case w.taint[off+j]:
				w.oracle[off+j] = buf[j]
				w.taint[off+j] = false
			case buf[j] != w.oracle[off+j]:
				w.fail("silent divergence at +%d: read %#02x, oracle %#02x", off+j, buf[j], w.oracle[off+j])
				return
			}
		}
	} else {
		data := make([]byte, n)
		w.rng.Read(data)
		err := w.ten.Write(addr, data)
		w.classify(err, "write")
		switch {
		case err == nil:
			copy(w.oracle[off:off+n], data)
			for j := 0; j < n; j++ {
				w.taint[off+j] = false
			}
		case errors.Is(err, tenant.ErrQuota), errors.Is(err, tenant.ErrTenantDenied):
			// Refused before the engine: bytes provably unchanged.
		default:
			for j := 0; j < n; j++ {
				w.taint[off+j] = true
			}
		}
	}
}

// hostileStep performs one hostile probe: an out-of-slice or straddling
// access that must come back ErrTenantDenied with the buffer untouched,
// or a quota-pressure burst that must drown in typed ErrQuota.
func (w *tenantWorker) hostileStep() {
	w.hostileOps++
	switch w.rng.Intn(4) {
	case 0: // probe a sibling's slice (live, evicted, or parked pages)
		addr := w.sibling.Base() + securemem.HomeAddr(w.rng.Intn(int(w.sibling.Size())-64))
		w.probeDenied(addr, "sibling probe")
	case 1: // straddle out of the top of the attacker's own slice
		addr := w.ten.Base() + securemem.HomeAddr(w.ten.Size()) - 16
		w.probeDenied(addr, "straddling probe")
	case 2: // far out of the pool entirely
		addr := securemem.HomeAddr(uint64(1)<<40 + uint64(w.rng.Intn(1<<20)))
		w.probeDenied(addr, "out-of-pool probe")
	default: // quota-pressure storm
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			w.classify(w.ten.Read(securemem.HomeAddr(w.base), buf), "storm read")
		}
	}
}

// probeDenied drives one read and one write probe at a hostile address
// and asserts the typed denial plus byte-silence.
func (w *tenantWorker) probeDenied(addr securemem.HomeAddr, kind string) {
	sentinel := byte(0xEE)
	buf := bytes.Repeat([]byte{sentinel}, 64)
	err := w.ten.Read(addr, buf)
	w.classify(err, kind+" read")
	if err == nil {
		w.fail("%s read at %d returned bytes instead of a denial", kind, addr)
	} else if !errors.Is(err, tenant.ErrTenantDenied) {
		w.fail("%s read at %d: got %v, want ErrTenantDenied", kind, addr, err)
	}
	for _, b := range buf {
		if b != sentinel {
			w.fail("%s read mutated the caller buffer through a denial", kind)
			break
		}
	}
	werr := w.ten.Write(addr, buf)
	w.classify(werr, kind+" write")
	if !errors.Is(werr, tenant.ErrTenantDenied) {
		w.fail("%s write at %d: got %v, want ErrTenantDenied", kind, addr, werr)
	}
}

// verifyFinal re-reads the whole region against the oracle. Tainted
// bytes are adopted (their ambiguity survived the session); everything
// else must match exactly.
func (w *tenantWorker) verifyFinal() {
	ffail := func(format string, a ...any) {
		w.finalViolations = append(w.finalViolations, fmt.Sprintf("%s worker final: %s", w.role, fmt.Sprintf(format, a...)))
	}
	buf := make([]byte, w.size)
	// A drained admission bucket refills per attempt; the typed ErrQuota
	// here is the quota working as specified, so ride through it.
	var err error
	for tries := 0; tries < 8; tries++ {
		if err = w.ten.Read(securemem.HomeAddr(w.base), buf); !errors.Is(err, tenant.ErrQuota) {
			break
		}
	}
	if err != nil {
		ffail("final read failed: %v", err)
		return
	}
	for j := range buf {
		if w.taint[j] {
			continue
		}
		if buf[j] != w.oracle[j] {
			ffail("divergence at +%d: state %#02x, oracle %#02x", j, buf[j], w.oracle[j])
			return
		}
	}
}
