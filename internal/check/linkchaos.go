package check

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/securemem"
)

// Link-chaos mode: the harness replays a generated Salus workload while a
// deterministic link plan flaps the CXL transport — scripted windows,
// rate-driven episodes, and brownout latency — and asserts the
// degraded-mode contract op by op:
//
//   - every in-range operation either succeeds or fails with a typed link
//     error (ErrLinkDown, ErrDegraded, ErrQueueFull) — never an untyped
//     error, never a retry/backoff spin charged to the transient fault
//     budget, never a panic;
//   - every successful read returns the oracle's bytes (modulo ranges a
//     link-failed write may have half-applied, tainted until a later
//     write lands);
//   - after the final recovery — link forced up, writeback queue drained,
//     everything flushed — the home tier is byte-identical to a no-outage
//     golden run of the same successful writes, and the queue accounting
//     closes: every writeback ever queued has drained;
//   - per seed, a rollback of home state staged during an outage window
//     is detected as ErrFreshness when the queue drains — the outage is
//     never an integrity holiday.
//
// A violation shrinks (ShrinkLink) to a minimal sequence and renders as a
// regression test (LinkGoTest), like any other checker failure.

// NamedLinkPlan pairs a link.ParsePlan spec with a campaign-stable name
// used in failure reports and reproducers.
type NamedLinkPlan struct {
	Name string
	Spec string
}

// LinkPlan sizes a link-chaos campaign. Every seed replays once per entry
// in Plans; rate plans are reseeded per sequence so shrunk reproducers
// replay the same flap schedule.
type LinkPlan struct {
	Seeds     int   // seeds run by RunLink
	Ops       int   // operations per generated sequence
	FirstSeed int64 // RunLink covers [FirstSeed, FirstSeed+Seeds)

	TotalPages  int // home (CXL) pages
	DevicePages int // device frames; << TotalPages keeps eviction pressure up
	Geometry    config.Geometry

	// QueueCap bounds the dirty-writeback queue; <= 0 selects
	// securemem.DefaultWritebackQueueCap. The default campaign keeps it
	// tiny so ErrQueueFull backpressure is exercised, not just possible.
	QueueCap int

	// Plans are the link schedules each seed replays under.
	Plans []NamedLinkPlan

	// Verbose, when non-nil, receives per-seed progress lines.
	Verbose func(string)
}

// DefaultLinkPlan returns the smoke-budget link campaign used by
// `make link-smoke`: 12 seeds × 120 ops over an 8-page home space and 2
// device frames with a 2-deep writeback queue, each seed replayed under a
// short-flap script, a long-outage script, a brownout script, and a
// rate-driven plan. Window ordinals are home-transfer counts: one miss
// fill consumes ChunksPerPage ordinals, so the windows below land inside
// the first few dozen operations of every sequence.
func DefaultLinkPlan() LinkPlan {
	return LinkPlan{
		Seeds:     12,
		Ops:       120,
		FirstSeed: 1,

		TotalPages:  8,
		DevicePages: 2,
		Geometry:    config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},

		QueueCap: 2,
		Plans: []NamedLinkPlan{
			{Name: "flap-short", Spec: "down@40..70,down@300..340,down@800..860"},
			{Name: "flap-long", Spec: "down@100..500"},
			{Name: "brownout", Spec: "deg@50..600:24,down@700..760"},
			{Name: "rate", Spec: "rate:seed=1,flap=0.02,downlen=24,deg=0.02,deglen=16,lat=12"},
		},
	}
}

// size returns the home address-space size in bytes.
func (p LinkPlan) size() uint64 { return uint64(p.TotalPages) * uint64(p.Geometry.PageSize) }

// memConfig returns the securemem configuration of the checked system.
func (p LinkPlan) memConfig() securemem.Config {
	return securemem.Config{
		Geometry:    p.Geometry,
		Model:       securemem.ModelSalus,
		TotalPages:  p.TotalPages,
		DevicePages: p.DevicePages,
	}
}

// LinkResult summarises a RunLink campaign.
type LinkResult struct {
	SeedsRun int
	PlansRun int // seed × plan replays completed
	OpsRun   int

	OpsOK      uint64 // in-range ops that succeeded
	OpsRefused uint64 // in-range ops that failed with a typed link error

	Flaps     uint64 // link state transitions observed
	Refusals  uint64 // transfers refused by a down link
	FastFails uint64 // transfers fast-failed by the open breaker
	Queued    uint64 // writebacks parked on the queue
	Drained   uint64 // writebacks drained back to the home tier
	Dropped   uint64 // evictions refused by a full queue
	QueuePeak uint64 // campaign-wide queue high-water mark

	DepthSum     uint64 // queue depth summed over post-op samples
	DepthSamples uint64
	AgeSum       uint64 // ops spent parked, summed over drained writebacks
	AgeCount     uint64

	RollbackProbes int // per-seed outage-rollback probes that detected

	Failure *Failure
}

// RunLink generates plan.Seeds sequences and replays each under every
// named link plan, then runs the per-seed outage-rollback probe. On the
// first violation it shrinks the sequence to a minimal reproducer under
// the same link plan and stops.
func RunLink(plan LinkPlan) LinkResult {
	var res LinkResult
	for i := 0; i < plan.Seeds; i++ {
		seed := plan.FirstSeed + int64(i)
		seq := GenerateLinkSequence(plan, seed)
		res.SeedsRun++
		for _, np := range plan.Plans {
			res.OpsRun += len(seq.Ops)
			before := res
			f := linkReplay(plan, np, seq, &res)
			if f == nil {
				res.PlansRun++
				if plan.Verbose != nil {
					plan.Verbose(fmt.Sprintf("seed %d, plan %s: %d ops clean (%d refused typed, %d queued, %d drained)",
						seed, np.Name, len(seq.Ops),
						res.OpsRefused-before.OpsRefused, res.Queued-before.Queued, res.Drained-before.Drained))
				}
				continue
			}
			min := ShrinkLink(plan, np, f.Seq)
			// Re-replay the minimal sequence so the failure describes it.
			if mf := ReplayLinkSequence(plan, np, min); mf != nil {
				f = mf
			}
			res.Failure = f
			return res
		}
		if f := linkRollbackProbe(plan, seed); f != nil {
			res.Failure = f
			return res
		}
		res.RollbackProbes++
	}
	return res
}

// ReplayLinkSequence replays one sequence under one named link plan,
// returning the first contract violation or nil.
func ReplayLinkSequence(plan LinkPlan, np NamedLinkPlan, seq Sequence) *Failure {
	var scratch LinkResult
	return linkReplay(plan, np, seq, &scratch)
}

// ShrinkLink is Shrink for link-mode sequences: the reduction predicate is
// the full link replay under the same named plan, so the minimal sequence
// still reaches the failing outage window.
func ShrinkLink(plan LinkPlan, np NamedLinkPlan, seq Sequence) Sequence {
	return shrinkOps(seq, func(ops []Op) *Failure {
		return ReplayLinkSequence(plan, np, Sequence{Seed: seq.Seed, Ops: ops})
	})
}

// GenerateLinkSequence produces the deterministic link-mode workload for
// one seed: the plain generator's address/length skew over an in-range
// Salus op set, heavy on writes and flushes (parking pressure) with
// periodic drains so recovery interleaves with the outage schedule.
// Hostile probes are omitted — bounds behaviour is the plain checker's
// job; link mode wants maximal home-tier traffic.
func GenerateLinkSequence(plan LinkPlan, seed int64) Sequence {
	rng := rand.New(rand.NewSource(seed))
	g := plan.Geometry

	genAddr := func() uint64 {
		page := rng.Intn(plan.TotalPages)
		var off int
		switch rng.Intn(4) {
		case 0: // a few bytes before a chunk boundary: forces a straddle
			c := 1 + rng.Intn(g.ChunksPerPage()-1)
			off = c*g.ChunkSize - (1 + rng.Intn(4))
		case 1: // sector-aligned
			off = rng.Intn(g.SectorsPerPage()) * g.SectorSize
		case 2: // chunk-aligned
			off = rng.Intn(g.ChunksPerPage()) * g.ChunkSize
		default:
			off = rng.Intn(g.PageSize)
		}
		return uint64(page*g.PageSize + off)
	}
	genLen := func() int {
		switch rng.Intn(6) {
		case 0:
			return 1 + rng.Intn(4)
		case 1:
			return g.SectorSize
		case 2:
			return g.SectorSize + 1
		case 3:
			return g.ChunkSize/2 + rng.Intn(g.ChunkSize)
		default:
			return 1 + rng.Intn(2*g.SectorSize)
		}
	}
	clampLen := func(addr uint64, n int) int {
		if max := plan.size() - addr; uint64(n) > max {
			return int(max)
		}
		return n
	}

	ops := make([]Op, 0, plan.Ops)
	var tag byte
	for i := 0; i < plan.Ops; i++ {
		switch r := rng.Intn(100); {
		case r < 30: // cached write: dirties device chunks, arms parking
			tag++
			addr := genAddr()
			ops = append(ops, Op{Kind: OpWrite, Addr: addr, Len: clampLen(addr, genLen()), Tag: tag})
		case r < 52: // cached read: migration churn across the link
			addr := genAddr()
			ops = append(ops, Op{Kind: OpRead, Addr: addr, Len: clampLen(addr, genLen())})
		case r < 66: // direct CXL write
			tag++
			addr := genAddr()
			ops = append(ops, Op{Kind: OpWriteThrough, Addr: addr, Len: clampLen(addr, genLen()), Tag: tag})
		case r < 76: // direct CXL read
			addr := genAddr()
			ops = append(ops, Op{Kind: OpReadThrough, Addr: addr, Len: clampLen(addr, genLen())})
		case r < 84: // chunk checkpoint: collapse traffic over the link
			ops = append(ops, Op{Kind: OpCheckpoint, Addr: genAddr()})
		case r < 94: // flush: mass eviction, the main parking source
			ops = append(ops, Op{Kind: OpFlush})
		default: // reconciler drain, possibly mid-outage
			ops = append(ops, Op{Kind: OpDrainWritebacks})
		}
	}
	return Sequence{Seed: seed, Ops: ops}
}

// linkErr reports whether err is (or wraps) one of the typed link-
// degradation sentinels an outage is allowed to surface.
func linkErr(err error) bool {
	return errors.Is(err, securemem.ErrLinkDown) ||
		errors.Is(err, securemem.ErrDegraded) ||
		errors.Is(err, securemem.ErrQueueFull)
}

// newSeqLink builds the link for one (sequence, plan) replay. Rate plans
// are reseeded with the sequence seed so the flap schedule is a pure
// function of (seed, spec) — which is what makes shrunk reproducers and
// re-replays deterministic.
func newSeqLink(np NamedLinkPlan, seed int64) (*link.Link, error) {
	p, err := link.ParsePlan(np.Spec)
	if err != nil {
		return nil, fmt.Errorf("plan %s: %v", np.Name, err)
	}
	if rp, ok := p.(*link.RatePlan); ok {
		rp.Reseed(seed)
	}
	return link.New(p, link.DefaultConfig()), nil
}

// linkReplay replays one sequence under one link plan, accumulating
// campaign counters into res. The oracle tracks the plaintext a no-outage
// system would hold after the same successful writes; ranges a link-failed
// write may have half-applied are tainted until a later write lands.
func linkReplay(plan LinkPlan, np NamedLinkPlan, seq Sequence, res *LinkResult) *Failure {
	target := "salus-link/" + np.Name
	fail := func(idx int, format string, a ...any) *Failure {
		return &Failure{Seq: seq, OpIdx: idx, Target: target, Reason: fmt.Sprintf(format, a...)}
	}

	sys, err := securemem.New(plan.memConfig())
	if err != nil {
		return fail(-1, "target setup: %v", err)
	}
	lnk, err := newSeqLink(np, seq.Seed)
	if err != nil {
		return fail(-1, "target setup: %v", err)
	}
	sys.AttachLink(lnk, nil, plan.QueueCap)

	size := plan.size()
	oracle := make([]byte, size)
	taint := make([]bool, size)
	setTaint := func(addr uint64, n int, v bool) {
		for i := uint64(0); i < uint64(n); i++ {
			taint[addr+i] = v
		}
	}
	mismatch := func(addr uint64, got, want []byte) int {
		for i := range got {
			if got[i] != want[i] && !taint[addr+uint64(i)] {
				return i
			}
		}
		return -1
	}
	throughOK := func(addr uint64, n int) bool {
		if sys.IsResident(securemem.HomeAddr(addr)) {
			return false
		}
		return n == 0 || !sys.IsResident(securemem.HomeAddr(addr+uint64(n)-1))
	}

	// enqueueIdx records, FIFO, the op index at which each parked
	// writeback was queued; drains pop it to measure queue age in ops.
	// The queue drains strictly FIFO, so pairing deltas is exact.
	var enqueueIdx []int
	prev := sys.Stats()
	account := func(idx int) {
		cur := sys.Stats()
		for n := prev.WritebacksQueued; n < cur.WritebacksQueued; n++ {
			enqueueIdx = append(enqueueIdx, idx)
		}
		for n := prev.WritebacksDrained; n < cur.WritebacksDrained; n++ {
			res.AgeSum += uint64(idx - enqueueIdx[0])
			res.AgeCount++
			enqueueIdx = enqueueIdx[1:]
		}
		prev = cur
		res.DepthSum += uint64(sys.QueuedWritebacks())
		res.DepthSamples++
	}

	for i, op := range seq.Ops {
		if op.Kind != OpFlush && op.Kind != OpDrainWritebacks {
			if op.Addr >= size || uint64(op.Len) > size-op.Addr {
				return fail(i, "link sequences must stay in range (addr %#x len %d, size %#x)", op.Addr, op.Len, size)
			}
		}
		var buf []byte
		var err error
		switch op.Kind {
		case OpRead, OpReadThrough:
			buf = make([]byte, op.Len)
			err = safely(func() error {
				if op.Kind == OpReadThrough && throughOK(op.Addr, op.Len) {
					return sys.ReadThrough(securemem.HomeAddr(op.Addr), buf)
				}
				return sys.Read(securemem.HomeAddr(op.Addr), buf)
			})
		case OpWrite, OpWriteThrough:
			data := FillData(op.Tag, op.Len)
			err = safely(func() error {
				if op.Kind == OpWriteThrough && throughOK(op.Addr, op.Len) {
					return sys.WriteThrough(securemem.HomeAddr(op.Addr), data)
				}
				return sys.Write(securemem.HomeAddr(op.Addr), data)
			})
			if err == nil {
				copy(oracle[op.Addr:], data)
				setTaint(op.Addr, op.Len, false)
			} else {
				// The write may have landed partially before the link
				// refused; exclude its range from comparison until a later
				// write covers it.
				setTaint(op.Addr, op.Len, true)
			}
		case OpCheckpoint:
			err = safely(func() error { return sys.CheckpointChunk(securemem.HomeAddr(op.Addr)) })
		case OpFlush:
			err = safely(sys.Flush)
		case OpDrainWritebacks:
			err = safely(func() error { _, derr := sys.DrainWritebacks(); return derr })
		default:
			return fail(i, "op kind %v not supported in link replay", op.Kind)
		}

		if pe, ok := err.(*panicError); ok {
			return fail(i, "%v", pe)
		}
		if err != nil {
			if !linkErr(err) {
				return fail(i, "in-range operation failed with a non-link error: %v", err)
			}
			res.OpsRefused++
		} else {
			res.OpsOK++
			if op.Kind == OpRead || op.Kind == OpReadThrough {
				want := oracle[op.Addr : op.Addr+uint64(op.Len)]
				if d := mismatch(op.Addr, buf, want); d >= 0 {
					return fail(i, "%s", diffReason("read", op.Addr, d, buf, want))
				}
			}
		}
		account(i)
	}

	// --- Recovery: force the link up, drain, flush. From here on every
	// operation must succeed — the outage is over. ---
	lnk.ForceUp()
	if _, err := sys.DrainWritebacks(); err != nil {
		return fail(len(seq.Ops), "post-recovery drain failed: %v", err)
	}
	if err := sys.Flush(); err != nil {
		return fail(len(seq.Ops), "post-recovery flush failed: %v", err)
	}
	account(len(seq.Ops) - 1)
	if n := sys.QueuedWritebacks(); n != 0 {
		return fail(len(seq.Ops), "queue not empty after recovery drain: %d parked", n)
	}

	// Queue accounting closes: every writeback ever parked has drained.
	st := sys.Stats()
	if st.WritebacksQueued != st.WritebacksDrained {
		return fail(len(seq.Ops), "writeback accounting open: %d queued, %d drained",
			st.WritebacksQueued, st.WritebacksDrained)
	}
	// Outage ops fail fast; they never consume the transient retry budget.
	if st.Retries != 0 || st.RetryBackoffCycles != 0 {
		return fail(len(seq.Ops), "link outage consumed the transient retry budget: %d retries, %d backoff cycles",
			st.Retries, st.RetryBackoffCycles)
	}

	// --- Final sweep: byte-identical to the no-outage golden run, modulo
	// ranges tainted by link-failed writes. ---
	stride := uint64(plan.Geometry.ChunkSize)
	buf := make([]byte, stride)
	for addr := uint64(0); addr < size; addr += stride {
		if err := sys.Read(securemem.HomeAddr(addr), buf); err != nil {
			return fail(len(seq.Ops), "final sweep read at %#x: %v", addr, err)
		}
		if d := mismatch(addr, buf, oracle[addr:addr+stride]); d >= 0 {
			return fail(len(seq.Ops), "%s", diffReason("post-drain read", addr, d, buf, oracle[addr:addr+stride]))
		}
	}

	lst := lnk.Stats()
	res.Flaps += lst.Flaps
	res.Refusals += lst.DownRefusals
	res.FastFails += lst.FastFails
	res.Queued += st.WritebacksQueued
	res.Drained += st.WritebacksDrained
	res.Dropped += st.WritebacksDropped
	if st.WritebackQueuePeak > res.QueuePeak {
		res.QueuePeak = st.WritebackQueuePeak
	}
	return nil
}

// linkRollbackProbe stages the attack the reconciler exists to catch: a
// dirty page parks during an outage, the attacker rolls the home copy
// back to an older epoch while the link is down, and the drain must
// refuse with ErrFreshness — an outage must never launder a rollback.
func linkRollbackProbe(plan LinkPlan, seed int64) *Failure {
	seq := Sequence{Seed: seed}
	fail := func(format string, a ...any) *Failure {
		return &Failure{Seq: seq, OpIdx: -1, Target: "salus-link/rollback-probe",
			Loc: "rollback probe", Reason: fmt.Sprintf(format, a...)}
	}
	sys, err := securemem.New(plan.memConfig())
	if err != nil {
		return fail("target setup: %v", err)
	}
	manual := link.NewManual()
	lnk := link.New(manual, link.DefaultConfig())
	sys.AttachLink(lnk, nil, plan.QueueCap)

	cs := plan.Geometry.ChunkSize
	tag := byte(seed)
	write := func(t byte) error { return sys.Write(securemem.HomeAddr(0), FillData(t, cs)) }

	// Epoch A reaches the home tier, and the attacker snapshots it.
	if err := write(tag); err != nil {
		return fail("epoch A write: %v", err)
	}
	if err := sys.Flush(); err != nil {
		return fail("epoch A flush: %v", err)
	}
	snap := sys.SnapshotHomeChunk(securemem.HomeAddr(0))

	// Epoch B advances the home state past the snapshot.
	if err := write(tag + 1); err != nil {
		return fail("epoch B write: %v", err)
	}
	if err := sys.Flush(); err != nil {
		return fail("epoch B flush: %v", err)
	}

	// Epoch C is dirty in the device tier when the link dies and parks.
	if err := write(tag + 2); err != nil {
		return fail("epoch C write: %v", err)
	}
	manual.Set(link.StateDown)
	if err := sys.Flush(); err != nil {
		return fail("outage flush: %v", err)
	}
	if sys.QueuedWritebacks() == 0 {
		return fail("outage flush parked nothing")
	}

	// The rollback, staged while the system cannot look.
	sys.ReplayHomeChunk(snap)

	manual.Set(link.StateUp)
	lnk.ForceUp()
	if _, err := sys.DrainWritebacks(); !errors.Is(err, securemem.ErrFreshness) {
		return fail("drain over rolled-back home state: got %v, want ErrFreshness", err)
	}
	if sys.QueuedWritebacks() == 0 {
		return fail("rollback drain freed the parked writeback anyway")
	}
	return nil
}

// LinkGoTest renders the failure's (shrunk) link-mode sequence as a
// runnable Go regression test replaying it under plan's sizing and the
// named link plan that exposed it.
func (f *Failure) LinkGoTest(plan LinkPlan, np NamedLinkPlan, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Regression test emitted by the salus-check link shrinker.\n")
	fmt.Fprintf(&b, "// Original failure: %s\n", f)
	fmt.Fprintf(&b, "func TestLinkRegression_%s(t *testing.T) {\n", name)
	b.WriteString("\tplan := check.DefaultLinkPlan()\n")
	fmt.Fprintf(&b, "\tplan.TotalPages = %d\n", plan.TotalPages)
	fmt.Fprintf(&b, "\tplan.DevicePages = %d\n", plan.DevicePages)
	fmt.Fprintf(&b, "\tplan.QueueCap = %d\n", plan.QueueCap)
	fmt.Fprintf(&b, "\tnp := check.NamedLinkPlan{Name: %q, Spec: %q}\n", np.Name, np.Spec)
	fmt.Fprintf(&b, "\tseq := check.Sequence{Seed: %d, Ops: []check.Op{\n", f.Seq.Seed)
	writeOps(&b, f.Seq.Ops)
	b.WriteString("\t}}\n")
	b.WriteString("\tif f := check.ReplayLinkSequence(plan, np, seq); f != nil {\n")
	b.WriteString("\t\tt.Fatalf(\"regression reproduced: %v\", f)\n")
	b.WriteString("\t}\n")
	b.WriteString("}\n")
	return b.String()
}
