package check

import "math/rand"

// FillData returns the deterministic payload for a write op: a function of
// (tag, length) only, so a shrunk sequence printed as a regression test
// reproduces its payloads without embedding them.
func FillData(tag byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(uint32(tag)*131 + uint32(i)*29 + 7)
	}
	return d
}

// GenerateSequence produces the deterministic operation sequence for one
// seed. The distribution is deliberately skewed: addresses favour chunk
// boundaries (straddles), lengths favour partial and multi-sector spans,
// the device tier is far smaller than the footprint so migrations and
// evictions are constant, and a slice of ops are hostile out-of-range or
// address-wrapping probes that every model must reject identically.
func GenerateSequence(cfg Config, seed int64) Sequence {
	rng := rand.New(rand.NewSource(seed))
	g := cfg.Geometry
	size := cfg.size()

	genAddr := func() uint64 {
		page := rng.Intn(cfg.TotalPages)
		var off int
		switch rng.Intn(4) {
		case 0: // a few bytes before a chunk boundary: forces a straddle
			c := 1 + rng.Intn(g.ChunksPerPage()-1)
			off = c*g.ChunkSize - (1 + rng.Intn(4))
		case 1: // sector-aligned
			off = rng.Intn(g.SectorsPerPage()) * g.SectorSize
		case 2: // chunk-aligned
			off = rng.Intn(g.ChunksPerPage()) * g.ChunkSize
		default:
			off = rng.Intn(g.PageSize)
		}
		return uint64(page*g.PageSize + off)
	}
	genLen := func() int {
		switch rng.Intn(8) {
		case 0:
			if rng.Intn(8) == 0 {
				return 0
			}
			return 1 + rng.Intn(4)
		case 1:
			return g.SectorSize // exactly one sector
		case 2:
			return g.SectorSize + 1 // sector straddle
		case 3:
			return 2*g.SectorSize + 3 // multi-sector straddle
		case 4:
			return g.ChunkSize/2 + rng.Intn(g.ChunkSize) // can straddle chunks
		default:
			return 1 + rng.Intn(2*g.SectorSize)
		}
	}
	hostile := func() (uint64, int) {
		switch rng.Intn(4) {
		case 0: // past the end
			return size + uint64(rng.Intn(1024)), 1 + rng.Intn(64)
		case 1: // addr+len wraps around 2^64 — the classic bounds-check trap
			return ^uint64(0) - uint64(rng.Intn(64)), 1 + rng.Intn(96)
		case 2: // in-range addr, range crosses the end
			return size - uint64(1+rng.Intn(32)), 33 + rng.Intn(64)
		default: // in-range addr, absurd length
			return uint64(rng.Intn(int(size))), int(size) + rng.Intn(256)
		}
	}

	ops := make([]Op, 0, cfg.Ops)
	var tag byte
	for i := 0; i < cfg.Ops; i++ {
		switch r := rng.Intn(100); {
		case r < 26: // cached read (migrates)
			ops = append(ops, Op{Kind: OpRead, Addr: genAddr(), Len: genLen()})
		case r < 56: // cached write (migrates, dirties)
			tag++
			ops = append(ops, Op{Kind: OpWrite, Addr: genAddr(), Len: genLen(), Tag: tag})
		case r < 64: // direct CXL read
			ops = append(ops, Op{Kind: OpReadThrough, Addr: genAddr(), Len: genLen()})
		case r < 74: // direct CXL write (split counters)
			tag++
			ops = append(ops, Op{Kind: OpWriteThrough, Addr: genAddr(), Len: genLen(), Tag: tag})
		case r < 80:
			ops = append(ops, Op{Kind: OpCheckpoint, Addr: genAddr()})
		case r < 85:
			ops = append(ops, Op{Kind: OpFlush})
		case r < 87:
			ops = append(ops, Op{Kind: OpSuspendResume})
		default: // hostile probes (~13%)
			addr, n := hostile()
			if rng.Intn(2) == 0 {
				ops = append(ops, Op{Kind: OpRead, Addr: addr, Len: n})
			} else {
				tag++
				ops = append(ops, Op{Kind: OpWrite, Addr: addr, Len: n, Tag: tag})
			}
		}
	}
	return Sequence{Seed: seed, Ops: ops}
}
