package check

import (
	"strings"
	"testing"
)

// TestTenantCampaignSmoke runs a trimmed hostile-tenant campaign and
// requires a clean PASS: typed denials only, zero cross-tenant leaks,
// healthy-tenant SLO held.
func TestTenantCampaignSmoke(t *testing.T) {
	plan := DefaultTenantPlan()
	plan.Seeds = 3
	plan.OpsPerWorker = 40
	res := RunTenant(plan)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.SeedsRun != plan.Seeds {
		t.Fatalf("ran %d seeds, want %d", res.SeedsRun, plan.Seeds)
	}
	if res.HostileProbes == 0 || res.TypedDenials == 0 {
		t.Fatalf("campaign drove no hostile probes (%d probes, %d denials)", res.HostileProbes, res.TypedDenials)
	}
	if res.ReplayAttacks == 0 || res.ReplayRefusals != res.ReplayAttacks {
		t.Fatalf("replay attacks %d, refusals %d: every splice must be refused", res.ReplayAttacks, res.ReplayRefusals)
	}
	if res.QuotaRefusals == 0 {
		t.Fatal("quota storms never hit ErrQuota")
	}
	if res.Crashes == 0 && res.Outages == 0 && res.Checkpoints == 0 {
		t.Fatal("chaos driver never fired")
	}
	if res.VictimAvailability < plan.VictimSLO || res.BystanderAvailability < plan.VictimSLO {
		t.Fatalf("healthy availability %.4f/%.4f below floor %.4f",
			res.VictimAvailability, res.BystanderAvailability, plan.VictimSLO)
	}
	table := res.Table()
	for _, col := range []string{"tenant", "denied", "quota", "recovers"} {
		if !strings.Contains(table, col) {
			t.Fatalf("aggregate table missing column %q:\n%s", col, table)
		}
	}
	for _, row := range []string{roleVictim, roleBystander, roleAttacker} {
		if !strings.Contains(table, row) {
			t.Fatalf("aggregate table missing tenant %q:\n%s", row, table)
		}
	}
}

// TestTenantCampaignDeterministic pins the deterministic surface: the
// chaos event schedule and the structural counters (op attempts,
// hostile probes, typed denials, replays) are pure functions of the
// seed. Which individual op a shared quota token admits is
// interleaving-dependent by design, so per-category splits like
// QuotaRefusals are deliberately not pinned.
func TestTenantCampaignDeterministic(t *testing.T) {
	plan := DefaultTenantPlan()
	plan.Seeds = 2
	plan.OpsPerWorker = 30
	a := RunTenant(plan)
	b := RunTenant(plan)
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.Ops != b.Ops || a.HostileProbes != b.HostileProbes || a.TypedDenials != b.TypedDenials ||
		a.ReplayAttacks != b.ReplayAttacks || a.Checkpoints != b.Checkpoints ||
		a.Crashes != b.Crashes || a.Outages != b.Outages {
		t.Fatalf("campaign not deterministic:\n%+v\n%+v", a, b)
	}
}
