package check

import (
	"strings"
	"testing"
)

// TestMigrateCampaignSmoke runs a trimmed live-migration campaign and
// requires a clean PASS: every honest migration oracle-verified, every
// injected attack refused typed, every crash cut leaving the
// destination pristine, the link-loss session resumed to completion,
// and every bystander untouched.
func TestMigrateCampaignSmoke(t *testing.T) {
	plan := DefaultMigratePlan()
	plan.Seeds = 2
	plan.WriteBursts = 12
	plan.ServeSpan = 24
	res := RunMigrate(plan)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.SeedsRun != plan.Seeds {
		t.Fatalf("ran %d seeds, want %d", res.SeedsRun, plan.Seeds)
	}
	// Four honest migrations per seed: differential-oracle, under-load
	// cutover, tape recording, link-loss resume.
	if want := 4 * plan.Seeds; res.Migrations != want {
		t.Fatalf("completed %d migrations, want %d", res.Migrations, want)
	}
	if res.Attacks == 0 || res.TypedRejections != res.Attacks {
		t.Fatalf("attacks %d, typed rejections %d: every attack must be refused typed",
			res.Attacks, res.TypedRejections)
	}
	if res.CrashCuts == 0 {
		t.Fatal("no crash cuts enumerated")
	}
	if res.Resumes == 0 || res.Retries == 0 {
		t.Fatalf("link chaos never exercised resume (%d resumes, %d retries)", res.Resumes, res.Retries)
	}
	if res.Destroyed != plan.Seeds {
		t.Fatalf("retired %d source identities, want %d", res.Destroyed, plan.Seeds)
	}
	if res.ServeRequests == 0 {
		t.Fatal("cutover-under-load phase served no requests")
	}
	table := res.Table()
	for _, col := range []string{"tenant", "rounds", "skipped", "resumes", "torn", "attest"} {
		if !strings.Contains(table, col) {
			t.Fatalf("aggregate table missing column %q:\n%s", col, table)
		}
	}
	if !strings.Contains(table, roleMigrant) {
		t.Fatalf("aggregate table missing tenant %q:\n%s", roleMigrant, table)
	}
}

// TestMigrateCampaignDeterministic pins the deterministic surface: the
// stream schedule, attack enumeration, and counters are pure functions
// of the seed. The serve phase's realised request count depends on the
// client/migration interleaving by design, so it is not pinned.
func TestMigrateCampaignDeterministic(t *testing.T) {
	plan := DefaultMigratePlan()
	plan.Seeds = 1
	plan.WriteBursts = 10
	plan.ServeSpan = 16
	a := RunMigrate(plan)
	b := RunMigrate(plan)
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.Migrations != b.Migrations || a.Attacks != b.Attacks ||
		a.TypedRejections != b.TypedRejections || a.CrashCuts != b.CrashCuts ||
		a.Resumes != b.Resumes || a.Retries != b.Retries || a.Destroyed != b.Destroyed {
		t.Fatalf("campaign not deterministic:\n%+v\n%+v", a, b)
	}
}
