package check

import (
	"reflect"
	"strings"
	"testing"
)

// TestRunLinkSmoke runs a scaled-down default campaign and asserts both
// that it passes and that it actually exercised the degraded-mode
// machinery: outages refused transfers, writebacks parked and all
// drained, and every seed's rollback probe detected its staged attack.
func TestRunLinkSmoke(t *testing.T) {
	plan := DefaultLinkPlan()
	plan.Seeds = 4
	plan.Ops = 80
	res := RunLink(plan)
	if res.Failure != nil {
		t.Fatalf("link campaign failed: %v", res.Failure)
	}
	if res.SeedsRun != 4 || res.PlansRun != 4*len(plan.Plans) {
		t.Fatalf("campaign coverage: %d seeds, %d plan replays", res.SeedsRun, res.PlansRun)
	}
	if res.Refusals == 0 && res.FastFails == 0 {
		t.Fatal("no transfer was ever refused — the flap plans never fired")
	}
	if res.Flaps == 0 {
		t.Fatal("link never changed state")
	}
	if res.Queued == 0 {
		t.Fatal("no writeback ever parked — outage never hit a dirty eviction")
	}
	if res.Queued != res.Drained {
		t.Fatalf("writeback accounting open across campaign: %d queued, %d drained", res.Queued, res.Drained)
	}
	if res.RollbackProbes != plan.Seeds {
		t.Fatalf("rollback probes: %d detected, want %d", res.RollbackProbes, plan.Seeds)
	}
	if res.DepthSamples == 0 || res.AgeCount != res.Drained {
		t.Fatalf("queue telemetry: %d depth samples, %d ages for %d drains",
			res.DepthSamples, res.AgeCount, res.Drained)
	}
}

// TestLinkReplayDeterministic replays the same sequence under the same
// rate plan twice and demands identical campaign counters: the flap
// schedule must be a pure function of (seed, spec).
func TestLinkReplayDeterministic(t *testing.T) {
	plan := DefaultLinkPlan()
	np := plan.Plans[len(plan.Plans)-1] // the rate plan
	if !strings.HasPrefix(np.Spec, "rate:") {
		t.Fatalf("expected the last default plan to be rate-driven, got %q", np.Spec)
	}
	seq := GenerateLinkSequence(plan, 7)
	var a, b LinkResult
	if f := linkReplay(plan, np, seq, &a); f != nil {
		t.Fatalf("first replay: %v", f)
	}
	if f := linkReplay(plan, np, seq, &b); f != nil {
		t.Fatalf("second replay: %v", f)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}

// TestGenerateLinkSequenceInRange checks the generator's contract: link
// sequences carry no hostile probes, every addressed op fits the space.
func TestGenerateLinkSequenceInRange(t *testing.T) {
	plan := DefaultLinkPlan()
	size := plan.size()
	for seed := int64(1); seed <= 20; seed++ {
		seq := GenerateLinkSequence(plan, seed)
		if len(seq.Ops) != plan.Ops {
			t.Fatalf("seed %d: %d ops, want %d", seed, len(seq.Ops), plan.Ops)
		}
		drains := 0
		for i, op := range seq.Ops {
			switch op.Kind {
			case OpFlush:
			case OpDrainWritebacks:
				drains++
			default:
				if op.Addr >= size || uint64(op.Len) > size-op.Addr {
					t.Fatalf("seed %d op %d out of range: %v", seed, i, op)
				}
			}
		}
		if drains == 0 {
			t.Fatalf("seed %d generated no drain ops", seed)
		}
	}
	if !reflect.DeepEqual(GenerateLinkSequence(plan, 3), GenerateLinkSequence(plan, 3)) {
		t.Fatal("generator not deterministic")
	}
}

// TestLinkRollbackProbeDetects pins the security core directly: the
// per-seed probe must come back nil, meaning the staged outage rollback
// was refused with ErrFreshness on drain.
func TestLinkRollbackProbeDetects(t *testing.T) {
	plan := DefaultLinkPlan()
	for seed := int64(1); seed <= 8; seed++ {
		if f := linkRollbackProbe(plan, seed); f != nil {
			t.Fatalf("seed %d: %v", seed, f)
		}
	}
}

// TestLinkGoTestRendering checks the emitted reproducer is a plausible
// test: plan sizing, the named link plan spec, and every op rendered.
func TestLinkGoTestRendering(t *testing.T) {
	plan := DefaultLinkPlan()
	np := plan.Plans[0]
	f := &Failure{
		Seq: Sequence{Seed: 9, Ops: []Op{
			{Kind: OpWrite, Addr: 0x40, Len: 8, Tag: 3},
			{Kind: OpFlush},
			{Kind: OpDrainWritebacks},
		}},
		OpIdx:  2,
		Target: "salus-link/" + np.Name,
		Reason: "synthetic",
	}
	src := f.LinkGoTest(plan, np, "seed9")
	for _, want := range []string{
		"func TestLinkRegression_seed9(t *testing.T)",
		"check.DefaultLinkPlan()",
		`check.NamedLinkPlan{Name: "flap-short"`,
		np.Spec,
		"check.OpDrainWritebacks",
		"check.ReplayLinkSequence(plan, np, seq)",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("emitted test missing %q:\n%s", want, src)
		}
	}
}
