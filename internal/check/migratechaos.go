package check

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/link"
	"github.com/salus-sim/salus/internal/migrate"
	"github.com/salus-sim/salus/internal/securemem"
	"github.com/salus-sim/salus/internal/serve"
	"github.com/salus-sim/salus/internal/stats"
	"github.com/salus-sim/salus/internal/tenant"
)

// roleMigrant is the tenant being moved between hosts; every pool also
// hosts a roleBystander sibling whose bytes and availability must never
// move while the migrant is streamed, attacked, crashed, and retired.
const roleMigrant = "migrant"

// MigratePlan configures the attested live-migration campaign
// (salus-check -migrate): per seed it drives an honest migration held
// to a differential oracle, a cutover under live service traffic, a
// man-in-the-middle phase attacking every record boundary of a recorded
// stream tape, endpoint crashes at every stream boundary, a link-flap
// session that must park resumable and complete, and the retirement of
// the migrated-away source identity — with bystander tenants on every
// pool asserted zero-blast-radius throughout.
type MigratePlan struct {
	Seeds     int
	FirstSeed int64

	// PagesPerTenant / FramesPerTenant / Shards size each tenant slice;
	// frames below pages forces device-tier churn into the stream.
	PagesPerTenant  int
	FramesPerTenant int
	Shards          int
	Geometry        config.Geometry
	QueueCap        int

	// ChunkSize is the migration stream chunk payload; MaxRounds caps
	// sync rounds including the final quiesced one.
	ChunkSize int
	MaxRounds int

	// WriteBursts scales the pre-migration write traffic (and the
	// mid-park dirtying bursts) per phase.
	WriteBursts int

	// ServeSpan is the minimum number of fronting-server requests the
	// cutover-under-load phase drives before the campaign lets the
	// client stop (the client keeps serving while the migration runs,
	// so the realised count is usually higher).
	ServeSpan int

	// Verbose, when set, receives one line per seed.
	Verbose func(string)
}

// DefaultMigratePlan is the CI smoke budget.
func DefaultMigratePlan() MigratePlan {
	return MigratePlan{
		Seeds:     8,
		FirstSeed: 1,

		PagesPerTenant:  8,
		FramesPerTenant: 4,
		Shards:          2,
		Geometry:        config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},
		QueueCap:        4,

		ChunkSize:   4096,
		MaxRounds:   4,
		WriteBursts: 24,
		ServeSpan:   48,
	}
}

// MigrateResult summarises a RunMigrate campaign.
type MigrateResult struct {
	SeedsRun      int
	Migrations    int // honest migrations completed (oracle-verified)
	ServeRequests int // requests served through the fronting server across cutovers

	Attacks         int // adversarial stream deliveries driven
	TypedRejections int // attacks refused with a typed migrate error
	CrashCuts       int // endpoint crashes simulated at stream boundaries
	Resumes         int // link-loss parks resumed to completion
	Retries         int // link refusals absorbed by capped backoff
	Destroyed       int // migrated-away source identities retired

	// Aggregate sums the per-seed migration counters (honest sessions
	// plus the typed rejections the attacked receivers recorded).
	Aggregate []stats.MigrateOps

	// Violations holds every contract breach. Empty means PASS.
	Violations []string
}

// Failed reports whether the campaign found any contract violation.
func (r *MigrateResult) Failed() bool { return len(r.Violations) > 0 }

// Table renders the aggregate migration counters.
func (r *MigrateResult) Table() string {
	o := stats.Ops{Migrates: r.Aggregate}
	return o.MigrateTable().String()
}

// RunMigrate runs plan.Seeds migration sessions. Like the other
// campaign runners it stops after the first seed that records
// violations, so the failing seed is the first line of the report.
func RunMigrate(plan MigratePlan) MigrateResult {
	var res MigrateResult
	agg := stats.MigrateOps{Tenant: roleMigrant}

	for i := 0; i < plan.Seeds; i++ {
		seed := plan.FirstSeed + int64(i)
		s := runMigrateSeed(plan, seed)

		res.SeedsRun++
		res.Migrations += s.migrations
		res.ServeRequests += s.serveReqs
		res.Attacks += s.attacks
		res.TypedRejections += s.rejections
		res.CrashCuts += s.crashCuts
		res.Resumes += s.resumes
		res.Retries += s.retries
		res.Destroyed += s.destroyed
		mergeMigrateOps(&agg, &s.ops)

		if plan.Verbose != nil {
			plan.Verbose(fmt.Sprintf(
				"seed %d: %d migrations, %d serve reqs, %d/%d attacks refused typed, %d crash cuts, %d resumes (%d retries), %d retired",
				seed, s.migrations, s.serveReqs, s.rejections, s.attacks,
				s.crashCuts, s.resumes, s.retries, s.destroyed))
		}
		if len(s.violations) > 0 {
			for _, v := range s.violations {
				res.Violations = append(res.Violations, fmt.Sprintf("seed %d: %s", seed, v))
			}
			break
		}
	}
	res.Aggregate = append(res.Aggregate, agg)
	return res
}

// mergeMigrateOps sums src into dst (tenant name handled by caller).
func mergeMigrateOps(dst, src *stats.MigrateOps) {
	dst.Rounds += src.Rounds
	dst.ChunksSent += src.ChunksSent
	dst.ChunksSkipped += src.ChunksSkipped
	dst.BytesStreamed += src.BytesStreamed
	dst.Retries += src.Retries
	dst.Resumes += src.Resumes
	dst.Torn += src.Torn
	dst.Replay += src.Replay
	dst.Attest += src.Attest
	dst.Fresh += src.Fresh
}

// migrateSeedResult is one seed's outcome.
type migrateSeedResult struct {
	migrations int
	serveReqs  int
	attacks    int
	rejections int
	crashCuts  int
	resumes    int
	retries    int
	destroyed  int
	ops        stats.MigrateOps
	violations []string
}

// migrateTyped reports whether err is one of the four typed stream
// refusals — the only acceptable way for an attacked migration to fail.
func migrateTyped(err error) bool {
	return errors.Is(err, migrate.ErrTornStream) || errors.Is(err, migrate.ErrReplay) ||
		errors.Is(err, migrate.ErrAttestation) || errors.Is(err, migrate.ErrFreshness)
}

// migrateNonce derives the deterministic per-phase session nonce.
func migrateNonce(seed int64, phase byte) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf("salus-migrate-campaign:%d:%d", seed, phase)))
}

// migrateMasters derives the per-seed pool master MAC key shared by
// every host in the seed — the precondition for no-re-encryption
// migration (and the thing the alien-host attestation probe violates).
func migrateMasters(seed int64) []byte {
	k := sha256.Sum256([]byte(fmt.Sprintf("salus-migrate-masters:%d", seed)))
	return k[:]
}

// migratePool builds one host: the migrant slice and, optionally, a
// bystander sibling slice.
func migratePool(plan MigratePlan, mac []byte, withBystander bool) (*tenant.Pool, error) {
	slices := []tenant.Slice{
		{ID: roleMigrant, BasePage: 0, Pages: plan.PagesPerTenant,
			Frames: plan.FramesPerTenant, Shards: plan.Shards},
	}
	if withBystander {
		slices = append(slices, tenant.Slice{ID: roleBystander, BasePage: plan.PagesPerTenant,
			Pages: plan.PagesPerTenant, Frames: plan.FramesPerTenant, Shards: plan.Shards})
	}
	return tenant.NewPool(tenant.Config{
		Geometry: plan.Geometry,
		Slices:   slices,
		MACKey:   mac,
		QueueCap: plan.QueueCap,
	})
}

// migrateBurst applies n random writes to every tenant in tens
// identically, mirroring them into the plaintext oracle. Writing the
// same bytes to a control tenant on an unrelated pool is what makes the
// post-migration comparison a true differential oracle.
func migrateBurst(rng *rand.Rand, tens []*tenant.Tenant, oracle []byte, n int) error {
	for i := 0; i < n; i++ {
		off := rng.Intn(len(oracle) - 128)
		data := make([]byte, 16+rng.Intn(96))
		rng.Read(data)
		for _, t := range tens {
			if err := t.Write(t.Base()+securemem.HomeAddr(off), data); err != nil {
				return fmt.Errorf("write @%d on %s: %w", off, t.ID(), err)
			}
		}
		copy(oracle[off:], data)
	}
	return nil
}

// migrateVerify compares a tenant's whole slice against the oracle,
// page by page.
func migrateVerify(t *tenant.Tenant, oracle []byte, ps int) error {
	buf := make([]byte, ps)
	for off := 0; off < len(oracle); off += ps {
		if err := t.Read(t.Base()+securemem.HomeAddr(off), buf); err != nil {
			return fmt.Errorf("read page @%d: %w", off, err)
		}
		if !bytes.Equal(buf, oracle[off:off+ps]) {
			return fmt.Errorf("plaintext diverged from oracle in page @%d", off)
		}
	}
	return nil
}

// migrateBystander seeds one bystander slice and returns its
// post-seeding digest — the fingerprint that must never move.
func migrateBystander(t *tenant.Tenant, seed int64) ([32]byte, error) {
	data := bytes.Repeat([]byte{0xb5 ^ byte(seed)}, 128)
	if err := t.Write(t.Base()+securemem.HomeAddr(64), data); err != nil {
		return [32]byte{}, err
	}
	return t.StateDigest(), nil
}

// runMigrateSeed runs one seed's full phase sequence.
func runMigrateSeed(plan MigratePlan, seed int64) migrateSeedResult {
	res := migrateSeedResult{ops: stats.MigrateOps{Tenant: roleMigrant}}
	fail := func(format string, a ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, a...))
	}
	ps := plan.Geometry.PageSize
	size := plan.PagesPerTenant * ps
	if plan.PagesPerTenant < 2 || plan.ChunkSize < 64 || plan.MaxRounds < 2 ||
		plan.WriteBursts < 1 || size < 512 {
		fail("plan sizing: %d pages × %d, chunk %d, %d rounds",
			plan.PagesPerTenant, ps, plan.ChunkSize, plan.MaxRounds)
		return res
	}
	rng := rand.New(rand.NewSource(seed ^ 0x317a7e))
	mac := migrateMasters(seed)

	mkPool := func(withBystander bool) *tenant.Pool {
		p, err := migratePool(plan, mac, withBystander)
		if err != nil {
			fail("pool setup: %v", err)
		}
		return p
	}
	mig := func(p *tenant.Pool) *tenant.Tenant {
		t, err := p.Tenant(roleMigrant)
		if err != nil {
			fail("migrant lookup: %v", err)
		}
		return t
	}

	// Every bystander we create is registered here and re-checked at
	// the end of the seed: digest unmoved, zero denials/faults/quota.
	type witness struct {
		host string
		t    *tenant.Tenant
		dig  [32]byte
	}
	var witnesses []witness
	watchBystander := func(host string, p *tenant.Pool) {
		t, err := p.Tenant(roleBystander)
		if err != nil {
			fail("%s bystander lookup: %v", host, err)
			return
		}
		dig, err := migrateBystander(t, seed)
		if err != nil {
			fail("%s bystander seed: %v", host, err)
			return
		}
		witnesses = append(witnesses, witness{host, t, dig})
	}

	// --- Phase A: honest migration hostA → hostB, held to a
	// differential oracle: an identical write history applied to a
	// control tenant on an uninvolved pool must read back byte-identical
	// from the migrated destination. ---
	hostA, hostB, control := mkPool(true), mkPool(true), mkPool(true)
	if len(res.violations) > 0 {
		return res
	}
	watchBystander("hostA", hostA)
	watchBystander("hostB", hostB)
	srcT, ctlT := mig(hostA), mig(control)
	oracle := make([]byte, size)
	if err := migrateBurst(rng, []*tenant.Tenant{srcT, ctlT}, oracle, plan.WriteBursts); err != nil {
		fail("phase A traffic: %v", err)
		return res
	}
	opsA, err := migrate.Run(migrate.Config{
		SourcePool: hostA, Source: srcT, DestPool: hostB,
		ChunkSize: plan.ChunkSize, MaxRounds: plan.MaxRounds,
		Nonce: migrateNonce(seed, 'a'),
	})
	mergeMigrateOps(&res.ops, &opsA)
	if err != nil {
		fail("phase A migration failed: %v", err)
		return res
	}
	dstT := mig(hostB)
	if err := migrateVerify(dstT, oracle, ps); err != nil {
		fail("phase A destination vs oracle: %v", err)
	}
	if err := migrateVerify(ctlT, oracle, ps); err != nil {
		fail("phase A control vs oracle: %v", err)
	}
	if sd, dd := srcT.StateDigest(), dstT.StateDigest(); sd != dd {
		fail("phase A source/destination digests diverge after cutover")
	}
	res.migrations++

	// --- Phase F (early, on purpose): the migrated-away source
	// identity is retired. Keys zeroized, frames reclaimed, every
	// later op typed ErrTenantClosed — and the destination plus the
	// source-pool bystander keep serving as if nothing happened. ---
	if err := hostA.DestroyTenant(roleMigrant); err != nil {
		fail("destroy migrated-away source: %v", err)
	}
	if err := srcT.Read(srcT.Base(), make([]byte, 32)); !errors.Is(err, tenant.ErrTenantClosed) {
		fail("read after destroy: got %v, want ErrTenantClosed", err)
	}
	if got := hostA.ReclaimedFrames(); got != plan.FramesPerTenant {
		fail("destroy reclaimed %d frames, want %d", got, plan.FramesPerTenant)
	}
	if err := migrateVerify(dstT, oracle, ps); err != nil {
		fail("destination after source retirement: %v", err)
	}
	res.destroyed++

	// --- Phase B: cutover under live service traffic. A serve.Server
	// fronts the hostB migrant engine while a client stream keeps
	// reading and writing; the migration to hostC runs concurrently and
	// its final round executes inside WithQuiescedSwap, so every
	// request lands entirely pre-cutover on hostB or post-cutover on
	// hostC. The client's oracle is updated only in OnDone (under the
	// engine lock), which is exactly the consistency the swap promises. ---
	hostC := mkPool(true)
	if len(res.violations) > 0 {
		return res
	}
	watchBystander("hostC", hostC)
	srv, err := serve.New(serve.Config{Engine: dstT.Engine()})
	if err != nil {
		fail("phase B server: %v", err)
		return res
	}
	serveOracle := append([]byte(nil), oracle...)
	var (
		clientViolations []string
		clientReqs       int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		crng := rand.New(rand.NewSource(seed ^ 0x51ee))
		for i := 0; ; i++ {
			// Guarantee a minimum span, then stop on request; the
			// migration usually outlives the minimum so most requests
			// straddle the sync rounds and the swap.
			if i >= plan.ServeSpan {
				select {
				case <-stop:
					return
				default:
				}
			}
			clientReqs++
			off := crng.Intn(size - 128)
			if crng.Intn(3) == 0 {
				buf := make([]byte, 64)
				req := &serve.Request{
					Class: serve.Interactive, Addr: securemem.HomeAddr(off),
					Buf: buf, Tenant: roleMigrant, Deadline: 1 << 40,
				}
				req.OnDone = func(e error) {
					if e == nil && !bytes.Equal(buf, serveOracle[off:off+64]) {
						clientViolations = append(clientViolations,
							fmt.Sprintf("served read @%d diverged from client oracle", off))
					}
				}
				if err := srv.Do(req); err != nil {
					clientViolations = append(clientViolations,
						fmt.Sprintf("served read @%d refused: %v", off, err))
				}
			} else {
				data := make([]byte, 16+crng.Intn(48))
				crng.Read(data)
				req := &serve.Request{
					Class: serve.Interactive, Addr: securemem.HomeAddr(off),
					Write: true, Data: data, Tenant: roleMigrant, Deadline: 1 << 40,
				}
				req.OnDone = func(e error) {
					if e == nil {
						copy(serveOracle[off:], data)
					}
				}
				if err := srv.Do(req); err != nil {
					clientViolations = append(clientViolations,
						fmt.Sprintf("served write @%d refused: %v", off, err))
				}
			}
		}
	}()
	opsB, errB := migrate.Run(migrate.Config{
		SourcePool: hostB, Source: dstT, DestPool: hostC, Swap: srv,
		ChunkSize: plan.ChunkSize, MaxRounds: plan.MaxRounds,
		Nonce: migrateNonce(seed, 'b'),
	})
	close(stop)
	wg.Wait()
	mergeMigrateOps(&res.ops, &opsB)
	res.serveReqs += clientReqs
	res.violations = append(res.violations, clientViolations...)
	if errB != nil {
		fail("phase B migration under load failed: %v", errB)
		return res
	}
	hostCT := mig(hostC)
	if srv.Engine() != hostCT.Engine() {
		fail("phase B cutover did not swap the service onto the destination engine")
	}
	if err := migrateVerify(hostCT, serveOracle, ps); err != nil {
		fail("phase B migrated state vs client oracle: %v", err)
	}
	// Post-cutover traffic must land on hostC: one more served write,
	// read back through the destination tenant.
	probe := bytes.Repeat([]byte{0xc7}, 32)
	if err := srv.Do(&serve.Request{Class: serve.Interactive, Addr: 0, Write: true,
		Data: probe, Tenant: roleMigrant, Deadline: 1 << 40}); err != nil {
		fail("phase B post-cutover write refused: %v", err)
	} else {
		got := make([]byte, 32)
		if err := hostCT.Read(hostCT.Base(), got); err != nil || !bytes.Equal(got, probe) {
			fail("phase B post-cutover write did not land on the destination host (err %v)", err)
		}
		copy(serveOracle, probe)
	}
	res.migrations++
	res.serveReqs++

	// --- Phase C: man-in-the-middle. Record one honest session's
	// stream tape, then attack every record boundary with every
	// mutation class against fresh destinations. Every delivery must be
	// refused typed, the attacked destination must stay byte-untouched,
	// and the tape source must keep serving throughout. ---
	tapeSrc := mkPool(true)
	tapeDst := mkPool(false)
	if len(res.violations) > 0 {
		return res
	}
	watchBystander("tapeSrc", tapeSrc)
	tapeT := mig(tapeSrc)
	tapeOracle := make([]byte, size)
	if err := migrateBurst(rng, []*tenant.Tenant{tapeT}, tapeOracle, plan.WriteBursts); err != nil {
		fail("phase C traffic: %v", err)
		return res
	}
	// The offer is captured before the session so replayed tapes can be
	// re-verified against fresh receivers with the same handshake.
	tapeNonce := migrateNonce(seed, 'c')
	offer := migrate.Offer{Measurement: migrate.Measure(tapeSrc, tapeT)}
	var tape [][]byte
	opsC, err := migrate.Run(migrate.Config{
		SourcePool: tapeSrc, Source: tapeT, DestPool: tapeDst,
		ChunkSize: plan.ChunkSize, MaxRounds: plan.MaxRounds,
		Nonce: tapeNonce,
		Tap: func(_ int, f []byte) []byte {
			tape = append(tape, append([]byte(nil), f...))
			return nil
		},
	})
	mergeMigrateOps(&res.ops, &opsC)
	if err != nil {
		fail("phase C tape recording failed: %v", err)
		return res
	}
	res.migrations++
	if len(tape) < 6 {
		fail("phase C tape implausibly short: %d records", len(tape))
		return res
	}

	// freshDest builds a pristine destination endpoint mid-handshake,
	// exactly as the honest session would have seen it.
	freshDest := func() (*tenant.Pool, *migrate.Receiver, [32]byte) {
		p, err := migratePool(plan, mac, false)
		if err != nil {
			fail("attack pool: %v", err)
			return nil, nil, [32]byte{}
		}
		r, err := migrate.NewReceiver(p, roleMigrant, tapeNonce)
		if err != nil {
			fail("attack receiver: %v", err)
			return nil, nil, [32]byte{}
		}
		if _, err := r.Accept(offer); err != nil {
			fail("attack handshake refused honest offer: %v", err)
			return nil, nil, [32]byte{}
		}
		t, _ := p.Tenant(roleMigrant)
		return p, r, t.StateDigest()
	}
	// feed streams frames and returns the first error.
	feed := func(r *migrate.Receiver, frames ...[]byte) error {
		for _, f := range frames {
			if err := r.Feed(f); err != nil {
				return err
			}
		}
		return nil
	}
	untouched := func(p *tenant.Pool, pristine [32]byte, what string) {
		t, _ := p.Tenant(roleMigrant)
		if t.Epoch() != 0 || t.StateDigest() != pristine {
			fail("%s left the destination modified", what)
		}
	}
	cp := func(f []byte) []byte { return append([]byte(nil), f...) }

	// Tape-frame layout (see internal/migrate DESIGN §16): 2-byte
	// magic, type, LE seq, LE payload length, payload, CRC32, MAC.
	// The forge mutation flips a payload byte and repairs the CRC so
	// the frame survives to the MAC check.
	forge := func(f []byte) []byte {
		m := cp(f)
		plen := int(uint32(m[7]) | uint32(m[8])<<8 | uint32(m[9])<<16 | uint32(m[10])<<24)
		m[11] ^= 0x40
		crc := crc32.ChecksumIEEE(m[2 : 11+plen])
		m[11+plen] = byte(crc)
		m[12+plen] = byte(crc >> 8)
		m[13+plen] = byte(crc >> 16)
		m[14+plen] = byte(crc >> 24)
		return m
	}

	type attack struct {
		name string
		// frames builds the delivery sequence for boundary k, or nil
		// when the attack does not apply at k.
		frames func(k int) [][]byte
		// applied reports whether a completed cutover before the attack
		// frame is legitimate (duplicate-after-done only).
		applied func(k int) bool
	}
	attacks := []attack{
		{name: "bitflip", frames: func(k int) [][]byte {
			m := cp(tape[k])
			m[len(m)/2] ^= 0x01
			return append(append([][]byte{}, tape[:k]...), m)
		}},
		{name: "forge", frames: func(k int) [][]byte {
			return append(append([][]byte{}, tape[:k]...), forge(tape[k]))
		}},
		{name: "truncate", frames: func(k int) [][]byte {
			return append(append([][]byte{}, tape[:k]...), tape[k][:len(tape[k])-7])
		}},
		// A dropped record and a reordered pair present the same way at
		// the receiver — the next record arrives at the wrong chain
		// position — so one mutation covers both classes.
		{name: "reorder/drop", frames: func(k int) [][]byte {
			if k+1 >= len(tape) {
				return nil
			}
			return append(append([][]byte{}, tape[:k]...), tape[k+1])
		}},
		{name: "duplicate", frames: func(k int) [][]byte {
			return append(append(append([][]byte{}, tape[:k]...), tape[k]), tape[k])
		}, applied: func(k int) bool { return k == len(tape)-1 }},
	}
	for k := 0; k < len(tape); k++ {
		// Endpoint crash at boundary k: the stream just stops. The
		// destination must be exactly pristine — nothing is applied
		// before a verified cutover, so there is no half-applied state
		// to clean up on either a source or a destination crash.
		p, r, pristine := freshDest()
		if p == nil {
			return res
		}
		if err := feed(r, tape[:k]...); err != nil {
			fail("crash cut %d: honest prefix refused: %v", k, err)
			return res
		}
		if r.Done() {
			fail("crash cut %d: receiver done before the cutover record", k)
		}
		untouched(p, pristine, fmt.Sprintf("crash at boundary %d", k))
		res.crashCuts++

		for _, a := range attacks {
			frames := a.frames(k)
			if frames == nil {
				continue
			}
			res.attacks++
			p, r, pristine := freshDest()
			if p == nil {
				return res
			}
			err := feed(r, frames...)
			if err == nil {
				fail("%s at boundary %d/%d accepted", a.name, k, len(tape))
				continue
			}
			if !migrateTyped(err) {
				fail("%s at boundary %d refused untyped: %v", a.name, k, err)
				continue
			}
			res.rejections++
			rops := r.Ops()
			mergeMigrateOps(&res.ops, &rops)
			// Fail-stop: the poisoned receiver refuses everything after.
			if ferr := r.Feed(tape[len(tape)-1]); ferr == nil {
				fail("%s at boundary %d: receiver served frames after poisoning", a.name, k)
			}
			if a.applied != nil && a.applied(k) {
				continue // cutover legitimately applied before the attack frame
			}
			if r.Done() {
				fail("%s at boundary %d: receiver reports done", a.name, k)
			}
			untouched(p, pristine, fmt.Sprintf("%s at boundary %d", a.name, k))
		}
	}
	// The tape source must have kept serving through every attack —
	// the receivers never touch it, and this proves it.
	if err := migrateVerify(tapeT, tapeOracle, ps); err != nil {
		fail("phase C source after attacks: %v", err)
	}

	// Rollback-to-older-session: replay the full honest tape onto a
	// fresh destination (must verify verbatim — it is an honest
	// stream), then offer the same stale session to the now-migrated
	// destination: refused ErrFreshness before a single frame.
	p, r, _ := freshDest()
	if p == nil {
		return res
	}
	if err := feed(r, tape...); err != nil || !r.Done() {
		fail("honest tape replay onto fresh destination refused: %v", err)
	} else {
		res.attacks++
		r2, err := migrate.NewReceiver(p, roleMigrant, tapeNonce)
		if err != nil {
			fail("rollback receiver: %v", err)
		} else if _, err := r2.Accept(offer); !errors.Is(err, migrate.ErrFreshness) {
			fail("stale-session rollback: got %v, want ErrFreshness", err)
		} else {
			res.rejections++
			rops := r2.Ops()
			mergeMigrateOps(&res.ops, &rops)
		}
	}

	// Alien host: a destination pool built from different masters is a
	// different key domain; attestation must refuse it at the handshake.
	alien, err := migratePool(plan, migrateMasters(seed^0x7fff), false)
	if err != nil {
		fail("alien pool: %v", err)
		return res
	}
	res.attacks++
	opsAl, err := migrate.Run(migrate.Config{
		SourcePool: tapeSrc, Source: tapeT, DestPool: alien,
		ChunkSize: plan.ChunkSize, MaxRounds: plan.MaxRounds,
		Nonce: migrateNonce(seed, 'x'),
	})
	mergeMigrateOps(&res.ops, &opsAl)
	if !errors.Is(err, migrate.ErrAttestation) {
		fail("alien-host migration: got %v, want ErrAttestation", err)
	} else {
		res.rejections++
	}
	if err := migrateVerify(tapeT, tapeOracle, ps); err != nil {
		fail("phase C source after alien handshake: %v", err)
	}

	// --- Phase D: link chaos. A scripted outage longer than the retry
	// budget parks the session typed and resumable mid-stream; the
	// source keeps serving (and keeps dirtying pages) while parked, and
	// the resumed session completes without re-streaming verified
	// chunks, delivering the writes made during the outage. ---
	linkSrc, linkDst := mkPool(true), mkPool(true)
	if len(res.violations) > 0 {
		return res
	}
	watchBystander("linkSrc", linkSrc)
	watchBystander("linkDst", linkDst)
	linkT := mig(linkSrc)
	linkOracle := make([]byte, size)
	if err := migrateBurst(rng, []*tenant.Tenant{linkT}, linkOracle, plan.WriteBursts); err != nil {
		fail("phase D traffic: %v", err)
		return res
	}
	from := uint64(3 + rng.Intn(5))
	cfgD := migrate.Config{
		SourcePool: linkSrc, Source: linkT, DestPool: linkDst,
		ChunkSize: plan.ChunkSize, MaxRounds: plan.MaxRounds,
		Nonce: migrateNonce(seed, 'd'),
		Link: link.New(&link.ScriptPlan{Windows: []link.Window{
			{From: from, To: from + uint64(4+rng.Intn(8)), State: link.StateDown},
		}}, link.Config{Threshold: 1, Cooldown: 1}),
		Retry: migrate.RetryPolicy{MaxRetries: 2, BaseBackoff: 1, MaxBackoff: 2},
	}
	s, err := migrate.Start(cfgD)
	if err != nil {
		fail("phase D start: %v", err)
		return res
	}
	linkDstT := mig(linkDst)
	parked := 0
	err = s.Run()
	for tries := 0; err != nil; tries++ {
		if tries > 32 {
			fail("phase D session did not complete after %d resumes", tries)
			return res
		}
		if !errors.Is(err, migrate.ErrLinkLost) {
			fail("phase D failed non-resumable: %v", err)
			return res
		}
		if !s.Resumable() {
			fail("phase D link loss left the session non-resumable")
			return res
		}
		parked++
		// While parked: destination untouched, source serving — it
		// takes new writes that the resumed stream must deliver.
		if linkDstT.Epoch() != 0 {
			fail("phase D destination advanced while the session was parked")
		}
		if err := migrateBurst(rng, []*tenant.Tenant{linkT}, linkOracle, 4); err != nil {
			fail("phase D mid-park writes: %v", err)
			return res
		}
		err = s.Run()
	}
	opsD := s.Ops()
	mergeMigrateOps(&res.ops, &opsD)
	res.retries += int(opsD.Retries)
	res.resumes += int(opsD.Resumes)
	if parked == 0 || opsD.Resumes == 0 {
		fail("phase D outage window never parked the session (%d parks, %d resumes)", parked, opsD.Resumes)
	}
	if opsD.ChunksSkipped == 0 {
		fail("phase D resume re-streamed every chunk (none skipped)")
	}
	if err := migrateVerify(linkDstT, linkOracle, ps); err != nil {
		fail("phase D migrated state (incl. mid-park writes) vs oracle: %v", err)
	}
	res.migrations++

	// --- Phase G: every bystander on every host, untouched. Their
	// digests never moved and they absorbed zero denials, faults, or
	// quota refusals from any migration, attack, crash, or retirement. ---
	for _, w := range witnesses {
		if w.t == nil {
			continue
		}
		if got := w.t.StateDigest(); got != w.dig {
			fail("bystander on %s: state digest moved", w.host)
		}
		ops := w.t.Stats()
		if ops.Denied != 0 || ops.Integrity != 0 || ops.Faults != 0 || ops.Quota != 0 {
			fail("bystander on %s absorbed blast: denied=%d integrity=%d faults=%d quota=%d",
				w.host, ops.Denied, ops.Integrity, ops.Faults, ops.Quota)
		}
		buf := make([]byte, 128)
		if err := w.t.Read(w.t.Base()+securemem.HomeAddr(64), buf); err != nil {
			fail("bystander on %s stopped serving: %v", w.host, err)
		}
	}
	return res
}
