package check

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"github.com/salus-sim/salus/internal/config"
	"github.com/salus-sim/salus/internal/crash"
	"github.com/salus-sim/salus/internal/securemem"
)

// Crash mode: the harness runs a generated Salus workload once against a
// crash.Tape-backed checkpoint journal (the golden run), recording for
// every committed epoch the trusted root the TCB would hold, the tape
// position at which its commit became durable, the system's durable-state
// digest, and a copy of the plaintext oracle. It then enumerates every
// crash point of the tape — power lost after each write or sync event —
// under every damage mode, recovers from the damaged medium with the root
// the TCB would have held at that instant, and asserts the recovery
// contract:
//
//   - at an honest cut (only unsynced writes damaged), Recover must
//     reconstruct the last committed epoch byte-identically — digest
//     equality against the golden run's record of that epoch;
//   - at a corrupting cut (a bit flipped in data a Sync had promised
//     durable), Recover must either still reconstruct the epoch exactly
//     (the flip landed past the trusted commit, where replay never looks)
//     or fail with crash.ErrTornCheckpoint / crash.ErrRollback — never an
//     untyped error, never silently divergent state;
//   - before any epoch committed, the empty TCB root admits no journal;
//   - replaying the previous epoch's journal against the newest root — a
//     physical rollback attack on the stable store — fails with
//     crash.ErrRollback;
//   - recovering from the undamaged journal yields a system whose every
//     byte reads back equal to the oracle as of the last commit.
//
// A violation shrinks (ShrinkCrash) to a minimal sequence and renders as a
// regression test (CrashGoTest), like any other checker failure.

// crashTarget names the implicit target of crash-mode failures; crash mode
// is not differential across models — the journal is a ModelSalus feature.
const crashTarget = "salus-crash"

// CrashPlan sizes a crash-recovery campaign.
type CrashPlan struct {
	Seeds     int   // seeds run by RunCrash
	Ops       int   // operations per generated sequence (checkpoints included)
	FirstSeed int64 // RunCrash covers [FirstSeed, FirstSeed+Seeds)

	// CheckpointEvery replaces every CheckpointEvery-th generated op with
	// an epoch checkpoint; a final checkpoint is always appended. <= 0
	// means only the baseline and final checkpoints.
	CheckpointEvery int

	TotalPages  int // home (CXL) pages
	DevicePages int // device frames; << TotalPages keeps migration pressure up
	Geometry    config.Geometry

	// Verbose, when non-nil, receives per-seed progress lines.
	Verbose func(string)
}

// DefaultCrashPlan returns the smoke-budget crash campaign used by
// `make crash-smoke`: 8 seeds × 72 ops with an epoch checkpoint every 12
// ops, over an 8-page home space and 2 device frames. Each seed enumerates
// every tape event boundary × every damage mode — typically several
// hundred recoveries per seed.
func DefaultCrashPlan() CrashPlan {
	return CrashPlan{
		Seeds:           8,
		Ops:             72,
		FirstSeed:       1,
		CheckpointEvery: 12,

		TotalPages:  8,
		DevicePages: 2,
		Geometry:    config.Geometry{SectorSize: 32, BlockSize: 128, ChunkSize: 256, PageSize: 4096},
	}
}

// size returns the home address-space size in bytes.
func (p CrashPlan) size() uint64 { return uint64(p.TotalPages) * uint64(p.Geometry.PageSize) }

// memConfig returns the securemem configuration of the checked system.
func (p CrashPlan) memConfig() securemem.Config {
	return securemem.Config{
		Geometry:    p.Geometry,
		Model:       securemem.ModelSalus,
		TotalPages:  p.TotalPages,
		DevicePages: p.DevicePages,
	}
}

// CrashResult summarises a RunCrash campaign.
type CrashResult struct {
	SeedsRun   int
	OpsRun     int
	Epochs     int // checkpoint epochs committed across all golden runs
	Cuts       int // (crash point × damage mode) recoveries attempted
	Recoveries int // recoveries that reconstructed the epoch byte-identically
	Detected   int // corrupting cuts that surfaced a typed detection error
	Failure    *Failure
}

// RunCrash generates and crash-replays plan.Seeds sequences. On the first
// violation it shrinks the sequence to a minimal reproducer and stops.
func RunCrash(plan CrashPlan) CrashResult {
	var res CrashResult
	for i := 0; i < plan.Seeds; i++ {
		seed := plan.FirstSeed + int64(i)
		seq := GenerateCrashSequence(plan, seed)
		res.SeedsRun++
		res.OpsRun += len(seq.Ops)
		before := res
		f := crashReplay(plan, seq, &res)
		if f == nil {
			if plan.Verbose != nil {
				plan.Verbose(fmt.Sprintf("seed %d: %d ops, %d epochs, %d cuts (%d recovered, %d detected)",
					seed, len(seq.Ops), res.Epochs-before.Epochs, res.Cuts-before.Cuts,
					res.Recoveries-before.Recoveries, res.Detected-before.Detected))
			}
			continue
		}
		min := ShrinkCrash(plan, f.Seq)
		// Re-replay the minimal sequence so the failure describes it.
		if mf := ReplayCrashSequence(plan, min); mf != nil {
			f = mf
		}
		res.Failure = f
		return res
	}
	return res
}

// ReplayCrashSequence crash-replays one sequence: golden run, exhaustive
// cut enumeration, rollback probe, and final plaintext sweep. It returns
// the first contract violation or nil.
func ReplayCrashSequence(plan CrashPlan, seq Sequence) *Failure {
	var scratch CrashResult
	return crashReplay(plan, seq, &scratch)
}

// GenerateCrashSequence produces the deterministic crash-mode workload for
// one seed: the plain generator's address/length skew (chunk straddles,
// sector alignment, migration pressure) over a Salus-only op set, with an
// epoch checkpoint every plan.CheckpointEvery ops and one appended at the
// end. Hostile probes are omitted — bounds behaviour is the plain
// checker's job; crash mode wants maximal dirty-state churn between
// commits.
func GenerateCrashSequence(plan CrashPlan, seed int64) Sequence {
	rng := rand.New(rand.NewSource(seed))
	g := plan.Geometry

	genAddr := func() uint64 {
		page := rng.Intn(plan.TotalPages)
		var off int
		switch rng.Intn(4) {
		case 0: // a few bytes before a chunk boundary: forces a straddle
			c := 1 + rng.Intn(g.ChunksPerPage()-1)
			off = c*g.ChunkSize - (1 + rng.Intn(4))
		case 1: // sector-aligned
			off = rng.Intn(g.SectorsPerPage()) * g.SectorSize
		case 2: // chunk-aligned
			off = rng.Intn(g.ChunksPerPage()) * g.ChunkSize
		default:
			off = rng.Intn(g.PageSize)
		}
		return uint64(page*g.PageSize + off)
	}
	genLen := func() int {
		switch rng.Intn(6) {
		case 0:
			return 1 + rng.Intn(4)
		case 1:
			return g.SectorSize
		case 2:
			return g.SectorSize + 1
		case 3:
			return g.ChunkSize/2 + rng.Intn(g.ChunkSize)
		default:
			return 1 + rng.Intn(2*g.SectorSize)
		}
	}
	clampLen := func(addr uint64, n int) int {
		if max := plan.size() - addr; uint64(n) > max {
			return int(max)
		}
		return n
	}

	ops := make([]Op, 0, plan.Ops+2)
	var tag byte
	for i := 0; i < plan.Ops; i++ {
		if plan.CheckpointEvery > 0 && (i+1)%plan.CheckpointEvery == 0 {
			ops = append(ops, Op{Kind: OpEpochCheckpoint})
			continue
		}
		switch r := rng.Intn(100); {
		case r < 34: // cached write: dirties device chunks
			tag++
			addr := genAddr()
			ops = append(ops, Op{Kind: OpWrite, Addr: addr, Len: clampLen(addr, genLen()), Tag: tag})
		case r < 50: // cached read: migration churn
			addr := genAddr()
			ops = append(ops, Op{Kind: OpRead, Addr: addr, Len: clampLen(addr, genLen())})
		case r < 66: // direct CXL write: split-counter state
			tag++
			addr := genAddr()
			ops = append(ops, Op{Kind: OpWriteThrough, Addr: addr, Len: clampLen(addr, genLen()), Tag: tag})
		case r < 76: // direct CXL read
			addr := genAddr()
			ops = append(ops, Op{Kind: OpReadThrough, Addr: addr, Len: clampLen(addr, genLen())})
		case r < 88: // chunk checkpoint: collapses split counters
			ops = append(ops, Op{Kind: OpCheckpoint, Addr: genAddr()})
		default: // flush: evicts everything, mass home mutation
			ops = append(ops, Op{Kind: OpFlush})
		}
	}
	if len(ops) == 0 || ops[len(ops)-1].Kind != OpEpochCheckpoint {
		ops = append(ops, Op{Kind: OpEpochCheckpoint})
	}
	return Sequence{Seed: seed, Ops: ops}
}

// crashMark records everything the harness knows about one committed
// epoch: the root the TCB holds from the commit onwards, the tape position
// at which the commit's final sync landed, and the golden run's state.
type crashMark struct {
	root   securemem.TrustedRoot
	points int // tape.Points() when Checkpoint returned
	digest [32]byte
	oracle []byte
}

// crashReplay is the shared implementation behind RunCrash and
// ReplayCrashSequence, accumulating campaign counters into res.
func crashReplay(plan CrashPlan, seq Sequence, res *CrashResult) *Failure {
	cfg := plan.memConfig()
	size := plan.size()
	fail := func(idx int, loc, format string, a ...any) *Failure {
		return &Failure{Seq: seq, OpIdx: idx, Loc: loc, Target: crashTarget, Reason: fmt.Sprintf(format, a...)}
	}

	// --- Golden run: the workload, journaled onto a tape. ---
	sys, err := securemem.New(cfg)
	if err != nil {
		return fail(-1, "", "target setup: %v", err)
	}
	tape := &crash.Tape{}
	j := crash.NewJournal(tape)
	oracle := make([]byte, size)
	var marks []crashMark

	checkpoint := func() error {
		root, err := sys.Checkpoint(j)
		if err != nil {
			return err
		}
		marks = append(marks, crashMark{
			root:   root,
			points: tape.Points(),
			digest: sys.StateDigest(),
			oracle: append([]byte(nil), oracle...),
		})
		res.Epochs++
		return nil
	}
	// Residency check mirroring the securemem through-path contract (and
	// systemTarget.throughOK): degrade to the cached path when either end
	// of the range is resident.
	throughOK := func(addr uint64, n int) bool {
		if sys.IsResident(securemem.HomeAddr(addr)) {
			return false
		}
		return n == 0 || !sys.IsResident(securemem.HomeAddr(addr+uint64(n)-1))
	}

	// Baseline epoch: commit before any ops, so every crash point from the
	// first commit onwards pairs with a recoverable epoch. A fresh system
	// has no dirty pages — this journals just the commit record.
	if err := checkpoint(); err != nil {
		return fail(-1, "", "baseline checkpoint: %v", err)
	}

	for i, op := range seq.Ops {
		if op.Kind != OpFlush && op.Kind != OpEpochCheckpoint {
			if op.Addr >= size || uint64(op.Len) > size-op.Addr {
				return fail(i, "", "crash sequences must stay in range (addr %#x len %d, size %#x)", op.Addr, op.Len, size)
			}
		}
		var err error
		switch op.Kind {
		case OpRead, OpReadThrough:
			buf := make([]byte, op.Len)
			if op.Kind == OpReadThrough && throughOK(op.Addr, op.Len) {
				err = sys.ReadThrough(securemem.HomeAddr(op.Addr), buf)
			} else {
				err = sys.Read(securemem.HomeAddr(op.Addr), buf)
			}
			if err == nil && !bytes.Equal(buf, oracle[op.Addr:op.Addr+uint64(op.Len)]) {
				return fail(i, "", "golden run diverged from the oracle")
			}
		case OpWrite, OpWriteThrough:
			data := FillData(op.Tag, op.Len)
			if op.Kind == OpWriteThrough && throughOK(op.Addr, op.Len) {
				err = sys.WriteThrough(securemem.HomeAddr(op.Addr), data)
			} else {
				err = sys.Write(securemem.HomeAddr(op.Addr), data)
			}
			if err == nil {
				copy(oracle[op.Addr:], data)
			}
		case OpCheckpoint:
			err = sys.CheckpointChunk(securemem.HomeAddr(op.Addr))
		case OpFlush:
			err = sys.Flush()
		case OpEpochCheckpoint:
			err = checkpoint()
		default:
			return fail(i, "", "op kind %v not supported in crash replay", op.Kind)
		}
		if err != nil {
			return fail(i, "", "golden run: %v", err)
		}
	}

	// --- Exhaustive cut enumeration. ---
	for e := 0; e <= tape.Points(); e++ {
		// The TCB root at crash point e belongs to the last epoch whose
		// commit protocol had fully finished by then.
		idx := -1
		for mi := range marks {
			if marks[mi].points <= e {
				idx = mi
			}
		}
		for mode := crash.DamageMode(0); mode < crash.NumDamageModes; mode++ {
			res.Cuts++
			cut := fmt.Sprintf("cut %d/%d (%v)", e, tape.Points(), mode)
			durable := tape.Cut(e, mode, seq.Seed)
			if idx < 0 {
				// No epoch has committed: the TCB holds no root yet, and an
				// empty root must never admit a journal — recovery before
				// the first commit is fresh provisioning, not Recover.
				if _, err := securemem.Recover(cfg, durable, securemem.TrustedRoot{}); err == nil {
					return fail(len(seq.Ops), cut, "empty trusted root admitted a journal")
				}
				continue
			}
			m := marks[idx]
			rec, err := securemem.Recover(cfg, durable, m.root)
			switch {
			case err == nil:
				if rec.StateDigest() != m.digest {
					return fail(len(seq.Ops), cut, "recovered state diverges from committed epoch %d", m.root.Epoch)
				}
				res.Recoveries++
			case mode.Honest():
				return fail(len(seq.Ops), cut, "honest crash failed to recover epoch %d: %v", m.root.Epoch, err)
			case errors.Is(err, crash.ErrTornCheckpoint) || errors.Is(err, crash.ErrRollback):
				res.Detected++
			default:
				return fail(len(seq.Ops), cut, "corruption surfaced as an untyped error: %v", err)
			}
		}
	}

	// --- Rollback probe: replay the previous epoch's journal against the
	// newest root, as a stable-store rollback attacker would. ---
	if len(marks) >= 2 {
		prev, last := marks[len(marks)-2], marks[len(marks)-1]
		stale := tape.Cut(prev.points, crash.CutClean, seq.Seed)
		if _, err := securemem.Recover(cfg, stale, last.root); !errors.Is(err, crash.ErrRollback) {
			return fail(len(seq.Ops), "rollback probe",
				"epoch-%d journal replayed against the epoch-%d root: got %v, want crash.ErrRollback",
				prev.root.Epoch, last.root.Epoch, err)
		}
	}

	// --- Final sweep: the undamaged journal recovers to a system whose
	// every byte equals the oracle as of the last commit. ---
	last := marks[len(marks)-1]
	recSys, err := securemem.Recover(cfg, tape.Bytes(), last.root)
	if err != nil {
		return fail(len(seq.Ops), "final sweep", "undamaged journal failed to recover: %v", err)
	}
	stride := uint64(plan.Geometry.ChunkSize)
	buf := make([]byte, stride)
	for addr := uint64(0); addr < size; addr += stride {
		if err := recSys.Read(securemem.HomeAddr(addr), buf); err != nil {
			return fail(len(seq.Ops), "final sweep", "read at %#x after recovery: %v", addr, err)
		}
		if want := last.oracle[addr : addr+stride]; !bytes.Equal(buf, want) {
			i := 0
			for buf[i] == want[i] {
				i++
			}
			return fail(len(seq.Ops), "final sweep", "%s", diffReason("recovered read", addr, i, buf, want))
		}
	}
	return nil
}
